// Dynamic key-management costs (docs/KEYS.md): what one epoch rollover and
// one mass-revocation broadcast cost over a large TDS id space, and how the
// complete-subtree header grows with the revoked-set size.
//
// For |R| in {1k, 10k, 100k} revoked ids out of a 2^20-device tree this
// measures
//   * the mass-revocation broadcast: KeyAuthority::Revoke() end to end
//     (cover computation + one wrap per cover node + sealed window body);
//   * a follow-up epoch rollover at that revoked-set size;
//   * the published block: header entries (cover size, checked against the
//     NNL r*log2(N/r) bound) and encoded bytes;
//   * one surviving TDS adopting the new epoch (EpochBlock decode +
//     broadcast unwrap + window authentication).
//
// Timing is hand-rolled (steady_clock) so the target stays dependency-light
// and emits machine-readable JSON directly; run from the repo root so the
// default output lands at ./BENCH_keys.json (or pass an explicit path).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "keys/epoch.h"
#include "keys/key_authority.h"
#include "keys/tds_keys.h"

namespace tcells {
namespace {

constexpr size_t kIdSpace = size_t{1} << 20;  // 1,048,576 enrollable ids
constexpr uint64_t kSeed = 42;

double MillisOf(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

class LocalSource : public keys::EpochBlockSource {
 public:
  Result<Bytes> FetchLatestBlock(uint64_t) override { return block_; }
  Bytes block_;
};

struct Row {
  size_t revoked;
  double revoke_broadcast_ms;  ///< Revoke(): reseal + publish, end to end
  double rollover_ms;          ///< a later Rollover() at this revoked size
  size_t cover_nodes;          ///< header entries of the published block
  double nnl_bound;            ///< r * log2(N/r)
  size_t block_bytes;          ///< encoded EpochBlock size
  double refresh_ms;           ///< one surviving TDS adopting the new epoch
};

Result<Row> MeasureAt(size_t revoked_count) {
  Row row;
  row.revoked = revoked_count;

  Rng rng(kSeed ^ revoked_count);
  TCELLS_ASSIGN_OR_RETURN(
      std::unique_ptr<keys::KeyAuthority> authority,
      keys::KeyAuthority::Create(rng.NextBytes(16), kIdSpace, kSeed));

  std::set<size_t> revoked;
  while (revoked.size() < revoked_count) {
    // Keep one known survivor (id 0) for the refresh measurement.
    size_t id = 1 + static_cast<size_t>(rng.NextBelow(kIdSpace - 1));
    revoked.insert(id);
  }
  std::vector<uint64_t> ids(revoked.begin(), revoked.end());

  row.revoke_broadcast_ms =
      MillisOf([&] { (void)authority->Revoke(ids); });
  row.rollover_ms = MillisOf([&] { (void)authority->Rollover(); });

  Bytes encoded = authority->CurrentBlock();
  row.block_bytes = encoded.size();
  TCELLS_ASSIGN_OR_RETURN(keys::EpochBlock block,
                          keys::EpochBlock::Decode(encoded));
  row.cover_nodes = block.message.header.size();
  row.nnl_bound = static_cast<double>(revoked_count) *
                  std::log2(static_cast<double>(kIdSpace) /
                            static_cast<double>(revoked_count));

  LocalSource source;
  source.block_ = encoded;
  TCELLS_ASSIGN_OR_RETURN(crypto::BroadcastDeviceKeys survivor_keys,
                          authority->EnrollDevice(0));
  keys::TdsKeyState survivor(0, survivor_keys, &source);
  row.refresh_ms = MillisOf([&] { (void)survivor.Refresh(); });
  TCELLS_ASSIGN_OR_RETURN(uint32_t adopted, survivor.known_epoch());
  if (adopted != authority->current_epoch()) {
    return Status::Internal("survivor failed to adopt the current epoch");
  }

  std::fprintf(stderr,
               "|R|=%-7zu revoke %8.1f ms  rollover %8.1f ms  cover %7zu "
               "(bound %9.0f)  block %9zu B  refresh %7.1f ms\n",
               row.revoked, row.revoke_broadcast_ms, row.rollover_ms,
               row.cover_nodes, row.nnl_bound, row.block_bytes,
               row.refresh_ms);
  return row;
}

int Run(const std::string& out_path) {
  std::vector<Row> rows;
  for (size_t revoked : {size_t{1000}, size_t{10000}, size_t{100000}}) {
    Result<Row> row = MeasureAt(revoked);
    if (!row.ok()) {
      std::fprintf(stderr, "bench failed at |R|=%zu: %s\n", revoked,
                   row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*row);
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_key_mgmt\",\n");
  std::fprintf(f, "  \"id_space\": %zu,\n", kIdSpace);
  std::fprintf(f, "  \"epoch_window\": %u,\n", keys::kEpochWindow);
  std::fprintf(f, "  \"rows\": [\n");
  bool all_within_bound = true;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    all_within_bound = all_within_bound &&
                       r.cover_nodes <= static_cast<size_t>(r.nnl_bound) + 1;
    std::fprintf(f,
                 "    {\"revoked\": %zu, \"revoke_broadcast_ms\": %.2f, "
                 "\"rollover_ms\": %.2f, \"cover_nodes\": %zu, "
                 "\"nnl_bound\": %.0f, \"block_bytes\": %zu, "
                 "\"tds_refresh_ms\": %.2f}%s\n",
                 r.revoked, r.revoke_broadcast_ms, r.rollover_ms,
                 r.cover_nodes, r.nnl_bound, r.block_bytes, r.refresh_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"acceptance\": {\n");
  std::fprintf(f, "    \"cover_within_nnl_bound\": %s\n",
               all_within_bound ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return all_within_bound ? 0 : 1;
}

}  // namespace
}  // namespace tcells

int main(int argc, char** argv) {
  return tcells::Run(argc > 1 ? argv[1] : "BENCH_keys.json");
}
