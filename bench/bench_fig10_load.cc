// Fig 10c/10d: global resource consumption Load_Q (MB) vs G and vs N_t.
#include "bench_fig10_common.h"

int main(int argc, char** argv) {
  tcells::bench::ParseBenchArgs(argc, argv);
  using tcells::analysis::CostMetrics;
  auto mb = [](const CostMetrics& m) { return m.load_bytes / 1e6; };
  std::printf("=== Fig 10c: Load_Q (MB) vs G ===\n");
  tcells::bench::SweepG("Load_Q(MB)", mb);
  std::printf("=== Fig 10d: Load_Q (MB) vs N_t ===\n");
  tcells::bench::SweepNt("Load_Q(MB)", mb);
  return 0;
}
