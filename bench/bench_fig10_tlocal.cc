// Fig 10g/10h: average local execution time T_local vs G and vs N_t.
#include "bench_fig10_common.h"

int main(int argc, char** argv) {
  tcells::bench::ParseBenchArgs(argc, argv);
  using tcells::analysis::CostMetrics;
  auto tlocal = [](const CostMetrics& m) { return m.tlocal_seconds; };
  std::printf("=== Fig 10g: T_local (s) vs G ===\n");
  tcells::bench::SweepG("T_local(s)", tlocal);
  std::printf("=== Fig 10h: T_local (s) vs N_t ===\n");
  tcells::bench::SweepNt("T_local(s)", tlocal);
  return 0;
}
