// Threat-model extension experiment (the paper's future-work item 2):
// "(a small number of) compromised TDSs". A compromised TDS runs the
// protocol but leaks every plaintext it decrypts — the attacker extracted k2
// from the device. This bench sweeps the number of compromised devices and
// measures, per protocol, how many distinct raw tuples and group aggregates
// leak. Not a figure from the paper: an extension experiment.
#include <cstdio>
#include <memory>

#include "analysis/compromise.h"
#include "protocol/discovery.h"
#include "protocol/protocols.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

using namespace tcells;

int main() {
  const size_t kTds = 400;
  const size_t kGroups = 8;

  std::printf("=== extension: compromised-TDS leakage (N_t=%zu, G=%zu) ===\n",
              kTds, kGroups);
  std::printf("A compromised TDS leaks everything it decrypts while "
              "following the protocol.\n\n");
  std::printf("%-12s %-10s %16s %16s %14s %14s\n", "compromised", "protocol",
              "raw tuples leaked", "groups leaked", "model raw%", "model grp%");

  for (size_t compromised : {1u, 4u, 16u, 64u}) {
    workload::GenericOptions gopts;
    gopts.num_tds = kTds;
    gopts.num_groups = kGroups;
    gopts.seed = 17;

    for (int which = 0; which < 3; ++which) {
      auto keys = crypto::KeyStore::CreateForTest(50 + which);
      auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x66));
      auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                               tds::AccessPolicy::AllowAll())
                       .ValueOrDie();
      protocol::Querier querier("bench", authority->Issue("bench"), keys);

      // Compromise the first `compromised` TDSs (ids are random relative to
      // the data, so this is an unbiased sample).
      auto log = std::make_shared<tds::LeakLog>();
      for (size_t i = 0; i < compromised; ++i) {
        fleet->at(i)->set_leak_log(log);
      }

      protocol::RunOptions opts;
      opts.compute_availability = 0.25;
      opts.expected_groups = kGroups;
      const std::string sql =
          "SELECT grp, AVG(val) FROM T GROUP BY grp";

      std::unique_ptr<protocol::Protocol> protocol;
      const char* name;
      auto domain = std::make_shared<std::vector<storage::Tuple>>();
      for (size_t g = 0; g < kGroups; ++g) {
        domain->push_back(
            storage::Tuple({storage::Value::String(workload::GroupName(g))}));
      }
      Engine::Config cfg;
      cfg.options = opts;
      auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();

      if (which == 0) {
        name = "S_Agg";
        protocol = std::make_unique<protocol::SAggProtocol>();
      } else if (which == 1) {
        name = "R2_Noise";
        protocol = std::make_unique<protocol::NoiseProtocol>(false, domain);
      } else {
        name = "ED_Hist";
        auto discovered = engine->DiscoverInputs(querier, 1, sql).ValueOrDie();
        log->Clear();  // discovery leakage is not the object of study
        protocol = protocol::EdHistProtocol::FromDistribution(
            discovered.distribution, kGroups / 4);
      }

      auto outcome = engine->Run(*protocol, querier, 2, sql);
      if (!outcome.ok()) {
        std::printf("%-12zu %-10s ERROR %s\n", compromised, name,
                    outcome.status().ToString().c_str());
        continue;
      }
      analysis::CompromiseParams cp;
      cp.nt = kTds;
      cp.groups = kGroups;
      cp.available = static_cast<double>(kTds) * opts.compute_availability;
      cp.compromised = static_cast<double>(compromised) *
                       opts.compute_availability;  // expected in-pool count
      auto model = analysis::CompromiseFor(name, cp);
      std::printf("%-12zu %-10s %10zu /%zu %12zu /%zu %13.1f%% %13.1f%%\n",
                  compromised, name, log->NumLeakedRawTuples(), kTds,
                  log->NumLeakedGroups(), kGroups,
                  100 * model.raw_tuple_fraction,
                  100 * model.group_aggregate_fraction);
    }
    std::printf("\n");
  }
  std::printf("Reading: leakage grows with the compromised fraction for all "
              "protocols — confirming the paper's assessment that extending "
              "the threat model to compromised TDSs needs new mechanisms, "
              "not parameter tuning.\n");
  return 0;
}
