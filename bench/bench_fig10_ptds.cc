// Fig 10a/10b: level of parallelism P_TDS vs G and vs N_t.
#include "bench_fig10_common.h"

int main(int argc, char** argv) {
  tcells::bench::ParseBenchArgs(argc, argv);
  using tcells::analysis::CostMetrics;
  auto ptds = [](const CostMetrics& m) { return m.ptds; };
  std::printf("=== Fig 10a: P_TDS vs G ===\n");
  tcells::bench::SweepG("P_TDS", ptds);
  std::printf("=== Fig 10b: P_TDS vs N_t ===\n");
  tcells::bench::SweepNt("P_TDS (millions)", [](const CostMetrics& m) {
    return m.ptds / 1e6;
  });
  return 0;
}
