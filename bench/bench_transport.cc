// Loopback-vs-TCP transport throughput harness: times framed request/reply
// round trips through both Channel backends at several payload sizes (the
// codec-only floor vs real socket syscalls), plus one end-to-end S_Agg query
// per backend, and writes the results to BENCH_transport.json (or argv[1]).
//
// Timing is hand-rolled (steady_clock, calibrated batch loops) so the target
// stays dependency-light and emits machine-readable JSON directly.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/faulty.h"
#include "net/loopback.h"
#include "net/ssi_client.h"
#include "net/ssi_node.h"
#include "net/tcp.h"
#include "protocol/protocols.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::string name;
  std::string transport;
  size_t bytes_per_op = 0;
  double ns_per_op = 0;
  double ops_per_sec = 0;
  double mb_per_sec = 0;
};

/// Round-trip `payload` through `channel` in calibrated batches until the
/// sample window exceeds ~80 ms, then report the per-op cost. One op moves
/// the payload out and back, so bytes_per_op counts both directions.
Row MeasureRoundTrip(const std::string& size_name,
                     const std::string& transport_name, net::Channel* channel,
                     const Bytes& payload) {
  net::CallOptions opts;
  opts.deadline_seconds = 30.0;
  for (int i = 0; i < 3; ++i) {
    (void)channel->Call(payload, opts).ValueOrDie();
  }
  size_t batch = 1;
  double elapsed = 0;
  size_t total_ops = 0;
  double start = NowSeconds();
  while (elapsed < 0.08) {
    for (size_t i = 0; i < batch; ++i) {
      (void)channel->Call(payload, opts).ValueOrDie();
    }
    total_ops += batch;
    batch *= 2;
    elapsed = NowSeconds() - start;
  }
  Row row;
  row.name = "roundtrip_" + size_name;
  row.transport = transport_name;
  row.bytes_per_op = 2 * payload.size();
  row.ns_per_op = elapsed / static_cast<double>(total_ops) * 1e9;
  row.ops_per_sec = static_cast<double>(total_ops) / elapsed;
  row.mb_per_sec = static_cast<double>(row.bytes_per_op) *
                   static_cast<double>(total_ops) / elapsed / (1024 * 1024);
  return row;
}

/// One S_Agg query over a small fleet through the given transport; reports
/// wall time of the best of three runs plus the run's own frame telemetry.
struct E2eRow {
  std::string transport;
  double best_ms = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
};

E2eRow MeasureE2e(net::TransportKind transport_kind) {
  workload::GenericOptions gopts;
  gopts.num_tds = 24;
  gopts.num_groups = 4;
  gopts.rows_per_tds = 2;
  gopts.seed = 77;
  auto keys = crypto::KeyStore::CreateForTest(2026);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x77));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("bench", authority->Issue("bench"), keys);
  protocol::SAggProtocol protocol;
  protocol::RunOptions opts;
  opts.expected_groups = gopts.num_groups;
  opts.seed = 7;

  E2eRow row;
  row.transport = net::TransportKindToString(transport_kind);
  row.best_ms = 1e18;
  const char* sql = "SELECT grp, COUNT(*), AVG(val) FROM T GROUP BY grp";
  Engine::Config cfg;
  cfg.options = opts;
  cfg.transport = transport_kind;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  for (int rep = 0; rep < 3; ++rep) {
    auto before = engine->metrics().snapshot().counters;
    double start = NowSeconds();
    (void)engine->Run(protocol, querier, 1, sql).ValueOrDie();
    double ms = (NowSeconds() - start) * 1e3;
    if (ms < row.best_ms) row.best_ms = ms;
    // Engine metrics accumulate across reps; report this rep's delta.
    auto counters = engine->metrics().snapshot().counters;
    auto delta = [&](const char* key) -> uint64_t {
      uint64_t now = counters.count(key) ? counters.at(key) : 0;
      uint64_t was = before.count(key) ? before.at(key) : 0;
      return now - was;
    };
    row.frames_sent = delta("net.frames_sent");
    row.bytes_sent = delta("net.bytes_sent");
  }
  return row;
}

int Run(const std::string& out_path) {
  // Echo handler: isolates the transport + frame codec from any SSI work.
  net::Handler echo = [](const Bytes& request) -> Result<Bytes> {
    return request;
  };

  const std::map<std::string, size_t> sizes = {
      {"64B", 64}, {"64KB", 64u << 10}, {"1MB", 1u << 20}};

  std::vector<Row> rows;
  {
    net::LoopbackTransport transport(echo);
    auto channel = transport.Connect().ValueOrDie();
    for (const auto& [size_name, n] : sizes) {
      rows.push_back(
          MeasureRoundTrip(size_name, "loopback", channel.get(), Bytes(n, 0x5A)));
    }
  }
  {
    // Fault-injection decorator in passthrough mode (an empty plan injects
    // nothing): isolates the per-call overhead of the determinism machinery —
    // key extraction, decision hashing, history bookkeeping — that every
    // campaign call pays on top of the inner backend.
    net::LoopbackTransport inner(echo);
    net::FaultyTransport transport(&inner, net::FaultPlan{});
    auto channel = transport.Connect().ValueOrDie();
    for (const auto& [size_name, n] : sizes) {
      rows.push_back(MeasureRoundTrip(size_name, "faulty_passthrough",
                                      channel.get(), Bytes(n, 0x5A)));
    }
  }
  {
    net::TcpServer server;
    Status started = server.Start(echo);
    if (!started.ok()) {
      std::fprintf(stderr, "bench_transport: %s\n", started.ToString().c_str());
      return 1;
    }
    net::TcpTransport transport("127.0.0.1", server.port());
    auto channel = transport.Connect().ValueOrDie();
    for (const auto& [size_name, n] : sizes) {
      rows.push_back(
          MeasureRoundTrip(size_name, "tcp", channel.get(), Bytes(n, 0x5A)));
    }
  }

  E2eRow e2e_loopback = MeasureE2e(net::TransportKind::kLoopback);
  E2eRow e2e_tcp = MeasureE2e(net::TransportKind::kTcp);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_transport\",\n");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"transport\": \"%s\", "
                 "\"bytes_per_op\": %zu, \"ns_per_op\": %.2f, "
                 "\"ops_per_sec\": %.0f, \"mb_per_sec\": %.2f}%s\n",
                 r.name.c_str(), r.transport.c_str(), r.bytes_per_op,
                 r.ns_per_op, r.ops_per_sec, r.mb_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"e2e_s_agg\": [\n");
  for (const E2eRow* r : {&e2e_loopback, &e2e_tcp}) {
    std::fprintf(f,
                 "    {\"transport\": \"%s\", \"best_ms\": %.2f, "
                 "\"frames_sent\": %llu, \"bytes_sent\": %llu}%s\n",
                 r->transport.c_str(), r->best_ms,
                 static_cast<unsigned long long>(r->frames_sent),
                 static_cast<unsigned long long>(r->bytes_sent),
                 r == &e2e_tcp ? "" : ",");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr,
               "wrote %s (e2e s_agg: loopback %.1f ms, tcp %.1f ms)\n",
               out_path.c_str(), e2e_loopback.best_ms, e2e_tcp.best_ms);
  return 0;
}

}  // namespace
}  // namespace tcells

int main(int argc, char** argv) {
  return tcells::Run(argc > 1 ? argv[1] : "BENCH_transport.json");
}
