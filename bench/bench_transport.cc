// Loopback-vs-TCP transport throughput harness: times framed request/reply
// round trips through both Channel backends at several payload sizes (the
// codec-only floor vs real socket syscalls), plus one end-to-end S_Agg query
// per backend, and writes the results to BENCH_transport.json (or argv[1]).
//
// Timing is hand-rolled (steady_clock, calibrated batch loops) so the target
// stays dependency-light and emits machine-readable JSON directly.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/faulty.h"
#include "net/loopback.h"
#include "net/ssi_client.h"
#include "net/ssi_wire.h"
#include "net/ssi_node.h"
#include "net/tcp.h"
#include "protocol/protocols.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::string name;
  std::string transport;
  size_t bytes_per_op = 0;
  double ns_per_op = 0;
  double ops_per_sec = 0;
  double mb_per_sec = 0;
};

/// Round-trip `payload` through `channel` in calibrated batches until the
/// sample window exceeds ~80 ms, then report the per-op cost. One op moves
/// the payload out and back, so bytes_per_op counts both directions.
Row MeasureRoundTrip(const std::string& size_name,
                     const std::string& transport_name, net::Channel* channel,
                     const Bytes& payload) {
  net::CallOptions opts;
  opts.deadline_seconds = 30.0;
  for (int i = 0; i < 3; ++i) {
    (void)channel->Call(payload, opts).ValueOrDie();
  }
  size_t batch = 1;
  double elapsed = 0;
  size_t total_ops = 0;
  double start = NowSeconds();
  while (elapsed < 0.08) {
    for (size_t i = 0; i < batch; ++i) {
      (void)channel->Call(payload, opts).ValueOrDie();
    }
    total_ops += batch;
    batch *= 2;
    elapsed = NowSeconds() - start;
  }
  Row row;
  row.name = "roundtrip_" + size_name;
  row.transport = transport_name;
  row.bytes_per_op = 2 * payload.size();
  row.ns_per_op = elapsed / static_cast<double>(total_ops) * 1e9;
  row.ops_per_sec = static_cast<double>(total_ops) / elapsed;
  row.mb_per_sec = static_cast<double>(row.bytes_per_op) *
                   static_cast<double>(total_ops) / elapsed / (1024 * 1024);
  return row;
}

/// Calls-per-frame sweep: drives the batched SsiClient against a batch-aware
/// echo handler, issuing `kWindow` logical calls per iteration either
/// pipelined (CallAsync x window, then Await all — frames coalesce up to the
/// flush policy) or serialized (Call one at a time — every call pays a full
/// round trip). The per-call cost isolates the physical-frame tax the batch
/// envelope amortizes.
Row MeasureBatchSweep(const std::string& transport_name,
                      net::Transport* transport, size_t calls_per_frame,
                      bool pipelined, const Bytes& payload) {
  constexpr size_t kWindow = 256;
  net::BatchOptions batch;
  batch.max_calls_per_frame = calls_per_frame;
  batch.max_inflight_frames = 4;
  net::RetryPolicy policy;
  policy.deadline_seconds = 30.0;
  net::SsiClient client(transport, policy, /*metrics=*/nullptr, batch);

  auto run_window = [&]() {
    if (pipelined) {
      std::vector<net::SsiClient::CallToken> tokens;
      tokens.reserve(kWindow);
      for (size_t i = 0; i < kWindow; ++i) {
        tokens.push_back(client.CallAsync(Bytes(payload)));
      }
      for (net::SsiClient::CallToken t : tokens) {
        (void)client.Await(t).ValueOrDie();
      }
    } else {
      // Await immediately after each submit: one call per frame, one frame
      // on the wire at a time — the pre-batching client's behavior.
      for (size_t i = 0; i < kWindow; ++i) {
        (void)client.Await(client.CallAsync(Bytes(payload))).ValueOrDie();
      }
    }
  };

  run_window();  // Warm-up: dial channels, fault any lazy setup.
  size_t batches = 1;
  size_t total_calls = 0;
  double elapsed = 0;
  double start = NowSeconds();
  while (elapsed < 0.08) {
    for (size_t i = 0; i < batches; ++i) run_window();
    total_calls += batches * kWindow;
    batches *= 2;
    elapsed = NowSeconds() - start;
  }
  Row row;
  row.name = std::string("batch_64B_") + (pipelined ? "pipelined" : "serialized") +
             "_c" + std::to_string(calls_per_frame);
  row.transport = transport_name;
  row.bytes_per_op = 2 * payload.size();
  row.ns_per_op = elapsed / static_cast<double>(total_calls) * 1e9;
  row.ops_per_sec = static_cast<double>(total_calls) / elapsed;
  row.mb_per_sec = static_cast<double>(row.bytes_per_op) *
                   static_cast<double>(total_calls) / elapsed / (1024 * 1024);
  return row;
}

/// One S_Agg query over a 600-TDS fleet through the given transport and batch
/// setting; reports wall time of the best of three runs plus the run's own
/// frame telemetry. 600 TDSes is the scale point the ISSUE acceptance pins
/// (TCP within ~2x of loopback once batching amortizes the per-frame tax).
struct E2eRow {
  std::string transport;
  size_t batch_max_calls = 1;
  double best_ms = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
};

E2eRow MeasureE2e(net::TransportKind transport_kind, size_t batch_max_calls) {
  workload::GenericOptions gopts;
  gopts.num_tds = 600;
  gopts.num_groups = 4;
  gopts.rows_per_tds = 2;
  gopts.seed = 77;
  auto keys = crypto::KeyStore::CreateForTest(2026);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x77));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("bench", authority->Issue("bench"), keys);
  protocol::SAggProtocol protocol;
  protocol::RunOptions opts;
  opts.expected_groups = gopts.num_groups;
  opts.seed = 7;

  E2eRow row;
  row.transport = net::TransportKindToString(transport_kind);
  row.batch_max_calls = batch_max_calls;
  row.best_ms = 1e18;
  const char* sql = "SELECT grp, COUNT(*), AVG(val) FROM T GROUP BY grp";
  Engine::Config cfg;
  cfg.options = opts;
  cfg.transport = transport_kind;
  cfg.transport_batch_max_calls = batch_max_calls;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  for (int rep = 0; rep < 3; ++rep) {
    auto before = engine->metrics().snapshot().counters;
    double start = NowSeconds();
    (void)engine->Run(protocol, querier, 1, sql).ValueOrDie();
    double ms = (NowSeconds() - start) * 1e3;
    if (ms < row.best_ms) row.best_ms = ms;
    // Engine metrics accumulate across reps; report this rep's delta.
    auto counters = engine->metrics().snapshot().counters;
    auto delta = [&](const char* key) -> uint64_t {
      uint64_t now = counters.count(key) ? counters.at(key) : 0;
      uint64_t was = before.count(key) ? before.at(key) : 0;
      return now - was;
    };
    row.frames_sent = delta("net.frames_sent");
    row.bytes_sent = delta("net.bytes_sent");
  }
  return row;
}

int Run(const std::string& out_path) {
  // Echo handler: isolates the transport + frame codec from any SSI work.
  net::Handler echo = [](const Bytes& request) -> Result<Bytes> {
    return request;
  };

  const std::map<std::string, size_t> sizes = {
      {"64B", 64}, {"64KB", 64u << 10}, {"1MB", 1u << 20}};

  std::vector<Row> rows;
  {
    net::LoopbackTransport transport(echo);
    auto channel = transport.Connect().ValueOrDie();
    for (const auto& [size_name, n] : sizes) {
      rows.push_back(
          MeasureRoundTrip(size_name, "loopback", channel.get(), Bytes(n, 0x5A)));
    }
  }
  {
    // Fault-injection decorator in passthrough mode (an empty plan injects
    // nothing): isolates the per-call overhead of the determinism machinery —
    // key extraction, decision hashing, history bookkeeping — that every
    // campaign call pays on top of the inner backend.
    net::LoopbackTransport inner(echo);
    net::FaultyTransport transport(&inner, net::FaultPlan{});
    auto channel = transport.Connect().ValueOrDie();
    for (const auto& [size_name, n] : sizes) {
      rows.push_back(MeasureRoundTrip(size_name, "faulty_passthrough",
                                      channel.get(), Bytes(n, 0x5A)));
    }
  }
  {
    net::TcpServer server;
    Status started = server.Start(echo);
    if (!started.ok()) {
      std::fprintf(stderr, "bench_transport: %s\n", started.ToString().c_str());
      return 1;
    }
    net::TcpTransport transport("127.0.0.1", server.port());
    auto channel = transport.Connect().ValueOrDie();
    for (const auto& [size_name, n] : sizes) {
      rows.push_back(
          MeasureRoundTrip(size_name, "tcp", channel.get(), Bytes(n, 0x5A)));
    }
  }

  // Calls-per-frame sweep: the batch-aware echo unwraps each logical call
  // and answers it with an OK envelope, so the client's correlation/decode
  // path runs for real while the handler itself stays O(bytes).
  net::Handler batch_echo = [](const Bytes& request) -> Result<Bytes> {
    if (net::IsBatchFrame(request)) {
      auto calls = net::DecodeBatchFrame(request);
      if (!calls.ok()) return calls.status();
      std::vector<net::BatchCall> replies;
      replies.reserve(calls->size());
      for (const net::BatchCall& call : *calls) {
        replies.push_back({call.correlation_id, net::EncodeReplyOk(call.payload)});
      }
      return net::EncodeBatchFrame(replies);
    }
    return net::EncodeReplyOk(request);
  };
  const Bytes small(64, 0x5A);
  const std::vector<size_t> frame_sizes = {1, 4, 16, 64};
  {
    net::LoopbackTransport transport(batch_echo);
    rows.push_back(MeasureBatchSweep("loopback", &transport, 1,
                                     /*pipelined=*/false, small));
    for (size_t c : frame_sizes) {
      rows.push_back(
          MeasureBatchSweep("loopback", &transport, c, /*pipelined=*/true, small));
    }
  }
  {
    net::TcpServer server;
    Status started = server.Start(batch_echo);
    if (!started.ok()) {
      std::fprintf(stderr, "bench_transport: %s\n", started.ToString().c_str());
      return 1;
    }
    net::TcpTransport transport("127.0.0.1", server.port());
    rows.push_back(
        MeasureBatchSweep("tcp", &transport, 1, /*pipelined=*/false, small));
    for (size_t c : frame_sizes) {
      rows.push_back(
          MeasureBatchSweep("tcp", &transport, c, /*pipelined=*/true, small));
    }
  }

  const std::vector<E2eRow> e2e = {
      MeasureE2e(net::TransportKind::kLoopback, 1),
      MeasureE2e(net::TransportKind::kLoopback, 32),
      MeasureE2e(net::TransportKind::kTcp, 1),
      MeasureE2e(net::TransportKind::kTcp, 32),
  };

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_transport\",\n");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"transport\": \"%s\", "
                 "\"bytes_per_op\": %zu, \"ns_per_op\": %.2f, "
                 "\"ops_per_sec\": %.0f, \"mb_per_sec\": %.2f}%s\n",
                 r.name.c_str(), r.transport.c_str(), r.bytes_per_op,
                 r.ns_per_op, r.ops_per_sec, r.mb_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"e2e_s_agg\": [\n");
  for (size_t i = 0; i < e2e.size(); ++i) {
    const E2eRow& r = e2e[i];
    std::fprintf(f,
                 "    {\"transport\": \"%s\", \"batch_max_calls\": %zu, "
                 "\"best_ms\": %.2f, "
                 "\"frames_sent\": %llu, \"bytes_sent\": %llu}%s\n",
                 r.transport.c_str(), r.batch_max_calls, r.best_ms,
                 static_cast<unsigned long long>(r.frames_sent),
                 static_cast<unsigned long long>(r.bytes_sent),
                 i + 1 < e2e.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr,
               "wrote %s (e2e s_agg 600 TDS: loopback %.1f/%.1f ms, "
               "tcp %.1f/%.1f ms serial/batched)\n",
               out_path.c_str(), e2e[0].best_ms, e2e[1].best_ms, e2e[2].best_ms,
               e2e[3].best_ms);
  return 0;
}

}  // namespace
}  // namespace tcells

int main(int argc, char** argv) {
  return tcells::Run(argc > 1 ? argv[1] : "BENCH_transport.json");
}
