// Fig 7: the Accounts example of the information-exposure analysis (§5,
// after Damiani et al. [12]). Builds the plaintext table, derives the IC
// table each encryption scheme induces, and prints the per-tuple exposure
// plus the table coefficient for plaintext / Det_Enc / nDet_Enc / equi-depth
// hash.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/exposure.h"

using namespace tcells;

int main() {
  // Accounts(Customer, Balance): Alice appears most often; 200 is the most
  // frequent balance — the attacker's frequency knowledge pins both.
  struct Row {
    const char* customer;
    int64_t balance;
  };
  const std::vector<Row> accounts = {
      {"Alice", 200}, {"Alice", 200}, {"Bob", 100},
      {"Chris", 200}, {"Donna", 300}, {"Elvis", 400},
  };

  std::map<std::string, uint64_t> customer_freq;
  std::map<int64_t, uint64_t> balance_freq;
  for (const auto& r : accounts) {
    customer_freq[r.customer]++;
    balance_freq[r.balance]++;
  }

  std::printf("=== Fig 7: Accounts table (%zu tuples) ===\n",
              accounts.size());
  std::printf("%-10s %s\n", "Customer", "Balance");
  for (const auto& r : accounts) {
    std::printf("%-10s %lld\n", r.customer,
                static_cast<long long>(r.balance));
  }

  // --- IC table under Det_Enc -------------------------------------------------
  // Every distinct value is one equivalence class; classes are matchable by
  // their cardinality.
  auto det_customer = analysis::ClassesForDetEnc([&] {
    std::map<int64_t, uint64_t> as_int;
    int64_t id = 0;
    for (const auto& [name, f] : customer_freq) as_int[id++] = f;
    return as_int;
  }());
  auto det_balance = analysis::ClassesForDetEnc(balance_freq);

  std::printf("\nIC table, Det_Enc (per-value inverse anonymity):\n");
  {
    std::map<uint64_t, uint64_t> card_count;
    for (const auto& [name, f] : customer_freq) card_count[f]++;
    for (const auto& [name, f] : customer_freq) {
      std::printf("  P(Enc(%-6s) identified) = 1/%llu\n", name.c_str(),
                  static_cast<unsigned long long>(card_count[f]));
    }
  }
  double eps_det_c = analysis::ColumnExposure(det_customer);
  double eps_det_b = analysis::ColumnExposure(det_balance);

  // --- Coefficients per scheme ------------------------------------------------
  uint64_t n_customers = customer_freq.size();
  uint64_t n_balances = balance_freq.size();
  double eps_plain = analysis::PlaintextExposure();
  double eps_ndet = analysis::NDetExposure({n_customers, n_balances});
  double eps_det = eps_det_c * eps_det_b;  // association inference
  // Equi-depth hash: two buckets of equal depth per column, together covering
  // exactly the distinct values (so each tuple's anonymity set is the full
  // column domain).
  double eps_hash =
      analysis::ColumnExposure(analysis::ClassesForHistogram(
          {{3, 3}, {3, n_customers - 3}})) *
      analysis::ColumnExposure(analysis::ClassesForHistogram(
          {{3, 2}, {3, n_balances - 2}}));

  std::printf("\nexposure coefficient of the whole table:\n");
  std::printf("  %-28s %.4f\n", "plaintext", eps_plain);
  std::printf("  %-28s %.4f   (P(<Enc(Alice),Enc(200)>) = %.2f)\n",
              "Det_Enc", eps_det, eps_det_c * eps_det_b);
  std::printf("  %-28s %.4f   (= 1/%llu * 1/%llu)\n", "nDet_Enc (S_Agg)",
              eps_ndet, static_cast<unsigned long long>(n_customers),
              static_cast<unsigned long long>(n_balances));
  std::printf("  %-28s %.4f\n", "equi-depth hash (ED_Hist)", eps_hash);

  // Sanity ordering as the paper states.
  bool ok = eps_plain > eps_det && eps_det > eps_hash &&
            eps_hash >= eps_ndet - 1e-12;
  std::printf("\nordering plaintext > Det_Enc > hash >= nDet_Enc: %s\n",
              ok ? "holds" : "VIOLATED");
  return ok ? 0 : 1;
}
