// End-to-end validation bench: runs the *functional* protocol simulation
// (real AES ciphertext through a real SSI) at laptop scale, reports the
// measured metrics per protocol and group count, and checks every result
// against the plaintext oracle. Complements the analytical Fig 10 benches:
// the shapes (who parallelizes, who pays for noise, how S_Agg iterates) are
// measured rather than modeled here.
//
// After the human-readable table, two machine-readable CSV blocks follow:
// one row per (G, protocol) run, and the engine-wide MetricsRegistry dump
// (counters + histograms) accumulated across all runs.
#include <cstdio>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocol/discovery.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tds/access_control.h"
#include "workload/generic.h"

using namespace tcells;

int main() {
  const size_t kTds = 600;
  sim::DeviceModel device;
  bool all_match = true;
  obs::MetricsRegistry registry;
  obs::Telemetry telemetry{&registry, nullptr};
  std::string run_csv =
      "groups,protocol,match,p_tds,load_bytes,tq_seconds,tlocal_seconds,"
      "rounds\n";

  std::printf("=== e2e simulation: N_t=%zu TDSs, functional protocols ===\n",
              kTds);
  std::printf("%-6s %-10s %-6s %8s %12s %10s %12s %7s\n", "G", "protocol",
              "match", "P_TDS", "Load_Q(B)", "T_Q(s)", "T_local(s)",
              "rounds");

  for (size_t groups : {2u, 8u, 32u}) {
    workload::GenericOptions gopts;
    gopts.num_tds = kTds;
    gopts.num_groups = groups;
    gopts.group_skew = 0.8;
    gopts.seed = 5 + groups;

    auto keys = crypto::KeyStore::CreateForTest(1000 + groups);
    auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x44));
    auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    protocol::Querier querier("bench", authority->Issue("bench"), keys);

    const std::string sql =
        "SELECT grp, AVG(val), COUNT(*) FROM T GROUP BY grp";
    auto oracle = protocol::ExecuteReference(*fleet, sql).ValueOrDie();

    protocol::RunOptions opts;
    opts.compute_availability = 0.1;
    opts.expected_groups = groups;

    auto domain = std::make_shared<std::vector<storage::Tuple>>();
    for (size_t g = 0; g < groups; ++g) {
      domain->push_back(
          storage::Tuple({storage::Value::String(workload::GroupName(g))}));
    }
    auto discovered = protocol::DiscoverDistribution(
                          fleet.get(), querier, 1, sql, device, opts)
                          .ValueOrDie();

    struct Entry {
      const char* name;
      std::unique_ptr<protocol::Protocol> protocol;
    };
    std::vector<Entry> entries;
    entries.push_back({"S_Agg", std::make_unique<protocol::SAggProtocol>()});
    entries.push_back(
        {"R2_Noise", std::make_unique<protocol::NoiseProtocol>(false, domain)});
    entries.push_back(
        {"C_Noise", std::make_unique<protocol::NoiseProtocol>(true, domain)});
    entries.push_back(
        {"ED_Hist", protocol::EdHistProtocol::FromDistribution(
                        discovered.frequency,
                        std::max<size_t>(1, groups / 4))});

    uint64_t query_id = 10;
    for (auto& e : entries) {
      auto outcome = protocol::RunQuery(*e.protocol, fleet.get(), querier,
                                        query_id++, sql, device, opts,
                                        telemetry);
      if (!outcome.ok()) {
        std::printf("%-6zu %-10s ERROR %s\n", groups, e.name,
                    outcome.status().ToString().c_str());
        all_match = false;
        continue;
      }
      bool match = outcome->result.SameRows(oracle);
      all_match = all_match && match;
      const auto& m = outcome->metrics;
      std::printf("%-6zu %-10s %-6s %8zu %12llu %10.5f %12.6f %7zu\n", groups,
                  e.name, match ? "yes" : "NO", m.Ptds(),
                  static_cast<unsigned long long>(m.LoadBytes()), m.Tq(),
                  m.Tlocal(device), m.aggregation_rounds);
      run_csv += std::to_string(groups) + "," + e.name + "," +
                 (match ? "1" : "0") + "," + std::to_string(m.Ptds()) + "," +
                 std::to_string(m.LoadBytes()) + "," +
                 obs::FormatDouble(m.Tq()) + "," +
                 obs::FormatDouble(m.Tlocal(device)) + "," +
                 std::to_string(m.aggregation_rounds) + "\n";
    }
  }

  std::printf("\n--- per-run metrics (csv) ---\n%s", run_csv.c_str());
  std::printf("\n--- engine metrics (csv) ---\n%s", registry.ToCsv().c_str());

  std::printf("\nall protocol results match the plaintext oracle: %s\n",
              all_match ? "yes" : "NO");
  return all_match ? 0 : 1;
}
