// End-to-end validation bench: runs the *functional* protocol simulation
// (real AES ciphertext through a real SSI) at laptop scale, reports the
// measured metrics per protocol and group count, and checks every result
// against the plaintext oracle. Complements the analytical Fig 10 benches:
// the shapes (who parallelizes, who pays for noise, how S_Agg iterates) are
// measured rather than modeled here.
//
// After the human-readable table, two machine-readable CSV blocks follow:
// one row per (G, protocol) run, and the engine-wide MetricsRegistry dump
// (counters + histograms) accumulated across all runs. A JSON summary with
// per-protocol wall time and ns/tuple is also written to BENCH_e2e.json (or
// argv[1]).
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocol/discovery.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

using namespace tcells;

int main(int argc, char** argv) {
  const size_t kTds = 600;
  sim::DeviceModel device;
  bool all_match = true;
  std::string metrics_csv;
  std::string run_csv =
      "groups,protocol,match,p_tds,load_bytes,tq_seconds,tlocal_seconds,"
      "rounds\n";
  // One JSON object per (G, protocol) run. ns_per_tuple is computed from
  // RunMetrics' query-path wall clock (aggregation + filtering rounds) over
  // the tuples those rounds processed — fleet setup, query submission and
  // the collection/load pass are excluded, so the committed before/after
  // numbers measure the per-tuple round path only. The total wall around
  // engine->Run is still reported separately as wall_ms.
  //
  // Each cell runs kReps times and reports the best (lowest ns_per_tuple)
  // repetition: the first run of a process pays one-off warm-up (thread
  // pool spin-up, page faults, cache/memo fills) that swamps a ~2 ms query
  // path, and the regression gate needs a stable statistic. Correctness is
  // checked on every repetition.
  const int kReps = 3;
  std::string json_runs;

  std::printf("=== e2e simulation: N_t=%zu TDSs, functional protocols ===\n",
              kTds);
  std::printf("%-6s %-10s %-6s %8s %12s %10s %12s %7s\n", "G", "protocol",
              "match", "P_TDS", "Load_Q(B)", "T_Q(s)", "T_local(s)",
              "rounds");

  for (size_t groups : {2u, 8u, 32u}) {
    workload::GenericOptions gopts;
    gopts.num_tds = kTds;
    gopts.num_groups = groups;
    gopts.group_skew = 0.8;
    gopts.seed = 5 + groups;

    auto keys = crypto::KeyStore::CreateForTest(1000 + groups);
    auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x44));
    auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    protocol::Querier querier("bench", authority->Issue("bench"), keys);

    const std::string sql =
        "SELECT grp, AVG(val), COUNT(*) FROM T GROUP BY grp";
    auto oracle = protocol::ExecuteReference(*fleet, sql).ValueOrDie();

    auto domain = std::make_shared<std::vector<storage::Tuple>>();
    for (size_t g = 0; g < groups; ++g) {
      domain->push_back(
          storage::Tuple({storage::Value::String(workload::GroupName(g))}));
    }

    Engine::Config cfg;
    cfg.options.compute_availability = 0.1;
    cfg.options.expected_groups = groups;
    auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
    auto discovered = engine->DiscoverInputs(querier, 1, sql).ValueOrDie();

    struct Entry {
      const char* name;
      std::unique_ptr<protocol::Protocol> protocol;
    };
    std::vector<Entry> entries;
    entries.push_back({"S_Agg", std::make_unique<protocol::SAggProtocol>()});
    entries.push_back(
        {"R2_Noise", std::make_unique<protocol::NoiseProtocol>(false, domain)});
    entries.push_back(
        {"C_Noise", std::make_unique<protocol::NoiseProtocol>(true, domain)});
    entries.push_back(
        {"ED_Hist", protocol::EdHistProtocol::FromDistribution(
                        discovered.distribution,
                        std::max<size_t>(1, groups / 4))});

    uint64_t query_id = 10;
    for (auto& e : entries) {
      std::optional<protocol::RunOutcome> best;
      double best_wall_ns = 0;
      uint64_t best_tuples = 0;
      bool match = true;
      bool errored = false;
      for (int rep = 0; rep < kReps; ++rep) {
        const uint64_t tuples_before =
            engine->metrics().counter("engine.tuples_processed").value();
        const auto wall0 = std::chrono::steady_clock::now();
        auto outcome = engine->Run(*e.protocol, querier, query_id++, sql);
        const double wall_ns =
            std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        const uint64_t tuples =
            engine->metrics().counter("engine.tuples_processed").value() -
            tuples_before;
        if (!outcome.ok()) {
          std::printf("%-6zu %-10s ERROR %s\n", groups, e.name,
                      outcome.status().ToString().c_str());
          errored = true;
          break;
        }
        match = match && outcome->result.SameRows(oracle);
        if (!best || outcome->metrics.QueryPathWallMicros() <
                         best->metrics.QueryPathWallMicros()) {
          best = std::move(*outcome);
          best_wall_ns = wall_ns;
          best_tuples = tuples;
        }
      }
      if (errored || !best) {
        all_match = false;
        continue;
      }
      all_match = all_match && match;
      const double wall_ns = best_wall_ns;
      const uint64_t tuples = best_tuples;
      const auto& m = best->metrics;
      std::printf("%-6zu %-10s %-6s %8zu %12llu %10.5f %12.6f %7zu\n", groups,
                  e.name, match ? "yes" : "NO", m.Ptds(),
                  static_cast<unsigned long long>(m.LoadBytes()), m.Tq(),
                  m.Tlocal(device), m.aggregation_rounds);
      run_csv += std::to_string(groups) + "," + e.name + "," +
                 (match ? "1" : "0") + "," + std::to_string(m.Ptds()) + "," +
                 std::to_string(m.LoadBytes()) + "," +
                 obs::FormatDouble(m.Tq()) + "," +
                 obs::FormatDouble(m.Tlocal(device)) + "," +
                 std::to_string(m.aggregation_rounds) + "\n";
      const double query_path_wall_us = m.QueryPathWallMicros();
      const uint64_t query_path_tuples = m.QueryPathTuples();
      const double ns_per_tuple =
          query_path_tuples == 0
              ? 0.0
              : query_path_wall_us * 1000.0 /
                    static_cast<double>(query_path_tuples);
      char json_row[640];
      std::snprintf(
          json_row, sizeof(json_row),
          "    {\"groups\": %zu, \"protocol\": \"%s\", \"match\": %s, "
          "\"wall_ms\": %.3f, \"collection_wall_ms\": %.3f, "
          "\"query_path_wall_ms\": %.3f, \"query_path_tuples\": %llu, "
          "\"tuples_processed\": %llu, "
          "\"ns_per_tuple\": %.1f, \"p_tds\": %zu, \"load_bytes\": %llu, "
          "\"tq_seconds\": %.6f, \"rounds\": %zu}",
          groups, e.name, match ? "true" : "false", wall_ns / 1e6,
          m.collection_wall_micros / 1e3, query_path_wall_us / 1e3,
          static_cast<unsigned long long>(query_path_tuples),
          static_cast<unsigned long long>(tuples), ns_per_tuple,
          m.Ptds(), static_cast<unsigned long long>(m.LoadBytes()), m.Tq(),
          m.aggregation_rounds);
      if (!json_runs.empty()) json_runs += ",\n";
      json_runs += json_row;
    }
    metrics_csv += engine->metrics().ToCsv();
  }

  std::printf("\n--- per-run metrics (csv) ---\n%s", run_csv.c_str());
  std::printf("\n--- engine metrics (csv, one block per G) ---\n%s",
              metrics_csv.c_str());

  const char* json_path = argc > 1 ? argv[1] : "BENCH_e2e.json";
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"bench_e2e_protocols\",\n");
    std::fprintf(f, "  \"num_tds\": %zu,\n", kTds);
    std::fprintf(f, "  \"all_match\": %s,\n", all_match ? "true" : "false");
    std::fprintf(f, "  \"runs\": [\n%s\n  ]\n}\n", json_runs.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  } else {
    std::printf("could not write %s\n", json_path);
  }

  std::printf("\nall protocol results match the plaintext oracle: %s\n",
              all_match ? "yes" : "NO");
  return all_match ? 0 : 1;
}
