// Parallel fleet-engine scaling bench: one S_Agg query over a 10k-TDS fleet,
// executed with 1/2/4/8 worker threads. Reports wall-clock per thread count
// and the speedup over the serial run, and verifies the engine's determinism
// contract on real ciphertext volume: every thread count must produce the
// same result rows, the same Load_Q down to the byte, and a byte-identical
// telemetry trace (obs/trace.h).
//
// Speedup depends on the machine: the fan-out covers the collection pass and
// every aggregation/filtering round, so on a multicore host the 8-thread run
// should be >= 2x the serial one. On a single-core container all thread
// counts degenerate to roughly serial time (and the determinism check is the
// part that still bites).
//
// The summary table is followed by a machine-readable CSV block
// (threads,wall_seconds,speedup,load_bytes,identical) for plotting scripts.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

using namespace tcells;

int main() {
  const size_t kTds = 10000;
  const size_t kGroups = 16;

  workload::GenericOptions gopts;
  gopts.num_tds = kTds;
  gopts.num_groups = kGroups;
  gopts.group_skew = 0.8;
  gopts.seed = 71;

  auto keys = crypto::KeyStore::CreateForTest(2028);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x66));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("bench", authority->Issue("bench"), keys);

  const std::string sql =
      "SELECT grp, COUNT(*), SUM(cat), AVG(val) FROM T GROUP BY grp";
  auto oracle = protocol::ExecuteReference(*fleet, sql).ValueOrDie();

  Engine::Config cfg;
  cfg.options.compute_availability = 0.1;
  cfg.options.expected_groups = kGroups;
  cfg.options.seed = 7;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();

  std::printf(
      "=== parallel scaling: N_t=%zu, G=%zu, S_Agg, hardware threads=%u ===\n",
      kTds, kGroups, std::thread::hardware_concurrency());
  std::printf("%-8s %12s %9s %-6s %12s %-6s\n", "threads", "wall(s)",
              "speedup", "match", "Load_Q(B)", "trace");

  double serial_seconds = 0;
  std::string serial_result;
  std::string serial_trace;
  uint64_t serial_load = 0;
  bool ok = true;

  struct Row {
    size_t threads;
    double seconds;
    double speedup;
    uint64_t load;
    bool identical;
  };
  std::vector<Row> rows;

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    protocol::SAggProtocol protocol;
    protocol::RunOptions opts = cfg.options;
    opts.num_threads = threads;

    auto t0 = std::chrono::steady_clock::now();
    // The query id (and thus the derived per-query seed) must be the same
    // for every thread count or the runs would not be comparable. The
    // engine's tracer starts a fresh per-query span tree on every run, and
    // the default JSON export omits wall times, so the serialized trace
    // must be byte-identical for every thread count.
    auto outcome = engine->Run(protocol, querier, /*query_id=*/1, sql, opts);
    auto t1 = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (!outcome.ok()) {
      std::printf("%-8zu ERROR %s\n", threads,
                  outcome.status().ToString().c_str());
      return 1;
    }

    bool match = outcome->result.SameRows(oracle);
    uint64_t load = outcome->metrics.LoadBytes();
    std::string trace_json =
        outcome->trace ? outcome->trace->ToJson() : std::string();
    bool trace_identical = true;
    if (threads == 1) {
      serial_seconds = seconds;
      serial_result = outcome->result.ToString();
      serial_load = load;
      serial_trace = trace_json;
    } else {
      // The determinism contract: bit-identical rows, byte-identical
      // traffic and a byte-identical span tree at every thread count.
      trace_identical = trace_json == serial_trace;
      match = match && outcome->result.ToString() == serial_result &&
              load == serial_load && trace_identical;
    }
    ok = ok && match;
    std::printf("%-8zu %12.3f %8.2fx %-6s %12llu %-6s\n", threads, seconds,
                serial_seconds / seconds, match ? "yes" : "NO",
                static_cast<unsigned long long>(load),
                trace_identical ? "same" : "DIFF");
    rows.push_back({threads, seconds, serial_seconds / seconds, load,
                    trace_identical});
  }

  std::printf("\n--- machine-readable (csv) ---\n");
  std::printf("threads,wall_seconds,speedup,load_bytes,trace_identical\n");
  for (const Row& r : rows) {
    std::printf("%zu,%s,%s,%llu,%d\n", r.threads,
                obs::FormatDouble(r.seconds).c_str(),
                obs::FormatDouble(r.speedup).c_str(),
                static_cast<unsigned long long>(r.load),
                r.identical ? 1 : 0);
  }

  std::printf("\nall thread counts bit-identical and oracle-correct: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
