// Parallel fleet-engine scaling bench: one S_Agg query over a 10k-TDS fleet,
// executed with 1/2/4/8 worker threads. Reports wall-clock per thread count
// and the speedup over the serial run, and verifies the engine's determinism
// contract on real ciphertext volume: every thread count must produce the
// same result rows and the same Load_Q down to the byte.
//
// Speedup depends on the machine: the fan-out covers the collection pass and
// every aggregation/filtering round, so on a multicore host the 8-thread run
// should be >= 2x the serial one. On a single-core container all thread
// counts degenerate to roughly serial time (and the determinism check is the
// part that still bites).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tds/access_control.h"
#include "workload/generic.h"

using namespace tcells;

int main() {
  const size_t kTds = 10000;
  const size_t kGroups = 16;
  sim::DeviceModel device;

  workload::GenericOptions gopts;
  gopts.num_tds = kTds;
  gopts.num_groups = kGroups;
  gopts.group_skew = 0.8;
  gopts.seed = 71;

  auto keys = crypto::KeyStore::CreateForTest(2028);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x66));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("bench", authority->Issue("bench"), keys);

  const std::string sql =
      "SELECT grp, COUNT(*), SUM(cat), AVG(val) FROM T GROUP BY grp";
  auto oracle = protocol::ExecuteReference(*fleet, sql).ValueOrDie();

  std::printf(
      "=== parallel scaling: N_t=%zu, G=%zu, S_Agg, hardware threads=%u ===\n",
      kTds, kGroups, std::thread::hardware_concurrency());
  std::printf("%-8s %12s %9s %-6s %12s\n", "threads", "wall(s)", "speedup",
              "match", "Load_Q(B)");

  double serial_seconds = 0;
  std::string serial_result;
  uint64_t serial_load = 0;
  bool ok = true;

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    protocol::SAggProtocol protocol;
    protocol::RunOptions opts;
    opts.compute_availability = 0.1;
    opts.expected_groups = kGroups;
    opts.seed = 7;
    opts.num_threads = threads;

    auto t0 = std::chrono::steady_clock::now();
    auto outcome = protocol::RunQuery(protocol, fleet.get(), querier, threads,
                                      sql, device, opts);
    auto t1 = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (!outcome.ok()) {
      std::printf("%-8zu ERROR %s\n", threads,
                  outcome.status().ToString().c_str());
      return 1;
    }

    bool match = outcome->result.SameRows(oracle);
    uint64_t load = outcome->metrics.LoadBytes();
    if (threads == 1) {
      serial_seconds = seconds;
      serial_result = outcome->result.ToString();
      serial_load = load;
    } else {
      // The determinism contract: bit-identical rows and byte-identical
      // traffic at every thread count.
      match = match && outcome->result.ToString() == serial_result &&
              load == serial_load;
    }
    ok = ok && match;
    std::printf("%-8zu %12.3f %8.2fx %-6s %12llu\n", threads, seconds,
                serial_seconds / seconds, match ? "yes" : "NO",
                static_cast<unsigned long long>(load));
  }

  std::printf("\nall thread counts bit-identical and oracle-correct: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
