// Fig 10e/10f/10i/10j: query response time T_Q (aggregation phase) vs G at
// three availability levels, and vs N_t.
#include "bench_fig10_common.h"

int main(int argc, char** argv) {
  tcells::bench::ParseBenchArgs(argc, argv);
  using tcells::analysis::CostMetrics;
  auto tq = [](const CostMetrics& m) { return m.tq_seconds; };
  std::printf("=== Fig 10i: T_Q (s) vs G, available TDS = 1%% of N_t ===\n");
  tcells::bench::SweepG("T_Q(s)", tq, 0.01);
  std::printf("=== Fig 10e: T_Q (s) vs G, available TDS = 10%% of N_t ===\n");
  tcells::bench::SweepG("T_Q(s)", tq, 0.1);
  std::printf("=== Fig 10j: T_Q (s) vs G, available TDS = 100%% of N_t ===\n");
  tcells::bench::SweepG("T_Q(s)", tq, 1.0);
  std::printf("=== Fig 10f: T_Q (s) vs N_t ===\n");
  tcells::bench::SweepNt("T_Q(s)", tq);
  return 0;
}
