// Crypto-engine speedup harness: times the current AES/HMAC/scheme kernels
// against a faithful copy of the seed (pre-engine) kernels compiled into this
// binary, and writes the results to BENCH_crypto.json (or argv[1]).
//
// The embedded baseline is the byte-wise AES (per-byte GF(2^8) Mul loops in
// InvMixColumns), the one-shot HMAC that re-derives ipad/opad per call, and
// the allocation-heavy nDet/Det scheme bodies — exactly what shipped before
// the T-table/AES-NI engine, so the reported speedups measure this PR's
// kernels, on this machine, in a single run.
//
// Timing is hand-rolled (steady_clock, calibrated batch loops) so the target
// stays dependency-light and emits machine-readable JSON directly.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/aes_dispatch.h"
#include "crypto/encryption.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace tcells {
namespace seedimpl {

// ---------------------------------------------------------------------------
// Seed AES-128: straight FIPS-197 byte-wise rounds; decryption multiplies
// every state byte by 9/11/13/14 with a shift-and-add GF(2^8) loop.

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

inline uint8_t Xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

inline uint8_t Mul(uint8_t x, uint8_t y) {
  uint8_t r = 0;
  while (y) {
    if (y & 1) r ^= x;
    x = Xtime(x);
    y >>= 1;
  }
  return r;
}

class SeedAes128 {
 public:
  static constexpr size_t kBlockSize = 16;

  explicit SeedAes128(const Bytes& key) {
    uint8_t* rk = round_keys_.data();
    std::memcpy(rk, key.data(), 16);
    for (int i = 4; i < 44; ++i) {
      uint8_t temp[4];
      std::memcpy(temp, rk + 4 * (i - 1), 4);
      if (i % 4 == 0) {
        uint8_t t = temp[0];
        temp[0] = static_cast<uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4]);
        temp[1] = kSbox[temp[2]];
        temp[2] = kSbox[temp[3]];
        temp[3] = kSbox[t];
      }
      for (int k = 0; k < 4; ++k) {
        rk[4 * i + k] = rk[4 * (i - 4) + k] ^ temp[k];
      }
    }
  }

  void EncryptBlock(uint8_t s[kBlockSize]) const {
    const uint8_t* rk = round_keys_.data();
    for (size_t i = 0; i < kBlockSize; ++i) s[i] ^= rk[i];
    for (int round = 1; round <= 10; ++round) {
      for (size_t i = 0; i < kBlockSize; ++i) s[i] = kSbox[s[i]];
      uint8_t t;
      t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
      t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
      t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
      if (round != 10) {
        for (int c = 0; c < 4; ++c) {
          uint8_t* col = s + 4 * c;
          uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
          uint8_t all = a0 ^ a1 ^ a2 ^ a3;
          col[0] ^= all ^ Xtime(a0 ^ a1);
          col[1] ^= all ^ Xtime(a1 ^ a2);
          col[2] ^= all ^ Xtime(a2 ^ a3);
          col[3] ^= all ^ Xtime(a3 ^ a0);
        }
      }
      for (size_t i = 0; i < kBlockSize; ++i) s[i] ^= rk[16 * round + i];
    }
  }

  void DecryptBlock(uint8_t s[kBlockSize]) const {
    const uint8_t* rk = round_keys_.data();
    for (size_t i = 0; i < kBlockSize; ++i) s[i] ^= rk[160 + i];
    for (int round = 9; round >= 0; --round) {
      uint8_t t;
      t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
      t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
      t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
      for (size_t i = 0; i < kBlockSize; ++i) s[i] = kInvSbox[s[i]];
      for (size_t i = 0; i < kBlockSize; ++i) s[i] ^= rk[16 * round + i];
      if (round != 0) {
        for (int c = 0; c < 4; ++c) {
          uint8_t* col = s + 4 * c;
          uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
          col[0] = static_cast<uint8_t>(Mul(a0, 14) ^ Mul(a1, 11) ^
                                        Mul(a2, 13) ^ Mul(a3, 9));
          col[1] = static_cast<uint8_t>(Mul(a0, 9) ^ Mul(a1, 14) ^
                                        Mul(a2, 11) ^ Mul(a3, 13));
          col[2] = static_cast<uint8_t>(Mul(a0, 13) ^ Mul(a1, 9) ^
                                        Mul(a2, 14) ^ Mul(a3, 11));
          col[3] = static_cast<uint8_t>(Mul(a0, 11) ^ Mul(a1, 13) ^
                                        Mul(a2, 9) ^ Mul(a3, 14));
        }
      }
    }
  }

 private:
  std::array<uint8_t, 176> round_keys_{};
};

// Seed one-shot HMAC: re-derives the padded key blocks on every call.
std::array<uint8_t, 32> SeedHmacSha256(const Bytes& key, const Bytes& data) {
  uint8_t block_key[crypto::Sha256::kBlockSize] = {0};
  if (key.size() > crypto::Sha256::kBlockSize) {
    auto digest = crypto::Sha256::Hash(key);
    std::memcpy(block_key, digest.data(), digest.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }
  uint8_t ipad[crypto::Sha256::kBlockSize];
  uint8_t opad[crypto::Sha256::kBlockSize];
  for (size_t i = 0; i < crypto::Sha256::kBlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }
  crypto::Sha256 inner;
  inner.Update(ipad, sizeof(ipad));
  inner.Update(data);
  auto inner_digest = inner.Finish();
  crypto::Sha256 outer;
  outer.Update(opad, sizeof(opad));
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

// Seed CTR: one EncryptBlock call per keystream block.
void SeedCtrXor(const SeedAes128& aes, const uint8_t iv[16], const uint8_t* in,
                size_t n, uint8_t* out) {
  uint8_t counter[16];
  std::memcpy(counter, iv, 16);
  uint8_t keystream[16];
  size_t pos = 0;
  while (pos < n) {
    std::memcpy(keystream, counter, 16);
    aes.EncryptBlock(keystream);
    size_t take = std::min<size_t>(16, n - pos);
    for (size_t i = 0; i < take; ++i) out[pos + i] = in[pos + i] ^ keystream[i];
    pos += take;
    for (int i = 15; i >= 8; --i) {
      if (++counter[i] != 0) break;
    }
  }
}

// Seed scheme bodies (allocation and copy behaviour preserved: Encrypt
// allocates + insert()s the tag, Decrypt copies the full body to MAC it).
struct SeedNDetEnc {
  SeedNDetEnc(const Bytes& master)
      : aes(crypto::DeriveKey(master, "ndet-enc")),
        mac_key(crypto::DeriveKey(master, "ndet-mac")) {}

  Bytes Encrypt(const Bytes& plaintext, Rng* rng) const {
    Bytes out = rng->NextBytes(16);
    out.resize(16 + plaintext.size());
    SeedCtrXor(aes, out.data(), plaintext.data(), plaintext.size(),
               out.data() + 16);
    auto tag = SeedHmacSha256(mac_key, out);
    out.insert(out.end(), tag.begin(), tag.begin() + 8);
    return out;
  }

  Bytes Decrypt(const Bytes& ciphertext) const {
    Bytes body(ciphertext.begin(), ciphertext.end() - 8);
    auto tag = SeedHmacSha256(mac_key, body);
    if (!std::equal(tag.begin(), tag.begin() + 8, ciphertext.end() - 8)) {
      return Bytes();
    }
    Bytes plain(body.size() - 16);
    SeedCtrXor(aes, body.data(), body.data() + 16, plain.size(), plain.data());
    return plain;
  }

  SeedAes128 aes;
  Bytes mac_key;
};

struct SeedDetEnc {
  SeedDetEnc(const Bytes& master)
      : aes(crypto::DeriveKey(master, "det-enc")),
        mac_key(crypto::DeriveKey(master, "det-siv")) {}

  Bytes Encrypt(const Bytes& plaintext) const {
    auto siv_full = SeedHmacSha256(mac_key, plaintext);
    Bytes out(16 + plaintext.size());
    std::memcpy(out.data(), siv_full.data(), 16);
    SeedCtrXor(aes, out.data(), plaintext.data(), plaintext.size(),
               out.data() + 16);
    return out;
  }

  Bytes Decrypt(const Bytes& ciphertext) const {
    Bytes plain(ciphertext.size() - 16);
    SeedCtrXor(aes, ciphertext.data(), ciphertext.data() + 16, plain.size(),
               plain.data());
    auto siv_full = SeedHmacSha256(mac_key, plain);
    if (!std::equal(siv_full.begin(), siv_full.begin() + 16,
                    ciphertext.begin())) {
      return Bytes();
    }
    return plain;
  }

  SeedAes128 aes;
  Bytes mac_key;
};

}  // namespace seedimpl

namespace {

// A compiler fence standing in for benchmark::DoNotOptimize.
template <typename T>
inline void Consume(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct Measurement {
  std::string name;     ///< operation, e.g. "aes128_decrypt_block"
  std::string impl;     ///< "seed", "portable" or "aesni"
  size_t bytes_per_op;  ///< payload bytes one op processes (0 = n/a)
  double ns_per_op;
  double ops_per_sec;
  double mb_per_sec;  ///< 0 when bytes_per_op == 0
};

// Times `fn` (which must run `batch` operations per call): warms up, then
// runs enough batches to fill ~200ms of wall clock and returns ns per op.
double TimeNsPerOp(const std::function<void()>& fn, size_t batch) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up and one-time allocations
  // Calibrate: how many batches fit in ~10ms?
  size_t calib = 1;
  for (;;) {
    auto t0 = clock::now();
    for (size_t i = 0; i < calib; ++i) fn();
    double ns = std::chrono::duration<double, std::nano>(clock::now() - t0)
                    .count();
    if (ns > 1e7 || calib > (1u << 24)) {
      double target = 2e8;  // 200ms measured region
      size_t reps = std::max<size_t>(1, static_cast<size_t>(
                                            calib * target / std::max(ns, 1.0)));
      auto m0 = clock::now();
      for (size_t i = 0; i < reps; ++i) fn();
      double total =
          std::chrono::duration<double, std::nano>(clock::now() - m0).count();
      return total / (static_cast<double>(reps) * batch);
    }
    calib *= 2;
  }
}

Measurement Measure(const std::string& name, const std::string& impl,
                    size_t bytes_per_op, size_t batch,
                    const std::function<void()>& fn) {
  Measurement m;
  m.name = name;
  m.impl = impl;
  m.bytes_per_op = bytes_per_op;
  m.ns_per_op = TimeNsPerOp(fn, batch);
  m.ops_per_sec = 1e9 / m.ns_per_op;
  m.mb_per_sec =
      bytes_per_op == 0 ? 0 : m.ops_per_sec * bytes_per_op / (1024.0 * 1024.0);
  std::fprintf(stderr, "%-28s %-9s %12.1f ns/op %14.0f ops/s %10.1f MB/s\n",
               m.name.c_str(), m.impl.c_str(), m.ns_per_op, m.ops_per_sec,
               m.mb_per_sec);
  return m;
}

double FindNs(const std::vector<Measurement>& ms, const std::string& name,
              const std::string& impl) {
  for (const auto& m : ms) {
    if (m.name == name && m.impl == impl) return m.ns_per_op;
  }
  return 0;
}

}  // namespace

// The speedup numbers only mean something if both kernels compute the same
// function: before timing, check the seed kernel and the current engine
// produce bit-identical ciphertexts (same keys, same Rng stream) on every
// available backend. Returns false — and the bench fails — on any mismatch.
bool VerifyBitIdentity(const seedimpl::SeedAes128& seed_aes,
                       const crypto::Aes128& aes,
                       const seedimpl::SeedNDetEnc& seed_ndet,
                       const crypto::NDetEnc& ndet,
                       const seedimpl::SeedDetEnc& seed_det,
                       const crypto::DetEnc& det) {
  std::vector<crypto::AesBackend> backends = {crypto::AesBackend::kPortable};
  if (crypto::AesNiAvailable()) backends.push_back(crypto::AesBackend::kAesNi);
  bool ok = true;
  Rng rng(7);
  for (auto backend : backends) {
    crypto::ForceAesBackend(backend);
    for (int trial = 0; trial < 5 && ok; ++trial) {
      Bytes block = rng.NextBytes(16);
      Bytes seed_block = block, new_block = block;
      seed_aes.EncryptBlock(seed_block.data());
      aes.EncryptBlock(new_block.data());
      ok = ok && seed_block == new_block;
      seed_aes.DecryptBlock(seed_block.data());
      aes.DecryptBlock(new_block.data());
      ok = ok && seed_block == new_block && seed_block == block;

      Bytes pt = rng.NextBytes(1 + rng.NextBelow(300));
      uint64_t iv_seed = rng.Next();
      Rng rng_a(iv_seed), rng_b(iv_seed);
      ok = ok && seed_ndet.Encrypt(pt, &rng_a) == ndet.Encrypt(pt, &rng_b);
      ok = ok && seed_det.Encrypt(pt) == det.Encrypt(pt);
    }
    if (!ok) {
      std::fprintf(stderr,
                   "FATAL: %s backend disagrees with the seed kernel\n",
                   crypto::AesBackendName(backend));
    }
  }
  crypto::ForceAesBackend(std::nullopt);
  return ok;
}

int Run(const std::string& out_path) {
  Rng rng(42);
  const Bytes key = rng.NextBytes(16);
  const Bytes master = rng.NextBytes(16);
  const size_t kMsg = 1024;  // representative sealed-tuple payload

  seedimpl::SeedAes128 seed_aes(key);
  auto aes = crypto::Aes128::Create(key).ValueOrDie();
  seedimpl::SeedNDetEnc seed_ndet(master);
  seedimpl::SeedDetEnc seed_det(master);
  auto ndet = crypto::NDetEnc::Create(master).ValueOrDie();
  auto det = crypto::DetEnc::Create(master).ValueOrDie();

  if (!VerifyBitIdentity(seed_aes, aes, seed_ndet, ndet, seed_det, det)) {
    return 1;
  }
  std::fprintf(stderr,
               "bit-identity seed vs engine verified on all backends\n");

  std::vector<Measurement> ms;
  std::vector<std::string> impls = {"portable"};
  if (crypto::AesNiAvailable()) impls.push_back("aesni");

  // --- AES single block ---
  {
    uint8_t block[16] = {0};
    ms.push_back(Measure("aes128_encrypt_block", "seed", 16, 1, [&] {
      seed_aes.EncryptBlock(block);
      Consume(block);
    }));
    ms.push_back(Measure("aes128_decrypt_block", "seed", 16, 1, [&] {
      seed_aes.DecryptBlock(block);
      Consume(block);
    }));
    for (const auto& impl : impls) {
      crypto::ForceAesBackend(impl == "aesni" ? crypto::AesBackend::kAesNi
                                              : crypto::AesBackend::kPortable);
      ms.push_back(Measure("aes128_encrypt_block", impl, 16, 1, [&] {
        aes.EncryptBlock(block);
        Consume(block);
      }));
      ms.push_back(Measure("aes128_decrypt_block", impl, 16, 1, [&] {
        aes.DecryptBlock(block);
        Consume(block);
      }));
    }
    crypto::ForceAesBackend(std::nullopt);
  }

  // --- AES batched blocks (64 at a time, in place) ---
  {
    Bytes buf = rng.NextBytes(64 * 16);
    for (const auto& impl : impls) {
      crypto::ForceAesBackend(impl == "aesni" ? crypto::AesBackend::kAesNi
                                              : crypto::AesBackend::kPortable);
      ms.push_back(Measure("aes128_encrypt_blocks64", impl, 64 * 16, 1, [&] {
        aes.EncryptBlocks(buf.data(), buf.data(), 64);
        Consume(buf);
      }));
      ms.push_back(Measure("aes128_decrypt_blocks64", impl, 64 * 16, 1, [&] {
        aes.DecryptBlocks(buf.data(), buf.data(), 64);
        Consume(buf);
      }));
    }
    crypto::ForceAesBackend(std::nullopt);
  }

  // --- CTR keystream over a 1 KiB message ---
  {
    Bytes iv = rng.NextBytes(16);
    Bytes in = rng.NextBytes(kMsg);
    Bytes out(kMsg);
    ms.push_back(Measure("ctr_xor_1k", "seed", kMsg, 1, [&] {
      seedimpl::SeedCtrXor(seed_aes, iv.data(), in.data(), in.size(),
                           out.data());
      Consume(out);
    }));
    for (const auto& impl : impls) {
      crypto::ForceAesBackend(impl == "aesni" ? crypto::AesBackend::kAesNi
                                              : crypto::AesBackend::kPortable);
      ms.push_back(Measure("ctr_xor_1k", impl, kMsg, 1, [&] {
        crypto::CtrXor(aes, iv.data(), in.data(), in.size(), out.data());
        Consume(out);
      }));
    }
    crypto::ForceAesBackend(std::nullopt);
  }

  // --- HMAC over a 64-byte message (backend-independent) ---
  {
    Bytes mkey = rng.NextBytes(16);
    crypto::HmacState mac(mkey);
    Bytes data = rng.NextBytes(64);
    ms.push_back(Measure("hmac_sha256_64", "seed", 64, 1, [&] {
      auto d = seedimpl::SeedHmacSha256(mkey, data);
      Consume(d);
    }));
    ms.push_back(Measure("hmac_sha256_64", "portable", 64, 1, [&] {
      auto d = mac.Mac(data);
      Consume(d);
    }));
  }

  // --- nDet_Enc / Det_Enc on a 1 KiB payload ---
  {
    Bytes pt = rng.NextBytes(kMsg);
    Bytes seed_ct = seed_ndet.Encrypt(pt, &rng);
    Bytes ct, back;
    ms.push_back(Measure("ndet_encrypt_1k", "seed", kMsg, 1, [&] {
      Bytes c = seed_ndet.Encrypt(pt, &rng);
      Consume(c);
    }));
    ms.push_back(Measure("ndet_decrypt_1k", "seed", kMsg, 1, [&] {
      Bytes p = seed_ndet.Decrypt(seed_ct);
      Consume(p);
    }));
    ms.push_back(Measure("det_encrypt_1k", "seed", kMsg, 1, [&] {
      Bytes c = seed_det.Encrypt(pt);
      Consume(c);
    }));
    Bytes seed_det_ct = seed_det.Encrypt(pt);
    ms.push_back(Measure("det_decrypt_1k", "seed", kMsg, 1, [&] {
      Bytes p = seed_det.Decrypt(seed_det_ct);
      Consume(p);
    }));
    ms.push_back(Measure("det_roundtrip_1k", "seed", 2 * kMsg, 1, [&] {
      Bytes c = seed_det.Encrypt(pt);
      Bytes p = seed_det.Decrypt(c);
      Consume(p);
    }));
    for (const auto& impl : impls) {
      crypto::ForceAesBackend(impl == "aesni" ? crypto::AesBackend::kAesNi
                                              : crypto::AesBackend::kPortable);
      Bytes new_ct = ndet.Encrypt(pt, &rng);
      ms.push_back(Measure("ndet_encrypt_1k", impl, kMsg, 1, [&] {
        ndet.Encrypt(pt.data(), pt.size(), &rng, &ct);
        Consume(ct);
      }));
      ms.push_back(Measure("ndet_decrypt_1k", impl, kMsg, 1, [&] {
        Consume(ndet.Decrypt(new_ct.data(), new_ct.size(), &back).ok());
      }));
      ms.push_back(Measure("det_encrypt_1k", impl, kMsg, 1, [&] {
        det.Encrypt(pt.data(), pt.size(), &ct);
        Consume(ct);
      }));
      Bytes det_ct = det.Encrypt(pt);
      ms.push_back(Measure("det_decrypt_1k", impl, kMsg, 1, [&] {
        Consume(det.Decrypt(det_ct.data(), det_ct.size(), &back).ok());
      }));
      ms.push_back(Measure("det_roundtrip_1k", impl, 2 * kMsg, 1, [&] {
        det.Encrypt(pt.data(), pt.size(), &ct);
        Consume(det.Decrypt(ct.data(), ct.size(), &back).ok());
      }));
    }
    crypto::ForceAesBackend(std::nullopt);
  }

  // --- Speedups vs the seed kernel (portable path = apples-to-apples) ---
  struct SpeedupRow {
    const char* key;
    const char* name;
    const char* impl;
  };
  const SpeedupRow rows[] = {
      {"aes128_encrypt_block.portable_vs_seed", "aes128_encrypt_block",
       "portable"},
      {"aes128_decrypt_block.portable_vs_seed", "aes128_decrypt_block",
       "portable"},
      {"aes128_encrypt_block.aesni_vs_seed", "aes128_encrypt_block", "aesni"},
      {"aes128_decrypt_block.aesni_vs_seed", "aes128_decrypt_block", "aesni"},
      {"ctr_xor_1k.portable_vs_seed", "ctr_xor_1k", "portable"},
      {"ctr_xor_1k.aesni_vs_seed", "ctr_xor_1k", "aesni"},
      {"hmac_sha256_64.state_vs_seed", "hmac_sha256_64", "portable"},
      {"ndet_encrypt_1k.portable_vs_seed", "ndet_encrypt_1k", "portable"},
      {"ndet_decrypt_1k.portable_vs_seed", "ndet_decrypt_1k", "portable"},
      {"det_encrypt_1k.portable_vs_seed", "det_encrypt_1k", "portable"},
      {"det_decrypt_1k.portable_vs_seed", "det_decrypt_1k", "portable"},
      {"det_roundtrip_1k.portable_vs_seed", "det_roundtrip_1k", "portable"},
      {"det_roundtrip_1k.aesni_vs_seed", "det_roundtrip_1k", "aesni"},
  };

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_crypto_json\",\n");
  std::fprintf(f, "  \"aesni_available\": %s,\n",
               crypto::AesNiAvailable() ? "true" : "false");
  std::fprintf(f, "  \"message_bytes\": %zu,\n", kMsg);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < ms.size(); ++i) {
    const auto& m = ms[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"impl\": \"%s\", "
                 "\"bytes_per_op\": %zu, \"ns_per_op\": %.2f, "
                 "\"ops_per_sec\": %.0f, \"mb_per_sec\": %.2f}%s\n",
                 m.name.c_str(), m.impl.c_str(), m.bytes_per_op, m.ns_per_op,
                 m.ops_per_sec, m.mb_per_sec,
                 i + 1 < ms.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_vs_seed\": {\n");
  std::vector<std::string> lines;
  for (const auto& row : rows) {
    double seed_ns = FindNs(ms, row.name, "seed");
    double new_ns = FindNs(ms, row.name, row.impl);
    if (seed_ns <= 0 || new_ns <= 0) continue;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.2f", row.key,
                  seed_ns / new_ns);
    lines.push_back(buf);
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    std::fprintf(f, "%s%s\n", lines[i].c_str(),
                 i + 1 < lines.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  const double dec_speedup = FindNs(ms, "aes128_decrypt_block", "seed") /
                             FindNs(ms, "aes128_decrypt_block", "portable");
  const double det_speedup = FindNs(ms, "det_roundtrip_1k", "seed") /
                             FindNs(ms, "det_roundtrip_1k", "portable");
  std::fprintf(f, "  \"acceptance\": {\n");
  std::fprintf(f, "    \"aes_decrypt_portable_speedup\": %.2f,\n", dec_speedup);
  std::fprintf(f, "    \"aes_decrypt_portable_ge_5x\": %s,\n",
               dec_speedup >= 5.0 ? "true" : "false");
  std::fprintf(f, "    \"det_roundtrip_portable_speedup\": %.2f,\n",
               det_speedup);
  std::fprintf(f, "    \"det_roundtrip_portable_ge_2x\": %s\n",
               det_speedup >= 2.0 ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (aes decrypt %.1fx, det roundtrip %.1fx)\n",
               out_path.c_str(), dec_speedup, det_speedup);
  return 0;
}

}  // namespace tcells

int main(int argc, char** argv) {
  return tcells::Run(argc > 1 ? argv[1] : "BENCH_crypto.json");
}
