// Micro-benchmarks (google-benchmark) for the unit operations that calibrate
// the cost model (§6.2): AES block, SHA-256, HMAC, the two encryption
// schemes, tuple codec, SQL parsing and partial aggregation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/aes_dispatch.h"
#include "crypto/encryption.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/sha256.h"
#include "sql/aggregates.h"
#include "sql/parser.h"
#include "storage/tuple.h"

namespace tcells {
namespace {

// Backend-parameterized benchmarks take an arg 0 = portable, 1 = AES-NI.
// Returns false (and skips the benchmark) when the requested backend is not
// available on this machine; restores default dispatch at benchmark teardown
// via the caller-side ForceAesBackend(nullopt) below.
bool SelectBackend(benchmark::State& state, int64_t which) {
  if (which == 0) {
    crypto::ForceAesBackend(crypto::AesBackend::kPortable);
    state.SetLabel("portable");
    return true;
  }
  if (!crypto::AesNiAvailable()) {
    state.SkipWithError("AES-NI not available");
    return false;
  }
  crypto::ForceAesBackend(crypto::AesBackend::kAesNi);
  state.SetLabel("aesni");
  return true;
}

void RestoreBackend() { crypto::ForceAesBackend(std::nullopt); }

void BM_AesBlockEncrypt(benchmark::State& state) {
  if (!SelectBackend(state, state.range(0))) return;
  Rng rng(1);
  auto aes = crypto::Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
  RestoreBackend();
}
BENCHMARK(BM_AesBlockEncrypt)->Arg(0)->Arg(1);

void BM_AesBlockDecrypt(benchmark::State& state) {
  if (!SelectBackend(state, state.range(0))) return;
  Rng rng(1);
  auto aes = crypto::Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.DecryptBlock(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
  RestoreBackend();
}
BENCHMARK(BM_AesBlockDecrypt)->Arg(0)->Arg(1);

void BM_AesEncryptBlocks64(benchmark::State& state) {
  if (!SelectBackend(state, state.range(0))) return;
  Rng rng(1);
  auto aes = crypto::Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes buf = rng.NextBytes(64 * 16);
  for (auto _ : state) {
    aes.EncryptBlocks(buf.data(), buf.data(), 64);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(state.iterations() * 64 * 16);
  RestoreBackend();
}
BENCHMARK(BM_AesEncryptBlocks64)->Arg(0)->Arg(1);

void BM_AesDecryptBlocks64(benchmark::State& state) {
  if (!SelectBackend(state, state.range(0))) return;
  Rng rng(1);
  auto aes = crypto::Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes buf = rng.NextBytes(64 * 16);
  for (auto _ : state) {
    aes.DecryptBlocks(buf.data(), buf.data(), 64);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(state.iterations() * 64 * 16);
  RestoreBackend();
}
BENCHMARK(BM_AesDecryptBlocks64)->Arg(0)->Arg(1);

void BM_CtrXor4k(benchmark::State& state) {
  if (!SelectBackend(state, state.range(0))) return;
  Rng rng(1);
  auto aes = crypto::Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes iv = rng.NextBytes(16);
  Bytes in = rng.NextBytes(4096);
  Bytes out(in.size());
  for (auto _ : state) {
    crypto::CtrXor(aes, iv.data(), in.data(), in.size(), out.data());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * 4096);
  RestoreBackend();
}
BENCHMARK(BM_CtrXor4k)->Arg(0)->Arg(1);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto d = crypto::Sha256::Hash(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(3);
  Bytes key = rng.NextBytes(16);
  Bytes data = rng.NextBytes(64);
  for (auto _ : state) {
    auto d = crypto::HmacSha256(key, data);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_HmacSha256);

void BM_HmacStateMac(benchmark::State& state) {
  Rng rng(3);
  crypto::HmacState mac(rng.NextBytes(16));
  Bytes data = rng.NextBytes(64);
  for (auto _ : state) {
    auto d = mac.Mac(data);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_HmacStateMac);

// Scheme benchmarks take Args({size, backend}).
void BM_NDetEncrypt(benchmark::State& state) {
  Rng rng(4);
  auto scheme = crypto::NDetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes pt = rng.NextBytes(static_cast<size_t>(state.range(0)));
  const int64_t size = state.range(0);
  if (!SelectBackend(state, state.range(1))) return;
  Bytes ct;
  for (auto _ : state) {
    scheme.Encrypt(pt.data(), pt.size(), &rng, &ct);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(state.iterations() * size);
  RestoreBackend();
}
BENCHMARK(BM_NDetEncrypt)
    ->Args({16, 0})->Args({16, 1})->Args({4096, 0})->Args({4096, 1});

void BM_NDetDecrypt(benchmark::State& state) {
  Rng rng(5);
  auto scheme = crypto::NDetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes ct = scheme.Encrypt(rng.NextBytes(static_cast<size_t>(state.range(0))),
                            &rng);
  const int64_t size = state.range(0);
  if (!SelectBackend(state, state.range(1))) return;
  Bytes pt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.Decrypt(ct.data(), ct.size(), &pt).ok());
    benchmark::DoNotOptimize(pt);
  }
  state.SetBytesProcessed(state.iterations() * size);
  RestoreBackend();
}
BENCHMARK(BM_NDetDecrypt)
    ->Args({16, 0})->Args({16, 1})->Args({4096, 0})->Args({4096, 1});

void BM_DetEncrypt(benchmark::State& state) {
  if (!SelectBackend(state, state.range(0))) return;
  Rng rng(6);
  auto scheme = crypto::DetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes pt = rng.NextBytes(32);
  Bytes ct;
  for (auto _ : state) {
    scheme.Encrypt(pt.data(), pt.size(), &ct);
    benchmark::DoNotOptimize(ct);
  }
  RestoreBackend();
}
BENCHMARK(BM_DetEncrypt)->Arg(0)->Arg(1);

void BM_DetDecrypt(benchmark::State& state) {
  if (!SelectBackend(state, state.range(0))) return;
  Rng rng(6);
  auto scheme = crypto::DetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes ct = scheme.Encrypt(rng.NextBytes(1024));
  Bytes pt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.Decrypt(ct.data(), ct.size(), &pt).ok());
    benchmark::DoNotOptimize(pt);
  }
  state.SetBytesProcessed(state.iterations() * 1024);
  RestoreBackend();
}
BENCHMARK(BM_DetDecrypt)->Arg(0)->Arg(1);

void BM_DetRoundtrip(benchmark::State& state) {
  if (!SelectBackend(state, state.range(0))) return;
  Rng rng(6);
  auto scheme = crypto::DetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes pt = rng.NextBytes(1024);
  Bytes ct, back;
  for (auto _ : state) {
    scheme.Encrypt(pt.data(), pt.size(), &ct);
    benchmark::DoNotOptimize(scheme.Decrypt(ct.data(), ct.size(), &back).ok());
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * 1024);
  RestoreBackend();
}
BENCHMARK(BM_DetRoundtrip)->Arg(0)->Arg(1);

void BM_TupleCodec(benchmark::State& state) {
  storage::Tuple t({storage::Value::String("D042"),
                    storage::Value::Double(1.25),
                    storage::Value::Int64(7)});
  for (auto _ : state) {
    Bytes buf = t.Encode();
    auto back = storage::Tuple::Decode(buf);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TupleCodec);

void BM_ParseFlagshipQuery(benchmark::State& state) {
  const std::string sql =
      "SELECT AVG(Cons) FROM Power P, Consumer C "
      "WHERE C.accomodation='detached house' AND C.cid = P.cid "
      "GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > 100 SIZE 50000";
  for (auto _ : state) {
    auto stmt = sql::Parse(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseFlagshipQuery);

void BM_PartialAggregation(benchmark::State& state) {
  const size_t groups = static_cast<size_t>(state.range(0));
  sql::AggSpec spec;
  spec.kind = sql::AggKind::kAvg;
  spec.input_index = 1;
  Rng rng(8);
  std::vector<storage::Tuple> tuples;
  for (int i = 0; i < 1024; ++i) {
    tuples.push_back(storage::Tuple(
        {storage::Value::Int64(static_cast<int64_t>(rng.NextBelow(groups))),
         storage::Value::Double(rng.NextDouble())}));
  }
  for (auto _ : state) {
    sql::GroupedAggregation agg({spec});
    for (const auto& t : tuples) {
      benchmark::DoNotOptimize(agg.AccumulateTuple(t, 1).ok());
    }
    benchmark::DoNotOptimize(agg.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PartialAggregation)->Arg(4)->Arg(256);

}  // namespace
}  // namespace tcells
