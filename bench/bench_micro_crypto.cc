// Micro-benchmarks (google-benchmark) for the unit operations that calibrate
// the cost model (§6.2): AES block, SHA-256, HMAC, the two encryption
// schemes, tuple codec, SQL parsing and partial aggregation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/encryption.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/sha256.h"
#include "sql/aggregates.h"
#include "sql/parser.h"
#include "storage/tuple.h"

namespace tcells {
namespace {

void BM_AesBlockEncrypt(benchmark::State& state) {
  Rng rng(1);
  auto aes = crypto::Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesBlockEncrypt);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto d = crypto::Sha256::Hash(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(3);
  Bytes key = rng.NextBytes(16);
  Bytes data = rng.NextBytes(64);
  for (auto _ : state) {
    auto d = crypto::HmacSha256(key, data);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_HmacSha256);

void BM_NDetEncrypt(benchmark::State& state) {
  Rng rng(4);
  auto scheme = crypto::NDetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes pt = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes ct = scheme.Encrypt(pt, &rng);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NDetEncrypt)->Arg(16)->Arg(4096);

void BM_NDetDecrypt(benchmark::State& state) {
  Rng rng(5);
  auto scheme = crypto::NDetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes ct = scheme.Encrypt(rng.NextBytes(static_cast<size_t>(state.range(0))),
                            &rng);
  for (auto _ : state) {
    auto pt = scheme.Decrypt(ct);
    benchmark::DoNotOptimize(pt);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NDetDecrypt)->Arg(16)->Arg(4096);

void BM_DetEncrypt(benchmark::State& state) {
  Rng rng(6);
  auto scheme = crypto::DetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes pt = rng.NextBytes(32);
  for (auto _ : state) {
    Bytes ct = scheme.Encrypt(pt);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_DetEncrypt);

void BM_TupleCodec(benchmark::State& state) {
  storage::Tuple t({storage::Value::String("D042"),
                    storage::Value::Double(1.25),
                    storage::Value::Int64(7)});
  for (auto _ : state) {
    Bytes buf = t.Encode();
    auto back = storage::Tuple::Decode(buf);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_TupleCodec);

void BM_ParseFlagshipQuery(benchmark::State& state) {
  const std::string sql =
      "SELECT AVG(Cons) FROM Power P, Consumer C "
      "WHERE C.accomodation='detached house' AND C.cid = P.cid "
      "GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > 100 SIZE 50000";
  for (auto _ : state) {
    auto stmt = sql::Parse(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseFlagshipQuery);

void BM_PartialAggregation(benchmark::State& state) {
  const size_t groups = static_cast<size_t>(state.range(0));
  sql::AggSpec spec;
  spec.kind = sql::AggKind::kAvg;
  spec.input_index = 1;
  Rng rng(8);
  std::vector<storage::Tuple> tuples;
  for (int i = 0; i < 1024; ++i) {
    tuples.push_back(storage::Tuple(
        {storage::Value::Int64(static_cast<int64_t>(rng.NextBelow(groups))),
         storage::Value::Double(rng.NextDouble())}));
  }
  for (auto _ : state) {
    sql::GroupedAggregation agg({spec});
    for (const auto& t : tuples) {
      benchmark::DoNotOptimize(agg.AccumulateTuple(t, 1).ok());
    }
    benchmark::DoNotOptimize(agg.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PartialAggregation)->Arg(4)->Arg(256);

}  // namespace
}  // namespace tcells
