// Fig 8: information exposure across the protocols (§5), on a Zipf-
// distributed grouping attribute, plus the two sweeps the analysis calls out:
// the collision factor h for ED_Hist and the noise volume nf for Rnf_Noise.
#include <cstdio>
#include <map>
#include <vector>

#include "analysis/exposure.h"
#include "common/rng.h"
#include "storage/tuple.h"
#include "tds/histogram.h"

using namespace tcells;

namespace {

/// Zipf A_G distribution over `n_values` values with `n_tuples` tuples.
std::map<int64_t, uint64_t> ZipfFrequencies(size_t n_values, size_t n_tuples,
                                            double skew, uint64_t seed) {
  ZipfSampler sampler(n_values, skew);
  Rng rng(seed);
  std::map<int64_t, uint64_t> freq;
  for (size_t i = 0; i < n_tuples; ++i) {
    freq[static_cast<int64_t>(sampler.Sample(&rng))]++;
  }
  return freq;
}

/// Exposure of an ED_Hist channel with `buckets` buckets over `freq`.
double HistExposure(const std::map<int64_t, uint64_t>& freq, size_t buckets) {
  std::map<storage::Tuple, uint64_t> keyed;
  for (const auto& [v, f] : freq) {
    keyed[storage::Tuple({storage::Value::Int64(v)})] = f;
  }
  auto hist = tds::EquiDepthHistogram::Build(keyed, buckets);
  std::vector<analysis::BucketContent> contents(hist.num_buckets());
  for (const auto& [key, f] : keyed) {
    auto& b = contents[hist.BucketOf(key)];
    b.tuples += f;
    b.values += 1;
  }
  return analysis::ColumnExposure(analysis::ClassesForHistogram(contents), /*z=*/2.0);
}

/// Exposure of Rnf_Noise with nf random fakes per true tuple.
double NoiseExposure(const std::map<int64_t, uint64_t>& freq, int nf,
                     uint64_t seed) {
  uint64_t total = 0;
  for (const auto& [v, f] : freq) total += f;
  Rng rng(seed);
  std::map<int64_t, uint64_t> fakes;
  const int64_t domain = static_cast<int64_t>(freq.size());
  for (uint64_t i = 0; i < total * static_cast<uint64_t>(nf); ++i) {
    fakes[static_cast<int64_t>(rng.NextBelow(domain))]++;
  }
  return analysis::ColumnExposure(analysis::ClassesForNoise(freq, fakes), /*z=*/2.0);
}

}  // namespace

int main() {
  const size_t kValues = 100;   // N_j
  const size_t kTuples = 20000; // n
  auto freq = ZipfFrequencies(kValues, kTuples, 1.0, 42);

  std::printf("=== Fig 8: information exposure among protocols ===\n");
  std::printf("(Zipf grouping attribute: N_j=%zu distinct values, n=%zu "
              "tuples)\n\n", kValues, kTuples);

  double eps_plain = analysis::PlaintextExposure();
  double eps_det = analysis::ColumnExposure(analysis::ClassesForDetEnc(freq), /*z=*/2.0);
  double eps_ndet = analysis::NDetExposure({kValues});
  double eps_cnoise = analysis::CNoiseExposure({kValues});
  double eps_r2 = NoiseExposure(freq, 2, 1);
  double eps_r1000 = NoiseExposure(freq, 1000, 2);
  double eps_hist_h1 = HistExposure(freq, kValues);  // h = 1
  double eps_hist_h5 = HistExposure(freq, kValues / 5);
  double eps_hist_h20 = HistExposure(freq, kValues / 20);

  std::printf("%-34s %12s\n", "scheme", "exposure");
  std::printf("%-34s %12.6f\n", "plaintext", eps_plain);
  std::printf("%-34s %12.6f\n", "Det_Enc (no protection baseline)", eps_det);
  std::printf("%-34s %12.6f\n", "R2_Noise", eps_r2);
  std::printf("%-34s %12.6f\n", "R1000_Noise", eps_r1000);
  std::printf("%-34s %12.6f  (flat by construction)\n", "C_Noise",
              eps_cnoise);
  std::printf("%-34s %12.6f  (h=1: degenerates to Det)\n", "ED_Hist h=1",
              eps_hist_h1);
  std::printf("%-34s %12.6f\n", "ED_Hist h=5", eps_hist_h5);
  std::printf("%-34s %12.6f\n", "ED_Hist h=20", eps_hist_h20);
  std::printf("%-34s %12.6f  (= 1/N_j)\n", "nDet_Enc (S_Agg)", eps_ndet);

  std::printf("\nED_Hist h-sweep (smaller h -> larger exposure):\n");
  std::printf("%8s %12s\n", "h", "exposure");
  for (size_t h : {1u, 2u, 4u, 5u, 10u, 20u, 50u, 100u}) {
    std::printf("%8zu %12.6f\n", h, HistExposure(freq, kValues / h));
  }

  std::printf("\nRnf_Noise nf-sweep (more noise -> lower exposure):\n");
  std::printf("%8s %12s\n", "nf", "exposure");
  for (int nf : {0, 1, 2, 10, 100, 1000}) {
    std::printf("%8d %12.6f\n", nf,
                nf == 0 ? eps_det : NoiseExposure(freq, nf, 10 + nf));
  }

  // The paper's conclusions, as hard checks.
  bool ok = eps_plain > eps_det && eps_det >= eps_hist_h1 &&
            eps_hist_h1 > eps_hist_h5 && eps_hist_h5 >= eps_hist_h20 &&
            eps_r1000 < eps_r2 && eps_ndet <= eps_hist_h20 &&
            eps_cnoise == eps_ndet;
  std::printf("\nFig 8 orderings hold: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
