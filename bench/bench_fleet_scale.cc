// Fleet-scale scheduling bench: queries/sec and per-query tail latency of
// the concurrent engine as the TDS population and the SSI shard count grow.
//
// For each (fleet size, shard count) cell, 16 S_Agg queries are submitted at
// once against an engine with 16 scheduler slots; every query gets its own
// waiter thread, so the recorded latency spans submit -> outcome. The
// compute pool is held at ~200 TDSs per query (availability scaled down with
// the fleet) so the cells compare collection scale and shard routing, not
// ever-growing aggregation trees. Every result is checked against the
// plaintext oracle — a cell that returns wrong rows invalidates the run.
//
// A second section reproduces the paper's Fig 10/11 shape at simulation
// scale: a single S_Agg query at 10k -> 1M TDSes, recording wall time, T_Q
// (aggregation seconds, the paper's responsiveness metric), P_TDS and
// Load_Q per point — the curve the per-tuple arena/span rework makes
// affordable to measure at 1M.
//
// Output: a human-readable table plus BENCH_fleet.json (or argv[1]) with
// qps, p50/p99 latency and wall time per cell. Timing is hand-rolled
// (steady_clock) so the target stays dependency-light.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

using namespace tcells;

namespace {

constexpr size_t kQueries = 16;
constexpr size_t kMaxInflight = 16;
constexpr size_t kComputePoolTarget = 200;

struct Cell {
  size_t num_tds;
  size_t shards;
  net::TransportKind transport;
  size_t batch_max_calls;
  double wall_seconds;
  double qps;
  double p50_ms;
  double p99_ms;
  bool all_match;
};

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

Cell RunCell(size_t num_tds, size_t shards, net::TransportKind transport,
             size_t batch_max_calls) {
  workload::GenericOptions gopts;
  gopts.num_tds = num_tds;
  gopts.num_groups = 8;
  gopts.group_skew = 0.8;
  gopts.rows_per_tds = 1;
  gopts.seed = 29;

  auto keys = crypto::KeyStore::CreateForTest(2028);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x66));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("bench", authority->Issue("bench"), keys);

  const std::string sql =
      "SELECT grp, COUNT(*), SUM(cat), AVG(val) FROM T GROUP BY grp";
  auto oracle = protocol::ExecuteReference(*fleet, sql).ValueOrDie();

  Engine::Config cfg;
  cfg.options.compute_availability = std::min(
      1.0, static_cast<double>(kComputePoolTarget) /
               static_cast<double>(num_tds));
  cfg.options.expected_groups = gopts.num_groups;
  cfg.options.num_threads = 1;
  cfg.options.seed = 7;
  cfg.num_shards = shards;
  cfg.transport = transport;
  cfg.transport_batch_max_calls = batch_max_calls;
  cfg.max_inflight_queries = kMaxInflight;
  cfg.tracing = false;  // keep the shared tracer out of the hot path
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();

  protocol::SAggProtocol s_agg;
  std::vector<double> latencies_ms(kQueries, 0);
  std::vector<bool> match(kQueries, false);
  std::vector<std::thread> waiters;
  waiters.reserve(kQueries);

  auto wall0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kQueries; ++i) {
    QueryHandle handle =
        engine->Submit(s_agg, querier, /*query_id=*/1 + i, sql).ValueOrDie();
    waiters.emplace_back([&, handle, i]() mutable {
      auto outcome = handle.Wait();
      auto done = std::chrono::steady_clock::now();
      latencies_ms[i] =
          std::chrono::duration<double, std::milli>(done - wall0).count();
      match[i] = outcome.ok() && outcome->result.SameRows(oracle);
    });
  }
  for (auto& w : waiters) w.join();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();

  Cell cell;
  cell.num_tds = num_tds;
  cell.shards = shards;
  cell.transport = transport;
  cell.batch_max_calls = batch_max_calls;
  cell.wall_seconds = wall;
  cell.qps = static_cast<double>(kQueries) / wall;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  cell.p50_ms = Quantile(sorted, 0.50);
  cell.p99_ms = Quantile(sorted, 0.99);
  cell.all_match = true;
  for (bool m : match) cell.all_match = cell.all_match && m;
  return cell;
}

/// One Fig 10/11-style point: a single S_Agg query against a fleet of
/// `num_tds`, auto-batched loopback transport, 4 shards. The compute pool is
/// capped like the grid cells, so the curve isolates collection scale.
struct CurvePoint {
  size_t num_tds;
  double wall_seconds;
  double tq_seconds;
  size_t p_tds;
  uint64_t load_bytes;
  uint64_t query_path_tuples;
  double ns_per_tuple;
  bool match;
};

CurvePoint RunCurvePoint(size_t num_tds) {
  workload::GenericOptions gopts;
  gopts.num_tds = num_tds;
  gopts.num_groups = 8;
  gopts.group_skew = 0.8;
  gopts.rows_per_tds = 1;
  gopts.seed = 31;

  auto keys = crypto::KeyStore::CreateForTest(2029);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x67));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("bench", authority->Issue("bench"), keys);

  const std::string sql =
      "SELECT grp, COUNT(*), SUM(cat), AVG(val) FROM T GROUP BY grp";
  auto oracle = protocol::ExecuteReference(*fleet, sql).ValueOrDie();

  Engine::Config cfg;
  cfg.options.compute_availability = std::min(
      1.0, static_cast<double>(kComputePoolTarget) /
               static_cast<double>(num_tds));
  cfg.options.expected_groups = gopts.num_groups;
  cfg.options.num_threads = 1;
  cfg.options.seed = 7;
  cfg.num_shards = 4;
  cfg.transport = net::TransportKind::kLoopback;
  cfg.transport_batch_max_calls = 0;  // auto: the per-backend default
  cfg.tracing = false;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();

  protocol::SAggProtocol s_agg;
  auto wall0 = std::chrono::steady_clock::now();
  auto outcome = engine->Run(s_agg, querier, /*query_id=*/1, sql);
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();

  CurvePoint pt;
  pt.num_tds = num_tds;
  pt.wall_seconds = wall;
  pt.match = outcome.ok() && outcome->result.SameRows(oracle);
  if (outcome.ok()) {
    const auto& m = outcome->metrics;
    pt.tq_seconds = m.Tq();
    pt.p_tds = m.Ptds();
    pt.load_bytes = m.LoadBytes();
    pt.query_path_tuples = m.QueryPathTuples();
    pt.ns_per_tuple = pt.query_path_tuples > 0
                          ? m.QueryPathWallMicros() * 1000.0 /
                                static_cast<double>(pt.query_path_tuples)
                          : 0.0;
  } else {
    pt.tq_seconds = 0;
    pt.p_tds = 0;
    pt.load_bytes = 0;
    pt.query_path_tuples = 0;
    pt.ns_per_tuple = 0;
  }
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  struct Point {
    size_t num_tds;
    size_t shards;
    net::TransportKind transport;
    size_t batch_max_calls;
  };
  constexpr auto kLoop = net::TransportKind::kLoopback;
  constexpr auto kTcp = net::TransportKind::kTcp;
  // 10k swept across the shard grid; 100k anchors the scale claim at the
  // single-node baseline and the 4-shard configuration. The 10k x 4-shard
  // cell is additionally run over real TCP sockets, serial (batch 1) vs
  // batched (batch 32), to pin the wire tax the batch envelope removes.
  const std::vector<Point> grid = {
      {10000, 1, kLoop, 1},  {10000, 2, kLoop, 1}, {10000, 4, kLoop, 1},
      {10000, 8, kLoop, 1},  {10000, 4, kLoop, 32},
      {10000, 4, kTcp, 1},   {10000, 4, kTcp, 32},
      {100000, 1, kLoop, 1}, {100000, 4, kLoop, 1},
  };

  std::printf("=== fleet scale: %zu concurrent S_Agg queries, %zu slots ===\n",
              kQueries, kMaxInflight);
  std::printf("%-10s %-8s %-10s %-6s %10s %10s %12s %12s %-6s\n", "N_t",
              "shards", "transport", "batch", "wall(s)", "qps", "p50(ms)",
              "p99(ms)", "match");

  std::string json_rows;
  bool ok = true;
  for (const Point& p : grid) {
    Cell c = RunCell(p.num_tds, p.shards, p.transport, p.batch_max_calls);
    ok = ok && c.all_match;
    const std::string transport = net::TransportKindToString(c.transport);
    std::printf("%-10zu %-8zu %-10s %-6zu %10.3f %10.2f %12.1f %12.1f %-6s\n",
                c.num_tds, c.shards, transport.c_str(), c.batch_max_calls,
                c.wall_seconds, c.qps, c.p50_ms, c.p99_ms,
                c.all_match ? "yes" : "NO");
    char row[400];
    std::snprintf(row, sizeof(row),
                  "    {\"num_tds\": %zu, \"shards\": %zu, "
                  "\"transport\": \"%s\", \"batch_max_calls\": %zu, "
                  "\"queries\": %zu, "
                  "\"wall_seconds\": %.3f, \"qps\": %.2f, \"p50_ms\": %.1f, "
                  "\"p99_ms\": %.1f, \"all_match\": %s}",
                  c.num_tds, c.shards, transport.c_str(), c.batch_max_calls,
                  kQueries, c.wall_seconds, c.qps, c.p50_ms, c.p99_ms,
                  c.all_match ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += row;
  }

  // Fig 10/11-style scale curve: one query, growing fleet. The 1M point is
  // the headline the arena/span rework buys; pass --no-curve to skip.
  bool run_curve = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-curve") run_curve = false;
  }
  std::string curve_rows;
  if (run_curve) {
    const std::vector<size_t> curve_sizes = {10000, 30000, 100000, 300000,
                                             1000000};
    std::printf("\n=== scale curve: single S_Agg query, auto-batched "
                "loopback, 4 shards ===\n");
    std::printf("%-10s %10s %10s %10s %14s %12s %-6s\n", "N_t", "wall(s)",
                "T_Q(s)", "P_TDS", "Load_Q(MB)", "ns/tuple", "match");
    for (size_t n : curve_sizes) {
      CurvePoint pt = RunCurvePoint(n);
      ok = ok && pt.match;
      std::printf("%-10zu %10.3f %10.3f %10zu %14.2f %12.1f %-6s\n",
                  pt.num_tds, pt.wall_seconds, pt.tq_seconds, pt.p_tds,
                  static_cast<double>(pt.load_bytes) / 1e6, pt.ns_per_tuple,
                  pt.match ? "yes" : "NO");
      char row[400];
      std::snprintf(row, sizeof(row),
                    "    {\"num_tds\": %zu, \"wall_seconds\": %.3f, "
                    "\"tq_seconds\": %.3f, \"p_tds\": %zu, "
                    "\"load_bytes\": %llu, \"query_path_tuples\": %llu, "
                    "\"ns_per_tuple\": %.1f, \"match\": %s}",
                    pt.num_tds, pt.wall_seconds, pt.tq_seconds, pt.p_tds,
                    static_cast<unsigned long long>(pt.load_bytes),
                    static_cast<unsigned long long>(pt.query_path_tuples),
                    pt.ns_per_tuple, pt.match ? "true" : "false");
      if (!curve_rows.empty()) curve_rows += ",\n";
      curve_rows += row;
    }
  }

  const char* json_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') json_path = argv[i];
  }
  if (FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"bench_fleet_scale\",\n");
    std::fprintf(f, "  \"concurrent_queries\": %zu,\n", kQueries);
    std::fprintf(f, "  \"max_inflight\": %zu,\n", kMaxInflight);
    std::fprintf(f, "  \"all_match\": %s,\n", ok ? "true" : "false");
    std::fprintf(f, "  \"cells\": [\n%s\n  ],\n", json_rows.c_str());
    std::fprintf(f, "  \"scale_curve\": [\n%s\n  ]\n}\n", curve_rows.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  } else {
    std::printf("could not write %s\n", json_path);
  }

  std::printf("\nall %zu queries per cell oracle-correct: %s\n", kQueries,
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
