// Ablation bench for the design knobs DESIGN.md calls out:
//   * alpha     — S_Agg reduction factor (§6.1.1 derives the 3.6 optimum);
//   * nf        — Rnf_Noise volume (exposure/cost trade, §4.3/§5);
//   * h         — ED_Hist collision factor (exposure/cost trade, §4.4/§5).
// Each sweep prints the cost metric the knob trades against its security or
// convergence effect.
#include <cmath>
#include <cstdio>

#include "analysis/cost_model.h"
#include "analysis/exposure.h"
#include "common/rng.h"
#include "storage/tuple.h"
#include "tds/histogram.h"

using namespace tcells;

namespace {

std::map<int64_t, uint64_t> ZipfFreq(size_t values, size_t tuples) {
  ZipfSampler sampler(values, 1.0);
  Rng rng(7);
  std::map<int64_t, uint64_t> freq;
  for (size_t i = 0; i < tuples; ++i) {
    freq[static_cast<int64_t>(sampler.Sample(&rng))]++;
  }
  return freq;
}

}  // namespace

int main() {
  std::printf("=== ablation 1: S_Agg reduction factor alpha ===\n");
  std::printf("%8s %12s %12s\n", "alpha", "T_Q(s)", "steps~log_a");
  double best_alpha = 0, best_tq = 1e30;
  for (double alpha : {2.0, 3.0, 3.6, 4.0, 6.0, 10.0, 30.0, 100.0}) {
    analysis::CostParams p;
    p.alpha = alpha;
    double tq = analysis::SAggCost(p).tq_seconds;
    if (tq < best_tq) {
      best_tq = tq;
      best_alpha = alpha;
    }
    std::printf("%8.1f %12.4f %12.1f\n", alpha, tq,
                std::log(p.nt / p.groups) / std::log(alpha));
  }
  std::printf("best sampled alpha: %.1f (paper derives 3.6)\n\n", best_alpha);

  std::printf("=== ablation 2: Rnf_Noise volume nf ===\n");
  auto freq = ZipfFreq(100, 20000);
  std::printf("%8s %14s %12s\n", "nf", "Load_Q(MB)", "exposure");
  for (int nf : {0, 1, 2, 10, 100, 1000}) {
    analysis::CostParams p;
    p.nf = nf;
    double load = analysis::RnfNoiseCost(p).load_bytes / 1e6;
    double eps;
    if (nf == 0) {
      eps = analysis::ColumnExposure(analysis::ClassesForDetEnc(freq), /*z=*/2.0);
    } else {
      uint64_t total = 0;
      for (const auto& [v, f] : freq) total += f;
      Rng rng(11 + nf);
      std::map<int64_t, uint64_t> fakes;
      for (uint64_t i = 0; i < total * static_cast<uint64_t>(nf); ++i) {
        fakes[static_cast<int64_t>(rng.NextBelow(100))]++;
      }
      eps = analysis::ColumnExposure(analysis::ClassesForNoise(freq, fakes), /*z=*/2.0);
    }
    std::printf("%8d %14.1f %12.6f\n", nf, load, eps);
  }
  std::printf("(cost grows linearly with nf; exposure falls — §4.3)\n\n");

  std::printf("=== ablation 3: ED_Hist collision factor h ===\n");
  std::printf("%8s %12s %12s %12s\n", "h", "T_Q(s)", "T_local(s)",
              "exposure");
  for (double h : {1.0, 2.0, 5.0, 10.0, 25.0, 50.0}) {
    analysis::CostParams p;
    p.h = h;
    auto m = analysis::EdHistCost(p);
    // Exposure of the bucket channel at this h on the Zipf workload.
    std::map<storage::Tuple, uint64_t> keyed;
    for (const auto& [v, f] : freq) {
      keyed[storage::Tuple({storage::Value::Int64(v)})] = f;
    }
    auto hist = tds::EquiDepthHistogram::Build(
        keyed, static_cast<size_t>(100 / h));
    std::vector<analysis::BucketContent> contents(hist.num_buckets());
    for (const auto& [key, f] : keyed) {
      contents[hist.BucketOf(key)].tuples += f;
      contents[hist.BucketOf(key)].values += 1;
    }
    double eps =
        analysis::ColumnExposure(analysis::ClassesForHistogram(contents), /*z=*/2.0);
    std::printf("%8.0f %12.5f %12.6f %12.6f\n", h, m.tq_seconds,
                m.tlocal_seconds, eps);
  }
  std::printf("(larger h: cheaper tags hide more but each partition covers "
              "more groups — §4.4/§5)\n");

  std::printf("\n=== ablation 4: ED_Hist histogram staleness (distribution "
              "drift) ===\n");
  // The discovery result is refreshed "from time to time" (§4.4). As the
  // true distribution drifts away from the one the histogram was built on,
  // correctness is unaffected (the bucket mapping stays deterministic) but
  // the equi-depth property erodes: bucket depths skew, re-exposing a
  // frequency profile the flat histogram was built to hide.
  std::printf("%8s %14s %12s\n", "drift", "depth max/min", "exposure");
  auto stale_freq = ZipfFreq(100, 20000);
  std::map<storage::Tuple, uint64_t> keyed;
  for (const auto& [v, f] : stale_freq) {
    keyed[storage::Tuple({storage::Value::Int64(v)})] = f;
  }
  auto hist = tds::EquiDepthHistogram::Build(keyed, 20);
  for (double drift : {0.0, 0.25, 0.5, 1.0}) {
    // Drifted truth: mix the original Zipf with its reverse.
    std::map<int64_t, uint64_t> now;
    for (const auto& [v, f] : stale_freq) {
      auto rev = stale_freq.find(99 - v);
      uint64_t f_rev = rev == stale_freq.end() ? 0 : rev->second;
      now[v] = static_cast<uint64_t>((1.0 - drift) * f + drift * f_rev);
    }
    std::vector<analysis::BucketContent> contents(hist.num_buckets());
    uint64_t max_d = 0, min_d = UINT64_MAX;
    for (const auto& [v, f] : now) {
      auto& b = contents[hist.BucketOf(storage::Tuple({storage::Value::Int64(v)}))];
      b.tuples += f;
      b.values += 1;
    }
    for (const auto& b : contents) {
      max_d = std::max(max_d, b.tuples);
      min_d = std::min(min_d, std::max<uint64_t>(1, b.tuples));
    }
    double eps = analysis::ColumnExposure(analysis::ClassesForHistogram(contents), /*z=*/2.0);
    std::printf("%8.2f %14.1f %12.6f\n", drift,
                static_cast<double>(max_d) / static_cast<double>(min_d), eps);
  }
  std::printf("(depth skew is the leak signal: a stale histogram re-exposes "
              "a bucket-frequency profile; refreshing discovery restores the "
              "drift=0 flatness)\n");
  return 0;
}
