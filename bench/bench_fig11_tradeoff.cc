// Fig 11: qualitative comparison of the protocols along the six axes of
// §6.4, derived from the cost model and the exposure analysis.
#include <cstdio>

#include "analysis/tradeoff.h"

int main() {
  tcells::analysis::CostParams p;  // paper reference parameters
  std::printf("=== Fig 11: comparison among solutions ===\n\n%s",
              tcells::analysis::RenderTradeoffFigure(p).c_str());
  return 0;
}
