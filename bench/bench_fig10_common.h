// Shared sweep scaffolding for the Fig 10 cost-model benches. Each bench
// prints the paper's series: one row per x-value, one column per protocol,
// for (a) a G sweep at N_t = 10^6 and (b) an N_t sweep at G = 10^3, with the
// §6.3 fixed parameters.
#ifndef TCELLS_BENCH_FIG10_COMMON_H_
#define TCELLS_BENCH_FIG10_COMMON_H_

#include <cstdio>
#include <functional>
#include <string_view>
#include <vector>

#include "analysis/cost_model.h"

namespace tcells::bench {

/// Set from main(argc, argv): "--csv" switches the sweeps to CSV rows
/// (machine-readable, for plotting scripts).
inline bool& CsvMode() {
  static bool csv = false;
  return csv;
}

inline void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") CsvMode() = true;
  }
}

inline const std::vector<const char*>& Protocols() {
  static const std::vector<const char*> kProtocols = {
      "S_Agg", "R2_Noise", "R1000_Noise", "C_Noise", "ED_Hist"};
  return kProtocols;
}

using MetricFn = std::function<double(const analysis::CostMetrics&)>;

/// Fig 10 left-column panels: metric vs G (G = 1 .. 10^6, log steps).
inline void SweepG(const char* title, const MetricFn& metric,
                   double available_fraction = 0.1) {
  if (CsvMode()) {
    std::printf("metric,availability,G");
    for (const char* p : Protocols()) std::printf(",%s", p);
    std::printf("\n");
  } else {
    std::printf("%s  (N_t=1e6, %.0f%% of N_t available)\n", title,
                available_fraction * 100);
    std::printf("%-10s", "G");
    for (const char* p : Protocols()) std::printf(" %14s", p);
    std::printf("\n");
  }
  for (double g = 1; g <= 1e6; g *= 10) {
    analysis::CostParams params;
    params.groups = g;
    params.available_fraction = available_fraction;
    if (CsvMode()) {
      std::printf("%s,%.2f,%.0f", title, available_fraction, g);
      for (const char* p : Protocols()) {
        std::printf(",%.9g", metric(analysis::CostFor(p, params)));
      }
    } else {
      std::printf("%-10.0f", g);
      for (const char* p : Protocols()) {
        std::printf(" %14.6g", metric(analysis::CostFor(p, params)));
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

/// Fig 10 right-column panels: metric vs N_t (5M .. 65M).
inline void SweepNt(const char* title, const MetricFn& metric) {
  if (CsvMode()) {
    std::printf("metric,Nt_million");
    for (const char* p : Protocols()) std::printf(",%s", p);
    std::printf("\n");
  } else {
    std::printf("%s  (G=1e3, 10%% available)\n", title);
    std::printf("%-12s", "Nt(million)");
    for (const char* p : Protocols()) std::printf(" %14s", p);
    std::printf("\n");
  }
  for (double nt = 5e6; nt <= 65e6; nt += 10e6) {
    analysis::CostParams params;
    params.nt = nt;
    if (CsvMode()) {
      std::printf("%s,%.0f", title, nt / 1e6);
      for (const char* p : Protocols()) {
        std::printf(",%.9g", metric(analysis::CostFor(p, params)));
      }
    } else {
      std::printf("%-12.0f", nt / 1e6);
      for (const char* p : Protocols()) {
        std::printf(" %14.6g", metric(analysis::CostFor(p, params)));
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace tcells::bench

#endif  // TCELLS_BENCH_FIG10_COMMON_H_
