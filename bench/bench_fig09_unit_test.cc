// Fig 9b + §6.2 unit test: internal time consumption of one TDS handling a
// 4 KB partition, split into transfer / decryption / CPU / encryption, on the
// paper's reference board model. Also re-runs the same unit operations in
// software on this host to show the calibration procedure itself.
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "crypto/encryption.h"
#include "crypto/keystore.h"
#include "sim/device_model.h"
#include "storage/tuple.h"

using namespace tcells;

int main() {
  sim::DeviceModel board;  // §6.2 board: 120 MHz MCU, AES coprocessor, USB
  const size_t kPartition = 4096;
  const size_t kTupleBytes = 16;
  const size_t kTuples = kPartition / kTupleBytes;

  std::printf("=== Fig 9a: reference secure device ===\n");
  const auto& p = board.params();
  std::printf("  CPU %.0f MHz, crypto coprocessor %.0f cycles / 16B block,\n"
              "  link %.1f Mbps, %llu KB RAM\n\n",
              p.cpu_hz / 1e6, p.crypto_cycles_per_block,
              p.transfer_bps / 1e6,
              static_cast<unsigned long long>(p.ram_bytes / 1024));

  std::printf("=== Fig 9b: internal time, 4 KB partition (%zu tuples) ===\n",
              kTuples);
  double transfer = board.TransferSeconds(kPartition);
  double decrypt = board.CryptoSeconds(kPartition);
  double cpu = board.CpuSeconds(kTuples);
  // Only the partition's aggregation result is re-encrypted (one tuple).
  double encrypt = board.CryptoSeconds(kTupleBytes);
  double total = transfer + decrypt + cpu + encrypt;
  std::printf("  %-12s %10.1f us  (%4.1f%%)\n", "transfer", transfer * 1e6,
              100 * transfer / total);
  std::printf("  %-12s %10.1f us  (%4.1f%%)\n", "CPU", cpu * 1e6,
              100 * cpu / total);
  std::printf("  %-12s %10.1f us  (%4.1f%%)\n", "decrypt", decrypt * 1e6,
              100 * decrypt / total);
  std::printf("  %-12s %10.1f us  (%4.1f%%)\n", "encrypt", encrypt * 1e6,
              100 * encrypt / total);
  std::printf("  %-12s %10.1f us\n\n", "total", total * 1e6);
  std::printf("  per-tuple cost T_t(16B) = %.1f us  (paper uses 16 us)\n\n",
              board.PerTupleSeconds(kTupleBytes) * 1e6);

  // Host-side calibration run: the same operations in software, as the
  // paper's authors measured them on the board.
  std::printf("=== host calibration (software AES/SHA on this machine) ===\n");
  auto keys = crypto::KeyStore::CreateForTest(1);
  Rng rng(2);
  Bytes partition = rng.NextBytes(kPartition);
  const int kReps = 200;

  auto time_it = [&](auto&& fn) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) fn();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count() / kReps;
  };

  Bytes ct = keys->k2_ndet().Encrypt(partition, &rng);
  double host_decrypt = time_it([&] {
    auto r = keys->k2_ndet().Decrypt(ct);
    (void)r;
  });
  double host_encrypt = time_it([&] {
    Bytes one = rng.NextBytes(kTupleBytes);
    auto c = keys->k2_ndet().Encrypt(one, &rng);
    (void)c;
  });
  double host_cpu = time_it([&] {
    // Deserialize kTuples 16-byte tuples' worth of values.
    uint64_t sink = 0;
    for (size_t i = 0; i + 8 <= partition.size(); i += 8) {
      uint64_t v = 0;
      for (int k = 0; k < 8; ++k) {
        v |= static_cast<uint64_t>(partition[i + k]) << (8 * k);
      }
      sink += v;
    }
    volatile uint64_t keep = sink;
    (void)keep;
  });

  std::printf("  decrypt 4KB : %8.1f us\n", host_decrypt * 1e6);
  std::printf("  encrypt 16B : %8.1f us\n", host_encrypt * 1e6);
  std::printf("  CPU scan 4KB: %8.1f us\n", host_cpu * 1e6);
  std::printf("\n(The board model, not host speed, feeds the Fig 10 "
              "figures; the host numbers document the calibration method.)\n");

  // The figure's qualitative claim: transfer dominates; CPU > crypto.
  bool ok = transfer > cpu && cpu > decrypt + encrypt;
  std::printf("\ntransfer dominates internal costs: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
