// Tier-5 adversarial campaign smoke tests (`ctest -L sim`): runs the small
// deterministic manifest and asserts (a) zero invariant violations, (b) the
// campaign's own determinism — byte-identical canonical dumps across worker
// thread counts and across the loopback and TCP backends — and (c) the
// pinned per-scenario outcomes the full manifest relies on. The full
// manifest runs via examples/run_campaign (`make campaign` or
// scripts/run_campaign.sh).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/channel.h"
#include "sim/campaign.h"

namespace tcells::sim {
namespace {

using net::TransportKind;

CampaignResult MustRun(const std::vector<ScenarioSpec>& manifest,
                       TransportKind backend) {
  Result<CampaignResult> result = RunCampaign(manifest, backend);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : CampaignResult{};
}

const ScenarioOutcome* FindOutcome(const CampaignResult& campaign,
                                   const std::string& name) {
  for (const ScenarioOutcome& outcome : campaign.outcomes) {
    if (outcome.name == name) return &outcome;
  }
  return nullptr;
}

TEST(ScenarioCampaign, SmokeManifestHasNoViolations) {
  CampaignResult campaign = MustRun(SmokeManifest(), TransportKind::kLoopback);
  for (const ScenarioOutcome& outcome : campaign.outcomes) {
    EXPECT_TRUE(outcome.violations.empty())
        << outcome.name << ": " << outcome.violations.front();
  }
  EXPECT_EQ(campaign.total_violations, 0u);
  EXPECT_EQ(campaign.outcomes.size(), SmokeManifest().size());
}

// A clean scenario (honest transport, honest SSI) must match the oracle and
// report itself clean.
TEST(ScenarioCampaign, CleanScenarioMatchesOracle) {
  CampaignResult campaign = MustRun(SmokeManifest(), TransportKind::kLoopback);
  const ScenarioOutcome* clean = FindOutcome(campaign, "clean-S_Agg-zipf");
  ASSERT_NE(clean, nullptr);
  EXPECT_TRUE(clean->completed);
  EXPECT_TRUE(clean->clean);
  EXPECT_TRUE(clean->oracle_match);
  EXPECT_EQ(clean->partitions_lost, 0u);
  EXPECT_EQ(clean->partitions_tampered, 0u);
  EXPECT_EQ(clean->collection_participants, clean->eligible_tds);
  EXPECT_EQ(clean->faults_injected, 0u);
}

// A TDS killed after its upload but before the round output was taken is
// counted exactly once in partitions_lost — never twice, never zero.
TEST(ScenarioCampaign, ChurnAfterUploadCountedOnce) {
  CampaignResult campaign = MustRun(SmokeManifest(), TransportKind::kLoopback);
  const ScenarioOutcome* churn = FindOutcome(campaign, "churn-after-upload");
  ASSERT_NE(churn, nullptr);
  EXPECT_TRUE(churn->completed);
  EXPECT_EQ(churn->partitions_lost, 1u);
  EXPECT_EQ(churn->partitions_tampered, 0u);
}

// Exhausting one token's retry budget loses exactly that partition.
TEST(ScenarioCampaign, TokenKillLosesExactlyOnePartition) {
  CampaignResult campaign = MustRun(SmokeManifest(), TransportKind::kLoopback);
  const ScenarioOutcome* kill = FindOutcome(campaign, "token-kill-S_Agg");
  ASSERT_NE(kill, nullptr);
  EXPECT_TRUE(kill->completed);
  EXPECT_EQ(kill->partitions_lost, 1u);
  EXPECT_GE(kill->retries, 1u);
}

// A dropped take reply is retried and the re-download succeeds: nothing may
// be counted lost and nothing double-counted.
TEST(ScenarioCampaign, DroppedTakeReplyRecoversWithoutLoss) {
  CampaignResult campaign = MustRun(SmokeManifest(), TransportKind::kLoopback);
  const ScenarioOutcome* dropped = FindOutcome(campaign, "take-reply-dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_TRUE(dropped->completed);
  EXPECT_EQ(dropped->partitions_lost, 0u);
  EXPECT_GE(dropped->retries, 1u);
  EXPECT_GE(dropped->faults_injected, 1u);
}

// Byzantine SSI replaying a round output: the client's digest check must
// flag the partition as tampered (and lost) — no silent wrong answer.
TEST(ScenarioCampaign, ByzantineReplayIsDetected) {
  CampaignResult campaign = MustRun(SmokeManifest(), TransportKind::kLoopback);
  const ScenarioOutcome* replay = FindOutcome(campaign, "byz-replay-output");
  ASSERT_NE(replay, nullptr);
  EXPECT_GE(replay->tampers, 1u);
  EXPECT_GE(replay->partitions_tampered, 1u);
  EXPECT_EQ(replay->partitions_tampered, replay->partitions_lost);
  EXPECT_FALSE(replay->clean);
}

// Byzantine SSI forging application errors: the run aborts cleanly instead
// of fabricating a result.
TEST(ScenarioCampaign, ForgedErrorsAbortCleanly) {
  CampaignResult campaign = MustRun(SmokeManifest(), TransportKind::kLoopback);
  const ScenarioOutcome* forged = FindOutcome(campaign, "byz-forge-error");
  ASSERT_NE(forged, nullptr);
  EXPECT_FALSE(forged->completed);
  EXPECT_FALSE(forged->abort_status.empty());
  EXPECT_TRUE(forged->result_table.empty());
}

// Tampering that does not change the multiset of collected items (reversing
// a partition) is tolerated: the result still matches the oracle.
TEST(ScenarioCampaign, OrderOnlyTamperingIsTolerated) {
  CampaignResult campaign = MustRun(SmokeManifest(), TransportKind::kLoopback);
  const ScenarioOutcome* reversed =
      FindOutcome(campaign, "byz-reverse-collected");
  ASSERT_NE(reversed, nullptr);
  EXPECT_TRUE(reversed->completed);
  EXPECT_GE(reversed->tampers, 1u);
  EXPECT_TRUE(reversed->oracle_match);
}

// The determinism contract: the same manifest produces byte-identical
// canonical dumps for 1, 2 and 8 worker threads. Fault decisions are keyed
// on message content, never on arrival order or thread ids.
TEST(ScenarioCampaign, CanonicalDumpIdenticalAcrossThreadCounts) {
  std::string dumps[3];
  const size_t kThreads[3] = {1, 2, 8};
  for (size_t i = 0; i < 3; ++i) {
    std::vector<ScenarioSpec> manifest = SmokeManifest();
    for (ScenarioSpec& spec : manifest) spec.num_threads = kThreads[i];
    dumps[i] = MustRun(manifest, TransportKind::kLoopback).Canonical();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[1], dumps[2]);
  EXPECT_FALSE(dumps[0].empty());
}

// The same manifest over real sockets produces the byte-identical dump:
// faults and tampering depend on the wire bytes, not on the backend.
TEST(ScenarioCampaign, CanonicalDumpIdenticalAcrossBackends) {
  std::string loopback =
      MustRun(SmokeManifest(), TransportKind::kLoopback).Canonical();
  std::string tcp = MustRun(SmokeManifest(), TransportKind::kTcp).Canonical();
  EXPECT_EQ(loopback, tcp);
  EXPECT_FALSE(loopback.empty());
}

}  // namespace
}  // namespace tcells::sim
