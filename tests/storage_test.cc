// Tests for src/storage: Value semantics, tuple encoding, schema/catalog,
// table type checking.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "storage/schema.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace tcells::storage {
namespace {

// ---------------------------------------------------------------------------
// Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int64(-7).AsInt64(), -7);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_TRUE(Value::Int64(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_TRUE(Value::Int64(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int64(3).Equals(Value::Double(3.5)));
  EXPECT_FALSE(Value::Int64(3).Equals(Value::String("3")));
}

TEST(ValueTest, NullEqualitySemantics) {
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int64(0)));
  EXPECT_TRUE(Value::Null().IsSameGroup(Value::Null()));
  EXPECT_FALSE(Value::Null().IsSameGroup(Value::Int64(0)));
}

TEST(ValueTest, Compare) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)).ValueOrDie(), 0);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)).ValueOrDie(), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")).ValueOrDie(), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)).ValueOrDie(), 0);
  EXPECT_FALSE(Value::String("x").Compare(Value::Int64(1)).ok());
}

TEST(ValueTest, ToDouble) {
  EXPECT_EQ(Value::Int64(4).ToDouble().ValueOrDie(), 4.0);
  EXPECT_EQ(Value::Double(4.5).ToDouble().ValueOrDie(), 4.5);
  EXPECT_FALSE(Value::String("4").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  std::vector<Value> values = {
      Value::Null(), Value::Bool(false), Value::Bool(true),
      Value::Int64(0), Value::Int64(-123456789), Value::Double(-0.25),
      Value::String(""), Value::String("héllo wörld"),
  };
  for (const auto& v : values) {
    Bytes buf;
    v.EncodeTo(&buf);
    ByteReader r(buf);
    Value back = Value::DecodeFrom(&r).ValueOrDie();
    EXPECT_TRUE(v.IsSameGroup(back)) << v.ToString();
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(ValueTest, EqualValuesEncodeIdentically) {
  // Required by Det_Enc tags and bucket hashing.
  Bytes a, b;
  Value::String("district-9").EncodeTo(&a);
  Value::String("district-9").EncodeTo(&b);
  EXPECT_EQ(a, b);
}

TEST(ValueTest, MapOrderingIsTotal) {
  std::vector<Value> values = {Value::Null(), Value::Bool(true),
                               Value::Int64(5), Value::Double(1.5),
                               Value::String("s")};
  for (const auto& a : values) {
    for (const auto& b : values) {
      int lt = a < b, gt = b < a;
      if (a.IsSameGroup(b)) {
        EXPECT_FALSE(lt || gt);
      } else {
        EXPECT_EQ(lt + gt, 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Tuple

TEST(TupleTest, EncodeDecodeRoundTrip) {
  Tuple t({Value::Int64(1), Value::String("a"), Value::Null(),
           Value::Double(2.5)});
  Tuple back = Tuple::Decode(t.Encode()).ValueOrDie();
  EXPECT_TRUE(t.IsSameGroup(back));
}

TEST(TupleTest, DecodeRejectsTrailingBytes) {
  Bytes buf = Tuple({Value::Int64(1)}).Encode();
  buf.push_back(0);
  EXPECT_FALSE(Tuple::Decode(buf).ok());
}

TEST(TupleTest, Concat) {
  Tuple a({Value::Int64(1)});
  Tuple b({Value::String("x"), Value::Int64(2)});
  Tuple c = Tuple::Concat(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(1).AsString(), "x");
}

TEST(TupleTest, GroupEquality) {
  Tuple a({Value::Int64(1), Value::Null()});
  Tuple b({Value::Int64(1), Value::Null()});
  Tuple c({Value::Int64(1), Value::Int64(0)});
  EXPECT_TRUE(a.IsSameGroup(b));
  EXPECT_FALSE(a.IsSameGroup(c));
  EXPECT_FALSE(a.IsSameGroup(Tuple({Value::Int64(1)})));
}

// ---------------------------------------------------------------------------
// Schema / Catalog

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s({{"Cid", ValueType::kInt64}, {"District", ValueType::kString}});
  EXPECT_EQ(s.FindColumn("cid").value(), 0u);
  EXPECT_EQ(s.FindColumn("DISTRICT").value(), 1u);
  EXPECT_FALSE(s.FindColumn("nope").has_value());
}

TEST(SchemaTest, Concat) {
  Schema a({{"x", ValueType::kInt64}});
  Schema b({{"y", ValueType::kString}});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_columns(), 2u);
  EXPECT_EQ(c.column(1).name, "y");
}

TEST(CatalogTest, AddAndLookup) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable("T", Schema({{"a", ValueType::kInt64}})).ok());
  EXPECT_TRUE(cat.HasTable("t"));
  EXPECT_TRUE(cat.GetSchema("T").ok());
  EXPECT_FALSE(cat.GetSchema("U").ok());
  EXPECT_FALSE(cat.AddTable("t", Schema()).ok());  // duplicate
}

// ---------------------------------------------------------------------------
// Table / Database

TEST(TableTest, InsertTypeChecking) {
  Table t("T", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}}));
  EXPECT_TRUE(t.Insert(Tuple({Value::Int64(1), Value::String("x")})).ok());
  EXPECT_TRUE(t.Insert(Tuple({Value::Null(), Value::Null()})).ok());
  EXPECT_FALSE(t.Insert(Tuple({Value::String("bad"), Value::String("x")})).ok());
  EXPECT_FALSE(t.Insert(Tuple({Value::Int64(1)})).ok());  // arity
  EXPECT_EQ(t.num_rows(), 2u);
}


TEST(TableTest, NanRejectedAtStorageBoundary) {
  Table t("T", Schema({{"d", ValueType::kDouble}}));
  EXPECT_TRUE(t.Insert(Tuple({Value::Double(1.5)})).ok());
  EXPECT_FALSE(
      t.Insert(Tuple({Value::Double(std::nan(""))})).ok());
  EXPECT_TRUE(
      t.Insert(Tuple({Value::Double(
                   std::numeric_limits<double>::infinity())}))
          .ok());  // infinities order fine
  EXPECT_EQ(t.num_rows(), 2u);
}

// ---------------------------------------------------------------------------
// Hostile-input hardening regressions (pinned by fuzz/fuzz_storage.cc)

TEST(TupleWireTest, ArityLargerThanBufferRejectedBeforeReserve) {
  // A 2-byte input declaring 65535 values used to reserve ~3MB of Value
  // slots before the first read failed; the decoder must now reject the
  // arity against the remaining bytes up front.
  Bytes hostile = {0xff, 0xff};
  auto result = Tuple::Decode(hostile);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());

  // Arity 3 with only one encoded value present.
  Tuple one(std::vector<Value>{Value::Int64(7)});
  Bytes encoded = one.Encode();
  encoded[0] = 3;
  EXPECT_FALSE(Tuple::Decode(encoded).ok());
}

TEST(TupleWireTest, TrailingBytesRejected) {
  Tuple t(std::vector<Value>{Value::Int64(7), Value::String("x")});
  Bytes encoded = t.Encode();
  encoded.push_back(0);
  EXPECT_FALSE(Tuple::Decode(encoded).ok());
}

TEST(TupleWireTest, NonCanonicalBoolByteRejected) {
  // EncodeTo writes bools as exactly 0 or 1. The decoder used to accept any
  // nonzero payload byte as true, so {..., 2} decoded fine but re-encoded to
  // {..., 1} — a non-canonical accepted encoding found by fuzz_storage's
  // re-encode assert.
  Tuple t(std::vector<Value>{Value::Bool(true)});
  Bytes encoded = t.Encode();
  EXPECT_TRUE(Tuple::Decode(encoded).ok());
  encoded.back() = 2;
  auto result = Tuple::Decode(encoded);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(TupleWireTest, UnknownValueTagRejected) {
  Bytes hostile = {1, 0, 250};  // arity 1, value tag 250
  auto result = Tuple::Decode(hostile);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(DatabaseTest, CreateAndGet) {
  Database db;
  ASSERT_TRUE(db.CreateTable("A", Schema({{"x", ValueType::kInt64}})).ok());
  ASSERT_TRUE(db.CreateTable("B", Schema({{"y", ValueType::kInt64}})).ok());
  EXPECT_TRUE(db.GetTable("a").ok());
  EXPECT_FALSE(db.GetTable("c").ok());
  EXPECT_FALSE(db.CreateTable("A", Schema()).ok());
  EXPECT_EQ(db.catalog().TableNames().size(), 2u);
}

}  // namespace
}  // namespace tcells::storage
