// Tests for local query execution (the per-TDS path and the oracle).
#include <gtest/gtest.h>

#include "sql/executor.h"
#include "storage/table.h"

namespace tcells::sql {
namespace {

using storage::Database;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    EXPECT_TRUE(db_.CreateTable("Consumer",
                                Schema({{"cid", ValueType::kInt64},
                                        {"district", ValueType::kString}}))
                    .ok());
    EXPECT_TRUE(db_.CreateTable("Power", Schema({{"cid", ValueType::kInt64},
                                                 {"cons", ValueType::kDouble}}))
                    .ok());
    auto* consumer = db_.GetTable("Consumer").ValueOrDie();
    auto* power = db_.GetTable("Power").ValueOrDie();
    // 4 consumers over 2 districts, 2 readings each.
    for (int64_t cid = 0; cid < 4; ++cid) {
      EXPECT_TRUE(consumer
                      ->Insert(Tuple({Value::Int64(cid),
                                      Value::String(cid < 2 ? "north" : "south")}))
                      .ok());
      for (int r = 0; r < 2; ++r) {
        EXPECT_TRUE(power
                        ->Insert(Tuple({Value::Int64(cid),
                                        Value::Double(10.0 * (cid + 1) + r)}))
                        .ok());
      }
    }
  }

  QueryResult Run(const std::string& sql) {
    auto q = AnalyzeSql(sql, db_.catalog()).ValueOrDie();
    return ExecuteLocal(db_, q).ValueOrDie();
  }

  Database db_;
};

TEST_F(ExecutorTest, SimpleProjection) {
  auto result = Run("SELECT cid FROM Consumer");
  EXPECT_EQ(result.rows.size(), 4u);
}

TEST_F(ExecutorTest, WhereFilter) {
  auto result = Run("SELECT cid FROM Consumer WHERE district = 'north'");
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_F(ExecutorTest, InternalJoin) {
  auto result = Run(
      "SELECT C.district, P.cons FROM Consumer C, Power P "
      "WHERE C.cid = P.cid");
  EXPECT_EQ(result.rows.size(), 8u);  // 4 consumers x 2 readings
}

TEST_F(ExecutorTest, CartesianWithoutPredicate) {
  auto result = Run("SELECT C.cid FROM Consumer C, Power P");
  EXPECT_EQ(result.rows.size(), 32u);  // 4 x 8
}

TEST_F(ExecutorTest, GroupByWithJoin) {
  auto result = Run(
      "SELECT C.district, AVG(P.cons), COUNT(*) FROM Consumer C, Power P "
      "WHERE C.cid = P.cid GROUP BY C.district");
  ASSERT_EQ(result.rows.size(), 2u);
  // Groups come out in key order: north then south.
  EXPECT_EQ(result.rows[0].at(0).AsString(), "north");
  // north: cons = 10,11,20,21 -> avg 15.5 over 4 rows.
  EXPECT_DOUBLE_EQ(result.rows[0].at(1).AsDouble(), 15.5);
  EXPECT_EQ(result.rows[0].at(2).AsInt64(), 4);
  // south: cons = 30,31,40,41 -> avg 35.5.
  EXPECT_DOUBLE_EQ(result.rows[1].at(1).AsDouble(), 35.5);
}

TEST_F(ExecutorTest, Having) {
  auto result = Run(
      "SELECT district, COUNT(*) FROM Consumer GROUP BY district "
      "HAVING COUNT(*) > 5");
  EXPECT_TRUE(result.rows.empty());
  result = Run(
      "SELECT district, COUNT(*) FROM Consumer GROUP BY district "
      "HAVING COUNT(*) >= 2");
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_F(ExecutorTest, HavingOnAggregateNotInSelect) {
  auto result = Run(
      "SELECT district FROM Consumer GROUP BY district "
      "HAVING COUNT(DISTINCT cid) >= 2");
  EXPECT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].size(), 1u);  // only district projected
}

TEST_F(ExecutorTest, GlobalAggregate) {
  auto result = Run("SELECT COUNT(*), MIN(cons), MAX(cons) FROM Power");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(0).AsInt64(), 8);
  EXPECT_DOUBLE_EQ(result.rows[0].at(1).AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(result.rows[0].at(2).AsDouble(), 41.0);
}

TEST_F(ExecutorTest, ExpressionOverAggregates) {
  auto result =
      Run("SELECT district, MAX(cid) - MIN(cid) AS spread FROM Consumer "
          "GROUP BY district");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].at(1).AsInt64(), 1);
  EXPECT_EQ(result.schema.column(1).name, "spread");
}

TEST_F(ExecutorTest, EmptyInput) {
  auto result = Run("SELECT cid FROM Consumer WHERE cid > 100");
  EXPECT_TRUE(result.rows.empty());
  // Group-by over empty input: no groups, no rows.
  result = Run("SELECT district, COUNT(*) FROM Consumer WHERE cid > 100 "
               "GROUP BY district");
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(ExecutorTest, CollectionTuplesLayout) {
  auto q = AnalyzeSql(
      "SELECT district, AVG(cid) FROM Consumer GROUP BY district",
      db_.catalog()).ValueOrDie();
  auto tuples = CollectionTuples(db_, q).ValueOrDie();
  ASSERT_EQ(tuples.size(), 4u);          // one per consumer row
  ASSERT_EQ(tuples[0].size(), 2u);       // [district, cid]
  EXPECT_EQ(tuples[0].at(0).type(), ValueType::kString);
  EXPECT_EQ(tuples[0].at(1).type(), ValueType::kInt64);
}

TEST_F(ExecutorTest, SameRowsComparator) {
  auto a = Run("SELECT cid FROM Consumer");
  auto b = a;
  std::reverse(b.rows.begin(), b.rows.end());
  EXPECT_TRUE(a.SameRows(b));  // order-insensitive
  b.rows.pop_back();
  EXPECT_FALSE(a.SameRows(b));
  auto c = Run("SELECT cid FROM Consumer");
  c.rows[0] = Tuple({Value::Int64(999)});
  EXPECT_FALSE(a.SameRows(c));
}

TEST_F(ExecutorTest, SameRowsToleratesFloatJitter) {
  QueryResult a, b;
  a.rows.push_back(Tuple({Value::Double(1.0)}));
  b.rows.push_back(Tuple({Value::Double(1.0 + 1e-13)}));
  EXPECT_TRUE(a.SameRows(b));
  b.rows[0] = Tuple({Value::Double(1.001)});
  EXPECT_FALSE(a.SameRows(b));
}


TEST_F(ExecutorTest, NullGroupKeysFormOneGroup) {
  // NULL grouping values group together (IsSameGroup semantics), unlike
  // NULL equality in WHERE.
  auto* consumer = db_.GetTable("Consumer").ValueOrDie();
  ASSERT_TRUE(consumer->Insert(Tuple({Value::Int64(90), Value::Null()})).ok());
  ASSERT_TRUE(consumer->Insert(Tuple({Value::Int64(91), Value::Null()})).ok());
  auto result = Run("SELECT district, COUNT(*) FROM Consumer GROUP BY district");
  ASSERT_EQ(result.rows.size(), 3u);  // north, south, NULL
  int64_t null_count = 0;
  for (const auto& row : result.rows) {
    if (row.at(0).is_null()) null_count = row.at(1).AsInt64();
  }
  EXPECT_EQ(null_count, 2);
}

TEST_F(ExecutorTest, ThreeTableJoin) {
  ASSERT_TRUE(db_.CreateTable("Tariff", Schema({{"district", ValueType::kString},
                                                {"rate", ValueType::kDouble}}))
                  .ok());
  auto* tariff = db_.GetTable("Tariff").ValueOrDie();
  ASSERT_TRUE(tariff->Insert(Tuple({Value::String("north"), Value::Double(2.0)})).ok());
  ASSERT_TRUE(tariff->Insert(Tuple({Value::String("south"), Value::Double(3.0)})).ok());

  auto result = Run(
      "SELECT C.district, SUM(P.cons * T.rate) FROM Consumer C, Power P, "
      "Tariff T WHERE C.cid = P.cid AND C.district = T.district "
      "GROUP BY C.district");
  ASSERT_EQ(result.rows.size(), 2u);
  // north: (10+11+20+21) * 2 = 124; south: (30+31+40+41) * 3 = 426.
  EXPECT_DOUBLE_EQ(result.rows[0].at(1).AsDouble(), 124.0);
  EXPECT_DOUBLE_EQ(result.rows[1].at(1).AsDouble(), 426.0);
}

TEST_F(ExecutorTest, AggregateOfExpression) {
  auto result = Run("SELECT district, SUM(cid * 2 + 1) FROM Consumer "
                    "GROUP BY district");
  ASSERT_EQ(result.rows.size(), 2u);
  // north cids {0,1}: 1 + 3 = 4; south cids {2,3}: 5 + 7 = 12.
  EXPECT_EQ(result.rows[0].at(1).AsInt64(), 4);
  EXPECT_EQ(result.rows[1].at(1).AsInt64(), 12);
}

TEST_F(ExecutorTest, MedianEndToEnd) {
  auto result = Run("SELECT MEDIAN(cons) FROM Power");
  ASSERT_EQ(result.rows.size(), 1u);
  // cons sorted: 10,11,20,21,30,31,40,41 -> lower median 21.
  EXPECT_DOUBLE_EQ(result.rows[0].at(0).AsDouble(), 21.0);
}

}  // namespace
}  // namespace tcells::sql
