// Tests for the TDS: access control, histogram, collection-phase encodings
// (including dummy and noise behaviour), aggregation and filtering steps.
#include <gtest/gtest.h>

#include <set>

#include "crypto/keystore.h"
#include "protocol/protocols.h"
#include "ssi/ssi.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "tds/histogram.h"
#include "tds/tds.h"
#include "workload/generic.h"

namespace tcells::tds {
namespace {

using ssi::EncryptedItem;
using ssi::PayloadKind;
using storage::Tuple;
using storage::Value;

// ---------------------------------------------------------------------------
// Authority / AccessPolicy

TEST(AuthorityTest, IssueVerify) {
  Authority authority(Bytes(16, 0x42));
  Bytes cred = authority.Issue("energy-co");
  EXPECT_TRUE(authority.Verify("energy-co", cred));
  EXPECT_FALSE(authority.Verify("mallory", cred));
  Bytes bad = cred;
  bad[0] ^= 1;
  EXPECT_FALSE(authority.Verify("energy-co", bad));
}

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() {
    EXPECT_TRUE(catalog_.AddTable("T", workload::GenericSchema()).ok());
  }
  sql::AnalyzedQuery Analyze(const std::string& sql) {
    return sql::AnalyzeSql(sql, catalog_).ValueOrDie();
  }
  storage::Catalog catalog_;
};

TEST_F(PolicyTest, AllowAllGrantsEverything) {
  auto q = Analyze("SELECT grp, AVG(val) FROM T GROUP BY grp");
  EXPECT_TRUE(AccessPolicy::AllowAll().CheckQuery(q, "anyone").ok());
}

TEST_F(PolicyTest, DenyByDefault) {
  AccessPolicy policy;
  auto q = Analyze("SELECT grp FROM T");
  EXPECT_TRUE(policy.CheckQuery(q, "alice").IsPermissionDenied());
}

TEST_F(PolicyTest, TableRuleGrantsAllColumns) {
  AccessPolicy policy(std::vector<AccessRule>{{"alice", "T", {}}});
  auto q = Analyze("SELECT grp, val FROM T WHERE cat = 1");
  EXPECT_TRUE(policy.CheckQuery(q, "alice").ok());
  EXPECT_FALSE(policy.CheckQuery(q, "bob").ok());
}

TEST_F(PolicyTest, ColumnScopedRule) {
  AccessPolicy policy(std::vector<AccessRule>{{"alice", "T", {"grp", "val"}}});
  EXPECT_TRUE(policy.CheckQuery(Analyze("SELECT grp, AVG(val) FROM T GROUP BY grp"),
                                "alice").ok());
  // cat is referenced in WHERE but not granted.
  EXPECT_FALSE(policy.CheckQuery(
      Analyze("SELECT grp FROM T WHERE cat = 1"), "alice").ok());
}

TEST_F(PolicyTest, WildcardQuerier) {
  AccessPolicy policy(std::vector<AccessRule>{{"*", "T", {"grp"}}});
  EXPECT_TRUE(policy.CheckQuery(Analyze("SELECT grp FROM T"), "anyone").ok());
  EXPECT_FALSE(policy.CheckQuery(Analyze("SELECT val FROM T"), "anyone").ok());
}

TEST_F(PolicyTest, ReferencedColumnsCoverAllClauses) {
  auto q = Analyze(
      "SELECT grp, SUM(val) FROM T WHERE cat > 0 GROUP BY grp "
      "HAVING COUNT(DISTINCT gid) > 1");
  auto refs = ReferencedColumns(q);
  // grp(1), val(2), cat(3), gid(0) all referenced.
  EXPECT_EQ(refs.size(), 4u);
}

// ---------------------------------------------------------------------------
// EquiDepthHistogram

std::map<Tuple, uint64_t> FreqOf(const std::vector<std::pair<int, int>>& kv) {
  std::map<Tuple, uint64_t> freq;
  for (auto [k, v] : kv) {
    freq[Tuple({Value::Int64(k)})] = static_cast<uint64_t>(v);
  }
  return freq;
}

TEST(HistogramTest, UniformSplitsEvenly) {
  auto freq = FreqOf({{0, 10}, {1, 10}, {2, 10}, {3, 10}});
  auto hist = EquiDepthHistogram::Build(freq, 2);
  EXPECT_EQ(hist.num_buckets(), 2u);
  EXPECT_EQ(hist.BucketOf(Tuple({Value::Int64(0)})),
            hist.BucketOf(Tuple({Value::Int64(1)})));
  EXPECT_NE(hist.BucketOf(Tuple({Value::Int64(1)})),
            hist.BucketOf(Tuple({Value::Int64(2)})));
  EXPECT_DOUBLE_EQ(hist.CollisionFactor(), 2.0);
}

TEST(HistogramTest, SkewIsolatesHeavyHitter) {
  // One value carries almost all mass: equi-depth puts it alone.
  auto freq = FreqOf({{0, 1000}, {1, 5}, {2, 5}, {3, 5}});
  auto hist = EquiDepthHistogram::Build(freq, 2);
  uint32_t heavy = hist.BucketOf(Tuple({Value::Int64(0)}));
  EXPECT_NE(heavy, hist.BucketOf(Tuple({Value::Int64(3)})));
}

TEST(HistogramTest, BucketCountClamped) {
  auto freq = FreqOf({{0, 1}, {1, 1}});
  EXPECT_EQ(EquiDepthHistogram::Build(freq, 10).num_buckets(), 2u);
  EXPECT_EQ(EquiDepthHistogram::Build(freq, 0).num_buckets(), 1u);
  EXPECT_EQ(EquiDepthHistogram::Build({}, 4).num_buckets(), 0u);
}

TEST(HistogramTest, EveryBucketNonEmptyAndOrdered) {
  std::map<Tuple, uint64_t> freq;
  Rng rng(5);
  for (int k = 0; k < 50; ++k) {
    freq[Tuple({Value::Int64(k)})] = 1 + rng.NextBelow(20);
  }
  auto hist = EquiDepthHistogram::Build(freq, 7);
  EXPECT_EQ(hist.num_buckets(), 7u);
  std::map<uint32_t, int> per_bucket;
  uint32_t prev = 0;
  for (const auto& [key, f] : freq) {
    uint32_t b = hist.BucketOf(key);
    EXPECT_GE(b, prev);  // monotone in key order
    prev = b;
    per_bucket[b]++;
  }
  EXPECT_EQ(per_bucket.size(), 7u);
}


TEST(HistogramTest, EncodeDecodeRoundTrip) {
  auto freq = FreqOf({{0, 7}, {1, 3}, {2, 9}, {3, 2}, {4, 4}});
  auto hist = EquiDepthHistogram::Build(freq, 3);
  Bytes buf;
  hist.EncodeTo(&buf);
  auto back = EquiDepthHistogram::Decode(buf).ValueOrDie();
  EXPECT_TRUE(hist.Equals(back));
  for (const auto& [key, f] : freq) {
    EXPECT_EQ(hist.BucketOf(key), back.BucketOf(key));
  }
  EXPECT_DOUBLE_EQ(hist.CollisionFactor(), back.CollisionFactor());
}

TEST(HistogramTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(EquiDepthHistogram::Decode(Bytes{1, 2, 3}).ok());
  // Non-increasing bounds rejected.
  auto freq = FreqOf({{0, 5}, {5, 5}});
  auto hist = EquiDepthHistogram::Build(freq, 2);
  Bytes buf;
  hist.EncodeTo(&buf);
  Bytes doubled;
  ByteWriter w(&doubled);
  w.PutU64(2);
  w.PutU32(2);
  Tuple b({Value::Int64(5)});
  b.EncodeTo(&doubled);
  b.EncodeTo(&doubled);  // same bound twice: not strictly increasing
  EXPECT_FALSE(EquiDepthHistogram::Decode(doubled).ok());
  EXPECT_TRUE(EquiDepthHistogram::Decode(buf).ok());
}

TEST(HistogramTest, DecodeRejectsFewerKeysThanBuckets) {
  // Forged frame: sorted bounds (passes the monotonicity check) but claims
  // one distinct key for two buckets. Build() can never produce this —
  // bucket count is clamped to the key count — and accepting it silently
  // corrupts CollisionFactor() and the equi-depth contract.
  Bytes forged;
  ByteWriter w(&forged);
  w.PutU64(1);  // num_keys
  w.PutU32(2);  // buckets
  Tuple({Value::Int64(1)}).EncodeTo(&forged);
  Tuple({Value::Int64(2)}).EncodeTo(&forged);
  auto result = EquiDepthHistogram::Decode(forged);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(HistogramTest, DecodeRejectsOversizedBucketCount) {
  // A count field larger than the remaining bytes could satisfy must fail
  // before any reservation happens (GetCountU32 discipline).
  Bytes forged;
  ByteWriter w(&forged);
  w.PutU64(0xffffffff);
  w.PutU32(0x7fffffff);  // claims ~2^31 bounds in an 8-byte body
  forged.resize(forged.size() + 8, 0);
  auto result = EquiDepthHistogram::Decode(forged);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(HistogramTest, UnseenKeysStillMap) {
  auto freq = FreqOf({{10, 5}, {20, 5}});
  auto hist = EquiDepthHistogram::Build(freq, 2);
  EXPECT_EQ(hist.BucketOf(Tuple({Value::Int64(0)})), 0u);
  EXPECT_EQ(hist.BucketOf(Tuple({Value::Int64(99)})), 1u);
}

// ---------------------------------------------------------------------------
// TrustedDataServer

class TdsTest : public ::testing::Test {
 protected:
  TdsTest()
      : keys_(crypto::KeyStore::CreateForTest(77)),
        authority_(std::make_shared<Authority>(Bytes(16, 1))),
        rng_(123) {
    server_ = std::make_unique<TrustedDataServer>(
        /*id=*/0, keys_, authority_, AccessPolicy::AllowAll());
    workload::GenericOptions opts;
    opts.num_groups = 4;
    Rng data_rng(9);
    EXPECT_TRUE(
        workload::PopulateGenericDb(&server_->db(), 0, opts, &data_rng).ok());
  }

  ssi::QueryPost Post(const std::string& sql, const std::string& querier_id,
                      uint64_t query_id = 1) {
    ssi::QueryPost post;
    post.query_id = query_id;
    Bytes sql_bytes(sql.begin(), sql.end());
    post.encrypted_query = keys_->k1_ndet().Encrypt(sql_bytes, &rng_);
    post.querier_id = querier_id;
    post.credential_mac = authority_->Issue(querier_id);
    return post;
  }

  ssi::DecodedPayload Open(const EncryptedItem& item) {
    Bytes plain = keys_->k2_ndet().Decrypt(item.blob).ValueOrDie();
    return ssi::DecodePayload(plain).ValueOrDie();
  }

  std::shared_ptr<const crypto::KeyStore> keys_;
  std::shared_ptr<Authority> authority_;
  Rng rng_;
  std::unique_ptr<TrustedDataServer> server_;
};

TEST_F(TdsTest, CollectionNDetEmitsTrueTuples) {
  CollectionConfig config;  // kNDet
  auto items = server_
                   ->ProcessCollection(
                       Post("SELECT grp, AVG(val) FROM T GROUP BY grp", "q"),
                       config, &rng_)
                   .ValueOrDie();
  ASSERT_EQ(items.size(), 1u);  // one row per TDS by default
  EXPECT_FALSE(items[0].routing_tag.has_value());
  auto payload = Open(items[0]);
  EXPECT_EQ(payload.kind, PayloadKind::kTrueTuple);
  Tuple t = Tuple::Decode(payload.body).ValueOrDie();
  EXPECT_EQ(t.size(), 2u);  // [grp, val]
}

TEST_F(TdsTest, BadCredentialYieldsDummy) {
  CollectionConfig config;
  auto post = Post("SELECT grp FROM T", "q");
  post.credential_mac[0] ^= 0xff;
  auto items = server_->ProcessCollection(post, config, &rng_).ValueOrDie();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(Open(items[0]).kind, PayloadKind::kDummyTuple);
}

TEST_F(TdsTest, DeniedQuerierYieldsDummyNotError) {
  auto denied_server = std::make_unique<TrustedDataServer>(
      1, keys_, authority_, AccessPolicy(std::vector<AccessRule>{{"only-this-querier", "T", {}}}));
  workload::GenericOptions opts;
  Rng data_rng(10);
  ASSERT_TRUE(
      workload::PopulateGenericDb(&denied_server->db(), 1, opts, &data_rng)
          .ok());
  CollectionConfig config;
  auto items =
      denied_server->ProcessCollection(Post("SELECT grp FROM T", "mallory"),
                                       config, &rng_)
          .ValueOrDie();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(Open(items[0]).kind, PayloadKind::kDummyTuple);
}

TEST_F(TdsTest, EmptyLocalResultYieldsDummy) {
  CollectionConfig config;
  auto items = server_
                   ->ProcessCollection(
                       Post("SELECT grp FROM T WHERE cat > 100", "q"), config,
                       &rng_)
                   .ValueOrDie();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(Open(items[0]).kind, PayloadKind::kDummyTuple);
}

TEST_F(TdsTest, MalformedQueryIsError) {
  CollectionConfig config;
  EXPECT_FALSE(
      server_->ProcessCollection(Post("NOT SQL AT ALL", "q"), config, &rng_)
          .ok());
}

TEST_F(TdsTest, DetTagModeTagsAndAddsNoise) {
  auto domain = std::make_shared<std::vector<Tuple>>();
  for (int g = 0; g < 4; ++g) {
    domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
  }
  CollectionConfig config;
  config.mode = CollectionMode::kDetTag;
  config.noise.nf = 3;
  config.noise.group_domain = domain;
  auto items = server_
                   ->ProcessCollection(
                       Post("SELECT grp, AVG(val) FROM T GROUP BY grp", "q"),
                       config, &rng_)
                   .ValueOrDie();
  ASSERT_EQ(items.size(), 4u);  // 1 true + nf fakes
  int fakes = 0, trues = 0;
  for (const auto& item : items) {
    ASSERT_TRUE(item.routing_tag.has_value());
    auto payload = Open(item);
    if (payload.kind == PayloadKind::kFakeTuple) ++fakes;
    if (payload.kind == PayloadKind::kTrueTuple) ++trues;
    // Tag must decrypt (under k2 Det) to the tuple's group key.
    Tuple inner = Tuple::Decode(payload.body).ValueOrDie();
    Bytes key_bytes =
        keys_->k2_det().Decrypt(*item.routing_tag).ValueOrDie();
    Tuple key = Tuple::Decode(key_bytes).ValueOrDie();
    EXPECT_TRUE(key.at(0).IsSameGroup(inner.at(0)));
  }
  EXPECT_EQ(trues, 1);
  EXPECT_EQ(fakes, 3);
}

TEST_F(TdsTest, ComplementaryNoiseCoversDomain) {
  auto domain = std::make_shared<std::vector<Tuple>>();
  for (int g = 0; g < 4; ++g) {
    domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
  }
  CollectionConfig config;
  config.mode = CollectionMode::kDetTag;
  config.noise.complementary = true;
  config.noise.group_domain = domain;
  auto items = server_
                   ->ProcessCollection(
                       Post("SELECT grp, COUNT(*) FROM T GROUP BY grp", "q"),
                       config, &rng_)
                   .ValueOrDie();
  // 1 true + (nd - 1) fakes covering every other domain value: flat.
  ASSERT_EQ(items.size(), 4u);
  std::set<Bytes> tags;
  for (const auto& item : items) tags.insert(*item.routing_tag);
  EXPECT_EQ(tags.size(), 4u);
}

TEST_F(TdsTest, HistTagModeUsesKeyedBucketHash) {
  std::map<Tuple, uint64_t> freq;
  for (int g = 0; g < 4; ++g) {
    freq[Tuple({Value::String(workload::GroupName(g))})] = 5;
  }
  auto hist = std::make_shared<EquiDepthHistogram>(
      EquiDepthHistogram::Build(freq, 2));
  CollectionConfig config;
  config.mode = CollectionMode::kHistTag;
  config.histogram = hist;
  auto items = server_
                   ->ProcessCollection(
                       Post("SELECT grp, AVG(val) FROM T GROUP BY grp", "q"),
                       config, &rng_)
                   .ValueOrDie();
  ASSERT_EQ(items.size(), 1u);
  ASSERT_TRUE(items[0].routing_tag.has_value());
  EXPECT_EQ(items[0].routing_tag->size(), 8u);  // 64-bit keyed hash
}

TEST_F(TdsTest, AggregationPartitionFoldsTuplesAndPartials) {
  auto query =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp",
                      server_->db().catalog())
          .ValueOrDie();
  CollectionConfig config;

  // Build a partition of raw true tuples for a single group.
  ssi::Partition partition;
  for (int i = 0; i < 5; ++i) {
    Tuple t({Value::String("G00")});
    Bytes payload = ssi::EncodePayload(PayloadKind::kTrueTuple, t.Encode());
    EncryptedItem item;
    item.blob = keys_->k2_ndet().Encrypt(payload, &rng_);
    partition.items.push_back(std::move(item));
  }
  auto out1 = server_
                  ->ProcessAggregationPartition(
                      query, partition, OutputTagPolicy::kNone, config, &rng_)
                  .ValueOrDie();
  ASSERT_EQ(out1.size(), 1u);

  // Feed the partial back with more tuples: counts must add up.
  ssi::Partition partition2;
  partition2.items.push_back(out1[0]);
  partition2.items.push_back(partition.items[0]);
  auto out2 = server_
                  ->ProcessAggregationPartition(
                      query, partition2, OutputTagPolicy::kNone, config, &rng_)
                  .ValueOrDie();
  ASSERT_EQ(out2.size(), 1u);
  auto payload = Open(out2[0]);
  ASSERT_EQ(payload.kind, PayloadKind::kPartialAgg);
  auto agg =
      sql::GroupedAggregation::Decode(query.agg_specs, payload.body)
          .ValueOrDie();
  ASSERT_EQ(agg.num_groups(), 1u);
  EXPECT_EQ(
      agg.groups().begin()->second[0].Finalize().ValueOrDie().AsInt64(), 6);
}

TEST_F(TdsTest, AggregationDropsDummiesAndFakes) {
  auto query =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp",
                      server_->db().catalog())
          .ValueOrDie();
  CollectionConfig config;
  ssi::Partition partition;
  Tuple t({Value::String("G00")});
  for (PayloadKind kind : {PayloadKind::kTrueTuple, PayloadKind::kDummyTuple,
                           PayloadKind::kFakeTuple}) {
    EncryptedItem item;
    item.blob = keys_->k2_ndet().Encrypt(
        ssi::EncodePayload(kind, t.Encode()), &rng_);
    partition.items.push_back(std::move(item));
  }
  auto out = server_
                 ->ProcessAggregationPartition(
                     query, partition, OutputTagPolicy::kNone, config, &rng_)
                 .ValueOrDie();
  auto agg = sql::GroupedAggregation::Decode(query.agg_specs,
                                             Open(out[0]).body)
                 .ValueOrDie();
  EXPECT_EQ(
      agg.groups().begin()->second[0].Finalize().ValueOrDie().AsInt64(), 1);
}

TEST_F(TdsTest, RamBudgetEnforced) {
  auto tiny = std::make_unique<TrustedDataServer>(
      2, keys_, authority_, AccessPolicy::AllowAll(),
      [] {
        TdsOptions options;
        options.ram_budget_bytes = 256;
        return options;
      }());
  workload::GenericOptions opts;
  Rng data_rng(11);
  ASSERT_TRUE(workload::PopulateGenericDb(&tiny->db(), 2, opts, &data_rng).ok());
  auto query = sql::AnalyzeSql("SELECT gid, COUNT(*) FROM T GROUP BY gid",
                               tiny->db().catalog())
                   .ValueOrDie();
  CollectionConfig config;
  ssi::Partition partition;
  for (int g = 0; g < 500; ++g) {
    Tuple t({Value::Int64(g)});
    EncryptedItem item;
    item.blob = keys_->k2_ndet().Encrypt(
        ssi::EncodePayload(PayloadKind::kTrueTuple, t.Encode()), &rng_);
    partition.items.push_back(std::move(item));
  }
  auto result = tiny->ProcessAggregationPartition(
      query, partition, OutputTagPolicy::kNone, config, &rng_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST_F(TdsTest, FilteringAppliesHavingAndEncryptsUnderK1) {
  auto query = sql::AnalyzeSql(
                   "SELECT grp, COUNT(*) FROM T GROUP BY grp "
                   "HAVING COUNT(*) >= 2",
                   server_->db().catalog())
                   .ValueOrDie();
  // Final per-group aggregations: G00 has 3 tuples, G01 has 1.
  sql::GroupedAggregation agg(query.agg_specs);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        agg.AccumulateTuple(Tuple({Value::String("G00")}), 1).ok());
  }
  ASSERT_TRUE(agg.AccumulateTuple(Tuple({Value::String("G01")}), 1).ok());
  Bytes body;
  agg.EncodeTo(&body);
  ssi::Partition partition;
  EncryptedItem item;
  item.blob = keys_->k2_ndet().Encrypt(
      ssi::EncodePayload(PayloadKind::kPartialAgg, body), &rng_);
  partition.items.push_back(std::move(item));

  auto out = server_->ProcessFiltering(query, partition, &rng_).ValueOrDie();
  ASSERT_EQ(out.size(), 1u);  // G01 filtered out by HAVING
  // The result decrypts under k1, not k2.
  EXPECT_FALSE(keys_->k2_ndet().Decrypt(out[0].blob).ok());
  Bytes plain = keys_->k1_ndet().Decrypt(out[0].blob).ValueOrDie();
  auto payload = ssi::DecodePayload(plain).ValueOrDie();
  EXPECT_EQ(payload.kind, PayloadKind::kResultRow);
  Tuple row = Tuple::Decode(payload.body).ValueOrDie();
  EXPECT_EQ(row.at(0).AsString(), "G00");
  EXPECT_EQ(row.at(1).AsInt64(), 3);
}

TEST_F(TdsTest, FilteringSfwDropsDummies) {
  auto query = sql::AnalyzeSql("SELECT grp FROM T", server_->db().catalog())
                   .ValueOrDie();
  ssi::Partition partition;
  Tuple t({Value::String("G02")});
  for (PayloadKind kind :
       {PayloadKind::kTrueTuple, PayloadKind::kDummyTuple}) {
    EncryptedItem item;
    item.blob = keys_->k2_ndet().Encrypt(
        ssi::EncodePayload(kind, t.Encode()), &rng_);
    partition.items.push_back(std::move(item));
  }
  auto out = server_->ProcessFiltering(query, partition, &rng_).ValueOrDie();
  ASSERT_EQ(out.size(), 1u);
  Bytes plain = keys_->k1_ndet().Decrypt(out[0].blob).ValueOrDie();
  auto payload = ssi::DecodePayload(plain).ValueOrDie();
  EXPECT_EQ(Tuple::Decode(payload.body).ValueOrDie().at(0).AsString(), "G02");
}


TEST_F(TdsTest, PowerCycleSealRestoreKeepsServing) {
  // Fig 1 lifecycle: the TDS seals its database to untrusted flash at power
  // down and restores it at power up; queries behave identically.
  Rng rng(321);
  Bytes storage_key = rng.NextBytes(16);
  auto post = Post("SELECT grp, COUNT(*) FROM T GROUP BY grp", "q", 71);
  auto before = server_->ProcessCollection(post, {}, &rng_).ValueOrDie();

  auto image = server_->SealDatabase(storage_key, &rng).ValueOrDie();
  ASSERT_TRUE(server_->RestoreDatabase(image, storage_key).ok());

  auto post2 = Post("SELECT grp, COUNT(*) FROM T GROUP BY grp", "q", 72);
  auto after = server_->ProcessCollection(post2, {}, &rng_).ValueOrDie();
  ASSERT_EQ(before.size(), after.size());
  // The decrypted collection tuples are identical.
  for (size_t i = 0; i < before.size(); ++i) {
    auto a = Open(before[i]);
    auto b = Open(after[i]);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.body, b.body);
  }
  // Restoring with the wrong key fails and leaves the old state in place.
  Bytes wrong = rng.NextBytes(16);
  EXPECT_FALSE(server_->RestoreDatabase(image, wrong).ok());
  EXPECT_TRUE(server_->db().catalog().HasTable("T"));
}

TEST_F(TdsTest, PerGroupDetTagsOutput) {
  // ED_Hist step 1 output shape: one Det-tagged partial per group found.
  auto query =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp",
                      server_->db().catalog())
          .ValueOrDie();
  ssi::Partition partition;
  for (const char* g : {"G00", "G00", "G01", "G02"}) {
    Tuple t({Value::String(g)});
    EncryptedItem item;
    item.blob = keys_->k2_ndet().Encrypt(
        ssi::EncodePayload(PayloadKind::kTrueTuple, t.Encode()), &rng_);
    partition.items.push_back(std::move(item));
  }
  auto out = server_
                 ->ProcessAggregationPartition(
                     query, partition, OutputTagPolicy::kPerGroupDet, {},
                     &rng_)
                 .ValueOrDie();
  ASSERT_EQ(out.size(), 3u);  // three distinct groups
  std::set<Bytes> tags;
  for (const auto& item : out) {
    ASSERT_TRUE(item.routing_tag.has_value());
    tags.insert(*item.routing_tag);
    // Tag decrypts to the single group key of the partial inside.
    Bytes key_bytes = keys_->k2_det().Decrypt(*item.routing_tag).ValueOrDie();
    Tuple key = Tuple::Decode(key_bytes).ValueOrDie();
    auto payload = Open(item);
    auto agg = sql::GroupedAggregation::Decode(query.agg_specs, payload.body)
                   .ValueOrDie();
    ASSERT_EQ(agg.num_groups(), 1u);
    EXPECT_TRUE(agg.groups().begin()->first.IsSameGroup(key));
  }
  EXPECT_EQ(tags.size(), 3u);
}

TEST_F(TdsTest, QueryCacheReusesAnalysis) {
  CollectionConfig config;
  auto post = Post("SELECT grp FROM T", "q", /*query_id=*/55);
  ASSERT_TRUE(server_->ProcessCollection(post, config, &rng_).ok());
  // Second call hits the cache (same id) — must behave identically.
  auto again = server_->ProcessCollection(post, config, &rng_).ValueOrDie();
  EXPECT_EQ(again.size(), 1u);
}

TEST_F(TdsTest, QueryCacheEvictsLeastRecentlyUsed) {
  TdsOptions options;
  options.query_cache_capacity = 3;
  TrustedDataServer server(/*id=*/7, keys_, authority_,
                           AccessPolicy::AllowAll(), options);
  workload::GenericOptions gopts;
  gopts.num_groups = 4;
  Rng data_rng(9);
  ASSERT_TRUE(workload::PopulateGenericDb(&server.db(), 7, gopts, &data_rng)
                  .ok());

  CollectionConfig config;
  auto Run = [&](uint64_t query_id) {
    return server
        .ProcessCollection(Post("SELECT grp FROM T", "q", query_id), config,
                           &rng_)
        .ok();
  };
  for (uint64_t id = 1; id <= 3; ++id) ASSERT_TRUE(Run(id));
  EXPECT_EQ(server.query_cache_size(), 3u);
  // Touch query 1 so query 2 becomes the LRU entry, then overflow: the cache
  // must stay at capacity whatever the stream length.
  ASSERT_TRUE(Run(1));
  for (uint64_t id = 4; id <= 20; ++id) ASSERT_TRUE(Run(id));
  EXPECT_EQ(server.query_cache_size(), 3u);
  // Evicted ids still work — they are just re-analyzed.
  ASSERT_TRUE(Run(2));
  EXPECT_EQ(server.query_cache_size(), 3u);
}

TEST_F(TdsTest, QueryCacheEvictsAtExactlyCapacity) {
  constexpr size_t kCapacity = 4;
  TdsOptions options;
  options.query_cache_capacity = kCapacity;
  TrustedDataServer server(/*id=*/9, keys_, authority_,
                           AccessPolicy::AllowAll(), options);
  workload::GenericOptions gopts;
  gopts.num_groups = 4;
  Rng data_rng(9);
  ASSERT_TRUE(workload::PopulateGenericDb(&server.db(), 9, gopts, &data_rng)
                  .ok());

  // The cache grows one entry per distinct query until exactly kCapacity; no
  // eviction happens before the boundary and every admission after it evicts
  // exactly one entry.
  for (uint64_t id = 1; id <= kCapacity; ++id) {
    ASSERT_TRUE(server.OpenQuery(Post("SELECT grp FROM T", "q", id)).ok());
    EXPECT_EQ(server.query_cache_size(), id);
  }
  for (uint64_t id = kCapacity + 1; id <= kCapacity + 5; ++id) {
    ASSERT_TRUE(server.OpenQuery(Post("SELECT grp FROM T", "q", id)).ok());
    EXPECT_EQ(server.query_cache_size(), kCapacity);
  }
}

TEST_F(TdsTest, QueryCacheReAdmitsEvictedQuery) {
  constexpr size_t kCapacity = 2;
  TdsOptions options;
  options.query_cache_capacity = kCapacity;
  TrustedDataServer server(/*id=*/10, keys_, authority_,
                           AccessPolicy::AllowAll(), options);
  workload::GenericOptions gopts;
  gopts.num_groups = 4;
  Rng data_rng(9);
  ASSERT_TRUE(workload::PopulateGenericDb(&server.db(), 10, gopts, &data_rng)
                  .ok());

  auto post1 = Post("SELECT grp FROM T", "q", 1);
  const sql::AnalyzedQuery* first = server.OpenQuery(post1).ValueOrDie();
  // While cached, repeated opens return the same analysis object.
  EXPECT_EQ(server.OpenQuery(post1).ValueOrDie(), first);

  // Push query 1 out of the LRU.
  ASSERT_TRUE(server.OpenQuery(Post("SELECT grp FROM T", "q", 2)).ok());
  ASSERT_TRUE(server.OpenQuery(Post("SELECT grp FROM T", "q", 3)).ok());
  EXPECT_EQ(server.query_cache_size(), kCapacity);

  // Re-opening the evicted query re-analyzes and re-admits it: subsequent
  // opens are cache hits again and the cache stays at capacity.
  const sql::AnalyzedQuery* readmitted = server.OpenQuery(post1).ValueOrDie();
  EXPECT_EQ(server.OpenQuery(post1).ValueOrDie(), readmitted);
  EXPECT_EQ(readmitted->sql, first->sql);
  EXPECT_EQ(server.query_cache_size(), kCapacity);
}

TEST_F(TdsTest, QueryCacheCapacityDoesNotChangeResults) {
  // Full e2e sweep with capacity 0 (unlimited) vs 64 (default LRU): the
  // cache is a pure memoization, so results and the adversary's view must be
  // bit-identical.
  auto run_with_capacity = [](size_t capacity) {
    workload::GenericOptions gopts;
    gopts.num_tds = 8;
    gopts.num_groups = 3;
    gopts.rows_per_tds = 2;
    gopts.seed = 21;
    auto keys = crypto::KeyStore::CreateForTest(gopts.seed);
    auto authority = std::make_shared<Authority>(Bytes(16, 0x61));
    TdsOptions options;
    options.query_cache_capacity = capacity;
    auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                             AccessPolicy::AllowAll(), options)
                     .ValueOrDie();
    protocol::Querier querier("q", authority->Issue("q"), keys);
    protocol::RunOptions opts;
    opts.compute_availability = 1.0;
    opts.expected_groups = gopts.num_groups;
    opts.seed = 99;
    opts.num_threads = 1;
    protocol::SAggProtocol sagg;
    Engine::Config cfg;
    cfg.options = opts;
    auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
    std::string out;
    for (uint64_t id = 1; id <= 3; ++id) {
      auto outcome =
          engine
              ->Run(sagg, querier, id,
                    "SELECT grp, COUNT(*), SUM(cat) FROM T GROUP BY grp")
              .ValueOrDie();
      out += outcome.result.ToString();
      out += "|" + std::to_string(outcome.adversary.collection_items);
    }
    return out;
  };
  EXPECT_EQ(run_with_capacity(0), run_with_capacity(64));
}

TEST_F(TdsTest, QueryCacheCapacityZeroIsUnlimited) {
  TdsOptions options;
  options.query_cache_capacity = 0;
  TrustedDataServer server(/*id=*/8, keys_, authority_,
                           AccessPolicy::AllowAll(), options);
  workload::GenericOptions gopts;
  gopts.num_groups = 4;
  Rng data_rng(9);
  ASSERT_TRUE(workload::PopulateGenericDb(&server.db(), 8, gopts, &data_rng)
                  .ok());
  CollectionConfig config;
  for (uint64_t id = 1; id <= 100; ++id) {
    ASSERT_TRUE(server
                    .ProcessCollection(Post("SELECT grp FROM T", "q", id),
                                       config, &rng_)
                    .ok());
  }
  EXPECT_EQ(server.query_cache_size(), 100u);
}

}  // namespace
}  // namespace tcells::tds
