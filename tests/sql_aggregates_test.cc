// Tests for the mergeable aggregate states — the invariant the whole
// distributed aggregation rests on: any way of splitting and merging a
// multiset of inputs yields the same finalized value as accumulating it
// in one pass.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/aggregates.h"

namespace tcells::sql {
namespace {

using storage::Tuple;
using storage::Value;

AggSpec Spec(AggKind kind, bool distinct = false, int input = 0) {
  AggSpec s;
  s.kind = kind;
  s.distinct = distinct;
  s.input_index = input;
  s.name = "test";
  return s;
}

Value Finalize(const AggState& s) { return s.Finalize().ValueOrDie(); }

TEST(AggStateTest, CountAndCountStar) {
  AggSpec star = Spec(AggKind::kCount, false, -1);
  AggState s(star);
  ASSERT_TRUE(s.Accumulate(Value::Null()).ok());
  ASSERT_TRUE(s.Accumulate(Value::Int64(5)).ok());
  EXPECT_EQ(Finalize(s).AsInt64(), 2);  // COUNT(*) counts NULLs

  AggState c(Spec(AggKind::kCount));
  ASSERT_TRUE(c.Accumulate(Value::Null()).ok());
  ASSERT_TRUE(c.Accumulate(Value::Int64(5)).ok());
  EXPECT_EQ(Finalize(c).AsInt64(), 1);  // COUNT(col) skips NULLs
}

TEST(AggStateTest, CountDistinct) {
  AggState s(Spec(AggKind::kCount, true));
  for (int64_t v : {1, 2, 2, 3, 3, 3}) {
    ASSERT_TRUE(s.Accumulate(Value::Int64(v)).ok());
  }
  EXPECT_EQ(Finalize(s).AsInt64(), 3);
}

TEST(AggStateTest, SumIntStaysInt) {
  AggState s(Spec(AggKind::kSum));
  for (int64_t v : {1, 2, 3}) ASSERT_TRUE(s.Accumulate(Value::Int64(v)).ok());
  Value out = Finalize(s);
  EXPECT_EQ(out.type(), storage::ValueType::kInt64);
  EXPECT_EQ(out.AsInt64(), 6);
}

TEST(AggStateTest, SumMixedBecomesDouble) {
  AggState s(Spec(AggKind::kSum));
  ASSERT_TRUE(s.Accumulate(Value::Int64(1)).ok());
  ASSERT_TRUE(s.Accumulate(Value::Double(0.5)).ok());
  Value out = Finalize(s);
  EXPECT_EQ(out.type(), storage::ValueType::kDouble);
  EXPECT_DOUBLE_EQ(out.AsDouble(), 1.5);
}

TEST(AggStateTest, SumOfNothingIsNull) {
  AggState s(Spec(AggKind::kSum));
  EXPECT_TRUE(Finalize(s).is_null());
  ASSERT_TRUE(s.Accumulate(Value::Null()).ok());
  EXPECT_TRUE(Finalize(s).is_null());
}

TEST(AggStateTest, SumIntOverflowFallsBackToDouble) {
  AggState s(Spec(AggKind::kSum));
  int64_t big = std::numeric_limits<int64_t>::max() - 1;
  ASSERT_TRUE(s.Accumulate(Value::Int64(big)).ok());
  ASSERT_TRUE(s.Accumulate(Value::Int64(big)).ok());
  Value out = Finalize(s);
  EXPECT_EQ(out.type(), storage::ValueType::kDouble);
  EXPECT_NEAR(out.AsDouble(), 2.0 * static_cast<double>(big),
              std::abs(out.AsDouble()) * 1e-12);
}

TEST(AggStateTest, Avg) {
  AggState s(Spec(AggKind::kAvg));
  for (int64_t v : {2, 4, 6}) ASSERT_TRUE(s.Accumulate(Value::Int64(v)).ok());
  EXPECT_DOUBLE_EQ(Finalize(s).AsDouble(), 4.0);
}

TEST(AggStateTest, AvgDistinct) {
  AggState s(Spec(AggKind::kAvg, true));
  for (int64_t v : {2, 2, 4}) ASSERT_TRUE(s.Accumulate(Value::Int64(v)).ok());
  EXPECT_DOUBLE_EQ(Finalize(s).AsDouble(), 3.0);
}

TEST(AggStateTest, MinMax) {
  AggState lo(Spec(AggKind::kMin)), hi(Spec(AggKind::kMax));
  for (int64_t v : {5, -3, 9, 0}) {
    ASSERT_TRUE(lo.Accumulate(Value::Int64(v)).ok());
    ASSERT_TRUE(hi.Accumulate(Value::Int64(v)).ok());
  }
  EXPECT_EQ(Finalize(lo).AsInt64(), -3);
  EXPECT_EQ(Finalize(hi).AsInt64(), 9);
}

TEST(AggStateTest, MinMaxStrings) {
  AggState lo(Spec(AggKind::kMin)), hi(Spec(AggKind::kMax));
  for (const char* v : {"pear", "apple", "mango"}) {
    ASSERT_TRUE(lo.Accumulate(Value::String(v)).ok());
    ASSERT_TRUE(hi.Accumulate(Value::String(v)).ok());
  }
  EXPECT_EQ(Finalize(lo).AsString(), "apple");
  EXPECT_EQ(Finalize(hi).AsString(), "pear");
}

TEST(AggStateTest, MinDistinctIsNoOp) {
  AggState s(Spec(AggKind::kMin, true));
  for (int64_t v : {4, 4, 2}) ASSERT_TRUE(s.Accumulate(Value::Int64(v)).ok());
  EXPECT_EQ(Finalize(s).AsInt64(), 2);
}

TEST(AggStateTest, MedianOddAndEven) {
  AggState odd(Spec(AggKind::kMedian));
  for (int64_t v : {9, 1, 5}) ASSERT_TRUE(odd.Accumulate(Value::Int64(v)).ok());
  EXPECT_EQ(Finalize(odd).AsInt64(), 5);

  AggState even(Spec(AggKind::kMedian));
  for (int64_t v : {1, 2, 3, 4}) {
    ASSERT_TRUE(even.Accumulate(Value::Int64(v)).ok());
  }
  EXPECT_EQ(Finalize(even).AsInt64(), 2);  // lower median
}

TEST(AggStateTest, MedianWithMultiplicities) {
  AggState s(Spec(AggKind::kMedian));
  for (int64_t v : {1, 1, 1, 1, 7, 8, 9}) {
    ASSERT_TRUE(s.Accumulate(Value::Int64(v)).ok());
  }
  EXPECT_EQ(Finalize(s).AsInt64(), 1);
}

// --- The core distributed-aggregation property -----------------------------

class MergeEquivalence
    : public ::testing::TestWithParam<std::tuple<AggKind, bool>> {};

TEST_P(MergeEquivalence, AnySplitMatchesSinglePass) {
  auto [kind, distinct] = GetParam();
  AggSpec spec = Spec(kind, distinct);
  Rng rng(1234 + static_cast<int>(kind) * 10 + distinct);

  // Random multiset with duplicates and a NULL sprinkle.
  std::vector<Value> inputs;
  for (int i = 0; i < 200; ++i) {
    if (rng.NextBool(0.05)) {
      inputs.push_back(Value::Null());
    } else {
      inputs.push_back(Value::Int64(rng.NextInRange(0, 20)));
    }
  }

  AggState single(spec);
  for (const auto& v : inputs) ASSERT_TRUE(single.Accumulate(v).ok());
  Value expected = Finalize(single);

  for (int trial = 0; trial < 10; ++trial) {
    // Split into 1..8 random partitions, accumulate each, merge in random
    // order (optionally through intermediate merge trees).
    size_t parts = 1 + rng.NextBelow(8);
    std::vector<AggState> states;
    for (size_t p = 0; p < parts; ++p) states.emplace_back(spec);
    for (const auto& v : inputs) {
      ASSERT_TRUE(states[rng.NextBelow(parts)].Accumulate(v).ok());
    }
    while (states.size() > 1) {
      size_t i = rng.NextBelow(states.size());
      size_t j = rng.NextBelow(states.size());
      if (i == j) continue;
      ASSERT_TRUE(states[i].Merge(states[j]).ok());
      states.erase(states.begin() + static_cast<long>(j));
    }
    Value merged = Finalize(states[0]);
    if (expected.is_null()) {
      EXPECT_TRUE(merged.is_null());
    } else if (expected.is_numeric()) {
      EXPECT_NEAR(merged.ToDouble().ValueOrDie(),
                  expected.ToDouble().ValueOrDie(), 1e-9);
    } else {
      EXPECT_TRUE(merged.IsSameGroup(expected));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, MergeEquivalence,
    ::testing::Values(std::make_tuple(AggKind::kCount, false),
                      std::make_tuple(AggKind::kCount, true),
                      std::make_tuple(AggKind::kSum, false),
                      std::make_tuple(AggKind::kSum, true),
                      std::make_tuple(AggKind::kAvg, false),
                      std::make_tuple(AggKind::kAvg, true),
                      std::make_tuple(AggKind::kMin, false),
                      std::make_tuple(AggKind::kMax, false),
                      std::make_tuple(AggKind::kMedian, false)));

// --- Serialization ----------------------------------------------------------

class SerializationRoundTrip
    : public ::testing::TestWithParam<std::tuple<AggKind, bool>> {};

TEST_P(SerializationRoundTrip, EncodeDecodePreservesState) {
  auto [kind, distinct] = GetParam();
  AggSpec spec = Spec(kind, distinct);
  Rng rng(99);
  AggState s(spec);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(s.Accumulate(Value::Int64(rng.NextInRange(-5, 5))).ok());
  }
  Bytes buf;
  s.EncodeTo(&buf);
  ByteReader reader(buf);
  AggState back = AggState::DecodeFrom(spec, &reader).ValueOrDie();
  EXPECT_TRUE(reader.AtEnd());
  Value a = Finalize(s), b = Finalize(back);
  if (a.is_numeric()) {
    EXPECT_DOUBLE_EQ(a.ToDouble().ValueOrDie(), b.ToDouble().ValueOrDie());
  } else {
    EXPECT_TRUE(a.IsSameGroup(b));
  }
  // And decoded state must still merge correctly.
  ASSERT_TRUE(back.Merge(s).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, SerializationRoundTrip,
    ::testing::Values(std::make_tuple(AggKind::kCount, false),
                      std::make_tuple(AggKind::kCount, true),
                      std::make_tuple(AggKind::kSum, false),
                      std::make_tuple(AggKind::kAvg, false),
                      std::make_tuple(AggKind::kMin, false),
                      std::make_tuple(AggKind::kMax, false),
                      std::make_tuple(AggKind::kMedian, false)));

// --- GroupedAggregation ------------------------------------------------------

TEST(GroupedAggregationTest, AccumulateAndGroupCount) {
  std::vector<AggSpec> specs = {Spec(AggKind::kSum, false, 1)};
  GroupedAggregation agg(specs);
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 4; ++i) {
      Tuple t({Value::Int64(g), Value::Int64(i)});
      ASSERT_TRUE(agg.AccumulateTuple(t, 1).ok());
    }
  }
  EXPECT_EQ(agg.num_groups(), 3u);
  for (const auto& [key, states] : agg.groups()) {
    EXPECT_EQ(states[0].Finalize().ValueOrDie().AsInt64(), 0 + 1 + 2 + 3);
  }
}

TEST(GroupedAggregationTest, EncodeDecodeMergeAll) {
  std::vector<AggSpec> specs = {Spec(AggKind::kCount, false, -1),
                                Spec(AggKind::kAvg, false, 1)};
  GroupedAggregation a(specs), b(specs);
  for (int i = 0; i < 10; ++i) {
    Tuple t({Value::Int64(i % 2), Value::Int64(i)});
    ASSERT_TRUE((i < 5 ? a : b).AccumulateTuple(t, 1).ok());
  }
  Bytes buf;
  b.EncodeTo(&buf);
  GroupedAggregation decoded =
      GroupedAggregation::Decode(specs, buf).ValueOrDie();
  ASSERT_TRUE(a.MergeAll(decoded).ok());
  EXPECT_EQ(a.num_groups(), 2u);
  int64_t total = 0;
  for (const auto& [key, states] : a.groups()) {
    total += states[0].Finalize().ValueOrDie().AsInt64();
  }
  EXPECT_EQ(total, 10);
}

TEST(GroupedAggregationTest, DecodeRejectsGarbage) {
  std::vector<AggSpec> specs = {Spec(AggKind::kCount, false, -1)};
  EXPECT_FALSE(GroupedAggregation::Decode(specs, Bytes{1, 2, 3}).ok());
}

TEST(GroupedAggregationTest, MemoryFootprintGrowsWithGroups) {
  std::vector<AggSpec> specs = {Spec(AggKind::kCount, false, -1)};
  GroupedAggregation agg(specs);
  size_t before = agg.MemoryFootprint();
  for (int g = 0; g < 100; ++g) {
    ASSERT_TRUE(
        agg.AccumulateTuple(Tuple({Value::Int64(g)}), 1).ok());
  }
  EXPECT_GT(agg.MemoryFootprint(), before + 100 * 32);
}

TEST(GroupedAggregationTest, ShortTupleRejected) {
  std::vector<AggSpec> specs = {Spec(AggKind::kSum, false, 1)};
  GroupedAggregation agg(specs);
  EXPECT_FALSE(agg.AccumulateTuple(Tuple(), 1).ok());
}

// ---------------------------------------------------------------------------
// Hostile-input hardening regressions (pinned by fuzz/fuzz_storage.cc)

TEST(GroupedAggregationTest, RowCountLargerThanBufferRejected) {
  // Header claims 2^32-1 rows with no row bytes behind it; the decoder must
  // fail on the count instead of looping until underflow.
  std::vector<AggSpec> specs = {Spec(AggKind::kCount, false, -1)};
  Bytes hostile = {0xff, 0xff, 0xff, 0xff};
  auto result = GroupedAggregation::Decode(specs, hostile);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());

  // One encoded row cannot satisfy a claimed count of 1000 either.
  GroupedAggregation agg(specs);
  ASSERT_TRUE(agg.AccumulateTuple(Tuple({Value::Int64(1)}), 1).ok());
  Bytes buf;
  agg.EncodeTo(&buf);
  buf[0] = 0xe8;  // 1000 little-endian
  buf[1] = 0x03;
  EXPECT_FALSE(GroupedAggregation::Decode(specs, buf).ok());
}

TEST(AggStateTest, ValueSetCountLargerThanBufferRejected) {
  // MEDIAN serializes its value multiset; a hostile count there must be
  // checked against the remaining bytes.
  AggSpec spec = Spec(AggKind::kMedian);
  AggState s(spec);
  ASSERT_TRUE(s.Accumulate(Value::Int64(5)).ok());
  Bytes buf;
  s.EncodeTo(&buf);
  // An empty state encodes all the fixed fields followed by the count, so
  // the count field sits at (empty size - 4). Claim 2^31-ish entries.
  AggState empty(spec);
  Bytes empty_buf;
  empty.EncodeTo(&empty_buf);
  const size_t count_pos = empty_buf.size() - 4;
  buf[count_pos] = 0xff;
  buf[count_pos + 1] = 0xff;
  buf[count_pos + 2] = 0xff;
  buf[count_pos + 3] = 0x7f;
  ByteReader reader(buf);
  auto result = AggState::DecodeFrom(spec, &reader);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(AggStateTest, NonPositiveMultiplicityRejected) {
  // A compromised SSI handing back a value-set entry with multiplicity 0 or
  // -1 would corrupt COUNT(DISTINCT) and MEDIAN's rank walk; the decoder
  // rejects it outright.
  AggSpec spec = Spec(AggKind::kMedian);
  AggState s(spec);
  ASSERT_TRUE(s.Accumulate(Value::Int64(5)).ok());
  Bytes buf;
  s.EncodeTo(&buf);
  // The entry's i64 multiplicity is the trailing 8 bytes.
  for (uint8_t zero_then_neg : {0, 1}) {
    Bytes tampered = buf;
    for (size_t i = tampered.size() - 8; i < tampered.size(); ++i) {
      tampered[i] = zero_then_neg ? 0xff : 0x00;  // -1 or 0
    }
    ByteReader reader(tampered);
    auto result = AggState::DecodeFrom(spec, &reader);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsCorruption());
  }
}

TEST(AggStateTest, MedianMultiplicityTotalOverflowRejected) {
  // Two entries with multiplicity INT64_MAX decode fine individually but
  // their rank-walk total overflows int64; Finalize must reject the state
  // instead of summing with UB (found by fuzz_storage under UBSan).
  AggSpec spec = Spec(AggKind::kMedian);
  AggState s(spec);
  ASSERT_TRUE(s.Accumulate(Value::Int64(5)).ok());
  ASSERT_TRUE(s.Accumulate(Value::Int64(6)).ok());
  Bytes buf;
  s.EncodeTo(&buf);
  // Entries are value(tag 1 + i64 8) + mult(i64 8) = 17 bytes; the two mult
  // fields are the trailing 8 bytes of each entry.
  const Bytes max_i64 = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  for (size_t entry_end : {buf.size(), buf.size() - 17}) {
    for (size_t i = 0; i < 8; ++i) buf[entry_end - 8 + i] = max_i64[i];
  }
  ByteReader reader(buf);
  auto decoded = AggState::DecodeFrom(spec, &reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto finalized = decoded->Finalize();
  ASSERT_FALSE(finalized.ok());
  EXPECT_TRUE(finalized.status().IsCorruption());
}

TEST(AggStateTest, NegativeRowCountRejected) {
  // count_ is the leading i64 of the encoding; honest states never go
  // negative.
  AggSpec spec = Spec(AggKind::kCount);
  AggState s(spec);
  ASSERT_TRUE(s.Accumulate(Value::Int64(5)).ok());
  Bytes buf;
  s.EncodeTo(&buf);
  for (size_t i = 0; i < 8; ++i) buf[i] = 0xff;  // count_ = -1
  ByteReader reader(buf);
  auto result = AggState::DecodeFrom(spec, &reader);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(AggStateTest, MergeOverflowsRejectedNotUb) {
  // Merging two forged states whose row counts (or shared-value
  // multiplicities) sum past INT64_MAX must fail cleanly — signed overflow
  // is UB. Reachable from GroupedAggregation::Decode via duplicate-key rows.
  AggSpec count_spec = Spec(AggKind::kCount);
  AggState a(count_spec);
  ASSERT_TRUE(a.Accumulate(Value::Int64(1)).ok());
  Bytes buf;
  a.EncodeTo(&buf);
  // Patch count_ (leading i64) to INT64_MAX.
  const Bytes max_i64 = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  for (size_t i = 0; i < 8; ++i) buf[i] = max_i64[i];
  ByteReader r1(buf), r2(buf);
  auto x = AggState::DecodeFrom(count_spec, &r1);
  auto y = AggState::DecodeFrom(count_spec, &r2);
  ASSERT_TRUE(x.ok() && y.ok());
  Status merged = x->Merge(*y);
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.IsCorruption());

  // Same for the value-set multiplicities of a MEDIAN state.
  AggSpec med_spec = Spec(AggKind::kMedian);
  AggState m(med_spec);
  ASSERT_TRUE(m.Accumulate(Value::Int64(5)).ok());
  Bytes mbuf;
  m.EncodeTo(&mbuf);
  for (size_t i = 0; i < 8; ++i) mbuf[mbuf.size() - 8 + i] = max_i64[i];
  ByteReader r3(mbuf), r4(mbuf);
  auto p = AggState::DecodeFrom(med_spec, &r3);
  auto q = AggState::DecodeFrom(med_spec, &r4);
  ASSERT_TRUE(p.ok() && q.ok());
  Status med_merged = p->Merge(*q);
  ASSERT_FALSE(med_merged.ok());
  EXPECT_TRUE(med_merged.IsCorruption());
}

}  // namespace
}  // namespace tcells::sql
