// Tests for QuerySession: concurrent queries through the querybox hub.
#include <gtest/gtest.h>

#include "protocol/reference.h"
#include "protocol/session.h"
#include "tds/access_control.h"
#include "workload/generic.h"
#include "workload/health.h"

namespace tcells::protocol {
namespace {

class SessionWorld {
 public:
  explicit SessionWorld(size_t n = 60) {
    keys = crypto::KeyStore::CreateForTest(77);
    authority = std::make_shared<tds::Authority>(Bytes(16, 0x21));
    workload::GenericOptions gopts;
    gopts.num_tds = n;
    gopts.num_groups = 4;
    fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                        tds::AccessPolicy::AllowAll())
                .ValueOrDie();
    querier = std::make_unique<Querier>("s", authority->Issue("s"), keys);
  }

  std::shared_ptr<const crypto::KeyStore> keys;
  std::shared_ptr<tds::Authority> authority;
  std::unique_ptr<Fleet> fleet;
  std::unique_ptr<Querier> querier;
  sim::DeviceModel device;
};

TEST(FleetTest, SampleAvailableOnEmptyFleetIsEmpty) {
  // Regression: `want` used to be clamped up to 1 even for an empty fleet,
  // so servers_[indices[0]] read past the end of an empty vector.
  Fleet fleet;
  Rng rng(7);
  EXPECT_TRUE(fleet.SampleAvailable(0.5, &rng).empty());
  EXPECT_TRUE(fleet.SampleAvailable(1.0, &rng).empty());
}

TEST(FleetTest, SampleAvailableNonPositiveFractionClampsToOne) {
  SessionWorld w(4);
  Rng rng(7);
  // The documented "at least one" clamp holds on a non-empty fleet, and a
  // negative fraction must not reach the size_t cast (UB) — both degrade to
  // the guaranteed single TDS.
  EXPECT_EQ(w.fleet->SampleAvailable(0.0, &rng).size(), 1u);
  EXPECT_EQ(w.fleet->SampleAvailable(-0.25, &rng).size(), 1u);
  EXPECT_EQ(w.fleet->SampleAvailable(1e-9, &rng).size(), 1u);
}

TEST(SessionTest, TwoConcurrentQueriesBothMatchOracle) {
  SessionWorld w;
  RunOptions opts;
  opts.compute_availability = 0.3;
  QuerySession session(w.fleet.get(), w.device, opts);

  SAggProtocol s_agg;
  BasicSfwProtocol basic;
  const char* agg_sql = "SELECT grp, COUNT(*), AVG(val) FROM T GROUP BY grp";
  const char* sfw_sql = "SELECT grp, cat FROM T WHERE cat < 4";
  ASSERT_TRUE(session.Submit(1, w.querier.get(), &s_agg, agg_sql).ok());
  ASSERT_TRUE(session.Submit(2, w.querier.get(), &basic, sfw_sql).ok());
  EXPECT_EQ(session.num_pending(), 2u);

  auto outcomes = session.RunAll().ValueOrDie();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes.at(1).result.SameRows(
      ExecuteReference(*w.fleet, agg_sql).ValueOrDie()));
  EXPECT_TRUE(outcomes.at(2).result.SameRows(
      ExecuteReference(*w.fleet, sfw_sql).ValueOrDie()));
  // Both queries collected from the full fleet.
  EXPECT_EQ(outcomes.at(1).adversary.collection_items, w.fleet->size());
  EXPECT_EQ(outcomes.at(2).adversary.collection_items, w.fleet->size());
  EXPECT_EQ(session.num_pending(), 0u);
}

TEST(SessionTest, MixedProtocolsShareTheFleet) {
  SessionWorld w;
  RunOptions opts;
  opts.compute_availability = 0.3;
  QuerySession session(w.fleet.get(), w.device, opts);

  auto domain = std::make_shared<std::vector<storage::Tuple>>();
  for (size_t g = 0; g < 4; ++g) {
    domain->push_back(
        storage::Tuple({storage::Value::String(workload::GroupName(g))}));
  }
  SAggProtocol s_agg;
  NoiseProtocol noise(true, domain);
  const char* q1 = "SELECT grp, SUM(val) FROM T GROUP BY grp";
  const char* q2 = "SELECT grp, MAX(cat) FROM T GROUP BY grp";
  ASSERT_TRUE(session.Submit(10, w.querier.get(), &s_agg, q1).ok());
  ASSERT_TRUE(session.Submit(11, w.querier.get(), &noise, q2).ok());
  auto outcomes = session.RunAll().ValueOrDie();
  EXPECT_TRUE(outcomes.at(10).result.SameRows(
      ExecuteReference(*w.fleet, q1).ValueOrDie()));
  EXPECT_TRUE(outcomes.at(11).result.SameRows(
      ExecuteReference(*w.fleet, q2).ValueOrDie()));
}

TEST(SessionTest, PersonalQueryReachesOnlyItsTds) {
  SessionWorld w;
  QuerySession session(w.fleet.get(), w.device, {});
  BasicSfwProtocol basic;
  // Personal query to TDS 5: "get my own rows".
  ASSERT_TRUE(session
                  .SubmitPersonal(3, /*tds_id=*/5, w.querier.get(), &basic,
                                  "SELECT grp, val FROM T")
                  .ok());
  auto outcomes = session.RunAll().ValueOrDie();
  const auto& outcome = outcomes.at(3);
  // Exactly one TDS answered (its own data only).
  EXPECT_EQ(outcome.metrics.collection_participants, 1u);
  auto local = sql::AnalyzeSql("SELECT grp, val FROM T",
                               w.fleet->at(5)->db().catalog())
                   .ValueOrDie();
  auto expected = sql::ExecuteLocal(w.fleet->at(5)->db(), local).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected));
}

TEST(SessionTest, SizeBoundPerQuery) {
  SessionWorld w;
  QuerySession session(w.fleet.get(), w.device, {});
  BasicSfwProtocol basic;
  SAggProtocol s_agg;
  ASSERT_TRUE(session.Submit(1, w.querier.get(), &basic,
                             "SELECT grp FROM T SIZE 7").ok());
  ASSERT_TRUE(session.Submit(2, w.querier.get(), &s_agg,
                             "SELECT grp, COUNT(*) FROM T GROUP BY grp").ok());
  auto outcomes = session.RunAll().ValueOrDie();
  EXPECT_EQ(outcomes.at(1).adversary.collection_items, 7u);
  EXPECT_EQ(outcomes.at(2).adversary.collection_items, w.fleet->size());
}

TEST(SessionTest, TickedCollectionWindow) {
  SessionWorld w;
  RunOptions opts;
  opts.connect_prob_per_tick = 0.3;
  opts.seed = 5;
  QuerySession session(w.fleet.get(), w.device, opts);
  SAggProtocol s_agg;
  ASSERT_TRUE(session.Submit(1, w.querier.get(), &s_agg,
                             "SELECT grp, COUNT(*) FROM T GROUP BY grp").ok());
  auto outcomes = session.RunAll(/*max_ticks=*/3).ValueOrDie();
  const auto& m = outcomes.at(1).metrics;
  EXPECT_LE(m.collection_ticks, 3u);
  EXPECT_LT(m.collection_participants, w.fleet->size());
  EXPECT_GT(m.collection_participants, 0u);
}

TEST(SessionTest, DuplicateIdRejected) {
  SessionWorld w;
  QuerySession session(w.fleet.get(), w.device, {});
  SAggProtocol s_agg;
  const char* sql = "SELECT grp, COUNT(*) FROM T GROUP BY grp";
  ASSERT_TRUE(session.Submit(1, w.querier.get(), &s_agg, sql).ok());
  EXPECT_FALSE(session.Submit(1, w.querier.get(), &s_agg, sql).ok());
}

TEST(SessionTest, ProtocolShapeMismatchRejectedAtSubmit) {
  SessionWorld w;
  QuerySession session(w.fleet.get(), w.device, {});
  BasicSfwProtocol basic;
  EXPECT_FALSE(session.Submit(1, w.querier.get(), &basic,
                              "SELECT grp, COUNT(*) FROM T GROUP BY grp")
                   .ok());
}

// Malformed RunOptions fail RunOptions::Validate and are rejected at Submit
// time, before any post reaches the hub.
TEST(SessionTest, InvalidOptionsRejectedAtSubmit) {
  SessionWorld w;
  const char* sql = "SELECT grp, COUNT(*) FROM T GROUP BY grp";
  SAggProtocol s_agg;

  auto rejects = [&](RunOptions opts) {
    EXPECT_FALSE(opts.Validate().ok());
    QuerySession session(w.fleet.get(), w.device, opts);
    Status s = session.Submit(1, w.querier.get(), &s_agg, sql);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(session.num_pending(), 0u);
  };

  RunOptions opts;
  opts.alpha = 1.0;  // merge fan-in must exceed 1 or S_Agg never converges
  rejects(opts);
  opts = RunOptions();
  opts.alpha = 0.5;
  rejects(opts);
  opts = RunOptions();
  opts.dropout_rate = 1.5;
  rejects(opts);
  opts = RunOptions();
  opts.dropout_rate = -0.1;
  rejects(opts);
  opts = RunOptions();
  opts.dropout_rate = 0.2;  // losses possible but no redispatch budget
  opts.max_dropout_retries = 0;
  rejects(opts);
  opts = RunOptions();
  opts.compute_availability = 0.0;
  rejects(opts);
  opts = RunOptions();
  opts.compute_availability = 1.5;
  rejects(opts);
  opts = RunOptions();
  opts.connect_prob_per_tick = 0.0;
  rejects(opts);
  opts = RunOptions();
  opts.dropout_timeout_seconds = -1.0;
  rejects(opts);
  opts = RunOptions();
  opts.nf = -1;
  rejects(opts);

  // Defaults are valid, and a valid config still submits fine.
  EXPECT_TRUE(RunOptions().Validate().ok());
  QuerySession session(w.fleet.get(), w.device, {});
  EXPECT_TRUE(session.Submit(1, w.querier.get(), &s_agg, sql).ok());
}

}  // namespace
}  // namespace tcells::protocol
