// Tests for expression evaluation, using a one-table catalog and directly
// bound expressions.
#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "sql/eval.h"

namespace tcells::sql {
namespace {

using storage::Tuple;
using storage::Value;
using storage::ValueType;

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() {
    EXPECT_TRUE(catalog_
                    .AddTable("t", storage::Schema({
                                       {"i", ValueType::kInt64},
                                       {"d", ValueType::kDouble},
                                       {"s", ValueType::kString},
                                       {"b", ValueType::kBool},
                                   }))
                    .ok());
  }

  /// Evaluates `expr_sql` as a WHERE expression over the given row.
  Result<Value> EvalExpr(const std::string& expr_sql, const Tuple& row) {
    auto analyzed = AnalyzeSql("SELECT i FROM t WHERE " + expr_sql, catalog_);
    if (!analyzed.ok()) return analyzed.status();
    EvalContext ctx{&row, 0};
    return Eval(*analyzed->where, ctx);
  }

  bool Pred(const std::string& expr_sql, const Tuple& row) {
    auto analyzed =
        AnalyzeSql("SELECT i FROM t WHERE " + expr_sql, catalog_).ValueOrDie();
    EvalContext ctx{&row, 0};
    return EvalPredicate(*analyzed.where, ctx).ValueOrDie();
  }

  storage::Catalog catalog_;
  Tuple row_{{Value::Int64(10), Value::Double(2.5), Value::String("abc"),
              Value::Bool(true)}};
  Tuple null_row_{{Value::Null(), Value::Null(), Value::Null(), Value::Null()}};
};

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(Pred("i = 10", row_));
  EXPECT_FALSE(Pred("i <> 10", row_));
  EXPECT_TRUE(Pred("i < 11", row_));
  EXPECT_TRUE(Pred("i <= 10", row_));
  EXPECT_TRUE(Pred("i > 9", row_));
  EXPECT_TRUE(Pred("i >= 10", row_));
  EXPECT_TRUE(Pred("s = 'abc'", row_));
  EXPECT_TRUE(Pred("s < 'abd'", row_));
}

TEST_F(EvalTest, CrossTypeNumericComparison) {
  EXPECT_TRUE(Pred("i > d", row_));       // 10 > 2.5
  EXPECT_TRUE(Pred("d = 2.5", row_));
  EXPECT_TRUE(Pred("i = 10.0", row_));
}

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(EvalExpr("i + 5", row_).ValueOrDie().AsInt64(), 15);
  EXPECT_EQ(EvalExpr("i - 15", row_).ValueOrDie().AsInt64(), -5);
  EXPECT_EQ(EvalExpr("i * 3", row_).ValueOrDie().AsInt64(), 30);
  EXPECT_DOUBLE_EQ(EvalExpr("i / 4", row_).ValueOrDie().AsDouble(), 2.5);
  EXPECT_EQ(EvalExpr("i % 3", row_).ValueOrDie().AsInt64(), 1);
  EXPECT_DOUBLE_EQ(EvalExpr("d * 2", row_).ValueOrDie().AsDouble(), 5.0);
  EXPECT_EQ(EvalExpr("-i", row_).ValueOrDie().AsInt64(), -10);
}

TEST_F(EvalTest, DivisionAndModByZeroYieldNull) {
  EXPECT_TRUE(EvalExpr("i / 0", row_).ValueOrDie().is_null());
  EXPECT_TRUE(EvalExpr("i % 0", row_).ValueOrDie().is_null());
}

TEST_F(EvalTest, BooleanLogic) {
  EXPECT_TRUE(Pred("i = 10 AND d = 2.5", row_));
  EXPECT_FALSE(Pred("i = 10 AND d = 3.0", row_));
  EXPECT_TRUE(Pred("i = 0 OR d = 2.5", row_));
  EXPECT_TRUE(Pred("NOT i = 0", row_));
  EXPECT_TRUE(Pred("b", row_));
  EXPECT_FALSE(Pred("NOT b", row_));
}

TEST_F(EvalTest, NullPropagation) {
  EXPECT_TRUE(EvalExpr("i + 1", null_row_).ValueOrDie().is_null());
  EXPECT_TRUE(EvalExpr("i = 10", null_row_).ValueOrDie().is_null());
  // Predicates over NULL are false.
  EXPECT_FALSE(Pred("i = 10", null_row_));
  EXPECT_FALSE(Pred("NOT i = 10", null_row_));
}

TEST_F(EvalTest, IsNull) {
  EXPECT_TRUE(Pred("i IS NULL", null_row_));
  EXPECT_FALSE(Pred("i IS NULL", row_));
  EXPECT_TRUE(Pred("i IS NOT NULL", row_));
}

TEST_F(EvalTest, InList) {
  EXPECT_TRUE(Pred("i IN (1, 10, 100)", row_));
  EXPECT_FALSE(Pred("i IN (1, 2)", row_));
  EXPECT_TRUE(Pred("s IN ('x', 'abc')", row_));
  EXPECT_TRUE(Pred("i NOT IN (1, 2)", row_));
  EXPECT_FALSE(Pred("i IN (1, 2)", null_row_));
}

TEST_F(EvalTest, Between) {
  EXPECT_TRUE(Pred("i BETWEEN 5 AND 15", row_));
  EXPECT_TRUE(Pred("i BETWEEN 10 AND 10", row_));
  EXPECT_FALSE(Pred("i BETWEEN 11 AND 15", row_));
  EXPECT_TRUE(Pred("i NOT BETWEEN 11 AND 15", row_));
}


TEST_F(EvalTest, Like) {
  EXPECT_TRUE(Pred("s LIKE 'abc'", row_));
  EXPECT_TRUE(Pred("s LIKE 'a%'", row_));
  EXPECT_TRUE(Pred("s LIKE '%c'", row_));
  EXPECT_TRUE(Pred("s LIKE '%b%'", row_));
  EXPECT_TRUE(Pred("s LIKE 'a_c'", row_));
  EXPECT_TRUE(Pred("s LIKE '___'", row_));
  EXPECT_TRUE(Pred("s LIKE '%'", row_));
  EXPECT_FALSE(Pred("s LIKE '____'", row_));
  EXPECT_FALSE(Pred("s LIKE 'b%'", row_));
  EXPECT_FALSE(Pred("s LIKE ''", row_));
  EXPECT_TRUE(Pred("s NOT LIKE 'x%'", row_));
  EXPECT_FALSE(Pred("s LIKE 'abc'", null_row_));  // NULL -> false predicate
}

TEST_F(EvalTest, LikeBacktracking) {
  Tuple t({Value::Int64(0), Value::Double(0),
           Value::String("aaaaaaaaaaaaaaaaaaab"), Value::Bool(true)});
  EXPECT_TRUE(Pred("s LIKE '%a%b'", t));
  EXPECT_FALSE(Pred("s LIKE '%a%c'", t));
  EXPECT_TRUE(Pred("s LIKE '%%%b'", t));
}

TEST_F(EvalTest, LikeTypeErrors) {
  EXPECT_FALSE(EvalExpr("i LIKE '1%'", row_).ok());
  EXPECT_FALSE(EvalExpr("s LIKE 5", row_).ok());
}

TEST_F(EvalTest, TypeErrors) {
  EXPECT_FALSE(EvalExpr("s + 1", row_).ok());
  EXPECT_FALSE(EvalExpr("s < 10", row_).ok());
  EXPECT_FALSE(EvalExpr("NOT i", row_).ok());
  EXPECT_FALSE(EvalExpr("d % 2", row_).ok());
}

TEST_F(EvalTest, UnboundColumnIsError) {
  Expr e;
  e.kind = Expr::Kind::kColumnRef;
  e.column = "i";
  EvalContext ctx{&row_, 0};
  EXPECT_TRUE(Eval(e, ctx).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace tcells::sql
