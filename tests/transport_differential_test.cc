// Differential loopback-vs-TCP harness for the transport layer.
//
// The transport contract mirrors the parallel engine's: which backend
// carries the SSI exchanges must be invisible to everything a run produces.
// Every protocol, executed once over the in-process loopback and once over a
// real TCP socket pair on identical seeds, must yield bit-identical
// RunOutcomes — result rows, cost-accountant tallies, simulated phase times
// and the SSI's adversary view. Wall-clock telemetry is the only thing
// allowed to differ. Any hidden dependence on call timing, frame
// chunking or codec lossiness shows up as a diff here.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/ssi_client.h"
#include "net/ssi_node.h"
#include "net/tcp.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells::protocol {
namespace {

using storage::Tuple;
using storage::Value;

constexpr size_t kNumTds = 24;
constexpr size_t kNumGroups = 4;

const char* QueryFor(ProtocolKind kind) {
  return kind == ProtocolKind::kBasicSfw
             ? "SELECT grp, val, cat FROM T WHERE cat < 6"
             : "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), "
               "MAX(val) FROM T GROUP BY grp";
}

/// Builds a fresh world and runs one query over the given transport. Worlds
/// are rebuilt per run so no state carries across the two arms; the TCP arm
/// additionally spins up a real server + socket per run.
RunOutcome RunOver(ProtocolKind kind, net::TransportKind transport_kind,
                   uint64_t seed, size_t batch_max_calls = 1,
                   size_t num_shards = 1) {
  workload::GenericOptions gopts;
  gopts.num_tds = kNumTds;
  gopts.num_groups = kNumGroups;
  gopts.group_skew = 0.8;
  gopts.rows_per_tds = 2;
  gopts.seed = 3000 + seed;

  auto keys = crypto::KeyStore::CreateForTest(2026);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x44));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  Querier querier("diff", authority->Issue("diff"), keys);

  auto domain = std::make_shared<std::vector<Tuple>>();
  std::map<Tuple, uint64_t> freq;
  for (size_t g = 0; g < kNumGroups; ++g) {
    domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
  }
  const auto& catalog = fleet->at(0)->db().catalog();
  auto count_q =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp", catalog)
          .ValueOrDie();
  for (size_t i = 0; i < fleet->size(); ++i) {
    auto rows =
        sql::CollectionTuples(fleet->at(i)->db(), count_q).ValueOrDie();
    for (const auto& r : rows) freq[Tuple({r.at(0)})] += 1;
  }

  std::unique_ptr<Protocol> protocol;
  switch (kind) {
    case ProtocolKind::kBasicSfw:
      protocol = std::make_unique<BasicSfwProtocol>();
      break;
    case ProtocolKind::kSAgg:
      protocol = std::make_unique<SAggProtocol>();
      break;
    case ProtocolKind::kRnfNoise:
      protocol = std::make_unique<NoiseProtocol>(false, domain);
      break;
    case ProtocolKind::kCNoise:
      protocol = std::make_unique<NoiseProtocol>(true, domain);
      break;
    case ProtocolKind::kEdHist:
      protocol = EdHistProtocol::FromDistribution(freq, 2);
      break;
  }

  RunOptions opts;
  opts.compute_availability = 0.25;
  opts.expected_groups = kNumGroups;
  opts.seed = seed;
  opts.num_threads = 2;

  // The engine owns whichever stack the arm asks for: an in-process loopback
  // or a real TCP server + socket per shard.
  Engine::Config cfg;
  cfg.options = opts;
  cfg.transport = transport_kind;
  cfg.transport_batch_max_calls = batch_max_calls;
  cfg.num_shards = num_shards;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  return engine->Run(*protocol, querier, 1, QueryFor(kind)).ValueOrDie();
}

void ExpectPhaseTallyEq(const sim::PhaseTally& a, const sim::PhaseTally& b,
                        const char* phase) {
  EXPECT_EQ(a.bytes_uploaded, b.bytes_uploaded) << phase;
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded) << phase;
  EXPECT_EQ(a.tuples_processed, b.tuples_processed) << phase;
  EXPECT_EQ(a.tds_participations, b.tds_participations) << phase;
  EXPECT_EQ(a.partitions, b.partitions) << phase;
  EXPECT_EQ(a.iterations, b.iterations) << phase;
  EXPECT_EQ(a.dropouts, b.dropouts) << phase;
}

/// Bit-identical comparison of everything a run produces except wall-clock
/// telemetry. Doubles are exact: both arms perform the same arithmetic in
/// the same fold order, so even floating point must not drift.
void ExpectIdentical(const RunOutcome& loopback, const RunOutcome& tcp) {
  EXPECT_EQ(loopback.result.ToString(), tcp.result.ToString());
  ASSERT_EQ(loopback.result.rows.size(), tcp.result.rows.size());

  const auto& ma = loopback.metrics;
  const auto& mb = tcp.metrics;
  for (auto phase : {sim::Phase::kCollection, sim::Phase::kAggregation,
                     sim::Phase::kFiltering}) {
    ExpectPhaseTallyEq(ma.accountant.phase(phase), mb.accountant.phase(phase),
                       sim::PhaseToString(phase));
  }
  EXPECT_EQ(ma.accountant.TotalBytes(), mb.accountant.TotalBytes());
  EXPECT_EQ(ma.accountant.DistinctTds(), mb.accountant.DistinctTds());
  const auto& per_a = ma.accountant.per_tds();
  const auto& per_b = mb.accountant.per_tds();
  ASSERT_EQ(per_a.size(), per_b.size());
  for (auto it_a = per_a.begin(), it_b = per_b.begin(); it_a != per_a.end();
       ++it_a, ++it_b) {
    EXPECT_EQ(it_a->first, it_b->first);
    EXPECT_EQ(it_a->second.bytes_in, it_b->second.bytes_in);
    EXPECT_EQ(it_a->second.bytes_out, it_b->second.bytes_out);
    EXPECT_EQ(it_a->second.tuples, it_b->second.tuples);
    EXPECT_EQ(it_a->second.participations, it_b->second.participations);
  }

  EXPECT_EQ(ma.times.collection_seconds, mb.times.collection_seconds);
  EXPECT_EQ(ma.times.aggregation_seconds, mb.times.aggregation_seconds);
  EXPECT_EQ(ma.times.filtering_seconds, mb.times.filtering_seconds);
  EXPECT_EQ(ma.aggregation_rounds, mb.aggregation_rounds);
  EXPECT_EQ(ma.available_compute_tds, mb.available_compute_tds);
  EXPECT_EQ(ma.collection_ticks, mb.collection_ticks);
  EXPECT_EQ(ma.collection_participants, mb.collection_participants);
  // Neither arm may lose a partition on a healthy link.
  EXPECT_EQ(ma.partitions_lost, 0u);
  EXPECT_EQ(mb.partitions_lost, 0u);

  // The SSI's adversary view: the exact ciphertext population, in order.
  const auto& va = loopback.adversary;
  const auto& vb = tcp.adversary;
  EXPECT_EQ(va.collection_tag_histogram, vb.collection_tag_histogram);
  EXPECT_EQ(va.aggregation_tag_histogram, vb.aggregation_tag_histogram);
  EXPECT_EQ(va.collection_blob_sizes, vb.collection_blob_sizes);
  EXPECT_EQ(va.collection_items, vb.collection_items);
  EXPECT_EQ(va.aggregation_items, vb.aggregation_items);
  EXPECT_EQ(va.filtering_items, vb.filtering_items);
}

// ---------------------------------------------------------------------------
// The differential sweep: 5 protocols x 3 seeds, loopback vs TCP.

class TransportDifferentialTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(TransportDifferentialTest, LoopbackAndTcpRunsAreBitIdentical) {
  ProtocolKind kind = GetParam();
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunOutcome loopback = RunOver(kind, net::TransportKind::kLoopback, seed);
    RunOutcome tcp = RunOver(kind, net::TransportKind::kTcp, seed);
    SCOPED_TRACE(std::string(ProtocolKindToString(kind)) + " seed " +
                 std::to_string(seed));
    ExpectIdentical(loopback, tcp);
  }
}

TEST_P(TransportDifferentialTest, TcpResultStillMatchesPlaintextOracle) {
  // Determinism alone could hide a bug present in both arms; anchor the TCP
  // run against the cleartext reference as well.
  ProtocolKind kind = GetParam();
  workload::GenericOptions gopts;
  gopts.num_tds = kNumTds;
  gopts.num_groups = kNumGroups;
  gopts.group_skew = 0.8;
  gopts.rows_per_tds = 2;
  gopts.seed = 3011;
  auto keys = crypto::KeyStore::CreateForTest(2026);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x44));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  auto expected = ExecuteReference(*fleet, QueryFor(kind)).ValueOrDie();
  RunOutcome tcp = RunOver(kind, net::TransportKind::kTcp, /*seed=*/11);
  EXPECT_TRUE(tcp.result.SameRows(expected))
      << "got:\n" << tcp.result.ToString()
      << "want:\n" << expected.ToString();
}

TEST_P(TransportDifferentialTest, BatchedRunsAreBitIdenticalToSerial) {
  // The batched wire path (multi-call frames, pipelined flushes, detached
  // acks) may only change how many frames the calls take — never anything a
  // run produces. One serial-loopback baseline per seed, compared against
  // batching over both backends and over the sharded router.
  ProtocolKind kind = GetParam();
  for (uint64_t seed : {11u, 22u}) {
    SCOPED_TRACE(std::string(ProtocolKindToString(kind)) + " seed " +
                 std::to_string(seed));
    RunOutcome serial = RunOver(kind, net::TransportKind::kLoopback, seed);
    RunOutcome batched_loopback =
        RunOver(kind, net::TransportKind::kLoopback, seed,
                /*batch_max_calls=*/32);
    ExpectIdentical(serial, batched_loopback);
    RunOutcome batched_tcp = RunOver(kind, net::TransportKind::kTcp, seed,
                                     /*batch_max_calls=*/32);
    ExpectIdentical(serial, batched_tcp);
    // The sharded arms compare at equal shard count: the merged adversary
    // view is only order-comparable between runs with the same sharding.
    RunOutcome serial_sharded =
        RunOver(kind, net::TransportKind::kLoopback, seed,
                /*batch_max_calls=*/1, /*num_shards=*/4);
    RunOutcome batched_sharded =
        RunOver(kind, net::TransportKind::kLoopback, seed,
                /*batch_max_calls=*/32, /*num_shards=*/4);
    ExpectIdentical(serial_sharded, batched_sharded);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, TransportDifferentialTest,
    ::testing::Values(ProtocolKind::kBasicSfw, ProtocolKind::kSAgg,
                      ProtocolKind::kRnfNoise, ProtocolKind::kCNoise,
                      ProtocolKind::kEdHist),
    [](const auto& info) {
      return std::string(ProtocolKindToString(info.param));
    });

// ---------------------------------------------------------------------------
// Determinism must survive the dropout model over a real socket too: the
// injected-dropout schedule is drawn from per-partition rng streams, not
// from transport timing.

TEST(TransportDifferentialDropoutTest, ChurnIsTransportIndependent) {
  auto run = [](net::TransportKind transport_kind) {
    // Same world as ParallelDifferentialDropoutTest: 48 TDSs at 25%
    // availability with a 20% per-attempt dropout rate yields a non-empty
    // dropout schedule on seed 5.
    workload::GenericOptions gopts;
    gopts.num_tds = 48;
    gopts.num_groups = kNumGroups;
    gopts.group_skew = 0.8;
    gopts.rows_per_tds = 2;
    gopts.seed = 1005;
    auto keys = crypto::KeyStore::CreateForTest(2026);
    auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x44));
    auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    Querier querier("diff", authority->Issue("diff"), keys);
    SAggProtocol protocol;
    RunOptions opts;
    opts.compute_availability = 0.25;
    opts.expected_groups = kNumGroups;
    opts.seed = 5;
    opts.dropout_rate = 0.2;

    Engine::Config cfg;
    cfg.options = opts;
    cfg.transport = transport_kind;
    auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
    return engine->Run(protocol, querier, 1, QueryFor(ProtocolKind::kSAgg))
        .ValueOrDie();
  };
  RunOutcome loopback = run(net::TransportKind::kLoopback);
  RunOutcome tcp = run(net::TransportKind::kTcp);
  ExpectIdentical(loopback, tcp);
  EXPECT_GT(loopback.metrics.accountant.phase(sim::Phase::kAggregation)
                .dropouts,
            0u);
}

}  // namespace
}  // namespace tcells::protocol
