// Unit tests for the fleet engine's fan-out primitives: the fixed-size
// ThreadPool, the Status-based ParallelExecutor, and the Rng::Fork stream
// splitting that makes parallel runs bit-identical to serial ones.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "protocol/parallel_executor.h"

namespace tcells {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) {
    // Inline execution: same thread, strictly ascending indices.
    EXPECT_EQ(std::this_thread::get_id(), std::this_thread::get_id());
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  int runs = 0;
  pool.ParallelFor(3, [&](size_t) { ++runs; });
  EXPECT_EQ(runs, 3);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ResultIndependentOfTaskOrdering) {
  // Tasks write to disjoint slots: the gathered result must equal the serial
  // reference no matter how the scheduler interleaves them.
  auto f = [](size_t i) { return static_cast<int>(i * i % 97); };
  std::vector<int> serial(512);
  for (size_t i = 0; i < serial.size(); ++i) serial[i] = f(i);

  ThreadPool pool(8);
  for (int round = 0; round < 5; ++round) {
    std::vector<int> parallel(512);
    pool.ParallelFor(parallel.size(), [&](size_t i) { parallel[i] = f(i); });
    EXPECT_EQ(parallel, serial);
  }
}

TEST(ThreadPoolTest, ExceptionOfLowestIndexPropagates) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(100, [&](size_t i) {
      if (i == 17 || i == 63) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 17");
  }
  // All non-throwing tasks still ran: no short-circuiting, so side effects
  // match a serial sweep.
  EXPECT_EQ(completed.load(), 98);
}

TEST(ThreadPoolTest, ReusableAcrossManySubmissions) {
  ThreadPool pool(3);
  size_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(round % 7, [&](size_t i) { sum.fetch_add(i + 1); });
    total += sum.load();
  }
  size_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    size_t n = round % 7;
    expected += n * (n + 1) / 2;
  }
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, CallerParticipatesSoNestingCannotDeadlock) {
  // A task that itself fans out must complete even though all workers may be
  // busy: the inner caller drains its own indices.
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 16);
}

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_EQ(ThreadPool::ResolveThreads(5), 5u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
}

// ---------------------------------------------------------------------------
// ParallelExecutor

TEST(ParallelExecutorTest, RunsAllJobsAndReportsLowestIndexError) {
  protocol::ParallelExecutor executor(4);
  std::atomic<int> runs{0};
  Status status = executor.ForEachIndex(50, [&](size_t i) -> Status {
    runs.fetch_add(1);
    if (i == 31) return Status::InvalidArgument("late failure");
    if (i == 12) return Status::ResourceExhausted("early failure");
    return Status::OK();
  });
  EXPECT_EQ(runs.load(), 50);  // never short-circuits
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(status.message(), "early failure");
}

TEST(ParallelExecutorTest, SerialModeSpawnsNoThreads) {
  protocol::ParallelExecutor executor(1);
  EXPECT_FALSE(executor.parallel());
  std::set<std::thread::id> ids;
  EXPECT_TRUE(executor
                  .ForEachIndex(16,
                                [&](size_t) -> Status {
                                  ids.insert(std::this_thread::get_id());
                                  return Status::OK();
                                })
                  .ok());
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ParallelExecutorTest, EmptyRangeIsOk) {
  protocol::ParallelExecutor executor(2);
  EXPECT_TRUE(executor.ForEachIndex(0, [](size_t) -> Status {
                        return Status::Internal("never called");
                      }).ok());
}

// ---------------------------------------------------------------------------
// Rng::Fork — the determinism mechanism under the whole engine

TEST(RngForkTest, ForkIsDeterministicAndConsumesOneDraw) {
  Rng a(1234), b(1234);
  Rng child_a = a.Fork();
  Rng child_b = b.Fork();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(child_a.Next(), child_b.Next());
  // The parents stayed in lockstep too: Fork consumed exactly one draw.
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngForkTest, SiblingsAndParentDiverge) {
  Rng parent(42);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  // Not a statistical test — just that the streams are distinct.
  bool all_equal = true;
  for (int i = 0; i < 16; ++i) {
    if (c1.Next() != c2.Next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(RngForkTest, ForkedStreamsUnaffectedByInterleaving) {
  // The property RunRound relies on: once forked, a stream's bits do not
  // depend on when (or on which thread) they are drawn.
  Rng parent(7);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  std::vector<uint64_t> sequential;
  for (int i = 0; i < 8; ++i) sequential.push_back(c1.Next());
  for (int i = 0; i < 8; ++i) sequential.push_back(c2.Next());

  Rng parent2(7);
  Rng d1 = parent2.Fork();
  Rng d2 = parent2.Fork();
  std::vector<uint64_t> interleaved(16);
  for (int i = 0; i < 8; ++i) {
    interleaved[8 + i] = d2.Next();
    interleaved[i] = d1.Next();
  }
  EXPECT_EQ(sequential, interleaved);
}

}  // namespace
}  // namespace tcells
