// Tests for the library extensions beyond the paper's minimal protocol set:
// ORDER BY / LIMIT, VARIANCE / STDDEV, DURATION-bounded collection, the
// querybox hub, and the compromised-TDS leak instrumentation.
#include <gtest/gtest.h>

#include <cmath>

#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "ssi/querybox.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells {
namespace {

using sql::AnalyzeSql;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

// ---------------------------------------------------------------------------
// ORDER BY / LIMIT

class OrderByTest : public ::testing::Test {
 protected:
  OrderByTest() {
    EXPECT_TRUE(db_.CreateTable("t", storage::Schema({
                                         {"name", ValueType::kString},
                                         {"score", ValueType::kInt64},
                                     }))
                    .ok());
    auto* t = db_.GetTable("t").ValueOrDie();
    for (auto [name, score] : std::initializer_list<std::pair<const char*, int>>{
             {"carol", 30}, {"alice", 10}, {"bob", 20}, {"dave", 20}}) {
      EXPECT_TRUE(
          t->Insert(Tuple({Value::String(name), Value::Int64(score)})).ok());
    }
  }

  sql::QueryResult Run(const std::string& sql) {
    auto q = AnalyzeSql(sql, db_.catalog()).ValueOrDie();
    return ExecuteLocal(db_, q).ValueOrDie();
  }

  storage::Database db_;
};

TEST_F(OrderByTest, AscendingByName) {
  auto r = Run("SELECT name FROM t ORDER BY name");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0].at(0).AsString(), "alice");
  EXPECT_EQ(r.rows[3].at(0).AsString(), "dave");
}

TEST_F(OrderByTest, DescendingAndStability) {
  auto r = Run("SELECT name, score FROM t ORDER BY score DESC");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0].at(1).AsInt64(), 30);
  // bob before dave: equal keys keep input order (stable sort).
  EXPECT_EQ(r.rows[1].at(0).AsString(), "bob");
  EXPECT_EQ(r.rows[2].at(0).AsString(), "dave");
}

TEST_F(OrderByTest, MultiKeyAndPosition) {
  auto r = Run("SELECT score, name FROM t ORDER BY 1 DESC, 2 ASC");
  EXPECT_EQ(r.rows[0].at(1).AsString(), "carol");
  EXPECT_EQ(r.rows[1].at(1).AsString(), "bob");
}

TEST_F(OrderByTest, Limit) {
  auto r = Run("SELECT name, score FROM t ORDER BY score LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0).AsString(), "alice");
  auto all = Run("SELECT name FROM t LIMIT 100");
  EXPECT_EQ(all.rows.size(), 4u);
  auto none = Run("SELECT name FROM t LIMIT 0");
  EXPECT_TRUE(none.rows.empty());
}

TEST_F(OrderByTest, OrderByAggregateAlias) {
  auto r = Run(
      "SELECT score, COUNT(*) AS n FROM t GROUP BY score ORDER BY n DESC, "
      "score ASC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].at(0).AsInt64(), 20);  // count 2 first
}

TEST_F(OrderByTest, Errors) {
  auto cat = db_.catalog();
  EXPECT_FALSE(AnalyzeSql("SELECT name FROM t ORDER BY 5", cat).ok());
  EXPECT_FALSE(AnalyzeSql("SELECT name FROM t ORDER BY 0", cat).ok());
  EXPECT_FALSE(AnalyzeSql("SELECT name FROM t ORDER BY nosuch", cat).ok());
  // ORDER BY is restricted to result columns (sorting happens querier-side
  // on decrypted result rows; non-projected columns never reach it).
  EXPECT_FALSE(AnalyzeSql("SELECT name FROM t ORDER BY score", cat).ok());
  EXPECT_FALSE(sql::Parse("SELECT name FROM t LIMIT -3").ok());
  EXPECT_FALSE(sql::Parse("SELECT name FROM t LIMIT x").ok());
}

TEST_F(OrderByTest, ParsedToStringRoundTrip) {
  auto stmt =
      sql::Parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 7 SIZE 10")
          .ValueOrDie();
  auto stmt2 = sql::Parse(stmt.ToString()).ValueOrDie();
  EXPECT_EQ(stmt.ToString(), stmt2.ToString());
  ASSERT_EQ(stmt.order_by.size(), 2u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  EXPECT_FALSE(stmt.order_by[1].descending);
  EXPECT_EQ(stmt.limit.value(), 7u);
}


// ---------------------------------------------------------------------------
// SELECT DISTINCT

TEST_F(OrderByTest, SelectDistinct) {
  auto r = Run("SELECT DISTINCT score FROM t ORDER BY score");
  ASSERT_EQ(r.rows.size(), 3u);  // 10, 20, 30 (20 appears twice in data)
  EXPECT_EQ(r.rows[0].at(0).AsInt64(), 10);
  EXPECT_EQ(r.rows[1].at(0).AsInt64(), 20);
  EXPECT_EQ(r.rows[2].at(0).AsInt64(), 30);
  // Without DISTINCT all 4 rows come back.
  EXPECT_EQ(Run("SELECT score FROM t").rows.size(), 4u);
}

TEST_F(OrderByTest, DistinctComposesWithLimit) {
  auto r = Run("SELECT DISTINCT score FROM t ORDER BY score DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].at(0).AsInt64(), 30);
  EXPECT_EQ(r.rows[1].at(0).AsInt64(), 20);
}

// ---------------------------------------------------------------------------
// VARIANCE / STDDEV

TEST(VarianceTest, KnownValues) {
  storage::Database db;
  ASSERT_TRUE(
      db.CreateTable("t", storage::Schema({{"x", ValueType::kInt64}})).ok());
  auto* t = db.GetTable("t").ValueOrDie();
  for (int64_t x : {2, 4, 4, 4, 5, 5, 7, 9}) {
    ASSERT_TRUE(t->Insert(Tuple({Value::Int64(x)})).ok());
  }
  auto q = AnalyzeSql("SELECT VARIANCE(x), STDDEV(x) FROM t", db.catalog())
               .ValueOrDie();
  auto r = ExecuteLocal(db, q).ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  // Classic example: population variance 4, stddev 2.
  EXPECT_DOUBLE_EQ(r.rows[0].at(0).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(r.rows[0].at(1).AsDouble(), 2.0);
}

TEST(VarianceTest, MergeEquivalence) {
  sql::AggSpec spec;
  spec.kind = sql::AggKind::kVariance;
  spec.input_index = 0;
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.NextDouble() * 10);

  sql::AggState single(spec);
  for (double x : xs) ASSERT_TRUE(single.Accumulate(Value::Double(x)).ok());

  sql::AggState a(spec), b(spec), c(spec);
  for (size_t i = 0; i < xs.size(); ++i) {
    sql::AggState& part = i % 3 == 0 ? a : (i % 3 == 1 ? b : c);
    ASSERT_TRUE(part.Accumulate(Value::Double(xs[i])).ok());
  }
  // Serialize b through the wire format before merging, like a real TDS.
  Bytes buf;
  b.EncodeTo(&buf);
  ByteReader reader(buf);
  sql::AggState b2 = sql::AggState::DecodeFrom(spec, &reader).ValueOrDie();
  ASSERT_TRUE(a.Merge(b2).ok());
  ASSERT_TRUE(a.Merge(c).ok());
  EXPECT_NEAR(a.Finalize().ValueOrDie().AsDouble(),
              single.Finalize().ValueOrDie().AsDouble(), 1e-9);
}

TEST(VarianceTest, EmptyAndSingle) {
  sql::AggSpec spec;
  spec.kind = sql::AggKind::kStdDev;
  spec.input_index = 0;
  sql::AggState s(spec);
  EXPECT_TRUE(s.Finalize().ValueOrDie().is_null());
  ASSERT_TRUE(s.Accumulate(Value::Int64(42)).ok());
  EXPECT_DOUBLE_EQ(s.Finalize().ValueOrDie().AsDouble(), 0.0);
}

TEST(VarianceTest, DistinctVariance) {
  sql::AggSpec spec;
  spec.kind = sql::AggKind::kVariance;
  spec.distinct = true;
  spec.input_index = 0;
  sql::AggState s(spec);
  for (int64_t x : {1, 1, 1, 3, 3}) {
    ASSERT_TRUE(s.Accumulate(Value::Int64(x)).ok());
  }
  // Distinct values {1,3}: mean 2, variance 1.
  EXPECT_DOUBLE_EQ(s.Finalize().ValueOrDie().AsDouble(), 1.0);
}

// ---------------------------------------------------------------------------
// End-to-end: new SQL features through a real protocol run

class ExtensionWorld {
 public:
  ExtensionWorld() {
    keys_ = crypto::KeyStore::CreateForTest(31);
    authority_ = std::make_shared<tds::Authority>(Bytes(16, 0x12));
    workload::GenericOptions gopts;
    gopts.num_tds = 80;
    gopts.num_groups = 5;
    auto built = workload::BuildGenericFleet(gopts, keys_, authority_,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    querier_ = std::make_unique<protocol::Querier>(
        "q", authority_->Issue("q"), keys_);
    engine_ = Engine::Create(std::move(built)).ValueOrDie();
    fleet_ = &engine_->fleet();
  }

  protocol::RunOutcome Run(const std::string& sql,
                           protocol::RunOptions opts = {}) {
    opts.compute_availability = 0.2;
    protocol::SAggProtocol s_agg;
    protocol::BasicSfwProtocol basic;
    auto analyzed =
        AnalyzeSql(sql, fleet_->at(0)->db().catalog()).ValueOrDie();
    protocol::Protocol& protocol =
        analyzed.is_aggregation ? static_cast<protocol::Protocol&>(s_agg)
                                : basic;
    return engine_->Run(protocol, *querier_, next_id_++, sql, opts)
        .ValueOrDie();
  }

  std::shared_ptr<const crypto::KeyStore> keys_;
  std::shared_ptr<tds::Authority> authority_;
  std::unique_ptr<protocol::Querier> querier_;
  std::unique_ptr<Engine> engine_;
  protocol::Fleet* fleet_ = nullptr;  // owned by the engine
  uint64_t next_id_ = 1;
};

TEST(ExtensionE2eTest, DistinctThroughProtocol) {
  ExtensionWorld w;
  const char* sql = "SELECT DISTINCT grp FROM T ORDER BY grp";
  auto outcome = w.Run(sql);
  auto expected = protocol::ExecuteReference(*w.fleet_, sql).ValueOrDie();
  ASSERT_EQ(outcome.result.rows.size(), expected.rows.size());
  EXPECT_LE(outcome.result.rows.size(), 5u);  // at most one row per group
  for (size_t i = 0; i < expected.rows.size(); ++i) {
    EXPECT_TRUE(outcome.result.rows[i].IsSameGroup(expected.rows[i]));
  }
}

TEST(ExtensionE2eTest, OrderByLimitAppliedByQuerier) {
  ExtensionWorld w;
  const char* sql =
      "SELECT grp, COUNT(*) FROM T GROUP BY grp ORDER BY grp DESC LIMIT 3";
  auto outcome = w.Run(sql);
  auto expected = protocol::ExecuteReference(*w.fleet_, sql).ValueOrDie();
  ASSERT_EQ(outcome.result.rows.size(), 3u);
  // Ordered comparison, row by row.
  ASSERT_EQ(outcome.result.rows.size(), expected.rows.size());
  for (size_t i = 0; i < expected.rows.size(); ++i) {
    EXPECT_TRUE(outcome.result.rows[i].IsSameGroup(expected.rows[i])) << i;
  }
  // Descending by group name.
  EXPECT_GT(outcome.result.rows[0].at(0).AsString(),
            outcome.result.rows[2].at(0).AsString());
}

TEST(ExtensionE2eTest, VarianceThroughProtocol) {
  ExtensionWorld w;
  const char* sql =
      "SELECT grp, VARIANCE(val), STDDEV(val) FROM T GROUP BY grp";
  auto outcome = w.Run(sql);
  auto expected = protocol::ExecuteReference(*w.fleet_, sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected));
  for (const auto& row : outcome.result.rows) {
    double variance = row.at(1).AsDouble();
    double stddev = row.at(2).AsDouble();
    EXPECT_NEAR(stddev * stddev, variance, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// DURATION-bounded collection

TEST(DurationTest, WindowClosesBeforeEveryoneConnects) {
  ExtensionWorld w;
  protocol::RunOptions opts;
  opts.connect_prob_per_tick = 0.15;
  opts.seed = 7;
  auto outcome = w.Run("SELECT grp FROM T SIZE DURATION 3", opts);
  // With p=0.15 over 3 ticks, only ~1-(0.85^3) ≈ 39% of TDSs make it.
  EXPECT_EQ(outcome.metrics.collection_ticks, 3u);
  EXPECT_LT(outcome.metrics.collection_participants, w.fleet_->size());
  EXPECT_GT(outcome.metrics.collection_participants, 0u);
  EXPECT_EQ(outcome.adversary.collection_items,
            outcome.metrics.collection_participants);
}

TEST(DurationTest, TupleBoundStopsWithinWindow) {
  ExtensionWorld w;
  protocol::RunOptions opts;
  opts.connect_prob_per_tick = 1.0;
  auto outcome = w.Run("SELECT grp FROM T SIZE 5 DURATION 100", opts);
  EXPECT_EQ(outcome.adversary.collection_items, 5u);
  EXPECT_EQ(outcome.metrics.collection_ticks, 1u);
}

TEST(DurationTest, FullPassWithoutDuration) {
  ExtensionWorld w;
  auto outcome = w.Run("SELECT grp FROM T");
  EXPECT_EQ(outcome.metrics.collection_participants, w.fleet_->size());
  EXPECT_EQ(outcome.metrics.collection_ticks, 1u);
}

// ---------------------------------------------------------------------------
// QueryboxHub

TEST(QueryboxTest, GlobalAndPersonalRouting) {
  ssi::QueryboxHub hub;
  ssi::QueryPost global;
  global.query_id = 1;
  ssi::QueryPost personal;
  personal.query_id = 2;
  ASSERT_TRUE(hub.PostGlobal(global).ok());
  ASSERT_TRUE(hub.PostPersonal(7, personal).ok());

  EXPECT_EQ(hub.Fetch(7).size(), 2u);   // global + its personal
  EXPECT_EQ(hub.Fetch(8).size(), 1u);   // global only
  hub.Acknowledge(7, 1);
  EXPECT_EQ(hub.Fetch(7).size(), 1u);
  EXPECT_EQ(hub.Fetch(7)[0]->query_id, 2u);
  hub.Acknowledge(7, 2);
  EXPECT_TRUE(hub.Fetch(7).empty());
  EXPECT_EQ(hub.Fetch(8).size(), 1u);   // other TDSs unaffected
}

TEST(QueryboxTest, DuplicateIdRejectedAndRetire) {
  ssi::QueryboxHub hub;
  ssi::QueryPost post;
  post.query_id = 5;
  ASSERT_TRUE(hub.PostGlobal(post).ok());
  EXPECT_FALSE(hub.PostGlobal(post).ok());
  EXPECT_TRUE(hub.StorageFor(5).ok());
  EXPECT_FALSE(hub.StorageFor(6).ok());
  hub.Retire(5);
  EXPECT_FALSE(hub.StorageFor(5).ok());
  EXPECT_EQ(hub.num_active(), 0u);
}

TEST(QueryboxTest, PerQueryStorageIsIndependent) {
  ssi::QueryboxHub hub;
  ssi::QueryPost a, b;
  a.query_id = 1;
  b.query_id = 2;
  ASSERT_TRUE(hub.PostGlobal(a).ok());
  ASSERT_TRUE(hub.PostGlobal(b).ok());
  ssi::EncryptedItem item;
  item.blob = Bytes{1, 2, 3};
  hub.StorageFor(1).ValueOrDie()->ReceiveCollectionItems({item});
  EXPECT_EQ(hub.StorageFor(1).ValueOrDie()->NumCollected(), 1u);
  EXPECT_EQ(hub.StorageFor(2).ValueOrDie()->NumCollected(), 0u);
}

// ---------------------------------------------------------------------------
// Compromised-TDS leak instrumentation

TEST(LeakLogTest, HonestRunLeaksNothing) {
  ExtensionWorld w;
  auto log = std::make_shared<tds::LeakLog>();
  // Nobody compromised: log stays empty.
  auto outcome = w.Run("SELECT grp, COUNT(*) FROM T GROUP BY grp");
  (void)outcome;
  EXPECT_EQ(log->NumLeakedRawTuples(), 0u);
  EXPECT_EQ(log->NumLeakedGroups(), 0u);
}

TEST(LeakLogTest, CompromisedTdsLeaksWhatItDecrypts) {
  ExtensionWorld w;
  auto log = std::make_shared<tds::LeakLog>();
  for (size_t i = 0; i < w.fleet_->size(); ++i) {
    w.fleet_->at(i)->set_leak_log(log);  // worst case: everyone compromised
  }
  // val is a per-TDS random double, so every collection tuple is distinct.
  auto outcome = w.Run("SELECT grp, SUM(val) FROM T GROUP BY grp");
  EXPECT_TRUE(outcome.result.rows.size() > 0);
  // With the whole fleet compromised, every raw tuple that entered the
  // aggregation phase leaks.
  EXPECT_EQ(log->NumLeakedRawTuples(), w.fleet_->size());
  EXPECT_EQ(log->NumLeakedGroups(), 5u);
}

TEST(LeakLogTest, PartialCompromiseLeaksPartially) {
  ExtensionWorld w;
  auto log = std::make_shared<tds::LeakLog>();
  for (size_t i = 0; i < 8; ++i) w.fleet_->at(i)->set_leak_log(log);
  auto outcome = w.Run("SELECT grp, SUM(val) FROM T GROUP BY grp");
  (void)outcome;
  EXPECT_LT(log->NumLeakedRawTuples(), w.fleet_->size());
}

}  // namespace
}  // namespace tcells
