// Robustness under malformed and adversarial bytes: everything that parses
// untrusted input (payload decoding, tuple decoding, ciphertext decryption,
// partial-aggregation decoding, the SQL front-end) must return an error —
// never crash, hang or read out of bounds — for arbitrary inputs. The SSI is
// honest-but-curious in the threat model, but a robust implementation treats
// every inbound byte as hostile.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/keystore.h"
#include "sql/aggregates.h"
#include "sql/parser.h"
#include "ssi/messages.h"
#include "tds/access_control.h"
#include "tds/tds.h"
#include "workload/generic.h"

namespace tcells {
namespace {

using storage::Tuple;
using storage::Value;

TEST(RobustnessTest, RandomBytesIntoDecoders) {
  Rng rng(42);
  std::vector<sql::AggSpec> specs;
  sql::AggSpec spec;
  spec.kind = sql::AggKind::kAvg;
  spec.input_index = 1;
  specs.push_back(spec);

  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk = rng.NextBytes(rng.NextBelow(64));
    // None of these may crash; success is acceptable only if the bytes
    // happen to form a valid encoding (possible for tiny inputs).
    (void)ssi::DecodePayload(junk);
    (void)Tuple::Decode(junk);
    (void)sql::GroupedAggregation::Decode(specs, junk);
  }
}

TEST(RobustnessTest, AdversarialLengthPrefixes) {
  // A length prefix claiming 4 GB must not allocate/scan 4 GB.
  Bytes evil;
  ByteWriter w(&evil);
  w.PutU8(0);              // payload kind: true tuple
  w.PutU32(0xfffffff0u);   // body "length"
  auto decoded = ssi::DecodePayload(evil);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());

  Bytes evil_tuple;
  ByteWriter w2(&evil_tuple);
  w2.PutU16(0xffff);  // 65535 values... followed by nothing
  EXPECT_FALSE(Tuple::Decode(evil_tuple).ok());
}

TEST(RobustnessTest, CiphertextFuzz) {
  auto keys = crypto::KeyStore::CreateForTest(7);
  Rng rng(8);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes junk = rng.NextBytes(rng.NextBelow(96));
    EXPECT_FALSE(keys->k2_ndet().Decrypt(junk).ok());
    EXPECT_FALSE(keys->k2_det().Decrypt(junk).ok());
  }
}

TEST(RobustnessTest, BitflippedCiphertextAlwaysRejected) {
  auto keys = crypto::KeyStore::CreateForTest(9);
  Rng rng(10);
  Bytes pt = rng.NextBytes(64);
  Bytes ct = keys->k2_ndet().Encrypt(pt, &rng);
  for (size_t pos = 0; pos < ct.size(); ++pos) {
    for (uint8_t bit : {uint8_t{1}, uint8_t{0x80}}) {
      Bytes bad = ct;
      bad[pos] ^= bit;
      EXPECT_FALSE(keys->k2_ndet().Decrypt(bad).ok())
          << "flip at byte " << pos;
    }
  }
}

class TamperWorld : public ::testing::Test {
 protected:
  TamperWorld() {
    keys_ = crypto::KeyStore::CreateForTest(11);
    authority_ = std::make_shared<tds::Authority>(Bytes(16, 3));
    server_ = std::make_unique<tds::TrustedDataServer>(
        0, keys_, authority_, tds::AccessPolicy::AllowAll());
    workload::GenericOptions opts;
    Rng data_rng(12);
    EXPECT_TRUE(
        workload::PopulateGenericDb(&server_->db(), 0, opts, &data_rng).ok());
    query_ = sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp",
                             server_->db().catalog())
                 .ValueOrDie();
  }

  ssi::EncryptedItem GoodItem(Rng* rng) {
    Tuple t({Value::String("G00")});
    ssi::EncryptedItem item;
    item.blob = keys_->k2_ndet().Encrypt(
        ssi::EncodePayload(ssi::PayloadKind::kTrueTuple, t.Encode()), rng);
    return item;
  }

  std::shared_ptr<const crypto::KeyStore> keys_;
  std::shared_ptr<tds::Authority> authority_;
  std::unique_ptr<tds::TrustedDataServer> server_;
  sql::AnalyzedQuery query_;
};

TEST_F(TamperWorld, TamperedPartitionItemIsCorruption) {
  Rng rng(13);
  ssi::Partition partition;
  partition.items.push_back(GoodItem(&rng));
  partition.items.push_back(GoodItem(&rng));
  partition.items[1].blob[8] ^= 0x40;  // a "malicious SSI" flips a bit
  auto result = server_->ProcessAggregationPartition(
      query_, partition, tds::OutputTagPolicy::kNone, {}, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(TamperWorld, WrongChannelItemRejected) {
  Rng rng(14);
  // An item encrypted under k1 smuggled into a k2 partition.
  Tuple t({Value::String("G00")});
  ssi::EncryptedItem item;
  item.blob = keys_->k1_ndet().Encrypt(
      ssi::EncodePayload(ssi::PayloadKind::kTrueTuple, t.Encode()), &rng);
  ssi::Partition partition;
  partition.items.push_back(std::move(item));
  EXPECT_FALSE(server_
                   ->ProcessAggregationPartition(
                       query_, partition, tds::OutputTagPolicy::kNone, {},
                       &rng)
                   .ok());
}

TEST_F(TamperWorld, ResultRowInAggregationRejected) {
  Rng rng(15);
  Tuple t({Value::String("G00")});
  ssi::EncryptedItem item;
  item.blob = keys_->k2_ndet().Encrypt(
      ssi::EncodePayload(ssi::PayloadKind::kResultRow, t.Encode()), &rng);
  ssi::Partition partition;
  partition.items.push_back(std::move(item));
  auto result = server_->ProcessAggregationPartition(
      query_, partition, tds::OutputTagPolicy::kNone, {}, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(RobustnessTest, ParserFuzzNeverCrashes) {
  Rng rng(16);
  const char alphabet[] =
      "abcXYZ0123456789 ,.*()'<>=+-/%_\t\nSELECTFROMWHEREGROUPBYHAVINGSIZE";
  for (int trial = 0; trial < 3000; ++trial) {
    size_t len = rng.NextBelow(60);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    auto parsed = sql::Parse(s);
    if (parsed.ok()) {
      // Accepted inputs must round-trip through their rendering.
      auto again = sql::Parse(parsed->ToString());
      ASSERT_TRUE(again.ok()) << s;
      EXPECT_EQ(parsed->ToString(), again->ToString());
    }
  }
}


// Random expression trees rendered to SQL must re-parse to the identical
// rendering (generator-driven round-trip, stronger than random strings).
// Two-level generator mirrors the grammar: predicates over arithmetic terms.
sql::ExprPtr RandomArith(Rng* rng, int depth) {
  using sql::MakeBinary;
  using sql::MakeColumnRef;
  using sql::MakeLiteral;
  if (depth <= 0 || rng->NextBool(0.4)) {
    switch (rng->NextBelow(3)) {
      case 0: return MakeLiteral(Value::Int64(rng->NextInRange(0, 9)));
      case 1: return MakeLiteral(Value::Double(
                   static_cast<double>(rng->NextInRange(0, 50)) / 4.0));
      default:
        return MakeColumnRef("", "c" + std::to_string(rng->NextBelow(3)));
    }
  }
  sql::BinaryOp op = rng->NextBool() ? sql::BinaryOp::kAdd
                                     : sql::BinaryOp::kMul;
  return MakeBinary(op, RandomArith(rng, depth - 1),
                    RandomArith(rng, depth - 1));
}

sql::ExprPtr RandomPredicate(Rng* rng, int depth) {
  using sql::MakeBinary;
  if (depth <= 0 || rng->NextBool(0.3)) {
    sql::BinaryOp op = rng->NextBool() ? sql::BinaryOp::kLe
                                       : sql::BinaryOp::kGt;
    return MakeBinary(op, RandomArith(rng, 2), RandomArith(rng, 2));
  }
  switch (rng->NextBelow(4)) {
    case 0:
      return MakeBinary(sql::BinaryOp::kAnd, RandomPredicate(rng, depth - 1),
                        RandomPredicate(rng, depth - 1));
    case 1:
      return MakeBinary(sql::BinaryOp::kOr, RandomPredicate(rng, depth - 1),
                        RandomPredicate(rng, depth - 1));
    case 2:
      return sql::MakeUnary(sql::UnaryOp::kNot,
                            RandomPredicate(rng, depth - 1));
    default:
      return sql::MakeIsNull(RandomArith(rng, 2), rng->NextBool());
  }
}

TEST(RobustnessTest, GeneratedExpressionRoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    auto expr = RandomPredicate(&rng, 4);
    std::string sql = "SELECT c0 FROM t WHERE " + expr->ToString();
    auto parsed = sql::Parse(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    auto again = sql::Parse(parsed->ToString());
    ASSERT_TRUE(again.ok()) << parsed->ToString();
    EXPECT_EQ(parsed->ToString(), again->ToString()) << sql;
  }
}

TEST(RobustnessTest, DeepExpressionNesting) {
  // 200 nested parentheses: must parse (or fail) without stack issues.
  std::string sql = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 200; ++i) sql += "(";
  sql += "a = 1";
  for (int i = 0; i < 200; ++i) sql += ")";
  auto parsed = sql::Parse(sql);
  EXPECT_TRUE(parsed.ok());
}

TEST(RobustnessTest, AggStateDecodeFuzzWithPlausiblePrefix) {
  // Start from a valid encoding and mutate single bytes: decode must never
  // crash, and when it succeeds, Finalize must not crash either.
  sql::AggSpec spec;
  spec.kind = sql::AggKind::kMedian;
  spec.input_index = 0;
  sql::AggState s(spec);
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(s.Accumulate(Value::Int64(rng.NextInRange(0, 9))).ok());
  }
  Bytes good;
  s.EncodeTo(&good);
  for (size_t pos = 0; pos < good.size(); ++pos) {
    Bytes bad = good;
    bad[pos] ^= 0xff;
    ByteReader reader(bad);
    auto decoded = sql::AggState::DecodeFrom(spec, &reader);
    if (decoded.ok()) {
      (void)decoded->Finalize();
    }
  }
}

}  // namespace
}  // namespace tcells
