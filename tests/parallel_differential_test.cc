// Differential serial-vs-parallel harness for the parallel fleet engine.
//
// The engine's contract is that `RunOptions::num_threads` is invisible to
// everything the run produces: every protocol, executed serially and with
// 1/2/8 worker threads on identical seeds, must yield bit-identical
// RunOutcomes — result rows, cost-accountant tallies, simulated phase times,
// the SSI's adversary view, and the compromised-TDS exposure counters. This
// makes determinism a tested invariant rather than a hope: any hidden shared
// state or scheduling-dependent randomness shows up as a diff here.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "sql/executor.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "tds/leak_log.h"
#include "workload/generic.h"

namespace tcells::protocol {
namespace {

using storage::Tuple;
using storage::Value;

constexpr size_t kNumTds = 48;
constexpr size_t kNumGroups = 4;
constexpr size_t kNumCompromised = 6;

/// Everything one run produced, snapshotted for deep comparison.
struct RunSnapshot {
  RunOutcome outcome;
  size_t leaked_raw_tuples = 0;
  size_t leaked_groups = 0;
  size_t leaked_result_rows = 0;
  uint64_t leak_appends = 0;
};

const char* QueryFor(ProtocolKind kind) {
  return kind == ProtocolKind::kBasicSfw
             ? "SELECT grp, val, cat FROM T WHERE cat < 6"
             : "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), "
               "MAX(val) FROM T GROUP BY grp";
}

/// Builds a fresh world (fleet, protocol, compromised TDSs) and runs the
/// query once. Worlds are rebuilt per run so that no state carries over
/// between the serial and parallel arms.
RunSnapshot RunWith(ProtocolKind kind, size_t num_threads, uint64_t seed,
                    double dropout_rate = 0.0, double group_skew = 0.8) {
  workload::GenericOptions gopts;
  gopts.num_tds = kNumTds;
  gopts.num_groups = kNumGroups;
  gopts.group_skew = group_skew;
  gopts.rows_per_tds = 2;
  gopts.seed = 1000 + seed;

  auto keys = crypto::KeyStore::CreateForTest(2026);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x33));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  Querier querier("diff", authority->Issue("diff"), keys);

  // Threat-model extension: a few compromised TDSs share a leak log, so the
  // harness also proves the exposure counters are schedule-independent.
  auto leak_log = std::make_shared<tds::LeakLog>();
  for (size_t i = 0; i < kNumCompromised; ++i) {
    fleet->at(i)->set_leak_log(leak_log);
  }

  auto domain = std::make_shared<std::vector<Tuple>>();
  std::map<Tuple, uint64_t> freq;
  for (size_t g = 0; g < kNumGroups; ++g) {
    domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
  }
  const auto& catalog = fleet->at(0)->db().catalog();
  auto count_q =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp", catalog)
          .ValueOrDie();
  for (size_t i = 0; i < fleet->size(); ++i) {
    auto rows =
        sql::CollectionTuples(fleet->at(i)->db(), count_q).ValueOrDie();
    for (const auto& r : rows) freq[Tuple({r.at(0)})] += 1;
  }

  std::unique_ptr<Protocol> protocol;
  switch (kind) {
    case ProtocolKind::kBasicSfw:
      protocol = std::make_unique<BasicSfwProtocol>();
      break;
    case ProtocolKind::kSAgg:
      protocol = std::make_unique<SAggProtocol>();
      break;
    case ProtocolKind::kRnfNoise:
      protocol = std::make_unique<NoiseProtocol>(false, domain);
      break;
    case ProtocolKind::kCNoise:
      protocol = std::make_unique<NoiseProtocol>(true, domain);
      break;
    case ProtocolKind::kEdHist:
      protocol = EdHistProtocol::FromDistribution(freq, 2);
      break;
  }

  RunOptions opts;
  opts.compute_availability = 0.25;
  opts.expected_groups = kNumGroups;
  opts.seed = seed;
  opts.num_threads = num_threads;
  opts.dropout_rate = dropout_rate;

  Engine::Config cfg;
  cfg.options = opts;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  RunSnapshot snapshot;
  snapshot.outcome =
      engine->Run(*protocol, querier, 1, QueryFor(kind)).ValueOrDie();
  snapshot.leaked_raw_tuples = leak_log->NumLeakedRawTuples();
  snapshot.leaked_groups = leak_log->NumLeakedGroups();
  snapshot.leaked_result_rows = leak_log->NumLeakedResultRows();
  snapshot.leak_appends = leak_log->NumRawAppends();
  return snapshot;
}

void ExpectPhaseTallyEq(const sim::PhaseTally& a, const sim::PhaseTally& b,
                        const char* phase) {
  EXPECT_EQ(a.bytes_uploaded, b.bytes_uploaded) << phase;
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded) << phase;
  EXPECT_EQ(a.tuples_processed, b.tuples_processed) << phase;
  EXPECT_EQ(a.tds_participations, b.tds_participations) << phase;
  EXPECT_EQ(a.partitions, b.partitions) << phase;
  EXPECT_EQ(a.iterations, b.iterations) << phase;
  EXPECT_EQ(a.dropouts, b.dropouts) << phase;
}

/// Bit-identical comparison of everything a run produces. Doubles are
/// compared exactly: serial and parallel runs perform the same arithmetic in
/// the same fold order, so even floating point must not drift.
void ExpectIdentical(const RunSnapshot& serial, const RunSnapshot& parallel) {
  // Result rows, including order (the engine concatenates in partition
  // order, so even row order is schedule-independent).
  EXPECT_EQ(serial.outcome.result.ToString(),
            parallel.outcome.result.ToString());
  ASSERT_EQ(serial.outcome.result.rows.size(),
            parallel.outcome.result.rows.size());

  // Cost accounting.
  const auto& ma = serial.outcome.metrics;
  const auto& mb = parallel.outcome.metrics;
  for (auto phase : {sim::Phase::kCollection, sim::Phase::kAggregation,
                     sim::Phase::kFiltering}) {
    ExpectPhaseTallyEq(ma.accountant.phase(phase), mb.accountant.phase(phase),
                       sim::PhaseToString(phase));
  }
  EXPECT_EQ(ma.accountant.TotalBytes(), mb.accountant.TotalBytes());
  EXPECT_EQ(ma.accountant.DistinctTds(), mb.accountant.DistinctTds());
  const auto& per_a = ma.accountant.per_tds();
  const auto& per_b = mb.accountant.per_tds();
  ASSERT_EQ(per_a.size(), per_b.size());
  for (auto it_a = per_a.begin(), it_b = per_b.begin(); it_a != per_a.end();
       ++it_a, ++it_b) {
    EXPECT_EQ(it_a->first, it_b->first);
    EXPECT_EQ(it_a->second.bytes_in, it_b->second.bytes_in);
    EXPECT_EQ(it_a->second.bytes_out, it_b->second.bytes_out);
    EXPECT_EQ(it_a->second.tuples, it_b->second.tuples);
    EXPECT_EQ(it_a->second.participations, it_b->second.participations);
  }

  // Simulated critical-path times: exact, not approximate.
  EXPECT_EQ(ma.times.collection_seconds, mb.times.collection_seconds);
  EXPECT_EQ(ma.times.aggregation_seconds, mb.times.aggregation_seconds);
  EXPECT_EQ(ma.times.filtering_seconds, mb.times.filtering_seconds);
  EXPECT_EQ(ma.aggregation_rounds, mb.aggregation_rounds);
  EXPECT_EQ(ma.available_compute_tds, mb.available_compute_tds);
  EXPECT_EQ(ma.collection_ticks, mb.collection_ticks);
  EXPECT_EQ(ma.collection_participants, mb.collection_participants);

  // The SSI's adversary view: the exact ciphertext population, in order.
  const auto& va = serial.outcome.adversary;
  const auto& vb = parallel.outcome.adversary;
  EXPECT_EQ(va.collection_tag_histogram, vb.collection_tag_histogram);
  EXPECT_EQ(va.aggregation_tag_histogram, vb.aggregation_tag_histogram);
  EXPECT_EQ(va.collection_blob_sizes, vb.collection_blob_sizes);
  EXPECT_EQ(va.collection_items, vb.collection_items);
  EXPECT_EQ(va.aggregation_items, vb.aggregation_items);
  EXPECT_EQ(va.filtering_items, vb.filtering_items);

  // Compromised-TDS exposure counters.
  EXPECT_EQ(serial.leaked_raw_tuples, parallel.leaked_raw_tuples);
  EXPECT_EQ(serial.leaked_groups, parallel.leaked_groups);
  EXPECT_EQ(serial.leaked_result_rows, parallel.leaked_result_rows);
  EXPECT_EQ(serial.leak_appends, parallel.leak_appends);
}

// ---------------------------------------------------------------------------
// The differential sweep: 5 protocols x 3 seeds x {2, 8} threads vs serial.

class ParallelDifferentialTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ParallelDifferentialTest, SerialAndParallelRunsAreBitIdentical) {
  ProtocolKind kind = GetParam();
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunSnapshot serial = RunWith(kind, /*num_threads=*/1, seed);
    for (size_t threads : {2u, 8u}) {
      RunSnapshot parallel = RunWith(kind, threads, seed);
      SCOPED_TRACE(std::string(ProtocolKindToString(kind)) + " seed " +
                   std::to_string(seed) + " threads " +
                   std::to_string(threads));
      ExpectIdentical(serial, parallel);
    }
  }
}

TEST_P(ParallelDifferentialTest, ResultStillMatchesPlaintextOracle) {
  // Determinism alone could hide a bug present in both arms; anchor the
  // parallel run against the cleartext reference as well.
  ProtocolKind kind = GetParam();
  workload::GenericOptions gopts;
  gopts.num_tds = kNumTds;
  gopts.num_groups = kNumGroups;
  gopts.group_skew = 0.8;
  gopts.rows_per_tds = 2;
  gopts.seed = 1011;
  auto keys = crypto::KeyStore::CreateForTest(2026);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x33));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  auto expected = ExecuteReference(*fleet, QueryFor(kind)).ValueOrDie();
  RunSnapshot parallel = RunWith(kind, /*num_threads=*/8, /*seed=*/11);
  EXPECT_TRUE(parallel.outcome.result.SameRows(expected))
      << "got:\n" << parallel.outcome.result.ToString()
      << "want:\n" << expected.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ParallelDifferentialTest,
    ::testing::Values(ProtocolKind::kBasicSfw, ProtocolKind::kSAgg,
                      ProtocolKind::kRnfNoise, ProtocolKind::kCNoise,
                      ProtocolKind::kEdHist),
    [](const auto& info) {
      return std::string(ProtocolKindToString(info.param));
    });

// ---------------------------------------------------------------------------
// Skew grid: group popularity from uniform to heavily Zipf-skewed. Skew
// changes partition sizes and aggregation-tree shape, so it probes fold
// orders the default 0.8 never exercises; each point must stay bit-identical
// between serial and parallel arms and match the plaintext oracle.

TEST_P(ParallelDifferentialTest, ZipfSkewGridStaysBitIdentical) {
  ProtocolKind kind = GetParam();
  for (double skew : {0.0, 1.2, 2.5}) {
    RunSnapshot serial = RunWith(kind, /*num_threads=*/1, /*seed=*/11,
                                 /*dropout_rate=*/0.0, skew);
    for (size_t threads : {2u, 8u}) {
      RunSnapshot parallel = RunWith(kind, threads, /*seed=*/11,
                                     /*dropout_rate=*/0.0, skew);
      SCOPED_TRACE(std::string(ProtocolKindToString(kind)) + " skew " +
                   std::to_string(skew) + " threads " +
                   std::to_string(threads));
      ExpectIdentical(serial, parallel);
    }

    // Anchor the skewed world against the cleartext reference too — a
    // deterministic-but-wrong fold under skew would pass the diff alone.
    workload::GenericOptions gopts;
    gopts.num_tds = kNumTds;
    gopts.num_groups = kNumGroups;
    gopts.group_skew = skew;
    gopts.rows_per_tds = 2;
    gopts.seed = 1011;
    auto keys = crypto::KeyStore::CreateForTest(2026);
    auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x33));
    auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    auto expected = ExecuteReference(*fleet, QueryFor(kind)).ValueOrDie();
    RunSnapshot parallel = RunWith(kind, /*num_threads=*/8, /*seed=*/11,
                                   /*dropout_rate=*/0.0, skew);
    EXPECT_TRUE(parallel.outcome.result.SameRows(expected))
        << "skew " << skew << "\ngot:\n"
        << parallel.outcome.result.ToString() << "want:\n"
        << expected.ToString();
  }
}

// ---------------------------------------------------------------------------
// Determinism must also survive fault injection: the dropout schedule is
// drawn from the per-partition streams, so re-dispatch decisions cannot
// depend on thread timing.

TEST(ParallelDifferentialDropoutTest, ChurnIsScheduleIndependent) {
  for (size_t threads : {2u, 8u}) {
    RunSnapshot serial =
        RunWith(ProtocolKind::kSAgg, 1, /*seed=*/5, /*dropout_rate=*/0.2);
    RunSnapshot parallel =
        RunWith(ProtocolKind::kSAgg, threads, /*seed=*/5,
                /*dropout_rate=*/0.2);
    SCOPED_TRACE(threads);
    ExpectIdentical(serial, parallel);
    EXPECT_GT(serial.outcome.metrics.accountant.phase(sim::Phase::kAggregation)
                  .dropouts,
              0u);
  }
}

// ---------------------------------------------------------------------------
// SIZE-bounded collection truncates at fold time; the truncation point must
// not depend on the thread count either.

TEST(ParallelDifferentialSizeTest, SizeBoundTruncatesIdentically) {
  auto run = [](size_t threads) {
    workload::GenericOptions gopts;
    gopts.num_tds = 40;
    gopts.seed = 1234;
    auto keys = crypto::KeyStore::CreateForTest(2027);
    auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x34));
    auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    Querier querier("diff", authority->Issue("diff"), keys);
    BasicSfwProtocol protocol;
    Engine::Config cfg;
    cfg.options.seed = 9;
    cfg.options.num_threads = threads;
    auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
    return engine->Run(protocol, querier, 1, "SELECT grp FROM T SIZE 10")
        .ValueOrDie();
  };
  RunOutcome serial = run(1);
  EXPECT_EQ(serial.adversary.collection_items, 10u);
  for (size_t threads : {2u, 8u}) {
    RunOutcome parallel = run(threads);
    EXPECT_EQ(serial.result.ToString(), parallel.result.ToString());
    EXPECT_EQ(parallel.adversary.collection_items, 10u);
    EXPECT_EQ(serial.metrics.collection_participants,
              parallel.metrics.collection_participants);
  }
}

// ---------------------------------------------------------------------------
// LeakLog concurrency regression: concurrent compromised-TDS appends must
// lose no entries (the log used to be single-thread-only).

TEST(LeakLogConcurrencyTest, ConcurrentAppendsLoseNothing) {
  tds::LeakLog log;
  ThreadPool pool(8);
  constexpr size_t kWriters = 16;
  constexpr size_t kPerWriter = 500;
  pool.ParallelFor(kWriters, [&](size_t w) {
    for (size_t i = 0; i < kPerWriter; ++i) {
      Tuple t({Value::Int64(static_cast<int64_t>(w * kPerWriter + i)),
               Value::String("x")});
      log.RecordRawTuple(/*tds_id=*/w, t);
      log.RecordGroupAggregate(/*tds_id=*/w,
                               Tuple({Value::Int64(static_cast<int64_t>(i))}));
    }
  });
  // Every distinct tuple survived, and no append was dropped on the floor.
  EXPECT_EQ(log.NumLeakedRawTuples(), kWriters * kPerWriter);
  EXPECT_EQ(log.NumRawAppends(), kWriters * kPerWriter);
  EXPECT_EQ(log.NumLeakedGroups(), kPerWriter);
}

}  // namespace
}  // namespace tcells::protocol
