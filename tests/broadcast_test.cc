// Tests for complete-subtree broadcast encryption (footnote 7 alternative):
// cover structure, delivery, revocation, and the key-rotation use case.
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/broadcast.h"
#include "crypto/keystore.h"

namespace tcells::crypto {
namespace {

class BroadcastTest : public ::testing::Test {
 protected:
  BroadcastTest() : rng_(1) {
    channel_.emplace(
        BroadcastChannel::Create(rng_.NextBytes(16), kDevices).ValueOrDie());
  }

  static constexpr size_t kDevices = 21;  // deliberately not a power of two
  Rng rng_;
  std::optional<BroadcastChannel> channel_;
};

TEST_F(BroadcastTest, CapacityPadsToPowerOfTwo) {
  EXPECT_EQ(channel_->num_devices(), kDevices);
  EXPECT_EQ(channel_->capacity(), 32u);
}

TEST_F(BroadcastTest, DeviceHoldsPathKeys) {
  auto keys = channel_->DeviceKeys(0).ValueOrDie();
  // log2(32) + 1 = 6 nodes from leaf to root.
  EXPECT_EQ(keys.node_keys.size(), 6u);
  EXPECT_EQ(keys.node_keys.front().first, 32u);  // its leaf
  EXPECT_EQ(keys.node_keys.back().first, 1u);    // the root
  EXPECT_FALSE(channel_->DeviceKeys(kDevices).ok());
}

TEST_F(BroadcastTest, EveryDeviceDecryptsWithoutRevocation) {
  Bytes payload = rng_.NextBytes(40);
  auto message = channel_->Encrypt(payload, {}, &rng_).ValueOrDie();
  for (size_t i = 0; i < kDevices; ++i) {
    auto keys = channel_->DeviceKeys(i).ValueOrDie();
    EXPECT_EQ(BroadcastChannel::Decrypt(message, keys).ValueOrDie(), payload);
  }
}

TEST_F(BroadcastTest, CoverIsRootOnlyForFullPowerOfTwoFleet) {
  Rng rng(2);
  auto full = BroadcastChannel::Create(rng.NextBytes(16), 16).ValueOrDie();
  auto cover = full.Cover({});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], 1u);
}

TEST_F(BroadcastTest, RevokedDeviceLearnsNothingOthersUnaffected) {
  Bytes payload = rng_.NextBytes(32);
  std::set<size_t> revoked = {3, 17};
  auto message = channel_->Encrypt(payload, revoked, &rng_).ValueOrDie();
  for (size_t i = 0; i < kDevices; ++i) {
    auto keys = channel_->DeviceKeys(i).ValueOrDie();
    auto result = BroadcastChannel::Decrypt(message, keys);
    if (revoked.count(i)) {
      ASSERT_FALSE(result.ok()) << i;
      EXPECT_TRUE(result.status().IsNotFound());
    } else {
      EXPECT_EQ(result.ValueOrDie(), payload) << i;
    }
  }
}

TEST_F(BroadcastTest, CoverNeverIncludesDirtyOrPaddingSubtrees) {
  std::set<size_t> revoked = {0, 1, 20};
  auto cover = channel_->Cover(revoked);
  // Expand every cover node to its leaf range and check the partition
  // property: exactly the non-revoked real devices, each exactly once.
  std::set<size_t> covered;
  for (uint32_t node : cover) {
    uint32_t lo = node, hi = node;
    while (lo < channel_->capacity()) {
      lo = 2 * lo;
      hi = 2 * hi + 1;
    }
    for (uint32_t leaf = lo; leaf <= hi; ++leaf) {
      size_t index = leaf - channel_->capacity();
      EXPECT_TRUE(covered.insert(index).second) << "double-covered " << index;
    }
  }
  for (size_t i = 0; i < channel_->capacity(); ++i) {
    bool should = i < kDevices && !revoked.count(i);
    EXPECT_EQ(covered.count(i) > 0, should) << i;
  }
}

TEST_F(BroadcastTest, CoverSizeWithinNnlBound) {
  Rng rng(3);
  auto big = BroadcastChannel::Create(rng.NextBytes(16), 1024).ValueOrDie();
  for (size_t r : {1u, 4u, 16u, 64u}) {
    std::set<size_t> revoked;
    while (revoked.size() < r) revoked.insert(rng.NextBelow(1024));
    auto cover = big.Cover(revoked);
    double bound = static_cast<double>(r) *
                   std::log2(1024.0 / static_cast<double>(r));
    EXPECT_LE(cover.size(), static_cast<size_t>(bound) + 1) << "r=" << r;
  }
}

TEST_F(BroadcastTest, TamperedHeaderOrBodyRejected) {
  Bytes payload = rng_.NextBytes(16);
  auto message = channel_->Encrypt(payload, {}, &rng_).ValueOrDie();
  auto keys = channel_->DeviceKeys(2).ValueOrDie();

  auto bad_body = message;
  bad_body.body[3] ^= 1;
  EXPECT_FALSE(BroadcastChannel::Decrypt(bad_body, keys).ok());

  auto bad_header = message;
  bad_header.header[0].second[5] ^= 1;
  EXPECT_FALSE(BroadcastChannel::Decrypt(bad_header, keys).ok());
}

TEST_F(BroadcastTest, KeyRotationAfterCompromiseUseCase) {
  // The deployment use case: a TDS is found compromised; the operator
  // broadcasts the next epoch's k2 to everyone else. The compromised device
  // cannot follow the rotation.
  Bytes new_k2 = rng_.NextBytes(16);
  size_t compromised = 7;
  auto message =
      channel_->Encrypt(new_k2, {compromised}, &rng_).ValueOrDie();

  for (size_t i = 0; i < kDevices; ++i) {
    auto keys = channel_->DeviceKeys(i).ValueOrDie();
    auto unwrapped = BroadcastChannel::Decrypt(message, keys);
    EXPECT_EQ(unwrapped.ok(), i != compromised);
    if (unwrapped.ok()) {
      EXPECT_EQ(*unwrapped, new_k2);
    }
  }
  // Header stays small: one revocation in 32 leaves -> <= 5 cover wraps
  // beyond the padding split.
  EXPECT_LE(message.header.size(), 9u);
}

TEST_F(BroadcastTest, RejectsBadParameters) {
  EXPECT_FALSE(BroadcastChannel::Create(Bytes(8), 4).ok());
  Rng rng(4);
  EXPECT_FALSE(BroadcastChannel::Create(rng.NextBytes(16), 0).ok());
}

// Regression: leaf node ids are uint32 and occupy capacity..2*capacity-1, so
// a fleet over 2^31 devices would wrap the heap numbering and hand distinct
// devices the same node keys. Create must refuse instead of wrapping.
TEST_F(BroadcastTest, RejectsFleetsBeyondHeapNumberingRange) {
  Rng rng(5);
  Bytes master = rng.NextBytes(16);
  EXPECT_TRUE(
      BroadcastChannel::Create(master, (size_t{1} << 31) + 1).status()
          .IsInvalidArgument());
  // The boundary itself is fine: capacity 2^31, leaves up to 2^32 - 1.
  auto at_cap = BroadcastChannel::Create(master, size_t{1} << 31);
  ASSERT_TRUE(at_cap.ok());
  EXPECT_EQ(at_cap->capacity(), size_t{1} << 31);
}

}  // namespace
}  // namespace tcells::crypto
