// Tests for src/crypto: AES/SHA/HMAC against published vectors, plus the
// security-relevant properties of the nDet_Enc / Det_Enc schemes.
#include <gtest/gtest.h>

#include <set>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/encryption.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/provisioning.h"
#include "crypto/sha256.h"

namespace tcells::crypto {
namespace {

Bytes Hex(const char* s) { return FromHex(s).ValueOrDie(); }

// ---------------------------------------------------------------------------
// AES-128 (FIPS-197 Appendix C.1)

TEST(AesTest, Fips197Vector) {
  Bytes key = Hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  auto aes = Aes128::Create(key).ValueOrDie();
  uint8_t block[16];
  std::copy(pt.begin(), pt.end(), block);
  aes.EncryptBlock(block);
  EXPECT_EQ(ToHex(block, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.DecryptBlock(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST(AesTest, EncryptDecryptRoundTripRandom) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    auto aes = Aes128::Create(rng.NextBytes(16)).ValueOrDie();
    Bytes pt = rng.NextBytes(16);
    uint8_t block[16];
    std::copy(pt.begin(), pt.end(), block);
    aes.EncryptBlock(block);
    EXPECT_NE(Bytes(block, block + 16), pt);  // 2^-128 false-failure odds
    aes.DecryptBlock(block);
    EXPECT_EQ(Bytes(block, block + 16), pt);
  }
}

TEST(AesTest, RejectsWrongKeySize) {
  EXPECT_FALSE(Aes128::Create(Bytes(15)).ok());
  EXPECT_FALSE(Aes128::Create(Bytes(32)).ok());
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 examples)

TEST(Sha256Test, EmptyString) {
  auto d = Sha256::Hash({});
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  Bytes abc = {'a', 'b', 'c'};
  auto d = Sha256::Hash(abc);
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  Bytes data(msg.begin(), msg.end());
  auto d = Sha256::Hash(data);
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(2);
  Bytes data = rng.NextBytes(1000);
  Sha256 inc;
  size_t pos = 0;
  for (size_t chunk : {1u, 7u, 63u, 64u, 65u, 800u}) {
    size_t take = std::min(chunk, data.size() - pos);
    inc.Update(data.data() + pos, take);
    pos += take;
  }
  inc.Update(data.data() + pos, data.size() - pos);
  auto a = inc.Finish();
  auto b = Sha256::Hash(data);
  EXPECT_EQ(ToHex(a.data(), a.size()), ToHex(b.data(), b.size()));
}

// ---------------------------------------------------------------------------
// HMAC-SHA-256 (RFC 4231)

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = {'J', 'e', 'f', 'e'};
  std::string msg = "what do ya want for nothing?";
  Bytes data(msg.begin(), msg.end());
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes data = {'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'};
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  Bytes key(131, 0xaa);
  std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  Bytes data(msg.begin(), msg.end());
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(KeyDerivationTest, LabelsSeparateKeys) {
  Rng rng(3);
  Bytes master = rng.NextBytes(16);
  Bytes a = DeriveKey(master, "enc");
  Bytes b = DeriveKey(master, "mac");
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DeriveKey(master, "enc"));  // deterministic
}

TEST(KeyedHashTest, DeterministicAndKeyed) {
  Rng rng(4);
  Bytes k1 = rng.NextBytes(16), k2 = rng.NextBytes(16);
  Bytes data = rng.NextBytes(32);
  EXPECT_EQ(KeyedHash64(k1, data), KeyedHash64(k1, data));
  EXPECT_NE(KeyedHash64(k1, data), KeyedHash64(k2, data));
}

// ---------------------------------------------------------------------------
// nDet_Enc

class NDetTest : public ::testing::Test {
 protected:
  NDetTest() : rng_(5) {
    scheme_.emplace(NDetEnc::Create(rng_.NextBytes(16)).ValueOrDie());
  }
  Rng rng_;
  std::optional<NDetEnc> scheme_;
};

TEST_F(NDetTest, RoundTrip) {
  Bytes pt = rng_.NextBytes(100);
  Bytes ct = scheme_->Encrypt(pt, &rng_);
  EXPECT_EQ(ct.size(), pt.size() + NDetEnc::kOverhead);
  EXPECT_EQ(scheme_->Decrypt(ct).ValueOrDie(), pt);
}

TEST_F(NDetTest, SameMessageDifferentCiphertexts) {
  // The property nDet_Enc exists for: no frequency analysis possible.
  Bytes pt = rng_.NextBytes(24);
  std::set<Bytes> cts;
  for (int i = 0; i < 32; ++i) cts.insert(scheme_->Encrypt(pt, &rng_));
  EXPECT_EQ(cts.size(), 32u);
}

TEST_F(NDetTest, EmptyPlaintext) {
  Bytes ct = scheme_->Encrypt({}, &rng_);
  EXPECT_TRUE(scheme_->Decrypt(ct).ValueOrDie().empty());
}

TEST_F(NDetTest, TamperingDetected) {
  Bytes ct = scheme_->Encrypt(rng_.NextBytes(40), &rng_);
  for (size_t pos : {size_t{0}, size_t{20}, ct.size() - 1}) {
    Bytes bad = ct;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(scheme_->Decrypt(bad).ok()) << "flip at " << pos;
  }
}

TEST_F(NDetTest, TruncationDetected) {
  Bytes ct = scheme_->Encrypt(rng_.NextBytes(40), &rng_);
  ct.resize(ct.size() - 1);
  EXPECT_FALSE(scheme_->Decrypt(ct).ok());
  EXPECT_FALSE(scheme_->Decrypt(Bytes(5)).ok());
}

TEST_F(NDetTest, WrongKeyFails) {
  Bytes pt = rng_.NextBytes(16);
  Bytes ct = scheme_->Encrypt(pt, &rng_);
  auto other = NDetEnc::Create(rng_.NextBytes(16)).ValueOrDie();
  EXPECT_FALSE(other.Decrypt(ct).ok());
}

// ---------------------------------------------------------------------------
// Det_Enc

class DetTest : public ::testing::Test {
 protected:
  DetTest() : rng_(6) {
    scheme_.emplace(DetEnc::Create(rng_.NextBytes(16)).ValueOrDie());
  }
  Rng rng_;
  std::optional<DetEnc> scheme_;
};

TEST_F(DetTest, RoundTrip) {
  Bytes pt = rng_.NextBytes(33);
  Bytes ct = scheme_->Encrypt(pt);
  EXPECT_EQ(ct.size(), pt.size() + DetEnc::kOverhead);
  EXPECT_EQ(scheme_->Decrypt(ct).ValueOrDie(), pt);
}

TEST_F(DetTest, Deterministic) {
  // The property the Noise protocols rely on: SSI can group by ciphertext.
  Bytes pt = rng_.NextBytes(20);
  EXPECT_EQ(scheme_->Encrypt(pt), scheme_->Encrypt(pt));
}

TEST_F(DetTest, DistinctPlaintextsDistinctCiphertexts) {
  std::set<Bytes> cts;
  for (int i = 0; i < 64; ++i) cts.insert(scheme_->Encrypt(rng_.NextBytes(12)));
  EXPECT_EQ(cts.size(), 64u);
}

TEST_F(DetTest, TamperingDetected) {
  Bytes ct = scheme_->Encrypt(rng_.NextBytes(40));
  Bytes bad = ct;
  bad[ct.size() / 2] ^= 0x80;
  EXPECT_FALSE(scheme_->Decrypt(bad).ok());
}

TEST_F(DetTest, KeySeparatedFromNDet) {
  // Same master key: Det and nDet ciphertexts must not be interchangeable.
  Bytes master = rng_.NextBytes(16);
  auto det = DetEnc::Create(master).ValueOrDie();
  auto ndet = NDetEnc::Create(master).ValueOrDie();
  Bytes pt = rng_.NextBytes(24);
  EXPECT_FALSE(det.Decrypt(ndet.Encrypt(pt, &rng_)).ok());
  EXPECT_FALSE(ndet.Decrypt(det.Encrypt(pt)).ok());
}

// ---------------------------------------------------------------------------
// CTR mode

TEST(CtrTest, KnownKeystreamXorProperty) {
  Rng rng(7);
  auto aes = Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes iv = rng.NextBytes(16);
  Bytes a = rng.NextBytes(50), b(50), back(50);
  CtrXor(aes, iv.data(), a.data(), a.size(), b.data());
  CtrXor(aes, iv.data(), b.data(), b.size(), back.data());
  EXPECT_EQ(back, a);  // CTR is an involution under the same IV
  EXPECT_NE(b, a);
}

// ---------------------------------------------------------------------------
// KeyStore

TEST(KeyStoreTest, SchemesAgreeAcrossInstancesWithSameKeys) {
  Rng rng(8);
  Bytes k1 = rng.NextBytes(16), k2 = rng.NextBytes(16);
  auto store_a = KeyStore::Create(k1, k2).ValueOrDie();
  auto store_b = KeyStore::Create(k1, k2).ValueOrDie();
  Bytes pt = rng.NextBytes(30);
  Bytes ct = store_a->k2_ndet().Encrypt(pt, &rng);
  EXPECT_EQ(store_b->k2_ndet().Decrypt(ct).ValueOrDie(), pt);
  EXPECT_EQ(store_a->k2_det().Encrypt(pt), store_b->k2_det().Encrypt(pt));
  EXPECT_EQ(store_a->k2_hash(), store_b->k2_hash());
}

TEST(KeyStoreTest, K1AndK2AreIndependentChannels) {
  auto store = KeyStore::CreateForTest(99);
  Rng rng(9);
  Bytes pt = rng.NextBytes(16);
  Bytes under_k1 = store->k1_ndet().Encrypt(pt, &rng);
  EXPECT_FALSE(store->k2_ndet().Decrypt(under_k1).ok());
}

TEST(KeyStoreTest, RejectsBadKeySizes) {
  EXPECT_FALSE(KeyStore::Create(Bytes(8), Bytes(16)).ok());
  EXPECT_FALSE(KeyStore::Create(Bytes(16), Bytes(17)).ok());
}


// ---------------------------------------------------------------------------
// Key provisioning (footnote 7)

TEST(ProvisioningTest, WrapUnwrapRoundTrip) {
  Rng rng(20);
  auto provisioner =
      KeyProvisioner::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes device_key = rng.NextBytes(16);
  Bytes wrapped = provisioner.WrapFor(device_key, &rng);

  auto bundle = KeyProvisioner::Unwrap(device_key, wrapped).ValueOrDie();
  EXPECT_EQ(bundle.epoch, 0u);
  // The unwrapped store interoperates with the operator's store.
  auto op_keys = provisioner.CurrentKeys().ValueOrDie();
  Bytes pt = rng.NextBytes(24);
  Bytes ct = bundle.keys->k2_ndet().Encrypt(pt, &rng);
  EXPECT_EQ(op_keys->k2_ndet().Decrypt(ct).ValueOrDie(), pt);
}

TEST(ProvisioningTest, OnlyTheTargetDeviceCanUnwrap) {
  Rng rng(21);
  auto provisioner =
      KeyProvisioner::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes alice = rng.NextBytes(16), bob = rng.NextBytes(16);
  Bytes wrapped = provisioner.WrapFor(alice, &rng);
  EXPECT_TRUE(KeyProvisioner::Unwrap(alice, wrapped).ok());
  EXPECT_FALSE(KeyProvisioner::Unwrap(bob, wrapped).ok());
  Bytes tampered = wrapped;
  tampered[5] ^= 1;
  EXPECT_FALSE(KeyProvisioner::Unwrap(alice, tampered).ok());
}

TEST(ProvisioningTest, RotationChangesKeysButKeepsOldEpochsDerivable) {
  Rng rng(22);
  Bytes seed = rng.NextBytes(16);
  auto provisioner = KeyProvisioner::Create(seed).ValueOrDie();
  Bytes k1_e0 = provisioner.K1ForEpoch(0);
  provisioner.Rotate();
  EXPECT_EQ(provisioner.epoch(), 1u);
  EXPECT_NE(provisioner.K1ForEpoch(1), k1_e0);
  EXPECT_EQ(provisioner.K1ForEpoch(0), k1_e0);  // deterministic derivation

  // A device provisioned after rotation gets epoch-1 keys; ciphertexts from
  // epoch 0 do not decrypt under them.
  Bytes device_key = rng.NextBytes(16);
  auto bundle = KeyProvisioner::Unwrap(device_key,
                                       provisioner.WrapFor(device_key, &rng))
                    .ValueOrDie();
  EXPECT_EQ(bundle.epoch, 1u);
  auto old_keys = KeyStore::Create(provisioner.K1ForEpoch(0),
                                   provisioner.K2ForEpoch(0))
                      .ValueOrDie();
  Bytes ct = old_keys->k1_ndet().Encrypt(rng.NextBytes(16), &rng);
  EXPECT_FALSE(bundle.keys->k1_ndet().Decrypt(ct).ok());
}

TEST(ProvisioningTest, BadSeedRejected) {
  EXPECT_FALSE(KeyProvisioner::Create(Bytes(8)).ok());
}

}  // namespace
}  // namespace tcells::crypto
