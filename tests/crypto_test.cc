// Tests for src/crypto: AES/SHA/HMAC against published vectors, plus the
// security-relevant properties of the nDet_Enc / Det_Enc schemes.
#include <gtest/gtest.h>

#include <set>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/aes_dispatch.h"
#include "crypto/encryption.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/provisioning.h"
#include "crypto/sha256.h"

namespace tcells::crypto {
namespace {

Bytes Hex(const char* s) { return FromHex(s).ValueOrDie(); }

// ---------------------------------------------------------------------------
// AES-128 (FIPS-197 Appendix C.1)

TEST(AesTest, Fips197Vector) {
  Bytes key = Hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  auto aes = Aes128::Create(key).ValueOrDie();
  uint8_t block[16];
  std::copy(pt.begin(), pt.end(), block);
  aes.EncryptBlock(block);
  EXPECT_EQ(ToHex(block, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.DecryptBlock(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST(AesTest, EncryptDecryptRoundTripRandom) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    auto aes = Aes128::Create(rng.NextBytes(16)).ValueOrDie();
    Bytes pt = rng.NextBytes(16);
    uint8_t block[16];
    std::copy(pt.begin(), pt.end(), block);
    aes.EncryptBlock(block);
    EXPECT_NE(Bytes(block, block + 16), pt);  // 2^-128 false-failure odds
    aes.DecryptBlock(block);
    EXPECT_EQ(Bytes(block, block + 16), pt);
  }
}

TEST(AesTest, RejectsWrongKeySize) {
  EXPECT_FALSE(Aes128::Create(Bytes(15)).ok());
  EXPECT_FALSE(Aes128::Create(Bytes(32)).ok());
}

// ---------------------------------------------------------------------------
// Backend-parameterized known-answer tests: every KAT below runs once per
// dispatch path, so the T-table cipher and the AES-NI cipher are both pinned
// to the published vectors on machines that have the hardware.

class AesBackendTest : public ::testing::TestWithParam<AesBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == AesBackend::kAesNi && !AesNiAvailable()) {
      GTEST_SKIP() << "AES-NI not available on this machine";
    }
    ForceAesBackend(GetParam());
    ASSERT_EQ(ActiveAesBackend(), GetParam());
  }
  void TearDown() override { ForceAesBackend(std::nullopt); }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, AesBackendTest,
                         ::testing::Values(AesBackend::kPortable,
                                           AesBackend::kAesNi),
                         [](const auto& info) {
                           return std::string(AesBackendName(info.param));
                         });

TEST_P(AesBackendTest, Fips197Vector) {
  Bytes key = Hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  auto aes = Aes128::Create(key).ValueOrDie();
  uint8_t block[16];
  std::copy(pt.begin(), pt.end(), block);
  aes.EncryptBlock(block);
  EXPECT_EQ(ToHex(block, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.DecryptBlock(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST_P(AesBackendTest, Sp800_38aCtrVector) {
  // NIST SP 800-38A F.5.1/F.5.2: AES-128-CTR, four-block message.
  Bytes key = Hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes counter = Hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = Hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Bytes want_ct = Hex(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  auto aes = Aes128::Create(key).ValueOrDie();
  Bytes got(pt.size());
  CtrXor(aes, counter.data(), pt.data(), pt.size(), got.data());
  EXPECT_EQ(ToHex(got.data(), got.size()), ToHex(want_ct.data(), want_ct.size()));
  // Decryption is the same XOR.
  Bytes back(pt.size());
  CtrXor(aes, counter.data(), got.data(), got.size(), back.data());
  EXPECT_EQ(back, pt);
}

TEST_P(AesBackendTest, BatchMatchesBlockAtATime) {
  Rng rng(11);
  auto aes = Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  // Odd batch sizes cover the 4-wide AES-NI pipeline plus its scalar tail.
  for (size_t nblocks : {1u, 2u, 4u, 5u, 7u, 8u, 13u}) {
    Bytes in = rng.NextBytes(nblocks * 16);
    Bytes batch(in.size()), single = in;
    aes.EncryptBlocks(in.data(), batch.data(), nblocks);
    for (size_t b = 0; b < nblocks; ++b) aes.EncryptBlock(single.data() + 16 * b);
    EXPECT_EQ(batch, single) << "encrypt, nblocks=" << nblocks;
    aes.DecryptBlocks(batch.data(), batch.data(), nblocks);
    EXPECT_EQ(batch, in) << "decrypt, nblocks=" << nblocks;
  }
}

TEST_P(AesBackendTest, SchemesRoundTripSpanForms) {
  Rng rng(12);
  auto ndet = NDetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  auto det = DetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  // Sizes straddling the CTR batch width (8 blocks = 128 bytes).
  for (size_t n : {0u, 1u, 15u, 16u, 100u, 127u, 128u, 129u, 1000u}) {
    Bytes pt = rng.NextBytes(n);
    Bytes ct, back;
    ndet.Encrypt(pt.data(), pt.size(), &rng, &ct);
    ASSERT_TRUE(ndet.Decrypt(ct.data(), ct.size(), &back).ok()) << n;
    EXPECT_EQ(back, pt) << n;
    det.Encrypt(pt.data(), pt.size(), &ct);
    ASSERT_TRUE(det.Decrypt(ct.data(), ct.size(), &back).ok()) << n;
    EXPECT_EQ(back, pt) << n;
  }
}

// ---------------------------------------------------------------------------
// Portable-vs-hardware differential: on AES-NI machines, both paths must
// produce byte-identical output for random keys and messages. (This is the
// property that makes dispatch invisible to the obs byte-identity suite.)

TEST(AesDispatchTest, BackendsAgreeOnRandomInputs) {
  if (!AesNiAvailable()) GTEST_SKIP() << "AES-NI not available";
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes key = rng.NextBytes(16);
    auto aes = Aes128::Create(key).ValueOrDie();
    size_t nblocks = 1 + rng.NextBelow(16);
    Bytes in = rng.NextBytes(nblocks * 16);
    Bytes iv = rng.NextBytes(16);
    Bytes msg = rng.NextBytes(1 + rng.NextBelow(300));

    ForceAesBackend(AesBackend::kPortable);
    Bytes enc_p(in.size()), dec_p(in.size()), ctr_p(msg.size());
    aes.EncryptBlocks(in.data(), enc_p.data(), nblocks);
    aes.DecryptBlocks(in.data(), dec_p.data(), nblocks);
    CtrXor(aes, iv.data(), msg.data(), msg.size(), ctr_p.data());

    ForceAesBackend(AesBackend::kAesNi);
    Bytes enc_n(in.size()), dec_n(in.size()), ctr_n(msg.size());
    aes.EncryptBlocks(in.data(), enc_n.data(), nblocks);
    aes.DecryptBlocks(in.data(), dec_n.data(), nblocks);
    CtrXor(aes, iv.data(), msg.data(), msg.size(), ctr_n.data());

    ForceAesBackend(std::nullopt);
    EXPECT_EQ(enc_p, enc_n) << "trial " << trial;
    EXPECT_EQ(dec_p, dec_n) << "trial " << trial;
    EXPECT_EQ(ctr_p, ctr_n) << "trial " << trial;
  }
}

TEST(AesDispatchTest, SchemesAgreeAcrossBackends) {
  if (!AesNiAvailable()) GTEST_SKIP() << "AES-NI not available";
  Rng rng(14);
  Bytes master = rng.NextBytes(16);
  auto ndet = NDetEnc::Create(master).ValueOrDie();
  auto det = DetEnc::Create(master).ValueOrDie();
  for (int trial = 0; trial < 10; ++trial) {
    Bytes pt = rng.NextBytes(1 + rng.NextBelow(500));
    uint64_t iv_seed = rng.Next();

    // Identical Rng streams so nDet draws the same IV on both paths.
    ForceAesBackend(AesBackend::kPortable);
    Rng iv_rng_p(iv_seed);
    Bytes nct_p = ndet.Encrypt(pt, &iv_rng_p);
    Bytes dct_p = det.Encrypt(pt);

    ForceAesBackend(AesBackend::kAesNi);
    Rng iv_rng_n(iv_seed);
    Bytes nct_n = ndet.Encrypt(pt, &iv_rng_n);
    Bytes dct_n = det.Encrypt(pt);
    // Cross-decrypt: hardware-made ciphertext opened by the portable path.
    ForceAesBackend(AesBackend::kPortable);
    EXPECT_EQ(ndet.Decrypt(nct_n).ValueOrDie(), pt);
    EXPECT_EQ(det.Decrypt(dct_n).ValueOrDie(), pt);

    ForceAesBackend(std::nullopt);
    EXPECT_EQ(nct_p, nct_n) << "trial " << trial;
    EXPECT_EQ(dct_p, dct_n) << "trial " << trial;
  }
}

TEST(AesDispatchTest, ForcingUnavailableBackendFallsBack) {
  if (AesNiAvailable()) GTEST_SKIP() << "only meaningful without AES-NI";
  ForceAesBackend(AesBackend::kAesNi);
  EXPECT_EQ(ActiveAesBackend(), AesBackend::kPortable);
  ForceAesBackend(std::nullopt);
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 examples)

TEST(Sha256Test, EmptyString) {
  auto d = Sha256::Hash({});
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  Bytes abc = {'a', 'b', 'c'};
  auto d = Sha256::Hash(abc);
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  Bytes data(msg.begin(), msg.end());
  auto d = Sha256::Hash(data);
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(2);
  Bytes data = rng.NextBytes(1000);
  Sha256 inc;
  size_t pos = 0;
  for (size_t chunk : {1u, 7u, 63u, 64u, 65u, 800u}) {
    size_t take = std::min(chunk, data.size() - pos);
    inc.Update(data.data() + pos, take);
    pos += take;
  }
  inc.Update(data.data() + pos, data.size() - pos);
  auto a = inc.Finish();
  auto b = Sha256::Hash(data);
  EXPECT_EQ(ToHex(a.data(), a.size()), ToHex(b.data(), b.size()));
}

// ---------------------------------------------------------------------------
// HMAC-SHA-256 (RFC 4231)

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = {'J', 'e', 'f', 'e'};
  std::string msg = "what do ya want for nothing?";
  Bytes data(msg.begin(), msg.end());
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes data = {'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'};
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  Bytes key(131, 0xaa);
  std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  Bytes data(msg.begin(), msg.end());
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case4) {
  Bytes key = Hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  Bytes data(50, 0xcd);
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(ToHex(mac.data(), mac.size()),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacStateTest, MatchesOneShotHmac) {
  Rng rng(30);
  for (size_t key_len : {0u, 4u, 16u, 64u, 131u}) {
    Bytes key = rng.NextBytes(key_len);
    HmacState state(key);
    for (size_t n : {0u, 1u, 55u, 64u, 200u}) {
      Bytes data = rng.NextBytes(n);
      auto cached = state.Mac(data);
      auto oneshot = HmacSha256(key, data);
      EXPECT_EQ(ToHex(cached.data(), cached.size()),
                ToHex(oneshot.data(), oneshot.size()))
          << "key_len=" << key_len << " n=" << n;
    }
  }
}

TEST(HmacStateTest, ReusableAcrossMessages) {
  Rng rng(31);
  HmacState state(rng.NextBytes(16));
  Bytes a = rng.NextBytes(20), b = rng.NextBytes(20);
  auto ma1 = state.Mac(a);
  auto mb = state.Mac(b);
  auto ma2 = state.Mac(a);  // midstates not consumed by earlier Mac calls
  EXPECT_EQ(ToHex(ma1.data(), ma1.size()), ToHex(ma2.data(), ma2.size()));
  EXPECT_NE(ToHex(ma1.data(), ma1.size()), ToHex(mb.data(), mb.size()));
}

TEST(ConstantTimeEqualTest, ComparesCorrectly) {
  Rng rng(32);
  Bytes a = rng.NextBytes(32);
  Bytes b = a;
  EXPECT_TRUE(ConstantTimeEqual(a.data(), b.data(), a.size()));
  EXPECT_TRUE(ConstantTimeEqual(a.data(), b.data(), 0));
  for (size_t pos : {0u, 15u, 31u}) {
    Bytes c = a;
    c[pos] ^= 0x40;
    EXPECT_FALSE(ConstantTimeEqual(a.data(), c.data(), a.size())) << pos;
  }
}

TEST(KeyDerivationTest, LabelsSeparateKeys) {
  Rng rng(3);
  Bytes master = rng.NextBytes(16);
  Bytes a = DeriveKey(master, "enc");
  Bytes b = DeriveKey(master, "mac");
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DeriveKey(master, "enc"));  // deterministic
}

TEST(KeyedHashTest, DeterministicAndKeyed) {
  Rng rng(4);
  Bytes k1 = rng.NextBytes(16), k2 = rng.NextBytes(16);
  Bytes data = rng.NextBytes(32);
  EXPECT_EQ(KeyedHash64(k1, data), KeyedHash64(k1, data));
  EXPECT_NE(KeyedHash64(k1, data), KeyedHash64(k2, data));
}

// ---------------------------------------------------------------------------
// nDet_Enc

class NDetTest : public ::testing::Test {
 protected:
  NDetTest() : rng_(5) {
    scheme_.emplace(NDetEnc::Create(rng_.NextBytes(16)).ValueOrDie());
  }
  Rng rng_;
  std::optional<NDetEnc> scheme_;
};

TEST_F(NDetTest, RoundTrip) {
  Bytes pt = rng_.NextBytes(100);
  Bytes ct = scheme_->Encrypt(pt, &rng_);
  EXPECT_EQ(ct.size(), pt.size() + NDetEnc::kOverhead);
  EXPECT_EQ(scheme_->Decrypt(ct).ValueOrDie(), pt);
}

TEST_F(NDetTest, SameMessageDifferentCiphertexts) {
  // The property nDet_Enc exists for: no frequency analysis possible.
  Bytes pt = rng_.NextBytes(24);
  std::set<Bytes> cts;
  for (int i = 0; i < 32; ++i) cts.insert(scheme_->Encrypt(pt, &rng_));
  EXPECT_EQ(cts.size(), 32u);
}

TEST_F(NDetTest, EmptyPlaintext) {
  Bytes ct = scheme_->Encrypt({}, &rng_);
  EXPECT_TRUE(scheme_->Decrypt(ct).ValueOrDie().empty());
}

TEST_F(NDetTest, TamperingDetected) {
  Bytes ct = scheme_->Encrypt(rng_.NextBytes(40), &rng_);
  for (size_t pos : {size_t{0}, size_t{20}, ct.size() - 1}) {
    Bytes bad = ct;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(scheme_->Decrypt(bad).ok()) << "flip at " << pos;
  }
}

TEST_F(NDetTest, TruncationDetected) {
  Bytes ct = scheme_->Encrypt(rng_.NextBytes(40), &rng_);
  ct.resize(ct.size() - 1);
  EXPECT_FALSE(scheme_->Decrypt(ct).ok());
  EXPECT_FALSE(scheme_->Decrypt(Bytes(5)).ok());
}

TEST_F(NDetTest, SpanDecryptLeavesOutputUntouchedOnAuthFailure) {
  Bytes ct = scheme_->Encrypt(rng_.NextBytes(40), &rng_);
  Bytes bad = ct;
  bad[bad.size() / 2] ^= 0x01;
  Bytes out = {0xde, 0xad};
  EXPECT_FALSE(scheme_->Decrypt(bad.data(), bad.size(), &out).ok());
  EXPECT_EQ(out, Bytes({0xde, 0xad}));  // no plaintext released before auth
  EXPECT_TRUE(scheme_->Decrypt(ct.data(), ct.size(), &out).ok());
}

TEST_F(NDetTest, WrongKeyFails) {
  Bytes pt = rng_.NextBytes(16);
  Bytes ct = scheme_->Encrypt(pt, &rng_);
  auto other = NDetEnc::Create(rng_.NextBytes(16)).ValueOrDie();
  EXPECT_FALSE(other.Decrypt(ct).ok());
}

// Hostile-input hardening regressions (pinned by fuzz/fuzz_crypto.cc):
// ciphertexts shorter than the IV+tag framing — including the "tag length
// zero" family where the buffer ends inside or right at the tag — must be
// rejected via Status, never read out of bounds.
TEST_F(NDetTest, UndersizedCiphertextsRejected) {
  // kOverhead = IV(16) + tag(8) = 24: everything below that cannot even hold
  // the framing. 24 exact-size garbage fails authentication instead.
  for (size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16}, size_t{17},
                   size_t{23}}) {
    auto result = scheme_->Decrypt(Bytes(n, 0xab));
    ASSERT_FALSE(result.ok()) << "n=" << n;
    EXPECT_TRUE(result.status().IsCorruption()) << "n=" << n;
  }
  EXPECT_FALSE(scheme_->Decrypt(Bytes(NDetEnc::kOverhead, 0xab)).ok());

  // A valid ciphertext truncated to exactly IV size (tag and body gone).
  Bytes ct = scheme_->Encrypt(rng_.NextBytes(8), &rng_);
  ct.resize(NDetEnc::kIvSize);
  EXPECT_FALSE(scheme_->Decrypt(ct).ok());
}

// ---------------------------------------------------------------------------
// Det_Enc

class DetTest : public ::testing::Test {
 protected:
  DetTest() : rng_(6) {
    scheme_.emplace(DetEnc::Create(rng_.NextBytes(16)).ValueOrDie());
  }
  Rng rng_;
  std::optional<DetEnc> scheme_;
};

TEST_F(DetTest, RoundTrip) {
  Bytes pt = rng_.NextBytes(33);
  Bytes ct = scheme_->Encrypt(pt);
  EXPECT_EQ(ct.size(), pt.size() + DetEnc::kOverhead);
  EXPECT_EQ(scheme_->Decrypt(ct).ValueOrDie(), pt);
}

TEST_F(DetTest, Deterministic) {
  // The property the Noise protocols rely on: SSI can group by ciphertext.
  Bytes pt = rng_.NextBytes(20);
  EXPECT_EQ(scheme_->Encrypt(pt), scheme_->Encrypt(pt));
}

TEST_F(DetTest, DistinctPlaintextsDistinctCiphertexts) {
  std::set<Bytes> cts;
  for (int i = 0; i < 64; ++i) cts.insert(scheme_->Encrypt(rng_.NextBytes(12)));
  EXPECT_EQ(cts.size(), 64u);
}

TEST_F(DetTest, TamperingDetected) {
  Bytes ct = scheme_->Encrypt(rng_.NextBytes(40));
  Bytes bad = ct;
  bad[ct.size() / 2] ^= 0x80;
  EXPECT_FALSE(scheme_->Decrypt(bad).ok());
}

TEST_F(DetTest, UndersizedCiphertextsRejected) {
  // kOverhead = SIV(16): shorter buffers cannot hold the synthetic IV.
  for (size_t n : {size_t{0}, size_t{1}, size_t{8}, size_t{15}}) {
    auto result = scheme_->Decrypt(Bytes(n, 0xab));
    ASSERT_FALSE(result.ok()) << "n=" << n;
    EXPECT_TRUE(result.status().IsCorruption()) << "n=" << n;
  }
  // Exactly SIV-sized garbage (empty-body claim) fails SIV verification.
  EXPECT_FALSE(scheme_->Decrypt(Bytes(DetEnc::kOverhead, 0xab)).ok());
}

TEST_F(DetTest, KeySeparatedFromNDet) {
  // Same master key: Det and nDet ciphertexts must not be interchangeable.
  Bytes master = rng_.NextBytes(16);
  auto det = DetEnc::Create(master).ValueOrDie();
  auto ndet = NDetEnc::Create(master).ValueOrDie();
  Bytes pt = rng_.NextBytes(24);
  EXPECT_FALSE(det.Decrypt(ndet.Encrypt(pt, &rng_)).ok());
  EXPECT_FALSE(ndet.Decrypt(det.Encrypt(pt)).ok());
}

// ---------------------------------------------------------------------------
// CTR mode

TEST(CtrTest, KnownKeystreamXorProperty) {
  Rng rng(7);
  auto aes = Aes128::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes iv = rng.NextBytes(16);
  Bytes a = rng.NextBytes(50), b(50), back(50);
  CtrXor(aes, iv.data(), a.data(), a.size(), b.data());
  CtrXor(aes, iv.data(), b.data(), b.size(), back.data());
  EXPECT_EQ(back, a);  // CTR is an involution under the same IV
  EXPECT_NE(b, a);
}

// ---------------------------------------------------------------------------
// KeyStore

TEST(KeyStoreTest, SchemesAgreeAcrossInstancesWithSameKeys) {
  Rng rng(8);
  Bytes k1 = rng.NextBytes(16), k2 = rng.NextBytes(16);
  auto store_a = KeyStore::Create(k1, k2).ValueOrDie();
  auto store_b = KeyStore::Create(k1, k2).ValueOrDie();
  Bytes pt = rng.NextBytes(30);
  Bytes ct = store_a->k2_ndet().Encrypt(pt, &rng);
  EXPECT_EQ(store_b->k2_ndet().Decrypt(ct).ValueOrDie(), pt);
  EXPECT_EQ(store_a->k2_det().Encrypt(pt), store_b->k2_det().Encrypt(pt));
  EXPECT_EQ(store_a->k2_hash(), store_b->k2_hash());
}

TEST(KeyStoreTest, K1AndK2AreIndependentChannels) {
  auto store = KeyStore::CreateForTest(99);
  Rng rng(9);
  Bytes pt = rng.NextBytes(16);
  Bytes under_k1 = store->k1_ndet().Encrypt(pt, &rng);
  EXPECT_FALSE(store->k2_ndet().Decrypt(under_k1).ok());
}

TEST(KeyStoreTest, RejectsBadKeySizes) {
  EXPECT_FALSE(KeyStore::Create(Bytes(8), Bytes(16)).ok());
  EXPECT_FALSE(KeyStore::Create(Bytes(16), Bytes(17)).ok());
}


// ---------------------------------------------------------------------------
// Key provisioning (footnote 7)

TEST(ProvisioningTest, WrapUnwrapRoundTrip) {
  Rng rng(20);
  auto provisioner =
      KeyProvisioner::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes device_key = rng.NextBytes(16);
  Bytes wrapped = provisioner.WrapFor(device_key, &rng);

  auto bundle = KeyProvisioner::Unwrap(device_key, wrapped).ValueOrDie();
  EXPECT_EQ(bundle.epoch, 0u);
  // The unwrapped store interoperates with the operator's store.
  auto op_keys = provisioner.CurrentKeys().ValueOrDie();
  Bytes pt = rng.NextBytes(24);
  Bytes ct = bundle.keys->k2_ndet().Encrypt(pt, &rng);
  EXPECT_EQ(op_keys->k2_ndet().Decrypt(ct).ValueOrDie(), pt);
}

TEST(ProvisioningTest, OnlyTheTargetDeviceCanUnwrap) {
  Rng rng(21);
  auto provisioner =
      KeyProvisioner::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes alice = rng.NextBytes(16), bob = rng.NextBytes(16);
  Bytes wrapped = provisioner.WrapFor(alice, &rng);
  EXPECT_TRUE(KeyProvisioner::Unwrap(alice, wrapped).ok());
  EXPECT_FALSE(KeyProvisioner::Unwrap(bob, wrapped).ok());
  Bytes tampered = wrapped;
  tampered[5] ^= 1;
  EXPECT_FALSE(KeyProvisioner::Unwrap(alice, tampered).ok());
}

TEST(ProvisioningTest, RotationChangesKeysButKeepsOldEpochsDerivable) {
  Rng rng(22);
  Bytes seed = rng.NextBytes(16);
  auto provisioner = KeyProvisioner::Create(seed).ValueOrDie();
  Bytes k1_e0 = provisioner.K1ForEpoch(0);
  provisioner.Rotate();
  EXPECT_EQ(provisioner.epoch(), 1u);
  EXPECT_NE(provisioner.K1ForEpoch(1), k1_e0);
  EXPECT_EQ(provisioner.K1ForEpoch(0), k1_e0);  // deterministic derivation

  // A device provisioned after rotation gets epoch-1 keys; ciphertexts from
  // epoch 0 do not decrypt under them.
  Bytes device_key = rng.NextBytes(16);
  auto bundle = KeyProvisioner::Unwrap(device_key,
                                       provisioner.WrapFor(device_key, &rng))
                    .ValueOrDie();
  EXPECT_EQ(bundle.epoch, 1u);
  auto old_keys = KeyStore::Create(provisioner.K1ForEpoch(0),
                                   provisioner.K2ForEpoch(0))
                      .ValueOrDie();
  Bytes ct = old_keys->k1_ndet().Encrypt(rng.NextBytes(16), &rng);
  EXPECT_FALSE(bundle.keys->k1_ndet().Decrypt(ct).ok());
}

TEST(ProvisioningTest, BadSeedRejected) {
  EXPECT_FALSE(KeyProvisioner::Create(Bytes(8)).ok());
}

}  // namespace
}  // namespace tcells::crypto
