// Tests for the cost model (§6.1) and the exposure analysis (§5).
#include <gtest/gtest.h>

#include <set>

#include "analysis/compromise.h"
#include "analysis/cost_model.h"
#include "analysis/exposure.h"
#include "analysis/tradeoff.h"
#include "sim/device_model.h"

namespace tcells::analysis {
namespace {

CostParams PaperParams() {
  CostParams p;  // defaults are the paper's fixed parameters
  return p;
}

// ---------------------------------------------------------------------------
// Cost model

TEST(CostModelTest, SAggOptimalAlphaMinimizesTq) {
  // f(alpha) = (alpha+1) log_alpha(Nt/G) is minimized near 3.6 (§6.1.1).
  CostParams p = PaperParams();
  p.available_fraction = 1.0;  // remove wave effects
  auto tq_at = [&](double alpha) {
    CostParams q = p;
    q.alpha = alpha;
    return SAggCost(q).tq_seconds;
  };
  double at_opt = tq_at(SAggOptimalAlpha());
  EXPECT_LE(at_opt, tq_at(2.0) * 1.15);
  EXPECT_LT(at_opt, tq_at(10.0));
  EXPECT_LT(at_opt, tq_at(100.0));
}

TEST(CostModelTest, SAggTqGrowsWithG) {
  // Fig 10e: S_Agg is the protocol whose T_Q grows with G.
  CostParams p = PaperParams();
  double small = SAggCost(p).tq_seconds;
  p.groups = 1e5;
  double large = SAggCost(p).tq_seconds;
  EXPECT_GT(large, small * 10);
}

TEST(CostModelTest, TagProtocolsTqShrinksWithG) {
  // Fig 10e: for fixed-noise and histogram protocols, T_Q falls as G grows
  // (groups get smaller and are processed independently in parallel).
  for (const char* proto : {"R2_Noise", "ED_Hist"}) {
    CostParams p = PaperParams();
    p.groups = 10;
    double few_groups = CostFor(proto, p).tq_seconds;
    p.groups = 1e5;
    double many_groups = CostFor(proto, p).tq_seconds;
    EXPECT_LT(many_groups, few_groups) << proto;
  }
}

TEST(CostModelTest, CNoiseDegradesWithG) {
  // C_Noise's noise volume is n_d - 1 ≈ G - 1 per true tuple: unlike the
  // fixed-nf flavours, growing G inflates the noise and hurts T_Q (§4.3
  // "C_Noise also incurs large noise if G is big").
  CostParams p = PaperParams();
  p.groups = 10;
  double few_groups = CNoiseCost(p).tq_seconds;
  p.groups = 1e5;
  double many_groups = CNoiseCost(p).tq_seconds;
  EXPECT_GT(many_groups, few_groups);
}

TEST(CostModelTest, SAggBeatsEdHistAtSmallGAndLosesAtLargeG) {
  // §6.4: S_Agg outperforms ED_Hist for G < ~10, is dominated for larger G.
  CostParams p = PaperParams();
  p.groups = 2;
  EXPECT_LT(SAggCost(p).tq_seconds, EdHistCost(p).tq_seconds);
  p.groups = 1e4;
  EXPECT_GT(SAggCost(p).tq_seconds, EdHistCost(p).tq_seconds);
}

TEST(CostModelTest, NoiseLoadDominates) {
  // Fig 10c/d: Noise protocols carry the largest total load (fake tuples),
  // and R1000 carries more than R2.
  CostParams p = PaperParams();
  double s_agg = SAggCost(p).load_bytes;
  double ed = EdHistCost(p).load_bytes;
  CostParams p2 = p;
  p2.nf = 2;
  double r2 = RnfNoiseCost(p2).load_bytes;
  CostParams p1000 = p;
  p1000.nf = 1000;
  double r1000 = RnfNoiseCost(p1000).load_bytes;
  EXPECT_GT(r1000, r2);
  EXPECT_GT(r2, s_agg);
  EXPECT_GT(r1000, ed);
}

TEST(CostModelTest, NoiseLoadConstantInG) {
  // Fig 10c: noise volume depends on N_t only, so Load_Q stays ~constant
  // as G grows.
  CostParams p = PaperParams();
  p.nf = 1000;
  p.groups = 10;
  double a = RnfNoiseCost(p).load_bytes;
  p.groups = 1e5;
  double b = RnfNoiseCost(p).load_bytes;
  EXPECT_NEAR(a / b, 1.0, 0.05);
}

TEST(CostModelTest, PtdsGrowsWithGForTagProtocols) {
  // Fig 10a: tag-based protocols can mobilize ~linearly more TDSs as G grows;
  // S_Agg mobilizes fewer.
  CostParams p = PaperParams();
  p.groups = 10;
  double ed10 = EdHistCost(p).ptds;
  double sagg10 = SAggCost(p).ptds;
  p.groups = 1e4;
  double ed1e4 = EdHistCost(p).ptds;
  double sagg1e4 = SAggCost(p).ptds;
  EXPECT_GT(ed1e4, ed10 * 10);
  EXPECT_LT(sagg1e4, sagg10);
}

TEST(CostModelTest, SAggInsensitiveToAvailabilityOthersNot) {
  // Fig 10 i/e/j (§6.3 elasticity): scarcity hurts every protocol except
  // S_Agg, whose parallelism demand is small.
  for (const char* proto : {"S_Agg", "C_Noise", "ED_Hist", "R1000_Noise"}) {
    CostParams scarce = PaperParams();
    scarce.available_fraction = 0.01;
    CostParams abundant = PaperParams();
    abundant.available_fraction = 1.0;
    double ratio = CostFor(proto, scarce).tq_seconds /
                   CostFor(proto, abundant).tq_seconds;
    if (std::string(proto) == "S_Agg") {
      EXPECT_NEAR(ratio, 1.0, 1e-9) << proto;
    } else {
      EXPECT_GT(ratio, 2.0) << proto;
    }
  }
}

TEST(CostModelTest, TlocalWorstForSAggAndNoiseAtLargeG) {
  // Fig 10g at large G: S_Agg's T_local grows while ED_Hist's shrinks.
  CostParams p = PaperParams();
  p.groups = 1e5;
  EXPECT_GT(SAggCost(p).tlocal_seconds, EdHistCost(p).tlocal_seconds);
  CostParams p1000 = p;
  p1000.nf = 1000;
  EXPECT_GT(RnfNoiseCost(p1000).tlocal_seconds,
            EdHistCost(p).tlocal_seconds);
}

TEST(CostModelTest, CNoiseEqualsRnfWithDomainCardinality) {
  CostParams p = PaperParams();
  p.domain_cardinality = 500;
  CostParams q = PaperParams();
  q.nf = 499;
  EXPECT_DOUBLE_EQ(CNoiseCost(p).load_bytes, RnfNoiseCost(q).load_bytes);
}


TEST(CostModelTest, PhaseCostsFilled) {
  CostParams p = PaperParams();
  for (const char* proto : {"S_Agg", "R2_Noise", "C_Noise", "ED_Hist"}) {
    CostMetrics m = CostFor(proto, p);
    EXPECT_DOUBLE_EQ(m.collection_seconds_per_tds, p.tuple_seconds) << proto;
    EXPECT_GT(m.filtering_seconds, 0.0) << proto;
  }
  // Filtering waves appear when the covering result exceeds availability.
  CostParams starved = PaperParams();
  starved.groups = 1e6;
  starved.available_fraction = 0.01;
  EXPECT_GT(SAggCost(starved).filtering_seconds,
            SAggCost(PaperParams()).filtering_seconds);
}

TEST(CostModelTest, SAggRamFeasibilityBound) {
  // §4.2: with the board's 64 KB RAM and ~48 B per group state, S_Agg stops
  // being feasible somewhere above a thousand groups.
  CostParams p = PaperParams();
  p.groups = 1000;
  EXPECT_TRUE(SAggCost(p).ram_feasible);
  p.groups = 1e5;
  EXPECT_FALSE(SAggCost(p).ram_feasible);
  // Tag-based protocols never trip it.
  EXPECT_TRUE(EdHistCost(p).ram_feasible);
  EXPECT_TRUE(RnfNoiseCost(p).ram_feasible);
  // A bigger device raises the bound.
  p.ram_bytes = 64e6;
  EXPECT_TRUE(SAggCost(p).ram_feasible);
}

TEST(CostModelTest, CostForDispatch) {
  CostParams p = PaperParams();
  EXPECT_GT(CostFor("S_Agg", p).tq_seconds, 0);
  EXPECT_GT(CostFor("R2_Noise", p).load_bytes,
            CostFor("S_Agg", p).load_bytes);
  EXPECT_EQ(CostFor("R1000_Noise", p).load_bytes,
            [&] { CostParams q = p; q.nf = 1000; return RnfNoiseCost(q).load_bytes; }());
  EXPECT_EQ(CostFor("unknown", p).tq_seconds, 0);
}

TEST(DeviceModelTest, PaperCalibration) {
  // §6.2/§6.3: with 16-byte tuples, T_t ≈ 16 µs, dominated by transfer.
  sim::DeviceModel dm;
  double tt = dm.PerTupleSeconds(16);
  EXPECT_NEAR(tt, 16e-6, 4e-6);
  EXPECT_GT(dm.TransferSeconds(16), dm.CryptoSeconds(16) * 5);
  // Fig 9b: for a 4 KB partition, transfer dominates crypto.
  EXPECT_GT(dm.TransferSeconds(4096), dm.CryptoSeconds(4096));
}

// ---------------------------------------------------------------------------
// Exposure (§5)

TEST(ExposureTest, FormulaEndpoints) {
  EXPECT_DOUBLE_EQ(PlaintextExposure(), 1.0);
  EXPECT_DOUBLE_EQ(NDetExposure({5, 5, 8}), 1.0 / 200.0);
  EXPECT_DOUBLE_EQ(CNoiseExposure({10}), 0.1);
  EXPECT_DOUBLE_EQ(EdHistMinExposure({4, 5}), 0.05);
}

TEST(ExposureTest, DetEncUniqueFrequenciesFullyExposed) {
  // Fig 7: when every value has a distinct frequency, matching is certain.
  std::map<int64_t, uint64_t> freq = {{1, 1}, {2, 2}, {3, 3}};
  double eps = ColumnExposure(ClassesForDetEnc(freq));
  EXPECT_DOUBLE_EQ(eps, 1.0);
}

TEST(ExposureTest, DetEncTiedFrequenciesShareAnonymity) {
  // Two values with the same frequency -> each guessed with p = 1/2.
  std::map<int64_t, uint64_t> freq = {{1, 5}, {2, 5}};
  EXPECT_DOUBLE_EQ(ColumnExposure(ClassesForDetEnc(freq)), 0.5);
}

TEST(ExposureTest, FlatHistogramReachesMinimum) {
  // 4 buckets, equal depth, 2 values each: anonymity set = all 8 values.
  std::vector<BucketContent> buckets(4, BucketContent{10, 2});
  EXPECT_DOUBLE_EQ(ColumnExposure(ClassesForHistogram(buckets)), 1.0 / 8.0);
}

TEST(ExposureTest, HistogramExposureDecreasesWithCollision) {
  // Skewed value frequencies. At h=1 (bucket == value) the distinct depths
  // are fully matchable; merging values into equi-depth buckets removes the
  // frequency signal.
  std::vector<BucketContent> h1 = {{40, 1}, {25, 1}, {20, 1}, {15, 1}};
  std::vector<BucketContent> h2 = {{50, 2}, {50, 2}};  // equalized depths
  double exposed = ColumnExposure(ClassesForHistogram(h1));
  double hidden = ColumnExposure(ClassesForHistogram(h2));
  EXPECT_DOUBLE_EQ(exposed, 1.0);       // unique depths -> certain matching
  EXPECT_DOUBLE_EQ(hidden, 1.0 / 4.0);  // anonymity set = all 4 values
  EXPECT_GT(exposed, hidden);
}

TEST(ExposureTest, NoiseReducesExposure) {
  // Skewed truth: distinct frequencies, fully exposed without noise.
  std::map<int64_t, uint64_t> truth = {{1, 100}, {2, 50}, {3, 10}};
  double bare = ColumnExposure(ClassesForDetEnc(truth));
  // Uniform heavy noise equalizes observed frequencies.
  std::map<int64_t, uint64_t> fakes = {{1, 1000 - 100 + 0},
                                       {2, 1000 - 50 + 0},
                                       {3, 1000 - 10 + 0}};
  double noised = ColumnExposure(ClassesForNoise(truth, fakes));
  EXPECT_LT(noised, bare);
  EXPECT_DOUBLE_EQ(noised, 1.0 / 3.0);  // all classes same observed size
}

TEST(ExposureTest, WeightingByTrueTuples) {
  // A class with no true tuples contributes candidates but no weight.
  std::vector<ObservedClass> classes = {
      {10, 10, 1},  // exposed class
      {10, 0, 1},   // noise-only class with same cardinality
  };
  EXPECT_DOUBLE_EQ(ColumnExposure(classes), 0.5);
}

TEST(ExposureTest, EmptyInput) {
  EXPECT_DOUBLE_EQ(ColumnExposure({}), 0.0);
}


// ---------------------------------------------------------------------------
// Compromise model (future-work threat extension)

TEST(CompromiseModelTest, RawFractionUniformAcrossProtocols) {
  CompromiseParams p;
  p.compromised = 100;
  for (const char* proto : {"S_Agg", "R2_Noise", "C_Noise", "ED_Hist"}) {
    EXPECT_DOUBLE_EQ(CompromiseFor(proto, p).raw_tuple_fraction,
                     100.0 / 1e5)
        << proto;
  }
}

TEST(CompromiseModelTest, MonotoneInCompromisedCount) {
  CompromiseParams lo, hi;
  lo.compromised = 10;
  hi.compromised = 1000;
  for (const char* proto : {"S_Agg", "R2_Noise", "ED_Hist"}) {
    EXPECT_LT(CompromiseFor(proto, lo).group_aggregate_fraction,
              CompromiseFor(proto, hi).group_aggregate_fraction)
        << proto;
  }
}

TEST(CompromiseModelTest, SAggHasTheAllGroupsSinglePoint) {
  CompromiseParams p;
  p.compromised = 100;  // 0.1% of the pool
  double s_agg = SAggCompromise(p).all_groups_probability;
  double ed = EdHistCompromise(p).all_groups_probability;
  double noise = NoiseCompromise(p).all_groups_probability;
  // One compromised root leaks everything in S_Agg; tag-based protocols
  // would need ~G independent compromised placements.
  EXPECT_DOUBLE_EQ(s_agg, 1e-3);
  EXPECT_LT(ed, 1e-12);
  EXPECT_LT(noise, 1e-12);
}

TEST(CompromiseModelTest, BoundsAndSaturation) {
  CompromiseParams p;
  p.compromised = p.available;  // everything compromised
  for (const char* proto : {"S_Agg", "R2_Noise", "ED_Hist"}) {
    auto e = CompromiseFor(proto, p);
    EXPECT_DOUBLE_EQ(e.raw_tuple_fraction, 1.0) << proto;
    EXPECT_DOUBLE_EQ(e.group_aggregate_fraction, 1.0) << proto;
  }
  p.compromised = 0;
  auto none = SAggCompromise(p);
  EXPECT_DOUBLE_EQ(none.raw_tuple_fraction, 0.0);
  EXPECT_DOUBLE_EQ(none.group_aggregate_fraction, 0.0);
}

// ---------------------------------------------------------------------------
// Trade-off rankings (Fig 11)

TEST(TradeoffTest, RendersAllAxes) {
  std::string fig = RenderTradeoffFigure(PaperParams());
  EXPECT_NE(fig.find("Confidentiality"), std::string::npos);
  EXPECT_NE(fig.find("Elasticity"), std::string::npos);
  EXPECT_NE(fig.find("S_Agg"), std::string::npos);
}

TEST(TradeoffTest, ConfidentialityBestIsSAgg) {
  auto ranking =
      RankAxis(TradeoffAxis::kConfidentiality, PaperParams());
  EXPECT_EQ(ranking.back(), "S_Agg");
}

TEST(TradeoffTest, LocalResourceWorstIncludesSAggOrHeavyNoise) {
  // Fig 11: S_Agg and R1000_Noise sit at the 'worst' end of the feasibility
  // axis; ED_Hist is best.
  auto ranking =
      RankAxis(TradeoffAxis::kFeasibilityLocalResource, PaperParams());
  ASSERT_EQ(ranking.size(), 5u);
  EXPECT_TRUE(ranking[0] == "S_Agg" || ranking[0] == "R1000_Noise");
  EXPECT_EQ(ranking.back(), "ED_Hist");
}

TEST(TradeoffTest, ResponsivenessSmallGBestIsSAgg) {
  auto ranking =
      RankAxis(TradeoffAxis::kResponsivenessSmallG, PaperParams());
  EXPECT_EQ(ranking.back(), "S_Agg");
}

TEST(TradeoffTest, ResponsivenessLargeGWorstIsSAgg) {
  auto ranking =
      RankAxis(TradeoffAxis::kResponsivenessLargeG, PaperParams());
  EXPECT_EQ(ranking.front(), "S_Agg");
}

TEST(TradeoffTest, GlobalResourceBestIsSAggWorstIsHeavyNoise) {
  // Fig 10c/d: noise protocols carry the highest load; "other protocols
  // generate much lower and roughly comparable loads" — so S_Agg and ED_Hist
  // share the best end of the axis.
  auto ranking = RankAxis(TradeoffAxis::kGlobalResource, PaperParams());
  ASSERT_EQ(ranking.size(), 5u);
  EXPECT_EQ(ranking.front(), "R1000_Noise");
  std::set<std::string> best_two = {ranking[3], ranking[4]};
  EXPECT_TRUE(best_two.count("S_Agg"));
  EXPECT_TRUE(best_two.count("ED_Hist"));
}

}  // namespace
}  // namespace tcells::analysis
