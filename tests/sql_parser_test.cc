// Tests for the SQL lexer and parser, including the paper's flagship query.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace tcells::sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT a, b FROM t WHERE x >= 1.5").ValueOrDie();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, NumberFormats) {
  auto tokens = Lex("42 3.25 1e3 2.5E-2").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.25);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex("'detached house' 'it''s'").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "detached house");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= <> != < <= > >= + - * / %").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "=");
  EXPECT_EQ(tokens[1].text, "<>");
  EXPECT_EQ(tokens[2].text, "<>");  // != normalizes
  EXPECT_EQ(tokens[5].text, ">");
  EXPECT_EQ(tokens[6].text, ">=");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("a # b").ok());
  EXPECT_FALSE(Lex("1e").ok());
}

// ---------------------------------------------------------------------------
// Parser

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT a, b FROM t").ValueOrDie();
  ASSERT_EQ(stmt.select_list.size(), 2u);
  EXPECT_EQ(stmt.select_list[0].expr->column, "a");
  ASSERT_EQ(stmt.from.size(), 1u);
  EXPECT_EQ(stmt.from[0].table, "t");
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(ParserTest, PaperFlagshipQuery) {
  // §2.3, the energy company's query.
  auto stmt = Parse(
      "SELECT AVG(Cons) FROM Power P, Consumer C "
      "WHERE C.accomodation='detached house' and C.cid = P.cid "
      "GROUP BY C.district HAVING Count(distinct C.cid) > 100 SIZE 50000")
      .ValueOrDie();
  ASSERT_EQ(stmt.select_list.size(), 1u);
  EXPECT_EQ(stmt.select_list[0].expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(stmt.select_list[0].expr->agg_kind, AggKind::kAvg);
  ASSERT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.from[0].alias, "P");
  ASSERT_NE(stmt.where, nullptr);
  ASSERT_EQ(stmt.group_by.size(), 1u);
  EXPECT_EQ(stmt.group_by[0]->column, "district");
  ASSERT_NE(stmt.having, nullptr);
  ASSERT_TRUE(stmt.size.has_value());
  EXPECT_EQ(stmt.size->max_tuples.value(), 50000u);
}

TEST(ParserTest, SelectStar) {
  auto stmt = Parse("SELECT * FROM t").ValueOrDie();
  EXPECT_EQ(stmt.select_list[0].expr->column, "*");
}

TEST(ParserTest, Aliases) {
  auto stmt = Parse("SELECT a AS x, b y FROM t AS u, v w").ValueOrDie();
  EXPECT_EQ(stmt.select_list[0].alias, "x");
  EXPECT_EQ(stmt.select_list[1].alias, "y");
  EXPECT_EQ(stmt.from[0].alias, "u");
  EXPECT_EQ(stmt.from[1].alias, "w");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = Parse("SELECT a FROM t WHERE a + b * 2 = 7 OR NOT a < 1 AND b > 2")
      .ValueOrDie();
  // ((a + (b*2)) = 7) OR ((NOT (a<1)) AND (b>2))
  const Expr& root = *stmt.where;
  EXPECT_EQ(root.binary_op, BinaryOp::kOr);
  EXPECT_EQ(root.children[1]->binary_op, BinaryOp::kAnd);
  EXPECT_EQ(root.children[0]->binary_op, BinaryOp::kEq);
  EXPECT_EQ(root.children[0]->children[0]->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(root.children[0]->children[0]->children[1]->binary_op,
            BinaryOp::kMul);
}

TEST(ParserTest, InList) {
  auto stmt = Parse("SELECT a FROM t WHERE a IN (1, 2, 3)").ValueOrDie();
  EXPECT_EQ(stmt.where->kind, Expr::Kind::kInList);
  EXPECT_EQ(stmt.where->children.size(), 4u);
}

TEST(ParserTest, NotInDesugarsToNot) {
  auto stmt = Parse("SELECT a FROM t WHERE a NOT IN (1)").ValueOrDie();
  EXPECT_EQ(stmt.where->kind, Expr::Kind::kUnary);
  EXPECT_EQ(stmt.where->children[0]->kind, Expr::Kind::kInList);
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto stmt = Parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5").ValueOrDie();
  EXPECT_EQ(stmt.where->binary_op, BinaryOp::kAnd);
  EXPECT_EQ(stmt.where->children[0]->binary_op, BinaryOp::kGe);
  EXPECT_EQ(stmt.where->children[1]->binary_op, BinaryOp::kLe);
}

TEST(ParserTest, IsNull) {
  auto stmt = Parse("SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL")
      .ValueOrDie();
  EXPECT_EQ(stmt.where->children[0]->kind, Expr::Kind::kIsNull);
  EXPECT_FALSE(stmt.where->children[0]->negated);
  EXPECT_TRUE(stmt.where->children[1]->negated);
}

TEST(ParserTest, AllAggregates) {
  auto stmt = Parse(
      "SELECT COUNT(*), COUNT(DISTINCT a), SUM(a), AVG(a), MIN(a), MAX(a), "
      "MEDIAN(a) FROM t GROUP BY b")
      .ValueOrDie();
  ASSERT_EQ(stmt.select_list.size(), 7u);
  EXPECT_TRUE(stmt.select_list[0].expr->star);
  EXPECT_TRUE(stmt.select_list[1].expr->distinct);
  EXPECT_EQ(stmt.select_list[6].expr->agg_kind, AggKind::kMedian);
}

TEST(ParserTest, SizeVariants) {
  EXPECT_EQ(Parse("SELECT a FROM t SIZE 100").ValueOrDie()
                .size->max_tuples.value(), 100u);
  auto with_duration =
      Parse("SELECT a FROM t SIZE DURATION 60").ValueOrDie();
  EXPECT_FALSE(with_duration.size->max_tuples.has_value());
  EXPECT_EQ(with_duration.size->max_duration_ticks.value(), 60u);
  auto both = Parse("SELECT a FROM t SIZE 100 DURATION 60").ValueOrDie();
  EXPECT_TRUE(both.size->max_tuples.has_value());
  EXPECT_TRUE(both.size->max_duration_ticks.has_value());
}


TEST(ParserTest, Like) {
  auto stmt = Parse("SELECT a FROM t WHERE a LIKE 'x%' AND b NOT LIKE '_y'")
      .ValueOrDie();
  const Expr& conj = *stmt.where;
  EXPECT_EQ(conj.children[0]->kind, Expr::Kind::kLike);
  EXPECT_FALSE(conj.children[0]->negated);
  EXPECT_EQ(conj.children[1]->kind, Expr::Kind::kLike);
  EXPECT_TRUE(conj.children[1]->negated);
  auto again = Parse(stmt.ToString()).ValueOrDie();
  EXPECT_EQ(stmt.ToString(), again.ToString());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* queries[] = {
      "SELECT a, b FROM t WHERE a = 1",
      "SELECT AVG(x) FROM t GROUP BY g HAVING COUNT(*) > 2 SIZE 10",
      "SELECT t.a FROM t WHERE t.a IN (1, 2) OR t.a IS NULL",
  };
  for (const char* q : queries) {
    auto stmt = Parse(q).ValueOrDie();
    // Re-parsing the rendering must succeed and render identically (fixpoint).
    auto stmt2 = Parse(stmt.ToString()).ValueOrDie();
    EXPECT_EQ(stmt.ToString(), stmt2.ToString()) << q;
  }
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a").ok());                       // no FROM
  EXPECT_FALSE(Parse("SELECT a FROM t GROUP a").ok());        // missing BY
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t trailing garbage ,").ok());
  EXPECT_FALSE(Parse("SELECT SUM(*) FROM t").ok());           // * only in COUNT
  EXPECT_FALSE(Parse("SELECT COUNT(DISTINCT *) FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t SIZE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t GROUP BY a + 1").ok());  // col refs only
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1)").ok());
}

// ---------------------------------------------------------------------------
// Hostile-input hardening regressions (pinned by fuzz/fuzz_sql.cc)

TEST(LexerTest, OverflowingIntegerLiteralRejected) {
  // strtoll used to clamp silently to INT64_MAX; overflow is now an error.
  EXPECT_FALSE(Lex("99999999999999999999").ok());
  EXPECT_FALSE(Parse("SELECT 99999999999999999999 FROM t").ok());
  // INT64_MAX itself still lexes.
  auto tokens = Lex("9223372036854775807").ValueOrDie();
  EXPECT_EQ(tokens[0].int_value, 9223372036854775807LL);
}

TEST(LexerTest, OverflowingDoubleLiteralRejected) {
  // 1e999 would become +inf, which ToString cannot render back into SQL.
  EXPECT_FALSE(Lex("1e999").ok());
  // Underflow to 0 is representable and fine.
  EXPECT_TRUE(Lex("1e-999").ok());
}

TEST(ParserTest, ExcessiveNestingRejectedNotCrashed) {
  // 200 levels must keep parsing (robustness_test pins this); a hostile
  // 100k-level input must fail with a parse error, not a stack overflow.
  for (size_t depth : {size_t{200}, size_t{100000}}) {
    std::string sql = "SELECT ";
    sql.append(depth, '(');
    sql += "1";
    sql.append(depth, ')');
    sql += " FROM t";
    auto parsed = Parse(sql);
    EXPECT_EQ(parsed.ok(), depth == 200) << "depth=" << depth;
  }
  // Same budget for NOT and unary-minus chains, which recurse separately.
  std::string nots = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 100000; ++i) nots += "NOT ";
  nots += "a";
  EXPECT_FALSE(Parse(nots).ok());
  std::string minuses = "SELECT ";
  minuses.append(100000, '-');
  minuses += "1 FROM t";
  EXPECT_FALSE(Parse(minuses).ok());
}

TEST(ParserTest, EmbeddedQuoteLiteralRoundTrips) {
  auto parsed = Parse("SELECT a FROM t WHERE a = 'it''s'").ValueOrDie();
  std::string rendered = parsed.ToString();
  auto reparsed = Parse(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(reparsed->ToString(), rendered);
}

// ---------------------------------------------------------------------------
// Property tests: render/reparse fixpoint on the property-grid query set,
// and no crash/accept on seeded random byte strings.

TEST(ParserPropertyTest, PropertyGridQueriesRoundTrip) {
  const std::vector<std::string> grid = {
      "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), MAX(val) FROM T "
      "GROUP BY grp",
      "SELECT grp, MEDIAN(val), COUNT(DISTINCT cat), VARIANCE(val), "
      "STDDEV(val) FROM T GROUP BY grp",
      "SELECT SUM(val), COUNT(*) FROM T",
      "SELECT grp, COUNT(*) FROM T WHERE cat < 5 GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE cat BETWEEN 2 AND 7 GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE cat IN (0, 3, 9) GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE cat NOT IN (1, 2) GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE grp LIKE 'G0_' GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE grp NOT LIKE '%2' GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE grp IS NOT NULL AND val > 10.0 "
      "GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE NOT (cat = 0 OR cat = 1) GROUP BY "
      "grp",
      "SELECT grp, COUNT(*) FROM T WHERE val / 2 + 1 > cat * 3 GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE cat % 3 = 0 OR FALSE GROUP BY grp",
      "SELECT DISTINCT grp FROM T ORDER BY grp DESC LIMIT 2",
      "SELECT grp, val FROM T WHERE cat < 5 SIZE 100 DURATION 60",
  };
  for (const std::string& sql : grid) {
    auto parsed = Parse(sql);
    ASSERT_TRUE(parsed.ok()) << sql << "\n" << parsed.status().ToString();
    // The first rendering may normalize; it must then be a fixpoint.
    std::string rendered = parsed->ToString();
    auto reparsed = Parse(rendered);
    ASSERT_TRUE(reparsed.ok()) << sql << "\nrendered: " << rendered;
    EXPECT_EQ(reparsed->ToString(), rendered) << sql;
  }
}

TEST(ParserPropertyTest, RandomByteStringsNeverCrashOrParse) {
  // 10k fully random byte strings: the parser must return an error for each
  // (random bytes do not spell SELECT ... FROM ...) and never crash.
  Rng rng(20260807);
  for (int i = 0; i < 10000; ++i) {
    size_t len = rng.NextBelow(128);
    Bytes raw = rng.NextBytes(len);
    std::string sql(raw.begin(), raw.end());
    auto parsed = Parse(sql);
    EXPECT_FALSE(parsed.ok()) << "accepted random input: " << sql;
  }
}

}  // namespace
}  // namespace tcells::sql
