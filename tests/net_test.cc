// Transport-layer tests: frame codec hostile-input discipline, the loopback
// and TCP backends, and the SsiClient retry/deadline semantics. The failure
// paths — peer closing mid-frame, a server that never replies, transient
// errors that resolve on retry — are each pinned here because the engine's
// graceful-degradation story depends on the exact Status codes the channel
// surface maps them to.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/byzantine.h"
#include "net/faulty.h"
#include "net/frame.h"
#include "net/loopback.h"
#include "net/ssi_client.h"
#include "net/ssi_node.h"
#include "net/ssi_wire.h"
#include "net/tcp.h"
#include "obs/metrics.h"

namespace tcells::net {
namespace {

Bytes MakeBytes(std::initializer_list<uint8_t> b) { return Bytes(b); }

bool IsCorruption(const Status& s) { return s.IsCorruption(); }
bool IsNotFound(const Status& s) { return s.IsNotFound(); }
bool IsUnavailable(const Status& s) { return s.IsUnavailable(); }
bool IsDeadlineExceeded(const Status& s) { return s.IsDeadlineExceeded(); }
bool IsInvalidArgument(const Status& s) { return s.IsInvalidArgument(); }

// ---------------------------------------------------------------------------
// Frame codec.

TEST(FrameTest, RoundTrip) {
  Bytes wire;
  Bytes payload = MakeBytes({1, 2, 3, 4, 5});
  AppendFrame(&wire, payload);
  EXPECT_EQ(wire.size(), FrameWireSize(payload.size()));
  ByteReader reader(wire);
  auto decoded = DecodeFrame(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  Bytes wire;
  AppendFrame(&wire, Bytes());
  ByteReader reader(wire);
  auto decoded = DecodeFrame(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(FrameTest, RejectsLengthBeyondCapBeforeAllocation) {
  // A 4-byte header claiming ~4 GiB must be rejected up front — if the
  // decoder tried to reserve that much first, a peer could drive huge
  // allocations with tiny writes.
  Bytes wire = MakeBytes({0xff, 0xff, 0xff, 0xff});
  ByteReader reader(wire);
  auto decoded = DecodeFrame(&reader);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(IsCorruption(decoded.status()));
}

TEST(FrameTest, RejectsLengthJustAboveCap) {
  uint32_t n = static_cast<uint32_t>(kMaxFramePayload) + 1;
  Bytes wire;
  ByteWriter writer(&wire);
  writer.PutU32(n);
  ByteReader reader(wire);
  EXPECT_TRUE(IsCorruption(DecodeFrame(&reader).status()));
}

TEST(FrameTest, RejectsLengthBeyondRemaining) {
  // Claims 100 payload bytes, provides 3.
  Bytes wire;
  ByteWriter writer(&wire);
  writer.PutU32(100);
  wire.push_back(9);
  wire.push_back(9);
  wire.push_back(9);
  ByteReader reader(wire);
  EXPECT_TRUE(IsCorruption(DecodeFrame(&reader).status()));
}

TEST(FrameTest, TryExtractNeedsWholeHeader) {
  Bytes buf = MakeBytes({5, 0});  // half a length prefix
  Bytes frame;
  Status error;
  EXPECT_FALSE(TryExtractFrame(&buf, &frame, &error));
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(buf.size(), 2u);  // nothing consumed
}

TEST(FrameTest, TryExtractNeedsWholePayload) {
  Bytes buf;
  AppendFrame(&buf, MakeBytes({1, 2, 3}));
  buf.pop_back();  // last payload byte still in flight
  Bytes frame;
  Status error;
  EXPECT_FALSE(TryExtractFrame(&buf, &frame, &error));
  EXPECT_TRUE(error.ok());
}

TEST(FrameTest, TryExtractConsumesExactlyOneFrame) {
  Bytes buf;
  AppendFrame(&buf, MakeBytes({1, 2}));
  AppendFrame(&buf, MakeBytes({3}));
  Bytes frame;
  Status error;
  ASSERT_TRUE(TryExtractFrame(&buf, &frame, &error));
  EXPECT_EQ(frame, MakeBytes({1, 2}));
  ASSERT_TRUE(TryExtractFrame(&buf, &frame, &error));
  EXPECT_EQ(frame, MakeBytes({3}));
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(TryExtractFrame(&buf, &frame, &error));
  EXPECT_TRUE(error.ok());
}

TEST(FrameTest, TryExtractRejectsHostileLengthBeforeBuffering) {
  // The stream decoder must flag Corruption as soon as the header is
  // readable, not wait for 4 GiB that will never arrive.
  Bytes buf = MakeBytes({0xff, 0xff, 0xff, 0xff, 0x00});
  Bytes frame;
  Status error;
  EXPECT_FALSE(TryExtractFrame(&buf, &frame, &error));
  EXPECT_TRUE(IsCorruption(error));
}

TEST(TransportKindTest, NameRoundTrip) {
  EXPECT_STREQ(TransportKindToString(TransportKind::kLoopback), "loopback");
  EXPECT_STREQ(TransportKindToString(TransportKind::kTcp), "tcp");
  EXPECT_EQ(*TransportKindFromName("loopback"), TransportKind::kLoopback);
  EXPECT_EQ(*TransportKindFromName("tcp"), TransportKind::kTcp);
  EXPECT_TRUE(IsInvalidArgument(TransportKindFromName("smoke").status()));
}

// ---------------------------------------------------------------------------
// Loopback backend.

TEST(LoopbackTest, EchoRoundTripsThroughFrameCodec) {
  LoopbackTransport transport([](const Bytes& req) -> Result<Bytes> {
    Bytes reply = req;
    reply.push_back(0xAB);
    return reply;
  });
  auto channel = transport.Connect();
  ASSERT_TRUE(channel.ok());
  auto reply = (*channel)->Call(MakeBytes({1, 2, 3}), CallOptions{});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, MakeBytes({1, 2, 3, 0xAB}));
}

TEST(LoopbackTest, InjectedFailuresSurfaceThenClear) {
  size_t handled = 0;
  LoopbackTransport transport([&](const Bytes& req) -> Result<Bytes> {
    ++handled;
    return req;
  });
  transport.InjectFailures(2, Status::Unavailable("injected"));
  auto channel = transport.Connect();
  ASSERT_TRUE(channel.ok());
  EXPECT_TRUE(IsUnavailable(
      (*channel)->Call(MakeBytes({7}), CallOptions{}).status()));
  EXPECT_TRUE(IsUnavailable(
      (*channel)->Call(MakeBytes({7}), CallOptions{}).status()));
  EXPECT_EQ(handled, 0u);  // injected failures never reach the handler
  EXPECT_TRUE((*channel)->Call(MakeBytes({7}), CallOptions{}).ok());
  EXPECT_EQ(handled, 1u);
}

// ---------------------------------------------------------------------------
// TCP backend: the happy path and every documented failure mapping.

TEST(TcpTest, EchoOverRealSocket) {
  TcpServer server;
  ASSERT_TRUE(server.Start([](const Bytes& req) -> Result<Bytes> {
                return req;
              }).ok());
  ASSERT_GT(server.port(), 0);
  TcpTransport transport("127.0.0.1", server.port());
  auto channel = transport.Connect();
  ASSERT_TRUE(channel.ok());
  // Several calls on one connection, including a payload larger than the
  // client's receive chunk, so reassembly across recv() boundaries runs.
  Bytes big(100 * 1024);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  for (const Bytes& payload : {MakeBytes({1, 2, 3}), Bytes(), big}) {
    auto reply = (*channel)->Call(payload, CallOptions{});
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, payload);
  }
}

TEST(TcpTest, ConnectToClosedPortIsUnavailable) {
  TcpServer server;
  ASSERT_TRUE(server.Start([](const Bytes& req) -> Result<Bytes> {
                return req;
              }).ok());
  uint16_t port = server.port();
  server.Stop();
  TcpTransport transport("127.0.0.1", port);
  auto channel = transport.Connect();
  if (!channel.ok()) {
    EXPECT_TRUE(IsUnavailable(channel.status()));
    return;
  }
  // Some kernels accept the connect and reset on first use.
  auto reply = (*channel)->Call(MakeBytes({1}), CallOptions{});
  EXPECT_TRUE(IsUnavailable(reply.status()));
}

/// Raw localhost listener for scripting byte-level server misbehavior that
/// TcpServer itself would never produce.
class RawListener {
 public:
  RawListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~RawListener() {
    if (conn_ >= 0) ::close(conn_);
    if (fd_ >= 0) ::close(fd_);
  }

  uint16_t port() const { return port_; }

  int Accept() {
    conn_ = ::accept(fd_, nullptr, nullptr);
    return conn_;
  }

  void DrainRequest() {
    // Read until the client's single request frame is fully here.
    uint8_t header[4];
    size_t got = 0;
    while (got < 4) {
      ssize_t n = ::recv(conn_, header + got, 4 - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<size_t>(n);
    }
    uint32_t body = 0;
    std::memcpy(&body, header, 4);
    std::vector<uint8_t> scratch(body);
    got = 0;
    while (got < body) {
      ssize_t n = ::recv(conn_, scratch.data() + got, body - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<size_t>(n);
    }
  }

  void Send(const Bytes& bytes) {
    ASSERT_EQ(::send(conn_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  void CloseConn() {
    ::close(conn_);
    conn_ = -1;
  }

 private:
  int fd_ = -1;
  int conn_ = -1;
  uint16_t port_ = 0;
};

TEST(TcpTest, PeerClosingMidFrameIsUnavailable) {
  RawListener listener;
  std::thread peer([&] {
    ASSERT_GE(listener.Accept(), 0);
    listener.DrainRequest();
    // Reply frame claims 100 payload bytes, delivers 3, then slams the
    // connection: the client must see Unavailable (retryable), never hang
    // waiting for the rest and never treat the truncated frame as complete.
    Bytes partial;
    ByteWriter writer(&partial);
    writer.PutU32(100);
    partial.push_back(1);
    partial.push_back(2);
    partial.push_back(3);
    listener.Send(partial);
    listener.CloseConn();
  });
  TcpTransport transport("127.0.0.1", listener.port());
  auto channel = transport.Connect();
  ASSERT_TRUE(channel.ok());
  auto reply = (*channel)->Call(MakeBytes({42}), CallOptions{});
  peer.join();
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(IsUnavailable(reply.status())) << reply.status().ToString();
}

TEST(TcpTest, SilentPeerHitsDeadline) {
  RawListener listener;
  std::thread peer([&] {
    ASSERT_GE(listener.Accept(), 0);
    listener.DrainRequest();
    // Never reply; hold the connection open until the client gives up.
  });
  TcpTransport transport("127.0.0.1", listener.port());
  auto channel = transport.Connect();
  ASSERT_TRUE(channel.ok());
  CallOptions opts;
  opts.deadline_seconds = 0.05;
  auto reply = (*channel)->Call(MakeBytes({42}), opts);
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(IsDeadlineExceeded(reply.status())) << reply.status().ToString();
  peer.join();
}

TEST(TcpTest, HostileReplyLengthIsCorruption) {
  RawListener listener;
  std::thread peer([&] {
    ASSERT_GE(listener.Accept(), 0);
    listener.DrainRequest();
    // A length prefix beyond the cap: fatal, not retryable — the stream can
    // never be re-synchronized.
    listener.Send(MakeBytes({0xff, 0xff, 0xff, 0xff}));
  });
  TcpTransport transport("127.0.0.1", listener.port());
  auto channel = transport.Connect();
  ASSERT_TRUE(channel.ok());
  auto reply = (*channel)->Call(MakeBytes({42}), CallOptions{});
  peer.join();
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(IsCorruption(reply.status())) << reply.status().ToString();
}

TEST(TcpTest, PipelinedRequestsBackpressuredNotDropped) {
  // A peer may write many frames before reading any reply. With buffer caps
  // far below the pipelined volume the server must stop reading / defer
  // serving while the reply backlog is full (bounding its memory), yet still
  // answer every frame in order once the peer starts draining.
  TcpServer server;
  server.set_buffer_caps(/*max_in=*/4096, /*max_out_backlog=*/4096);
  ASSERT_TRUE(server.Start([](const Bytes& req) -> Result<Bytes> {
                Bytes reply = req;
                reply.push_back(0x5A);
                return reply;
              }).ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  constexpr size_t kCalls = 64;
  constexpr size_t kPayload = 1024;
  Bytes wire;
  for (size_t i = 0; i < kCalls; ++i) {
    AppendFrame(&wire, Bytes(kPayload, static_cast<uint8_t>(i)));
  }
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  for (size_t i = 0; i < kCalls; ++i) {
    Bytes reply(FrameWireSize(kPayload + 1));
    size_t got = 0;
    while (got < reply.size()) {
      ssize_t n = ::recv(fd, reply.data() + got, reply.size() - got, 0);
      ASSERT_GT(n, 0) << "reply " << i << " truncated";
      got += static_cast<size_t>(n);
    }
    ByteReader reader(reply);
    auto payload = DecodeFrame(&reader);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    ASSERT_EQ(payload->size(), kPayload + 1);
    EXPECT_EQ((*payload)[0], static_cast<uint8_t>(i));
    EXPECT_EQ(payload->back(), 0x5A);
  }
  ::close(fd);
}

TEST(TcpTest, ServerDropsConnectionOnHandlerFailure) {
  // A handler that cannot decode the request signals an unsynchronizable
  // stream; the server's only safe move is to cut the connection, which the
  // client surfaces as retryable Unavailable.
  TcpServer server;
  ASSERT_TRUE(server.Start([](const Bytes&) -> Result<Bytes> {
                return Status::Corruption("bad frame");
              }).ok());
  TcpTransport transport("127.0.0.1", server.port());
  auto channel = transport.Connect();
  ASSERT_TRUE(channel.ok());
  auto reply = (*channel)->Call(MakeBytes({1}), CallOptions{});
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(IsUnavailable(reply.status())) << reply.status().ToString();
}

// ---------------------------------------------------------------------------
// SsiClient retry semantics.

TEST(SsiClientTest, TransientFailuresRetriedThenSucceed) {
  SsiNode node;
  LoopbackTransport transport(node.handler());
  obs::MetricsRegistry metrics;
  VirtualClock vclock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_seconds = 0.05;
  policy.clock = &vclock;
  SsiClient client(&transport, policy, &metrics);

  transport.InjectFailures(2, Status::Unavailable("blip"));
  auto n = client.NumAcknowledged(1);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 0u);
  EXPECT_EQ(metrics.snapshot().counters.at("net.retries"), 2u);
  // Exact backoff schedule, no timing margins: first retry sleeps the base,
  // the second doubles it.
  EXPECT_EQ(vclock.sleeps(), (std::vector<double>{0.05, 0.1}));
}

TEST(SsiClientTest, RetriesExhaustedReturnsLastTransportError) {
  SsiNode node;
  LoopbackTransport transport(node.handler());
  VirtualClock vclock;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_seconds = 0.05;
  policy.clock = &vclock;
  SsiClient client(&transport, policy);

  transport.InjectFailures(10, Status::Unavailable("down"));
  EXPECT_TRUE(IsUnavailable(client.NumAcknowledged(1).status()));
  // 10 injected - 2 attempts consumed = 8 left; drain to prove exactly two
  // attempts were made.
  size_t drained = 0;
  for (; drained < 10; ++drained) {
    if (client.NumAcknowledged(1).ok()) break;
  }
  // 8 remaining failures cover attempts for ceil(8/2)=4 more calls.
  EXPECT_EQ(drained, 4u);
  // Each failing call slept exactly once (one retry per call, base backoff —
  // the schedule resets between calls).
  EXPECT_EQ(vclock.sleeps(), (std::vector<double>{0.05, 0.05, 0.05, 0.05, 0.05}));
}

TEST(SsiClientTest, DeadlineHitsAreCountedAndRetried) {
  SsiNode node;
  LoopbackTransport transport(node.handler());
  obs::MetricsRegistry metrics;
  VirtualClock vclock;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_seconds = 0.05;
  policy.clock = &vclock;
  SsiClient client(&transport, policy, &metrics);

  transport.InjectFailures(1, Status::DeadlineExceeded("slow"));
  ASSERT_TRUE(client.NumAcknowledged(1).ok());
  auto counters = metrics.snapshot().counters;
  EXPECT_EQ(counters.at("net.deadline_hits"), 1u);
  EXPECT_EQ(counters.at("net.retries"), 1u);
  EXPECT_EQ(vclock.sleeps(), (std::vector<double>{0.05}));
}

TEST(SsiClientTest, BackoffScheduleIsExponentialAndCapped) {
  SsiNode node;
  LoopbackTransport transport(node.handler());
  VirtualClock vclock;
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.backoff_seconds = 0.05;
  policy.backoff_cap_seconds = 0.25;
  policy.clock = &vclock;
  SsiClient client(&transport, policy);

  transport.InjectFailures(6, Status::Unavailable("down"));
  EXPECT_TRUE(IsUnavailable(client.NumAcknowledged(1).status()));
  // Doubling from the base, clamped at the cap once 0.4 would exceed it.
  EXPECT_EQ(vclock.sleeps(),
            (std::vector<double>{0.05, 0.1, 0.2, 0.25, 0.25}));
}

TEST(SsiClientTest, DeadlineAbandonedReplyNeverPoisonsLaterCalls) {
  // Regression: a call that hits its deadline abandons a reply that is
  // still in flight. If the client kept the connection, the retry and every
  // later exchange on it would consume stale replies one position behind —
  // silently decoding another call's envelope. The client must re-dial
  // after DeadlineExceeded, exactly as after Unavailable.
  std::atomic<uint64_t> handled{0};
  TcpServer server;
  ASSERT_TRUE(server
                  .Start([&](const Bytes&) -> Result<Bytes> {
                    uint64_t n = ++handled;
                    if (n == 1) {
                      // Sit on the first reply until far past the deadline.
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(200));
                    }
                    Bytes body;
                    ByteWriter(&body).PutU64(n);
                    return EncodeReplyOk(body);
                  })
                  .ok());
  TcpTransport transport("127.0.0.1", server.port());
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.deadline_seconds = 0.05;
  policy.backoff_seconds = 0.0001;
  SsiClient client(&transport, policy);

  // First call: the server stalls past every attempt's deadline. Whether it
  // fails or a retry squeaks through, no stale reply may survive it.
  (void)client.NumAcknowledged(1);
  // Let the server finish the delayed handler and flush the abandoned
  // replies; on the pre-fix client they now sit buffered on the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto n = client.NumAcknowledged(1);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, handled.load());  // pre-fix: a stale earlier counter value
}

TEST(SsiClientTest, ApplicationErrorsAreNeverRetried) {
  size_t calls = 0;
  SsiNode node;
  LoopbackTransport transport([&](const Bytes& req) -> Result<Bytes> {
    ++calls;
    return node.Handle(req);
  });
  RetryPolicy policy;
  policy.max_attempts = 5;
  SsiClient client(&transport, policy);

  // FetchPartition for a query nothing staged: a NotFound application error
  // rides inside an OK transport exchange and must not burn retry budget.
  auto partition = client.FetchPartition(/*query_id=*/99, /*token=*/0);
  EXPECT_TRUE(IsNotFound(partition.status())) << partition.status().ToString();
  EXPECT_EQ(calls, 1u);
}

TEST(SsiClientTest, FramesAndBytesAreCounted) {
  SsiNode node;
  LoopbackTransport transport(node.handler());
  obs::MetricsRegistry metrics;
  SsiClient client(&transport, RetryPolicy{}, &metrics);
  ASSERT_TRUE(client.NumAcknowledged(1).ok());
  auto counters = metrics.snapshot().counters;
  EXPECT_EQ(counters.at("net.frames_sent"), 1u);
  EXPECT_EQ(counters.at("net.frames_received"), 1u);
  EXPECT_GT(counters.at("net.bytes_sent"), 0u);
  EXPECT_GT(counters.at("net.bytes_received"), 0u);
}

// ---------------------------------------------------------------------------
// SsiNode RPC surface: the transfer state behind the channel.

ssi::EncryptedItem MakeItem(uint8_t fill, bool tagged) {
  ssi::EncryptedItem item;
  item.blob = Bytes(8, fill);
  if (tagged) item.routing_tag = Bytes(4, static_cast<uint8_t>(fill ^ 0xFF));
  return item;
}

TEST(SsiNodeTest, PartitionStageFetchUploadTakeCycle) {
  SsiNode node;
  LoopbackTransport transport(node.handler());
  SsiClient client(&transport);

  ssi::Partition partition;
  partition.items = {MakeItem(1, true), MakeItem(2, false)};
  ASSERT_TRUE(client.StagePartition(7, /*token=*/0, partition).ok());

  // Staged partitions survive a fetch (a re-dispatched TDS downloads again).
  for (int round = 0; round < 2; ++round) {
    auto fetched = client.FetchPartition(7, 0);
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    ASSERT_EQ(fetched->items.size(), 2u);
    EXPECT_EQ(fetched->items[0].blob, partition.items[0].blob);
    EXPECT_EQ(fetched->items[0].routing_tag, partition.items[0].routing_tag);
    EXPECT_EQ(fetched->items[1].routing_tag, std::nullopt);
  }

  std::vector<ssi::EncryptedItem> output = {MakeItem(9, false)};
  ASSERT_TRUE(client.UploadRoundOutput(7, 0, output).ok());
  auto taken = client.TakeRoundOutput(7, 0);
  ASSERT_TRUE(taken.ok());
  ASSERT_EQ(taken->size(), 1u);
  EXPECT_EQ((*taken)[0].blob, output[0].blob);

  // Take is destructive: both the output and the staged partition are gone.
  EXPECT_TRUE(IsNotFound(client.TakeRoundOutput(7, 0).status()));
  EXPECT_TRUE(IsNotFound(client.FetchPartition(7, 0).status()));
}

/// Wraps an SsiNode handler so that requests of `duplicated_type` are
/// delivered to the node twice, with the first reply "lost" — exactly what a
/// transport-level retry after a dropped reply does to the server.
LoopbackTransport DuplicatingTransport(SsiNode* node, MsgType duplicated_type) {
  return LoopbackTransport([node, duplicated_type](
                               const Bytes& req) -> Result<Bytes> {
    if (!req.empty() && req[0] == static_cast<uint8_t>(duplicated_type)) {
      (void)node->Handle(req);
    }
    return node->Handle(req);
  });
}

TEST(SsiNodeTest, DuplicateCollectionUploadIsNotDoubleCounted) {
  // kUploadCollection must be idempotent per (query, TDS): a retry after a
  // lost reply replays the first delivery's accept bit instead of appending
  // the contribution a second time and skewing the query result.
  SsiNode node;
  LoopbackTransport transport =
      DuplicatingTransport(&node, MsgType::kUploadCollection);
  SsiClient client(&transport);

  ssi::QueryPost post;
  post.query_id = 5;
  ASSERT_TRUE(client.PostGlobal(post).ok());

  std::vector<ssi::EncryptedItem> items = {MakeItem(1, false),
                                           MakeItem(2, false)};
  auto accepted = client.UploadCollection(5, /*tds_id=*/3, items);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_TRUE(*accepted);
  auto n = client.NumAcknowledged(5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto collected = client.TakeCollected(5);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 2u);  // pre-fix: 4 (contribution duplicated)
}

TEST(SsiNodeTest, RoundOutputTakeSurvivesDuplicateDelivery) {
  // The round-output take is two-phase: the fetch is a re-downloadable read
  // (a retry after a lost reply sees the same bytes, instead of NotFound
  // dropping an already-uploaded output as lost), and only the client's ack
  // afterwards erases the transfer state.
  SsiNode node;
  LoopbackTransport transport =
      DuplicatingTransport(&node, MsgType::kTakeRoundOutput);
  SsiClient client(&transport);

  std::vector<ssi::EncryptedItem> output = {MakeItem(9, true)};
  ASSERT_TRUE(client.UploadRoundOutput(7, 0, output).ok());
  auto taken = client.TakeRoundOutput(7, 0);
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();  // pre-fix: NotFound
  ASSERT_EQ(taken->size(), 1u);
  EXPECT_EQ((*taken)[0].blob, output[0].blob);
  // The ack ran once the items were in hand: the state is gone for good.
  EXPECT_TRUE(IsNotFound(client.TakeRoundOutput(7, 0).status()));
}

TEST(SsiNodeTest, ResultFetchIsIdempotentUntilRetire) {
  // A re-fetch after a lost reply must see the same result (the final
  // download is retry-safe); only Retire removes it.
  SsiNode node;
  LoopbackTransport transport(node.handler());
  SsiClient client(&transport);

  std::vector<ssi::EncryptedItem> result = {MakeItem(3, false),
                                            MakeItem(4, true)};
  ASSERT_TRUE(client.DeliverResult(11, result).ok());
  for (int fetch = 0; fetch < 2; ++fetch) {
    auto fetched = client.FetchResult(11);
    ASSERT_TRUE(fetched.ok());
    ASSERT_EQ(fetched->size(), 2u);
    EXPECT_EQ((*fetched)[1].routing_tag, result[1].routing_tag);
  }
}

TEST(SsiNodeTest, RetireClearsTransferState) {
  SsiNode node;
  LoopbackTransport transport(node.handler());
  SsiClient client(&transport);

  ssi::Partition partition;
  partition.items = {MakeItem(5, false)};
  ASSERT_TRUE(client.StagePartition(21, 0, partition).ok());
  ASSERT_TRUE(client.DeliverResult(21, partition.items).ok());
  // Query 21 was never posted to the hub, so Retire reports NotFound — but
  // the transfer remnants must be dropped regardless, so lost partitions
  // cannot outlive their query inside the SSI.
  EXPECT_TRUE(IsNotFound(client.Retire(21)));
  EXPECT_TRUE(IsNotFound(client.FetchPartition(21, 0).status()));
  EXPECT_TRUE(IsNotFound(client.FetchResult(21).status()));
}

TEST(SsiNodeTest, GarbageRequestFrameIsCorruption) {
  SsiNode node;
  auto reply = node.Handle(MakeBytes({0xEE, 0x01, 0x02}));
  EXPECT_TRUE(IsCorruption(reply.status())) << reply.status().ToString();
}

// The same node is reachable over a real socket: the full client surface
// against a TCP server, including an error envelope crossing the wire.
TEST(SsiNodeTest, ServesOverTcp) {
  SsiNode node;
  TcpServer server;
  ASSERT_TRUE(server.Start(node.handler()).ok());
  TcpTransport transport("127.0.0.1", server.port());
  RetryPolicy policy;
  policy.deadline_seconds = 5.0;
  SsiClient client(&transport, policy);

  ssi::Partition partition;
  partition.items = {MakeItem(6, true)};
  ASSERT_TRUE(client.StagePartition(31, 2, partition).ok());
  auto fetched = client.FetchPartition(31, 2);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  ASSERT_EQ(fetched->items.size(), 1u);
  EXPECT_EQ(fetched->items[0].blob, partition.items[0].blob);
  EXPECT_TRUE(IsNotFound(client.FetchPartition(31, 99).status()));
}

// ---------------------------------------------------------------------------
// FaultyTransport: the deterministic fault-injection decorator.

/// A scripted plan that injects `kind` on the nth call of `type` (per-type
/// counter), with everything probabilistic turned off.
FaultPlan ScriptOne(MsgType type, FaultKind kind, uint64_t nth = 1,
                    uint64_t repeat = 1) {
  FaultPlan plan;
  ScriptedFault fault;
  fault.type = type;
  fault.kind = kind;
  fault.scope = ScriptedFault::Scope::kPerType;
  fault.nth = nth;
  fault.repeat = repeat;
  plan.script.push_back(fault);
  return plan;
}

TEST(FaultyTransportTest, DroppedRequestIsRetriedAndCounted) {
  SsiNode node;
  LoopbackTransport inner(node.handler());
  FaultyTransport faulty(&inner,
                         ScriptOne(MsgType::kNumAcknowledged,
                                   FaultKind::kDropRequest));
  obs::MetricsRegistry metrics;
  VirtualClock vclock;
  RetryPolicy policy;
  policy.clock = &vclock;
  SsiClient client(&faulty, policy, &metrics);

  auto n = client.NumAcknowledged(1);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(metrics.snapshot().counters.at("net.retries"), 1u);
  EXPECT_EQ(faulty.injected_count(), 1u);
  ASSERT_EQ(faulty.events().size(), 1u);
  EXPECT_EQ(faulty.events()[0].kind, FaultKind::kDropRequest);
}

TEST(FaultyTransportTest, DroppedReplyStillReachesTheServer) {
  // drop_reply models the server processing the request but the reply frame
  // dying on the way back: the acknowledgement must be counted exactly once
  // even though the client retried.
  SsiNode node;
  LoopbackTransport inner(node.handler());
  FaultyTransport faulty(&inner,
                         ScriptOne(MsgType::kAcknowledge,
                                   FaultKind::kDropReply));
  obs::MetricsRegistry metrics;
  VirtualClock vclock;
  RetryPolicy policy;
  policy.clock = &vclock;
  SsiClient client(&faulty, policy, &metrics);

  ssi::QueryPost post;
  post.query_id = 1;
  ASSERT_TRUE(client.PostGlobal(post).ok());
  ASSERT_TRUE(client.Acknowledge(/*tds_id=*/3, /*query_id=*/1).ok());
  auto n = client.NumAcknowledged(1);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);  // processed once, not twice
  EXPECT_EQ(metrics.snapshot().counters.at("net.retries"), 1u);
}

TEST(FaultyTransportTest, TruncatedReplyIsCorruption) {
  SsiNode node;
  LoopbackTransport inner(node.handler());
  FaultyTransport faulty(&inner,
                         ScriptOne(MsgType::kNumAcknowledged,
                                   FaultKind::kTruncate));
  SsiClient client(&faulty);
  auto n = client.NumAcknowledged(1);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(IsCorruption(n.status())) << n.status().ToString();
}

TEST(FaultyTransportTest, DuplicateDeliveryDoesNotDoubleCountMetrics) {
  // Satellite regression: a duplicated kUploadCollection reaches the node
  // twice; the accept bit must be replayed, the contribution stored once,
  // and net.retries untouched (the client made a single call).
  SsiNode node;
  LoopbackTransport inner(node.handler());
  FaultyTransport faulty(&inner,
                         ScriptOne(MsgType::kUploadCollection,
                                   FaultKind::kDuplicate));
  obs::MetricsRegistry metrics;
  SsiClient client(&faulty, RetryPolicy{}, &metrics);

  ssi::QueryPost post;
  post.query_id = 5;
  ASSERT_TRUE(client.PostGlobal(post).ok());
  std::vector<ssi::EncryptedItem> items = {MakeItem(1, false),
                                           MakeItem(2, false)};
  auto accepted = client.UploadCollection(5, /*tds_id=*/3, items);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_TRUE(*accepted);
  auto n = client.NumAcknowledged(5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto collected = client.TakeCollected(5);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 2u);
  EXPECT_EQ(metrics.snapshot().counters.count("net.retries"), 0u);
}

TEST(FaultyTransportTest, DuplicatedCollectionTakeReplaysTheSameBytes) {
  // Regression for a campaign-discovered bug: kTakeCollected drains the
  // storage, so a duplicated delivery used to hand the client the second
  // (empty) reply — the whole collection silently vanished. The node now
  // replays the first take's bytes.
  SsiNode node;
  LoopbackTransport inner(node.handler());
  FaultyTransport faulty(&inner,
                         ScriptOne(MsgType::kTakeCollected,
                                   FaultKind::kDuplicate));
  SsiClient client(&faulty);

  ssi::QueryPost post;
  post.query_id = 5;
  ASSERT_TRUE(client.PostGlobal(post).ok());
  std::vector<ssi::EncryptedItem> items = {MakeItem(1, false),
                                           MakeItem(2, false)};
  ASSERT_TRUE(client.UploadCollection(5, 3, items).ok());
  auto collected = client.TakeCollected(5);
  ASSERT_TRUE(collected.ok()) << collected.status().ToString();
  EXPECT_EQ(collected->size(), 2u);  // pre-fix: 0 (drained by the duplicate)
}

TEST(FaultyTransportTest, StaleReplayServesThePreviousReply) {
  SsiNode node;
  LoopbackTransport inner(node.handler());
  FaultyTransport faulty(&inner,
                         ScriptOne(MsgType::kNumAcknowledged,
                                   FaultKind::kStaleReplay, /*nth=*/2));
  SsiClient client(&faulty);

  ssi::QueryPost post;
  post.query_id = 1;
  ASSERT_TRUE(client.PostGlobal(post).ok());
  ASSERT_TRUE(client.Acknowledge(3, 1).ok());
  auto first = client.NumAcknowledged(1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  ASSERT_TRUE(client.Acknowledge(4, 1).ok());
  // The second read is replayed from the first: the server's new state is
  // hidden from the client.
  auto second = client.NumAcknowledged(1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1u);
  // The third read goes through for real.
  auto third = client.NumAcknowledged(1);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, 2u);
}

TEST(FaultyTransportTest, DisconnectKillsTheChannelUntilRedial) {
  SsiNode node;
  LoopbackTransport inner(node.handler());
  FaultyTransport faulty(&inner,
                         ScriptOne(MsgType::kNumAcknowledged,
                                   FaultKind::kDisconnect));
  obs::MetricsRegistry metrics;
  VirtualClock vclock;
  RetryPolicy policy;
  policy.clock = &vclock;
  SsiClient client(&faulty, policy, &metrics);

  // The client re-dials on Unavailable, so the retry lands on a fresh
  // channel and succeeds.
  auto n = client.NumAcknowledged(1);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(metrics.snapshot().counters.at("net.retries"), 1u);
}

TEST(FaultyTransportTest, BitFlipIsDeterministicForTheSameSeed) {
  // Two transports with identical plans corrupt identical bits; a different
  // seed picks a different fault schedule. The decision is a pure function
  // of (seed, type, key, attempt) — never of arrival order.
  FaultPlan plan;
  plan.seed = 42;
  plan.per_type[MsgType::kNumAcknowledged].bit_flip = 1.0;

  std::string logs[2];
  for (int run = 0; run < 2; ++run) {
    SsiNode node;
    LoopbackTransport inner(node.handler());
    FaultyTransport faulty(&inner, plan);
    SsiClient client(&faulty);
    (void)client.NumAcknowledged(1);
    (void)client.NumAcknowledged(2);
    logs[run] = faulty.CanonicalLog();
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_FALSE(logs[0].empty());
}

TEST(FaultyTransportTest, DelayConsumesVirtualTimeOnly) {
  FaultPlan plan = ScriptOne(MsgType::kNumAcknowledged, FaultKind::kDelay);
  plan.delay_seconds = 0.5;
  SsiNode node;
  LoopbackTransport inner(node.handler());
  VirtualClock vclock;
  FaultyTransport faulty(&inner, plan, &vclock);
  RetryPolicy policy;
  policy.clock = &vclock;
  SsiClient client(&faulty, policy);

  auto n = client.NumAcknowledged(1);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_DOUBLE_EQ(vclock.total_slept_seconds(), 0.5);
}

// ---------------------------------------------------------------------------
// ByzantineProxy: application-level lies from a hostile SSI.

TEST(ByzantineProxyTest, ForgedAcceptByteLeavesServerUntouched) {
  SsiNode node;
  TamperPlan plan;
  plan.forge_accept_byte = true;
  ByzantineProxy proxy(node.handler(), plan);
  LoopbackTransport transport(proxy.handler());
  SsiClient client(&transport);

  ssi::QueryPost post;
  post.query_id = 5;
  ASSERT_TRUE(client.PostGlobal(post).ok());
  std::vector<ssi::EncryptedItem> items = {MakeItem(1, false)};
  auto accepted = client.UploadCollection(5, 3, items);
  ASSERT_TRUE(accepted.ok());
  // The proxy lies "rejected"; the server actually stored the contribution.
  EXPECT_FALSE(*accepted);
  EXPECT_EQ(proxy.stats().forged_accepts, 1u);
  auto collected = client.TakeCollected(5);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 1u);
}

TEST(ByzantineProxyTest, ReplayedRoundOutputIsServedOnLaterTakes) {
  SsiNode node;
  TamperPlan plan;
  plan.replay_round_output = true;
  ByzantineProxy proxy(node.handler(), plan);
  LoopbackTransport transport(proxy.handler());
  SsiClient client(&transport);

  std::vector<ssi::EncryptedItem> round1 = {MakeItem(1, false)};
  ASSERT_TRUE(client.UploadRoundOutput(7, 0, round1).ok());
  auto take1 = client.TakeRoundOutput(7, 0);  // acks internally
  ASSERT_TRUE(take1.ok());

  std::vector<ssi::EncryptedItem> round2 = {MakeItem(2, false)};
  ASSERT_TRUE(client.UploadRoundOutput(7, 0, round2).ok());
  auto take2 = client.TakeRoundOutput(7, 0);
  ASSERT_TRUE(take2.ok());
  // The proxy served round 1's recorded bytes instead of round 2's upload —
  // exactly what the engine's digest check must catch.
  ASSERT_EQ(take2->size(), 1u);
  EXPECT_EQ((*take2)[0].blob, round1[0].blob);
  EXPECT_EQ(proxy.stats().replayed_round_outputs, 1u);
}

// ---------------------------------------------------------------------------
// Batch envelope wire format.

TEST(BatchWireTest, RoundTrip) {
  std::vector<BatchCall> calls;
  calls.push_back(BatchCall{7, MakeBytes({1, 2, 3})});
  calls.push_back(BatchCall{9, Bytes()});
  calls.push_back(BatchCall{0xFFFFFFFFFFFFFFFFULL, MakeBytes({4})});
  Bytes frame = EncodeBatchFrame(calls);
  EXPECT_TRUE(IsBatchFrame(frame));
  auto decoded = DecodeBatchFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 3u);
  for (size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ((*decoded)[i].correlation_id, calls[i].correlation_id);
    EXPECT_EQ((*decoded)[i].payload, calls[i].payload);
  }
}

TEST(BatchWireTest, SingleCallFramesAreNotBatchFrames) {
  // Every MsgType and reply StatusCode is below kBatchMagic, so legacy
  // frames can never be mistaken for a batch envelope.
  Bytes request;
  ByteWriter(&request).PutU8(static_cast<uint8_t>(MsgType::kFetchPosts));
  EXPECT_FALSE(IsBatchFrame(request));
  Bytes reply = EncodeReplyOk(MakeBytes({1}));
  EXPECT_FALSE(IsBatchFrame(reply));
  EXPECT_TRUE(IsCorruption(DecodeBatchFrame(request).status()));
}

TEST(BatchWireTest, RejectsHostileCountBeforeAllocation) {
  // A count claiming 4 billion calls inside a 10-byte frame must be rejected
  // by arithmetic on the remaining length, never by attempting the reserve.
  Bytes frame;
  ByteWriter w(&frame);
  w.PutU8(kBatchMagic);
  w.PutU8(kBatchVersion);
  w.PutU32(0xFFFFFFFFu);
  EXPECT_TRUE(IsCorruption(DecodeBatchFrame(frame).status()));
}

TEST(BatchWireTest, RejectsCountBeyondBatchCap) {
  // Enough real bytes to back the claimed count, but over kMaxCallsPerBatch:
  // rejected before any per-call decode.
  Bytes frame;
  ByteWriter w(&frame);
  w.PutU8(kBatchMagic);
  w.PutU8(kBatchVersion);
  const uint32_t count = kMaxCallsPerBatch + 1;
  w.PutU32(count);
  Bytes backing(static_cast<size_t>(count) * 12, 0);
  w.PutRaw(backing.data(), backing.size());
  auto decoded = DecodeBatchFrame(frame);
  ASSERT_TRUE(IsCorruption(decoded.status()));
  EXPECT_NE(decoded.status().ToString().find("kMaxCallsPerBatch"),
            std::string::npos);
}

TEST(BatchWireTest, RejectsEmptyVersionedAndTrailingGarbage) {
  Bytes empty;
  ByteWriter we(&empty);
  we.PutU8(kBatchMagic);
  we.PutU8(kBatchVersion);
  we.PutU32(0);
  EXPECT_TRUE(IsCorruption(DecodeBatchFrame(empty).status()));

  std::vector<BatchCall> calls = {BatchCall{1, MakeBytes({1})}};
  Bytes versioned = EncodeBatchFrame(calls);
  versioned[1] = kBatchVersion + 1;
  EXPECT_TRUE(IsCorruption(DecodeBatchFrame(versioned).status()));

  Bytes trailing = EncodeBatchFrame(calls);
  trailing.push_back(0x00);
  EXPECT_TRUE(IsCorruption(DecodeBatchFrame(trailing).status()));
}

// ---------------------------------------------------------------------------
// Batched, pipelined client submission.

BatchOptions TestBatch(size_t max_calls, size_t inflight = 4) {
  BatchOptions batch;
  batch.max_calls_per_frame = max_calls;
  batch.max_inflight_frames = inflight;
  return batch;
}

Bytes NumAckedRequest(uint64_t query_id) {
  Bytes req;
  ByteWriter w(&req);
  w.PutU8(static_cast<uint8_t>(MsgType::kNumAcknowledged));
  w.PutU64(query_id);
  return req;
}

TEST(SsiClientBatchTest, QueuedCallsCoalesceIntoOneFrame) {
  SsiNode node;
  size_t handler_frames = 0;
  LoopbackTransport transport([&](const Bytes& req) -> Result<Bytes> {
    ++handler_frames;
    return node.Handle(req);
  });
  obs::MetricsRegistry metrics;
  SsiClient client(&transport, RetryPolicy{}, &metrics, TestBatch(16));

  std::vector<SsiClient::CallToken> tokens;
  for (int i = 0; i < 16; ++i) tokens.push_back(client.CallAsync(NumAckedRequest(1)));
  for (SsiClient::CallToken token : tokens) {
    auto body = client.Await(token);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    auto n = ByteReader(*body).GetU64();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
  }
  EXPECT_EQ(handler_frames, 1u);
  auto snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("net.frames_sent"), 1u);
  EXPECT_EQ(snapshot.counters.at("net.calls_sent"), 16u);
  const auto& per_frame = snapshot.histograms.at("net.calls_per_frame");
  EXPECT_EQ(per_frame.count, 1u);
  EXPECT_EQ(per_frame.sum, 16.0);
}

TEST(SsiClientBatchTest, OutOfOrderRepliesAreMatchedByCorrelationId) {
  // An echoing server that completes the batch in reverse order: only
  // correlation-ID matching can hand each caller its own bytes back.
  LoopbackTransport transport([&](const Bytes& req) -> Result<Bytes> {
    TCELLS_ASSIGN_OR_RETURN(std::vector<BatchCall> calls,
                            DecodeBatchFrame(req));
    std::vector<BatchCall> replies;
    for (BatchCall& call : calls) {
      replies.push_back(BatchCall{call.correlation_id,
                                  EncodeReplyOk(call.payload)});
    }
    std::reverse(replies.begin(), replies.end());
    return EncodeBatchFrame(replies);
  });
  SsiClient client(&transport, RetryPolicy{}, nullptr, TestBatch(8));

  std::vector<SsiClient::CallToken> tokens;
  std::vector<Bytes> payloads;
  for (uint8_t i = 0; i < 8; ++i) {
    payloads.push_back(Bytes(4, i));
    tokens.push_back(client.CallAsync(payloads.back()));
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    auto body = client.Await(tokens[i]);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    EXPECT_EQ(*body, payloads[i]);
  }
}

TEST(SsiClientBatchTest, UnknownAndDuplicateCorrelationIdsAreDropped) {
  // The reply batch answers call 0 twice and invents an ID nobody asked for;
  // call 0 keeps the first answer, call 1 fails loudly (its reply is
  // missing), and nothing is silently cross-wired.
  obs::MetricsRegistry metrics;
  LoopbackTransport transport([&](const Bytes& req) -> Result<Bytes> {
    TCELLS_ASSIGN_OR_RETURN(std::vector<BatchCall> calls,
                            DecodeBatchFrame(req));
    std::vector<BatchCall> replies;
    replies.push_back(BatchCall{calls[0].correlation_id,
                                EncodeReplyOk(MakeBytes({1}))});
    replies.push_back(BatchCall{calls[0].correlation_id,
                                EncodeReplyOk(MakeBytes({2}))});
    replies.push_back(BatchCall{calls[0].correlation_id + 1000000,
                                EncodeReplyOk(MakeBytes({3}))});
    return EncodeBatchFrame(replies);
  });
  RetryPolicy policy;
  policy.max_attempts = 1;
  SsiClient client(&transport, policy, &metrics, TestBatch(2));

  SsiClient::CallToken a = client.CallAsync(MakeBytes({0xAA}));
  SsiClient::CallToken b = client.CallAsync(MakeBytes({0xBB}));
  auto reply_a = client.Await(a);
  ASSERT_TRUE(reply_a.ok()) << reply_a.status().ToString();
  EXPECT_EQ(*reply_a, MakeBytes({1}));  // first answer wins
  auto reply_b = client.Await(b);
  EXPECT_TRUE(IsCorruption(reply_b.status())) << reply_b.status().ToString();
  EXPECT_EQ(metrics.snapshot().counters.at("net.stale_replies_dropped"), 2u);
}

TEST(SsiClientBatchTest, BatchMixesSuccessesAndFailures) {
  // One frame carrying one servable call and one application error: each
  // call completes with its own verdict, the error does not poison the
  // frame.
  SsiNode node;
  LoopbackTransport transport(node.handler());
  SsiClient client(&transport, RetryPolicy{}, nullptr, TestBatch(4));

  ssi::Partition partition;
  partition.items = {MakeItem(1, false)};
  ASSERT_TRUE(client.StagePartition(7, /*token=*/0, partition).ok());

  auto make_fetch = [](uint64_t query_id) {
    Bytes req;
    ByteWriter w(&req);
    w.PutU8(static_cast<uint8_t>(MsgType::kFetchPartition));
    w.PutU64(query_id);
    w.PutU64(0);
    return req;
  };
  SsiClient::CallToken hit = client.CallAsync(make_fetch(7));
  SsiClient::CallToken miss = client.CallAsync(make_fetch(99));
  auto fetched = client.Await(hit);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  auto decoded = ssi::Partition::Decode(*fetched);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->items.size(), 1u);
  EXPECT_TRUE(IsNotFound(client.Await(miss).status()));
}

TEST(SsiClientBatchTest, WholeFrameStaleReplayIsRetriedWithFreshIds) {
  // FaultyTransport replays frame 1's reply for frame 2. The replayed batch
  // carries frame 1's correlation IDs, which match nothing in frame 2's
  // attempt — the client must treat the exchange as Unavailable and retry
  // with fresh IDs rather than consume the stale bytes.
  SsiNode node;
  LoopbackTransport loopback(node.handler());
  FaultPlan plan;
  ScriptedFault fault;
  fault.type = static_cast<MsgType>(kBatchMagic);
  fault.kind = FaultKind::kStaleReplay;
  fault.scope = ScriptedFault::Scope::kPerKey;
  fault.nth = 2;
  plan.script.push_back(fault);
  VirtualClock vclock;
  FaultyTransport faulty(&loopback, plan, &vclock);
  obs::MetricsRegistry metrics;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.clock = &vclock;
  SsiClient client(&faulty, policy, &metrics, TestBatch(16));

  auto first = client.NumAcknowledged(1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = client.NumAcknowledged(2);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(faulty.injected_count(), 1u);
  auto counters = metrics.snapshot().counters;
  EXPECT_EQ(counters.at("net.retries"), 1u);
  EXPECT_GE(counters.at("net.stale_replies_dropped"), 1u);
  // calls_sent counts physical attempts, so the invariant
  // frames_sent <= calls_sent survives the retry.
  EXPECT_EQ(counters.at("net.frames_sent"), 3u);
  EXPECT_EQ(counters.at("net.calls_sent"), 3u);
}

TEST(SsiClientBatchTest, DetachedAckFlushesWithLaterTraffic) {
  // In batched mode TakeRoundOutput's ack is detached: it rides a later
  // frame instead of costing its own round trip, and the server state is
  // still erased once it lands.
  SsiNode node;
  LoopbackTransport transport(node.handler());
  SsiClient client(&transport, RetryPolicy{}, nullptr, TestBatch(8));

  std::vector<ssi::EncryptedItem> output = {MakeItem(3, false)};
  ASSERT_TRUE(client.UploadRoundOutput(7, 0, output).ok());
  auto taken = client.TakeRoundOutput(7, 0);
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken->size(), 1u);
  client.Flush();  // pushes the detached ack out
  // The ack erased the transfer state: a re-take finds nothing.
  EXPECT_TRUE(IsNotFound(client.TakeRoundOutput(7, 0).status()));
}

TEST(SsiClientBatchTest, GroupCommitAcrossThreadsKeepsEveryCallIntact) {
  SsiNode node;
  LoopbackTransport transport(node.handler());
  obs::MetricsRegistry metrics;
  SsiClient client(&transport, RetryPolicy{}, &metrics, TestBatch(64, 2));

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        auto n = client.NumAcknowledged(1);
        if (!n.ok() || *n != 0) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  auto snapshot = metrics.snapshot();
  const uint64_t calls = snapshot.counters.at("net.calls_sent");
  const uint64_t frames = snapshot.counters.at("net.frames_sent");
  EXPECT_EQ(calls, static_cast<uint64_t>(kThreads * kCallsPerThread));
  EXPECT_LE(frames, calls);
  EXPECT_GE(frames, 1u);
  const auto& per_frame = snapshot.histograms.at("net.calls_per_frame");
  EXPECT_EQ(per_frame.count, frames);
  EXPECT_EQ(per_frame.sum, static_cast<double>(calls));
}

TEST(SsiClientBatchTest, SingleCallModeKeepsLegacyWireFormat) {
  // max_calls_per_frame == 1: the request bytes ARE the frame — no batch
  // envelope, no correlation IDs, bit-identical to the pre-batching client.
  Bytes seen;
  LoopbackTransport transport([&](const Bytes& req) -> Result<Bytes> {
    seen = req;
    Bytes body;
    ByteWriter(&body).PutU64(0);
    return EncodeReplyOk(body);
  });
  SsiClient client(&transport, RetryPolicy{}, nullptr, TestBatch(1));
  ASSERT_TRUE(client.NumAcknowledged(5).ok());
  EXPECT_EQ(seen, NumAckedRequest(5));
  EXPECT_FALSE(IsBatchFrame(seen));
}

TEST(SsiNodeTest, ServesBatchFramesInOrder) {
  // The node decodes a batch envelope, dispatches in frame order under one
  // mutex hold, and replies with a batch frame carrying the same IDs.
  SsiNode node;
  LoopbackTransport transport(node.handler());
  SsiClient poster(&transport);
  ssi::QueryPost post;
  post.query_id = 1;
  ASSERT_TRUE(poster.PostGlobal(post).ok());

  std::vector<BatchCall> calls;
  Bytes ack;
  ByteWriter wa(&ack);
  wa.PutU8(static_cast<uint8_t>(MsgType::kAcknowledge));
  wa.PutU64(3);  // tds_id
  wa.PutU64(1);  // query_id
  calls.push_back(BatchCall{10, ack});
  calls.push_back(BatchCall{11, NumAckedRequest(1)});
  auto reply = node.Handle(EncodeBatchFrame(calls));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(IsBatchFrame(*reply));
  auto replies = DecodeBatchFrame(*reply);
  ASSERT_TRUE(replies.ok());
  ASSERT_EQ(replies->size(), 2u);
  EXPECT_EQ((*replies)[0].correlation_id, 10u);
  EXPECT_EQ((*replies)[1].correlation_id, 11u);
  // The ack executed before the count in the same frame: NumAcknowledged
  // already sees it.
  auto body = DecodeReply((*replies)[1].payload);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  auto n = ByteReader(*body).GetU64();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

}  // namespace
}  // namespace tcells::net
