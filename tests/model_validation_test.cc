// Cross-validation between the functional simulation (real ciphertext
// through a real SSI) and the §6.1 analytical cost model: the model's
// qualitative claims must hold for *measured* quantities too. This is the
// reproduction's integrity check — if the implementation and the model
// drifted apart, these tests catch it.
//
// Also: the end-to-end key-rotation story combining LeakLog (a TDS is found
// compromised) with broadcast revocation (everyone else moves to new keys).
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/broadcast.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells {
namespace {

using protocol::RunOptions;
using protocol::RunOutcome;

struct MeasuredWorld {
  std::shared_ptr<const crypto::KeyStore> keys;
  std::shared_ptr<tds::Authority> authority;
  std::unique_ptr<protocol::Querier> querier;
  std::unique_ptr<Engine> engine;
  protocol::Fleet* fleet = nullptr;  // owned by the engine
  sim::DeviceModel device;
  uint64_t next_id = 1;

  explicit MeasuredWorld(size_t n, size_t groups, uint64_t seed = 4242) {
    keys = crypto::KeyStore::CreateForTest(seed);
    authority = std::make_shared<tds::Authority>(Bytes(16, 0x71));
    workload::GenericOptions gopts;
    gopts.num_tds = n;
    gopts.num_groups = groups;
    gopts.seed = seed;
    auto built = workload::BuildGenericFleet(gopts, keys, authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    querier = std::make_unique<protocol::Querier>(
        "val", authority->Issue("val"), keys);
    engine = Engine::Create(std::move(built)).ValueOrDie();
    fleet = &engine->fleet();
  }

  RunOutcome Run(protocol::Protocol& protocol, const std::string& sql,
                 RunOptions opts) {
    return engine->Run(protocol, *querier, next_id++, sql, opts).ValueOrDie();
  }

  std::shared_ptr<const std::vector<storage::Tuple>> Domain(size_t groups) {
    auto domain = std::make_shared<std::vector<storage::Tuple>>();
    for (size_t g = 0; g < groups; ++g) {
      domain->push_back(
          storage::Tuple({storage::Value::String(workload::GroupName(g))}));
    }
    return domain;
  }
};

const char* kSql = "SELECT grp, SUM(val), COUNT(*) FROM T GROUP BY grp";

TEST(ModelValidationTest, SAggRoundCountTracksLogAlpha) {
  // Model: n = ceil(log_alpha(N_t / G)) merge rounds. Measure it.
  RunOptions opts;
  opts.compute_availability = 0.3;
  opts.expected_groups = 6;
  for (size_t n : {100u, 400u}) {
    MeasuredWorld w(n, 6);
    protocol::SAggProtocol s_agg;
    auto outcome = w.Run(s_agg, kSql, opts);
    double alpha = std::ceil(opts.alpha);
    // Round 1 consumes alpha*G tuples per partition, later rounds alpha.
    double after_first =
        std::ceil(static_cast<double>(n) / (alpha * 6.0));
    double predicted = 1 + std::max(0.0, std::ceil(std::log(after_first) /
                                                   std::log(alpha)));
    EXPECT_NEAR(static_cast<double>(outcome.metrics.aggregation_rounds),
                predicted, 1.0)
        << "n=" << n;
  }
}

TEST(ModelValidationTest, MeasuredLoadOrderingMatchesModel) {
  // Model: Load(C_Noise, big G) >> Load(R2) > Load(ED_Hist) ~ Load(S_Agg).
  const size_t kN = 300, kG = 24;
  RunOptions opts;
  opts.compute_availability = 0.3;
  opts.expected_groups = kG;

  auto measure = [&](auto&& make_protocol) {
    MeasuredWorld w(kN, kG);
    auto protocol = make_protocol(w);
    auto outcome = w.Run(*protocol, kSql, opts);
    return outcome.metrics.LoadBytes();
  };

  uint64_t load_sagg = measure([](MeasuredWorld& w) {
    (void)w;
    return std::make_unique<protocol::SAggProtocol>();
  });
  uint64_t load_r2 = measure([&](MeasuredWorld& w) {
    return std::make_unique<protocol::NoiseProtocol>(false, w.Domain(kG));
  });
  uint64_t load_c = measure([&](MeasuredWorld& w) {
    return std::make_unique<protocol::NoiseProtocol>(true, w.Domain(kG));
  });

  EXPECT_GT(load_c, 5 * load_sagg);  // nf = G-1 = 23 fakes per tuple
  EXPECT_GT(load_c, 2 * load_r2);    // 23 vs 2 fakes
  EXPECT_GT(load_r2, load_sagg);     // any noise beats no noise
}

TEST(ModelValidationTest, MeasuredSAggTqGrowsWithGOthersShrink) {
  RunOptions opts;
  opts.compute_availability = 0.3;
  auto tq = [&](size_t groups, bool s_agg_proto) {
    MeasuredWorld w(360, groups);
    opts.expected_groups = groups;
    if (s_agg_proto) {
      protocol::SAggProtocol p;
      return w.Run(p, kSql, opts).metrics.Tq();
    }
    protocol::NoiseProtocol p(false, w.Domain(groups));
    return w.Run(p, kSql, opts).metrics.Tq();
  };
  // S_Agg: more groups -> bigger partials every round -> slower.
  EXPECT_GT(tq(36, true), tq(2, true));
  // R2_Noise: more groups -> smaller independent partitions -> not slower
  // by more than noise jitter.
  EXPECT_LT(tq(36, false), tq(2, false) * 1.5);
}

TEST(ModelValidationTest, MeasuredPtdsOrderingAtLargeG) {
  // Model (Fig 10a): at sizeable G, tag-based protocols mobilize more TDSs
  // than S_Agg's shrinking merge tree.
  const size_t kN = 300, kG = 30;
  RunOptions opts;
  opts.compute_availability = 1.0;
  opts.expected_groups = kG;

  MeasuredWorld w1(kN, kG);
  protocol::SAggProtocol s_agg;
  size_t compute_sagg =
      w1.Run(s_agg, kSql, opts).metrics.accountant.per_tds().size();

  MeasuredWorld w2(kN, kG);
  protocol::NoiseProtocol noise(false, w2.Domain(kG));
  size_t compute_noise =
      w2.Run(noise, kSql, opts).metrics.accountant.per_tds().size();
  // Every TDS collects in both runs; compare total participations instead.
  MeasuredWorld w3(kN, kG);
  protocol::SAggProtocol s_agg2;
  auto m_sagg = w3.Run(s_agg2, kSql, opts).metrics;
  MeasuredWorld w4(kN, kG);
  protocol::NoiseProtocol noise2(false, w4.Domain(kG));
  auto m_noise = w4.Run(noise2, kSql, opts).metrics;
  EXPECT_GT(
      m_noise.accountant.phase(sim::Phase::kAggregation).tds_participations,
      m_sagg.accountant.phase(sim::Phase::kAggregation).tds_participations);
  (void)compute_sagg;
  (void)compute_noise;
}

// ---------------------------------------------------------------------------
// Compromise -> revoke -> rotate: the full future-work story.

TEST(KeyRotationStoryTest, CompromiseRevokeRotate) {
  const size_t kN = 40;
  Rng rng(55);

  // Broadcast channel established at deployment time; each device holds its
  // path keys.
  auto channel =
      crypto::BroadcastChannel::Create(rng.NextBytes(16), kN).ValueOrDie();

  // Epoch 0 keys, distributed by broadcast (nobody revoked yet).
  Bytes k1_e0 = rng.NextBytes(16), k2_e0 = rng.NextBytes(16);
  Bytes bundle_e0;
  {
    ByteWriter w(&bundle_e0);
    w.PutBytes(k1_e0);
    w.PutBytes(k2_e0);
  }
  auto msg_e0 = channel.Encrypt(bundle_e0, {}, &rng).ValueOrDie();

  auto unwrap = [&](size_t device) -> Result<std::shared_ptr<const crypto::KeyStore>> {
    auto keys = channel.DeviceKeys(device).ValueOrDie();
    TCELLS_ASSIGN_OR_RETURN(Bytes plain,
                            crypto::BroadcastChannel::Decrypt(msg_e0, keys));
    ByteReader r(plain);
    TCELLS_ASSIGN_OR_RETURN(Bytes k1, r.GetBytes());
    TCELLS_ASSIGN_OR_RETURN(Bytes k2, r.GetBytes());
    return crypto::KeyStore::Create(k1, k2);
  };

  // Build the fleet with broadcast-delivered keys; devices 10..19 are
  // compromised (leak everything they decrypt); 13 is the one we revoke.
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x13));
  auto leak = std::make_shared<tds::LeakLog>();
  auto fleet = std::make_unique<protocol::Fleet>();
  workload::GenericOptions gopts;
  gopts.num_groups = 4;
  Rng data_rng(56);
  for (uint64_t i = 0; i < kN; ++i) {
    auto server = std::make_unique<tds::TrustedDataServer>(
        i, unwrap(i).ValueOrDie(), authority, tds::AccessPolicy::AllowAll());
    if (i >= 10 && i < 20) server->set_leak_log(leak);
    ASSERT_TRUE(
        workload::PopulateGenericDb(&server->db(), i, gopts, &data_rng).ok());
    fleet->Add(std::move(server));
  }

  // A query runs; the compromised device sees plaintext.
  protocol::Querier querier_e0(
      "op", authority->Issue("op"),
      crypto::KeyStore::Create(k1_e0, k2_e0).ValueOrDie());
  protocol::SAggProtocol s_agg;
  RunOptions opts;
  opts.compute_availability = 1.0;  // ensure device 13 participates
  // Partition assignment is randomized; a few queries guarantee that some
  // compromised device handles a partition.
  auto engine_e0 = Engine::Create(std::move(fleet)).ValueOrDie();
  for (uint64_t qid = 1; qid <= 3; ++qid) {
    auto outcome =
        engine_e0->Run(s_agg, querier_e0, qid, kSql, opts).ValueOrDie();
    EXPECT_FALSE(outcome.result.rows.empty());
  }
  EXPECT_GT(leak->NumLeakedRawTuples() + leak->NumLeakedGroups(), 0u);

  // The operator rotates: epoch-1 keys broadcast with device 13 revoked.
  Bytes k1_e1 = rng.NextBytes(16), k2_e1 = rng.NextBytes(16);
  Bytes bundle_e1;
  {
    ByteWriter w(&bundle_e1);
    w.PutBytes(k1_e1);
    w.PutBytes(k2_e1);
  }
  auto msg_e1 = channel.Encrypt(bundle_e1, {13}, &rng).ValueOrDie();
  for (size_t i = 0; i < kN; ++i) {
    auto keys = channel.DeviceKeys(i).ValueOrDie();
    auto plain = crypto::BroadcastChannel::Decrypt(msg_e1, keys);
    EXPECT_EQ(plain.ok(), i != 13);
  }

  // Post-rotation queries run over the unrevoked sub-fleet with new keys;
  // the compromised device's k2 is useless against them.
  auto new_keys = crypto::KeyStore::Create(k1_e1, k2_e1).ValueOrDie();
  auto healthy = std::make_unique<protocol::Fleet>();
  Rng data_rng2(56);  // same data stream
  for (uint64_t i = 0; i < kN; ++i) {
    auto server = std::make_unique<tds::TrustedDataServer>(
        i, new_keys, authority, tds::AccessPolicy::AllowAll());
    ASSERT_TRUE(workload::PopulateGenericDb(&server->db(), i, gopts,
                                            &data_rng2)
                    .ok());
    if (i != 13) healthy->Add(std::move(server));
  }
  protocol::Querier querier_e1("op", authority->Issue("op"), new_keys);
  auto engine_e1 = Engine::Create(std::move(healthy)).ValueOrDie();
  auto outcome2 = engine_e1->Run(s_agg, querier_e1, 2, kSql, opts).ValueOrDie();
  auto oracle =
      protocol::ExecuteReference(engine_e1->fleet(), kSql).ValueOrDie();
  EXPECT_TRUE(outcome2.result.SameRows(oracle));

  // An epoch-0 key store cannot read epoch-1 traffic.
  auto old_keys = crypto::KeyStore::Create(k1_e0, k2_e0).ValueOrDie();
  Bytes probe = new_keys->k2_ndet().Encrypt(rng.NextBytes(16), &rng);
  EXPECT_FALSE(old_keys->k2_ndet().Decrypt(probe).ok());
}

}  // namespace
}  // namespace tcells
