// Allocation-count regression tests for the per-tuple hot path (`ctest -L
// perf`). The TDS partition paths are arena/scratch-backed: once a thread's
// workspace has warmed on the first partition, opening + folding a
// steady-state partition must not allocate per input item. A global
// operator new hook counts allocations; the bounds below are far under one
// allocation per item (256-item partitions), so a reintroduced per-tuple
// `new` fails loudly while legitimate per-*output* allocations (each sealed
// item owns its blob) stay comfortably inside the budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "crypto/keystore.h"
#include "ssi/messages.h"
#include "storage/tuple.h"
#include "tds/access_control.h"
#include "tds/tds.h"
#include "workload/generic.h"

namespace {

std::atomic<uint64_t> g_alloc_count{0};

}  // namespace

// Counting allocator hook: every global allocation bumps the counter. Kept
// trivial (malloc pass-through) so behaviour under sanitizers is unchanged
// apart from the count. GCC's mismatched-new-delete analysis assumes the
// default allocator and flags the malloc/free pairing; with every form
// replaced below the pairing is matched by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tcells::tds {
namespace {

using ssi::EncryptedItem;
using ssi::PayloadKind;
using storage::Tuple;
using storage::Value;

uint64_t CountAllocs(const std::function<void()>& fn) {
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  fn();
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

class AllocRegressionTest : public ::testing::Test {
 protected:
  AllocRegressionTest()
      : keys_(crypto::KeyStore::CreateForTest(21)),
        authority_(std::make_shared<Authority>(Bytes(16, 1))),
        rng_(555) {
    server_ = std::make_unique<TrustedDataServer>(
        /*id=*/0, keys_, authority_, AccessPolicy::AllowAll());
    workload::GenericOptions opts;
    opts.num_groups = 4;
    Rng data_rng(9);
    EXPECT_TRUE(
        workload::PopulateGenericDb(&server_->db(), 0, opts, &data_rng).ok());
  }

  ssi::QueryPost Post(const std::string& sql) {
    ssi::QueryPost post;
    post.query_id = 1;
    Bytes sql_bytes(sql.begin(), sql.end());
    post.encrypted_query = keys_->k1_ndet().Encrypt(sql_bytes, &rng_);
    post.querier_id = "q";
    post.credential_mac = authority_->Issue("q");
    return post;
  }

  /// A partition of `n` sealed true-tuple items spread over 4 groups —
  /// the shape one aggregation round feeds a TDS.
  ssi::Partition TruePartition(size_t n) {
    ssi::Partition partition;
    partition.items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Tuple t({Value::String(workload::GroupName(i % 4)),
               Value::Double(static_cast<double>(i))});
      Bytes payload = ssi::EncodePayload(PayloadKind::kTrueTuple, t.Encode());
      EncryptedItem item;
      item.blob = keys_->k2_ndet().Encrypt(payload, &rng_);
      partition.items.push_back(std::move(item));
    }
    return partition;
  }

  std::shared_ptr<const crypto::KeyStore> keys_;
  std::shared_ptr<Authority> authority_;
  Rng rng_;
  std::unique_ptr<TrustedDataServer> server_;
};

TEST_F(AllocRegressionTest, SteadyStateAggregationPartitionIsArenaBacked) {
  const size_t kItems = 256;
  auto post = Post("SELECT grp, AVG(val) FROM T GROUP BY grp");
  const sql::AnalyzedQuery* query = server_->OpenQuery(post).ValueOrDie();
  ssi::Partition partition = TruePartition(kItems);

  // Warm-up: grows the thread workspace (arena chunk, plains vector, encode
  // scratch) and the analysis caches.
  CollectionConfig config;
  ASSERT_TRUE(server_
                  ->ProcessAggregationPartition(*query, partition,
                                                OutputTagPolicy::kNone,
                                                config, &rng_)
                  .ok());

  // Steady state: decrypt + decode + accumulate 256 items, emit one sealed
  // partial. The budget covers the output item, the per-call
  // GroupedAggregation (4 groups x map nodes/states) and small-vector noise
  // — but at well under one allocation per input item, a per-tuple copy or
  // per-item buffer sneaking back into the path trips this immediately.
  const uint64_t allocs = CountAllocs([&] {
    auto out = server_->ProcessAggregationPartition(
        *query, partition, OutputTagPolicy::kNone, config, &rng_);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out.ValueOrDie().size(), 1u);
  });
  EXPECT_LE(allocs, kItems / 2) << "per-item allocations are back in the "
                                   "aggregation hot path";
}

TEST_F(AllocRegressionTest, SteadyStateFilteringIsArenaBacked) {
  const size_t kItems = 256;
  auto post = Post("SELECT grp, val FROM T WHERE val >= 0.0");
  const sql::AnalyzedQuery* query = server_->OpenQuery(post).ValueOrDie();
  ssi::Partition partition = TruePartition(kItems);

  CollectionConfig config;
  ASSERT_TRUE(server_->ProcessFiltering(*query, partition, &rng_, config).ok());

  // Filtering re-encrypts every true tuple under k1, so the per-output blob
  // allocations are inherent: budget ~2 per item, not ~6 as before the
  // scratch-buffer rework.
  const uint64_t allocs = CountAllocs([&] {
    auto out = server_->ProcessFiltering(*query, partition, &rng_, config);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out.ValueOrDie().size(), kItems);
  });
  EXPECT_LE(allocs, 2 * kItems + 64)
      << "filtering output path regressed beyond ~2 allocations per item";
}

TEST_F(AllocRegressionTest, SteadyStateCollectionTickIsBounded) {
  auto post = Post("SELECT grp, AVG(val) FROM T GROUP BY grp");
  CollectionConfig config;  // kNDet
  // Warm-up fills the TDS query cache and the fleet-wide analysis memo.
  ASSERT_TRUE(server_->ProcessCollection(post, config, &rng_).ok());

  // A steady-state collection tick on this TDS: cache-hit on the analysis,
  // execute the 1-row local query, seal one item. No re-lex, no re-analyze
  // (the analyzer allocates hundreds of AST nodes; this budget is far below
  // one parse).
  const uint64_t allocs = CountAllocs([&] {
    auto out = server_->ProcessCollection(post, config, &rng_);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out.ValueOrDie().size(), 1u);
  });
  EXPECT_LE(allocs, 64u) << "collection tick re-analyzes or re-allocates "
                            "per-query state on the cache-hit path";
}

}  // namespace
}  // namespace tcells::tds
