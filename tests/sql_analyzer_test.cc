// Tests for semantic analysis: binding, validation, collection/output
// layouts.
#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "workload/smart_meter.h"

namespace tcells::sql {
namespace {

storage::Catalog MakeCatalog() {
  storage::Catalog cat;
  EXPECT_TRUE(cat.AddTable("Consumer", workload::ConsumerSchema()).ok());
  EXPECT_TRUE(cat.AddTable("Power", workload::PowerSchema()).ok());
  return cat;
}

TEST(AnalyzerTest, PlainSfwBindsColumns) {
  auto cat = MakeCatalog();
  auto q = AnalyzeSql("SELECT cid, district FROM Consumer WHERE cid > 5", cat)
               .ValueOrDie();
  EXPECT_FALSE(q.is_aggregation);
  ASSERT_EQ(q.select_row_exprs.size(), 2u);
  EXPECT_EQ(q.select_row_exprs[0]->bound_index, 0);
  EXPECT_EQ(q.select_row_exprs[1]->bound_index, 1);
  EXPECT_EQ(q.result_schema.num_columns(), 2u);
  EXPECT_EQ(q.result_schema.column(1).type, storage::ValueType::kString);
}

TEST(AnalyzerTest, StarExpansion) {
  auto cat = MakeCatalog();
  auto q = AnalyzeSql("SELECT * FROM Consumer", cat).ValueOrDie();
  EXPECT_EQ(q.select_row_exprs.size(), 3u);
  EXPECT_EQ(q.result_schema.column(0).name, "Consumer.cid");
}

TEST(AnalyzerTest, JoinCombinedSchema) {
  auto cat = MakeCatalog();
  auto q = AnalyzeSql(
      "SELECT P.cons FROM Power P, Consumer C WHERE C.cid = P.cid", cat)
      .ValueOrDie();
  EXPECT_EQ(q.combined_schema.num_columns(), 6u);
  // Power first: cons is combined index 1.
  EXPECT_EQ(q.select_row_exprs[0]->bound_index, 1);
  EXPECT_EQ(q.combined_origin[1].first, "Power");
  EXPECT_EQ(q.combined_origin[3].first, "Consumer");
}

TEST(AnalyzerTest, AmbiguousColumnRejected) {
  auto cat = MakeCatalog();
  // cid exists in both tables.
  EXPECT_FALSE(AnalyzeSql("SELECT cid FROM Power, Consumer", cat).ok());
}

TEST(AnalyzerTest, UnknownColumnAndTable) {
  auto cat = MakeCatalog();
  EXPECT_FALSE(AnalyzeSql("SELECT nope FROM Consumer", cat).ok());
  EXPECT_FALSE(AnalyzeSql("SELECT cid FROM Nope", cat).ok());
  EXPECT_FALSE(AnalyzeSql("SELECT X.cid FROM Consumer C", cat).ok());
}

TEST(AnalyzerTest, DuplicateTableAliasRejected) {
  auto cat = MakeCatalog();
  EXPECT_FALSE(AnalyzeSql("SELECT C.cid FROM Consumer C, Power C", cat).ok());
}

TEST(AnalyzerTest, AggregationLayout) {
  auto cat = MakeCatalog();
  auto q = AnalyzeSql(
      "SELECT district, AVG(cons), COUNT(*) FROM Consumer, Power "
      "WHERE Consumer.cid = Power.cid GROUP BY district", cat)
      .ValueOrDie();
  EXPECT_TRUE(q.is_aggregation);
  EXPECT_EQ(q.key_arity, 1u);
  // Collection tuple: [district, cons] — COUNT(*) needs no input column.
  ASSERT_EQ(q.collection_exprs.size(), 2u);
  ASSERT_EQ(q.agg_specs.size(), 2u);
  EXPECT_EQ(q.agg_specs[0].kind, AggKind::kAvg);
  EXPECT_EQ(q.agg_specs[0].input_index, 1);
  EXPECT_EQ(q.agg_specs[1].kind, AggKind::kCount);
  EXPECT_EQ(q.agg_specs[1].input_index, -1);
  EXPECT_EQ(q.collection_schema.num_columns(), 2u);
  EXPECT_EQ(q.result_schema.num_columns(), 3u);
}

TEST(AnalyzerTest, HavingAggregatesGetSlots) {
  auto cat = MakeCatalog();
  auto q = AnalyzeSql(
      "SELECT district, AVG(cons) FROM Consumer, Power "
      "WHERE Consumer.cid = Power.cid "
      "GROUP BY district HAVING COUNT(DISTINCT Consumer.cid) > 10", cat)
      .ValueOrDie();
  // AVG + COUNT DISTINCT = two slots; collection carries district, cons, cid.
  EXPECT_EQ(q.agg_specs.size(), 2u);
  EXPECT_EQ(q.collection_exprs.size(), 3u);
  ASSERT_NE(q.having, nullptr);
}

TEST(AnalyzerTest, NonGroupedColumnInSelectRejected) {
  auto cat = MakeCatalog();
  EXPECT_FALSE(AnalyzeSql(
      "SELECT accomodation, AVG(cons) FROM Consumer, Power "
      "GROUP BY district", cat).ok());
}

TEST(AnalyzerTest, GlobalAggregateWithoutGroupBy) {
  auto cat = MakeCatalog();
  auto q = AnalyzeSql("SELECT COUNT(*), MAX(cons) FROM Power", cat)
               .ValueOrDie();
  EXPECT_TRUE(q.is_aggregation);
  EXPECT_EQ(q.key_arity, 0u);
  EXPECT_EQ(q.agg_specs.size(), 2u);
}

TEST(AnalyzerTest, HavingWithoutAggregationRejected) {
  auto cat = MakeCatalog();
  EXPECT_FALSE(
      AnalyzeSql("SELECT cid FROM Consumer HAVING cid > 1", cat).ok());
}

TEST(AnalyzerTest, AggregateInWhereRejected) {
  auto cat = MakeCatalog();
  EXPECT_FALSE(AnalyzeSql(
      "SELECT district FROM Consumer WHERE COUNT(*) > 1 GROUP BY district",
      cat).ok());
}

TEST(AnalyzerTest, StarInAggregationQueryRejected) {
  auto cat = MakeCatalog();
  EXPECT_FALSE(AnalyzeSql(
      "SELECT *, COUNT(*) FROM Consumer GROUP BY district", cat).ok());
}

TEST(AnalyzerTest, SelectExpressionOverGroupKeyAndAggregate) {
  auto cat = MakeCatalog();
  auto q = AnalyzeSql(
      "SELECT hour, MAX(cons) - MIN(cons) AS spread FROM Power GROUP BY hour",
      cat).ValueOrDie();
  EXPECT_EQ(q.agg_specs.size(), 2u);
  EXPECT_EQ(q.result_schema.column(1).name, "spread");
}

TEST(AnalyzerTest, SizeClausePropagates) {
  auto cat = MakeCatalog();
  auto q = AnalyzeSql("SELECT cid FROM Consumer SIZE 42", cat).ValueOrDie();
  ASSERT_TRUE(q.size.has_value());
  EXPECT_EQ(q.size->max_tuples.value(), 42u);
}

}  // namespace
}  // namespace tcells::sql
