// Observability invariants of the batched transport: the net.* counters and
// histograms the SsiClient emits must stay mutually consistent whatever the
// flush schedule does — frames never outnumber calls, the byte counter is
// exactly the frame-payload histogram plus framing overhead, and the
// calls-per-frame histogram accounts for every physical frame and call.
// These invariants are what make the metrics usable for regression tracking
// (bench_transport) and capacity math, so they are pinned under `ctest -L
// obs` alongside the span-tree cross-checks.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/ssi_client.h"
#include "protocol/protocols.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells {
namespace {

obs::MetricsRegistry::Snapshot RunAndSnapshot(size_t batch_max_calls,
                                              net::TransportKind transport) {
  workload::GenericOptions gopts;
  gopts.num_tds = 32;
  gopts.num_groups = 4;
  gopts.rows_per_tds = 2;
  gopts.seed = 4100;
  auto keys = crypto::KeyStore::CreateForTest(2026);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x44));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("obs", authority->Issue("obs"), keys);
  protocol::SAggProtocol protocol;
  protocol::RunOptions opts;
  opts.expected_groups = 4;
  opts.seed = 7;
  opts.num_threads = 2;

  Engine::Config cfg;
  cfg.options = opts;
  cfg.transport = transport;
  cfg.transport_batch_max_calls = batch_max_calls;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto outcome = engine->Run(
      protocol, querier, 1,
      "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), MAX(val) "
      "FROM T GROUP BY grp");
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return engine->metrics().snapshot();
}

void ExpectNetInvariants(const obs::MetricsRegistry::Snapshot& snapshot) {
  const uint64_t frames = snapshot.counters.at("net.frames_sent");
  const uint64_t calls = snapshot.counters.at("net.calls_sent");
  const uint64_t bytes = snapshot.counters.at("net.bytes_sent");
  ASSERT_GT(frames, 0u);

  // Coalescing can only shrink the frame count, never invent frames; both
  // counters tick per physical send attempt, so retries cannot break this.
  EXPECT_LE(frames, calls);

  // Every sent frame records its payload size: the byte counter must equal
  // the histogram's payload total plus the 4-byte length prefix per frame.
  const auto& frame_bytes = snapshot.histograms.at("net.frame_bytes");
  EXPECT_EQ(frame_bytes.count, frames);
  EXPECT_EQ(static_cast<double>(bytes), frame_bytes.sum + 4.0 * frames);

  // Every frame contributes one calls-per-frame sample, and the samples sum
  // back to the call count — no frame or call escapes the histogram.
  const auto& per_frame = snapshot.histograms.at("net.calls_per_frame");
  EXPECT_EQ(per_frame.count, frames);
  EXPECT_EQ(per_frame.sum, static_cast<double>(calls));
  EXPECT_GE(per_frame.min, 1.0);

  // The in-flight gauge histogram samples once per dispatched frame.
  const auto& inflight = snapshot.histograms.at("net.inflight_calls");
  EXPECT_EQ(inflight.count, frames);
  EXPECT_GE(inflight.min, 1.0);
}

TEST(TransportObsTest, SerialModeHoldsNetInvariants) {
  auto snapshot = RunAndSnapshot(1, net::TransportKind::kLoopback);
  ExpectNetInvariants(snapshot);
  // Without coalescing every frame carries exactly one call.
  EXPECT_EQ(snapshot.counters.at("net.frames_sent"),
            snapshot.counters.at("net.calls_sent"));
}

TEST(TransportObsTest, BatchedModeHoldsNetInvariantsAndCoalesces) {
  auto snapshot = RunAndSnapshot(32, net::TransportKind::kLoopback);
  ExpectNetInvariants(snapshot);
  // The collection phase fans fetches/uploads out in bulk, so batching must
  // demonstrably shrink the frame count below the call count.
  EXPECT_LT(snapshot.counters.at("net.frames_sent"),
            snapshot.counters.at("net.calls_sent"));
}

TEST(TransportObsTest, BatchedTcpHoldsNetInvariants) {
  ExpectNetInvariants(RunAndSnapshot(32, net::TransportKind::kTcp));
}

}  // namespace
}  // namespace tcells
