// Telemetry subsystem tests: metrics instruments, span trees, exporters —
// and the two engine-level contracts:
//   (a) the span tree's per-phase partition/byte totals agree with the
//       CostAccountant tallies for end-to-end runs of all five protocols;
//   (b) the exported trace is byte-identical across worker-thread counts.
#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells {
namespace {

// ---------------------------------------------------------------------------
// Instruments

TEST(MetricsTest, CounterAccumulates) {
  obs::MetricsRegistry registry;
  registry.counter("a").Increment();
  registry.counter("a").Add(4);
  registry.counter("b").Add(2);
  EXPECT_EQ(registry.counter("a").value(), 5u);
  EXPECT_EQ(registry.counter("b").value(), 2u);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.Record(0.5);    // <= 1
  h.Record(1.0);    // <= 1 (inclusive upper bound)
  h.Record(7.0);    // <= 10
  h.Record(1000.0); // overflow
  auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_DOUBLE_EQ(snap.sum, 1008.5);
}

TEST(MetricsTest, ExponentialBounds) {
  auto bounds = obs::Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(MetricsTest, FormatDoubleRoundTripsAndIsShort) {
  EXPECT_EQ(obs::FormatDouble(0.1), "0.1");
  EXPECT_EQ(obs::FormatDouble(42), "42");
  EXPECT_EQ(obs::FormatDouble(0), "0");
  // A value needing full precision still round-trips.
  double v = 1.0 / 3.0;
  EXPECT_EQ(std::strtod(obs::FormatDouble(v).c_str(), nullptr), v);
}

TEST(MetricsTest, JsonAndCsvExports) {
  obs::MetricsRegistry registry;
  registry.counter("engine.partitions").Add(3);
  registry.histogram("lat", {1.0, 2.0}).Record(1.5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"engine.partitions\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("counter,engine.partitions,value,3"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,le_2,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,le_inf,0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span trees

TEST(TraceTest, SpanTreeStructureAndSums) {
  obs::Trace trace(7);
  obs::Span* a = trace.StartSpan(nullptr, "round");
  a->counts["bytes"] = 10;
  obs::Span* b = trace.StartSpan(nullptr, "round");
  b->counts["bytes"] = 32;
  obs::Span* child = trace.StartSpan(a, "inner");
  child->counts["bytes"] = 1;
  EXPECT_EQ(trace.SumCount("round", "bytes"), 42u);
  EXPECT_EQ(trace.CountSpans("round"), 2u);
  EXPECT_EQ(trace.CountSpans("inner"), 1u);
  // Pre-order traversal, ids in creation order, parent links correct.
  std::vector<uint64_t> ids;
  trace.ForEach([&](const obs::Span& s, int) { ids.push_back(s.id); });
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 4, 3}));
  EXPECT_EQ(child->parent_id, a->id);
}

TEST(TraceTest, WallTimeExcludedFromExportByDefault) {
  obs::Trace trace(1);
  obs::Span* s = trace.StartSpan(nullptr, "round");
  s->wall_micros = 123.5;
  EXPECT_EQ(trace.ToJson().find("wall_micros"), std::string::npos);
  EXPECT_EQ(trace.ToCsv().find("wall_micros"), std::string::npos);
  obs::TraceExportOptions with_wall;
  with_wall.include_wall_time = true;
  EXPECT_NE(trace.ToJson(with_wall).find("wall_micros"), std::string::npos);
  EXPECT_NE(trace.ToCsv(with_wall).find("wall_micros"), std::string::npos);
}

TEST(TraceTest, TracerKeepsLatestPerQueryId) {
  obs::Tracer tracer;
  auto first = tracer.StartTrace(9);
  auto second = tracer.StartTrace(9);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.TraceFor(9).get(), second.get());
  EXPECT_EQ(tracer.TraceFor(1), nullptr);
  (void)first;
}

// ---------------------------------------------------------------------------
// Engine-level contracts

struct ObsWorld {
  ObsWorld() : ObsWorld(Engine::Config()) {}
  explicit ObsWorld(Engine::Config config) {
    keys = crypto::KeyStore::CreateForTest(91);
    authority = std::make_shared<tds::Authority>(Bytes(16, 0x31));
    workload::GenericOptions gopts;
    gopts.num_tds = 80;
    gopts.num_groups = 4;
    auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    config.options.compute_availability = 0.2;
    config.options.expected_groups = 4;
    engine = Engine::Create(std::move(fleet), config).ValueOrDie();
    querier = std::make_unique<protocol::Querier>("obs",
                                                  authority->Issue("obs"),
                                                  keys);
  }

  std::shared_ptr<const crypto::KeyStore> keys;
  std::shared_ptr<tds::Authority> authority;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<protocol::Querier> querier;
};

constexpr char kAggSql[] = "SELECT grp, COUNT(*), AVG(val) FROM T GROUP BY grp";
constexpr char kSfwSql[] = "SELECT grp, cat FROM T WHERE cat < 4";

/// Runs one protocol kind end to end through the Engine (discovery for the
/// kinds that need prior knowledge) and returns the outcome.
protocol::RunOutcome RunKind(ObsWorld& w, protocol::ProtocolKind kind,
                             uint64_t query_id) {
  const bool aggregation = kind != protocol::ProtocolKind::kBasicSfw;
  protocol::ProtocolInputs inputs;
  if (kind != protocol::ProtocolKind::kBasicSfw &&
      kind != protocol::ProtocolKind::kSAgg) {
    inputs = w.engine->DiscoverInputs(*w.querier, 1000 + query_id, kAggSql)
                 .ValueOrDie();
  }
  auto protocol = protocol::MakeProtocol(kind, inputs).ValueOrDie();
  return w.engine
      ->Run(*protocol, *w.querier, query_id, aggregation ? kAggSql : kSfwSql)
      .ValueOrDie();
}

/// (a) The span tree's totals must equal the CostAccountant's, phase by
/// phase. The two are accumulated independently (spans in the trace hooks,
/// tallies in RecordPartition), so this is a genuine cross-check.
void CheckTraceAgainstAccountant(const protocol::RunOutcome& outcome) {
  ASSERT_NE(outcome.trace, nullptr);
  const obs::Trace& trace = *outcome.trace;
  const sim::CostAccountant& acc = outcome.metrics.accountant;

  const auto& coll = acc.phase(sim::Phase::kCollection);
  EXPECT_EQ(trace.SumCount(obs::kSpanCollection, "partitions"),
            coll.partitions);
  EXPECT_EQ(trace.SumCount(obs::kSpanCollection, "bytes_out"),
            coll.bytes_uploaded);
  EXPECT_EQ(trace.SumCount(obs::kSpanCollection, "tuples"),
            coll.tuples_processed);

  const auto& agg = acc.phase(sim::Phase::kAggregation);
  EXPECT_EQ(trace.SumCount(obs::kSpanAggregationRound, "partitions"),
            agg.partitions);
  EXPECT_EQ(trace.SumCount(obs::kSpanAggregationRound, "bytes_in"),
            agg.bytes_downloaded);
  EXPECT_EQ(trace.SumCount(obs::kSpanAggregationRound, "bytes_out"),
            agg.bytes_uploaded);
  EXPECT_EQ(trace.SumCount(obs::kSpanAggregationRound, "dropouts"),
            agg.dropouts);
  EXPECT_EQ(trace.CountSpans(obs::kSpanAggregationRound), agg.iterations);

  const auto& filt = acc.phase(sim::Phase::kFiltering);
  EXPECT_EQ(trace.SumCount(obs::kSpanFilteringRound, "partitions"),
            filt.partitions);
  EXPECT_EQ(trace.SumCount(obs::kSpanFilteringRound, "bytes_in"),
            filt.bytes_downloaded);
  EXPECT_EQ(trace.SumCount(obs::kSpanFilteringRound, "bytes_out"),
            filt.bytes_uploaded);
  EXPECT_EQ(trace.CountSpans(obs::kSpanFilteringRound), filt.iterations);
}

TEST(ObsEngineTest, SpanTotalsMatchAccountantForAllProtocols) {
  const protocol::ProtocolKind kinds[] = {
      protocol::ProtocolKind::kBasicSfw, protocol::ProtocolKind::kSAgg,
      protocol::ProtocolKind::kRnfNoise, protocol::ProtocolKind::kCNoise,
      protocol::ProtocolKind::kEdHist};
  uint64_t query_id = 2;
  for (protocol::ProtocolKind kind : kinds) {
    ObsWorld w;
    protocol::RunOutcome outcome = RunKind(w, kind, query_id++);
    SCOPED_TRACE(protocol::ProtocolKindToString(kind));
    CheckTraceAgainstAccountant(outcome);
    // The engine also kept the trace addressable by query id.
    EXPECT_NE(w.engine->TraceFor(query_id - 1), nullptr);
  }
}

TEST(ObsEngineTest, SpanTotalsMatchAccountantUnderDropouts) {
  Engine::Config config;
  config.options.dropout_rate = 0.15;
  config.options.seed = 11;
  ObsWorld w(config);
  protocol::RunOutcome outcome =
      RunKind(w, protocol::ProtocolKind::kSAgg, 3);
  EXPECT_GT(outcome.metrics.accountant.phase(sim::Phase::kAggregation)
                .dropouts,
            0u);
  CheckTraceAgainstAccountant(outcome);
}

TEST(ObsEngineTest, RootSpanCarriesProtocolTags) {
  ObsWorld w;
  protocol::RunOutcome outcome =
      RunKind(w, protocol::ProtocolKind::kRnfNoise, 4);
  const obs::Span* root = outcome.trace->root();
  EXPECT_EQ(root->name, obs::kSpanQuery);
  EXPECT_EQ(root->labels.at("protocol"), std::string("Rnf_Noise"));
  // nf fakes per true tuple -> expected fake ratio nf/(nf+1).
  ASSERT_TRUE(root->counts.count("nf"));
  uint64_t nf = root->counts.at("nf");
  EXPECT_DOUBLE_EQ(root->values.at("expected_fake_ratio"),
                   static_cast<double>(nf) / static_cast<double>(nf + 1));
  EXPECT_GT(root->counts.at("group_domain_size"), 0u);
  EXPECT_GT(root->sim_end_seconds, 0.0);
}

TEST(ObsEngineTest, MetricsRegistryAgreesWithAccountant) {
  ObsWorld w;
  protocol::RunOutcome outcome = RunKind(w, protocol::ProtocolKind::kSAgg, 5);
  const sim::CostAccountant& acc = outcome.metrics.accountant;
  uint64_t uploaded = 0, downloaded = 0;
  for (sim::Phase phase : {sim::Phase::kCollection, sim::Phase::kAggregation,
                           sim::Phase::kFiltering}) {
    uploaded += acc.phase(phase).bytes_uploaded;
    downloaded += acc.phase(phase).bytes_downloaded;
  }
  obs::MetricsRegistry& m = w.engine->metrics();
  EXPECT_EQ(m.counter("engine.bytes_uploaded").value(), uploaded);
  EXPECT_EQ(m.counter("engine.bytes_downloaded").value(), downloaded);
  EXPECT_EQ(m.counter("engine.queries_completed").value(), 1u);
  EXPECT_GT(m.counter("engine.rounds").value(), 0u);
}

/// (b) The exported trace must be byte-identical for any worker-thread
/// count: spans are only written from the engine's serial sections, and the
/// default export omits wall times.
TEST(ObsEngineTest, TraceExportsIdenticalAcrossThreadCounts) {
  std::string baseline_json, baseline_csv;
  for (size_t threads : {1u, 2u, 8u}) {
    Engine::Config config;
    config.options.num_threads = threads;
    config.options.dropout_rate = 0.1;
    config.options.seed = 29;
    ObsWorld w(config);
    protocol::RunOutcome outcome =
        RunKind(w, protocol::ProtocolKind::kSAgg, 6);
    ASSERT_NE(outcome.trace, nullptr);
    std::string json = outcome.trace->ToJson();
    std::string csv = outcome.trace->ToCsv();
    if (threads == 1) {
      baseline_json = json;
      baseline_csv = csv;
      continue;
    }
    EXPECT_EQ(json, baseline_json) << "threads=" << threads;
    EXPECT_EQ(csv, baseline_csv) << "threads=" << threads;
  }
}

TEST(ObsEngineTest, SessionTracesConcurrentQueriesIndependently) {
  ObsWorld w;
  protocol::SAggProtocol s_agg;
  protocol::BasicSfwProtocol basic;
  auto session = w.engine->NewSession();
  ASSERT_TRUE(session.Submit(21, w.querier.get(), &s_agg, kAggSql).ok());
  ASSERT_TRUE(session.Submit(22, w.querier.get(), &basic, kSfwSql).ok());
  auto outcomes = session.RunAll().ValueOrDie();
  ASSERT_EQ(outcomes.size(), 2u);
  CheckTraceAgainstAccountant(outcomes.at(21));
  CheckTraceAgainstAccountant(outcomes.at(22));
  EXPECT_EQ(outcomes.at(21).trace->query_id(), 21u);
  EXPECT_EQ(outcomes.at(22).trace->query_id(), 22u);
  // Basic_SFW has no aggregation phase; its trace must say so too.
  EXPECT_EQ(outcomes.at(22).trace->CountSpans(obs::kSpanAggregationRound),
            0u);
  EXPECT_EQ(outcomes.at(21).trace->CountSpans(obs::kSpanDecrypt), 1u);
}

TEST(ObsEngineTest, TracingOffYieldsNoTraces) {
  Engine::Config config;
  config.tracing = false;
  ObsWorld w(config);
  protocol::RunOutcome outcome = RunKind(w, protocol::ProtocolKind::kSAgg, 8);
  EXPECT_EQ(outcome.trace, nullptr);
  EXPECT_EQ(w.engine->tracer().size(), 0u);
  // Metrics still accumulate.
  EXPECT_GT(w.engine->metrics().counter("engine.partitions").value(), 0u);
}

TEST(ObsEngineTest, EngineCreateValidatesOptions) {
  auto keys = crypto::KeyStore::CreateForTest(91);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x31));
  workload::GenericOptions gopts;
  gopts.num_tds = 4;
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  Engine::Config config;
  config.options.alpha = 1.0;  // merge rounds would never shrink the set
  EXPECT_FALSE(Engine::Create(std::move(fleet), config).ok());
  EXPECT_FALSE(Engine::Create(nullptr).ok());
}

}  // namespace
}  // namespace tcells
