// Tests for src/common: Status/Result, byte codec, hex, RNG, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/hex.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace tcells {
namespace {

// ---------------------------------------------------------------------------
// Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kPermissionDenied),
               "PermissionDenied");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  TCELLS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_EQ(r.ValueOr(-1), 21);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_FALSE(Doubled(0).ok());
  Result<int> r = Doubled(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader

TEST(BytesTest, RoundTripAllTypes) {
  Bytes buf;
  ByteWriter w(&buf);
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.5);
  w.PutString("hello");
  w.PutBytes({1, 2, 3});

  ByteReader r(buf);
  EXPECT_EQ(r.GetU8().ValueOrDie(), 0xab);
  EXPECT_EQ(r.GetU16().ValueOrDie(), 0x1234);
  EXPECT_EQ(r.GetU32().ValueOrDie(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().ValueOrDie(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI64().ValueOrDie(), -42);
  EXPECT_EQ(r.GetDouble().ValueOrDie(), 3.5);
  EXPECT_EQ(r.GetString().ValueOrDie(), "hello");
  EXPECT_EQ(r.GetBytes().ValueOrDie(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, LittleEndianLayout) {
  Bytes buf;
  ByteWriter w(&buf);
  w.PutU32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(BytesTest, UnderflowIsCorruption) {
  Bytes buf = {1, 2};
  ByteReader r(buf);
  auto res = r.GetU32();
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCorruption());
}

TEST(BytesTest, TruncatedLengthPrefixedBytes) {
  Bytes buf;
  ByteWriter w(&buf);
  w.PutU32(100);  // claims 100 bytes follow
  buf.push_back(7);
  ByteReader r(buf);
  EXPECT_FALSE(r.GetBytes().ok());
}

// ---------------------------------------------------------------------------
// Hex

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0xff, 0x12, 0xab};
  EXPECT_EQ(ToHex(data), "00ff12ab");
  EXPECT_EQ(FromHex("00ff12ab").ValueOrDie(), data);
  EXPECT_EQ(FromHex("00FF12AB").ValueOrDie(), data);
}

TEST(HexTest, RejectsBadInput) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // non-hex digit
  EXPECT_TRUE(FromHex("").ValueOrDie().empty());
}

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BytesHaveRequestedLength) {
  Rng rng(17);
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 32u}) {
    EXPECT_EQ(rng.NextBytes(n).size(), n);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfSampler z(4, 0.0);
  EXPECT_NEAR(z.Pmf(0), 0.25, 1e-12);
  EXPECT_NEAR(z.Pmf(3), 0.25, 1e-12);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfSampler z(100, 1.0);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(50));
}

TEST(ZipfTest, SamplesMatchPmfRoughly) {
  ZipfSampler z(10, 1.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) counts[z.Sample(&rng)]++;
  for (size_t r = 0; r < 10; ++r) {
    double expected = z.Pmf(r) * kN;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 10);
  }
}

// ---------------------------------------------------------------------------
// Strings

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("grp"), "GRP");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUP", "groupe"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
  Arena arena;
  uint8_t* a = arena.Allocate(100);
  uint8_t* b = arena.Allocate(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 0xaa, 100);
  std::memset(b, 0xbb, 100);
  EXPECT_EQ(a[99], 0xaa);  // b's fill must not clobber a
  EXPECT_EQ(b[0], 0xbb);
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  arena.Allocate(1);  // misalign the bump pointer
  for (size_t align : {2u, 4u, 8u, 16u, 64u}) {
    uint8_t* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
    arena.Allocate(1);
  }
}

TEST(ArenaTest, CopyDuplicatesBytes) {
  Arena arena;
  const uint8_t src[] = {1, 2, 3, 4, 5};
  uint8_t* dup = arena.Copy(src, sizeof(src));
  EXPECT_NE(dup, src);
  EXPECT_EQ(std::memcmp(dup, src, sizeof(src)), 0);
}

TEST(ArenaTest, OversizedAllocationGetsOwnChunk) {
  Arena arena(/*min_chunk_bytes=*/64);
  uint8_t* big = arena.Allocate(100 * 1024);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5a, 100 * 1024);  // asan would flag an undersized chunk
  EXPECT_GE(arena.bytes_reserved(), 100 * 1024u);
}

TEST(ArenaTest, ResetKeepsLargestChunkAndStopsGrowing) {
  Arena arena(/*min_chunk_bytes=*/64);
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  arena.Reset();
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  const size_t reserved = arena.bytes_reserved();
  // The kept chunk (geometric growth → largest holds >= half the total)
  // absorbs the same workload without reserving more.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 40; ++i) arena.Allocate(64);
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
    arena.Reset();
  }
}

}  // namespace
}  // namespace tcells
