// Tests for the cryptographically protected mass storage (Fig 1): sealing a
// local database into untrusted flash pages and loading it back, with every
// class of tampering detected.
#include <gtest/gtest.h>

#include "sql/executor.h"
#include "storage/secure_store.h"
#include "tcells/tcells.h"
#include "workload/smart_meter.h"

namespace tcells::storage {
namespace {

class SecureStoreTest : public ::testing::Test {
 protected:
  SecureStoreTest() : rng_(1), key_(Rng(99).NextBytes(16)) {
    workload::SmartMeterOptions opts;
    opts.readings_per_tds = 40;  // enough rows for several pages
    Rng data_rng(2);
    EXPECT_TRUE(workload::PopulateSmartMeterDb(&db_, /*cid=*/7, opts,
                                               &data_rng)
                    .ok());
  }

  Rng rng_;
  Bytes key_;
  Database db_;
};

TEST_F(SecureStoreTest, SealOpenRoundTrip) {
  auto image = SecureDatabase::Seal(db_, key_, &rng_, /*page=*/256)
                   .ValueOrDie();
  EXPECT_GT(image.flash.num_pages(), 3u);  // several data pages + manifest

  Database loaded = SecureDatabase::Open(image, key_).ValueOrDie();
  for (const std::string& name : db_.catalog().TableNames()) {
    const Table* orig = db_.GetTable(name).ValueOrDie();
    const Table* back = loaded.GetTable(name).ValueOrDie();
    ASSERT_EQ(orig->num_rows(), back->num_rows()) << name;
    EXPECT_TRUE(orig->schema().Equals(back->schema()));
    for (size_t i = 0; i < orig->num_rows(); ++i) {
      EXPECT_TRUE(orig->row(i).IsSameGroup(back->row(i)));
    }
  }
}

TEST_F(SecureStoreTest, FlashSeesOnlyCiphertext) {
  auto image = SecureDatabase::Seal(db_, key_, &rng_).ValueOrDie();
  // The plaintext contains district strings like "D000"; no page may.
  for (uint32_t p = 0; p < image.flash.num_pages(); ++p) {
    const Bytes* page = image.flash.ReadPage(p).ValueOrDie();
    std::string as_str(page->begin(), page->end());
    EXPECT_EQ(as_str.find("D0"), std::string::npos);
    EXPECT_EQ(as_str.find("detached"), std::string::npos);
    EXPECT_EQ(as_str.find("Consumer"), std::string::npos);
  }
}

TEST_F(SecureStoreTest, WrongKeyRejected) {
  auto image = SecureDatabase::Seal(db_, key_, &rng_).ValueOrDie();
  Bytes other = Rng(5).NextBytes(16);
  auto opened = SecureDatabase::Open(image, other);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption());
}

TEST_F(SecureStoreTest, BitFlipDetected) {
  auto image = SecureDatabase::Seal(db_, key_, &rng_, 256).ValueOrDie();
  for (uint32_t p = 0; p < image.flash.num_pages(); ++p) {
    auto tampered = image;
    (*tampered.flash.mutable_page(p))[10] ^= 0x01;
    auto opened = SecureDatabase::Open(tampered, key_);
    EXPECT_FALSE(opened.ok()) << "page " << p;
  }
}

TEST_F(SecureStoreTest, PageSwapDetected) {
  auto image = SecureDatabase::Seal(db_, key_, &rng_, 256).ValueOrDie();
  ASSERT_GT(image.flash.num_pages(), 3u);
  auto tampered = image;
  tampered.flash.SwapPages(0, 1);  // both authentic pages, wrong order
  auto opened = SecureDatabase::Open(tampered, key_);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption());
}

TEST_F(SecureStoreTest, TruncationAndExtensionDetected) {
  auto image = SecureDatabase::Seal(db_, key_, &rng_, 256).ValueOrDie();
  // Truncation: drop the last data page by rebuilding a shorter flash.
  SecureDatabase::Image shorter;
  for (uint32_t p = 0; p + 2 < image.flash.num_pages(); ++p) {
    shorter.flash.AppendPage(*image.flash.ReadPage(p).ValueOrDie());
  }
  // Keep the manifest as last page.
  shorter.flash.AppendPage(*image.flash
                                .ReadPage(static_cast<uint32_t>(
                                    image.flash.num_pages() - 1))
                                .ValueOrDie());
  EXPECT_FALSE(SecureDatabase::Open(shorter, key_).ok());

  // Extension: junk appended after the manifest.
  auto extended = image;
  extended.flash.AppendPage(Bytes(64, 0xee));
  EXPECT_FALSE(SecureDatabase::Open(extended, key_).ok());
}

TEST_F(SecureStoreTest, ReplayFromOtherDeviceRejected) {
  // Same data sealed for another device (different storage key): its pages
  // must not open under this device's key, even though both are authentic.
  auto image = SecureDatabase::Seal(db_, key_, &rng_).ValueOrDie();
  Bytes other_key = Rng(6).NextBytes(16);
  auto other_image = SecureDatabase::Seal(db_, other_key, &rng_).ValueOrDie();
  EXPECT_FALSE(SecureDatabase::Open(other_image, key_).ok());
  EXPECT_TRUE(SecureDatabase::Open(image, key_).ok());
}

TEST_F(SecureStoreTest, EmptyDatabase) {
  Database empty;
  ASSERT_TRUE(
      empty.CreateTable("t", Schema({{"a", ValueType::kInt64}})).ok());
  auto image = SecureDatabase::Seal(empty, key_, &rng_).ValueOrDie();
  EXPECT_EQ(image.flash.num_pages(), 1u);  // manifest only
  Database loaded = SecureDatabase::Open(image, key_).ValueOrDie();
  EXPECT_EQ(loaded.GetTable("t").ValueOrDie()->num_rows(), 0u);
}

TEST_F(SecureStoreTest, PageSizeBoundsRespected) {
  auto image = SecureDatabase::Seal(db_, key_, &rng_, /*page=*/128)
                   .ValueOrDie();
  // Pages hold at least one tuple, so a page can exceed the soft bound by
  // one tuple; it must never hold more than bound + max tuple size.
  for (uint32_t p = 0; p + 1 < image.flash.num_pages(); ++p) {
    const Bytes* page = image.flash.ReadPage(p).ValueOrDie();
    EXPECT_LT(page->size(), 128u + 200u + crypto::NDetEnc::kOverhead);
  }
  // Smaller pages -> more pages.
  auto big_pages = SecureDatabase::Seal(db_, key_, &rng_, 4096).ValueOrDie();
  EXPECT_GT(image.flash.num_pages(), big_pages.flash.num_pages());
}


TEST_F(SecureStoreTest, QueriesAgreeAfterSealReloadCycle) {
  // The TDS persists its database to untrusted flash and reloads it at the
  // next power-up; query answers must be unchanged.
  auto image = SecureDatabase::Seal(db_, key_, &rng_, 512).ValueOrDie();
  Database reloaded = SecureDatabase::Open(image, key_).ValueOrDie();
  const char* sql =
      "SELECT hour, AVG(cons), COUNT(*) FROM Power GROUP BY hour";
  auto q1 = sql::AnalyzeSql(sql, db_.catalog()).ValueOrDie();
  auto q2 = sql::AnalyzeSql(sql, reloaded.catalog()).ValueOrDie();
  auto before = sql::ExecuteLocal(db_, q1).ValueOrDie();
  auto after = sql::ExecuteLocal(reloaded, q2).ValueOrDie();
  EXPECT_TRUE(before.SameRows(after));
  EXPECT_FALSE(before.rows.empty());
}

TEST_F(SecureStoreTest, UmbrellaHeaderCompiles) {
  // tcells/tcells.h must pull the whole public API in one include.
  // (Compile-time check; the include lives at the top of this file's TU via
  // the test below referencing a symbol from every corner.)
  SUCCEED();
}

}  // namespace
}  // namespace tcells::storage
