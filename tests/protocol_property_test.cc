// Property sweep: for every (fleet size, group count, skew, availability)
// combination and every protocol, a distributed run must return exactly the
// plaintext oracle's rows. This is the library's central invariant, swept
// broadly; the per-query shapes live in protocol_e2e_test.cc.
#include <gtest/gtest.h>

#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells::protocol {
namespace {

using storage::Tuple;
using storage::Value;

struct GridPoint {
  size_t num_tds;
  size_t num_groups;
  double skew;
  double availability;
  /// Worker threads for the parallel fleet engine (1 = serial).
  size_t num_threads = 1;
};

class ProtocolGridTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, GridPoint>> {};

TEST_P(ProtocolGridTest, MatchesOracleEverywhere) {
  auto [kind, grid] = GetParam();

  workload::GenericOptions gopts;
  gopts.num_tds = grid.num_tds;
  gopts.num_groups = grid.num_groups;
  gopts.group_skew = grid.skew;
  gopts.rows_per_tds = 2;  // multiple collection tuples per TDS
  gopts.seed = 7 * grid.num_tds + grid.num_groups;

  auto keys = crypto::KeyStore::CreateForTest(gopts.seed);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x55));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  Querier querier("grid", authority->Issue("grid"), keys);

  auto domain = std::make_shared<std::vector<Tuple>>();
  std::map<Tuple, uint64_t> freq;
  for (size_t g = 0; g < grid.num_groups; ++g) {
    domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
  }
  // True distribution for ED_Hist (as the discovery protocol would learn it).
  const auto& catalog = fleet->at(0)->db().catalog();
  auto count_q =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp", catalog)
          .ValueOrDie();
  for (size_t i = 0; i < fleet->size(); ++i) {
    auto rows = sql::CollectionTuples(fleet->at(i)->db(), count_q)
                    .ValueOrDie();
    for (const auto& r : rows) freq[Tuple({r.at(0)})] += 1;
  }

  std::unique_ptr<Protocol> protocol;
  switch (kind) {
    case ProtocolKind::kSAgg:
      protocol = std::make_unique<SAggProtocol>();
      break;
    case ProtocolKind::kRnfNoise:
      protocol = std::make_unique<NoiseProtocol>(false, domain);
      break;
    case ProtocolKind::kCNoise:
      protocol = std::make_unique<NoiseProtocol>(true, domain);
      break;
    case ProtocolKind::kEdHist:
      protocol = EdHistProtocol::FromDistribution(
          freq, std::max<size_t>(1, grid.num_groups / 3));
      break;
    default:
      FAIL();
  }

  RunOptions opts;
  opts.compute_availability = grid.availability;
  opts.expected_groups = grid.num_groups;
  opts.seed = gopts.seed + 1;
  opts.num_threads = grid.num_threads;

  const char* sql =
      "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), MAX(val) "
      "FROM T GROUP BY grp";
  Engine::Config cfg;
  cfg.options = opts;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto outcome = engine->Run(*protocol, querier, 1, sql).ValueOrDie();
  auto expected = ExecuteReference(engine->fleet(), sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected))
      << "got:\n" << outcome.result.ToString()
      << "want:\n" << expected.ToString();
  EXPECT_EQ(outcome.result.rows.size(),
            std::min(grid.num_groups, expected.rows.size()));
}

std::string GridName(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, GridPoint>>&
        info) {
  const auto& [kind, grid] = info.param;
  std::string name = ProtocolKindToString(kind);
  name += "_n" + std::to_string(grid.num_tds);
  name += "_g" + std::to_string(grid.num_groups);
  name += grid.skew > 0 ? "_zipf" : "_uniform";
  name += "_a" + std::to_string(static_cast<int>(grid.availability * 100));
  if (grid.num_threads != 1) {
    name += "_t" + std::to_string(grid.num_threads);
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolGridTest,
    ::testing::Combine(
        ::testing::Values(ProtocolKind::kSAgg, ProtocolKind::kRnfNoise,
                          ProtocolKind::kCNoise, ProtocolKind::kEdHist),
        ::testing::Values(GridPoint{8, 1, 0.0, 1.0},     // tiny, one group
                          GridPoint{40, 3, 0.0, 0.1},    // uniform, scarce
                          GridPoint{40, 12, 1.2, 0.5},   // skewed, many groups
                          GridPoint{120, 6, 0.8, 0.02},  // near-starved
                          GridPoint{60, 6, 0.0, 1.0},    // abundant
                          // Same invariant under the parallel fleet engine:
                          // fan-out must not perturb correctness anywhere on
                          // the grid.
                          GridPoint{40, 3, 0.0, 0.1, 2},
                          GridPoint{40, 12, 1.2, 0.5, 8},
                          GridPoint{120, 6, 0.8, 0.02, 8},
                          GridPoint{60, 6, 0.0, 1.0, 2})),
    GridName);


// Every WHERE-clause feature, end to end through the basic protocol.
class WhereFeatureTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WhereFeatureTest, MatchesOracleThroughProtocol) {
  workload::GenericOptions gopts;
  gopts.num_tds = 50;
  gopts.seed = 321;
  auto keys = crypto::KeyStore::CreateForTest(77);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x57));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  Querier querier("w", authority->Issue("w"), keys);
  BasicSfwProtocol protocol;
  std::string sql = std::string("SELECT grp, val, cat FROM T WHERE ") +
                    GetParam();
  Engine::Config cfg;
  cfg.options.compute_availability = 0.3;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto outcome = engine->Run(protocol, querier, 1, sql).ValueOrDie();
  auto expected = ExecuteReference(engine->fleet(), sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected)) << sql;
}

INSTANTIATE_TEST_SUITE_P(
    AllPredicates, WhereFeatureTest,
    ::testing::Values("cat < 5",
                      "cat BETWEEN 2 AND 7",
                      "cat IN (0, 3, 9)",
                      "cat NOT IN (1, 2)",
                      "grp LIKE 'G0_'",
                      "grp NOT LIKE '%2'",
                      "grp IS NOT NULL AND val > 10.0",
                      "NOT (cat = 0 OR cat = 1)",
                      "val / 2 + 1 > cat * 3",
                      "cat % 3 = 0 OR FALSE"));

TEST(WhereFeatureErrors, TypeErrorInPredicateSurfacesCleanly) {
  // `val` is a DOUBLE: `%` on it is a runtime type error, raised by the
  // first TDS evaluating the clause and propagated as a Status, not a crash.
  workload::GenericOptions gopts;
  gopts.num_tds = 10;
  auto keys = crypto::KeyStore::CreateForTest(5);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x58));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  Querier querier("w", authority->Issue("w"), keys);
  BasicSfwProtocol protocol;
  auto engine = Engine::Create(std::move(fleet)).ValueOrDie();
  auto outcome =
      engine->Run(protocol, querier, 1, "SELECT grp FROM T WHERE val % 2 = 0");
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsInvalidArgument());
}

// The same grid idea for the basic protocol over selective predicates.
class BasicSfwGridTest : public ::testing::TestWithParam<int> {};

TEST_P(BasicSfwGridTest, SelectivitySweep) {
  int threshold = GetParam();
  workload::GenericOptions gopts;
  gopts.num_tds = 60;
  gopts.seed = 100 + threshold;
  auto keys = crypto::KeyStore::CreateForTest(gopts.seed);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x56));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  Querier querier("grid", authority->Issue("grid"), keys);
  BasicSfwProtocol protocol;
  std::string sql =
      "SELECT grp, cat FROM T WHERE cat < " + std::to_string(threshold);
  Engine::Config cfg;
  cfg.options.compute_availability = 0.2;
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto outcome = engine->Run(protocol, querier, 1, sql).ValueOrDie();
  auto expected = ExecuteReference(engine->fleet(), sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected));
  // Whatever the selectivity (including zero), the SSI always sees one item
  // per TDS: selectivity never leaks.
  EXPECT_EQ(outcome.adversary.collection_items, engine->fleet().size());
}

INSTANTIATE_TEST_SUITE_P(Selectivity, BasicSfwGridTest,
                         ::testing::Values(0, 1, 5, 10));

}  // namespace
}  // namespace tcells::protocol
