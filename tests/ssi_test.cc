// Tests for the SSI: payload framing, partitioners, SIZE evaluation, and the
// adversary-view instrumentation.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "ssi/messages.h"
#include "ssi/ssi.h"

namespace tcells::ssi {
namespace {

EncryptedItem Item(uint8_t fill, size_t n = 8,
                   std::optional<Bytes> tag = std::nullopt) {
  EncryptedItem item;
  item.blob = Bytes(n, fill);
  item.routing_tag = std::move(tag);
  return item;
}

// ---------------------------------------------------------------------------
// Payload framing

TEST(PayloadTest, RoundTrip) {
  Bytes body = {1, 2, 3};
  Bytes encoded = EncodePayload(PayloadKind::kTrueTuple, body);
  auto decoded = DecodePayload(encoded).ValueOrDie();
  EXPECT_EQ(decoded.kind, PayloadKind::kTrueTuple);
  EXPECT_EQ(decoded.body, body);
}

TEST(PayloadTest, PaddingHidesKindByLength) {
  Bytes small = {1};
  Bytes large = Bytes(40, 7);
  Bytes a = EncodePayload(PayloadKind::kDummyTuple, small, 64);
  Bytes b = EncodePayload(PayloadKind::kTrueTuple, large, 64);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(DecodePayload(a).ValueOrDie().body, small);
  EXPECT_EQ(DecodePayload(b).ValueOrDie().body, large);
}

TEST(PayloadTest, PaddingNeverTruncates) {
  Bytes body = Bytes(100, 1);
  Bytes encoded = EncodePayload(PayloadKind::kTrueTuple, body, 16);
  EXPECT_GT(encoded.size(), body.size());
  EXPECT_EQ(DecodePayload(encoded).ValueOrDie().body, body);
}

TEST(PayloadTest, RejectsGarbage) {
  EXPECT_FALSE(DecodePayload({}).ok());
  EXPECT_FALSE(DecodePayload({200}).ok());       // unknown kind
  EXPECT_FALSE(DecodePayload({0, 9, 0, 0, 0}).ok());  // body length overruns
}

TEST(PayloadTest, ViewPointsIntoSourceBuffer) {
  Bytes body = {9, 8, 7, 6};
  Bytes encoded = EncodePayload(PayloadKind::kPartialAgg, body, 32);
  auto view = DecodePayloadView(encoded).ValueOrDie();
  EXPECT_EQ(view.kind, PayloadKind::kPartialAgg);
  EXPECT_EQ(view.body_size, body.size());
  // Zero-copy: the body pointer aims at the framing header's tail, inside
  // the encoded buffer itself.
  EXPECT_EQ(view.body, encoded.data() + 5);
  EXPECT_EQ(view.ToBytes(), body);
}

TEST(PayloadTest, ViewRejectsMalformed) {
  EXPECT_FALSE(DecodePayloadView(nullptr, 0).ok());
  Bytes truncated = {0, 9, 0, 0, 0};  // claims 9-byte body, has none
  EXPECT_FALSE(DecodePayloadView(truncated).ok());
}

TEST(PayloadTest, SpanEncodeMatchesBytesEncode) {
  Rng rng(41);
  for (size_t n : {0u, 1u, 30u}) {
    Bytes body = rng.NextBytes(n);
    EXPECT_EQ(EncodePayload(PayloadKind::kResultRow, body, 64),
              EncodePayload(PayloadKind::kResultRow, body.data(), body.size(),
                            64));
  }
}

// ---------------------------------------------------------------------------
// Batch open

TEST(OpenAllTest, DecryptsEveryItemAndReusesBuffers) {
  Rng rng(42);
  auto enc = crypto::NDetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  std::vector<Bytes> plaintexts;
  std::vector<EncryptedItem> items;
  for (int i = 0; i < 8; ++i) {
    plaintexts.push_back(rng.NextBytes(10 + 7 * i));
    EncryptedItem item;
    item.blob = enc.Encrypt(plaintexts.back(), &rng);
    items.push_back(std::move(item));
  }
  std::vector<Bytes> plains;
  ASSERT_TRUE(OpenAll(enc, items, &plains).ok());
  ASSERT_EQ(plains.size(), items.size());
  for (size_t i = 0; i < plains.size(); ++i) {
    EXPECT_EQ(plains[i], plaintexts[i]) << i;
  }
  // A second partition through the same vector reuses the grown buffers.
  ASSERT_TRUE(OpenAll(enc, std::span(items).subspan(0, 3), &plains).ok());
  EXPECT_EQ(plains.size(), 3u);
  EXPECT_EQ(plains[2], plaintexts[2]);
}

TEST(OpenAllTest, ReportsFirstFailure) {
  Rng rng(43);
  auto enc = crypto::NDetEnc::Create(rng.NextBytes(16)).ValueOrDie();
  std::vector<EncryptedItem> items;
  for (int i = 0; i < 3; ++i) {
    EncryptedItem item;
    item.blob = enc.Encrypt(rng.NextBytes(16), &rng);
    items.push_back(std::move(item));
  }
  items[1].blob[4] ^= 0x20;
  std::vector<Bytes> plains;
  EXPECT_FALSE(OpenAll(enc, items, &plains).ok());
}

// ---------------------------------------------------------------------------
// Partitioning

TEST(SsiTest, PartitionRandomlySplitsAndPreservesItems) {
  Rng rng(1);
  std::vector<EncryptedItem> items;
  for (int i = 0; i < 10; ++i) items.push_back(Item(static_cast<uint8_t>(i)));
  auto partitions = Ssi::PartitionRandomly(std::move(items), 3, &rng);
  ASSERT_EQ(partitions.size(), 4u);  // 3+3+3+1
  std::multiset<uint8_t> seen;
  for (const auto& p : partitions) {
    EXPECT_LE(p.items.size(), 3u);
    for (const auto& item : p.items) seen.insert(item.blob[0]);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SsiTest, PartitionRandomlyShuffles) {
  Rng rng(2);
  std::vector<EncryptedItem> items;
  for (int i = 0; i < 32; ++i) items.push_back(Item(static_cast<uint8_t>(i)));
  auto partitions = Ssi::PartitionRandomly(std::move(items), 32, &rng);
  ASSERT_EQ(partitions.size(), 1u);
  bool any_moved = false;
  for (size_t i = 0; i < partitions[0].items.size(); ++i) {
    if (partitions[0].items[i].blob[0] != i) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(SsiTest, PartitionByTagGroups) {
  std::vector<EncryptedItem> items;
  for (int i = 0; i < 9; ++i) {
    items.push_back(Item(static_cast<uint8_t>(i), 8,
                         Bytes{static_cast<uint8_t>(i % 3)}));
  }
  auto partitions = Ssi::PartitionByTag(std::move(items)).ValueOrDie();
  ASSERT_EQ(partitions.size(), 3u);
  for (const auto& p : partitions) {
    ASSERT_EQ(p.items.size(), 3u);
    for (const auto& item : p.items) {
      EXPECT_EQ(*item.routing_tag, *p.items[0].routing_tag);
    }
  }
}

TEST(SsiTest, PartitionByTagRejectsUntagged) {
  std::vector<EncryptedItem> items = {Item(1)};
  EXPECT_FALSE(Ssi::PartitionByTag(std::move(items)).ok());
}

TEST(SsiTest, SplitPartitionBalances) {
  Partition p;
  for (int i = 0; i < 10; ++i) p.items.push_back(Item(1));
  auto subs = Ssi::SplitPartition(std::move(p), 3);
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0].items.size(), 4u);
  EXPECT_EQ(subs[1].items.size(), 3u);
  EXPECT_EQ(subs[2].items.size(), 3u);
}

TEST(SsiTest, SplitPartitionMoreWaysThanItems) {
  Partition p;
  p.items.push_back(Item(1));
  auto subs = Ssi::SplitPartition(std::move(p), 5);
  EXPECT_EQ(subs.size(), 1u);
}

// ---------------------------------------------------------------------------
// SIZE + storage

TEST(SsiTest, SizeClauseEvaluation) {
  Ssi ssi;
  QueryPost post;
  post.size_max_tuples = 3;
  ssi.PostQuery(post);
  EXPECT_FALSE(ssi.SizeReached());
  ssi.ReceiveCollectionItems({Item(1), Item(2)});
  EXPECT_FALSE(ssi.SizeReached());
  ssi.ReceiveCollectionItems({Item(3)});
  EXPECT_TRUE(ssi.SizeReached());
  EXPECT_EQ(ssi.NumCollected(), 3u);
}

TEST(SsiTest, NoSizeClauseNeverReached) {
  Ssi ssi;
  ssi.PostQuery({});
  ssi.ReceiveCollectionItems({Item(1)});
  EXPECT_FALSE(ssi.SizeReached());
}

TEST(SsiTest, TakeCollectedDrains) {
  Ssi ssi;
  ssi.ReceiveCollectionItems({Item(1), Item(2)});
  auto items = ssi.TakeCollected();
  EXPECT_EQ(items.size(), 2u);
  EXPECT_EQ(ssi.NumCollected(), 0u);
}


// ---------------------------------------------------------------------------
// Wire codecs

TEST(WireTest, EncryptedItemRoundTrip) {
  for (bool tagged : {false, true}) {
    EncryptedItem item;
    item.blob = Bytes{1, 2, 3, 4};
    if (tagged) {
      item.routing_tag = Bytes{9, 9};
    }
    Bytes buf;
    item.EncodeTo(&buf);
    ByteReader reader(buf);
    auto back = EncryptedItem::DecodeFrom(&reader).ValueOrDie();
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(back.blob, item.blob);
    EXPECT_EQ(back.routing_tag.has_value(), tagged);
    if (tagged) {
      EXPECT_EQ(*back.routing_tag, *item.routing_tag);
    }
  }
}

TEST(WireTest, QueryPostRoundTrip) {
  QueryPost post;
  post.query_id = 77;
  post.encrypted_query = Bytes{5, 6, 7};
  post.querier_id = "energy-co";
  post.credential_mac = Bytes(32, 0xaa);
  post.size_max_tuples = 1000;
  Bytes buf = post.Encode();
  auto back = QueryPost::Decode(buf).ValueOrDie();
  EXPECT_EQ(back.query_id, 77u);
  EXPECT_EQ(back.querier_id, "energy-co");
  EXPECT_EQ(back.size_max_tuples.value(), 1000u);
  EXPECT_FALSE(back.size_max_duration_ticks.has_value());
  // Tampered flags rejected.
  buf.pop_back();
  EXPECT_FALSE(QueryPost::Decode(buf).ok());
}

TEST(WireTest, PartitionRoundTrip) {
  Partition p;
  for (int i = 0; i < 5; ++i) {
    EncryptedItem item;
    item.blob = Bytes(8, static_cast<uint8_t>(i));
    if (i % 2) item.routing_tag = Bytes{static_cast<uint8_t>(i)};
    p.items.push_back(std::move(item));
  }
  auto back = Partition::Decode(p.Encode()).ValueOrDie();
  ASSERT_EQ(back.items.size(), 5u);
  EXPECT_EQ(back.WireSize(), p.WireSize());
  EXPECT_FALSE(Partition::Decode(Bytes{1, 2}).ok());
}

// ---------------------------------------------------------------------------
// Hostile-input hardening regressions (pinned by the fuzz harnesses; see
// fuzz/fuzz_ssi.cc and docs/TESTING.md)

TEST(WireTest, PartitionDeclaringMoreItemsThanBytesRejected) {
  // Count field claims 4B items but the buffer holds none: the decoder must
  // reject on the count itself instead of looping/allocating towards it.
  Bytes hostile = {0xff, 0xff, 0xff, 0xff};
  auto result = Partition::Decode(hostile);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());

  // A single valid item cannot satisfy a count of 10 either.
  Partition p;
  p.items.push_back(Item(1));
  Bytes encoded = p.Encode();
  encoded[0] = 10;
  EXPECT_FALSE(Partition::Decode(encoded).ok());
}

TEST(WireTest, EncryptedItemTruncatedTagLengthRejected) {
  // has_tag=1 followed by a tag length field claiming 100 bytes of tag with
  // only 2 present.
  Bytes hostile = {1, 100, 0, 0, 0, 0xaa, 0xbb};
  ByteReader reader(hostile);
  EXPECT_FALSE(EncryptedItem::DecodeFrom(&reader).ok());

  // The length field itself cut short.
  Bytes truncated = {1, 100, 0};
  ByteReader reader2(truncated);
  EXPECT_FALSE(EncryptedItem::DecodeFrom(&reader2).ok());
}

TEST(WireTest, EncryptedItemBadTagFlagRejected) {
  Bytes hostile = {2, 0, 0, 0, 0};
  ByteReader reader(hostile);
  auto result = EncryptedItem::DecodeFrom(&reader);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(WireTest, QueryPostHostileFlagsAndTrailersRejected) {
  QueryPost post;
  post.query_id = 9;
  post.encrypted_query = Bytes{1};
  post.querier_id = "q";
  post.credential_mac = Bytes(8, 0xcc);
  Bytes buf = post.Encode();

  // Unknown flag bits.
  Bytes bad_flags = buf;
  bad_flags.back() = 4;
  EXPECT_FALSE(QueryPost::Decode(bad_flags).ok());

  // Trailing bytes after a well-formed post.
  Bytes trailing = buf;
  trailing.push_back(0);
  EXPECT_FALSE(QueryPost::Decode(trailing).ok());
}

// ---------------------------------------------------------------------------
// Adversary view

TEST(SsiTest, AdversaryViewRecordsTagHistogram) {
  Ssi ssi;
  ssi.ReceiveCollectionItems({
      Item(1, 8, Bytes{9}), Item(2, 8, Bytes{9}), Item(3, 8, Bytes{7}),
      Item(4, 16),  // untagged
  });
  const auto& view = ssi.adversary_view();
  EXPECT_EQ(view.collection_items, 4u);
  ASSERT_EQ(view.collection_tag_histogram.size(), 2u);
  EXPECT_EQ(view.collection_tag_histogram.at(Bytes{9}), 2u);
  EXPECT_EQ(view.collection_tag_histogram.at(Bytes{7}), 1u);
  ASSERT_EQ(view.collection_blob_sizes.size(), 4u);
  EXPECT_EQ(view.collection_blob_sizes[3], 16u);
}

}  // namespace
}  // namespace tcells::ssi
