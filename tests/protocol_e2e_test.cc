// End-to-end protocol tests: every protocol must produce exactly the rows the
// plaintext oracle produces, while the SSI's observations satisfy each
// protocol's security claims. Also covers SIZE, dropouts, and discovery.
#include <gtest/gtest.h>

#include <set>

#include "protocol/discovery.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"
#include "crypto/encryption.h"
#include "workload/smart_meter.h"

namespace tcells::protocol {
namespace {

using storage::Tuple;
using storage::Value;

RunOptions FastOptions() {
  RunOptions opts;
  opts.compute_availability = 0.2;
  opts.seed = 99;
  return opts;
}

struct TestWorld {
  std::shared_ptr<const crypto::KeyStore> keys;
  std::shared_ptr<tds::Authority> authority;
  std::unique_ptr<Querier> querier;
  std::unique_ptr<Engine> engine;
  Fleet* fleet = nullptr;  // owned by the engine
  sim::DeviceModel device;

  static TestWorld Generic(const workload::GenericOptions& opts) {
    TestWorld w;
    w.keys = crypto::KeyStore::CreateForTest(2024);
    w.authority = std::make_shared<tds::Authority>(Bytes(16, 0x11));
    auto fleet = workload::BuildGenericFleet(opts, w.keys, w.authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    w.querier = std::make_unique<Querier>(
        "tester", w.authority->Issue("tester"), w.keys);
    Engine::Config cfg;
    cfg.options = FastOptions();
    w.engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
    w.fleet = &w.engine->fleet();
    return w;
  }

  static TestWorld SmartMeter(const workload::SmartMeterOptions& opts) {
    TestWorld w;
    w.keys = crypto::KeyStore::CreateForTest(2025);
    w.authority = std::make_shared<tds::Authority>(Bytes(16, 0x22));
    auto fleet = workload::BuildSmartMeterFleet(opts, w.keys, w.authority,
                                                tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    w.querier = std::make_unique<Querier>(
        "energy-co", w.authority->Issue("energy-co"), w.keys);
    Engine::Config cfg;
    cfg.options = FastOptions();
    w.engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
    w.fleet = &w.engine->fleet();
    return w;
  }

  std::shared_ptr<const std::vector<Tuple>> GroupDomain(size_t num_groups) {
    auto domain = std::make_shared<std::vector<Tuple>>();
    for (size_t g = 0; g < num_groups; ++g) {
      domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
    }
    return domain;
  }
};

// ---------------------------------------------------------------------------
// Correctness vs the oracle, across protocols and query shapes.

struct E2eCase {
  const char* name;
  const char* sql;
};

class ProtocolOracleTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, E2eCase>> {};

TEST_P(ProtocolOracleTest, MatchesPlaintextOracle) {
  auto [kind, c] = GetParam();
  workload::GenericOptions gopts;
  gopts.num_tds = 60;
  gopts.num_groups = 5;
  gopts.group_skew = 0.7;
  TestWorld w = TestWorld::Generic(gopts);

  std::unique_ptr<Protocol> protocol;
  switch (kind) {
    case ProtocolKind::kSAgg:
      protocol = std::make_unique<SAggProtocol>();
      break;
    case ProtocolKind::kRnfNoise:
      protocol = std::make_unique<NoiseProtocol>(false, w.GroupDomain(5));
      break;
    case ProtocolKind::kCNoise:
      protocol = std::make_unique<NoiseProtocol>(true, w.GroupDomain(5));
      break;
    case ProtocolKind::kEdHist: {
      // Learn the true A_G distribution the way a deployment would: through
      // the secure discovery protocol (itself an S_Agg round).
      auto discovered = DiscoverDistribution(w.fleet, *w.querier, 999,
                                             c.sql, w.device, FastOptions())
                            .ValueOrDie();
      protocol = EdHistProtocol::FromDistribution(discovered.frequency, 2);
      break;
    }
    default:
      FAIL() << "unexpected protocol";
  }

  auto outcome = w.engine->Run(*protocol, *w.querier, 1, c.sql).ValueOrDie();
  auto expected = ExecuteReference(*w.fleet, c.sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected))
      << "protocol:\n" << outcome.result.ToString()
      << "oracle:\n" << expected.ToString();
  EXPECT_FALSE(expected.rows.empty());
}

constexpr E2eCase kAggCases[] = {
    {"count", "SELECT grp, COUNT(*) FROM T GROUP BY grp"},
    {"avg_sum",
     "SELECT grp, AVG(val), SUM(cat) FROM T GROUP BY grp"},
    {"minmax",
     "SELECT grp, MIN(val), MAX(val) FROM T GROUP BY grp"},
    {"having",
     "SELECT grp, COUNT(*) FROM T GROUP BY grp HAVING COUNT(*) > 5"},
    {"where",
     "SELECT grp, COUNT(*) FROM T WHERE cat < 5 GROUP BY grp"},
    {"distinct",
     "SELECT grp, COUNT(DISTINCT cat) FROM T GROUP BY grp"},
    {"median", "SELECT grp, MEDIAN(val) FROM T GROUP BY grp"},
    {"multikey",
     "SELECT grp, cat, COUNT(*), AVG(val) FROM T GROUP BY grp, cat"},
    {"variance", "SELECT grp, VARIANCE(val) FROM T GROUP BY grp"},
};

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllQueries, ProtocolOracleTest,
    ::testing::Combine(::testing::Values(ProtocolKind::kSAgg,
                                         ProtocolKind::kRnfNoise,
                                         ProtocolKind::kCNoise,
                                         ProtocolKind::kEdHist),
                       ::testing::ValuesIn(kAggCases)),
    [](const auto& info) {
      return std::string(
                 ProtocolKindToString(std::get<0>(info.param))) +
             "_" + std::get<1>(info.param).name;
    });

// ---------------------------------------------------------------------------
// Basic SFW protocol

TEST(BasicSfwTest, MatchesOracleAndDropsDummies) {
  workload::GenericOptions gopts;
  gopts.num_tds = 40;
  TestWorld w = TestWorld::Generic(gopts);
  BasicSfwProtocol protocol;
  const char* sql = "SELECT grp, val FROM T WHERE cat < 5";
  auto outcome = w.engine->Run(protocol, *w.querier, 2, sql).ValueOrDie();
  auto expected = ExecuteReference(*w.fleet, sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected));
  // TDSs whose WHERE matched nothing sent dummies: collection saw one item
  // per TDS, the result has only true rows.
  EXPECT_EQ(outcome.adversary.collection_items, w.fleet->size());
  EXPECT_EQ(outcome.result.rows.size(), expected.rows.size());
  EXPECT_LT(outcome.result.rows.size(), w.fleet->size());
}

TEST(BasicSfwTest, RejectsAggregationQuery) {
  workload::GenericOptions gopts;
  gopts.num_tds = 4;
  TestWorld w = TestWorld::Generic(gopts);
  BasicSfwProtocol protocol;
  EXPECT_FALSE(w.engine
                   ->Run(protocol, *w.querier, 3,
                         "SELECT grp, COUNT(*) FROM T GROUP BY grp")
                   .ok());
}

TEST(SAggTest, RejectsPlainSfwQuery) {
  workload::GenericOptions gopts;
  gopts.num_tds = 4;
  TestWorld w = TestWorld::Generic(gopts);
  SAggProtocol protocol;
  EXPECT_FALSE(
      w.engine->Run(protocol, *w.querier, 4, "SELECT grp FROM T").ok());
}

// ---------------------------------------------------------------------------
// SIZE clause

TEST(SizeClauseTest, StopsCollectionEarly) {
  workload::GenericOptions gopts;
  gopts.num_tds = 50;
  TestWorld w = TestWorld::Generic(gopts);
  BasicSfwProtocol protocol;
  auto outcome =
      w.engine->Run(protocol, *w.querier, 5, "SELECT grp FROM T SIZE 10")
          .ValueOrDie();
  EXPECT_EQ(outcome.adversary.collection_items, 10u);
  EXPECT_LE(outcome.result.rows.size(), 10u);
}

// ---------------------------------------------------------------------------
// Dropout resilience (§3.2 correctness: SSI re-dispatches partitions)

TEST(DropoutTest, ResultStillCorrectUnderChurn) {
  workload::GenericOptions gopts;
  gopts.num_tds = 50;
  gopts.num_groups = 4;
  TestWorld w = TestWorld::Generic(gopts);
  SAggProtocol protocol;
  RunOptions opts = FastOptions();
  opts.dropout_rate = 0.3;
  const char* sql = "SELECT grp, SUM(val), COUNT(*) FROM T GROUP BY grp";
  auto outcome = w.engine->Run(protocol, *w.querier, 6, sql, opts).ValueOrDie();
  auto expected = ExecuteReference(*w.fleet, sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected));
  uint64_t drops =
      outcome.metrics.accountant.phase(sim::Phase::kAggregation).dropouts +
      outcome.metrics.accountant.phase(sim::Phase::kFiltering).dropouts;
  EXPECT_GT(drops, 0u);
}

// ---------------------------------------------------------------------------
// Security: what the SSI sees

TEST(AdversaryTest, SAggExposesNoTagsAndNoDuplicateBlobs) {
  workload::GenericOptions gopts;
  gopts.num_tds = 40;
  gopts.num_groups = 3;
  TestWorld w = TestWorld::Generic(gopts);
  SAggProtocol protocol;
  auto outcome = w.engine
                     ->Run(protocol, *w.querier, 7,
                           "SELECT grp, COUNT(*) FROM T GROUP BY grp")
                     .ValueOrDie();
  // No routing tags at all: SSI cannot group anything.
  EXPECT_TRUE(outcome.adversary.collection_tag_histogram.empty());
  // All collection blobs have identical size (same tuple shape + nDet):
  // nothing to distinguish tuples by.
  std::set<size_t> sizes(outcome.adversary.collection_blob_sizes.begin(),
                         outcome.adversary.collection_blob_sizes.end());
  EXPECT_EQ(sizes.size(), 1u);
}

TEST(AdversaryTest, CNoiseTagHistogramIsFlat) {
  workload::GenericOptions gopts;
  gopts.num_tds = 60;
  gopts.num_groups = 4;
  gopts.group_skew = 1.2;  // heavily skewed true distribution
  TestWorld w = TestWorld::Generic(gopts);
  NoiseProtocol protocol(true, TestWorld::Generic(gopts).GroupDomain(4));
  auto outcome = w.engine
                     ->Run(protocol, *w.querier, 8,
                           "SELECT grp, COUNT(*) FROM T GROUP BY grp")
                     .ValueOrDie();
  // Every TDS emits exactly one tuple per domain value: perfectly flat.
  const auto& hist = outcome.adversary.collection_tag_histogram;
  ASSERT_EQ(hist.size(), 4u);
  std::set<uint64_t> counts;
  for (const auto& [tag, count] : hist) counts.insert(count);
  EXPECT_EQ(counts.size(), 1u);
  EXPECT_EQ(*counts.begin(), w.fleet->size());
}

TEST(AdversaryTest, RnfNoiseHidesSkewBetterWithMoreNoise) {
  workload::GenericOptions gopts;
  gopts.num_tds = 80;
  gopts.num_groups = 4;
  gopts.group_skew = 1.5;
  auto skew_of = [&](int nf) {
    TestWorld w = TestWorld::Generic(gopts);
    NoiseProtocol protocol(false, w.GroupDomain(4));
    RunOptions opts = FastOptions();
    opts.nf = nf;
    auto outcome = w.engine
                       ->Run(protocol, *w.querier, 9,
                             "SELECT grp, COUNT(*) FROM T GROUP BY grp", opts)
                       .ValueOrDie();
    const auto& hist = outcome.adversary.collection_tag_histogram;
    uint64_t max_c = 0, min_c = UINT64_MAX;
    for (const auto& [tag, count] : hist) {
      max_c = std::max(max_c, count);
      min_c = std::min(min_c, count);
    }
    return static_cast<double>(max_c) / static_cast<double>(min_c);
  };
  // More white noise -> flatter observed distribution (§4.3).
  EXPECT_LT(skew_of(50), skew_of(1));
}

TEST(AdversaryTest, EdHistBucketsNearEquiDepth) {
  workload::GenericOptions gopts;
  gopts.num_tds = 200;
  gopts.num_groups = 8;
  gopts.group_skew = 1.0;
  TestWorld w = TestWorld::Generic(gopts);

  // Build the true distribution, then the histogram with 4 buckets.
  std::map<Tuple, uint64_t> freq;
  for (size_t i = 0; i < w.fleet->size(); ++i) {
    auto rows = sql::CollectionTuples(
                    w.fleet->at(i)->db(),
                    sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp",
                                    w.fleet->at(0)->db().catalog())
                        .ValueOrDie())
                    .ValueOrDie();
    for (const auto& r : rows) freq[Tuple({r.at(0)})] += 1;
  }
  auto protocol = EdHistProtocol::FromDistribution(freq, 4);
  auto outcome = w.engine
                     ->Run(*protocol, *w.querier, 10,
                           "SELECT grp, AVG(val) FROM T GROUP BY grp")
                     .ValueOrDie();
  const auto& hist = outcome.adversary.collection_tag_histogram;
  ASSERT_GE(hist.size(), 2u);
  uint64_t max_c = 0, min_c = UINT64_MAX;
  for (const auto& [tag, count] : hist) {
    max_c = std::max(max_c, count);
    min_c = std::min(min_c, count);
  }
  // Nearly equi-depth: no bucket more than ~4x another (with 8 skewed values
  // in 4 buckets, perfect equality is impossible; the paper says "nearly").
  EXPECT_LE(static_cast<double>(max_c) / static_cast<double>(min_c), 4.0);
}


TEST(AdversaryTest, EdHistPhaseTwoRevealsOnlyGroupCount) {
  workload::GenericOptions gopts;
  gopts.num_tds = 100;
  gopts.num_groups = 6;
  TestWorld w = TestWorld::Generic(gopts);
  const char* sql = "SELECT grp, COUNT(*) FROM T GROUP BY grp";
  auto discovered = DiscoverDistribution(w.fleet, *w.querier, 50, sql,
                                         w.device, FastOptions())
                        .ValueOrDie();
  auto protocol = EdHistProtocol::FromDistribution(discovered.frequency, 2);
  auto outcome = w.engine->Run(*protocol, *w.querier, 51, sql).ValueOrDie();
  // The covering result carries one Det_Enc(group) tag per group: the SSI
  // learns G (the paper accepts this — the querier sees G anyway) but the
  // tags are SIV ciphertexts, not plaintext group names.
  const auto& agg_tags = outcome.adversary.aggregation_tag_histogram;
  EXPECT_EQ(agg_tags.size(), 6u);
  for (const auto& [tag, count] : agg_tags) {
    std::string as_str(tag.begin(), tag.end());
    EXPECT_EQ(as_str.find("G0"), std::string::npos);  // no plaintext leaks
  }
}


TEST(AdversaryTest, PayloadPaddingEqualizesNoiseBlobSizes) {
  // In Det-tag mode, fake tuples carry NULL aggregate inputs and would be a
  // few bytes shorter than true tuples; pad_payload_to removes the length
  // side channel entirely.
  workload::GenericOptions gopts;
  gopts.num_tds = 30;
  gopts.num_groups = 4;
  TestWorld w = TestWorld::Generic(gopts);
  NoiseProtocol protocol(false, w.GroupDomain(4));
  RunOptions opts = FastOptions();
  opts.pad_payload_to = 128;
  auto outcome = w.engine
                     ->Run(protocol, *w.querier, 60,
                           "SELECT grp, AVG(val) FROM T GROUP BY grp", opts)
                     .ValueOrDie();
  std::set<size_t> sizes(outcome.adversary.collection_blob_sizes.begin(),
                         outcome.adversary.collection_blob_sizes.end());
  EXPECT_EQ(sizes.size(), 1u);
  EXPECT_EQ(*sizes.begin(), 128u + crypto::NDetEnc::kOverhead);
  // And the result still matches the oracle (padding is transparent).
  auto expected = ExecuteReference(
      *w.fleet, "SELECT grp, AVG(val) FROM T GROUP BY grp").ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected));
}

TEST(AdversaryTest, WithoutPaddingNoiseBlobSizesDiffer) {
  workload::GenericOptions gopts;
  gopts.num_tds = 30;
  gopts.num_groups = 4;
  TestWorld w = TestWorld::Generic(gopts);
  NoiseProtocol protocol(false, w.GroupDomain(4));
  auto outcome = w.engine
                     ->Run(protocol, *w.querier, 61,
                           "SELECT grp, AVG(val) FROM T GROUP BY grp")
                     .ValueOrDie();
  std::set<size_t> sizes(outcome.adversary.collection_blob_sizes.begin(),
                         outcome.adversary.collection_blob_sizes.end());
  // Documents why pad_payload_to exists: fakes are distinguishable by size.
  EXPECT_GT(sizes.size(), 1u);
}

// ---------------------------------------------------------------------------
// Discovery + the paper's flagship smart-meter query

TEST(DiscoveryTest, RecoversTrueDistribution) {
  workload::GenericOptions gopts;
  gopts.num_tds = 50;
  gopts.num_groups = 4;
  gopts.group_skew = 0.9;
  TestWorld w = TestWorld::Generic(gopts);
  auto discovered = DiscoverDistribution(
                        w.fleet, *w.querier, 11,
                        "SELECT grp, AVG(val) FROM T GROUP BY grp", w.device,
                        FastOptions())
                        .ValueOrDie();
  // Compare against the oracle's COUNT(*) GROUP BY grp.
  auto expected =
      ExecuteReference(*w.fleet, "SELECT grp, COUNT(*) FROM T GROUP BY grp")
          .ValueOrDie();
  ASSERT_EQ(discovered.frequency.size(), expected.rows.size());
  uint64_t total = 0;
  for (const auto& [key, count] : discovered.frequency) total += count;
  EXPECT_EQ(total, w.fleet->size());
  EXPECT_EQ(discovered.Domain().ValueOrDie()->size(),
            discovered.frequency.size());
}

TEST(SmartMeterTest, FlagshipQueryEndToEndWithDiscoveryAndEdHist) {
  workload::SmartMeterOptions mopts;
  mopts.num_tds = 120;
  mopts.num_districts = 6;
  mopts.readings_per_tds = 2;
  TestWorld w = TestWorld::SmartMeter(mopts);

  const char* sql =
      "SELECT C.district, AVG(P.cons) FROM Power P, Consumer C "
      "WHERE C.accomodation = 'detached house' AND C.cid = P.cid "
      "GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > 5";

  auto discovered =
      DiscoverDistribution(w.fleet, *w.querier, 12, sql, w.device,
                           FastOptions())
          .ValueOrDie();
  auto protocol = EdHistProtocol::FromDistribution(discovered.frequency, 3);
  auto outcome = w.engine->Run(*protocol, *w.querier, 13, sql).ValueOrDie();
  auto expected = ExecuteReference(*w.fleet, sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected))
      << "protocol:\n" << outcome.result.ToString()
      << "oracle:\n" << expected.ToString();
}

// ---------------------------------------------------------------------------
// Metrics sanity

TEST(MetricsTest, AccountingIsPopulated) {
  workload::GenericOptions gopts;
  gopts.num_tds = 30;
  gopts.num_groups = 3;
  TestWorld w = TestWorld::Generic(gopts);
  SAggProtocol protocol;
  auto outcome = w.engine
                     ->Run(protocol, *w.querier, 14,
                           "SELECT grp, COUNT(*) FROM T GROUP BY grp")
                     .ValueOrDie();
  const auto& m = outcome.metrics;
  EXPECT_GT(m.Ptds(), 0u);
  EXPECT_GT(m.LoadBytes(), 0u);
  EXPECT_GT(m.Tq(), 0.0);
  EXPECT_GT(m.Tlocal(w.device), 0.0);
  EXPECT_GT(m.aggregation_rounds, 1u);  // iterative merging
  EXPECT_GT(m.times.filtering_seconds, 0.0);
  EXPECT_GT(
      m.accountant.phase(sim::Phase::kCollection).bytes_uploaded, 0u);
}

}  // namespace
}  // namespace tcells::protocol
