// Dynamic key-management suite (`ctest -L keys`, docs/KEYS.md):
//
//   * complete-subtree cover-set properties at fleet scale (up to 64k ids):
//     random revocation sets partition exactly, the r*log2(N/r) header bound
//     holds, revoked devices learn nothing;
//   * hostile epoch-block decoding: truncation, restamping, forged bodies
//     and stale replays are all refused without corrupting the TDS state;
//   * contribution admission: round trip, forged digests, stale epochs and
//     revoked devices;
//   * the static/dynamic differential: KeyMode::kDynamic produces the
//     byte-identical result table and adversary-view statistics of the
//     static engine, for every protocol and several worlds;
//   * the churn/rollover scenario suite: revocation mid-query (pinned
//     rejection count), epoch rollover under an in-flight multi-round
//     S_Agg, revocation under dropout churn — all oracle-anchored;
//   * the keys determinism grid: dynamic-mode runs are bit-identical across
//     worker-thread counts, shard counts and transport backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/broadcast.h"
#include "crypto/keystore.h"
#include "keys/epoch.h"
#include "keys/key_authority.h"
#include "keys/tds_keys.h"
#include "net/channel.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "sim/campaign.h"
#include "ssi/messages.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells {
namespace {

using crypto::BroadcastChannel;
using protocol::ProtocolKind;
using protocol::ProtocolKindToString;
using protocol::RunOutcome;

// ---------------------------------------------------------------------------
// Complete-subtree cover-set properties at fleet scale (satellite a).

/// The device-index range [lo, hi] of the leaves under heap node `node` in a
/// tree with `capacity` leaves (leaves are nodes capacity..2*capacity-1).
std::pair<size_t, size_t> LeafRange(uint32_t node, size_t capacity) {
  uint64_t lo = node;
  uint64_t hi = node;
  while (lo < capacity) {
    lo = lo * 2;
    hi = hi * 2 + 1;
  }
  return {static_cast<size_t>(lo - capacity),
          static_cast<size_t>(hi - capacity)};
}

std::set<size_t> RandomRevoked(size_t count, size_t num_devices, Rng* rng) {
  std::set<size_t> revoked;
  while (revoked.size() < count) {
    revoked.insert(static_cast<size_t>(rng->NextBelow(num_devices)));
  }
  return revoked;
}

// The cover of any random revocation set is an exact partition of the
// non-revoked devices — no revoked leaf, no padding leaf, no overlap, no
// gap — for fleets up to 64k ids, padded and power-of-two alike.
TEST(CompleteSubtreeProperty, RandomRevocationSetsPartitionExactly) {
  Rng rng(0x6b657973);
  for (size_t num_devices : {size_t{96}, size_t{1000}, size_t{65536}}) {
    auto channel =
        BroadcastChannel::Create(rng.NextBytes(16), num_devices).ValueOrDie();
    const size_t capacity = channel.capacity();
    for (size_t r : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                     num_devices / 16}) {
      SCOPED_TRACE("devices=" + std::to_string(num_devices) +
                   " revoked=" + std::to_string(r));
      std::set<size_t> revoked = RandomRevoked(r, num_devices, &rng);
      std::vector<uint32_t> cover = channel.Cover(revoked);
      std::vector<bool> covered(num_devices, false);
      for (uint32_t node : cover) {
        auto [lo, hi] = LeafRange(node, capacity);
        for (size_t i = lo; i <= hi; ++i) {
          ASSERT_LT(i, num_devices) << "cover includes a padding leaf";
          ASSERT_EQ(revoked.count(i), 0u) << "cover includes revoked " << i;
          ASSERT_FALSE(covered[i]) << "cover subtrees overlap at " << i;
          covered[i] = true;
        }
      }
      for (size_t i = 0; i < num_devices; ++i) {
        ASSERT_EQ(covered[i], revoked.count(i) == 0) << "gap at device " << i;
      }
    }
  }
}

// The NNL header bound at 64k devices: |cover| <= r * log2(N/r), and the
// empty revocation set needs exactly the root.
TEST(CompleteSubtreeProperty, CoverSizeWithinNnlBoundAt64k) {
  constexpr size_t kDevices = 65536;
  Rng rng(0x626f756e64);
  auto channel =
      BroadcastChannel::Create(rng.NextBytes(16), kDevices).ValueOrDie();

  EXPECT_EQ(channel.Cover({}), std::vector<uint32_t>{1});

  for (size_t r : {size_t{1}, size_t{16}, size_t{256}, size_t{1024},
                   size_t{4096}}) {
    SCOPED_TRACE("revoked=" + std::to_string(r));
    std::set<size_t> revoked = RandomRevoked(r, kDevices, &rng);
    double bound =
        static_cast<double>(r) *
        std::log2(static_cast<double>(kDevices) / static_cast<double>(r));
    EXPECT_LE(channel.Cover(revoked).size(),
              static_cast<size_t>(bound) + 1);
  }
}

// Mass revocation with one broadcast at scale: every revoked device fails to
// unwrap, every surviving device recovers the payload.
TEST(CompleteSubtreeProperty, RevokedDevicesLearnNothingAtScale) {
  constexpr size_t kDevices = 65536;
  Rng rng(0x7265766f);
  auto channel =
      BroadcastChannel::Create(rng.NextBytes(16), kDevices).ValueOrDie();
  std::set<size_t> revoked = RandomRevoked(1000, kDevices, &rng);
  Bytes payload = rng.NextBytes(48);
  auto message = channel.Encrypt(payload, revoked, &rng).ValueOrDie();

  size_t checked_revoked = 0;
  for (size_t device : revoked) {
    if (++checked_revoked > 16) break;
    auto keys = channel.DeviceKeys(device).ValueOrDie();
    EXPECT_TRUE(BroadcastChannel::Decrypt(message, keys).status().IsNotFound())
        << "revoked device " << device << " unwrapped the broadcast";
  }
  size_t checked_ok = 0;
  for (size_t device = 0; device < kDevices && checked_ok < 16;
       device += 4099) {
    if (revoked.count(device)) continue;
    ++checked_ok;
    auto keys = channel.DeviceKeys(device).ValueOrDie();
    EXPECT_EQ(BroadcastChannel::Decrypt(message, keys).ValueOrDie(), payload);
  }
}

// ---------------------------------------------------------------------------
// Hostile epoch-block and epoch-secrets decoding (satellite d).

TEST(EpochCodec, EveryTruncationOfARealBlockIsRejected) {
  auto authority =
      keys::KeyAuthority::Create(Bytes(16, 0x21), 16, 7).ValueOrDie();
  Bytes good = authority->CurrentBlock();
  ASSERT_TRUE(keys::EpochBlock::Decode(good).ok());
  for (size_t len = 0; len < good.size(); ++len) {
    Bytes prefix(good.begin(), good.begin() + len);
    EXPECT_FALSE(keys::EpochBlock::Decode(prefix).ok())
        << "truncation to " << len << " bytes decoded";
  }
}

TEST(EpochCodec, ZeroCoverAndNodeZeroAndTrailingBytesAreCorruption) {
  Bytes zero_cover;
  {
    ByteWriter w(&zero_cover);
    w.PutU32(5);  // epoch
    w.PutU32(0);  // header entries
  }
  EXPECT_TRUE(keys::EpochBlock::Decode(zero_cover).status().IsCorruption());

  Bytes node_zero;
  {
    ByteWriter w(&node_zero);
    w.PutU32(5);
    w.PutU32(1);
    w.PutU32(0);  // node id 0 is outside the heap numbering
    w.PutBytes(Bytes(4, 0x11));
    w.PutBytes(Bytes(8, 0x22));
  }
  EXPECT_TRUE(keys::EpochBlock::Decode(node_zero).status().IsCorruption());

  auto authority =
      keys::KeyAuthority::Create(Bytes(16, 0x22), 8, 9).ValueOrDie();
  Bytes trailing = authority->CurrentBlock();
  trailing.push_back(0x00);
  EXPECT_TRUE(keys::EpochBlock::Decode(trailing).status().IsCorruption());
}

TEST(EpochCodec, EpochSecretsRoundTripAndHostileWindows) {
  std::vector<Bytes> secrets;
  for (uint8_t i = 0; i < 4; ++i) secrets.push_back(Bytes(16, i));
  Bytes good = keys::EncodeEpochSecrets(9, secrets);
  auto window = keys::DecodeEpochSecrets(good).ValueOrDie();
  EXPECT_EQ(window.inner_epoch, 9u);
  ASSERT_EQ(window.secrets.size(), 4u);
  // back() is epoch 9, front() epoch 6; epochs outside are unreachable.
  EXPECT_EQ(*window.SecretFor(9), Bytes(16, 3));
  EXPECT_EQ(*window.SecretFor(6), Bytes(16, 0));
  EXPECT_EQ(window.SecretFor(5), nullptr);
  EXPECT_EQ(window.SecretFor(10), nullptr);

  // Truncation anywhere is an error, never a short read.
  for (size_t len = 0; len < good.size(); ++len) {
    Bytes prefix(good.begin(), good.begin() + len);
    EXPECT_FALSE(keys::DecodeEpochSecrets(prefix).ok());
  }

  Bytes trailing = good;
  trailing.push_back(0xff);
  EXPECT_TRUE(keys::DecodeEpochSecrets(trailing).status().IsCorruption());

  // An empty window, an oversized window and a window that would predate
  // epoch 0 are all corrupt.
  EXPECT_TRUE(keys::DecodeEpochSecrets(keys::EncodeEpochSecrets(3, {}))
                  .status()
                  .IsCorruption());
  std::vector<Bytes> oversized(keys::kEpochWindow + 1, Bytes(16, 0xaa));
  EXPECT_TRUE(
      keys::DecodeEpochSecrets(keys::EncodeEpochSecrets(20, oversized))
          .status()
          .IsCorruption());
  std::vector<Bytes> predating(3, Bytes(16, 0xbb));
  EXPECT_TRUE(keys::DecodeEpochSecrets(keys::EncodeEpochSecrets(1, predating))
                  .status()
                  .IsCorruption());
}

// ---------------------------------------------------------------------------
// TdsKeyState under a hostile block source.

class CannedSource : public keys::EpochBlockSource {
 public:
  Result<Bytes> FetchLatestBlock(uint64_t) override {
    if (fail_) return Status::Unavailable("block source offline");
    return block_;
  }
  void Serve(Bytes block) {
    block_ = std::move(block);
    fail_ = false;
  }
  void Fail() { fail_ = true; }

 private:
  Bytes block_;
  bool fail_ = true;
};

Bytes Restamp(const Bytes& encoded, uint32_t fake_epoch) {
  auto block = keys::EpochBlock::Decode(encoded).ValueOrDie();
  block.epoch = fake_epoch;
  return block.Encode();
}

struct KeyWorld {
  std::unique_ptr<keys::KeyAuthority> authority;
  CannedSource source;
  std::unique_ptr<keys::TdsKeyState> state;

  explicit KeyWorld(uint64_t tds_id, size_t num_devices = 8) {
    authority =
        keys::KeyAuthority::Create(Bytes(16, 0x42), num_devices, 3)
            .ValueOrDie();
    state = std::make_unique<keys::TdsKeyState>(
        tds_id, authority->EnrollDevice(tds_id).ValueOrDie(), &source);
    source.Serve(authority->CurrentBlock());
  }
};

// A rollover block whose public epoch was re-stamped is refused (the sealed
// body disagrees) and the TDS keeps its last good window.
TEST(TdsKeyStateHostile, RestampedRolloverIsRefused) {
  KeyWorld w(/*tds_id=*/3);
  ASSERT_TRUE(w.state->Refresh().ok());
  ASSERT_EQ(w.state->known_epoch().ValueOrDie(), 0u);

  ASSERT_TRUE(w.authority->Rollover().ok());
  w.source.Serve(Restamp(w.authority->CurrentBlock(), 2));
  EXPECT_TRUE(w.state->Refresh().IsCorruption());
  EXPECT_EQ(w.state->known_epoch().ValueOrDie(), 0u);

  // The genuine epoch-1 block is still adoptable afterwards.
  w.source.Serve(w.authority->CurrentBlock());
  EXPECT_TRUE(w.state->Refresh().ok());
  EXPECT_EQ(w.state->known_epoch().ValueOrDie(), 1u);
}

// A forged body (bit-flip inside the sealed payload) fails authentication
// and leaves the window untouched; pure garbage fails decoding.
TEST(TdsKeyStateHostile, ForgedBodyAndGarbageAreIgnored) {
  KeyWorld w(/*tds_id=*/5);
  ASSERT_TRUE(w.state->Refresh().ok());

  ASSERT_TRUE(w.authority->Rollover().ok());
  auto block = keys::EpochBlock::Decode(w.authority->CurrentBlock())
                   .ValueOrDie();
  ASSERT_FALSE(block.message.body.empty());
  block.message.body.front() ^= 0xff;
  w.source.Serve(block.Encode());
  EXPECT_FALSE(w.state->Refresh().ok());
  EXPECT_EQ(w.state->known_epoch().ValueOrDie(), 0u);

  w.source.Serve(Bytes(64, 0x5a));
  EXPECT_FALSE(w.state->Refresh().ok());
  EXPECT_EQ(w.state->known_epoch().ValueOrDie(), 0u);
}

// Replaying the stale epoch-0 block after a rollover is a silent no-op: a
// TDS can never be rolled backwards.
TEST(TdsKeyStateHostile, StaleReplayCannotDowngrade) {
  KeyWorld w(/*tds_id=*/1);
  Bytes epoch0 = w.authority->CurrentBlock();
  ASSERT_TRUE(w.state->Refresh().ok());

  ASSERT_TRUE(w.authority->Rollover().ok());
  w.source.Serve(w.authority->CurrentBlock());
  ASSERT_TRUE(w.state->Refresh().ok());
  ASSERT_EQ(w.state->known_epoch().ValueOrDie(), 1u);

  w.source.Serve(epoch0);
  EXPECT_TRUE(w.state->Refresh().ok());
  EXPECT_EQ(w.state->known_epoch().ValueOrDie(), 1u);
}

// An offline source means no window at all: KeysFor and Tag both fail
// loudly instead of inventing keys.
TEST(TdsKeyStateHostile, NoWindowFailsClosed) {
  auto authority =
      keys::KeyAuthority::Create(Bytes(16, 0x42), 8, 3).ValueOrDie();
  CannedSource source;  // never served
  keys::TdsKeyState state(2, authority->EnrollDevice(2).ValueOrDie(),
                          &source);
  Rng rng(5);
  ssi::QueryKeyPosting posting = authority->NewPosting(77, &rng);
  EXPECT_TRUE(state.KeysFor(posting).status().IsNotFound());
  EXPECT_TRUE(
      state.Tag(77, Bytes(32, 0x01)).status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Contribution admission: round trip, forgery, revocation, stale epochs.

TEST(ContributionAdmission, RoundTripAndForgeryAndRevocation) {
  KeyWorld honest(/*tds_id=*/4);
  ASSERT_TRUE(honest.state->Refresh().ok());
  Bytes digest(32, 0x77);
  auto tag = honest.state->Tag(11, digest).ValueOrDie();
  EXPECT_TRUE(honest.authority->VerifyContribution(tag, 11, digest).ok());

  // Wrong query id, wrong digest, flipped mac: all denied.
  EXPECT_TRUE(honest.authority->VerifyContribution(tag, 12, digest)
                  .IsPermissionDenied());
  EXPECT_TRUE(honest.authority->VerifyContribution(tag, 11, Bytes(32, 0x78))
                  .IsPermissionDenied());
  keys::ContributionTag flipped = tag;
  flipped.mac.front() ^= 0x01;
  EXPECT_TRUE(honest.authority->VerifyContribution(flipped, 11, digest)
                  .IsPermissionDenied());

  // Revocation pins the TDS to epoch 0; its next tag carries the stale
  // epoch and is rejected, while the posting-epoch session keys it already
  // derived stop extending to the new epoch.
  ASSERT_TRUE(honest.authority->Revoke({4}).ok());
  honest.source.Serve(honest.authority->CurrentBlock());
  EXPECT_TRUE(honest.state->Refresh().IsNotFound());
  auto stale = honest.state->Tag(11, digest).ValueOrDie();
  EXPECT_EQ(stale.epoch, 0u);
  EXPECT_TRUE(honest.authority->VerifyContribution(stale, 11, digest)
                  .IsPermissionDenied());

  Rng rng(9);
  ssi::QueryKeyPosting fresh_posting = honest.authority->NewPosting(12, &rng);
  EXPECT_EQ(fresh_posting.epoch, 1u);
  EXPECT_TRUE(honest.state->KeysFor(fresh_posting).status().IsNotFound());
}

// Both sides of the per-query exchange derive the same session keys from
// the public posting, and different postings give unrelated keys.
TEST(ContributionAdmission, PostingDerivesMatchingSessionKeys) {
  KeyWorld w(/*tds_id=*/6);
  ASSERT_TRUE(w.state->Refresh().ok());
  Rng rng(13);
  ssi::QueryKeyPosting posting = w.authority->NewPosting(21, &rng);
  auto querier_keys = w.authority->QuerierKeysFor(posting).ValueOrDie();
  auto tds_keys = w.state->KeysFor(posting).ValueOrDie();
  // KeyStore never exposes raw keys; compare through the derived schemes —
  // the deterministic k2 encryption must agree byte-for-byte, and a k1
  // ciphertext sealed by one side must open on the other.
  Bytes probe = rng.NextBytes(24);
  EXPECT_EQ(querier_keys->k2_det().Encrypt(probe),
            tds_keys->k2_det().Encrypt(probe));
  EXPECT_EQ(querier_keys->k2_hash(), tds_keys->k2_hash());
  Bytes sealed = querier_keys->k1_ndet().Encrypt(probe, &rng);
  EXPECT_EQ(tds_keys->k1_ndet().Decrypt(sealed).ValueOrDie(), probe);

  ssi::QueryKeyPosting other = w.authority->NewPosting(22, &rng);
  auto other_keys = w.authority->QuerierKeysFor(other).ValueOrDie();
  EXPECT_NE(other_keys->k2_det().Encrypt(probe),
            querier_keys->k2_det().Encrypt(probe));
}

// ---------------------------------------------------------------------------
// Static/dynamic engine differential (satellite b): same world, same query,
// both key modes — byte-identical result table and adversary statistics.

constexpr size_t kDiffTds = 24;
constexpr size_t kDiffGroups = 4;

const char* QueryFor(ProtocolKind kind) {
  return kind == ProtocolKind::kBasicSfw
             ? "SELECT grp, val, cat FROM T WHERE cat < 6"
             : "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), "
               "MAX(val) FROM T GROUP BY grp";
}

struct World {
  std::unique_ptr<protocol::Fleet> fleet;
  std::unique_ptr<protocol::Querier> querier;
  std::shared_ptr<std::vector<storage::Tuple>> domain;
  std::map<storage::Tuple, uint64_t> freq;
};

World MakeWorld(uint64_t seed) {
  workload::GenericOptions gopts;
  gopts.num_tds = kDiffTds;
  gopts.num_groups = kDiffGroups;
  gopts.group_skew = 0.8;
  gopts.rows_per_tds = 2;
  gopts.seed = 8000 + seed;

  auto keys = crypto::KeyStore::CreateForTest(2028);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x66));
  World w;
  w.fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                        tds::AccessPolicy::AllowAll())
                .ValueOrDie();
  w.querier = std::make_unique<protocol::Querier>(
      "keydiff", authority->Issue("keydiff"), keys);

  w.domain = std::make_shared<std::vector<storage::Tuple>>();
  for (size_t g = 0; g < kDiffGroups; ++g) {
    w.domain->push_back(
        storage::Tuple({storage::Value::String(workload::GroupName(g))}));
  }
  const auto& catalog = w.fleet->at(0)->db().catalog();
  auto count_q =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp", catalog)
          .ValueOrDie();
  for (size_t i = 0; i < w.fleet->size(); ++i) {
    auto rows =
        sql::CollectionTuples(w.fleet->at(i)->db(), count_q).ValueOrDie();
    for (const auto& r : rows) w.freq[storage::Tuple({r.at(0)})] += 1;
  }
  return w;
}

std::unique_ptr<protocol::Protocol> MakeProtocol(ProtocolKind kind,
                                                 const World& w) {
  switch (kind) {
    case ProtocolKind::kBasicSfw:
      return std::make_unique<protocol::BasicSfwProtocol>();
    case ProtocolKind::kSAgg:
      return std::make_unique<protocol::SAggProtocol>();
    case ProtocolKind::kRnfNoise:
      return std::make_unique<protocol::NoiseProtocol>(false, w.domain);
    case ProtocolKind::kCNoise:
      return std::make_unique<protocol::NoiseProtocol>(true, w.domain);
    case ProtocolKind::kEdHist:
      return protocol::EdHistProtocol::FromDistribution(w.freq, 2);
  }
  return nullptr;
}

struct EngineRunConfig {
  KeyMode key_mode = KeyMode::kStatic;
  size_t num_threads = 1;
  size_t num_shards = 1;
  net::TransportKind transport = net::TransportKind::kLoopback;
};

RunOutcome RunEngine(ProtocolKind kind, uint64_t world_seed,
                     const EngineRunConfig& rc) {
  World w = MakeWorld(world_seed);
  auto protocol = MakeProtocol(kind, w);
  Engine::Config cfg;
  cfg.options.compute_availability = 0.25;
  cfg.options.expected_groups = kDiffGroups;
  cfg.options.seed = 17;
  cfg.options.num_threads = rc.num_threads;
  cfg.num_shards = rc.num_shards;
  cfg.transport = rc.transport;
  cfg.tracing = false;
  cfg.key_mode = rc.key_mode;
  auto engine = Engine::Create(std::move(w.fleet), cfg).ValueOrDie();
  return engine->Run(*protocol, *w.querier, 1, QueryFor(kind)).ValueOrDie();
}

/// Row-order-insensitive view of a result table. Some protocols order their
/// output by Det_Enc(group) tags, and those bytes legitimately differ across
/// key modes — the rows themselves must not.
std::vector<std::string> SortedRows(const std::string& table) {
  std::vector<std::string> rows;
  size_t start = 0;
  while (start < table.size()) {
    size_t end = table.find('\n', start);
    if (end == std::string::npos) end = table.size();
    rows.push_back(table.substr(start, end - start));
    start = end + 1;
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Tag values differ across key modes (different HMAC keys), but the
/// multiplicity structure the SSI observes must not.
std::vector<uint64_t> TagCounts(const std::map<Bytes, uint64_t>& histogram) {
  std::vector<uint64_t> counts;
  counts.reserve(histogram.size());
  for (const auto& [tag, count] : histogram) counts.push_back(count);
  std::sort(counts.begin(), counts.end());
  return counts;
}

class KeyModeDifferentialTest
    : public ::testing::TestWithParam<ProtocolKind> {};

// key_mode=dynamic is invisible: byte-identical result table, identical
// adversary-view statistics (blob sizes, item counts, tag multiplicities),
// zero rejections — for every protocol over three worlds.
TEST_P(KeyModeDifferentialTest, DynamicModeIsInvisibleToHonestRuns) {
  ProtocolKind kind = GetParam();
  for (uint64_t seed : {0u, 1u, 2u}) {
    SCOPED_TRACE(std::string(ProtocolKindToString(kind)) + " world=" +
                 std::to_string(seed));
    EngineRunConfig static_rc;
    EngineRunConfig dynamic_rc;
    dynamic_rc.key_mode = KeyMode::kDynamic;
    RunOutcome s = RunEngine(kind, seed, static_rc);
    RunOutcome d = RunEngine(kind, seed, dynamic_rc);

    EXPECT_EQ(SortedRows(s.result.ToString()), SortedRows(d.result.ToString()));
    EXPECT_TRUE(s.result.SameRows(d.result));
    EXPECT_EQ(d.metrics.contributions_rejected, 0u);
    EXPECT_EQ(s.metrics.collection_participants,
              d.metrics.collection_participants);

    EXPECT_EQ(s.adversary.collection_blob_sizes,
              d.adversary.collection_blob_sizes);
    EXPECT_EQ(s.adversary.collection_items, d.adversary.collection_items);
    EXPECT_EQ(s.adversary.aggregation_items, d.adversary.aggregation_items);
    EXPECT_EQ(s.adversary.filtering_items, d.adversary.filtering_items);
    EXPECT_EQ(TagCounts(s.adversary.collection_tag_histogram),
              TagCounts(d.adversary.collection_tag_histogram));
    EXPECT_EQ(TagCounts(s.adversary.aggregation_tag_histogram),
              TagCounts(d.adversary.aggregation_tag_histogram));
  }
}

// Dynamic-mode results stay correct against the plaintext oracle.
TEST_P(KeyModeDifferentialTest, DynamicModeMatchesOracle) {
  ProtocolKind kind = GetParam();
  EngineRunConfig rc;
  rc.key_mode = KeyMode::kDynamic;
  RunOutcome outcome = RunEngine(kind, 0, rc);
  World oracle_world = MakeWorld(0);
  auto oracle =
      protocol::ExecuteReference(*oracle_world.fleet, QueryFor(kind))
          .ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(oracle))
      << "got:\n" << outcome.result.ToString()
      << "want:\n" << oracle.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, KeyModeDifferentialTest,
    ::testing::Values(ProtocolKind::kBasicSfw, ProtocolKind::kSAgg,
                      ProtocolKind::kRnfNoise, ProtocolKind::kCNoise,
                      ProtocolKind::kEdHist),
    [](const auto& info) {
      return std::string(ProtocolKindToString(info.param));
    });

// ---------------------------------------------------------------------------
// Churn/rollover scenario suite (the headline): oracle-anchored campaign
// scenarios driven through sim::RunScenario.

sim::ScenarioOutcome MustRunScenario(const sim::ScenarioSpec& spec,
                                     net::TransportKind backend) {
  auto outcome = sim::RunScenario(spec, backend);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return outcome.ok() ? *outcome : sim::ScenarioOutcome{};
}

sim::ScenarioSpec DynamicSAggSpec(const std::string& name) {
  sim::ScenarioSpec spec;
  spec.name = name;
  spec.protocol = ProtocolKind::kSAgg;
  spec.dynamic_keys = true;
  spec.num_threads = 2;
  return spec;
}

// A TDS revoked mid-query keeps serving under its stale epoch; every one of
// its subsequent uploads is rejected by the admission check — a pinned,
// deterministic count — and the run still completes with the revocation
// visible in the metrics.
TEST(KeyScenarioSuite, RevokedMidQueryContributionsRejectedPinned) {
  sim::ScenarioSpec spec = DynamicSAggSpec("revoke-mid-query");
  spec.duration_ticks = 8;
  spec.revoke_at = {2, 5, 9, 12};
  spec.revoke_at_tick = 1;
  sim::ScenarioOutcome outcome =
      MustRunScenario(spec, net::TransportKind::kLoopback);

  EXPECT_TRUE(outcome.violations.empty())
      << outcome.name << ": " << outcome.violations.front();
  EXPECT_TRUE(outcome.completed);
  // Pinned: with this spec's seed, exactly this many uploads from the four
  // revoked TDSs land after the tick-1 revocation broadcast.
  EXPECT_EQ(outcome.contributions_rejected, 3u);
  EXPECT_FALSE(outcome.clean);  // the rejections are visible, not silent

  // The rejection count is part of the determinism contract: identical
  // across worker-thread counts and transport backends.
  sim::ScenarioSpec serial = spec;
  serial.num_threads = 1;
  EXPECT_EQ(MustRunScenario(serial, net::TransportKind::kLoopback).Canonical(),
            outcome.Canonical());
  EXPECT_EQ(MustRunScenario(spec, net::TransportKind::kTcp).Canonical(),
            outcome.Canonical());
}

// An epoch rollover during an in-flight multi-round S_Agg run: every honest
// TDS re-keys on its next upload, nothing is rejected, and the result still
// matches the plaintext oracle.
TEST(KeyScenarioSuite, RolloverDuringInFlightSAggCompletesCleanly) {
  // The duration is generous enough that, at this seed, every TDS connects
  // before the window closes — so a clean oracle match is required, not just
  // hoped for.
  sim::ScenarioSpec spec = DynamicSAggSpec("rollover-in-flight");
  spec.duration_ticks = 40;
  spec.rollover_at_tick = 2;
  spec.expect_complete = true;
  spec.expect_contributions_rejected = 0;
  sim::ScenarioOutcome outcome =
      MustRunScenario(spec, net::TransportKind::kLoopback);
  EXPECT_TRUE(outcome.violations.empty())
      << outcome.name << ": " << outcome.violations.front();
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.oracle_match);
  EXPECT_TRUE(outcome.clean);
  EXPECT_EQ(outcome.contributions_rejected, 0u);
}

// Revocation under dropout churn: devices drop out while others are being
// revoked mid-collection. The run must end in a visible state — either the
// oracle answer or metrics that account for every missing contribution.
TEST(KeyScenarioSuite, RevocationUnderChurnStaysVisible) {
  sim::ScenarioSpec spec = DynamicSAggSpec("revoke-under-churn");
  spec.duration_ticks = 8;
  spec.dropout_rate = 0.2;
  spec.revoke_at = {3, 7, 11};
  spec.revoke_at_tick = 2;
  sim::ScenarioOutcome outcome =
      MustRunScenario(spec, net::TransportKind::kLoopback);
  EXPECT_TRUE(outcome.violations.empty())
      << outcome.name << ": " << outcome.violations.front();
  EXPECT_TRUE(outcome.completed);
  // Determinism holds under churn too.
  EXPECT_EQ(MustRunScenario(spec, net::TransportKind::kTcp).Canonical(),
            outcome.Canonical());
}

// ---------------------------------------------------------------------------
// Keys determinism grid: dynamic mode over worker threads {1,4} x shards
// {1,2} x {loopback,tcp} — bit-identical outcomes everywhere.

TEST(KeysDeterminismGrid, DynamicRunsAreBitIdenticalEverywhere) {
  EngineRunConfig base;
  base.key_mode = KeyMode::kDynamic;
  RunOutcome reference = RunEngine(ProtocolKind::kSAgg, 0, base);
  EXPECT_EQ(reference.metrics.contributions_rejected, 0u);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t shards : {size_t{1}, size_t{2}}) {
      for (net::TransportKind transport :
           {net::TransportKind::kLoopback, net::TransportKind::kTcp}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards) + " transport=" +
                     (transport == net::TransportKind::kTcp ? "tcp"
                                                            : "loopback"));
        EngineRunConfig rc = base;
        rc.num_threads = threads;
        rc.num_shards = shards;
        rc.transport = transport;
        RunOutcome outcome = RunEngine(ProtocolKind::kSAgg, 0, rc);

        EXPECT_EQ(outcome.result.ToString(), reference.result.ToString());
        EXPECT_EQ(outcome.metrics.contributions_rejected, 0u);
        EXPECT_EQ(outcome.metrics.collection_participants,
                  reference.metrics.collection_participants);
        EXPECT_EQ(outcome.adversary.collection_items,
                  reference.adversary.collection_items);
        EXPECT_EQ(outcome.adversary.aggregation_items,
                  reference.adversary.aggregation_items);
        // Session keys depend only on (epoch, query id, nonce), never on
        // the backend: the raw tag histograms must match exactly.
        EXPECT_EQ(outcome.adversary.collection_tag_histogram,
                  reference.adversary.collection_tag_histogram);
        // Blob sizes are concatenated in shard order by the router; the
        // multiset is the shard-count invariant.
        auto sa = outcome.adversary.collection_blob_sizes;
        auto sb = reference.adversary.collection_blob_sizes;
        std::sort(sa.begin(), sa.end());
        std::sort(sb.begin(), sb.end());
        EXPECT_EQ(sa, sb);
      }
    }
  }
}

}  // namespace
}  // namespace tcells
