// Scheduler & engine-configuration tests: per-knob Create validation, the
// QueryHandle lifecycle, deterministic admission control under both policies,
// and cooperative cancellation (queued and mid-run) releasing shard state.
//
// The blocking scenarios use a GateProtocol — an S_Agg wrapper that parks in
// RunAggregation until the test releases it — so "slot busy" and "cancel
// arrives mid-run" are reproducible states, not races. Labelled `sched` (and
// `tsan`: handles, the scheduler and the gate cross threads by design).
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>

#include "net/ssi_wire.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells {
namespace {

protocol::RunOptions FastOptions() {
  protocol::RunOptions opts;
  opts.compute_availability = 0.3;
  opts.expected_groups = 4;
  return opts;
}

std::unique_ptr<protocol::Fleet> BuildFleet(size_t n = 60, uint64_t seed = 3) {
  auto keys = crypto::KeyStore::CreateForTest(77);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x21));
  workload::GenericOptions gopts;
  gopts.num_tds = n;
  gopts.num_groups = 4;
  gopts.seed = seed;
  return workload::BuildGenericFleet(gopts, keys, authority,
                                     tds::AccessPolicy::AllowAll())
      .ValueOrDie();
}

protocol::Querier MakeQuerier() {
  auto keys = crypto::KeyStore::CreateForTest(77);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x21));
  return protocol::Querier("s", authority->Issue("s"), keys);
}

const char* kAggSql = "SELECT grp, COUNT(*), SUM(cat) FROM T GROUP BY grp";

/// Test double: runs S_Agg, but parks at the top of the aggregation phase
/// until Release() — RunningQueries() tells the test when a worker actually
/// reached the gate, so admission/cancellation states can be pinned down
/// without sleeping.
class GateProtocol : public protocol::Protocol {
 public:
  protocol::ProtocolKind kind() const override { return inner_.kind(); }
  Result<tds::CollectionConfig> MakeCollectionConfig(
      protocol::RunContext& ctx, const sql::AnalyzedQuery& query) override {
    return inner_.MakeCollectionConfig(ctx, query);
  }
  Result<std::vector<ssi::EncryptedItem>> RunAggregation(
      protocol::RunContext& ctx, const sql::AnalyzedQuery& query,
      const tds::CollectionConfig& config,
      std::vector<ssi::EncryptedItem> items) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++at_gate_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    return inner_.RunAggregation(ctx, query, config, std::move(items));
  }

  /// Blocks until `n` queries are parked at the gate.
  void AwaitAtGate(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return at_gate_ >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  protocol::SAggProtocol inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t at_gate_ = 0;
  bool released_ = false;
};

// ---------------------------------------------------------------------------
// Create-time configuration validation: one clear InvalidArgument per knob.
// ---------------------------------------------------------------------------

TEST(EngineConfigTest, EmptyFleetRejected) {
  auto engine = Engine::Create(std::make_unique<protocol::Fleet>());
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
  EXPECT_NE(engine.status().ToString().find("non-empty fleet"),
            std::string::npos);
}

TEST(EngineConfigTest, ZeroShardsRejected) {
  Engine::Config cfg;
  cfg.num_shards = 0;
  auto engine = Engine::Create(BuildFleet(), cfg);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
  EXPECT_NE(engine.status().ToString().find("num_shards must be >= 1"),
            std::string::npos);
}

TEST(EngineConfigTest, TooManyShardsRejected) {
  Engine::Config cfg;
  cfg.num_shards = Engine::kMaxShards + 1;
  auto engine = Engine::Create(BuildFleet(), cfg);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
  EXPECT_NE(engine.status().ToString().find("exceeds kMaxShards"),
            std::string::npos);
}

TEST(EngineConfigTest, ZeroInflightRejected) {
  Engine::Config cfg;
  cfg.max_inflight_queries = 0;
  auto engine = Engine::Create(BuildFleet(), cfg);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
  EXPECT_NE(
      engine.status().ToString().find("max_inflight_queries must be >= 1"),
      std::string::npos);
}

TEST(EngineConfigTest, TooManyInflightRejected) {
  Engine::Config cfg;
  cfg.max_inflight_queries = Engine::kMaxInflightQueries + 1;
  auto engine = Engine::Create(BuildFleet(), cfg);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
  EXPECT_NE(engine.status().ToString().find("exceeds kMaxInflightQueries"),
            std::string::npos);
}

TEST(EngineConfigTest, OversizedBatchRejected) {
  Engine::Config cfg;
  cfg.transport_batch_max_calls = net::kMaxCallsPerBatch + 1;
  auto engine = Engine::Create(BuildFleet(), cfg);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
  EXPECT_NE(engine.status().ToString().find("kMaxCallsPerBatch"),
            std::string::npos);
}

TEST(EngineConfigTest, AutoBatchDefaultAccepted) {
  // 0 = auto: resolved per backend at StartShards, never rejected.
  Engine::Config cfg;
  EXPECT_EQ(cfg.transport_batch_max_calls, 0u);
  EXPECT_TRUE(Engine::Create(BuildFleet(), cfg).ok());
}

TEST(EngineConfigTest, MalformedRunOptionsRejected) {
  // RunOptions::Validate runs inside Create: the engine-wide defaults are
  // checked once, before any shard or worker starts.
  Engine::Config cfg;
  cfg.options.alpha = 1.0;  // S_Agg never converges at fan-in <= 1
  EXPECT_FALSE(Engine::Create(BuildFleet(), cfg).ok());
  cfg = Engine::Config();
  cfg.options.compute_availability = 1.5;
  EXPECT_FALSE(Engine::Create(BuildFleet(), cfg).ok());
}

TEST(EngineConfigTest, BoundaryValuesAccepted) {
  Engine::Config cfg;
  cfg.num_shards = 4;
  cfg.max_inflight_queries = 8;
  auto engine = Engine::Create(BuildFleet(), cfg);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->num_shards(), 4u);
  EXPECT_EQ((*engine)->scheduler().max_inflight(), 8u);
}

// ---------------------------------------------------------------------------
// QueryHandle lifecycle.
// ---------------------------------------------------------------------------

TEST(QueryHandleTest, SubmitWaitIdempotent) {
  Engine::Config cfg;
  cfg.options = FastOptions();
  auto fleet = BuildFleet();
  auto oracle = protocol::ExecuteReference(*fleet, kAggSql).ValueOrDie();
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto querier = MakeQuerier();

  protocol::SAggProtocol s_agg;
  QueryHandle handle =
      engine->Submit(s_agg, querier, 1, kAggSql).ValueOrDie();
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(handle.query_id(), 1u);

  auto outcome = handle.Wait().ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(oracle));
  EXPECT_EQ(handle.Status(), QueryState::kDone);
  EXPECT_TRUE(handle.Finished());
  // Wait is idempotent: the stored outcome comes back again, bit-identical.
  auto again = handle.Wait().ValueOrDie();
  EXPECT_EQ(again.result.ToString(), outcome.result.ToString());
}

TEST(QueryHandleTest, InvalidPerQueryOptionsRejectedAtSubmit) {
  auto engine = Engine::Create(BuildFleet()).ValueOrDie();
  auto querier = MakeQuerier();
  protocol::SAggProtocol s_agg;
  protocol::RunOptions bad = FastOptions();
  bad.alpha = 0.5;
  auto handle = engine->Submit(s_agg, querier, 1, kAggSql, bad);
  ASSERT_FALSE(handle.ok());
  EXPECT_TRUE(handle.status().IsInvalidArgument());
}

TEST(QueryHandleTest, FailedQueryReportsFailedState) {
  auto engine = Engine::Create(BuildFleet()).ValueOrDie();
  auto querier = MakeQuerier();
  protocol::BasicSfwProtocol basic;
  // Shape mismatch: BasicSfw cannot run a GROUP BY aggregate.
  QueryHandle handle =
      engine->Submit(basic, querier, 1, kAggSql).ValueOrDie();
  EXPECT_FALSE(handle.Wait().ok());
  EXPECT_EQ(handle.Status(), QueryState::kFailed);
}

// ---------------------------------------------------------------------------
// Admission control: deterministic accept/reject sequences per policy.
// ---------------------------------------------------------------------------

TEST(AdmissionTest, RejectPolicyDeterministicSequence) {
  Engine::Config cfg;
  cfg.options = FastOptions();
  cfg.max_inflight_queries = 2;
  cfg.admission = AdmissionPolicy::kReject;
  auto engine = Engine::Create(BuildFleet(), cfg).ValueOrDie();
  auto querier = MakeQuerier();

  GateProtocol gate;
  // Fill both slots; capacity counts queued-or-running jobs, so the reject
  // decision does not depend on when workers pick the jobs up.
  QueryHandle h1 = engine->Submit(gate, querier, 1, kAggSql).ValueOrDie();
  QueryHandle h2 = engine->Submit(gate, querier, 2, kAggSql).ValueOrDie();
  auto rejected = engine->Submit(gate, querier, 3, kAggSql);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  EXPECT_NE(rejected.status().ToString().find("all query slots busy"),
            std::string::npos);

  // Still rejected while both are parked mid-run (occupancy unchanged).
  gate.AwaitAtGate(2);
  EXPECT_FALSE(engine->Submit(gate, querier, 4, kAggSql).ok());

  gate.Release();
  ASSERT_TRUE(h1.Wait().ok());
  ASSERT_TRUE(h2.Wait().ok());

  // Slots free again: the same submission now succeeds.
  protocol::SAggProtocol s_agg;
  EXPECT_TRUE(engine->Run(s_agg, querier, 5, kAggSql).ok());
}

TEST(AdmissionTest, QueuePolicyRunsBacklogInOrder) {
  Engine::Config cfg;
  cfg.options = FastOptions();
  cfg.max_inflight_queries = 1;
  cfg.admission = AdmissionPolicy::kQueue;
  auto fleet = BuildFleet();
  auto oracle = protocol::ExecuteReference(*fleet, kAggSql).ValueOrDie();
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto querier = MakeQuerier();

  GateProtocol gate;
  protocol::SAggProtocol s_agg;
  QueryHandle h1 = engine->Submit(gate, querier, 1, kAggSql).ValueOrDie();
  gate.AwaitAtGate(1);
  // The single slot is busy: these queue rather than fail.
  QueryHandle h2 = engine->Submit(s_agg, querier, 2, kAggSql).ValueOrDie();
  QueryHandle h3 = engine->Submit(s_agg, querier, 3, kAggSql).ValueOrDie();
  EXPECT_EQ(engine->scheduler().NumQueued(), 2u);
  EXPECT_EQ(h2.Status(), QueryState::kQueued);

  gate.Release();
  EXPECT_TRUE(h1.Wait().ok());
  EXPECT_TRUE(h2.Wait().ValueOrDie().result.SameRows(oracle));
  EXPECT_TRUE(h3.Wait().ValueOrDie().result.SameRows(oracle));
  EXPECT_EQ(engine->scheduler().NumQueued(), 0u);
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(CancelTest, QueuedJobCancelledBeforeItRuns) {
  Engine::Config cfg;
  cfg.options = FastOptions();
  cfg.max_inflight_queries = 1;
  auto engine = Engine::Create(BuildFleet(), cfg).ValueOrDie();
  auto querier = MakeQuerier();

  GateProtocol gate;
  protocol::SAggProtocol s_agg;
  QueryHandle h1 = engine->Submit(gate, querier, 1, kAggSql).ValueOrDie();
  gate.AwaitAtGate(1);
  QueryHandle h2 = engine->Submit(s_agg, querier, 2, kAggSql).ValueOrDie();
  h2.Cancel();
  // A queued job dies immediately — no worker ever touches it.
  EXPECT_EQ(h2.Status(), QueryState::kCancelled);
  auto result = h2.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());

  gate.Release();
  EXPECT_TRUE(h1.Wait().ok());
  // The cancelled query never reached the SSI: no shard holds state for it.
  for (size_t i = 0; i < engine->num_shards(); ++i) {
    EXPECT_EQ(engine->shard_node(i)->num_active_queries(), 0u);
  }
}

TEST(CancelTest, MidRunCancelReleasesShardStateAndAllowsResubmit) {
  Engine::Config cfg;
  cfg.options = FastOptions();
  cfg.num_shards = 2;
  auto fleet = BuildFleet();
  auto oracle = protocol::ExecuteReference(*fleet, kAggSql).ValueOrDie();
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto querier = MakeQuerier();

  GateProtocol gate;
  QueryHandle handle = engine->Submit(gate, querier, 7, kAggSql).ValueOrDie();
  gate.AwaitAtGate(1);  // collection done, parked before the first round
  handle.Cancel();
  gate.Release();  // the run resumes and hits the round-edge cancel check
  auto result = handle.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_EQ(handle.Status(), QueryState::kCancelled);

  // The runner retired the half-finished query on every shard: nothing
  // leaks into later queries and the same id is free again.
  for (size_t i = 0; i < engine->num_shards(); ++i) {
    EXPECT_EQ(engine->shard_node(i)->num_active_queries(), 0u);
  }
  protocol::SAggProtocol s_agg;
  auto rerun = engine->Run(s_agg, querier, 7, kAggSql).ValueOrDie();
  EXPECT_TRUE(rerun.result.SameRows(oracle));
  // Accounting stayed consistent: a clean loopback rerun loses nothing.
  EXPECT_EQ(rerun.metrics.partitions_lost, 0u);
  EXPECT_EQ(rerun.metrics.partitions_tampered, 0u);
}

TEST(CancelTest, CancelAfterCompletionIsANoOp) {
  Engine::Config cfg;
  cfg.options = FastOptions();
  auto fleet = BuildFleet();
  auto oracle = protocol::ExecuteReference(*fleet, kAggSql).ValueOrDie();
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto querier = MakeQuerier();
  protocol::SAggProtocol s_agg;
  QueryHandle handle = engine->Submit(s_agg, querier, 1, kAggSql).ValueOrDie();
  ASSERT_TRUE(handle.Wait().ok());
  handle.Cancel();
  EXPECT_EQ(handle.Status(), QueryState::kDone);
  EXPECT_TRUE(handle.Wait().ValueOrDie().result.SameRows(oracle));
}

// ---------------------------------------------------------------------------
// Concurrency smoke: many queries through few slots, all oracle-correct.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ManyConcurrentQueriesAllCorrect) {
  Engine::Config cfg;
  cfg.options = FastOptions();
  cfg.num_shards = 2;
  cfg.max_inflight_queries = 4;
  auto fleet = BuildFleet();
  auto oracle = protocol::ExecuteReference(*fleet, kAggSql).ValueOrDie();
  auto engine = Engine::Create(std::move(fleet), cfg).ValueOrDie();
  auto querier = MakeQuerier();

  protocol::SAggProtocol s_agg;
  std::vector<QueryHandle> handles;
  for (uint64_t id = 1; id <= 12; ++id) {
    handles.push_back(
        engine->Submit(s_agg, querier, id, kAggSql).ValueOrDie());
  }
  for (auto& h : handles) {
    EXPECT_TRUE(h.Wait().ValueOrDie().result.SameRows(oracle));
  }
  for (size_t i = 0; i < engine->num_shards(); ++i) {
    EXPECT_EQ(engine->shard_node(i)->num_active_queries(), 0u);
  }
}

}  // namespace
}  // namespace tcells
