// Differential harness for the sharded SSI: the engine's determinism
// contract says a query's result is bit-identical whether it runs alone or
// alongside other queries, at any shard count and thread count, on loopback
// or TCP.
//
// Within one shard count everything observable must match exactly — result
// rows, cost-accountant tallies, simulated phase times and the adversary
// view down to its encoded bytes. Across shard counts the router merges the
// per-shard adversary views by concatenating blob sizes in shard order, so
// that one field is compared as a multiset; collection order itself is
// reconstructed exactly from the upload log, so results and metrics stay
// bit-identical at any shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells::protocol {
namespace {

using storage::Tuple;
using storage::Value;

constexpr size_t kNumTds = 24;
constexpr size_t kNumGroups = 4;

const char* QueryFor(ProtocolKind kind) {
  return kind == ProtocolKind::kBasicSfw
             ? "SELECT grp, val, cat FROM T WHERE cat < 6"
             : "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), "
               "MAX(val) FROM T GROUP BY grp";
}

struct World {
  std::unique_ptr<Fleet> fleet;
  std::unique_ptr<Querier> querier;
  std::shared_ptr<std::vector<Tuple>> domain;
  std::map<Tuple, uint64_t> freq;
};

World MakeWorld(uint64_t seed = 0) {
  workload::GenericOptions gopts;
  gopts.num_tds = kNumTds;
  gopts.num_groups = kNumGroups;
  gopts.group_skew = 0.8;
  gopts.rows_per_tds = 2;
  gopts.seed = 4000 + seed;

  auto keys = crypto::KeyStore::CreateForTest(2027);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x55));
  World w;
  w.fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                        tds::AccessPolicy::AllowAll())
                .ValueOrDie();
  w.querier =
      std::make_unique<Querier>("diff", authority->Issue("diff"), keys);

  w.domain = std::make_shared<std::vector<Tuple>>();
  for (size_t g = 0; g < kNumGroups; ++g) {
    w.domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
  }
  const auto& catalog = w.fleet->at(0)->db().catalog();
  auto count_q =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp", catalog)
          .ValueOrDie();
  for (size_t i = 0; i < w.fleet->size(); ++i) {
    auto rows =
        sql::CollectionTuples(w.fleet->at(i)->db(), count_q).ValueOrDie();
    for (const auto& r : rows) w.freq[Tuple({r.at(0)})] += 1;
  }
  return w;
}

std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind, const World& w) {
  switch (kind) {
    case ProtocolKind::kBasicSfw: return std::make_unique<BasicSfwProtocol>();
    case ProtocolKind::kSAgg: return std::make_unique<SAggProtocol>();
    case ProtocolKind::kRnfNoise:
      return std::make_unique<NoiseProtocol>(false, w.domain);
    case ProtocolKind::kCNoise:
      return std::make_unique<NoiseProtocol>(true, w.domain);
    case ProtocolKind::kEdHist:
      return EdHistProtocol::FromDistribution(w.freq, 2);
  }
  return nullptr;
}

struct RunConfig {
  size_t num_shards = 1;
  size_t num_threads = 1;
  net::TransportKind transport = net::TransportKind::kLoopback;
  /// Decoy queries submitted alongside the probe (0 = the probe runs alone).
  size_t concurrent_decoys = 0;
};

/// Runs the probe query (id 1, the engine's default seed) under `rc` in a
/// fresh world and returns its outcome. With decoys, the probe shares the
/// engine's sharded stack and scheduler slots with `concurrent_decoys` other
/// queries of the same shape — none of which may perturb its bits.
RunOutcome RunProbe(ProtocolKind kind, const RunConfig& rc) {
  World w = MakeWorld();
  auto protocol = MakeProtocol(kind, w);

  Engine::Config cfg;
  cfg.options.compute_availability = 0.25;
  cfg.options.expected_groups = kNumGroups;
  cfg.options.seed = 11;
  cfg.options.num_threads = rc.num_threads;
  cfg.num_shards = rc.num_shards;
  cfg.max_inflight_queries = std::max<size_t>(4, rc.concurrent_decoys + 1);
  cfg.transport = rc.transport;
  auto engine = Engine::Create(std::move(w.fleet), cfg).ValueOrDie();

  std::vector<QueryHandle> decoys;
  auto decoy_protocol = MakeProtocol(kind, w);
  for (size_t d = 0; d < rc.concurrent_decoys; ++d) {
    decoys.push_back(engine
                         ->Submit(*decoy_protocol, *w.querier, 100 + d,
                                  QueryFor(kind))
                         .ValueOrDie());
  }
  QueryHandle probe =
      engine->Submit(*protocol, *w.querier, 1, QueryFor(kind)).ValueOrDie();
  RunOutcome outcome = probe.Wait().ValueOrDie();
  for (auto& h : decoys) EXPECT_TRUE(h.Wait().ok());
  return outcome;
}

void ExpectMetricsIdentical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.result.ToString(), b.result.ToString());
  const auto& ma = a.metrics;
  const auto& mb = b.metrics;
  for (auto phase : {sim::Phase::kCollection, sim::Phase::kAggregation,
                     sim::Phase::kFiltering}) {
    SCOPED_TRACE("phase=" + std::to_string(static_cast<int>(phase)));
    const auto& ta = ma.accountant.phase(phase);
    const auto& tb = mb.accountant.phase(phase);
    EXPECT_EQ(ta.bytes_uploaded, tb.bytes_uploaded);
    EXPECT_EQ(ta.bytes_downloaded, tb.bytes_downloaded);
    EXPECT_EQ(ta.tuples_processed, tb.tuples_processed);
    EXPECT_EQ(ta.tds_participations, tb.tds_participations);
    EXPECT_EQ(ta.partitions, tb.partitions);
    EXPECT_EQ(ta.iterations, tb.iterations);
    EXPECT_EQ(ta.dropouts, tb.dropouts);
  }
  EXPECT_EQ(ma.accountant.TotalBytes(), mb.accountant.TotalBytes());
  EXPECT_EQ(ma.accountant.DistinctTds(), mb.accountant.DistinctTds());
  EXPECT_EQ(ma.times.collection_seconds, mb.times.collection_seconds);
  EXPECT_EQ(ma.times.aggregation_seconds, mb.times.aggregation_seconds);
  EXPECT_EQ(ma.times.filtering_seconds, mb.times.filtering_seconds);
  EXPECT_EQ(ma.aggregation_rounds, mb.aggregation_rounds);
  EXPECT_EQ(ma.collection_participants, mb.collection_participants);
  EXPECT_EQ(ma.partitions_lost, 0u);
  EXPECT_EQ(mb.partitions_lost, 0u);
}

/// Exact comparison, valid when both runs used the same shard count: the
/// merged adversary view must match down to its encoded bytes.
void ExpectIdenticalSameShardCount(const RunOutcome& a, const RunOutcome& b) {
  ExpectMetricsIdentical(a, b);
  Bytes ea, eb;
  a.adversary.EncodeTo(&ea);
  b.adversary.EncodeTo(&eb);
  EXPECT_EQ(ea, eb);
}

/// Cross-shard-count comparison: blob sizes are concatenated in shard order
/// by the router, so only their multiset is invariant; everything else must
/// still match exactly.
void ExpectIdenticalAcrossShardCounts(const RunOutcome& a,
                                      const RunOutcome& b) {
  ExpectMetricsIdentical(a, b);
  const auto& va = a.adversary;
  const auto& vb = b.adversary;
  EXPECT_EQ(va.collection_tag_histogram, vb.collection_tag_histogram);
  EXPECT_EQ(va.aggregation_tag_histogram, vb.aggregation_tag_histogram);
  EXPECT_EQ(va.collection_items, vb.collection_items);
  EXPECT_EQ(va.aggregation_items, vb.aggregation_items);
  EXPECT_EQ(va.filtering_items, vb.filtering_items);
  auto sa = va.collection_blob_sizes;
  auto sb = vb.collection_blob_sizes;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

class ShardDifferentialTest : public ::testing::TestWithParam<ProtocolKind> {};

// Shard grid {1,2,4}: every protocol's solo run is bit-identical at any
// shard count, and correct against the plaintext oracle.
TEST_P(ShardDifferentialTest, ShardCountIsInvisible) {
  ProtocolKind kind = GetParam();
  RunConfig base;
  RunOutcome one_shard = RunProbe(kind, base);

  World oracle_world = MakeWorld();
  auto oracle =
      ExecuteReference(*oracle_world.fleet, QueryFor(kind)).ValueOrDie();
  EXPECT_TRUE(one_shard.result.SameRows(oracle))
      << "got:\n" << one_shard.result.ToString()
      << "want:\n" << oracle.ToString();

  for (size_t shards : {2u, 4u}) {
    SCOPED_TRACE(std::string(ProtocolKindToString(kind)) + " shards=" +
                 std::to_string(shards));
    RunConfig rc;
    rc.num_shards = shards;
    ExpectIdenticalAcrossShardCounts(one_shard, RunProbe(kind, rc));
  }
}

// Alone vs concurrent: the probe's bits must not change when other queries
// share the engine's shards and scheduler slots — at every shard count.
TEST_P(ShardDifferentialTest, ConcurrentLoadIsInvisible) {
  ProtocolKind kind = GetParam();
  for (size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::string(ProtocolKindToString(kind)) + " shards=" +
                 std::to_string(shards));
    RunConfig alone;
    alone.num_shards = shards;
    RunConfig crowded = alone;
    crowded.concurrent_decoys = 7;
    ExpectIdenticalSameShardCount(RunProbe(kind, alone),
                                  RunProbe(kind, crowded));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ShardDifferentialTest,
    ::testing::Values(ProtocolKind::kBasicSfw, ProtocolKind::kSAgg,
                      ProtocolKind::kRnfNoise, ProtocolKind::kCNoise,
                      ProtocolKind::kEdHist),
    [](const auto& info) {
      return std::string(ProtocolKindToString(info.param));
    });

// Thread counts compose with sharding: at a fixed shard count, the worker
// fan-out must stay invisible (per-partition rng streams, not scheduling).
TEST(ShardThreadGridTest, ThreadCountIsInvisibleAtEveryShardCount) {
  for (size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RunConfig serial;
    serial.num_shards = shards;
    serial.num_threads = 1;
    RunConfig fanned = serial;
    fanned.num_threads = 4;
    ExpectIdenticalSameShardCount(RunProbe(ProtocolKind::kSAgg, serial),
                                  RunProbe(ProtocolKind::kSAgg, fanned));
  }
}

// TCP arm: a sharded engine over real sockets (one server per shard) is
// bit-identical to the loopback one, alone and under concurrent load.
TEST(ShardTransportTest, TcpShardsMatchLoopbackShards) {
  for (ProtocolKind kind : {ProtocolKind::kSAgg, ProtocolKind::kEdHist}) {
    SCOPED_TRACE(ProtocolKindToString(kind));
    RunConfig loopback;
    loopback.num_shards = 2;
    RunConfig tcp = loopback;
    tcp.transport = net::TransportKind::kTcp;
    ExpectIdenticalSameShardCount(RunProbe(kind, loopback),
                                  RunProbe(kind, tcp));

    RunConfig tcp_crowded = tcp;
    tcp_crowded.concurrent_decoys = 3;
    ExpectIdenticalSameShardCount(RunProbe(kind, loopback),
                                  RunProbe(kind, tcp_crowded));
  }
}

// The SIZE bound is coordinated globally by the router. Single-node
// semantics admit whole uploads (the upload crossing the bound is accepted
// in full, so 2-row TDSs may overshoot by one item); the sharded engine must
// reproduce that cutoff exactly at any shard count.
TEST(ShardSizeBoundTest, GlobalSizeBoundHoldsAcrossShardCounts) {
  uint64_t single_node_items = 0;
  for (size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    World w = MakeWorld();
    Engine::Config cfg;
    cfg.options.compute_availability = 0.25;
    cfg.options.expected_groups = kNumGroups;
    cfg.options.seed = 9;
    cfg.num_shards = shards;
    auto engine = Engine::Create(std::move(w.fleet), cfg).ValueOrDie();
    SAggProtocol s_agg;
    auto outcome =
        engine
            ->Run(s_agg, *w.querier, 1,
                  "SELECT grp, COUNT(*) FROM T GROUP BY grp SIZE 13")
            .ValueOrDie();
    // At or just past the bound (whole-upload granularity, 2 rows per TDS)…
    EXPECT_GE(outcome.adversary.collection_items, 13u);
    EXPECT_LE(outcome.adversary.collection_items, 14u);
    // …and bit-identical to the single-node cutoff.
    if (shards == 1) {
      single_node_items = outcome.adversary.collection_items;
    } else {
      EXPECT_EQ(outcome.adversary.collection_items, single_node_items);
    }
  }
}

}  // namespace
}  // namespace tcells::protocol
