// Tests for the workload generators, the device model/cost accountant, and
// protocol plumbing (fleet sampling, querier, dropout exhaustion, discovery
// validation).
#include <gtest/gtest.h>

#include <set>

#include "crypto/provisioning.h"
#include "protocol/discovery.h"
#include "protocol/factory.h"
#include "protocol/protocols.h"
#include "protocol/reference.h"
#include "sim/cost_accountant.h"
#include "sim/device_model.h"
#include "tcells/engine.h"
#include "tds/access_control.h"
#include "workload/generic.h"
#include "workload/health.h"
#include "workload/smart_meter.h"

namespace tcells {
namespace {

using storage::ValueType;

// ---------------------------------------------------------------------------
// Workload generators

TEST(SmartMeterWorkloadTest, SchemasMatchPaperExample) {
  auto consumer = workload::ConsumerSchema();
  EXPECT_TRUE(consumer.FindColumn("cid").has_value());
  EXPECT_TRUE(consumer.FindColumn("district").has_value());
  EXPECT_TRUE(consumer.FindColumn("accomodation").has_value());
  auto power = workload::PowerSchema();
  EXPECT_EQ(power.column(*power.FindColumn("cons")).type, ValueType::kDouble);
}

TEST(SmartMeterWorkloadTest, FleetShapeAndDeterminism) {
  workload::SmartMeterOptions opts;
  opts.num_tds = 25;
  opts.readings_per_tds = 3;
  auto keys = crypto::KeyStore::CreateForTest(1);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 1));
  auto a = workload::BuildSmartMeterFleet(opts, keys, authority,
                                          tds::AccessPolicy::AllowAll())
               .ValueOrDie();
  auto b = workload::BuildSmartMeterFleet(opts, keys, authority,
                                          tds::AccessPolicy::AllowAll())
               .ValueOrDie();
  ASSERT_EQ(a->size(), 25u);
  for (size_t i = 0; i < a->size(); ++i) {
    const auto* ta = a->at(i)->db().GetTable("Power").ValueOrDie();
    const auto* tb = b->at(i)->db().GetTable("Power").ValueOrDie();
    ASSERT_EQ(ta->num_rows(), 3u);
    // Same seed -> identical data.
    for (size_t r = 0; r < ta->num_rows(); ++r) {
      EXPECT_TRUE(ta->row(r).IsSameGroup(tb->row(r)));
    }
    // cid matches the TDS id.
    const auto* ca = a->at(i)->db().GetTable("Consumer").ValueOrDie();
    EXPECT_EQ(ca->row(0).at(0).AsInt64(), static_cast<int64_t>(i));
  }
}

TEST(SmartMeterWorkloadTest, DistrictSkewShowsUp) {
  workload::SmartMeterOptions opts;
  opts.num_tds = 400;
  opts.num_districts = 8;
  opts.district_skew = 1.4;
  auto keys = crypto::KeyStore::CreateForTest(2);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 2));
  auto fleet = workload::BuildSmartMeterFleet(opts, keys, authority,
                                              tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  std::map<std::string, int> counts;
  for (size_t i = 0; i < fleet->size(); ++i) {
    const auto* c = fleet->at(i)->db().GetTable("Consumer").ValueOrDie();
    counts[c->row(0).at(1).AsString()]++;
  }
  int max_c = 0, min_c = 1 << 30;
  for (const auto& [d, n] : counts) {
    max_c = std::max(max_c, n);
    min_c = std::min(min_c, n);
  }
  EXPECT_GT(max_c, 3 * std::max(1, min_c));
}

TEST(HealthWorkloadTest, ValuesInDomain) {
  workload::HealthOptions opts;
  opts.num_tds = 50;
  auto keys = crypto::KeyStore::CreateForTest(3);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 3));
  auto fleet = workload::BuildHealthFleet(opts, keys, authority,
                                          tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  std::set<std::string> cities(opts.cities.begin(), opts.cities.end());
  std::set<std::string> conditions(opts.conditions.begin(),
                                   opts.conditions.end());
  for (size_t i = 0; i < fleet->size(); ++i) {
    const auto* p = fleet->at(i)->db().GetTable("Patient").ValueOrDie();
    ASSERT_EQ(p->num_rows(), 1u);
    EXPECT_TRUE(cities.count(p->row(0).at(2).AsString()));
    EXPECT_TRUE(conditions.count(p->row(0).at(3).AsString()));
    int64_t age = p->row(0).at(1).AsInt64();
    EXPECT_GE(age, 1);
    EXPECT_LE(age, 99);
  }
}

TEST(GenericWorkloadTest, GroupsAndRowCount) {
  workload::GenericOptions opts;
  opts.num_tds = 30;
  opts.num_groups = 4;
  opts.rows_per_tds = 5;
  auto keys = crypto::KeyStore::CreateForTest(4);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 4));
  auto fleet = workload::BuildGenericFleet(opts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  std::set<std::string> groups;
  for (size_t i = 0; i < fleet->size(); ++i) {
    const auto* t = fleet->at(i)->db().GetTable("T").ValueOrDie();
    ASSERT_EQ(t->num_rows(), 5u);
    for (const auto& row : t->rows()) {
      groups.insert(row.at(1).AsString());
      // gid and grp are consistent.
      EXPECT_EQ(workload::GroupName(
                    static_cast<size_t>(row.at(0).AsInt64())),
                row.at(1).AsString());
    }
  }
  EXPECT_LE(groups.size(), 4u);
  EXPECT_GE(groups.size(), 2u);
}

// ---------------------------------------------------------------------------
// Device model & accountant

TEST(DeviceModelTest, LinearityAndMonotonicity) {
  sim::DeviceModel dm;
  EXPECT_DOUBLE_EQ(dm.TransferSeconds(0), 0.0);
  EXPECT_NEAR(dm.TransferSeconds(2000), 2 * dm.TransferSeconds(1000), 1e-12);
  EXPECT_GT(dm.CryptoSeconds(17), dm.CryptoSeconds(16));  // block rounding
  EXPECT_EQ(dm.CryptoSeconds(1), dm.CryptoSeconds(16));
  EXPECT_GT(dm.CpuSeconds(10), 0.0);
}

TEST(DeviceModelTest, CustomParams) {
  sim::DeviceParams params;
  params.transfer_bps = 1e6;
  sim::DeviceModel dm(params);
  EXPECT_DOUBLE_EQ(dm.TransferSeconds(125000), 1.0);  // 1 Mb / 1 Mbps
}


TEST(DeviceModelTest, SmartMeterProfileIsFaster) {
  sim::DeviceModel token{sim::DeviceParams::PaperBoard()};
  sim::DeviceModel meter{sim::DeviceParams::SmartMeter()};
  EXPECT_LT(meter.PerTupleSeconds(16), token.PerTupleSeconds(16) / 3);
  EXPECT_LT(meter.TransferSeconds(4096), token.TransferSeconds(4096));
  // Per §6.2 the internal-cost conclusion is hardware-independent: transfer
  // still dominates on the faster device.
  EXPECT_GT(meter.TransferSeconds(4096), meter.CryptoSeconds(4096));
}

TEST(CostAccountantTest, TalliesAndDerivedMetrics) {
  sim::CostAccountant acc;
  acc.RecordPartition(sim::Phase::kAggregation, /*tds=*/1, 100, 50, 10);
  acc.RecordPartition(sim::Phase::kAggregation, /*tds=*/2, 200, 50, 20);
  acc.RecordPartition(sim::Phase::kFiltering, /*tds=*/1, 10, 10, 1);
  acc.RecordIteration(sim::Phase::kAggregation);
  acc.RecordDropout(sim::Phase::kAggregation);

  const auto& agg = acc.phase(sim::Phase::kAggregation);
  EXPECT_EQ(agg.bytes_downloaded, 300u);
  EXPECT_EQ(agg.bytes_uploaded, 100u);
  EXPECT_EQ(agg.tuples_processed, 30u);
  EXPECT_EQ(agg.partitions, 2u);
  EXPECT_EQ(agg.iterations, 1u);
  EXPECT_EQ(agg.dropouts, 1u);
  EXPECT_EQ(acc.DistinctTds(), 2u);
  EXPECT_EQ(acc.TotalBytes(), 420u);

  sim::DeviceModel dm;
  EXPECT_GT(acc.AverageTdsSeconds(dm), 0.0);
  EXPECT_GE(acc.MaxTdsSeconds(dm), acc.AverageTdsSeconds(dm));
}

// ---------------------------------------------------------------------------
// Protocol plumbing

class PlumbingWorld {
 public:
  PlumbingWorld(size_t n = 30) {
    keys = crypto::KeyStore::CreateForTest(9);
    authority = std::make_shared<tds::Authority>(Bytes(16, 9));
    workload::GenericOptions gopts;
    gopts.num_tds = n;
    auto built = workload::BuildGenericFleet(gopts, keys, authority,
                                             tds::AccessPolicy::AllowAll())
                     .ValueOrDie();
    querier = std::make_unique<protocol::Querier>("p", authority->Issue("p"),
                                                  keys);
    engine = Engine::Create(std::move(built)).ValueOrDie();
    fleet = &engine->fleet();
  }
  std::shared_ptr<const crypto::KeyStore> keys;
  std::shared_ptr<tds::Authority> authority;
  std::unique_ptr<protocol::Querier> querier;
  std::unique_ptr<Engine> engine;
  protocol::Fleet* fleet = nullptr;  // owned by the engine
};

TEST(FleetTest, SampleAvailableBounds) {
  PlumbingWorld w(40);
  Rng rng(1);
  EXPECT_EQ(w.fleet->SampleAvailable(0.0, &rng).size(), 1u);   // at least one
  EXPECT_EQ(w.fleet->SampleAvailable(1.0, &rng).size(), 40u);
  auto half = w.fleet->SampleAvailable(0.5, &rng);
  EXPECT_EQ(half.size(), 20u);
  std::set<uint64_t> distinct;
  for (auto* s : half) distinct.insert(s->id());
  EXPECT_EQ(distinct.size(), 20u);  // no duplicates
}

TEST(QuerierTest, PostCarriesSizeInCleartextAndSqlEncrypted) {
  PlumbingWorld w;
  Rng rng(2);
  auto post = w.querier->MakePost(9, "SELECT grp FROM T SIZE 12 DURATION 4",
                                  &rng)
                  .ValueOrDie();
  EXPECT_EQ(post.query_id, 9u);
  EXPECT_EQ(post.size_max_tuples.value(), 12u);
  EXPECT_EQ(post.size_max_duration_ticks.value(), 4u);
  // The SQL text is not visible in the encrypted blob.
  std::string blob(post.encrypted_query.begin(), post.encrypted_query.end());
  EXPECT_EQ(blob.find("SELECT"), std::string::npos);
  // TDSs (sharing k1) can decrypt it.
  auto plain = w.keys->k1_ndet().Decrypt(post.encrypted_query).ValueOrDie();
  EXPECT_EQ(std::string(plain.begin(), plain.end()),
            "SELECT grp FROM T SIZE 12 DURATION 4");
}

TEST(QuerierTest, MalformedSqlRejectedAtPostTime) {
  PlumbingWorld w;
  Rng rng(3);
  EXPECT_FALSE(w.querier->MakePost(1, "DROP TABLE T", &rng).ok());
}

TEST(RunnerTest, WorstCaseChurnStillCompletes) {
  // §3.2 correctness: the SSI re-sends a lost partition until some TDS
  // completes it. Even with every first assignment dropping, the run
  // finishes — it just pays the timeout penalty each time.
  PlumbingWorld w;
  protocol::SAggProtocol protocol;
  protocol::RunOptions opts;
  opts.dropout_rate = 1.0;  // every retryable assignment fails
  opts.max_dropout_retries = 3;
  opts.dropout_timeout_seconds = 2.0;
  auto outcome = w.engine
                     ->Run(protocol, *w.querier, 1,
                           "SELECT grp, COUNT(*) FROM T GROUP BY grp", opts)
                     .ValueOrDie();
  const auto& agg = outcome.metrics.accountant.phase(sim::Phase::kAggregation);
  EXPECT_EQ(agg.dropouts, agg.partitions * opts.max_dropout_retries);
  // Each partition waited out 3 timeouts before succeeding.
  EXPECT_GE(outcome.metrics.times.aggregation_seconds,
            3 * opts.dropout_timeout_seconds);
  EXPECT_FALSE(outcome.result.rows.empty());
}


TEST(RunnerTest, SameSeedSameOutcome) {
  // Whole-run determinism: identical seeds give byte-identical metrics and
  // results (the property that makes every bench and test reproducible).
  auto run_once = [] {
    PlumbingWorld w;
    protocol::SAggProtocol protocol;
    protocol::RunOptions opts;
    opts.seed = 123;
    opts.dropout_rate = 0.1;
    return w.engine
        ->Run(protocol, *w.querier, 1,
              "SELECT grp, SUM(val) FROM T GROUP BY grp", opts)
        .ValueOrDie();
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.metrics.LoadBytes(), b.metrics.LoadBytes());
  EXPECT_EQ(a.metrics.Ptds(), b.metrics.Ptds());
  EXPECT_DOUBLE_EQ(a.metrics.Tq(), b.metrics.Tq());
  ASSERT_EQ(a.result.rows.size(), b.result.rows.size());
  EXPECT_TRUE(a.result.SameRows(b.result));
}

TEST(RunnerTest, EmptyFleetRejected) {
  // The engine refuses to even start on an empty fleet.
  auto engine = Engine::Create(std::make_unique<protocol::Fleet>());
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
}


TEST(FactoryTest, NamesAndKinds) {
  using protocol::ProtocolKind;
  EXPECT_EQ(protocol::ProtocolKindFromName("s_agg").ValueOrDie(),
            ProtocolKind::kSAgg);
  EXPECT_EQ(protocol::ProtocolKindFromName("ED_HIST").ValueOrDie(),
            ProtocolKind::kEdHist);
  EXPECT_EQ(protocol::ProtocolKindFromName("Basic").ValueOrDie(),
            ProtocolKind::kBasicSfw);
  EXPECT_FALSE(protocol::ProtocolKindFromName("nope").ok());
}

TEST(FactoryTest, InputRequirementsEnforced) {
  using protocol::ProtocolKind;
  EXPECT_TRUE(protocol::MakeProtocol(ProtocolKind::kSAgg).ok());
  EXPECT_TRUE(protocol::MakeProtocol(ProtocolKind::kBasicSfw).ok());
  EXPECT_FALSE(protocol::MakeProtocol(ProtocolKind::kEdHist).ok());
  EXPECT_FALSE(protocol::MakeProtocol(ProtocolKind::kRnfNoise).ok());

  protocol::ProtocolInputs inputs;
  inputs.distribution[storage::Tuple({storage::Value::String("G00")})] = 3;
  inputs.distribution[storage::Tuple({storage::Value::String("G01")})] = 5;
  // A distribution is sufficient for both ED_Hist and Noise (domain derived).
  EXPECT_TRUE(protocol::MakeProtocol(ProtocolKind::kEdHist, inputs).ok());
  EXPECT_TRUE(protocol::MakeProtocol(ProtocolKind::kCNoise, inputs).ok());
}

TEST(FactoryTest, DiscoverInputsEndToEnd) {
  PlumbingWorld w;
  const char* sql = "SELECT grp, AVG(val) FROM T GROUP BY grp";
  auto inputs = w.engine->DiscoverInputs(*w.querier, 5, sql).ValueOrDie();
  EXPECT_FALSE(inputs.distribution.empty());
  ASSERT_NE(inputs.group_domain, nullptr);
  EXPECT_EQ(inputs.group_domain->size(), inputs.distribution.size());

  auto protocol =
      protocol::MakeProtocol(protocol::ProtocolKind::kEdHist, inputs)
          .ValueOrDie();
  auto outcome = w.engine->Run(*protocol, *w.querier, 6, sql).ValueOrDie();
  auto expected = protocol::ExecuteReference(*w.fleet, sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected));
}

TEST(DiscoveryTest, RequiresGroupBy) {
  PlumbingWorld w;
  auto result = protocol::DiscoverDistribution(
      w.fleet, *w.querier, 1, "SELECT grp FROM T", sim::DeviceModel(), {});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(NoiseProtocolTest, MissingDomainIsFailedPrecondition) {
  PlumbingWorld w;
  protocol::NoiseProtocol protocol(false, nullptr);
  auto outcome = w.engine->Run(protocol, *w.querier, 1,
                               "SELECT grp, COUNT(*) FROM T GROUP BY grp");
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsFailedPrecondition());
}

TEST(EdHistProtocolTest, MissingHistogramIsFailedPrecondition) {
  PlumbingWorld w;
  protocol::EdHistProtocol protocol(nullptr);
  auto outcome = w.engine->Run(protocol, *w.querier, 1,
                               "SELECT grp, COUNT(*) FROM T GROUP BY grp");
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsFailedPrecondition());
}


TEST(ProvisioningIntegrationTest, ProvisionedFleetAnswersQueries) {
  // Full footnote-7 flow: every device unwraps the deployment keys from its
  // burn-time key; the querier uses the operator's copy. Everything must
  // interoperate end to end.
  Rng rng(31);
  auto provisioner =
      crypto::KeyProvisioner::Create(rng.NextBytes(16)).ValueOrDie();
  provisioner.Rotate();  // deployments rarely run on epoch 0
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x61));

  auto fleet = std::make_unique<protocol::Fleet>();
  workload::GenericOptions gopts;
  gopts.num_groups = 3;
  Rng data_rng(32);
  for (uint64_t i = 0; i < 40; ++i) {
    Bytes burn_key = rng.NextBytes(16);  // unique per device
    Bytes wrapped = provisioner.WrapFor(burn_key, &rng);
    auto bundle =
        crypto::KeyProvisioner::Unwrap(burn_key, wrapped).ValueOrDie();
    ASSERT_EQ(bundle.epoch, 1u);
    auto server = std::make_unique<tds::TrustedDataServer>(
        i, bundle.keys, authority, tds::AccessPolicy::AllowAll());
    ASSERT_TRUE(
        workload::PopulateGenericDb(&server->db(), i, gopts, &data_rng).ok());
    fleet->Add(std::move(server));
  }

  protocol::Querier querier("op", authority->Issue("op"),
                            provisioner.CurrentKeys().ValueOrDie());
  protocol::SAggProtocol s_agg;
  const char* sql = "SELECT grp, COUNT(*), AVG(val) FROM T GROUP BY grp";
  auto engine = Engine::Create(std::move(fleet)).ValueOrDie();
  auto outcome = engine->Run(s_agg, querier, 1, sql).ValueOrDie();
  auto expected = protocol::ExecuteReference(engine->fleet(), sql).ValueOrDie();
  EXPECT_TRUE(outcome.result.SameRows(expected));
}

TEST(ProvisioningIntegrationTest, StaleEpochDeviceCannotParticipate) {
  // A device still on epoch 0 cannot read an epoch-1 query post — its
  // collection step fails to decrypt rather than leaking anything.
  Rng rng(33);
  auto provisioner =
      crypto::KeyProvisioner::Create(rng.NextBytes(16)).ValueOrDie();
  Bytes burn_key = rng.NextBytes(16);
  Bytes old_wrap = provisioner.WrapFor(burn_key, &rng);  // epoch 0
  provisioner.Rotate();

  auto stale =
      crypto::KeyProvisioner::Unwrap(burn_key, old_wrap).ValueOrDie();
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x62));
  tds::TrustedDataServer server(0, stale.keys, authority,
                                tds::AccessPolicy::AllowAll());
  workload::GenericOptions gopts;
  Rng data_rng(34);
  ASSERT_TRUE(
      workload::PopulateGenericDb(&server.db(), 0, gopts, &data_rng).ok());

  protocol::Querier querier("op", authority->Issue("op"),
                            provisioner.CurrentKeys().ValueOrDie());
  auto post = querier.MakePost(1, "SELECT grp FROM T", &rng).ValueOrDie();
  tds::CollectionConfig config;
  EXPECT_FALSE(server.ProcessCollection(post, config, &rng).ok());
}

}  // namespace
}  // namespace tcells
