// Fuzz harness for the transport layer's untrusted decode surfaces.
//
// Input: one selector byte, then the payload for the selected surface:
//   0 -> TryExtractFrame over the body as a hostile socket receive buffer
//   1 -> SsiNode::Handle on the body as one request frame payload
//   2 -> DecodeReply on the body as one reply envelope
//   3 -> DecodeBatchFrame on the body as one multi-call batch envelope
// Corpus files carry the selector as their first byte (see make_corpus.cc).
#include "common/bytes.h"
#include "fuzz_util.h"
#include "net/frame.h"
#include "net/ssi_node.h"
#include "net/ssi_wire.h"

using tcells::Bytes;
using tcells::Result;
using tcells::Status;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t selector = data[0] % 4;
  Bytes input(data + 1, data + size);
  switch (selector) {
    case 0: {
      // Drain the buffer the way the socket loops do. Every extracted frame
      // must respect the payload cap (the length prefix is checked before
      // any allocation), the buffer must shrink on every success so the loop
      // terminates, and a hostile prefix must surface as Corruption — the
      // signal transports use to drop the connection.
      Bytes buf = input;
      Bytes frame;
      Status error;
      while (true) {
        size_t before = buf.size();
        if (!tcells::net::TryExtractFrame(&buf, &frame, &error)) break;
        FUZZ_ASSERT(frame.size() <= tcells::net::kMaxFramePayload);
        FUZZ_ASSERT(buf.size() < before);
      }
      FUZZ_ASSERT(error.ok() || error.IsCorruption());
      break;
    }
    case 1: {
      // A long-lived node absorbing hostile request frames, like the TCP
      // server's handler does. Decode failures must be Status, never a
      // crash, and the node never fabricates transport-level codes — those
      // belong to the channel alone.
      static tcells::net::SsiNode& node = *new tcells::net::SsiNode();
      Result<Bytes> reply = node.Handle(input);
      if (reply.ok()) {
        if (tcells::net::IsBatchFrame(input)) {
          // A batch request yields a batch reply answering every inner call
          // with its correlation ID, in order.
          FUZZ_ASSERT(tcells::net::IsBatchFrame(*reply));
          Result<std::vector<tcells::net::BatchCall>> calls =
              tcells::net::DecodeBatchFrame(input);
          Result<std::vector<tcells::net::BatchCall>> replies =
              tcells::net::DecodeBatchFrame(*reply);
          FUZZ_ASSERT(calls.ok() && replies.ok());
          FUZZ_ASSERT(replies->size() == calls->size());
          for (size_t i = 0; i < calls->size(); ++i) {
            FUZZ_ASSERT((*replies)[i].correlation_id ==
                        (*calls)[i].correlation_id);
          }
        } else {
          // Whatever the node emits must parse as a reply envelope.
          Bytes body = *reply;
          Result<Bytes> unwrapped = tcells::net::DecodeReply(body);
          FUZZ_ASSERT(unwrapped.ok() || !unwrapped.status().IsCorruption());
        }
      } else {
        FUZZ_ASSERT(!reply.status().IsUnavailable());
        FUZZ_ASSERT(!reply.status().IsDeadlineExceeded());
      }
      break;
    }
    case 2: {
      // Client-side reply envelope parse. An accepted OK envelope is the
      // identity wrapping of its body, so re-encoding must reproduce the
      // input bit-for-bit.
      Result<Bytes> body = tcells::net::DecodeReply(input);
      if (body.ok()) {
        FUZZ_ASSERT(tcells::net::EncodeReplyOk(*body) == input);
      }
      break;
    }
    default: {
      // Batch envelope parse. The count is validated against the remaining
      // length before any allocation, so a hostile count can never reserve
      // gigabytes; an accepted batch re-encodes to the input bit-for-bit
      // (the codec has no redundant representations).
      Result<std::vector<tcells::net::BatchCall>> calls =
          tcells::net::DecodeBatchFrame(input);
      if (calls.ok()) {
        FUZZ_ASSERT(!calls->empty());
        FUZZ_ASSERT(calls->size() <= tcells::net::kMaxCallsPerBatch);
        FUZZ_ASSERT(tcells::net::EncodeBatchFrame(*calls) == input);
      } else {
        FUZZ_ASSERT(calls.status().IsCorruption());
      }
      break;
    }
  }
  return 0;
}
