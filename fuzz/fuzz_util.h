// Shared helpers for the fuzz harnesses.
#ifndef TCELLS_FUZZ_FUZZ_UTIL_H_
#define TCELLS_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

// Invariant check inside a harness: unlike assert(), active in every build
// type, and aborts so both libFuzzer and the standalone driver flag the input
// as a crash.
#define FUZZ_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Every harness implements the libFuzzer entry point; the standalone driver
// links against the same symbol.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#endif  // TCELLS_FUZZ_FUZZ_UTIL_H_
