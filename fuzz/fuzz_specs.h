// Canned aggregation queries shared by the storage fuzz harness and the
// corpus generator. GroupedAggregation encodings are only decodable against
// the AggSpec list of the query that produced them, so both sides must agree
// on the spec sets: make_corpus tags each captured body with the index of the
// query it came from, and fuzz_storage decodes with the matching specs.
#ifndef TCELLS_FUZZ_FUZZ_SPECS_H_
#define TCELLS_FUZZ_FUZZ_SPECS_H_

#include <string>
#include <vector>

#include "sql/aggregates.h"
#include "sql/analyzer.h"
#include "storage/schema.h"
#include "workload/generic.h"

namespace tcells::fuzz {

/// Aggregation queries over the generic table T(gid, grp, val, cat),
/// covering algebraic aggregates, the holistic ones (MEDIAN / DISTINCT,
/// which serialize value multisets), and the no-GROUP-BY global case.
inline std::vector<std::string> SpecQueries() {
  return {
      "SELECT grp, COUNT(*) FROM T GROUP BY grp",
      "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), MAX(val) FROM T "
      "GROUP BY grp",
      "SELECT grp, MEDIAN(val), COUNT(DISTINCT cat), VARIANCE(val), "
      "STDDEV(val) FROM T GROUP BY grp",
      "SELECT SUM(val), COUNT(*) FROM T",
  };
}

/// AggSpec list of SpecQueries()[i], bound against the generic catalog.
/// Dies if the canned queries stop analyzing — that is a build-time bug,
/// not an input-dependent condition.
inline std::vector<std::vector<sql::AggSpec>> SpecSets() {
  storage::Catalog catalog;
  Status s = catalog.AddTable("T", workload::GenericSchema());
  if (!s.ok()) std::abort();
  std::vector<std::vector<sql::AggSpec>> sets;
  for (const std::string& query : SpecQueries()) {
    Result<sql::AnalyzedQuery> analyzed = sql::AnalyzeSql(query, catalog);
    if (!analyzed.ok()) std::abort();
    sets.push_back(analyzed->agg_specs);
  }
  return sets;
}

}  // namespace tcells::fuzz

#endif  // TCELLS_FUZZ_FUZZ_SPECS_H_
