// Fuzz harness for the SSI message codecs.
//
// Input: one selector byte, then the payload for the selected codec:
//   0 -> QueryPost::Decode
//   1 -> Partition::Decode (accepted partitions must re-encode bit-identical)
//   2 -> a stream of EncryptedItem::DecodeFrom reads
//   3 -> DecodePayloadView / DecodePayload (view and copy must agree)
// Corpus files carry the selector as their first byte (see make_corpus.cc).
#include <cstring>

#include "common/bytes.h"
#include "fuzz_util.h"
#include "ssi/messages.h"

using tcells::Bytes;
using tcells::ByteReader;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t selector = data[0] % 4;
  Bytes input(data + 1, data + size);
  switch (selector) {
    case 0: {
      (void)tcells::ssi::QueryPost::Decode(input);
      break;
    }
    case 1: {
      tcells::Result<tcells::ssi::Partition> partition =
          tcells::ssi::Partition::Decode(input);
      if (partition.ok()) {
        // The wire format is canonical: decode rejects trailing bytes and
        // every field is written one way, so re-encoding an accepted
        // partition must reproduce the input exactly.
        FUZZ_ASSERT(partition->Encode() == input);
      }
      break;
    }
    case 2: {
      ByteReader reader(input);
      while (!reader.AtEnd()) {
        tcells::Result<tcells::ssi::EncryptedItem> item =
            tcells::ssi::EncryptedItem::DecodeFrom(&reader);
        if (!item.ok()) break;
      }
      break;
    }
    default: {
      tcells::Result<tcells::ssi::PayloadView> view =
          tcells::ssi::DecodePayloadView(input.data(), input.size());
      tcells::Result<tcells::ssi::DecodedPayload> copy =
          tcells::ssi::DecodePayload(input);
      FUZZ_ASSERT(view.ok() == copy.ok());
      if (view.ok()) {
        FUZZ_ASSERT(view->kind == copy->kind);
        FUZZ_ASSERT(view->body_size == copy->body.size());
        FUZZ_ASSERT(view->body_size == 0 ||
                    std::memcmp(view->body, copy->body.data(),
                                view->body_size) == 0);
      }
      break;
    }
  }
  return 0;
}
