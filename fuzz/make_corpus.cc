// Regenerates the committed seed corpus under fuzz/corpus/ from one e2e run
// of each of the 5 protocols over a small generic fleet.
//
// Every stage of a real run is captured in the exact shape the matching
// harness consumes (selector byte + encoding, see the fuzz_*.cc headers):
// query posts, partitions, item streams and decrypted payloads for fuzz_ssi;
// k1/k2 ciphertext blobs for fuzz_crypto; collection/result tuples,
// GroupedAggregation bodies (tagged with their fuzz_specs.h query index) and
// histogram encodings — including the forged frames the Decode hardening
// rejects — for fuzz_storage; frame streams, request frames and reply
// envelopes for fuzz_net; and the query texts plus edge-case statements for
// fuzz_sql.
//
// Everything is deterministic — fixed seeds, content-hash file names — so
// re-running the tool over an unchanged protocol stack reproduces the corpus
// bit-for-bit, and wire-format changes show up as a corpus diff.
//
// Usage: make_corpus [OUT_DIR]   (default: fuzz/corpus)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/hex.h"
#include "crypto/keystore.h"
#include "crypto/sha256.h"
#include "fuzz_specs.h"
#include "net/frame.h"
#include "net/loopback.h"
#include "net/ssi_client.h"
#include "net/ssi_node.h"
#include "net/ssi_wire.h"
#include "tds/histogram.h"
#include "protocol/factory.h"
#include "protocol/protocols.h"
#include "sim/device_model.h"
#include "ssi/ssi.h"
#include "tds/access_control.h"
#include "workload/generic.h"

namespace tcells::fuzz {
namespace {

using protocol::ProtocolKind;
using ssi::EncryptedItem;
using ssi::Partition;
using storage::Tuple;
using storage::Value;

// Must match the keystore seed in fuzz_crypto.cc so the captured blobs are
// valid ciphertexts under the harness's keys.
constexpr uint64_t kKeySeed = 7;

class CorpusWriter {
 public:
  explicit CorpusWriter(std::filesystem::path root) : root_(std::move(root)) {}

  /// Writes `body` (prefixed with `selector` if >= 0) under
  /// `<root>/<harness>/<sha256 prefix>`. Content-addressed names make the
  /// corpus order-independent and deduplicate identical captures.
  void Add(const std::string& harness, int selector, const Bytes& body) {
    Bytes content;
    content.reserve(body.size() + 1);
    if (selector >= 0) content.push_back(static_cast<uint8_t>(selector));
    for (uint8_t b : body) content.push_back(b);
    auto digest = crypto::Sha256::Hash(content);
    std::string name = ToHex(digest.data(), 8);
    std::filesystem::path dir = root_ / harness;
    std::filesystem::create_directories(dir);
    std::ofstream out(dir / name, std::ios::binary);
    out.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
    ++written_;
  }

  void AddText(const std::string& harness, const std::string& text) {
    Add(harness, -1, Bytes(text.begin(), text.end()));
  }

  size_t written() const { return written_; }

 private:
  std::filesystem::path root_;
  size_t written_ = 0;
};

#define CHECK_OK(expr)                                                \
  do {                                                                \
    auto _status_like = (expr);                                       \
    if (!_status_like.ok()) {                                         \
      std::fprintf(stderr, "make_corpus: %s failed: %s\n", #expr,     \
                   _status_like.status().ToString().c_str());         \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

// Payloads a TDS decrypts with k2 during aggregation/filtering; payloads the
// querier decrypts with k1 at the end.
void CaptureItems(CorpusWriter* w, const crypto::KeyStore& keys,
                  const std::vector<EncryptedItem>& items, bool under_k1,
                  int storage_selector, size_t max_items) {
  size_t captured = 0;
  for (const EncryptedItem& item : items) {
    if (captured++ >= max_items) break;
    w->Add("crypto", under_k1 ? 2 : 0, item.blob);
    if (item.routing_tag) w->Add("crypto", 1, *item.routing_tag);
    const crypto::NDetEnc& enc = under_k1 ? keys.k1_ndet() : keys.k2_ndet();
    Result<Bytes> plain = enc.Decrypt(item.blob);
    if (!plain.ok()) continue;  // Det-tagged histogram blobs etc.
    w->Add("ssi", 3, *plain);
    Result<ssi::PayloadView> view =
        ssi::DecodePayloadView(plain->data(), plain->size());
    if (!view.ok()) continue;
    Bytes body(view->body, view->body + view->body_size);
    if (view->kind == ssi::PayloadKind::kPartialAgg) {
      if (storage_selector > 0) w->Add("storage", storage_selector, body);
    } else {
      w->Add("storage", 0, body);
    }
  }
}

int Run(const std::filesystem::path& out_dir) {
  CorpusWriter writer(out_dir);

  workload::GenericOptions gopts;
  gopts.num_tds = 6;
  gopts.num_groups = 3;
  gopts.rows_per_tds = 2;
  gopts.seed = kKeySeed;
  auto keys = crypto::KeyStore::CreateForTest(kKeySeed);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x55));
  auto fleet = workload::BuildGenericFleet(gopts, keys, authority,
                                           tds::AccessPolicy::AllowAll())
                   .ValueOrDie();
  protocol::Querier querier("fz", authority->Issue("fz"), keys);
  const auto& catalog = fleet->at(0)->db().catalog();

  // Prior knowledge for the Noise/ED_Hist protocols, as in the test suites.
  auto domain = std::make_shared<std::vector<Tuple>>();
  std::map<Tuple, uint64_t> freq;
  for (size_t g = 0; g < gopts.num_groups; ++g) {
    domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
  }
  auto count_q =
      sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp", catalog)
          .ValueOrDie();
  for (size_t i = 0; i < fleet->size(); ++i) {
    auto rows =
        sql::CollectionTuples(fleet->at(i)->db(), count_q).ValueOrDie();
    for (const auto& r : rows) freq[Tuple({r.at(0)})] += 1;
  }

  const std::vector<std::string> queries = SpecQueries();
  struct Case {
    ProtocolKind kind;
    /// Index into SpecQueries(), or -1 for the plain SFW query.
    int query_idx;
  };
  const std::vector<Case> cases = {
      {ProtocolKind::kBasicSfw, -1}, {ProtocolKind::kSAgg, 1},
      {ProtocolKind::kRnfNoise, 2},  {ProtocolKind::kCNoise, 0},
      {ProtocolKind::kEdHist, 1},
  };

  uint64_t query_id = 100;
  for (const Case& c : cases) {
    const std::string sql =
        c.query_idx < 0 ? "SELECT grp, val FROM T WHERE cat < 5"
                        : queries[static_cast<size_t>(c.query_idx)];
    writer.AddText("sql", sql);

    std::unique_ptr<protocol::Protocol> proto;
    switch (c.kind) {
      case ProtocolKind::kBasicSfw:
        proto = std::make_unique<protocol::BasicSfwProtocol>();
        break;
      case ProtocolKind::kSAgg:
        proto = std::make_unique<protocol::SAggProtocol>();
        break;
      case ProtocolKind::kRnfNoise:
        proto = std::make_unique<protocol::NoiseProtocol>(false, domain);
        break;
      case ProtocolKind::kCNoise:
        proto = std::make_unique<protocol::NoiseProtocol>(true, domain);
        break;
      case ProtocolKind::kEdHist:
        proto = protocol::EdHistProtocol::FromDistribution(freq, 2);
        break;
    }

    auto analyzed = sql::AnalyzeSql(sql, catalog);
    CHECK_OK(analyzed);

    protocol::RunOptions opts;
    opts.compute_availability = 1.0;
    opts.expected_groups = gopts.num_groups;
    opts.seed = 1000 + query_id;
    opts.num_threads = 1;

    net::SsiNode node;
    net::LoopbackTransport transport(node.handler());
    net::SsiClient client(&transport);
    protocol::RunContext ctx(fleet.get(), &client, query_id,
                             sim::DeviceModel(), opts);

    auto post = querier.MakePost(query_id, sql, &ctx.rng());
    CHECK_OK(post);
    writer.Add("ssi", 0, post->Encode());

    auto config = proto->MakeCollectionConfig(ctx, *analyzed);
    CHECK_OK(config);

    Rng collect_rng(opts.seed ^ 0xc011ec7);
    std::vector<EncryptedItem> items;
    for (size_t i = 0; i < fleet->size(); ++i) {
      auto contribution =
          fleet->at(i)->ProcessCollection(*post, *config, &collect_rng);
      CHECK_OK(contribution);
      items.insert(items.end(), contribution->begin(), contribution->end());
    }

    Partition collected;
    collected.items = items;
    writer.Add("ssi", 1, collected.Encode());
    // A short item stream for the streaming decoder mode.
    Bytes stream;
    for (size_t i = 0; i < items.size() && i < 3; ++i) {
      items[i].EncodeTo(&stream);
    }
    writer.Add("ssi", 2, stream);
    CaptureItems(&writer, *keys, items, /*under_k1=*/false,
                 /*storage_selector=*/-1, /*max_items=*/4);

    auto aggregated =
        proto->RunAggregation(ctx, *analyzed, *config, std::move(items));
    CHECK_OK(aggregated);
    CaptureItems(&writer, *keys, *aggregated, /*under_k1=*/false,
                 1 + c.query_idx, /*max_items=*/4);

    Partition covering;
    covering.items = *aggregated;
    Rng filter_rng(opts.seed ^ 0xf117e4);
    auto result_items =
        fleet->at(0)->ProcessFiltering(*analyzed, covering, &filter_rng);
    CHECK_OK(result_items);
    CaptureItems(&writer, *keys, *result_items, /*under_k1=*/true,
                 /*storage_selector=*/-1, /*max_items=*/4);

    ++query_id;
  }

  // SQL-only seeds: the WHERE-feature set exercised by the property suite
  // plus statements that pin lexer/parser edge cases.
  const std::vector<std::string> extra_sql = {
      "SELECT grp, COUNT(*) FROM T WHERE cat < 5 GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE cat BETWEEN 2 AND 7 GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE cat IN (0, 3, 9) GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE cat NOT IN (1, 2) GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE grp LIKE 'G0_' GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE grp NOT LIKE '%2' GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE grp IS NOT NULL AND val > 10.0 "
      "GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE NOT (cat = 0 OR cat = 1) GROUP BY "
      "grp",
      "SELECT grp, COUNT(*) FROM T WHERE val / 2 + 1 > cat * 3 GROUP BY grp",
      "SELECT grp, COUNT(*) FROM T WHERE cat % 3 = 0 OR FALSE GROUP BY grp",
      "SELECT DISTINCT grp FROM T ORDER BY grp DESC LIMIT 2",
      "SELECT t.grp AS g, -val FROM T t WHERE t.grp = 'it''s' SIZE 10",
      "SELECT ((((val))))+1.5e2 FROM T HAVING COUNT(*) > 0",
  };
  for (const std::string& s : extra_sql) writer.AddText("sql", s);

  // ---- fuzz_net seeds: frame streams, request frames, reply envelopes ----
  {
    ssi::EncryptedItem tagged;
    tagged.blob = Bytes(12, 0xA1);
    tagged.routing_tag = Bytes(4, 0x5C);
    ssi::EncryptedItem plain;
    plain.blob = Bytes(8, 0xB2);
    Partition partition;
    partition.items = {tagged, plain};
    Bytes partition_bytes = partition.Encode();

    // Selector 0: receive-buffer streams. Two complete frames plus a
    // truncated third (needs-more-bytes path), and a hostile length prefix
    // (the pre-allocation rejection path).
    Bytes stream;
    net::AppendFrame(&stream, partition_bytes);
    net::AppendFrame(&stream, Bytes());
    Bytes truncated;
    net::AppendFrame(&truncated, partition_bytes);
    truncated.resize(truncated.size() - 3);
    for (uint8_t b : truncated) stream.push_back(b);
    writer.Add("net", 0, stream);
    writer.Add("net", 0, Bytes{0xff, 0xff, 0xff, 0xff, 0x00});

    // Selector 1: request frames in the exact shapes SsiClient emits (u8
    // message type + fields), plus an unknown-type frame.
    auto request = [&](net::MsgType type, const Bytes& body) {
      Bytes req;
      ByteWriter w(&req);
      w.PutU8(static_cast<uint8_t>(type));
      w.PutRaw(body.data(), body.size());
      writer.Add("net", 1, req);
    };
    Rng post_rng(kKeySeed);
    auto net_post = querier.MakePost(900, "SELECT grp, val FROM T", &post_rng);
    CHECK_OK(net_post);
    request(net::MsgType::kPostGlobal, net_post->Encode());
    Bytes stage_body;
    {
      ByteWriter w(&stage_body);
      w.PutU64(900);
      w.PutU64(0);
      w.PutRaw(partition_bytes.data(), partition_bytes.size());
    }
    request(net::MsgType::kStagePartition, stage_body);
    Bytes qid_body;
    ByteWriter(&qid_body).PutU64(900);
    request(net::MsgType::kNumAcknowledged, qid_body);
    request(net::MsgType::kRetire, qid_body);
    writer.Add("net", 1, Bytes{0xEE, 0x01, 0x02, 0x03});

    // Selector 2: reply envelopes — OK wrapping a partition, an encoded
    // application error, and a garbage status code.
    writer.Add("net", 2, net::EncodeReplyOk(partition_bytes));
    writer.Add("net", 2,
               net::EncodeReplyError(Status::NotFound("no such query")));
    writer.Add("net", 2, Bytes{99, 0x41, 0x42});

    // Selector 3: multi-call batch envelopes (and the same frames as
    // selector-1 node input, since SsiNode::Handle dispatches on the batch
    // magic). A real two-call batch in the exact shape the batched client
    // emits, a single-call batch, and a hostile call count that must be
    // rejected before any allocation.
    Bytes ack_body;
    {
      ByteWriter w(&ack_body);
      w.PutU64(3);    // tds_id
      w.PutU64(900);  // query_id
    }
    Bytes ack_frame;
    {
      ByteWriter w(&ack_frame);
      w.PutU8(static_cast<uint8_t>(net::MsgType::kAcknowledge));
      w.PutRaw(ack_body.data(), ack_body.size());
    }
    Bytes count_frame;
    {
      ByteWriter w(&count_frame);
      w.PutU8(static_cast<uint8_t>(net::MsgType::kNumAcknowledged));
      w.PutRaw(qid_body.data(), qid_body.size());
    }
    std::vector<net::BatchCall> batch;
    batch.push_back({/*correlation_id=*/41, ack_frame});
    batch.push_back({/*correlation_id=*/42, count_frame});
    Bytes batch_frame = net::EncodeBatchFrame(batch);
    writer.Add("net", 3, batch_frame);
    writer.Add("net", 1, batch_frame);
    writer.Add("net", 3,
               net::EncodeBatchFrame({{/*correlation_id=*/1, count_frame}}));
    // Header claiming 2^32-1 calls with no room for even one.
    Bytes hostile;
    {
      ByteWriter w(&hostile);
      w.PutU8(net::kBatchMagic);
      w.PutU8(net::kBatchVersion);
      w.PutU32(0xffffffff);
    }
    writer.Add("net", 3, hostile);
  }

  // ---- Histogram seeds (fuzz_storage selector 0xFF) ----
  {
    Bytes valid;
    tds::EquiDepthHistogram::Build(freq, 2).EncodeTo(&valid);
    writer.Add("storage", 0xFF, valid);

    // The forged frame behind the Decode hardening: claims zero distinct
    // keys while carrying two buckets (num_keys_ < upper_bounds_.size()),
    // which used to slip through and corrupt CollisionFactor downstream.
    Bytes forged_keys;
    {
      ByteWriter w(&forged_keys);
      w.PutU64(0);
      w.PutU32(2);
      (*domain)[0].EncodeTo(&forged_keys);
      (*domain)[1].EncodeTo(&forged_keys);
    }
    writer.Add("storage", 0xFF, forged_keys);

    // Unsorted bounds: breaks BucketOf's lower_bound contract.
    Bytes forged_order;
    {
      ByteWriter w(&forged_order);
      w.PutU64(10);
      w.PutU32(2);
      (*domain)[1].EncodeTo(&forged_order);
      (*domain)[0].EncodeTo(&forged_order);
    }
    writer.Add("storage", 0xFF, forged_order);
  }

  std::printf("make_corpus: wrote %zu files under %s\n", writer.written(),
              out_dir.string().c_str());
  return 0;
}

}  // namespace
}  // namespace tcells::fuzz

int main(int argc, char** argv) {
  std::filesystem::path out = argc > 1 ? argv[1] : "fuzz/corpus";
  return tcells::fuzz::Run(out);
}
