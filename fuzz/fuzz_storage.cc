// Fuzz harness for storage::Tuple and sql::GroupedAggregation span decoding.
//
// Input: one selector byte, then the encoded body.
//   0            -> Tuple::Decode (accepted tuples must re-encode identical)
//   1 + k        -> GroupedAggregation::Decode against canned spec set k
//                   (see fuzz_specs.h; make_corpus tags bodies the same way).
//   0xFF         -> EquiDepthHistogram::Decode (a dedicated selector value so
//                   the legacy modulo mapping of the committed corpus is
//                   untouched). Accepted histograms must re-encode identical
//                   and keep BucketOf inside the bucket range — the
//                   lower_bound contract a forged encoding used to break.
// Accepted aggregations additionally run Finalize and MemoryFootprint so the
// post-decode arithmetic paths see hostile states too.
#include <algorithm>
#include <vector>

#include "fuzz_specs.h"
#include "fuzz_util.h"
#include "sql/aggregates.h"
#include "storage/tuple.h"
#include "storage/value.h"
#include "tds/histogram.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::vector<std::vector<tcells::sql::AggSpec>>& spec_sets =
      *new std::vector<std::vector<tcells::sql::AggSpec>>(
          tcells::fuzz::SpecSets());
  if (size == 0) return 0;
  if (data[0] == 0xFF) {
    tcells::Bytes input(data + 1, data + size);
    tcells::Result<tcells::tds::EquiDepthHistogram> hist =
        tcells::tds::EquiDepthHistogram::Decode(input);
    if (hist.ok()) {
      tcells::Bytes re;
      hist->EncodeTo(&re);
      FUZZ_ASSERT(re == input);
      tcells::storage::Tuple probe({tcells::storage::Value::Int64(0)});
      FUZZ_ASSERT(hist->BucketOf(probe) <
                  std::max<size_t>(1, hist->num_buckets()));
      (void)hist->CollisionFactor();
    }
    return 0;
  }
  const uint8_t selector = data[0] % (1 + spec_sets.size());
  const uint8_t* body = data + 1;
  const size_t body_size = size - 1;
  if (selector == 0) {
    tcells::Result<tcells::storage::Tuple> tuple =
        tcells::storage::Tuple::Decode(body, body_size);
    if (tuple.ok()) {
      FUZZ_ASSERT(tuple->Encode() ==
                  tcells::Bytes(body, body + body_size));
    }
    return 0;
  }
  const auto& specs = spec_sets[selector - 1];
  tcells::Result<tcells::sql::GroupedAggregation> agg =
      tcells::sql::GroupedAggregation::Decode(specs, body, body_size);
  if (!agg.ok()) return 0;
  (void)agg->MemoryFootprint();
  for (const auto& [key, states] : agg->groups()) {
    (void)key.ToString();
    for (const auto& state : states) {
      // Finalize may fail on adversarial states (e.g. overflow markers); it
      // must do so via Status, never by crashing.
      (void)state.Finalize();
    }
  }
  return 0;
}
