// Fuzz harness for the Det_Enc / nDet_Enc open paths fed attacker-controlled
// ciphertexts (the bytes a TDS or querier receives from a compromised SSI).
//
// Input: one selector byte, then the ciphertext (or plaintext for mode 3):
//   0 -> k2 nDet_Enc Decrypt (TDS opening collection items)
//   1 -> k2 Det_Enc Decrypt (tagged items in the Noise protocols)
//   2 -> k1 nDet_Enc Decrypt (querier opening result rows)
//   3 -> treat the body as plaintext: encrypt/decrypt round-trip must
//        succeed bit-exactly, and a one-byte tamper must be rejected.
// Keys are the CreateForTest keys the corpus run used, so corpus blobs are
// valid ciphertexts and mutants are close misses — the interesting region
// for MAC/SIV verification and bounds checks.
#include "crypto/keystore.h"
#include "fuzz_util.h"
#include "ssi/messages.h"

using tcells::Bytes;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::shared_ptr<const tcells::crypto::KeyStore>& keys =
      *new std::shared_ptr<const tcells::crypto::KeyStore>(
          tcells::crypto::KeyStore::CreateForTest(7));
  if (size == 0) return 0;
  const uint8_t selector = data[0] % 4;
  Bytes input(data + 1, data + size);
  switch (selector) {
    case 0:
    case 2: {
      const tcells::crypto::NDetEnc& enc =
          selector == 0 ? keys->k2_ndet() : keys->k1_ndet();
      tcells::Result<Bytes> plain = enc.Decrypt(input);
      if (plain.ok()) {
        // A mutant passing the MAC is effectively a forgery; the only inputs
        // that may decrypt are unmutated corpus blobs, whose payloads must
        // still decode. Either way the payload decoder sees the bytes next.
        (void)tcells::ssi::DecodePayloadView(plain->data(), plain->size());
      }
      break;
    }
    case 1: {
      tcells::Result<Bytes> plain = keys->k2_det().Decrypt(input);
      if (plain.ok()) {
        (void)tcells::ssi::DecodePayloadView(plain->data(), plain->size());
      }
      break;
    }
    default: {
      // Self-check: sealing attacker-chosen plaintext and opening it must be
      // the identity, and flipping any single byte must be caught.
      tcells::Rng rng(0x5eedu ^ size);
      Bytes ndet = keys->k2_ndet().Encrypt(input, &rng);
      tcells::Result<Bytes> ndet_open = keys->k2_ndet().Decrypt(ndet);
      FUZZ_ASSERT(ndet_open.ok() && *ndet_open == input);
      ndet[rng.NextBelow(ndet.size())] ^= 0x01;
      FUZZ_ASSERT(!keys->k2_ndet().Decrypt(ndet).ok());

      Bytes det = keys->k2_det().Encrypt(input);
      tcells::Result<Bytes> det_open = keys->k2_det().Decrypt(det);
      FUZZ_ASSERT(det_open.ok() && *det_open == input);
      det[rng.NextBelow(det.size())] ^= 0x01;
      FUZZ_ASSERT(!keys->k2_det().Decrypt(det).ok());
      break;
    }
  }
  return 0;
}
