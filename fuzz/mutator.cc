#include "mutator.h"

#include <algorithm>
#include <cstring>

namespace tcells::fuzz {

namespace {

// Values that stress bounds checks when written into a length field.
uint32_t InterestingLength(Rng* rng, uint32_t old_value, size_t buf_size) {
  switch (rng->NextBelow(7)) {
    case 0: return 0;
    case 1: return old_value + 1;
    case 2: return old_value ? old_value - 1 : 1;
    case 3: return old_value * 2 + 1;
    case 4: return static_cast<uint32_t>(buf_size);
    case 5: return 0x7fffffff;
    default: return 0xffffffff;
  }
}

uint8_t InterestingByte(Rng* rng) {
  static constexpr uint8_t kBytes[] = {0x00, 0x01, 0x02, 0x7f, 0x80, 0xfe, 0xff};
  return kBytes[rng->NextBelow(sizeof(kBytes))];
}

/// Batch-envelope magic/version bytes (net/ssi_wire.h kBatchMagic,
/// kBatchVersion) — duplicated as raw constants so the mutator stays
/// dependency-free of the net layer.
constexpr uint8_t kBatchMagicByte = 0xB5;
constexpr uint8_t kBatchVersionByte = 1;

/// Structure-aware batch mutation: find (or forge) a batch-envelope header
/// in the buffer, then attack the fields the decoder trusts least — the call
/// count, a correlation ID, or a per-call length prefix — instead of hoping
/// a random bit flip lands on them.
void MutateBatchEnvelope(Bytes* out, Rng* rng) {
  Bytes& buf = *out;
  size_t base = 0;
  // A fuzz input often carries a selector byte before the frame; accept the
  // header at offset 0 or 1, else stamp one in.
  if (buf.size() >= 2 && buf[0] == kBatchMagicByte) {
    base = 0;
  } else if (buf.size() >= 3 && buf[1] == kBatchMagicByte) {
    base = 1;
  } else {
    base = buf.size() > 1 ? rng->NextBelow(2) : 0;
    while (buf.size() < base + 6) buf.push_back(0);
    buf[base] = kBatchMagicByte;
    buf[base + 1] = kBatchVersionByte;
  }
  if (buf.size() < base + 6) return;
  switch (rng->NextBelow(4)) {
    case 0: {  // Hostile call count vs. the actual remaining bytes.
      uint32_t old_count = 0;
      std::memcpy(&old_count, buf.data() + base + 2, 4);
      uint32_t v = InterestingLength(rng, old_count, buf.size());
      std::memcpy(buf.data() + base + 2, &v, 4);
      break;
    }
    case 1: {  // Corrupt a correlation ID (first call's, bytes 6..13).
      if (buf.size() < base + 14) break;
      size_t pos = base + 6 + rng->NextBelow(8);
      buf[pos] = InterestingByte(rng);
      break;
    }
    case 2: {  // Attack the first call's payload length prefix.
      if (buf.size() < base + 18) break;
      uint32_t old_len = 0;
      std::memcpy(&old_len, buf.data() + base + 14, 4);
      uint32_t v = InterestingLength(rng, old_len, buf.size());
      std::memcpy(buf.data() + base + 14, &v, 4);
      break;
    }
    default: {  // Version skew: future/zero versions must be rejected.
      buf[base + 1] = InterestingByte(rng);
      break;
    }
  }
}

}  // namespace

Bytes Mutate(const Bytes& seed, Rng* rng) {
  Bytes out = seed;
  if (out.empty()) out.push_back(static_cast<uint8_t>(rng->Next()));
  // Stack one to three transformations so mutants reach past single-field
  // damage (e.g. truncate *and* bump a count field).
  const int rounds = 1 + static_cast<int>(rng->NextBelow(3));
  for (int round = 0; round < rounds; ++round) {
    const size_t n = out.size();
    switch (rng->NextBelow(9)) {
      case 0: {  // Flip one bit.
        size_t pos = rng->NextBelow(n);
        out[pos] ^= static_cast<uint8_t>(1u << rng->NextBelow(8));
        break;
      }
      case 1: {  // Overwrite a byte with an interesting value.
        out[rng->NextBelow(n)] = InterestingByte(rng);
        break;
      }
      case 2: {  // Truncate at a random point (keep at least one byte).
        out.resize(1 + rng->NextBelow(n));
        break;
      }
      case 3: {  // Extend with random bytes.
        size_t grow = 1 + rng->NextBelow(64);
        grow = std::min(grow, kMaxMutantSize - std::min(kMaxMutantSize, n));
        for (size_t i = 0; i < grow; ++i) {
          out.push_back(static_cast<uint8_t>(rng->Next()));
        }
        break;
      }
      case 4: {  // Splice: copy a chunk of the input over another offset.
        if (n < 2) break;
        size_t len = 1 + rng->NextBelow(std::min<size_t>(n - 1, 32));
        size_t src = rng->NextBelow(n - len + 1);
        size_t dst = rng->NextBelow(n - len + 1);
        std::memmove(out.data() + dst, out.data() + src, len);
        break;
      }
      case 5: {  // Tweak a 32-bit little-endian field (length prefixes).
        if (n < 4) break;
        size_t pos = rng->NextBelow(n - 3);
        uint32_t old_value = 0;
        std::memcpy(&old_value, out.data() + pos, 4);
        uint32_t v = InterestingLength(rng, old_value, n);
        std::memcpy(out.data() + pos, &v, 4);
        break;
      }
      case 6: {  // Tweak a 16-bit little-endian field (tuple arities).
        if (n < 2) break;
        size_t pos = rng->NextBelow(n - 1);
        uint16_t v = static_cast<uint16_t>(InterestingLength(
            rng, static_cast<uint16_t>(out[pos]), n));
        std::memcpy(out.data() + pos, &v, 2);
        break;
      }
      case 7: {  // Zero-fill a range.
        size_t len = 1 + rng->NextBelow(std::min<size_t>(n, 32));
        size_t pos = rng->NextBelow(n - len + 1);
        std::fill(out.begin() + pos, out.begin() + pos + len, 0);
        break;
      }
      default: {  // Structure-aware batch-envelope attack.
        MutateBatchEnvelope(&out, rng);
        break;
      }
    }
    if (out.size() > kMaxMutantSize) out.resize(kMaxMutantSize);
  }
  return out;
}

}  // namespace tcells::fuzz
