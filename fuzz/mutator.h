// Structure-aware mutation of wire encodings for the fuzz harnesses.
//
// The mutator starts from a valid encoding captured out of a real protocol
// run (see make_corpus.cc) and applies the transformations that historically
// break length-prefixed codecs: bit flips, truncation, extension, splicing a
// chunk of the input over another offset, and targeted tweaks of 16/32-bit
// little-endian length fields. Used both by the libFuzzer custom mutator and
// by the standalone replay driver, which derives a deterministic batch of
// mutants from every corpus seed so plain `ctest -L fuzz` exercises hostile
// inputs without libFuzzer.
#ifndef TCELLS_FUZZ_MUTATOR_H_
#define TCELLS_FUZZ_MUTATOR_H_

#include "common/bytes.h"
#include "common/rng.h"

namespace tcells::fuzz {

/// Hard cap on mutant size: big enough to grow any corpus seed, small enough
/// that a runaway extension cannot OOM the harness.
inline constexpr size_t kMaxMutantSize = 1 << 16;

/// Returns a mutated copy of `seed`. Draws every decision from `rng`, so the
/// same (seed, rng state) pair always yields the same mutant. The result is
/// non-empty whenever `seed` is, and never exceeds kMaxMutantSize bytes.
Bytes Mutate(const Bytes& seed, Rng* rng);

}  // namespace tcells::fuzz

#endif  // TCELLS_FUZZ_MUTATOR_H_
