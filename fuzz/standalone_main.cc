// libFuzzer-free driver for the fuzz harnesses (the `fuzz_smoke` path).
//
// Replays every file under the given paths through LLVMFuzzerTestOneInput,
// then derives a deterministic batch of structure-aware mutants from each
// seed (see mutator.cc) and replays those too. Runs under whatever sanitizers
// the build type enables, so plain `ctest -L fuzz` gets hostile-input
// coverage on toolchains without libFuzzer (GCC). With Clang and
// -DCMAKE_BUILD_TYPE=Fuzz the harnesses link libFuzzer instead and this file
// is not compiled in.
//
// Usage: <harness> [--mutants N] [--seed S] [--max-seconds T] PATH...
//   PATH       corpus file or directory (directories are scanned, sorted).
//   --mutants  mutants generated per seed file (default 64).
//   --seed     base RNG seed for mutant derivation (default 1).
//   --max-seconds  stop generating mutants after this budget (default off);
//                  used for timed local fuzzing sessions.
#ifndef TCELLS_LIBFUZZER

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "fuzz_util.h"
#include "mutator.h"

namespace {

tcells::Bytes ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return tcells::Bytes(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

// Deterministic content hash so each seed file gets its own mutant stream
// regardless of argument order.
uint64_t Fnv1a(const tcells::Bytes& data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  size_t mutants_per_seed = 64;
  uint64_t base_seed = 1;
  double max_seconds = -1;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--mutants" && i + 1 < argc) {
      mutants_per_seed = static_cast<size_t>(std::stoull(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      base_seed = std::stoull(argv[++i]);
    } else if (arg == "--max-seconds" && i + 1 < argc) {
      max_seconds = std::stod(argv[++i]);
    } else if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      inputs.insert(inputs.end(), files.begin(), files.end());
    } else if (std::filesystem::is_regular_file(arg)) {
      inputs.emplace_back(arg);
    } else {
      std::fprintf(stderr, "no such corpus path: %s\n", arg.c_str());
      return 2;
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutants N] [--seed S] [--max-seconds T] "
                 "CORPUS_PATH...\n",
                 argv[0]);
    return 2;
  }

  const auto start = std::chrono::steady_clock::now();
  auto out_of_budget = [&] {
    if (max_seconds < 0) return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= max_seconds;
  };

  size_t replayed = 0, mutated = 0;
  std::vector<tcells::Bytes> seeds;
  seeds.reserve(inputs.size());
  for (const auto& path : inputs) {
    seeds.push_back(ReadFile(path));
    LLVMFuzzerTestOneInput(seeds.back().data(), seeds.back().size());
    ++replayed;
  }
  // Round-robin over seeds so a time budget spreads mutants evenly.
  for (size_t round = 0; round < mutants_per_seed || max_seconds >= 0;
       ++round) {
    if (out_of_budget()) break;
    if (max_seconds < 0 && round >= mutants_per_seed) break;
    for (const auto& seed : seeds) {
      tcells::Rng rng(base_seed ^ Fnv1a(seed) ^ (0x9e3779b97f4a7c15ull * (round + 1)));
      tcells::Bytes mutant = tcells::fuzz::Mutate(seed, &rng);
      LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
      ++mutated;
      if (out_of_budget()) break;
    }
  }
  std::printf("fuzz_smoke: replayed %zu corpus inputs, %zu mutants, 0 crashes\n",
              replayed, mutated);
  return 0;
}

#endif  // !TCELLS_LIBFUZZER
