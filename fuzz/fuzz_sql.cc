// Fuzz harness for the SQL lexer/parser/analyzer pipeline.
//
// Input: raw bytes, treated as query text. Invariants checked:
//  * Parse never crashes, whatever the bytes.
//  * Accepted statements round-trip: ToString() re-parses, and re-rendering
//    is a fixpoint (parse(render(ast)) renders identically).
//  * Analysis against the generic catalog never crashes on any parsed
//    statement (errors are fine).
#include <string>

#include "fuzz_util.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "storage/schema.h"
#include "workload/generic.h"

namespace {

const tcells::storage::Catalog& GenericCatalog() {
  static const tcells::storage::Catalog* catalog = [] {
    auto* c = new tcells::storage::Catalog();
    FUZZ_ASSERT(c->AddTable("T", tcells::workload::GenericSchema()).ok());
    return c;
  }();
  return *catalog;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string sql(reinterpret_cast<const char*>(data), size);
  tcells::Result<tcells::sql::SelectStatement> parsed = tcells::sql::Parse(sql);
  if (!parsed.ok()) return 0;

  // Accepted input must round-trip through the canonical rendering. The
  // first rendering may normalize (e.g. "1.0" -> "1"), so the fixpoint is
  // checked on the second pass.
  std::string rendered = parsed->ToString();
  tcells::Result<tcells::sql::SelectStatement> reparsed =
      tcells::sql::Parse(rendered);
  FUZZ_ASSERT(reparsed.ok());
  FUZZ_ASSERT(reparsed->ToString() == rendered);

  // The analyzer must return a Status, never crash, on anything that parses.
  (void)tcells::sql::Analyze(*parsed, GenericCatalog());
  return 0;
}
