// Semantic analysis: binds a parsed SelectStatement against the common
// catalog and produces the layouts that both the local executor (inside one
// TDS) and the distributed protocols share:
//
//  * combined row    — concatenation of the FROM tables' columns; WHERE and
//                      all inputs are evaluated against it locally by a TDS.
//  * collection tuple— what a TDS emits in the collection phase. For
//                      aggregation queries: [group values..., agg inputs...];
//                      for plain SFW queries: the projected SELECT values.
//  * output row      — for aggregation queries: [group values..., finalized
//                      aggregate values...]; SELECT items and HAVING are
//                      rewritten to reference it.
#ifndef TCELLS_SQL_ANALYZER_H_
#define TCELLS_SQL_ANALYZER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/aggregates.h"
#include "sql/ast.h"
#include "storage/schema.h"

namespace tcells::sql {

/// Fully-bound query, ready for execution by the local executor or the
/// distributed protocols.
struct AnalyzedQuery {
  /// Original statement text form (for queryboxes / debugging).
  std::string sql;

  /// FROM tables in statement order.
  std::vector<TableRef> from;

  /// Concatenated schema of the FROM tables; column names are qualified
  /// ("alias.column").
  storage::Schema combined_schema;

  /// For each combined-row position: the originating (real table name,
  /// column name) — used by the access-control check.
  std::vector<std::pair<std::string, std::string>> combined_origin;

  /// WHERE predicate bound against the combined row; null if absent.
  ExprPtr where;

  /// True if the query has GROUP BY and/or any aggregate function.
  bool is_aggregation = false;

  /// --- Aggregation queries only ---
  /// Number of grouping attributes (the A_G of the paper).
  size_t key_arity = 0;
  /// Expressions producing each collection-tuple position, bound against the
  /// combined row. First key_arity entries are the grouping attributes.
  std::vector<ExprPtr> collection_exprs;
  /// Aggregate slots; input_index points into the collection tuple.
  std::vector<AggSpec> agg_specs;
  /// SELECT items rewritten over the output row; HAVING likewise (null if
  /// absent). In these expressions, kColumnRef.bound_index points into the
  /// output row: [0, key_arity) group values, then one finalized value per
  /// aggregate slot (via kAggregate.agg_slot).
  std::vector<ExprPtr> select_output_exprs;
  ExprPtr having;

  /// --- Plain SFW queries only ---
  /// SELECT items bound against the combined row ('*' already expanded).
  std::vector<ExprPtr> select_row_exprs;

  /// Result column names (and best-effort types) as seen by the querier.
  storage::Schema result_schema;

  /// ORDER BY, resolved to result-column positions. Sorting (and LIMIT) are
  /// applied by the querier after decryption — ciphertext cannot be ordered
  /// by the SSI, and result order must not leak through the protocol.
  struct SortKey {
    size_t column = 0;
    bool descending = false;
  };
  std::vector<SortKey> sort_keys;
  std::optional<uint64_t> limit;
  /// SELECT DISTINCT: de-duplicate result rows (querier-side).
  bool select_distinct = false;

  std::optional<SizeClause> size;

  /// Schema of the collection tuple (aggregation) or the projected tuple
  /// (plain SFW) — the plaintext a TDS encrypts in the collection phase.
  storage::Schema collection_schema;
};

/// Binds `stmt` against `catalog`. Validation errors come back as
/// InvalidArgument with a human-readable message.
Result<AnalyzedQuery> Analyze(const SelectStatement& stmt,
                              const storage::Catalog& catalog);

/// Convenience: parse + analyze.
Result<AnalyzedQuery> AnalyzeSql(const std::string& sql,
                                 const storage::Catalog& catalog);

/// Memoized parse + analyze, shared process-wide. Analysis is a pure
/// function of (sql, catalog shape), so a fleet of TDSs sharing the common
/// schema lexes and binds each distinct query text once instead of once per
/// TDS — the per-TDS work on a cache hit is one catalog fingerprint. The
/// returned analysis is immutable and safe to share across threads. Errors
/// are not memoized. The memo is bounded (kAnalysisMemoCapacity entries)
/// and resets wholesale when full.
Result<std::shared_ptr<const AnalyzedQuery>> AnalyzeSqlShared(
    const std::string& sql, const storage::Catalog& catalog);

inline constexpr size_t kAnalysisMemoCapacity = 256;

}  // namespace tcells::sql

#endif  // TCELLS_SQL_ANALYZER_H_
