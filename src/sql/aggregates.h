// Mergeable aggregate states. The distributed aggregation phase (§4) works
// because every supported aggregate can be computed as
//   init -> Accumulate(value)* -> Merge(other partial)* -> Finalize()
// Distributive (COUNT/SUM/MIN/MAX) and algebraic (AVG) aggregates carry O(1)
// state; holistic ones (COUNT DISTINCT, MEDIAN) carry their value multiset,
// which is exactly why they stress the TDS RAM bound the paper discusses.
#ifndef TCELLS_SQL_AGGREGATES_H_
#define TCELLS_SQL_AGGREGATES_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "sql/ast.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace tcells::sql {

/// Static description of one aggregate slot of a query: what to compute over
/// which input column of the collection tuple.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  bool distinct = false;
  /// Index of the aggregate's input within the collection tuple; -1 for
  /// COUNT(*) (no input needed).
  int input_index = -1;
  /// Display name, e.g. "AVG(Cons)".
  std::string name;
};

/// Running state for one aggregate slot. Copyable; serializable so partial
/// aggregations can be re-encrypted and shipped between TDSs via the SSI.
class AggState {
 public:
  AggState() = default;
  explicit AggState(const AggSpec& spec);

  /// Folds one input value in. NULLs are ignored (SQL semantics); COUNT(*)
  /// accepts any value including NULL.
  Status Accumulate(const storage::Value& v);

  /// Merges another partial state for the same spec.
  Status Merge(const AggState& other);

  /// Produces the final value. COUNT of nothing is 0; other aggregates of
  /// nothing are NULL.
  Result<storage::Value> Finalize() const;

  /// Wire encoding (spec is NOT encoded; both sides know the query plan).
  void EncodeTo(Bytes* out) const;
  static Result<AggState> DecodeFrom(const AggSpec& spec,
                                     ::tcells::ByteReader* reader);

  /// Approximate in-memory footprint in bytes — used to model the TDS RAM
  /// bound on the partial aggregate structure (§4.2 Correctness).
  size_t MemoryFootprint() const;

  int64_t count_for_test() const { return count_; }

 private:
  AggSpec spec_;
  // COUNT / AVG denominator.
  int64_t count_ = 0;
  // SUM / AVG numerator. Kept as double plus an exact int64 track; the int64
  // track is authoritative while no double input has been seen.
  double sum_double_ = 0;
  // VARIANCE / STDDEV second moment.
  double sum_squares_ = 0;
  int64_t sum_int_ = 0;
  bool saw_double_ = false;
  bool sum_int_overflow_ = false;
  // MIN / MAX.
  storage::Value extreme_;
  // Holistic state: value -> multiplicity (multiset). DISTINCT uses the key
  // set; MEDIAN uses the full multiset.
  std::map<storage::Value, int64_t> values_;
};

/// A keyed partial aggregation: group key -> per-slot states. This is the
/// "partial aggregate" data structure a TDS materializes in RAM during the
/// aggregation phase.
class GroupedAggregation {
 public:
  explicit GroupedAggregation(std::vector<AggSpec> specs);

  /// Folds a collection tuple (group key prefix + aggregate inputs) in.
  /// `key_arity` values of `tuple` form the group key.
  Status AccumulateTuple(const storage::Tuple& tuple, size_t key_arity);

  /// Merges one (key, states) partial row from another TDS.
  Status MergeRow(const storage::Tuple& key, const std::vector<AggState>& states);

  /// Merges everything from another aggregation.
  Status MergeAll(const GroupedAggregation& other);

  /// Streaming decode-and-merge of an encoded aggregation (the wire format
  /// EncodeTo produces): each row is merged as it is decoded, moving states
  /// straight into the group map on first sight instead of materializing a
  /// second GroupedAggregation and deep-copying it. On error this aggregation
  /// may hold a prefix of the rows; callers treat any error as fatal for the
  /// partition, so the partial merge is never observed.
  Status MergeEncoded(const uint8_t* data, size_t n);

  size_t num_groups() const { return groups_.size(); }
  const std::vector<AggSpec>& specs() const { return specs_; }
  const std::map<storage::Tuple, std::vector<AggState>>& groups() const {
    return groups_;
  }

  /// Approximate RAM footprint of the whole structure.
  size_t MemoryFootprint() const;

  /// Serializes to rows of (key, states...) for shipping.
  void EncodeTo(Bytes* out) const;
  static Result<GroupedAggregation> Decode(const std::vector<AggSpec>& specs,
                                           const Bytes& data);
  /// Span form for decoding straight out of a decryption scratch buffer.
  static Result<GroupedAggregation> Decode(const std::vector<AggSpec>& specs,
                                           const uint8_t* data, size_t n);

  /// Encodes a single (key, states) row in the same wire format as EncodeTo
  /// of a one-group aggregation. The ED_Hist per-group output path uses this
  /// to seal each group without constructing a throwaway GroupedAggregation.
  static void EncodeSingleRowTo(const storage::Tuple& key,
                                const std::vector<AggState>& states,
                                Bytes* out);

 private:
  std::vector<AggSpec> specs_;
  std::map<storage::Tuple, std::vector<AggState>> groups_;
  /// Scratch group key reused by AccumulateTuple so the per-tuple lookup
  /// stops allocating a fresh key vector (its capacity survives emplaces).
  storage::Tuple key_scratch_;
};

}  // namespace tcells::sql

#endif  // TCELLS_SQL_AGGREGATES_H_
