#include "sql/executor.h"

#include <algorithm>
#include <set>
#include <cmath>
#include <sstream>

#include "sql/eval.h"

namespace tcells::sql {

using storage::Tuple;
using storage::Value;
using storage::ValueType;

namespace {

bool ValuesClose(const Value& a, const Value& b, double rel_tol) {
  if (a.is_null() && b.is_null()) return true;
  if (a.is_null() || b.is_null()) return false;
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.ToDouble().ValueOrDie();
    double y = b.ToDouble().ValueOrDie();
    if (x == y) return true;
    double scale = std::max(std::fabs(x), std::fabs(y));
    return std::fabs(x - y) <= rel_tol * scale;
  }
  return a.IsSameGroup(b);
}

bool RowsClose(const Tuple& a, const Tuple& b, double rel_tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValuesClose(a.at(i), b.at(i), rel_tol)) return false;
  }
  return true;
}

}  // namespace

bool QueryResult::SameRows(const QueryResult& other, double rel_tol) const {
  if (rows.size() != other.rows.size()) return false;
  std::vector<bool> used(other.rows.size(), false);
  for (const auto& row : rows) {
    bool matched = false;
    for (size_t j = 0; j < other.rows.size(); ++j) {
      if (!used[j] && RowsClose(row, other.rows[j], rel_tol)) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::string QueryResult::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i) os << " | ";
    os << schema.column(i).name;
  }
  os << "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << " | ";
      os << row.at(i).ToString();
    }
    os << "\n";
  }
  return os.str();
}

Result<std::vector<Tuple>> CombinedRows(const storage::Database& db,
                                        const AnalyzedQuery& q) {
  // Gather the FROM tables.
  std::vector<const storage::Table*> tables;
  for (const auto& ref : q.from) {
    TCELLS_ASSIGN_OR_RETURN(const storage::Table* t, db.GetTable(ref.table));
    tables.push_back(t);
  }

  // Cartesian product (local internal joins are constrained by WHERE). The
  // per-TDS tables are tiny, so nested loops are appropriate.
  std::vector<Tuple> rows;
  std::vector<size_t> idx(tables.size(), 0);
  for (const auto* t : tables) {
    if (t->num_rows() == 0) return rows;  // empty product
  }
  for (;;) {
    Tuple combined;
    for (size_t i = 0; i < tables.size(); ++i) {
      combined = Tuple::Concat(combined, tables[i]->row(idx[i]));
    }
    bool keep = true;
    if (q.where) {
      EvalContext ctx{&combined, 0};
      TCELLS_ASSIGN_OR_RETURN(keep, EvalPredicate(*q.where, ctx));
    }
    if (keep) rows.push_back(std::move(combined));
    // Advance the odometer.
    size_t k = tables.size();
    while (k > 0) {
      --k;
      if (++idx[k] < tables[k]->num_rows()) break;
      idx[k] = 0;
      if (k == 0) return rows;
    }
  }
}

Result<std::vector<Tuple>> CollectionTuples(const storage::Database& db,
                                            const AnalyzedQuery& q) {
  TCELLS_ASSIGN_OR_RETURN(std::vector<Tuple> combined, CombinedRows(db, q));
  const std::vector<ExprPtr>& exprs =
      q.is_aggregation ? q.collection_exprs : q.select_row_exprs;
  std::vector<Tuple> out;
  out.reserve(combined.size());
  for (const auto& row : combined) {
    EvalContext ctx{&row, 0};
    Tuple projected;
    for (const auto& e : exprs) {
      TCELLS_ASSIGN_OR_RETURN(Value v, Eval(*e, ctx));
      projected.Append(std::move(v));
    }
    out.push_back(std::move(projected));
  }
  return out;
}

Result<QueryResult> FinalizeAggregation(const GroupedAggregation& agg,
                                        const AnalyzedQuery& q) {
  QueryResult result;
  result.schema = q.result_schema;
  for (const auto& [key, states] : agg.groups()) {
    // Output row = group values then finalized aggregate values.
    Tuple output = key;
    for (const auto& state : states) {
      TCELLS_ASSIGN_OR_RETURN(Value v, state.Finalize());
      output.Append(std::move(v));
    }
    EvalContext ctx{&output, q.key_arity};
    if (q.having) {
      TCELLS_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*q.having, ctx));
      if (!keep) continue;
    }
    Tuple projected;
    for (const auto& e : q.select_output_exprs) {
      TCELLS_ASSIGN_OR_RETURN(Value v, Eval(*e, ctx));
      projected.Append(std::move(v));
    }
    result.rows.push_back(std::move(projected));
  }
  return result;
}

Status ApplyOrderAndLimit(const AnalyzedQuery& q, QueryResult* result) {
  if (q.select_distinct) {
    // Stable de-duplication on the canonical row encoding.
    std::set<Bytes> seen;
    std::vector<Tuple> unique;
    unique.reserve(result->rows.size());
    for (auto& row : result->rows) {
      if (seen.insert(row.Encode()).second) unique.push_back(std::move(row));
    }
    result->rows = std::move(unique);
  }
  if (!q.sort_keys.empty()) {
    Status sort_status = Status::OK();
    std::stable_sort(
        result->rows.begin(), result->rows.end(),
        [&](const Tuple& a, const Tuple& b) {
          for (const auto& key : q.sort_keys) {
            auto cmp = a.at(key.column).Compare(b.at(key.column));
            if (!cmp.ok()) {
              if (sort_status.ok()) sort_status = cmp.status();
              return false;
            }
            if (*cmp != 0) return key.descending ? *cmp > 0 : *cmp < 0;
          }
          return false;
        });
    TCELLS_RETURN_IF_ERROR(sort_status);
  }
  if (q.limit && result->rows.size() > *q.limit) {
    result->rows.resize(*q.limit);
  }
  return Status::OK();
}

Result<QueryResult> ExecuteLocal(const storage::Database& db,
                                 const AnalyzedQuery& q) {
  QueryResult result;
  TCELLS_ASSIGN_OR_RETURN(std::vector<Tuple> collection,
                          CollectionTuples(db, q));
  if (!q.is_aggregation) {
    result.schema = q.result_schema;
    result.rows = std::move(collection);
  } else {
    GroupedAggregation agg(q.agg_specs);
    for (const auto& t : collection) {
      TCELLS_RETURN_IF_ERROR(agg.AccumulateTuple(t, q.key_arity));
    }
    TCELLS_ASSIGN_OR_RETURN(result, FinalizeAggregation(agg, q));
  }
  TCELLS_RETURN_IF_ERROR(ApplyOrderAndLimit(q, &result));
  return result;
}

}  // namespace tcells::sql
