#include "sql/analyzer.h"

#include <functional>
#include <map>
#include <mutex>

#include "common/strings.h"
#include "sql/parser.h"

namespace tcells::sql {

using storage::Column;
using storage::Schema;
using storage::ValueType;

namespace {

/// Deep copy of an expression tree (analysis mutates bound indices; we never
/// touch the caller's AST).
ExprPtr CloneExpr(const ExprPtr& e) {
  if (!e) return nullptr;
  auto copy = std::make_shared<Expr>(*e);
  for (auto& child : copy->children) child = CloneExpr(child);
  return copy;
}

struct ColumnEntry {
  std::string table;       // effective (alias) name, original case
  std::string real_table;  // underlying table name
  std::string column;      // original case
  ValueType type;
};

class Binder {
 public:
  Binder(const std::vector<TableRef>& from, const storage::Catalog& catalog)
      : from_(from), catalog_(catalog) {}

  Status Init() {
    for (const auto& ref : from_) {
      TCELLS_ASSIGN_OR_RETURN(const Schema* schema,
                              catalog_.GetSchema(ref.table));
      for (const auto& col : schema->columns()) {
        entries_.push_back({ref.effective_name(), ref.table, col.name, col.type});
      }
    }
    // Reject duplicate effective table names (ambiguous binding).
    for (size_t i = 0; i < from_.size(); ++i) {
      for (size_t j = i + 1; j < from_.size(); ++j) {
        if (EqualsIgnoreCase(from_[i].effective_name(),
                             from_[j].effective_name())) {
          return Status::InvalidArgument("duplicate table name/alias: " +
                                         from_[i].effective_name());
        }
      }
    }
    return Status::OK();
  }

  const std::vector<ColumnEntry>& entries() const { return entries_; }

  Schema CombinedSchema() const {
    std::vector<Column> cols;
    cols.reserve(entries_.size());
    for (const auto& e : entries_) {
      cols.push_back({e.table + "." + e.column, e.type});
    }
    return Schema(std::move(cols));
  }

  Result<int> Resolve(const std::string& qualifier,
                      const std::string& column) const {
    int found = -1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (!EqualsIgnoreCase(entries_[i].column, column)) continue;
      if (!qualifier.empty() &&
          !EqualsIgnoreCase(entries_[i].table, qualifier)) {
        continue;
      }
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous column: " + column);
      }
      found = static_cast<int>(i);
    }
    if (found < 0) {
      std::string name = qualifier.empty() ? column : qualifier + "." + column;
      return Status::NotFound("unknown column: " + name);
    }
    return found;
  }

  /// Binds every ColumnRef in `e` to a combined-row index. Rejects aggregate
  /// nodes when `allow_aggregates` is false.
  Status BindExpr(const ExprPtr& e, bool allow_aggregates) {
    if (!e) return Status::OK();
    if (e->kind == Expr::Kind::kColumnRef) {
      if (e->column == "*") {
        return Status::InvalidArgument("'*' is only valid as a SELECT item");
      }
      TCELLS_ASSIGN_OR_RETURN(e->bound_index, Resolve(e->qualifier, e->column));
      return Status::OK();
    }
    if (e->kind == Expr::Kind::kAggregate) {
      if (!allow_aggregates) {
        return Status::InvalidArgument(
            "aggregate function not allowed in this clause");
      }
      // The aggregate's argument is evaluated per input row.
      for (const auto& child : e->children) {
        TCELLS_RETURN_IF_ERROR(BindExpr(child, /*allow_aggregates=*/false));
      }
      return Status::OK();
    }
    for (const auto& child : e->children) {
      TCELLS_RETURN_IF_ERROR(BindExpr(child, allow_aggregates));
    }
    return Status::OK();
  }

 private:
  const std::vector<TableRef>& from_;
  const storage::Catalog& catalog_;
  std::vector<ColumnEntry> entries_;
};

bool ContainsAggregate(const ExprPtr& e) {
  if (!e) return false;
  if (e->kind == Expr::Kind::kAggregate) return true;
  for (const auto& child : e->children) {
    if (ContainsAggregate(child)) return true;
  }
  return false;
}

/// Best-effort output type inference; kNull means "unknown".
ValueType InferType(const ExprPtr& e, const Schema& combined) {
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      return e->literal.type();
    case Expr::Kind::kColumnRef:
      if (e->bound_index >= 0 &&
          static_cast<size_t>(e->bound_index) < combined.num_columns()) {
        return combined.column(static_cast<size_t>(e->bound_index)).type;
      }
      return ValueType::kNull;
    case Expr::Kind::kUnary:
      return e->unary_op == UnaryOp::kNot ? ValueType::kBool
                                          : InferType(e->children[0], combined);
    case Expr::Kind::kBinary:
      switch (e->binary_op) {
        case BinaryOp::kOr: case BinaryOp::kAnd:
        case BinaryOp::kEq: case BinaryOp::kNe:
        case BinaryOp::kLt: case BinaryOp::kLe:
        case BinaryOp::kGt: case BinaryOp::kGe:
          return ValueType::kBool;
        case BinaryOp::kDiv:
          return ValueType::kDouble;
        default: {
          ValueType a = InferType(e->children[0], combined);
          ValueType b = InferType(e->children[1], combined);
          if (a == ValueType::kDouble || b == ValueType::kDouble) {
            return ValueType::kDouble;
          }
          return ValueType::kInt64;
        }
      }
    case Expr::Kind::kInList:
    case Expr::Kind::kIsNull:
    case Expr::Kind::kLike:
      return ValueType::kBool;
    case Expr::Kind::kAggregate:
      switch (e->agg_kind) {
        case AggKind::kCount: return ValueType::kInt64;
        case AggKind::kAvg:
        case AggKind::kVariance:
        case AggKind::kStdDev:
          return ValueType::kDouble;
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
        case AggKind::kMedian:
          return e->star || e->children.empty()
                     ? ValueType::kNull
                     : InferType(e->children[0], combined);
      }
      return ValueType::kNull;
  }
  return ValueType::kNull;
}

/// Default result-column name for an expression.
std::string DefaultName(const ExprPtr& e) { return e->ToString(); }

/// Resolves ORDER BY items against the result schema: 1-based positions or
/// result-column names (exact, or matching the part after the qualifier dot).
Status ResolveOrderBy(const SelectStatement& stmt, AnalyzedQuery* out) {
  for (const auto& item : stmt.order_by) {
    AnalyzedQuery::SortKey key;
    key.descending = item.descending;
    const Expr& e = *item.expr;
    if (e.kind == Expr::Kind::kLiteral &&
        e.literal.type() == ValueType::kInt64) {
      int64_t pos = e.literal.AsInt64();
      if (pos < 1 ||
          pos > static_cast<int64_t>(out->result_schema.num_columns())) {
        return Status::InvalidArgument("ORDER BY position out of range: " +
                                       std::to_string(pos));
      }
      key.column = static_cast<size_t>(pos - 1);
    } else if (e.kind == Expr::Kind::kColumnRef) {
      std::string wanted =
          e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
      int found = -1;
      for (size_t i = 0; i < out->result_schema.num_columns(); ++i) {
        const std::string& name = out->result_schema.column(i).name;
        bool match = EqualsIgnoreCase(name, wanted);
        if (!match && e.qualifier.empty()) {
          // Allow ordering by the bare column name of a qualified result.
          auto dot = name.rfind('.');
          if (dot != std::string::npos) {
            match = EqualsIgnoreCase(name.substr(dot + 1), wanted);
          }
        }
        if (match) {
          if (found >= 0) {
            return Status::InvalidArgument("ambiguous ORDER BY column: " +
                                           wanted);
          }
          found = static_cast<int>(i);
        }
      }
      if (found < 0) {
        return Status::InvalidArgument(
            "ORDER BY must name a result column: " + wanted);
      }
      key.column = static_cast<size_t>(found);
    } else {
      return Status::InvalidArgument(
          "ORDER BY supports result columns and positions only");
    }
    out->sort_keys.push_back(key);
  }
  out->limit = stmt.limit;
  out->select_distinct = stmt.distinct;
  return Status::OK();
}

}  // namespace

Result<AnalyzedQuery> Analyze(const SelectStatement& stmt,
                              const storage::Catalog& catalog) {
  if (stmt.select_list.empty()) {
    return Status::InvalidArgument("empty SELECT list");
  }
  if (stmt.from.empty()) {
    return Status::InvalidArgument("empty FROM clause");
  }

  AnalyzedQuery out;
  out.sql = stmt.ToString();
  out.from = stmt.from;
  out.size = stmt.size;

  Binder binder(stmt.from, catalog);
  TCELLS_RETURN_IF_ERROR(binder.Init());
  out.combined_schema = binder.CombinedSchema();
  for (const auto& e : binder.entries()) {
    out.combined_origin.emplace_back(e.real_table, e.column);
  }

  // WHERE: bound against the combined row; aggregates are not allowed.
  if (stmt.where) {
    out.where = CloneExpr(stmt.where);
    TCELLS_RETURN_IF_ERROR(binder.BindExpr(out.where, false));
  }

  bool any_aggregate = false;
  for (const auto& item : stmt.select_list) {
    if (ContainsAggregate(item.expr)) any_aggregate = true;
  }
  if (stmt.having && !ContainsAggregate(stmt.having) && stmt.group_by.empty()) {
    return Status::InvalidArgument("HAVING requires GROUP BY or an aggregate");
  }
  out.is_aggregation = any_aggregate || !stmt.group_by.empty() ||
                       (stmt.having && ContainsAggregate(stmt.having));

  if (!out.is_aggregation) {
    // ----- Plain Select-From-Where (§3.2) -----
    if (stmt.having) {
      return Status::InvalidArgument("HAVING without aggregation");
    }
    std::vector<Column> result_cols;
    for (const auto& item : stmt.select_list) {
      if (item.expr->kind == Expr::Kind::kColumnRef &&
          item.expr->column == "*") {
        // Expand '*' to all combined columns.
        for (size_t i = 0; i < out.combined_schema.num_columns(); ++i) {
          auto ref = MakeColumnRef("", out.combined_schema.column(i).name);
          ref->bound_index = static_cast<int>(i);
          out.select_row_exprs.push_back(std::move(ref));
          result_cols.push_back(out.combined_schema.column(i));
        }
        continue;
      }
      ExprPtr bound = CloneExpr(item.expr);
      TCELLS_RETURN_IF_ERROR(binder.BindExpr(bound, false));
      result_cols.push_back(
          {item.alias.empty() ? DefaultName(bound) : item.alias,
           InferType(bound, out.combined_schema)});
      out.select_row_exprs.push_back(std::move(bound));
    }
    out.result_schema = Schema(std::move(result_cols));
    out.collection_schema = out.result_schema;
    TCELLS_RETURN_IF_ERROR(ResolveOrderBy(stmt, &out));
    return out;
  }

  // ----- Aggregation query (§4) -----
  // 1. Bind grouping attributes.
  std::vector<ExprPtr> group_refs;
  for (const auto& g : stmt.group_by) {
    ExprPtr bound = CloneExpr(g);
    TCELLS_RETURN_IF_ERROR(binder.BindExpr(bound, false));
    group_refs.push_back(std::move(bound));
  }
  out.key_arity = group_refs.size();
  out.collection_exprs = group_refs;

  // 2. Walk SELECT + HAVING, turning each Aggregate node into a slot and
  //    each bare grouping column into an output-row reference.
  std::vector<Column> collection_cols;
  for (size_t i = 0; i < group_refs.size(); ++i) {
    const ExprPtr& g = group_refs[i];
    collection_cols.push_back(
        {g->ToString(),
         out.combined_schema.column(static_cast<size_t>(g->bound_index)).type});
  }

  auto find_group_index = [&](const ExprPtr& col_ref) -> int {
    for (size_t i = 0; i < group_refs.size(); ++i) {
      if (group_refs[i]->bound_index == col_ref->bound_index) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  // Rewrites `e` (already a private clone) in place so that it evaluates
  // against the output row. Registers aggregate slots as it goes.
  std::function<Status(ExprPtr&)> rewrite = [&](ExprPtr& e) -> Status {
    if (!e) return Status::OK();
    if (e->kind == Expr::Kind::kColumnRef) {
      TCELLS_RETURN_IF_ERROR(binder.BindExpr(e, false));
      int gidx = find_group_index(e);
      if (gidx < 0) {
        return Status::InvalidArgument(
            "column " + e->ToString() +
            " must appear in GROUP BY or inside an aggregate");
      }
      e->bound_index = gidx;  // now an output-row index
      return Status::OK();
    }
    if (e->kind == Expr::Kind::kAggregate) {
      AggSpec spec;
      spec.kind = e->agg_kind;
      spec.distinct = e->distinct;
      spec.name = e->ToString();
      if (!e->star) {
        ExprPtr arg = CloneExpr(e->children[0]);
        TCELLS_RETURN_IF_ERROR(binder.BindExpr(arg, false));
        // Each aggregate input becomes one collection-tuple position.
        spec.input_index = static_cast<int>(out.collection_exprs.size());
        out.collection_exprs.push_back(arg);
        collection_cols.push_back(
            {spec.name, InferType(arg, out.combined_schema)});
      }
      e->agg_slot = static_cast<int>(out.agg_specs.size());
      out.agg_specs.push_back(spec);
      e->children.clear();  // argument now lives in the collection layout
      return Status::OK();
    }
    for (auto& child : e->children) {
      TCELLS_RETURN_IF_ERROR(rewrite(child));
    }
    return Status::OK();
  };

  std::vector<Column> result_cols;
  for (const auto& item : stmt.select_list) {
    if (item.expr->kind == Expr::Kind::kColumnRef &&
        item.expr->column == "*") {
      return Status::InvalidArgument("'*' is not valid in aggregation queries");
    }
    // Infer the result type from a combined-row-bound copy before rewriting
    // (after the rewrite, indices refer to the output row).
    ExprPtr typed = CloneExpr(item.expr);
    TCELLS_RETURN_IF_ERROR(binder.BindExpr(typed, /*allow_aggregates=*/true));
    ExprPtr bound = CloneExpr(item.expr);
    TCELLS_RETURN_IF_ERROR(rewrite(bound));
    result_cols.push_back(
        {item.alias.empty() ? item.expr->ToString() : item.alias,
         InferType(typed, out.combined_schema)});
    out.select_output_exprs.push_back(std::move(bound));
  }
  if (stmt.having) {
    out.having = CloneExpr(stmt.having);
    TCELLS_RETURN_IF_ERROR(rewrite(out.having));
  }

  out.result_schema = Schema(std::move(result_cols));
  out.collection_schema = Schema(std::move(collection_cols));
  TCELLS_RETURN_IF_ERROR(ResolveOrderBy(stmt, &out));
  return out;
}

Result<AnalyzedQuery> AnalyzeSql(const std::string& sql,
                                 const storage::Catalog& catalog) {
  TCELLS_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Analyze(stmt, catalog);
}

Result<std::shared_ptr<const AnalyzedQuery>> AnalyzeSqlShared(
    const std::string& sql, const storage::Catalog& catalog) {
  static std::mutex memo_mu;
  static std::map<std::string, std::shared_ptr<const AnalyzedQuery>> memo;

  std::string key = catalog.Fingerprint();
  key += '\n';
  key += sql;
  {
    std::lock_guard<std::mutex> lock(memo_mu);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
  }
  // Analyze outside the lock; a concurrent miss on the same key does the
  // work twice but both produce identical immutable analyses.
  TCELLS_ASSIGN_OR_RETURN(AnalyzedQuery query, AnalyzeSql(sql, catalog));
  auto shared = std::make_shared<const AnalyzedQuery>(std::move(query));
  std::lock_guard<std::mutex> lock(memo_mu);
  if (memo.size() >= kAnalysisMemoCapacity) memo.clear();
  auto [it, inserted] = memo.emplace(std::move(key), shared);
  // Keep the first fill so previously handed-out pointers stay canonical.
  return it->second;
}

}  // namespace tcells::sql
