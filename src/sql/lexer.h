// Hand-written lexer for the SQL dialect. Produces a flat token stream the
// recursive-descent parser consumes.
#ifndef TCELLS_SQL_LEXER_H_
#define TCELLS_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace tcells::sql {

enum class TokenType {
  kIdentifier,   ///< unquoted name (keywords are classified by the parser)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral, ///< single-quoted, '' escapes a quote
  kOperator,      ///< one of = <> != < <= > >= + - * / %
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,          ///< '*' (also used as multiply; parser disambiguates)
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;     // raw text (identifiers keep original case)
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;  // byte offset, for error messages
};

/// Tokenizes `sql`; the final token is always kEnd.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace tcells::sql

#endif  // TCELLS_SQL_LEXER_H_
