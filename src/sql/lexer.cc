#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tcells::sql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      tokens.push_back({TokenType::kIdentifier, sql.substr(i, j - i), 0, 0, start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        is_double = true;
        ++j;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j == n || !std::isdigit(static_cast<unsigned char>(sql[j]))) {
          return Status::InvalidArgument("malformed exponent at offset " +
                                         std::to_string(j));
        }
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      std::string text = sql.substr(i, j - i);
      Token t;
      t.text = text;
      t.position = start;
      if (is_double) {
        t.type = TokenType::kDoubleLiteral;
        errno = 0;
        t.double_value = std::strtod(text.c_str(), nullptr);
        if (errno == ERANGE && !std::isfinite(t.double_value)) {
          // Overflowing literals would otherwise silently become +/-inf,
          // which ast::ToString cannot render back into parseable SQL.
          return Status::InvalidArgument("double literal out of range at offset " +
                                         std::to_string(start));
        }
      } else {
        t.type = TokenType::kIntLiteral;
        errno = 0;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument("integer literal out of range at offset " +
                                         std::to_string(start));
        }
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          value.push_back(sql[j]);
          ++j;
        }
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      tokens.push_back({TokenType::kStringLiteral, std::move(value), 0, 0, start});
      i = j;
      continue;
    }
    switch (c) {
      case ',':
        tokens.push_back({TokenType::kComma, ",", 0, 0, start});
        ++i;
        continue;
      case '.':
        tokens.push_back({TokenType::kDot, ".", 0, 0, start});
        ++i;
        continue;
      case '(':
        tokens.push_back({TokenType::kLParen, "(", 0, 0, start});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenType::kRParen, ")", 0, 0, start});
        ++i;
        continue;
      case '*':
        tokens.push_back({TokenType::kStar, "*", 0, 0, start});
        ++i;
        continue;
      case '=':
        tokens.push_back({TokenType::kOperator, "=", 0, 0, start});
        ++i;
        continue;
      case '+': case '-': case '/': case '%':
        tokens.push_back({TokenType::kOperator, std::string(1, c), 0, 0, start});
        ++i;
        continue;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kOperator, "<=", 0, 0, start});
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          tokens.push_back({TokenType::kOperator, "<>", 0, 0, start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kOperator, "<", 0, 0, start});
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kOperator, ">=", 0, 0, start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kOperator, ">", 0, 0, start});
          ++i;
        }
        continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kOperator, "<>", 0, 0, start});
          i += 2;
          continue;
        }
        return Status::InvalidArgument("unexpected '!' at offset " +
                                       std::to_string(start));
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", 0, 0, n});
  return tokens;
}

}  // namespace tcells::sql
