#include "sql/ast.h"

namespace tcells::sql {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount: return "COUNT";
    case AggKind::kSum: return "SUM";
    case AggKind::kAvg: return "AVG";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kMedian: return "MEDIAN";
    case AggKind::kVariance: return "VARIANCE";
    case AggKind::kStdDev: return "STDDEV";
  }
  return "?";
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
  }
  return "?";
}

ExprPtr MakeLiteral(storage::Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeInList(ExprPtr needle, std::vector<ExprPtr> haystack) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kInList;
  e->children.push_back(std::move(needle));
  for (auto& h : haystack) e->children.push_back(std::move(h));
  return e;
}

ExprPtr MakeIsNull(ExprPtr child, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kIsNull;
  e->negated = negated;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr MakeLike(ExprPtr value, ExprPtr pattern, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLike;
  e->negated = negated;
  e->children.push_back(std::move(value));
  e->children.push_back(std::move(pattern));
  return e;
}

ExprPtr MakeAggregate(AggKind kind, bool distinct, ExprPtr arg) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kAggregate;
  e->agg_kind = kind;
  e->distinct = distinct;
  if (arg == nullptr) {
    e->star = true;
  } else {
    e->children.push_back(std::move(arg));
  }
  return e;
}

namespace {

// Renders a string literal in SQL syntax, doubling embedded quotes so the
// output lexes back to the same value ('a''b' round-trips as a'b).
std::string QuoteStringLiteral(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    out.push_back(c);
    if (c == '\'') out.push_back('\'');
  }
  out.push_back('\'');
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.type() == storage::ValueType::kString
                 ? QuoteStringLiteral(literal.ToString())
                 : literal.ToString();
    case Kind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kUnary:
      return std::string(unary_op == UnaryOp::kNot ? "NOT " : "-") +
             children[0]->ToString();
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " +
             BinaryOpToString(binary_op) + " " + children[1]->ToString() + ")";
    case Kind::kInList: {
      std::string out = children[0]->ToString() + " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kIsNull:
      return children[0]->ToString() +
             (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToString();
    case Kind::kAggregate: {
      std::string out = AggKindToString(agg_kind);
      out += "(";
      if (distinct) out += "DISTINCT ";
      out += star ? "*" : children[0]->ToString();
      return out + ")";
    }
  }
  return "?";
}

std::string SelectStatement::ToString() const {
  std::string out = distinct ? "SELECT DISTINCT " : "SELECT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i) out += ", ";
    out += select_list[i].expr->ToString();
    if (!select_list[i].alias.empty()) out += " AS " + select_list[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i) out += ", ";
    out += from[i].table;
    if (!from[i].alias.empty()) out += " " + from[i].alias;
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit) out += " LIMIT " + std::to_string(*limit);
  if (size) {
    out += " SIZE";
    if (size->max_tuples) out += " " + std::to_string(*size->max_tuples);
    if (size->max_duration_ticks) {
      out += " DURATION " + std::to_string(*size->max_duration_ticks);
    }
  }
  return out;
}

}  // namespace tcells::sql
