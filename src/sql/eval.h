// Expression evaluation over a row of Values.
//
// NULL handling is pragmatic two-valued logic: any comparison or arithmetic
// involving NULL yields NULL, and a NULL predicate result is treated as
// false by the callers (WHERE/HAVING) — matching SQL's observable behavior
// for the clause positions this dialect supports.
#ifndef TCELLS_SQL_EVAL_H_
#define TCELLS_SQL_EVAL_H_

#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "storage/tuple.h"

namespace tcells::sql {

/// Evaluation context. `row` is the input row; for output-row evaluation
/// (aggregation queries' SELECT/HAVING), `agg_base` is the offset of the
/// first finalized aggregate value within the row (== key_arity), and
/// kAggregate nodes read row[agg_base + agg_slot].
struct EvalContext {
  const storage::Tuple* row = nullptr;
  size_t agg_base = 0;
};

/// Evaluates `e` in `ctx`.
Result<storage::Value> Eval(const Expr& e, const EvalContext& ctx);

/// Evaluates a predicate: NULL and non-bool results are false.
Result<bool> EvalPredicate(const Expr& e, const EvalContext& ctx);

}  // namespace tcells::sql

#endif  // TCELLS_SQL_EVAL_H_
