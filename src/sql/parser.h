// Recursive-descent parser for the paper's SELECT dialect (see ast.h).
#ifndef TCELLS_SQL_PARSER_H_
#define TCELLS_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace tcells::sql {

/// Parses a single SELECT statement. Keywords are case-insensitive.
/// Supported grammar:
///
///   select   := SELECT item (',' item)* FROM table_ref (',' table_ref)*
///               [WHERE expr] [GROUP BY colref (',' colref)*] [HAVING expr]
///               [SIZE size_spec]
///   item     := '*' | expr [AS? ident]
///   table_ref:= ident [AS? ident]
///   size_spec:= INT | DURATION INT | INT DURATION INT
///   expr     := or-chain over: AND, NOT, cmp (= <> < <= > >=),
///               [NOT] IN (list), [NOT] BETWEEN a AND b, IS [NOT] NULL,
///               + - * / %, unary -, literals, column refs, aggregates
Result<SelectStatement> Parse(const std::string& sql);

}  // namespace tcells::sql

#endif  // TCELLS_SQL_PARSER_H_
