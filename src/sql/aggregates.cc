#include "sql/aggregates.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "storage/tuple.h"

namespace tcells::sql {

using storage::Value;
using storage::ValueType;

AggState::AggState(const AggSpec& spec) : spec_(spec) {}

namespace {

bool NeedsValueSet(const AggSpec& spec) {
  // MEDIAN is holistic: it always needs the full multiset. DISTINCT needs the
  // value set for COUNT/SUM/AVG; for MIN/MAX it is a semantic no-op.
  if (spec.kind == AggKind::kMedian) return true;
  if (!spec.distinct) return false;
  return spec.kind == AggKind::kCount || spec.kind == AggKind::kSum ||
         spec.kind == AggKind::kAvg || spec.kind == AggKind::kVariance ||
         spec.kind == AggKind::kStdDev;
}

bool AddOverflows(int64_t a, int64_t b) {
  return (b > 0 && a > std::numeric_limits<int64_t>::max() - b) ||
         (b < 0 && a < std::numeric_limits<int64_t>::min() - b);
}

}  // namespace

Status AggState::Accumulate(const Value& v) {
  if (spec_.kind == AggKind::kCount && spec_.input_index < 0) {
    // COUNT(*): every row counts, even all-NULL ones.
    ++count_;
    return Status::OK();
  }
  if (v.is_null()) return Status::OK();

  if (NeedsValueSet(spec_)) {
    ++values_[v];
    if (spec_.kind == AggKind::kCount) return Status::OK();
    // DISTINCT SUM/AVG and MEDIAN finalize from the set; nothing else to do.
    if (spec_.distinct || spec_.kind == AggKind::kMedian) return Status::OK();
  }

  switch (spec_.kind) {
    case AggKind::kCount:
      ++count_;
      return Status::OK();
    case AggKind::kVariance:
    case AggKind::kStdDev: {
      TCELLS_ASSIGN_OR_RETURN(double d, v.ToDouble());
      sum_double_ += d;
      sum_squares_ += d * d;
      ++count_;
      return Status::OK();
    }
    case AggKind::kSum:
    case AggKind::kAvg: {
      TCELLS_ASSIGN_OR_RETURN(double d, v.ToDouble());
      sum_double_ += d;
      if (v.type() == ValueType::kDouble) {
        saw_double_ = true;
      } else if (!sum_int_overflow_) {
        if (AddOverflows(sum_int_, v.AsInt64())) {
          sum_int_overflow_ = true;
        } else {
          sum_int_ += v.AsInt64();
        }
      }
      ++count_;
      return Status::OK();
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      if (extreme_.is_null()) {
        extreme_ = v;
        return Status::OK();
      }
      TCELLS_ASSIGN_OR_RETURN(int cmp, v.Compare(extreme_));
      if ((spec_.kind == AggKind::kMin && cmp < 0) ||
          (spec_.kind == AggKind::kMax && cmp > 0)) {
        extreme_ = v;
      }
      return Status::OK();
    }
    case AggKind::kMedian:
      return Status::OK();  // handled by the value set above
  }
  return Status::Internal("unreachable aggregate kind");
}

Status AggState::Merge(const AggState& other) {
  // Honest states count actual accumulated rows, so these sums fit; only
  // forged wire states (duplicate-key rows with huge counts/multiplicities)
  // can overflow, and signed overflow is UB.
  if (AddOverflows(count_, other.count_)) {
    return Status::Corruption("aggregate row count overflows");
  }
  count_ += other.count_;
  sum_double_ += other.sum_double_;
  sum_squares_ += other.sum_squares_;
  saw_double_ = saw_double_ || other.saw_double_;
  if (!sum_int_overflow_ && !other.sum_int_overflow_ &&
      !AddOverflows(sum_int_, other.sum_int_)) {
    sum_int_ += other.sum_int_;
  } else {
    sum_int_overflow_ = true;
  }
  if (!other.extreme_.is_null()) {
    TCELLS_RETURN_IF_ERROR(
        // Reuse the accumulate path to apply min/max logic.
        (spec_.kind == AggKind::kMin || spec_.kind == AggKind::kMax)
            ? Accumulate(other.extreme_)
            : Status::OK());
  }
  for (const auto& [v, mult] : other.values_) {
    int64_t& slot = values_[v];
    if (AddOverflows(slot, mult)) {
      return Status::Corruption("value multiplicity overflows");
    }
    slot += mult;
  }
  return Status::OK();
}

Result<Value> AggState::Finalize() const {
  switch (spec_.kind) {
    case AggKind::kCount:
      if (spec_.distinct) {
        return Value::Int64(static_cast<int64_t>(values_.size()));
      }
      return Value::Int64(count_);
    case AggKind::kSum: {
      if (spec_.distinct) {
        double sum = 0;
        bool any_double = false, any = false;
        int64_t isum = 0;
        bool ioverflow = false;
        for (const auto& [v, mult] : values_) {
          (void)mult;
          TCELLS_ASSIGN_OR_RETURN(double d, v.ToDouble());
          sum += d;
          any = true;
          if (v.type() == ValueType::kDouble) {
            any_double = true;
          } else if (!ioverflow) {
            if (AddOverflows(isum, v.AsInt64())) ioverflow = true;
            else isum += v.AsInt64();
          }
        }
        if (!any) return Value::Null();
        if (any_double || ioverflow) return Value::Double(sum);
        return Value::Int64(isum);
      }
      if (count_ == 0) return Value::Null();
      if (saw_double_ || sum_int_overflow_) return Value::Double(sum_double_);
      return Value::Int64(sum_int_);
    }
    case AggKind::kAvg: {
      if (spec_.distinct) {
        if (values_.empty()) return Value::Null();
        double sum = 0;
        for (const auto& [v, mult] : values_) {
          (void)mult;
          TCELLS_ASSIGN_OR_RETURN(double d, v.ToDouble());
          sum += d;
        }
        return Value::Double(sum / static_cast<double>(values_.size()));
      }
      if (count_ == 0) return Value::Null();
      return Value::Double(sum_double_ / static_cast<double>(count_));
    }
    case AggKind::kMin:
    case AggKind::kMax:
      return extreme_;
    case AggKind::kVariance:
    case AggKind::kStdDev: {
      double n;
      double sum = 0, sumsq = 0;
      if (spec_.distinct) {
        if (values_.empty()) return Value::Null();
        n = static_cast<double>(values_.size());
        for (const auto& [v, mult] : values_) {
          (void)mult;
          TCELLS_ASSIGN_OR_RETURN(double d, v.ToDouble());
          sum += d;
          sumsq += d * d;
        }
      } else {
        if (count_ == 0) return Value::Null();
        n = static_cast<double>(count_);
        sum = sum_double_;
        sumsq = sum_squares_;
      }
      double mean = sum / n;
      // Population variance; clamp tiny negative rounding residue.
      double variance = std::max(0.0, sumsq / n - mean * mean);
      return Value::Double(spec_.kind == AggKind::kVariance
                               ? variance
                               : std::sqrt(variance));
    }
    case AggKind::kMedian: {
      if (values_.empty()) return Value::Null();
      int64_t total = 0;
      for (const auto& [v, mult] : values_) {
        int64_t step = spec_.distinct ? 1 : mult;
        if (AddOverflows(total, step)) {
          // Honest states count actual accumulated rows, so the total fits;
          // only a forged wire state can overflow here (the prefix walk
          // below sums the same steps, so it is covered by this check too).
          return Status::Corruption("median multiplicity total overflows");
        }
        total += step;
      }
      // Lower median of the sorted multiset (exact, order via Value::operator<
      // on the numerically-keyed map).
      int64_t target = (total - 1) / 2;
      int64_t seen = 0;
      for (const auto& [v, mult] : values_) {
        seen += spec_.distinct ? 1 : mult;
        if (seen > target) return v;
      }
      return Status::Internal("median walk out of range");
    }
  }
  return Status::Internal("unreachable aggregate kind");
}

void AggState::EncodeTo(Bytes* out) const {
  ByteWriter w(out);
  w.PutI64(count_);
  w.PutDouble(sum_double_);
  w.PutDouble(sum_squares_);
  w.PutI64(sum_int_);
  w.PutU8(static_cast<uint8_t>((saw_double_ ? 1 : 0) |
                               (sum_int_overflow_ ? 2 : 0)));
  extreme_.EncodeTo(out);
  w.PutU32(static_cast<uint32_t>(values_.size()));
  for (const auto& [v, mult] : values_) {
    v.EncodeTo(out);
    w.PutI64(mult);
  }
}

Result<AggState> AggState::DecodeFrom(const AggSpec& spec,
                                      ByteReader* reader) {
  AggState s(spec);
  TCELLS_ASSIGN_OR_RETURN(s.count_, reader->GetI64());
  if (s.count_ < 0) {
    return Status::Corruption("negative aggregate row count");
  }
  TCELLS_ASSIGN_OR_RETURN(s.sum_double_, reader->GetDouble());
  TCELLS_ASSIGN_OR_RETURN(s.sum_squares_, reader->GetDouble());
  TCELLS_ASSIGN_OR_RETURN(s.sum_int_, reader->GetI64());
  TCELLS_ASSIGN_OR_RETURN(uint8_t flags, reader->GetU8());
  s.saw_double_ = flags & 1;
  s.sum_int_overflow_ = flags & 2;
  TCELLS_ASSIGN_OR_RETURN(s.extreme_, Value::DecodeFrom(reader));
  // Each value-set entry is at least 9 bytes (1-byte value tag + i64
  // multiplicity), so a larger declared count cannot fit in the buffer.
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, reader->GetCountU32(9));
  for (uint32_t i = 0; i < n; ++i) {
    TCELLS_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(reader));
    TCELLS_ASSIGN_OR_RETURN(int64_t mult, reader->GetI64());
    if (mult <= 0) {
      // Honest encoders only serialize entries that were accumulated at
      // least once; non-positive multiplicities would corrupt COUNT(DISTINCT)
      // and make MEDIAN's rank walk run past the set.
      return Status::Corruption("non-positive value multiplicity");
    }
    s.values_[std::move(v)] = mult;
  }
  return s;
}

size_t AggState::MemoryFootprint() const {
  size_t bytes = sizeof(AggState);
  for (const auto& [v, mult] : values_) {
    (void)mult;
    bytes += 48;  // map node overhead estimate
    if (v.type() == ValueType::kString) bytes += v.AsString().size();
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// GroupedAggregation

GroupedAggregation::GroupedAggregation(std::vector<AggSpec> specs)
    : specs_(std::move(specs)) {}

Status GroupedAggregation::AccumulateTuple(const storage::Tuple& tuple,
                                           size_t key_arity) {
  if (tuple.size() < key_arity) {
    return Status::InvalidArgument("collection tuple shorter than group key");
  }
  // Build the lookup key in the reusable scratch tuple; only a miss pays for
  // a real key (the scratch is moved into the map and re-grown next call).
  auto& scratch = key_scratch_.mutable_values();
  scratch.assign(tuple.values().begin(), tuple.values().begin() + key_arity);
  auto it = groups_.find(key_scratch_);
  if (it == groups_.end()) {
    std::vector<AggState> states;
    states.reserve(specs_.size());
    for (const auto& spec : specs_) states.emplace_back(spec);
    it = groups_.emplace(std::move(key_scratch_), std::move(states)).first;
    key_scratch_ = storage::Tuple();
  }
  for (size_t j = 0; j < specs_.size(); ++j) {
    const AggSpec& spec = specs_[j];
    Value input = Value::Null();
    if (spec.input_index >= 0) {
      if (static_cast<size_t>(spec.input_index) >= tuple.size()) {
        return Status::InvalidArgument("aggregate input index out of range");
      }
      input = tuple.at(static_cast<size_t>(spec.input_index));
    }
    TCELLS_RETURN_IF_ERROR(it->second[j].Accumulate(input));
  }
  return Status::OK();
}

Status GroupedAggregation::MergeRow(const storage::Tuple& key,
                                    const std::vector<AggState>& states) {
  if (states.size() != specs_.size()) {
    return Status::InvalidArgument("partial row has wrong slot count");
  }
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    groups_.emplace(key, states);
    return Status::OK();
  }
  for (size_t j = 0; j < specs_.size(); ++j) {
    TCELLS_RETURN_IF_ERROR(it->second[j].Merge(states[j]));
  }
  return Status::OK();
}

Status GroupedAggregation::MergeAll(const GroupedAggregation& other) {
  for (const auto& [key, states] : other.groups_) {
    TCELLS_RETURN_IF_ERROR(MergeRow(key, states));
  }
  return Status::OK();
}

Status GroupedAggregation::MergeEncoded(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  // Same row-size floor as Decode: key arity (2 bytes) plus the 38 fixed
  // bytes of each AggState.
  const size_t min_row_bytes = 2 + 38 * specs_.size();
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, reader.GetCountU32(min_row_bytes));
  std::vector<AggState> states;
  for (uint32_t i = 0; i < n; ++i) {
    TCELLS_ASSIGN_OR_RETURN(storage::Tuple key,
                            storage::Tuple::DecodeFrom(&reader));
    states.clear();
    states.reserve(specs_.size());
    for (const auto& spec : specs_) {
      TCELLS_ASSIGN_OR_RETURN(AggState s, AggState::DecodeFrom(spec, &reader));
      states.push_back(std::move(s));
    }
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      groups_.emplace(std::move(key), std::move(states));
      states = std::vector<AggState>();
    } else {
      for (size_t j = 0; j < specs_.size(); ++j) {
        TCELLS_RETURN_IF_ERROR(it->second[j].Merge(states[j]));
      }
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after grouped aggregation");
  }
  return Status::OK();
}

size_t GroupedAggregation::MemoryFootprint() const {
  size_t bytes = sizeof(GroupedAggregation);
  for (const auto& [key, states] : groups_) {
    bytes += 64;  // map node overhead estimate
    bytes += key.Encode().size();
    for (const auto& s : states) bytes += s.MemoryFootprint();
  }
  return bytes;
}

void GroupedAggregation::EncodeTo(Bytes* out) const {
  ByteWriter w(out);
  w.PutU32(static_cast<uint32_t>(groups_.size()));
  for (const auto& [key, states] : groups_) {
    key.EncodeTo(out);
    for (const auto& s : states) s.EncodeTo(out);
  }
}

Result<GroupedAggregation> GroupedAggregation::Decode(
    const std::vector<AggSpec>& specs, const Bytes& data) {
  return Decode(specs, data.data(), data.size());
}

Result<GroupedAggregation> GroupedAggregation::Decode(
    const std::vector<AggSpec>& specs, const uint8_t* data, size_t size) {
  GroupedAggregation agg(specs);
  TCELLS_RETURN_IF_ERROR(agg.MergeEncoded(data, size));
  return agg;
}

void GroupedAggregation::EncodeSingleRowTo(const storage::Tuple& key,
                                           const std::vector<AggState>& states,
                                           Bytes* out) {
  ByteWriter w(out);
  w.PutU32(1);
  key.EncodeTo(out);
  for (const auto& s : states) s.EncodeTo(out);
}

}  // namespace tcells::sql
