#include "sql/parser.h"

#include <optional>

#include "common/strings.h"
#include "sql/lexer.h"

namespace tcells::sql {

namespace {

/// Keywords that terminate expressions / cannot be identifiers in context.
bool IsKeyword(const Token& t, std::string_view kw) {
  return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    TCELLS_RETURN_IF_ERROR(Expect("SELECT"));
    stmt.distinct = ConsumeKeywordIf("DISTINCT");
    // Select list.
    for (;;) {
      TCELLS_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.select_list.push_back(std::move(item));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    TCELLS_RETURN_IF_ERROR(Expect("FROM"));
    for (;;) {
      TCELLS_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt.from.push_back(std::move(ref));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    if (ConsumeKeywordIf("WHERE")) {
      TCELLS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeywordIf("GROUP")) {
      TCELLS_RETURN_IF_ERROR(Expect("BY"));
      for (;;) {
        TCELLS_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
        if (e->kind != Expr::Kind::kColumnRef) {
          return Status::InvalidArgument(
              "GROUP BY supports column references only");
        }
        stmt.group_by.push_back(std::move(e));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
    }
    if (ConsumeKeywordIf("HAVING")) {
      TCELLS_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (ConsumeKeywordIf("ORDER")) {
      TCELLS_RETURN_IF_ERROR(Expect("BY"));
      for (;;) {
        OrderItem item;
        TCELLS_ASSIGN_OR_RETURN(item.expr, ParsePrimary());
        if (ConsumeKeywordIf("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeywordIf("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
    }
    if (ConsumeKeywordIf("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral || Peek().int_value < 0) {
        return Error("expected a non-negative integer after LIMIT");
      }
      stmt.limit = static_cast<uint64_t>(Advance().int_value);
    }
    if (ConsumeKeywordIf("SIZE")) {
      TCELLS_ASSIGN_OR_RETURN(stmt.size, ParseSizeClause());
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeIf(TokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeywordIf(std::string_view kw) {
    if (IsKeyword(Peek(), kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(std::string_view kw) {
    if (!ConsumeKeywordIf(kw)) {
      return Error("expected keyword " + std::string(kw));
    }
    return Status::OK();
  }
  Status ExpectToken(TokenType type, std::string_view what) {
    if (!ConsumeIf(type)) {
      return Error("expected " + std::string(what));
    }
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        msg + " at offset " + std::to_string(Peek().position) +
        (Peek().text.empty() ? "" : " (near '" + Peek().text + "')"));
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "SELECT", "FROM", "WHERE",  "GROUP", "BY",   "HAVING", "SIZE",
        "AND",    "OR",   "NOT",    "IN",    "IS",   "NULL",   "AS",
        "BETWEEN", "TRUE", "FALSE",  "DISTINCT", "DURATION",
        "ORDER",  "LIMIT", "ASC",   "DESC",  "LIKE"};
    for (const char* kw : kReserved) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  static std::optional<AggKind> AggFromName(const std::string& name) {
    if (EqualsIgnoreCase(name, "COUNT")) return AggKind::kCount;
    if (EqualsIgnoreCase(name, "SUM")) return AggKind::kSum;
    if (EqualsIgnoreCase(name, "AVG")) return AggKind::kAvg;
    if (EqualsIgnoreCase(name, "MIN")) return AggKind::kMin;
    if (EqualsIgnoreCase(name, "MAX")) return AggKind::kMax;
    if (EqualsIgnoreCase(name, "MEDIAN")) return AggKind::kMedian;
    if (EqualsIgnoreCase(name, "VARIANCE")) return AggKind::kVariance;
    if (EqualsIgnoreCase(name, "STDDEV")) return AggKind::kStdDev;
    return std::nullopt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().type == TokenType::kStar) {
      Advance();
      // SELECT * -> a bare column ref with the reserved name "*"; the
      // analyzer expands it against the combined schema.
      item.expr = MakeColumnRef("", "*");
      return item;
    }
    TCELLS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ConsumeKeywordIf("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected alias after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReserved(Peek().text)) {
      item.alias = Advance().text;
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().type != TokenType::kIdentifier || IsReserved(Peek().text)) {
      return Error("expected table name");
    }
    TableRef ref;
    ref.table = Advance().text;
    if (ConsumeKeywordIf("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReserved(Peek().text)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<SizeClause> ParseSizeClause() {
    SizeClause size;
    bool any = false;
    if (Peek().type == TokenType::kIntLiteral) {
      size.max_tuples = static_cast<uint64_t>(Advance().int_value);
      any = true;
    }
    if (ConsumeKeywordIf("DURATION")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Error("expected integer after DURATION");
      }
      size.max_duration_ticks = static_cast<uint64_t>(Advance().int_value);
      any = true;
    }
    if (!any) return Error("SIZE clause needs a tuple count and/or DURATION");
    return size;
  }

  // Expression grammar, loosest first. Recursion depth is bounded so hostile
  // inputs like ten thousand nested parentheses or NOT chains return a parse
  // error instead of overflowing the stack; 400 comfortably covers any query
  // a client would write (and the 200-deep nesting pinned in
  // robustness_test.cc) while keeping worst-case stack use in the tens of
  // kilobytes even under sanitizers.
  static constexpr int kMaxExprDepth = 400;

  Result<ExprPtr> ParseExpr() {
    if (depth_ >= kMaxExprDepth) return Error("expression nesting too deep");
    ++depth_;
    auto result = ParseOr();
    --depth_;
    return result;
  }

  Result<ExprPtr> ParseOr() {
    TCELLS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeywordIf("OR")) {
      TCELLS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    TCELLS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeywordIf("AND")) {
      TCELLS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeywordIf("NOT")) {
      // Counts toward the same depth budget as ParseExpr: NOT chains recurse
      // here without passing through ParseExpr.
      if (depth_ >= kMaxExprDepth) return Error("expression nesting too deep");
      ++depth_;
      auto child = ParseNot();
      --depth_;
      TCELLS_RETURN_IF_ERROR(child.status());
      return MakeUnary(UnaryOp::kNot, std::move(child).ValueOrDie());
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    TCELLS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    // IS [NOT] NULL
    if (ConsumeKeywordIf("IS")) {
      bool negated = ConsumeKeywordIf("NOT");
      TCELLS_RETURN_IF_ERROR(Expect("NULL"));
      return MakeIsNull(std::move(lhs), negated);
    }

    // [NOT] IN (...) / [NOT] BETWEEN a AND b / [NOT] LIKE p
    bool negated = false;
    if (IsKeyword(Peek(), "NOT") &&
        (IsKeyword(Peek(1), "IN") || IsKeyword(Peek(1), "BETWEEN") ||
         IsKeyword(Peek(1), "LIKE"))) {
      Advance();
      negated = true;
    }
    if (ConsumeKeywordIf("LIKE")) {
      TCELLS_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      return MakeLike(std::move(lhs), std::move(pattern), negated);
    }
    if (ConsumeKeywordIf("IN")) {
      TCELLS_RETURN_IF_ERROR(ExpectToken(TokenType::kLParen, "'('"));
      std::vector<ExprPtr> items;
      for (;;) {
        TCELLS_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
        items.push_back(std::move(item));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
      TCELLS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
      ExprPtr in = MakeInList(std::move(lhs), std::move(items));
      return negated ? MakeUnary(UnaryOp::kNot, std::move(in)) : in;
    }
    if (ConsumeKeywordIf("BETWEEN")) {
      TCELLS_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      TCELLS_RETURN_IF_ERROR(Expect("AND"));
      TCELLS_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      // Desugar to lhs >= lo AND lhs <= hi.
      ExprPtr range = MakeBinary(
          BinaryOp::kAnd, MakeBinary(BinaryOp::kGe, lhs, std::move(lo)),
          MakeBinary(BinaryOp::kLe, lhs, std::move(hi)));
      return negated ? MakeUnary(UnaryOp::kNot, std::move(range)) : range;
    }
    if (negated) return Error("expected IN, BETWEEN or LIKE after NOT");

    if (Peek().type == TokenType::kOperator) {
      const std::string& op = Peek().text;
      BinaryOp bop;
      if (op == "=") bop = BinaryOp::kEq;
      else if (op == "<>") bop = BinaryOp::kNe;
      else if (op == "<") bop = BinaryOp::kLt;
      else if (op == "<=") bop = BinaryOp::kLe;
      else if (op == ">") bop = BinaryOp::kGt;
      else if (op == ">=") bop = BinaryOp::kGe;
      else return lhs;
      Advance();
      TCELLS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(bop, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    TCELLS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (Peek().type == TokenType::kOperator &&
          (Peek().text == "+" || Peek().text == "-")) {
        BinaryOp op = Peek().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
        Advance();
        TCELLS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    TCELLS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Peek().type == TokenType::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().type == TokenType::kOperator && Peek().text == "/") {
        op = BinaryOp::kDiv;
      } else if (Peek().type == TokenType::kOperator && Peek().text == "%") {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      TCELLS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().type == TokenType::kOperator && Peek().text == "-") {
      Advance();
      // Same depth budget as ParseExpr: minus chains recurse here directly.
      if (depth_ >= kMaxExprDepth) return Error("expression nesting too deep");
      ++depth_;
      auto child = ParseUnary();
      --depth_;
      TCELLS_RETURN_IF_ERROR(child.status());
      return MakeUnary(UnaryOp::kNeg, std::move(child).ValueOrDie());
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral:
        Advance();
        return MakeLiteral(storage::Value::Int64(t.int_value));
      case TokenType::kDoubleLiteral:
        Advance();
        return MakeLiteral(storage::Value::Double(t.double_value));
      case TokenType::kStringLiteral:
        Advance();
        return MakeLiteral(storage::Value::String(t.text));
      case TokenType::kLParen: {
        Advance();
        TCELLS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        TCELLS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kIdentifier: {
        if (IsKeyword(t, "NULL")) {
          Advance();
          return MakeLiteral(storage::Value::Null());
        }
        if (IsKeyword(t, "TRUE")) {
          Advance();
          return MakeLiteral(storage::Value::Bool(true));
        }
        if (IsKeyword(t, "FALSE")) {
          Advance();
          return MakeLiteral(storage::Value::Bool(false));
        }
        // Aggregate call?
        auto agg = AggFromName(t.text);
        if (agg && Peek(1).type == TokenType::kLParen) {
          Advance();  // name
          Advance();  // (
          bool distinct = ConsumeKeywordIf("DISTINCT");
          ExprPtr arg;
          if (Peek().type == TokenType::kStar) {
            if (*agg != AggKind::kCount) {
              return Error("'*' argument is only valid for COUNT");
            }
            if (distinct) return Error("COUNT(DISTINCT *) is not valid");
            Advance();
          } else {
            TCELLS_ASSIGN_OR_RETURN(arg, ParseExpr());
          }
          TCELLS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
          return MakeAggregate(*agg, distinct, std::move(arg));
        }
        if (IsReserved(t.text)) {
          return Error("unexpected keyword in expression");
        }
        // Column reference: ident or ident.ident.
        std::string first = Advance().text;
        if (ConsumeIf(TokenType::kDot)) {
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected column name after '.'");
          }
          std::string second = Advance().text;
          return MakeColumnRef(std::move(first), std::move(second));
        }
        return MakeColumnRef("", std::move(first));
      }
      default:
        return Error("unexpected token in expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(const std::string& sql) {
  TCELLS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace tcells::sql
