// Abstract syntax tree for the paper's query dialect (§2.3):
//
//   SELECT <attribute(s) and/or aggregate function(s)>
//   FROM <table(s)>
//   [WHERE <condition(s)>]
//   [GROUP BY <grouping attribute(s)>]
//   [HAVING <grouping condition(s)>]
//   [SIZE <size condition(s)>]
//
// The SIZE clause is borrowed from StreamSQL windows: a maximum number of
// collected tuples and/or a collection duration.
#ifndef TCELLS_SQL_AST_H_
#define TCELLS_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace tcells::sql {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Aggregate functions. The paper (footnote 9) targets the distributive,
/// algebraic and holistic classes of [27]; MEDIAN is the holistic example.
enum class AggKind {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kMedian,
  kVariance,  ///< population variance (algebraic: sum, sum of squares, count)
  kStdDev,    ///< sqrt of the population variance
};

const char* AggKindToString(AggKind kind);

/// Binary operators, loosest-binding first is handled by the parser.
enum class BinaryOp {
  kOr, kAnd,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
};

enum class UnaryOp { kNot, kNeg };

const char* BinaryOpToString(BinaryOp op);

/// One AST node. A tagged struct rather than a class hierarchy: the dialect
/// is small and this keeps the evaluator a single switch.
struct Expr {
  enum class Kind {
    kLiteral,    ///< value
    kColumnRef,  ///< qualifier.column; bound_index set by the analyzer
    kUnary,      ///< op child[0]
    kBinary,     ///< child[0] op child[1]
    kInList,     ///< child[0] IN (child[1..])
    kIsNull,     ///< child[0] IS [NOT] NULL (negated via `negated`)
    kLike,       ///< child[0] [NOT] LIKE child[1]; '%%' any run, '_' one char
    kAggregate,  ///< agg_kind(child[0]) or COUNT(*); bound by analyzer
  };

  Kind kind;

  // kLiteral
  storage::Value literal;

  // kColumnRef
  std::string qualifier;  // table name or alias; may be empty
  std::string column;
  int bound_index = -1;   // index into the combined input row after analysis

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAnd;

  // kIsNull
  bool negated = false;

  // kAggregate
  AggKind agg_kind = AggKind::kCount;
  bool distinct = false;
  bool star = false;       // COUNT(*)
  int agg_slot = -1;       // index into the aggregate slot list after analysis

  std::vector<ExprPtr> children;

  /// Debug rendering (parenthesized).
  std::string ToString() const;
};

ExprPtr MakeLiteral(storage::Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeUnary(UnaryOp op, ExprPtr child);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeInList(ExprPtr needle, std::vector<ExprPtr> haystack);
ExprPtr MakeIsNull(ExprPtr child, bool negated);
ExprPtr MakeLike(ExprPtr value, ExprPtr pattern, bool negated);
ExprPtr MakeAggregate(AggKind kind, bool distinct, ExprPtr arg /*null => star*/);

/// FROM item: table name with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // empty if none

  const std::string& effective_name() const {
    return alias.empty() ? table : alias;
  }
};

/// SELECT item: expression with optional AS alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
};

/// SIZE clause: stop collecting when either bound is reached.
struct SizeClause {
  std::optional<uint64_t> max_tuples;
  std::optional<uint64_t> max_duration_ticks;  // simulation ticks
};

/// ORDER BY item: a result column (by name/alias or 1-based position).
struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// A parsed SELECT statement.
struct SelectStatement {
  /// SELECT DISTINCT: result rows are de-duplicated (querier-side, like
  /// ORDER BY).
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  ExprPtr where;                 // may be null
  std::vector<ExprPtr> group_by; // column refs
  ExprPtr having;                // may be null
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
  std::optional<SizeClause> size;

  std::string ToString() const;
};

}  // namespace tcells::sql

#endif  // TCELLS_SQL_AST_H_
