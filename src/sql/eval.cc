#include "sql/eval.h"

#include <cmath>

namespace tcells::sql {

using storage::Value;
using storage::ValueType;

namespace {

/// SQL LIKE matching: '%' matches any run (including empty), '_' exactly one
/// character. Iterative two-pointer algorithm with backtracking to the last
/// '%' — linear-ish and stack-safe for adversarial patterns.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> EvalBinary(const Expr& e, const EvalContext& ctx) {
  // AND/OR get short-circuit + NULL-tolerant handling.
  if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
    TCELLS_ASSIGN_OR_RETURN(Value lhs, Eval(*e.children[0], ctx));
    bool l = !lhs.is_null() && lhs.type() == ValueType::kBool && lhs.AsBool();
    if (e.binary_op == BinaryOp::kAnd && !l) return Value::Bool(false);
    if (e.binary_op == BinaryOp::kOr && l) return Value::Bool(true);
    TCELLS_ASSIGN_OR_RETURN(Value rhs, Eval(*e.children[1], ctx));
    bool r = !rhs.is_null() && rhs.type() == ValueType::kBool && rhs.AsBool();
    return Value::Bool(e.binary_op == BinaryOp::kAnd ? (l && r) : (l || r));
  }

  TCELLS_ASSIGN_OR_RETURN(Value lhs, Eval(*e.children[0], ctx));
  TCELLS_ASSIGN_OR_RETURN(Value rhs, Eval(*e.children[1], ctx));
  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  switch (e.binary_op) {
    case BinaryOp::kEq:
      return Value::Bool(lhs.Equals(rhs));
    case BinaryOp::kNe:
      return Value::Bool(!lhs.Equals(rhs));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      TCELLS_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
      switch (e.binary_op) {
        case BinaryOp::kLt: return Value::Bool(cmp < 0);
        case BinaryOp::kLe: return Value::Bool(cmp <= 0);
        case BinaryOp::kGt: return Value::Bool(cmp > 0);
        default: return Value::Bool(cmp >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      if (lhs.type() == ValueType::kInt64 && rhs.type() == ValueType::kInt64) {
        int64_t a = lhs.AsInt64(), b = rhs.AsInt64();
        switch (e.binary_op) {
          case BinaryOp::kAdd: return Value::Int64(a + b);
          case BinaryOp::kSub: return Value::Int64(a - b);
          default: return Value::Int64(a * b);
        }
      }
      TCELLS_ASSIGN_OR_RETURN(double a, lhs.ToDouble());
      TCELLS_ASSIGN_OR_RETURN(double b, rhs.ToDouble());
      switch (e.binary_op) {
        case BinaryOp::kAdd: return Value::Double(a + b);
        case BinaryOp::kSub: return Value::Double(a - b);
        default: return Value::Double(a * b);
      }
    }
    case BinaryOp::kDiv: {
      TCELLS_ASSIGN_OR_RETURN(double a, lhs.ToDouble());
      TCELLS_ASSIGN_OR_RETURN(double b, rhs.ToDouble());
      if (b == 0) return Value::Null();  // SQL: division by zero -> NULL here
      return Value::Double(a / b);
    }
    case BinaryOp::kMod: {
      if (lhs.type() != ValueType::kInt64 || rhs.type() != ValueType::kInt64) {
        return Status::InvalidArgument("% requires integer operands");
      }
      if (rhs.AsInt64() == 0) return Value::Null();
      return Value::Int64(lhs.AsInt64() % rhs.AsInt64());
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

}  // namespace

Result<Value> Eval(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kColumnRef: {
      if (e.bound_index < 0) {
        return Status::FailedPrecondition("unbound column ref: " + e.ToString());
      }
      size_t idx = static_cast<size_t>(e.bound_index);
      if (idx >= ctx.row->size()) {
        return Status::Internal("column index out of row bounds");
      }
      return ctx.row->at(idx);
    }
    case Expr::Kind::kUnary: {
      TCELLS_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], ctx));
      if (e.unary_op == UnaryOp::kNot) {
        if (v.is_null()) return Value::Null();
        if (v.type() != ValueType::kBool) {
          return Status::InvalidArgument("NOT requires a boolean");
        }
        return Value::Bool(!v.AsBool());
      }
      // Negation.
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt64) return Value::Int64(-v.AsInt64());
      TCELLS_ASSIGN_OR_RETURN(double d, v.ToDouble());
      return Value::Double(-d);
    }
    case Expr::Kind::kBinary:
      return EvalBinary(e, ctx);
    case Expr::Kind::kInList: {
      TCELLS_ASSIGN_OR_RETURN(Value needle, Eval(*e.children[0], ctx));
      if (needle.is_null()) return Value::Null();
      for (size_t i = 1; i < e.children.size(); ++i) {
        TCELLS_ASSIGN_OR_RETURN(Value v, Eval(*e.children[i], ctx));
        if (!v.is_null() && needle.Equals(v)) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case Expr::Kind::kIsNull: {
      TCELLS_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], ctx));
      return Value::Bool(e.negated ? !v.is_null() : v.is_null());
    }
    case Expr::Kind::kLike: {
      TCELLS_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], ctx));
      TCELLS_ASSIGN_OR_RETURN(Value p, Eval(*e.children[1], ctx));
      if (v.is_null() || p.is_null()) return Value::Null();
      if (v.type() != ValueType::kString || p.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE requires string operands");
      }
      bool matched = LikeMatch(v.AsString(), p.AsString());
      return Value::Bool(e.negated ? !matched : matched);
    }
    case Expr::Kind::kAggregate: {
      if (e.agg_slot < 0) {
        return Status::FailedPrecondition(
            "aggregate not rewritten to a slot: " + e.ToString());
      }
      size_t idx = ctx.agg_base + static_cast<size_t>(e.agg_slot);
      if (idx >= ctx.row->size()) {
        return Status::Internal("aggregate slot out of output-row bounds");
      }
      return ctx.row->at(idx);
    }
  }
  return Status::Internal("unhandled expr kind");
}

Result<bool> EvalPredicate(const Expr& e, const EvalContext& ctx) {
  TCELLS_ASSIGN_OR_RETURN(Value v, Eval(e, ctx));
  return !v.is_null() && v.type() == ValueType::kBool && v.AsBool();
}

}  // namespace tcells::sql
