// Local query execution over one Database. Three callers:
//  * a TDS evaluating WHERE + local internal joins and producing its
//    collection-phase tuples (§3.2 step 3);
//  * a TDS finalizing groups and applying HAVING in the filtering phase;
//  * the plaintext reference oracle used by tests and examples: run the whole
//    query over the union of all local databases and compare with what a
//    distributed protocol produced.
#ifndef TCELLS_SQL_EXECUTOR_H_
#define TCELLS_SQL_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "sql/aggregates.h"
#include "sql/analyzer.h"
#include "storage/table.h"

namespace tcells::sql {

/// Final result of a query as the querier sees it.
struct QueryResult {
  storage::Schema schema;
  std::vector<storage::Tuple> rows;

  /// Multiset equality, order-insensitive (protocols may emit groups in any
  /// order). Doubles are compared with a small relative tolerance because
  /// distributed AVG/SUM merge in a different order than local execution.
  bool SameRows(const QueryResult& other, double rel_tol = 1e-9) const;

  /// Pretty table rendering for examples and debugging.
  std::string ToString() const;
};

/// Cartesian product of the FROM tables filtered by WHERE — the combined rows
/// a TDS's local data contributes to the query.
Result<std::vector<storage::Tuple>> CombinedRows(const storage::Database& db,
                                                 const AnalyzedQuery& q);

/// Collection-phase tuples: for aggregation queries, rows of
/// [group values..., aggregate inputs...]; for plain SFW queries, the
/// projected SELECT rows. One entry per qualifying combined row.
Result<std::vector<storage::Tuple>> CollectionTuples(
    const storage::Database& db, const AnalyzedQuery& q);

/// Builds the final result rows from a completed aggregation: finalizes each
/// group, applies HAVING, projects the SELECT list. Groups come out in key
/// order (deterministic).
Result<QueryResult> FinalizeAggregation(const GroupedAggregation& agg,
                                        const AnalyzedQuery& q);

/// Sorts and truncates `result` per the query's ORDER BY / LIMIT. Called by
/// the querier after decryption (and by the oracle); a no-op when the query
/// has neither clause.
Status ApplyOrderAndLimit(const AnalyzedQuery& q, QueryResult* result);

/// Runs the entire query locally (the trusted oracle path).
Result<QueryResult> ExecuteLocal(const storage::Database& db,
                                 const AnalyzedQuery& q);

}  // namespace tcells::sql

#endif  // TCELLS_SQL_EXECUTOR_H_
