#include "analysis/exposure.h"

#include <algorithm>
#include <cmath>

namespace tcells::analysis {

double ColumnExposure(const std::vector<ObservedClass>& classes, double z) {
  if (classes.empty()) return 0;
  // Sort by observed cardinality and chain classes into anonymity clusters:
  // two adjacent classes are indistinguishable when their cardinality gap is
  // within z standard deviations of a Poisson count (z = 0: exact equality).
  std::vector<const ObservedClass*> sorted;
  sorted.reserve(classes.size());
  for (const auto& c : classes) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const ObservedClass* a, const ObservedClass* b) {
              return a->observed_cardinality < b->observed_cardinality;
            });

  double weighted = 0;
  uint64_t total_true = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i + 1;
    uint64_t candidates = sorted[i]->num_plaintext_values;
    while (j < sorted.size()) {
      double prev = static_cast<double>(sorted[j - 1]->observed_cardinality);
      double gap =
          static_cast<double>(sorted[j]->observed_cardinality) - prev;
      double threshold = z * std::sqrt(std::max(prev, 1.0));
      if (gap > threshold) break;
      candidates += sorted[j]->num_plaintext_values;
      ++j;
    }
    for (size_t k = i; k < j; ++k) {
      if (candidates > 0) {
        weighted += static_cast<double>(sorted[k]->true_tuples) /
                    static_cast<double>(candidates);
      }
      total_true += sorted[k]->true_tuples;
    }
    i = j;
  }
  if (total_true == 0) return 0;
  return weighted / static_cast<double>(total_true);
}

double PlaintextExposure() { return 1.0; }

namespace {
double ProductOfInverses(const std::vector<uint64_t>& distinct) {
  double prod = 1.0;
  for (uint64_t n : distinct) {
    if (n > 0) prod /= static_cast<double>(n);
  }
  return prod;
}
}  // namespace

double NDetExposure(const std::vector<uint64_t>& distinct_values_per_column) {
  return ProductOfInverses(distinct_values_per_column);
}

double CNoiseExposure(const std::vector<uint64_t>& distinct_values_per_column) {
  return ProductOfInverses(distinct_values_per_column);
}

double EdHistMinExposure(
    const std::vector<uint64_t>& distinct_values_per_column) {
  return ProductOfInverses(distinct_values_per_column);
}

std::vector<ObservedClass> ClassesForDetEnc(
    const std::map<int64_t, uint64_t>& value_frequencies) {
  std::vector<ObservedClass> classes;
  classes.reserve(value_frequencies.size());
  for (const auto& [value, freq] : value_frequencies) {
    classes.push_back({freq, freq, 1});
  }
  return classes;
}

std::vector<ObservedClass> ClassesForHistogram(
    const std::vector<BucketContent>& buckets) {
  std::vector<ObservedClass> classes;
  classes.reserve(buckets.size());
  for (const auto& b : buckets) {
    classes.push_back({b.tuples, b.tuples, b.values});
  }
  return classes;
}

std::vector<ObservedClass> ClassesForNoise(
    const std::map<int64_t, uint64_t>& true_frequencies,
    const std::map<int64_t, uint64_t>& fake_frequencies) {
  std::vector<ObservedClass> classes;
  for (const auto& [value, true_freq] : true_frequencies) {
    uint64_t fakes = 0;
    auto it = fake_frequencies.find(value);
    if (it != fake_frequencies.end()) fakes = it->second;
    classes.push_back({true_freq + fakes, true_freq, 1});
  }
  // Values that only exist as noise still form observable classes.
  for (const auto& [value, fake_freq] : fake_frequencies) {
    if (!true_frequencies.count(value)) {
      classes.push_back({fake_freq, 0, 1});
    }
  }
  return classes;
}

}  // namespace tcells::analysis
