#include "analysis/compromise.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace tcells::analysis {

namespace {

/// Probability that a uniformly assigned TDS is compromised.
double Q(const CompromiseParams& p) {
  if (p.available <= 0) return 0;
  return std::min(1.0, p.compromised / p.available);
}

/// 1 - (1-q)^m: probability that at least one of m independent uniform
/// assignments lands on a compromised TDS.
double AtLeastOne(double q, double m) {
  return 1.0 - std::pow(1.0 - q, std::max(0.0, m));
}

}  // namespace

CompromiseExposure SAggCompromise(const CompromiseParams& p) {
  CompromiseExposure e;
  double q = Q(p);
  e.raw_tuple_fraction = q;
  // A group's running aggregate passes through one TDS per merge level:
  // ~log_alpha(N_t/G) decryptions of (partials containing) that group.
  double levels =
      std::max(1.0, std::ceil(std::log(std::max(p.alpha, p.nt / p.groups)) /
                              std::log(p.alpha)));
  e.group_aggregate_fraction = AtLeastOne(q, levels);
  // The final merge root sees every group at once.
  e.all_groups_probability = q;
  return e;
}

CompromiseExposure NoiseCompromise(const CompromiseParams& p) {
  CompromiseExposure e;
  double q = Q(p);
  e.raw_tuple_fraction = q;
  // Each group is touched by n_NB step-1 TDSs plus one step-2 merger.
  double n_nb = std::max(
      1.0, std::min(std::sqrt((p.nf + 1.0) * p.nt / p.groups),
                    std::max(1.0, p.available / p.groups)));
  double per_group = AtLeastOne(q, n_nb + 1.0);
  e.group_aggregate_fraction = per_group;
  // No TDS ever holds more than one group's aggregate; seeing all G groups
  // requires G independent compromised assignments.
  e.all_groups_probability = std::pow(per_group, p.groups);
  return e;
}

CompromiseExposure EdHistCompromise(const CompromiseParams& p) {
  CompromiseExposure e;
  double q = Q(p);
  e.raw_tuple_fraction = q;
  double r = p.h * p.nt / p.groups;
  double n_ed =
      std::max(1.0, std::min(std::pow(r, 2.0 / 3.0),
                             std::max(1.0, p.available * p.h / p.groups)));
  double m_ed = std::max(
      1.0, std::min(std::cbrt(r), std::max(1.0, p.available / p.groups)));
  // A group's aggregates are touched by its bucket's n_ED step-1 TDSs and
  // its own m_ED + 1 mergers.
  double per_group = AtLeastOne(q, n_ed + m_ed + 1.0);
  e.group_aggregate_fraction = per_group;
  e.all_groups_probability = std::pow(per_group, p.groups);
  return e;
}

CompromiseExposure CompromiseFor(const std::string& protocol,
                                 const CompromiseParams& p) {
  if (protocol == "S_Agg") return SAggCompromise(p);
  if (protocol == "ED_Hist") return EdHistCompromise(p);
  if (protocol == "C_Noise") {
    CompromiseParams q = p;
    q.nf = std::max(0.0, p.groups - 1.0);
    return NoiseCompromise(q);
  }
  if (protocol.size() > 1 && protocol[0] == 'R') {
    CompromiseParams q = p;
    q.nf = std::strtod(protocol.c_str() + 1, nullptr);
    return NoiseCompromise(q);
  }
  return CompromiseExposure{};
}

}  // namespace tcells::analysis
