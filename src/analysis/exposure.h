// Information-exposure analysis (§5), after Damiani et al.'s IC-table
// coefficient: the probability that an attacker who knows the global
// plaintext distribution reconstructs plaintext/association from what the
// SSI observes.
//
// Two layers:
//  * closed-form coefficients for the schemes with uniform/obfuscated
//    observable distributions (nDet_Enc, C_Noise, ED_Hist at maximal
//    collision);
//  * an empirical estimator over observed equivalence classes, generalizing
//    the IC table: an attacker can only distinguish classes by their observed
//    cardinality, so a tuple's anonymity set is the union of the plaintext
//    candidates of all classes sharing its class's cardinality.
//    This reproduces the paper's endpoints exactly: Det_Enc (every class one
//    value, frequencies exposed) and flat histograms (all classes alike,
//    exposure 1/N_j).
#ifndef TCELLS_ANALYSIS_EXPOSURE_H_
#define TCELLS_ANALYSIS_EXPOSURE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"

namespace tcells::analysis {

/// What the SSI observed of one encrypted column/tag channel: one entry per
/// equivalence class (distinct ciphertext / hash value).
struct ObservedClass {
  uint64_t observed_cardinality = 0;  ///< occurrences seen by the SSI
  uint64_t true_tuples = 0;           ///< true tuples inside (for weighting)
  uint64_t num_plaintext_values = 1;  ///< distinct plaintexts behind it (m)
};

/// Exposure of one column channel from observed classes:
///   IC(class c) = 1 / sum_{c' ~ c} m(c')
///   epsilon     = sum_c true(c) * IC(c) / sum_c true(c)
/// where c' ~ c means the classes are indistinguishable by cardinality.
///
/// `z` selects the attacker's matching power: with z = 0 (default) only
/// exactly equal cardinalities are indistinguishable (the Damiani IC-table
/// model used for small exact examples like Fig 7). With z > 0, classes
/// whose sorted cardinalities differ by at most z*sqrt(card) chain into one
/// anonymity cluster — the statistical model appropriate for sampled /
/// noisy distributions, where an attacker cannot tell counts apart within
/// sampling error (this is what makes heavy random noise effective, §4.3).
double ColumnExposure(const std::vector<ObservedClass>& classes,
                      double z = 0.0);

/// epsilon of a fully plaintext table: 1 (no protection).
double PlaintextExposure();

/// epsilon under nDet_Enc for k columns with N_j distinct global values:
/// prod_j 1/N_j (§5).
double NDetExposure(const std::vector<uint64_t>& distinct_values_per_column);

/// C_Noise: flat by construction, same as nDet (§5).
double CNoiseExposure(const std::vector<uint64_t>& distinct_values_per_column);

/// ED_Hist best case (all values collide on one hash): prod_j 1/N_j (§5).
double EdHistMinExposure(
    const std::vector<uint64_t>& distinct_values_per_column);

/// Builds ObservedClass entries for a *deterministically* encrypted column:
/// every distinct plaintext value becomes one class of its frequency.
std::vector<ObservedClass> ClassesForDetEnc(
    const std::map<int64_t, uint64_t>& value_frequencies);

/// Builds ObservedClass entries for an equi-depth histogram channel: classes
/// are buckets; each carries the values mapped to it.
struct BucketContent {
  uint64_t tuples = 0;
  uint64_t values = 0;
};
std::vector<ObservedClass> ClassesForHistogram(
    const std::vector<BucketContent>& buckets);

/// Builds ObservedClass entries for Rnf_Noise: each true value's class is
/// inflated by the fakes that landed on it.
std::vector<ObservedClass> ClassesForNoise(
    const std::map<int64_t, uint64_t>& true_frequencies,
    const std::map<int64_t, uint64_t>& fake_frequencies);

}  // namespace tcells::analysis

#endif  // TCELLS_ANALYSIS_EXPOSURE_H_
