// Closed-form model for the compromised-TDS threat extension (the paper's
// future work item 2), complementing the empirical LeakLog measurements.
//
// Assumption: c of the A available compute TDSs are compromised and leak
// everything they decrypt; partition assignment is uniform. Three exposure
// quantities per protocol:
//   * raw tuples  — every collection tuple is decrypted by exactly one
//     first-step TDS, so the expected leaked fraction is c/A for every
//     protocol (the protocols differ downstream, not here);
//   * group aggregates — fraction of groups whose (partial or final)
//     aggregate some compromised TDS decrypts; depends on how many TDSs
//     touch each group;
//   * all-groups event — probability that a single compromised TDS sees the
//     aggregates of *every* group. S_Agg's merge root makes this a c/A
//     event, a structural single point of exposure the tag-based protocols
//     do not have.
#ifndef TCELLS_ANALYSIS_COMPROMISE_H_
#define TCELLS_ANALYSIS_COMPROMISE_H_

#include <string>

namespace tcells::analysis {

struct CompromiseParams {
  double nt = 1e6;       ///< collection tuples
  double groups = 1e3;   ///< G
  double available = 1e5;///< A: compute-phase TDS pool
  double compromised = 1;///< c: compromised TDSs within the pool
  double alpha = 3.6;    ///< S_Agg reduction factor
  double nf = 2;         ///< Rnf noise volume
  double h = 5;          ///< ED_Hist collision factor
};

struct CompromiseExposure {
  /// Expected fraction of raw collection tuples leaked in plaintext.
  double raw_tuple_fraction = 0;
  /// Expected fraction of groups whose aggregate is leaked.
  double group_aggregate_fraction = 0;
  /// Probability that one compromised TDS alone sees every group.
  double all_groups_probability = 0;
};

CompromiseExposure SAggCompromise(const CompromiseParams& p);
CompromiseExposure NoiseCompromise(const CompromiseParams& p);
CompromiseExposure EdHistCompromise(const CompromiseParams& p);

/// Dispatch by the bench protocol names ("S_Agg", "R2_Noise", "ED_Hist", ...).
CompromiseExposure CompromiseFor(const std::string& protocol,
                                 const CompromiseParams& p);

}  // namespace tcells::analysis

#endif  // TCELLS_ANALYSIS_COMPROMISE_H_
