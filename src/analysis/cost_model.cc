#include "analysis/cost_model.h"

#include <algorithm>
#include <cmath>

namespace tcells::analysis {

namespace {

/// Assignment waves when a step needs `demand` concurrent TDSs but only
/// `available` exist.
double Waves(double demand, double available) {
  if (available <= 0) return 1;
  return std::max(1.0, std::ceil(demand / available));
}

double Available(const CostParams& p) { return p.available_fraction * p.nt; }

/// Shared phase costs: collection is one tuple upload per TDS; filtering
/// spreads `covering_items` download+upload pairs over the available TDSs.
void FillCommonPhases(const CostParams& p, double covering_items,
                      CostMetrics* m) {
  m->collection_seconds_per_tds = p.tuple_seconds;
  double waves = Waves(covering_items, Available(p));
  m->filtering_seconds = waves * 2.0 * p.tuple_seconds;
}

}  // namespace

double SAggOptimalAlpha() { return 3.6; }

CostMetrics SAggCost(const CostParams& p) {
  CostMetrics m;
  const double a = p.alpha;
  const double ratio = std::max(a, p.nt / p.groups);  // at least one step
  const double n = std::max(1.0, std::ceil(std::log(ratio) / std::log(a)));
  const double avail = Available(p);

  // N_i = N_t / (G * a^i); the last step has a single TDS.
  double ptds = 0;
  double tq = 0;
  double merge_load_tuples = 0;  // tuples ingested in steps 2..n (a*G each)
  for (int i = 1; i <= static_cast<int>(n); ++i) {
    double ni = std::max(1.0, p.nt / (p.groups * std::pow(a, i)));
    ptds += ni;
    // Per step: download a*G pairs, upload G pairs (t_i + t_i').
    tq += Waves(ni, avail) * (a + 1.0) * p.groups * p.tuple_seconds;
    if (i >= 2) merge_load_tuples += a * p.groups * ni;
  }

  // Load_Q = (1 + 2*sum a^-i) * N_t * s_t (§6.1.1): the raw tuples once,
  // plus each merge step's downloads and uploads.
  double geo = 0;
  for (int i = 1; i <= static_cast<int>(n); ++i) geo += std::pow(a, -i);
  m.load_bytes = (1.0 + 2.0 * geo) * p.nt * p.tuple_bytes;

  m.ptds = ptds;
  m.tq_seconds = tq;
  m.tlocal_seconds =
      (p.nt + merge_load_tuples) * p.tuple_seconds / std::max(1.0, ptds);
  FillCommonPhases(p, p.groups, &m);
  // §4.2: the partial aggregate structure (one state per group) must fit in
  // the device RAM, or S_Agg's merging becomes infeasible on this hardware.
  m.ram_feasible = p.groups * p.agg_state_bytes <= p.ram_bytes;
  return m;
}

namespace {

CostMetrics NoiseCost(const CostParams& p, double nf) {
  CostMetrics m;
  const double avail = Available(p);
  const double noisy_nt = (nf + 1.0) * p.nt;
  // Optimal n_NB = sqrt((nf+1) N_t / G) (§6.1.2, Cauchy), bounded by how many
  // TDSs can actually be devoted to each group: with only A available TDSs,
  // at most A/G can cooperate per group (one TDS handles several groups
  // sequentially otherwise — that sequencing shows up as a larger per-TDS
  // ingest in step 1, which is how scarcity slows the protocol down).
  const double n_nb =
      std::max(1.0, std::min(std::sqrt(noisy_nt / p.groups),
                             std::max(1.0, avail / p.groups)));

  // Step 1: n_NB TDSs per group, each ingesting (nf+1)N_t/(n_NB G) tuples.
  double t1 = (noisy_nt / (n_nb * p.groups) + 1.0) * p.tuple_seconds;
  // Step 2: one TDS per group merges the n_NB partials.
  double t2 = (n_nb + 1.0) * p.tuple_seconds;

  m.tq_seconds = t1 + t2;
  m.ptds = (n_nb + 1.0) * p.groups;
  m.load_bytes = (noisy_nt + 2.0 * n_nb * p.groups + p.groups) * p.tuple_bytes;
  m.tlocal_seconds = noisy_nt / p.groups * p.tuple_seconds;
  FillCommonPhases(p, p.groups, &m);
  return m;
}

}  // namespace

CostMetrics RnfNoiseCost(const CostParams& p) { return NoiseCost(p, p.nf); }

CostMetrics CNoiseCost(const CostParams& p) {
  double nd = p.domain_cardinality > 0 ? p.domain_cardinality : p.groups;
  return NoiseCost(p, std::max(0.0, nd - 1.0));
}

CostMetrics EdHistCost(const CostParams& p) {
  CostMetrics m;
  const double avail = Available(p);
  const double r = p.h * p.nt / p.groups;  // tuples per bucket
  // Optimal fan-outs (§6.1.3), bounded by the TDSs available per bucket
  // (A / #buckets = A·h/G) and per group (A/G) respectively.
  const double n_ed =
      std::max(1.0, std::min(std::pow(r, 2.0 / 3.0),
                             std::max(1.0, avail * p.h / p.groups)));
  const double m_ed = std::max(
      1.0, std::min(std::cbrt(r), std::max(1.0, avail / p.groups)));

  // Step 1: n_ED TDSs per bucket ingest r/n_ED tuples and emit one partial
  // per group of the bucket (h uploads).
  double t1 = (r / n_ed + p.h) * p.tuple_seconds;
  // Step 2: m_ED TDSs per group merge n_ED/m_ED partials each.
  double t2 = (n_ed / m_ed + 1.0) * p.tuple_seconds;
  // Step 3: one TDS per group merges the m_ED partials.
  double t3 = (m_ed + 1.0) * p.tuple_seconds;

  m.tq_seconds = t1 + t2 + t3;
  m.ptds = (n_ed / p.h + m_ed + 1.0) * p.groups;
  m.load_bytes =
      (p.nt + 2.0 * n_ed * p.groups + 2.0 * m_ed * p.groups + p.groups) *
      p.tuple_bytes;
  m.tlocal_seconds = (p.nt + n_ed * p.groups + m_ed * p.groups) *
                     p.tuple_seconds / std::max(1.0, m.ptds);
  FillCommonPhases(p, p.groups, &m);
  return m;
}

CostMetrics CostFor(const std::string& protocol, CostParams p) {
  if (protocol == "S_Agg") return SAggCost(p);
  if (protocol == "C_Noise") return CNoiseCost(p);
  if (protocol == "ED_Hist") return EdHistCost(p);
  if (protocol.size() > 1 && protocol[0] == 'R') {
    // "R<nf>_Noise"
    p.nf = std::strtod(protocol.c_str() + 1, nullptr);
    return RnfNoiseCost(p);
  }
  return CostMetrics{};
}

}  // namespace tcells::analysis
