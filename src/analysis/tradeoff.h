// Fig 11: qualitative worst-to-best ranking of the protocols along six axes,
// derived from the cost model (four performance axes) and the exposure
// analysis (confidentiality), plus the elasticity conclusion of §6.3.
#ifndef TCELLS_ANALYSIS_TRADEOFF_H_
#define TCELLS_ANALYSIS_TRADEOFF_H_

#include <string>
#include <vector>

#include "analysis/cost_model.h"

namespace tcells::analysis {

/// The comparison axes of Fig 11.
enum class TradeoffAxis {
  kFeasibilityLocalResource,  ///< T_local (feasibility on low-end TDSs)
  kResponsivenessLargeG,      ///< T_Q at large G
  kResponsivenessSmallG,      ///< T_Q at small G
  kGlobalResource,            ///< Load_Q
  kConfidentiality,           ///< exposure coefficient
  kElasticity,                ///< T_Q sensitivity to available TDSs
};

const char* TradeoffAxisToString(TradeoffAxis axis);

/// Protocols compared in Fig 11 (model names).
std::vector<std::string> ComparedProtocols();

/// Worst-to-best ordering of ComparedProtocols() along `axis`, computed from
/// the cost model at the paper's reference parameters (confidentiality and
/// elasticity use the analysis of §5/§6.3).
std::vector<std::string> RankAxis(TradeoffAxis axis, const CostParams& base);

/// Full Fig 11 rendering.
std::string RenderTradeoffFigure(const CostParams& base);

}  // namespace tcells::analysis

#endif  // TCELLS_ANALYSIS_TRADEOFF_H_
