// Analytical cost model of §6.1, calibrated by the device model of §6.2.
//
// For each protocol it computes the four metrics of the evaluation:
//   P_TDS   — number of TDSs participating in the computation (parallelism);
//   Load_Q  — global resource consumption in bytes (scalability);
//   T_Q     — query response time, aggregation phase only (responsiveness);
//   T_local — average per-TDS compute time (feasibility).
//
// The model follows the paper's formulas step by step, with one addition:
// when a phase demands more concurrent TDSs than are available, its time is
// multiplied by the number of assignment waves (this is what makes the
// elasticity sweeps of Fig 10 i/e/j come out).
#ifndef TCELLS_ANALYSIS_COST_MODEL_H_
#define TCELLS_ANALYSIS_COST_MODEL_H_

#include <string>

namespace tcells::analysis {

/// Model inputs (§6.3 fixed values as defaults).
struct CostParams {
  double nt = 1e6;        ///< N_t: tuples (== TDSs) in the collection phase
  double groups = 1e3;    ///< G: number of groups
  double tuple_bytes = 16;///< s_t: size of one encrypted tuple
  double tuple_seconds = 16e-6;  ///< T_t: per-tuple TDS cost (transfer+crypto+CPU)
  double alpha = 3.6;     ///< S_Agg reduction factor (3.6 is optimal)
  double nf = 2;          ///< Rnf_Noise: fakes per true tuple
  double domain_cardinality = 0;  ///< C_Noise: n_d; 0 means n_d == G
  double h = 5;           ///< ED_Hist: groups per hash bucket
  double available_fraction = 0.1;  ///< TDSs available for compute phases / N_t
  double ram_bytes = 64 * 1024;     ///< TDS RAM for the partial aggregate (§6.2)
  double agg_state_bytes = 48;      ///< per-group in-RAM aggregate state size
};

/// Model outputs.
struct CostMetrics {
  double ptds = 0;
  double load_bytes = 0;
  double tq_seconds = 0;       // aggregation phase (the paper's T_Q)
  double tlocal_seconds = 0;
  /// Per-TDS cost of producing its collection tuple(s) (the wall-clock of
  /// this phase is application-dependent, §2.3).
  double collection_seconds_per_tds = 0;
  /// Filtering phase: covering result spread over the available TDSs.
  double filtering_seconds = 0;
  /// S_Agg only: false when G * agg_state_bytes exceeds the device RAM —
  /// the feasibility limit of §4.2 (tag-based protocols keep per-partition
  /// group counts small and are unaffected).
  bool ram_feasible = true;
};

/// §6.1.1. Optimal reduction factor: alpha ≈ 3.6 minimizes
/// (alpha+1)·log_alpha(N_t/G).
CostMetrics SAggCost(const CostParams& p);
double SAggOptimalAlpha();

/// §6.1.2, white-noise flavour. The optimal n_NB is sqrt((nf+1)·N_t/G).
CostMetrics RnfNoiseCost(const CostParams& p);

/// §6.1.2 with complementary-domain noise: nf = n_d - 1.
CostMetrics CNoiseCost(const CostParams& p);

/// §6.1.3. Optimal n_ED = (h·N_t/G)^(2/3), m_ED = (h·N_t/G)^(1/3).
CostMetrics EdHistCost(const CostParams& p);

/// Dispatch by protocol name used in benches: "S_Agg", "R2_Noise",
/// "R1000_Noise", "C_Noise", "ED_Hist" (Rn sets nf accordingly).
CostMetrics CostFor(const std::string& protocol, CostParams p);

}  // namespace tcells::analysis

#endif  // TCELLS_ANALYSIS_COST_MODEL_H_
