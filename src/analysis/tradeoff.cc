#include "analysis/tradeoff.h"

#include <algorithm>
#include <sstream>

namespace tcells::analysis {

const char* TradeoffAxisToString(TradeoffAxis axis) {
  switch (axis) {
    case TradeoffAxis::kFeasibilityLocalResource:
      return "Feasibility, Local Resource Consumption";
    case TradeoffAxis::kResponsivenessLargeG:
      return "Responsiveness (large G)";
    case TradeoffAxis::kResponsivenessSmallG:
      return "Responsiveness (small G)";
    case TradeoffAxis::kGlobalResource:
      return "Global Resource Consumption";
    case TradeoffAxis::kConfidentiality:
      return "Confidentiality";
    case TradeoffAxis::kElasticity:
      return "Elasticity";
  }
  return "?";
}

std::vector<std::string> ComparedProtocols() {
  return {"S_Agg", "R2_Noise", "R1000_Noise", "C_Noise", "ED_Hist"};
}

namespace {

/// Ranks protocols worst (largest metric) to best (smallest).
std::vector<std::string> RankByMetric(
    const CostParams& params,
    double (*metric)(const CostMetrics&)) {
  std::vector<std::pair<double, std::string>> scored;
  for (const auto& name : ComparedProtocols()) {
    CostMetrics m = CostFor(name, params);
    scored.emplace_back(metric(m), name);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  for (const auto& [score, name] : scored) out.push_back(name);
  return out;
}

double TlocalMetric(const CostMetrics& m) { return m.tlocal_seconds; }
double TqMetric(const CostMetrics& m) { return m.tq_seconds; }
double LoadMetric(const CostMetrics& m) { return m.load_bytes; }

}  // namespace

std::vector<std::string> RankAxis(TradeoffAxis axis, const CostParams& base) {
  switch (axis) {
    case TradeoffAxis::kFeasibilityLocalResource:
      return RankByMetric(base, TlocalMetric);
    case TradeoffAxis::kResponsivenessLargeG: {
      // Evaluated at abundant availability so the axis reflects the
      // protocols' intrinsic parallel structure, not resource starvation
      // (starvation is the Elasticity axis).
      CostParams p = base;
      p.groups = 1e5;
      p.available_fraction = 1.0;
      return RankByMetric(p, TqMetric);
    }
    case TradeoffAxis::kResponsivenessSmallG: {
      CostParams p = base;
      p.groups = 5;
      p.available_fraction = 1.0;
      return RankByMetric(p, TqMetric);
    }
    case TradeoffAxis::kGlobalResource:
      return RankByMetric(base, LoadMetric);
    case TradeoffAxis::kConfidentiality:
      // §5's conclusion: noise/histogram schemes must pay (huge noise volume,
      // strong collision) to match S_Agg's exposure; S_Agg is best by
      // construction. Orderings as in Fig 11.
      return {"R2_Noise", "C_Noise", "R1000_Noise", "ED_Hist", "S_Agg"};
    case TradeoffAxis::kElasticity: {
      // Relative T_Q degradation when availability drops 100% -> 1%;
      // worst = degrades most... S_Agg degrades least but also cannot
      // exploit extra TDSs — the paper ranks it worst on elasticity because
      // its parallelism is capped by G regardless of resources. Rank by
      // inability to convert resources into speed: ratio of T_Q(abundant)
      // to T_Q(scarce) — smaller ratio = less elastic = worse.
      std::vector<std::pair<double, std::string>> scored;
      for (const auto& name : ComparedProtocols()) {
        CostParams scarce = base;
        scarce.available_fraction = 0.01;
        CostParams abundant = base;
        abundant.available_fraction = 1.0;
        double gain = CostFor(name, scarce).tq_seconds /
                      std::max(1e-12, CostFor(name, abundant).tq_seconds);
        scored.emplace_back(gain, name);
      }
      std::stable_sort(scored.begin(), scored.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      std::vector<std::string> out;
      for (const auto& [score, name] : scored) out.push_back(name);
      return out;
    }
  }
  return {};
}

std::string RenderTradeoffFigure(const CostParams& base) {
  std::ostringstream os;
  for (TradeoffAxis axis :
       {TradeoffAxis::kFeasibilityLocalResource,
        TradeoffAxis::kResponsivenessLargeG,
        TradeoffAxis::kResponsivenessSmallG, TradeoffAxis::kGlobalResource,
        TradeoffAxis::kConfidentiality, TradeoffAxis::kElasticity}) {
    os << TradeoffAxisToString(axis) << "  (worst -> best)\n  ";
    auto ranking = RankAxis(axis, base);
    for (size_t i = 0; i < ranking.size(); ++i) {
      if (i) os << "  ->  ";
      os << ranking[i];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace tcells::analysis
