// The querying protocols of the paper, over a common 3-phase engine:
//
//   collection  -> aggregation -> filtering          (generic protocol, §4.1)
//
//  * BasicSfw  (§3.2)  — Select-From-Where, no aggregation phase.
//  * SAgg      (§4.2)  — nDet_Enc everywhere; iterative random-partition
//                        merging with reduction factor alpha (optimum 3.6).
//  * RnfNoise  (§4.3)  — Det_Enc(A_G) routing tags + nf random fake tuples
//                        per true tuple.
//  * CNoise    (§4.3)  — Det_Enc(A_G) routing tags + complementary-domain
//                        noise (flat mixed distribution by construction).
//  * EdHist    (§4.4)  — equi-depth histogram bucket hashes, two aggregation
//                        steps (bucket-level then group-level).
#ifndef TCELLS_PROTOCOL_PROTOCOLS_H_
#define TCELLS_PROTOCOL_PROTOCOLS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "protocol/querier.h"
#include "protocol/run_context.h"
#include "sql/executor.h"

namespace tcells::protocol {

enum class ProtocolKind { kBasicSfw, kSAgg, kRnfNoise, kCNoise, kEdHist };

const char* ProtocolKindToString(ProtocolKind kind);

/// Strategy interface: how to encode the collection phase and how to reduce
/// the collected items to the covering result.
class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual ProtocolKind kind() const = 0;
  const char* name() const { return ProtocolKindToString(kind()); }

  /// Builds the collection-phase configuration distributed to TDSs.
  virtual Result<tds::CollectionConfig> MakeCollectionConfig(
      RunContext& ctx, const sql::AnalyzedQuery& query) = 0;

  /// Aggregation phase: collected items -> covering result (one encrypted
  /// aggregate item per group). Identity for BasicSfw.
  virtual Result<std::vector<ssi::EncryptedItem>> RunAggregation(
      RunContext& ctx, const sql::AnalyzedQuery& query,
      const tds::CollectionConfig& config,
      std::vector<ssi::EncryptedItem> items) = 0;
};

/// §3.2: no aggregation; the filtering phase drops dummy tuples.
class BasicSfwProtocol : public Protocol {
 public:
  ProtocolKind kind() const override { return ProtocolKind::kBasicSfw; }
  Result<tds::CollectionConfig> MakeCollectionConfig(
      RunContext& ctx, const sql::AnalyzedQuery& query) override;
  Result<std::vector<ssi::EncryptedItem>> RunAggregation(
      RunContext& ctx, const sql::AnalyzedQuery& query,
      const tds::CollectionConfig& config,
      std::vector<ssi::EncryptedItem> items) override;
};

/// §4.2: Secure Aggregation.
class SAggProtocol : public Protocol {
 public:
  ProtocolKind kind() const override { return ProtocolKind::kSAgg; }
  Result<tds::CollectionConfig> MakeCollectionConfig(
      RunContext& ctx, const sql::AnalyzedQuery& query) override;
  Result<std::vector<ssi::EncryptedItem>> RunAggregation(
      RunContext& ctx, const sql::AnalyzedQuery& query,
      const tds::CollectionConfig& config,
      std::vector<ssi::EncryptedItem> items) override;
};

/// §4.3: both noise flavours, selected by `complementary`.
class NoiseProtocol : public Protocol {
 public:
  /// `group_domain`: the known A_G domain. Rnf_Noise draws random fakes from
  /// it; C_Noise enumerates it.
  NoiseProtocol(bool complementary,
                std::shared_ptr<const std::vector<storage::Tuple>> group_domain)
      : complementary_(complementary), group_domain_(std::move(group_domain)) {}

  ProtocolKind kind() const override {
    return complementary_ ? ProtocolKind::kCNoise : ProtocolKind::kRnfNoise;
  }
  Result<tds::CollectionConfig> MakeCollectionConfig(
      RunContext& ctx, const sql::AnalyzedQuery& query) override;
  Result<std::vector<ssi::EncryptedItem>> RunAggregation(
      RunContext& ctx, const sql::AnalyzedQuery& query,
      const tds::CollectionConfig& config,
      std::vector<ssi::EncryptedItem> items) override;

 private:
  bool complementary_;
  std::shared_ptr<const std::vector<storage::Tuple>> group_domain_;
};

/// §4.4: equi-depth histogram protocol. Needs the (approximate) A_G
/// distribution, normally produced by the discovery protocol (discovery.h).
class EdHistProtocol : public Protocol {
 public:
  EdHistProtocol(std::shared_ptr<const tds::EquiDepthHistogram> histogram)
      : histogram_(std::move(histogram)) {}

  /// Convenience: builds the histogram from a frequency map.
  static std::unique_ptr<EdHistProtocol> FromDistribution(
      const std::map<storage::Tuple, uint64_t>& freq, size_t num_buckets);

  ProtocolKind kind() const override { return ProtocolKind::kEdHist; }
  Result<tds::CollectionConfig> MakeCollectionConfig(
      RunContext& ctx, const sql::AnalyzedQuery& query) override;
  Result<std::vector<ssi::EncryptedItem>> RunAggregation(
      RunContext& ctx, const sql::AnalyzedQuery& query,
      const tds::CollectionConfig& config,
      std::vector<ssi::EncryptedItem> items) override;

  const tds::EquiDepthHistogram& histogram() const { return *histogram_; }

 private:
  std::shared_ptr<const tds::EquiDepthHistogram> histogram_;
};

/// Everything a finished run produced.
struct RunOutcome {
  sql::QueryResult result;
  RunMetrics metrics;
  ssi::AdversaryView adversary;
  /// The query's span tree, when the run was handed a Tracer (null
  /// otherwise). See obs/trace.h for the determinism contract.
  std::shared_ptr<const obs::Trace> trace;
};

/// Filtering phase (§3.2 steps 9-12): spreads the covering result over the
/// available TDSs, which drop dummies / finalize groups / apply HAVING and
/// re-encrypt result rows under k1. Shared by RunQuery and QuerySession.
/// `config` carries the run's collection configuration through to the TDSs —
/// in dynamic key mode its key posting selects the per-query session keys
/// the result rows are re-encrypted under.
Result<std::vector<ssi::EncryptedItem>> RunFilteringPhase(
    RunContext& ctx, const sql::AnalyzedQuery& query,
    const tds::CollectionConfig& config,
    std::vector<ssi::EncryptedItem> covering);

/// Opt-in deprecation marker for legacy entry points. Off by default so the
/// -Werror sanitizer builds (and the internal callers that legitimately
/// remain) stay clean; define TCELLS_ENABLE_DEPRECATION_WARNINGS to have the
/// compiler flag every remaining direct use.
#if defined(TCELLS_ENABLE_DEPRECATION_WARNINGS)
#define TCELLS_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define TCELLS_DEPRECATED(msg)
#endif

/// Executes one query end to end: post -> collection over the whole fleet
/// (bounded by the SIZE/DURATION clauses) -> protocol aggregation ->
/// filtering -> result decryption by the querier.
///
/// This is a thin wrapper over the QuerySession path (session.h): it submits
/// the single query to a fresh session and runs it to completion, so the
/// single-query and concurrent-query modes share one engine. The optional
/// `telemetry` sinks receive the run's metrics and span tree (outcome.trace).
/// Defined in session.cc.
///
/// DEPRECATED: new code should create a `tcells::Engine` and use
/// Engine::Run / Engine::Submit (tcells/engine.h) — the facade owns the
/// (possibly sharded) SSI stack, validates configuration once at
/// construction, and schedules concurrent queries. This free function
/// remains for the engine's own internals and for existing callers.
TCELLS_DEPRECATED("use tcells::Engine::Run or Engine::Submit instead")
Result<RunOutcome> RunQuery(Protocol& protocol, Fleet* fleet,
                            const Querier& querier, uint64_t query_id,
                            const std::string& sql,
                            const sim::DeviceModel& device,
                            const RunOptions& options,
                            obs::Telemetry telemetry = {},
                            net::SsiApi* client = nullptr);

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_PROTOCOLS_H_
