// Fleet: the population of TDSs participating in a deployment, plus the
// availability model (§6.3 varies the fraction of TDSs available for the
// compute phases between 1% and 100%).
#ifndef TCELLS_PROTOCOL_FLEET_H_
#define TCELLS_PROTOCOL_FLEET_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tds/tds.h"

namespace tcells::protocol {

class Fleet {
 public:
  void Add(std::unique_ptr<tds::TrustedDataServer> server) {
    servers_.push_back(std::move(server));
  }

  size_t size() const { return servers_.size(); }
  tds::TrustedDataServer* at(size_t i) { return servers_[i].get(); }
  const tds::TrustedDataServer* at(size_t i) const { return servers_[i].get(); }

  /// A random subset of `fraction` of the fleet (at least one when the fleet
  /// is non-empty; empty on an empty fleet), modeling which TDSs happen to
  /// be connected for a compute phase.
  std::vector<tds::TrustedDataServer*> SampleAvailable(double fraction,
                                                       Rng* rng);

 private:
  std::vector<std::unique_ptr<tds::TrustedDataServer>> servers_;
};

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_FLEET_H_
