#include "protocol/session.h"

#include <algorithm>

namespace tcells::protocol {

using ssi::EncryptedItem;

Status QuerySession::Submit(uint64_t query_id, const Querier* querier,
                            Protocol* protocol, const std::string& sql) {
  return SubmitInternal(query_id, std::nullopt, querier, protocol, sql);
}

Status QuerySession::SubmitPersonal(uint64_t query_id, uint64_t tds_id,
                                    const Querier* querier,
                                    Protocol* protocol,
                                    const std::string& sql) {
  return SubmitInternal(query_id, tds_id, querier, protocol, sql);
}

Status QuerySession::SubmitInternal(uint64_t query_id,
                                    std::optional<uint64_t> tds_id,
                                    const Querier* querier,
                                    Protocol* protocol,
                                    const std::string& sql) {
  if (fleet_->size() == 0) return Status::InvalidArgument("empty fleet");
  if (queries_.count(query_id)) {
    return Status::InvalidArgument("duplicate query id");
  }

  PendingQuery pending;
  pending.querier = querier;
  pending.protocol = protocol;
  pending.sql = sql;
  pending.personal_tds = tds_id;
  TCELLS_ASSIGN_OR_RETURN(
      pending.analyzed,
      querier->AnalyzeAgainst(sql, fleet_->at(0)->db().catalog()));

  // Each query gets its own context (metrics, rng stream) and its own
  // storage area inside the hub.
  RunOptions opts = options_;
  opts.seed = options_.seed + query_id * 0x9e37;
  Rng post_rng(opts.seed ^ 0xabcdef);
  TCELLS_ASSIGN_OR_RETURN(ssi::QueryPost post,
                          querier->MakePost(query_id, sql, &post_rng));
  if (tds_id) {
    TCELLS_RETURN_IF_ERROR(hub_.PostPersonal(*tds_id, std::move(post)));
  } else {
    TCELLS_RETURN_IF_ERROR(hub_.PostGlobal(std::move(post)));
  }
  TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(query_id));
  pending.ctx = std::make_unique<RunContext>(fleet_, storage, device_, opts);
  TCELLS_ASSIGN_OR_RETURN(
      pending.config,
      pending.protocol->MakeCollectionConfig(*pending.ctx, pending.analyzed));
  queries_.emplace(query_id, std::move(pending));
  return Status::OK();
}

Result<std::map<uint64_t, RunOutcome>> QuerySession::RunAll(
    uint64_t max_ticks) {
  Rng session_rng(options_.seed ^ 0x5e5510f);
  const bool tick_mode = max_ticks > 1;

  // ---- Interleaved collection over the querybox hub ----
  //
  // Per tick: connectors and their pending downloads are decided serially
  // (hub state is single-threaded), each (connector, query) pair gets a
  // private Rng stream forked from its query's context in a fixed order,
  // local evaluation fans out across the worker threads — parallel across
  // connectors, serial within one connector, since a TDS serves its queries
  // one after another — and the contributions are folded into the per-query
  // storage areas serially. Bit-identical for any thread count.
  ParallelExecutor session_executor(options_.num_threads);
  for (uint64_t tick = 0; tick < max_ticks; ++tick) {
    bool any_open = false;
    for (auto& [id, q] : queries_) {
      TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(id));
      if (!storage->SizeReached()) any_open = true;
    }
    if (!any_open) break;

    std::vector<size_t> order(fleet_->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    session_rng.Shuffle(&order);

    // One serve = one query downloaded by one connecting TDS.
    struct Serve {
      const ssi::QueryPost* post;
      PendingQuery* query;
      Rng rng{0};
      std::vector<EncryptedItem> items;
    };
    struct Connector {
      tds::TrustedDataServer* server;
      std::vector<Serve> serves;
    };
    std::vector<Connector> connectors;
    for (size_t idx : order) {
      if (tick_mode &&
          !session_rng.NextBool(options_.connect_prob_per_tick)) {
        continue;
      }
      tds::TrustedDataServer* server = fleet_->at(idx);
      Connector connector;
      connector.server = server;
      // Step 2: the connecting TDS downloads its pending queries.
      for (const ssi::QueryPost* post : hub_.Fetch(server->id())) {
        auto it = queries_.find(post->query_id);
        if (it == queries_.end()) continue;
        Serve serve;
        serve.post = post;
        serve.query = &it->second;
        serve.rng = it->second.ctx->rng().Fork();
        connector.serves.push_back(std::move(serve));
      }
      if (!connector.serves.empty()) {
        connectors.push_back(std::move(connector));
      }
    }

    TCELLS_RETURN_IF_ERROR(session_executor.ForEachIndex(
        connectors.size(), [&](size_t i) -> Status {
          Connector& connector = connectors[i];
          for (Serve& serve : connector.serves) {
            TCELLS_ASSIGN_OR_RETURN(
                serve.items,
                connector.server->ProcessCollection(
                    *serve.post, serve.query->config, &serve.rng));
          }
          return Status::OK();
        }));

    bool any_tick_work = false;
    for (Connector& connector : connectors) {
      for (Serve& serve : connector.serves) {
        TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage,
                                hub_.StorageFor(serve.post->query_id));
        if (storage->SizeReached()) {
          hub_.Acknowledge(connector.server->id(), serve.post->query_id);
          continue;
        }
        uint64_t bytes = 0;
        for (const auto& item : serve.items) bytes += item.WireSize();
        serve.query->ctx->RecordCollection(connector.server->id(), bytes,
                                           serve.items.size());
        serve.query->ctx->metrics().collection_participants += 1;
        storage->ReceiveCollectionItems(std::move(serve.items));
        hub_.Acknowledge(connector.server->id(), serve.post->query_id);
        any_tick_work = true;
      }
    }
    for (auto& [id, q] : queries_) q.ctx->metrics().collection_ticks += 1;
    if (!any_tick_work && !tick_mode) break;
  }

  // ---- Per-query aggregation + filtering + decryption ----
  std::map<uint64_t, RunOutcome> outcomes;
  for (auto& [id, q] : queries_) {
    TCELLS_ASSIGN_OR_RETURN(ssi::Ssi * storage, hub_.StorageFor(id));
    std::vector<EncryptedItem> covering = storage->TakeCollected();
    TCELLS_ASSIGN_OR_RETURN(
        covering, q.protocol->RunAggregation(*q.ctx, q.analyzed, q.config,
                                             std::move(covering)));
    storage->ObserveAggregationItems(covering);
    TCELLS_ASSIGN_OR_RETURN(
        std::vector<EncryptedItem> result_items,
        RunFilteringPhase(*q.ctx, q.analyzed, std::move(covering)));
    storage->ObserveFilteringItems(result_items);

    RunOutcome outcome;
    TCELLS_ASSIGN_OR_RETURN(outcome.result,
                            q.querier->DecryptResult(q.analyzed, result_items));
    outcome.metrics = q.ctx->metrics();
    outcome.adversary = storage->adversary_view();
    outcomes.emplace(id, std::move(outcome));
  }
  for (const auto& [id, outcome] : outcomes) hub_.Retire(id);
  queries_.clear();
  return outcomes;
}

}  // namespace tcells::protocol
