#include "protocol/session.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>

namespace tcells::protocol {

using ssi::EncryptedItem;

namespace {

double WallMicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Transport failures degrade gracefully (the TDS/querier just misses this
/// exchange); anything else aborts the run.
bool IsTransportError(const Status& s) {
  return s.IsUnavailable() || s.IsDeadlineExceeded();
}

}  // namespace

QuerySession::QuerySession(Fleet* fleet, const sim::DeviceModel& device,
                           RunOptions options, obs::Telemetry telemetry,
                           net::SsiApi* client)
    : fleet_(fleet),
      device_(device),
      options_(options),
      telemetry_(telemetry),
      client_(client) {
  if (client_ == nullptr) {
    // Private SSI behind the in-process loopback transport: same frame
    // codecs and RPC surface as TCP, no sockets.
    owned_node_ = std::make_unique<net::SsiNode>();
    owned_transport_ =
        std::make_unique<net::LoopbackTransport>(owned_node_->handler());
    owned_client_ = std::make_unique<net::SsiClient>(
        owned_transport_.get(), TransportRetryPolicy(options_),
        telemetry_.metrics);
    client_ = owned_client_.get();
  }
}

Status QuerySession::Submit(uint64_t query_id, const Querier* querier,
                            Protocol* protocol, const std::string& sql) {
  return SubmitInternal(query_id, std::nullopt, querier, protocol, sql);
}

Status QuerySession::SubmitPersonal(uint64_t query_id, uint64_t tds_id,
                                    const Querier* querier,
                                    Protocol* protocol,
                                    const std::string& sql) {
  return SubmitInternal(query_id, tds_id, querier, protocol, sql);
}

size_t QuerySession::EligibleServers(const PendingQuery& query) const {
  return query.personal_tds ? 1 : fleet_->size();
}

Status QuerySession::SubmitInternal(uint64_t query_id,
                                    std::optional<uint64_t> tds_id,
                                    const Querier* querier,
                                    Protocol* protocol,
                                    const std::string& sql) {
  if (fleet_->size() == 0) return Status::InvalidArgument("empty fleet");
  if (queries_.count(query_id)) {
    return Status::InvalidArgument("duplicate query id");
  }
  TCELLS_RETURN_IF_ERROR(options_.Validate());

  PendingQuery pending;
  pending.querier = querier;
  pending.protocol = protocol;
  pending.sql = sql;
  pending.personal_tds = tds_id;
  TCELLS_ASSIGN_OR_RETURN(
      pending.analyzed,
      querier->AnalyzeAgainst(sql, fleet_->at(0)->db().catalog()));

  // Each query gets its own context (metrics, rng stream) and its own
  // storage area inside the hub.
  RunOptions opts = options_;
  opts.seed = options_.seed + query_id * 0x9e37;
  Rng post_rng(opts.seed ^ 0xabcdef);
  if (options_.key_authority != nullptr) {
    // Dynamic key mode: mint this query's public key posting (current epoch
    // + fresh nonce), derive the per-query session keys on the querier side
    // and post under them. TDSs re-derive the same keys from the posting
    // through their broadcast-sealed epoch secrets; nothing but the static
    // flow changes when the authority is absent. The nonce draws from its
    // own stream so MakePost consumes identical rng draws in both key modes
    // (the static/dynamic differential compares adversary-view statistics).
    Rng posting_rng(opts.seed ^ 0x6b657973);
    pending.key_posting =
        options_.key_authority->NewPosting(query_id, &posting_rng);
    TCELLS_ASSIGN_OR_RETURN(
        std::shared_ptr<const crypto::KeyStore> session_keys,
        options_.key_authority->QuerierKeysFor(*pending.key_posting));
    pending.session_querier = querier->WithKeys(std::move(session_keys));
  }
  TCELLS_ASSIGN_OR_RETURN(ssi::QueryPost post,
                          pending.reader().MakePost(query_id, sql, &post_rng));
  post.key_posting = pending.key_posting;
  pending.duration_ticks = post.size_max_duration_ticks;
  if (tds_id) {
    TCELLS_RETURN_IF_ERROR(client_->PostPersonal(*tds_id, post));
  } else {
    TCELLS_RETURN_IF_ERROR(client_->PostGlobal(post));
  }

  if (telemetry_.tracer != nullptr) {
    pending.trace = telemetry_.tracer->StartTrace(query_id);
    obs::Span* root = pending.trace->root();
    root->labels["protocol"] = protocol->name();
    root->labels["scope"] = tds_id ? "personal" : "global";
    // Note: the worker-thread count is deliberately NOT recorded — a trace
    // must be byte-identical for any --threads value (obs/trace.h).
    root->counts["seed"] = opts.seed;
    root->counts["fleet_size"] = fleet_->size();
  }
  pending.ctx = std::make_unique<RunContext>(
      fleet_, client_, query_id, device_, opts, telemetry_.metrics,
      pending.trace ? pending.trace.get() : nullptr);
  Result<tds::CollectionConfig> config_result =
      pending.protocol->MakeCollectionConfig(*pending.ctx, pending.analyzed);
  if (!config_result.ok()) {
    // Roll the post back so a rejected query leaves no active storage.
    (void)client_->Retire(query_id);
    return config_result.status();
  }
  pending.config = std::move(config_result).ValueOrDie();
  pending.config.key_posting = pending.key_posting;

  // Tag the root span with the protocol's noise/histogram configuration —
  // notably the expected fake-tuple ratio of Rnf_Noise (nf fakes per true
  // tuple, §4.3).
  if (pending.trace != nullptr) {
    obs::Span* root = pending.trace->root();
    const auto& noise = pending.config.noise;
    if (pending.protocol->kind() == ProtocolKind::kRnfNoise) {
      root->counts["nf"] = static_cast<uint64_t>(std::max(0, noise.nf));
      root->values["expected_fake_ratio"] =
          static_cast<double>(noise.nf) / static_cast<double>(noise.nf + 1);
    }
    if (noise.group_domain) {
      root->counts["group_domain_size"] = noise.group_domain->size();
    }
    if (pending.config.histogram) {
      root->counts["histogram_buckets"] =
          pending.config.histogram->num_buckets();
    }
  }
  queries_.emplace(query_id, std::move(pending));
  return Status::OK();
}

Result<std::map<uint64_t, RunOutcome>> QuerySession::RunAll(
    uint64_t max_ticks) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  Rng session_rng(options_.seed ^ 0x5e5510f);

  // Collection window per query, in connection ticks. `max_ticks == 0`
  // derives it from each query's own DURATION bound (see the header);
  // an explicit max_ticks forces one shared window.
  constexpr uint64_t kUnbounded = std::numeric_limits<uint64_t>::max();
  bool tick_mode = false;
  std::map<uint64_t, uint64_t> window;
  if (max_ticks == 0) {
    for (const auto& [id, q] : queries_) {
      if (q.duration_ticks.has_value()) tick_mode = true;
    }
    for (const auto& [id, q] : queries_) {
      window[id] =
          q.duration_ticks ? *q.duration_ticks : (tick_mode ? kUnbounded : 1);
    }
  } else {
    tick_mode = max_ticks > 1;
    for (const auto& [id, q] : queries_) window[id] = max_ticks;
  }

  // ---- Interleaved collection over the querybox hub ----
  //
  // Per tick: connectors and their pending downloads are decided serially
  // (hub state is single-threaded), each (connector, query) pair gets a
  // private Rng stream forked from its query's context in a fixed order,
  // local evaluation fans out across the worker threads — parallel across
  // connectors, serial within one connector, since a TDS serves its queries
  // one after another — and the contributions are folded into the per-query
  // storage areas serially. Bit-identical for any thread count.
  ParallelExecutor session_executor(options_.num_threads);
  for (uint64_t tick = 0;; ++tick) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query batch cancelled during collection");
    }
    // Safety valve for adversarial runs: an SSI that forever under-reports
    // NumAcknowledged would keep every window open and hang this loop.
    if (options_.max_collection_ticks > 0 &&
        tick >= options_.max_collection_ticks) {
      return Status::DeadlineExceeded(
          "collection exceeded RunOptions::max_collection_ticks");
    }
    // Campaign hook: a deterministic point to revoke TDSs / roll the key
    // epoch while queries are in flight.
    if (options_.tick_hook) options_.tick_hook(tick);
    const auto tick_t0 = std::chrono::steady_clock::now();
    // A query stays open while its window has ticks left, its SIZE bound is
    // not met and some eligible TDS has yet to serve it.
    std::set<uint64_t> open;
    for (auto& [id, q] : queries_) {
      if (tick >= window.at(id)) continue;
      TCELLS_ASSIGN_OR_RETURN(bool size_reached, client_->SizeReached(id));
      if (size_reached) continue;
      TCELLS_ASSIGN_OR_RETURN(uint64_t acked, client_->NumAcknowledged(id));
      if (acked >= EligibleServers(q)) continue;
      open.insert(id);
    }
    if (open.empty()) break;
    for (uint64_t id : open) {
      queries_.at(id).ctx->metrics().collection_ticks += 1;
    }

    std::vector<size_t> order(fleet_->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    session_rng.Shuffle(&order);

    // One serve = one query downloaded by one connecting TDS.
    struct Serve {
      ssi::QueryPost post;
      PendingQuery* query;
      Rng rng{0};
      std::vector<EncryptedItem> items;
      /// Dynamic key mode: the TDS could not derive the posting's session
      /// keys (revoked before the query / no key state) — it is acknowledged
      /// as served but contributes nothing.
      bool skipped = false;
    };
    struct Connector {
      tds::TrustedDataServer* server;
      std::vector<Serve> serves;
    };
    // The tick's connectors are decided first (consuming the session rng in
    // shuffle order exactly as a serial loop would), then every connector's
    // querybox download goes out as one batched fetch — the transport
    // coalesces them into multi-call frames when batching is on, or replays
    // the serial call sequence when it is off. Neither FetchPosts nor the
    // batch variant touches any rng, so the draw order is unchanged.
    std::vector<tds::TrustedDataServer*> connecting;
    for (size_t idx : order) {
      if (tick_mode &&
          !session_rng.NextBool(options_.connect_prob_per_tick)) {
        continue;
      }
      connecting.push_back(fleet_->at(idx));
    }
    std::vector<uint64_t> connecting_ids;
    connecting_ids.reserve(connecting.size());
    for (tds::TrustedDataServer* server : connecting) {
      connecting_ids.push_back(server->id());
    }
    std::vector<Result<std::vector<ssi::QueryPost>>> fetched =
        client_->FetchPostsBatch(connecting_ids);

    std::vector<Connector> connectors;
    for (size_t c = 0; c < connecting.size() && c < fetched.size(); ++c) {
      tds::TrustedDataServer* server = connecting[c];
      Connector connector;
      connector.server = server;
      // Step 2: the connecting TDS downloads its pending open queries. A
      // transport failure just means this TDS missed the tick; it can
      // connect again on a later one.
      Result<std::vector<ssi::QueryPost>>& posts = fetched[c];
      if (!posts.ok()) {
        if (IsTransportError(posts.status())) continue;
        return posts.status();
      }
      for (ssi::QueryPost& post : *posts) {
        if (!open.count(post.query_id)) continue;
        auto it = queries_.find(post.query_id);
        if (it == queries_.end()) continue;
        Serve serve;
        serve.post = std::move(post);
        serve.query = &it->second;
        serve.rng = it->second.ctx->rng().Fork();
        connector.serves.push_back(std::move(serve));
      }
      if (!connector.serves.empty()) {
        connectors.push_back(std::move(connector));
      }
    }

    TCELLS_RETURN_IF_ERROR(session_executor.ForEachIndex(
        connectors.size(), [&](size_t i) -> Status {
          Connector& connector = connectors[i];
          for (Serve& serve : connector.serves) {
            Result<std::vector<EncryptedItem>> items =
                connector.server->ProcessCollection(
                    serve.post, serve.query->config, &serve.rng);
            if (!items.ok() && serve.query->key_posting &&
                (items.status().IsNotFound() ||
                 items.status().IsFailedPrecondition())) {
              // The posting's epoch is unreachable for this TDS. It cannot
              // answer; mark the serve so it is acknowledged without an
              // upload (otherwise the collection window never closes).
              serve.skipped = true;
              continue;
            }
            TCELLS_ASSIGN_OR_RETURN(serve.items, std::move(items));
          }
          return Status::OK();
        }));

    // One atomic exchange per serve: the SSI either accepts the contribution
    // and acknowledges, or — when the SIZE bound closed the storage area
    // mid-tick — discards it but still acknowledges the serve. The uploads
    // ship as one batch in serve order (the accept bits land exactly where
    // the serial loop would put them); a transport failure loses that TDS's
    // contribution only.
    std::vector<net::CollectionUpload> batch;
    std::vector<Serve*> batch_serves;
    for (Connector& connector : connectors) {
      for (Serve& serve : connector.serves) {
        if (serve.skipped) {
          // Nothing to upload, but the serve must still count as served or
          // the "all eligible TDSs answered" close condition never fires.
          Status acked = client_->Acknowledge(connector.server->id(),
                                              serve.post.query_id);
          if (!acked.ok() && !IsTransportError(acked)) return acked;
          continue;
        }
        if (serve.query->key_posting) {
          // Dynamic key mode: admission-check the upload before it counts.
          // The TDS authenticates (query_id, items digest) under its newest
          // reachable epoch's contribution key; the authority rejects stale
          // epochs (a TDS revoked mid-query is pinned to its pre-revocation
          // epoch), revoked ids and bad MACs. A rejected upload is
          // acknowledged and dropped — visible in contributions_rejected,
          // never folded into the result.
          TCELLS_ASSIGN_OR_RETURN(
              keys::ContributionTag tag,
              connector.server->TagContribution(serve.post.query_id,
                                                serve.items));
          Status admitted = options_.key_authority->VerifyContribution(
              tag, serve.post.query_id,
              keys::ContributionDigest(serve.items));
          if (admitted.IsPermissionDenied()) {
            serve.query->ctx->metrics().contributions_rejected += 1;
            Status acked = client_->Acknowledge(connector.server->id(),
                                                serve.post.query_id);
            if (!acked.ok() && !IsTransportError(acked)) return acked;
            continue;
          }
          TCELLS_RETURN_IF_ERROR(admitted);
        }
        net::CollectionUpload upload;
        upload.query_id = serve.post.query_id;
        upload.tds_id = connector.server->id();
        upload.items = serve.items;
        batch.push_back(std::move(upload));
        batch_serves.push_back(&serve);
      }
    }
    std::vector<Result<bool>> accepts = client_->UploadCollectionBatch(batch);
    for (size_t i = 0; i < batch_serves.size() && i < accepts.size(); ++i) {
      Result<bool>& accepted = accepts[i];
      if (!accepted.ok()) {
        if (IsTransportError(accepted.status())) continue;
        return accepted.status();
      }
      if (!*accepted) continue;
      Serve& serve = *batch_serves[i];
      uint64_t bytes = 0;
      for (const auto& item : serve.items) bytes += item.WireSize();
      serve.query->ctx->RecordCollection(batch[i].tds_id, bytes,
                                         serve.items.size());
      serve.query->ctx->metrics().collection_participants += 1;
    }
    // Attribute this tick's wall-clock to every query whose window was open
    // (shared tick work is charged to each, which slightly over-counts for
    // multi-query batches but keeps single-query wall accounting exact).
    const double tick_wall = WallMicrosSince(tick_t0);
    for (uint64_t id : open) {
      queries_.at(id).ctx->metrics().collection_wall_micros += tick_wall;
    }
  }

  // ---- Per-query aggregation + filtering + decryption ----
  std::map<uint64_t, RunOutcome> outcomes;
  for (auto& [id, q] : queries_) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query batch cancelled before completion");
    }
    if (obs::Span* collection = q.ctx->EnsureCollectionSpan()) {
      collection->counts["ticks"] = q.ctx->metrics().collection_ticks;
      collection->counts["participants"] =
          q.ctx->metrics().collection_participants;
    }
    TCELLS_ASSIGN_OR_RETURN(std::vector<EncryptedItem> covering,
                            client_->TakeCollected(id));
    TCELLS_ASSIGN_OR_RETURN(
        covering, q.protocol->RunAggregation(*q.ctx, q.analyzed, q.config,
                                             std::move(covering)));
    TCELLS_RETURN_IF_ERROR(client_->ObserveAggregation(id, covering));
    TCELLS_ASSIGN_OR_RETURN(
        std::vector<EncryptedItem> result_items,
        RunFilteringPhase(*q.ctx, q.analyzed, q.config, std::move(covering)));
    TCELLS_RETURN_IF_ERROR(client_->ObserveFiltering(id, result_items));

    // Step 13: the TDSs hand the result to the SSI; the querier downloads
    // and decrypts it.
    TCELLS_RETURN_IF_ERROR(client_->DeliverResult(id, result_items));
    TCELLS_ASSIGN_OR_RETURN(result_items, client_->FetchResult(id));
    RunOutcome outcome;
    const auto decrypt_t0 = std::chrono::steady_clock::now();
    TCELLS_ASSIGN_OR_RETURN(
        outcome.result, q.reader().DecryptResult(q.analyzed, result_items));
    if (q.trace != nullptr) {
      obs::Span* decrypt = q.trace->StartSpan(nullptr, obs::kSpanDecrypt);
      decrypt->sim_begin_seconds = q.ctx->sim_now_seconds();
      decrypt->sim_end_seconds = q.ctx->sim_now_seconds();
      decrypt->wall_micros = WallMicrosSince(decrypt_t0);
      decrypt->counts["result_rows"] = outcome.result.rows.size();
      uint64_t result_bytes = 0;
      for (const auto& item : result_items) result_bytes += item.WireSize();
      decrypt->counts["bytes_in"] = result_bytes;

      obs::Span* root = q.trace->root();
      root->sim_end_seconds = q.ctx->sim_now_seconds();
      root->wall_micros = WallMicrosSince(wall_t0);
      outcome.trace = q.trace;
    }
    if (telemetry_.metrics != nullptr) {
      telemetry_.metrics->counter("engine.queries_completed").Increment();
    }
    outcome.metrics = q.ctx->metrics();
    TCELLS_ASSIGN_OR_RETURN(outcome.adversary, client_->GetAdversaryView(id));
    outcomes.emplace(id, std::move(outcome));
  }
  for (const auto& [id, outcome] : outcomes) {
    TCELLS_RETURN_IF_ERROR(client_->Retire(id));
  }
  queries_.clear();
  return outcomes;
}

// ---------------------------------------------------------------------------
// Single-query entry point (declared in protocols.h): a fresh one-query
// session, so RunQuery and QuerySession share one execution engine.

Result<RunOutcome> RunQuery(Protocol& protocol, Fleet* fleet,
                            const Querier& querier, uint64_t query_id,
                            const std::string& sql,
                            const sim::DeviceModel& device,
                            const RunOptions& options,
                            obs::Telemetry telemetry, net::SsiApi* client) {
  QuerySession session(fleet, device, options, telemetry, client);
  TCELLS_RETURN_IF_ERROR(session.Submit(query_id, &querier, &protocol, sql));
  TCELLS_ASSIGN_OR_RETURN(auto outcomes, session.RunAll());
  auto it = outcomes.find(query_id);
  if (it == outcomes.end()) {
    return Status::Internal("query produced no outcome");
  }
  return std::move(it->second);
}

}  // namespace tcells::protocol
