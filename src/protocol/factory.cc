#include "protocol/factory.h"

#include "common/strings.h"
#include "protocol/discovery.h"

namespace tcells::protocol {

Result<std::unique_ptr<Protocol>> MakeProtocol(ProtocolKind kind,
                                               const ProtocolInputs& inputs) {
  switch (kind) {
    case ProtocolKind::kBasicSfw:
      return std::unique_ptr<Protocol>(new BasicSfwProtocol());
    case ProtocolKind::kSAgg:
      return std::unique_ptr<Protocol>(new SAggProtocol());
    case ProtocolKind::kRnfNoise:
    case ProtocolKind::kCNoise: {
      auto domain = inputs.group_domain;
      if (!domain && !inputs.distribution.empty()) {
        auto derived = std::make_shared<std::vector<storage::Tuple>>();
        derived->reserve(inputs.distribution.size());
        for (const auto& [key, count] : inputs.distribution) {
          derived->push_back(key);
        }
        domain = derived;
      }
      if (!domain || domain->empty()) {
        return Status::FailedPrecondition(
            "Noise protocols need the A_G domain (group_domain or "
            "distribution)");
      }
      return std::unique_ptr<Protocol>(
          new NoiseProtocol(kind == ProtocolKind::kCNoise, std::move(domain)));
    }
    case ProtocolKind::kEdHist: {
      if (inputs.distribution.empty()) {
        return Status::FailedPrecondition(
            "ED_Hist needs the A_G distribution");
      }
      size_t buckets = inputs.histogram_buckets;
      if (buckets == 0) {
        buckets = std::max<size_t>(1, inputs.distribution.size() / 5);
      }
      return std::unique_ptr<Protocol>(
          EdHistProtocol::FromDistribution(inputs.distribution, buckets)
              .release());
    }
  }
  return Status::InvalidArgument("unknown protocol kind");
}

Result<std::unique_ptr<Protocol>> MakeProtocol(ProtocolKind kind) {
  return MakeProtocol(kind, ProtocolInputs{});
}

Result<ProtocolInputs> DiscoverInputs(Fleet* fleet, const Querier& querier,
                                      uint64_t query_id,
                                      const std::string& target_sql,
                                      const sim::DeviceModel& device,
                                      const RunOptions& options) {
  TCELLS_ASSIGN_OR_RETURN(
      DiscoveredDistribution discovered,
      DiscoverDistribution(fleet, querier, query_id, target_sql, device,
                           options));
  ProtocolInputs inputs;
  TCELLS_ASSIGN_OR_RETURN(inputs.group_domain, discovered.Domain());
  inputs.distribution = std::move(discovered.frequency);
  return inputs;
}

Result<ProtocolKind> ProtocolKindFromName(const std::string& name) {
  struct NameMap {
    const char* name;
    ProtocolKind kind;
  };
  static constexpr NameMap kNames[] = {
      {"basic", ProtocolKind::kBasicSfw},
      {"basic_sfw", ProtocolKind::kBasicSfw},
      {"s_agg", ProtocolKind::kSAgg},
      {"r_noise", ProtocolKind::kRnfNoise},
      {"rnf_noise", ProtocolKind::kRnfNoise},
      {"c_noise", ProtocolKind::kCNoise},
      {"ed_hist", ProtocolKind::kEdHist},
  };
  for (const auto& entry : kNames) {
    if (EqualsIgnoreCase(name, entry.name)) return entry.kind;
  }
  return Status::InvalidArgument("unknown protocol name: " + name);
}

}  // namespace tcells::protocol
