// RunContext / RunOptions / RunOutcome: shared machinery for executing a
// protocol end to end over a Fleet and an Ssi instance, with cost accounting,
// simulated-time tracking and fault injection (TDS dropouts with SSI
// re-dispatch, §3.2 Correctness).
#ifndef TCELLS_PROTOCOL_RUN_CONTEXT_H_
#define TCELLS_PROTOCOL_RUN_CONTEXT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "keys/key_authority.h"
#include "net/ssi_api.h"
#include "net/ssi_client.h"
#include "obs/trace.h"
#include "protocol/fleet.h"
#include "protocol/parallel_executor.h"
#include "sim/cost_accountant.h"
#include "sim/device_model.h"
#include "ssi/ssi.h"
#include "tds/config.h"

namespace tcells::protocol {

/// Tuning knobs for a run. Defaults follow the paper's fixed parameters
/// (§6.3) where applicable.
struct RunOptions {
  /// Fraction of the fleet available for aggregation/filtering phases
  /// (the paper sweeps 1%/10%/100% of N_t; default 10%).
  double compute_availability = 0.1;
  /// Probability that a TDS goes offline mid-partition; the SSI re-sends the
  /// partition to another TDS after a timeout.
  double dropout_rate = 0.0;
  size_t max_dropout_retries = 16;
  /// Simulated timeout before the SSI re-dispatches a lost partition (s).
  double dropout_timeout_seconds = 1.0;

  /// S_Agg reduction factor; 3.6 is the analytical optimum (§6.1.1).
  double alpha = 3.6;
  /// Expected number of groups (sizes the first S_Agg round at alpha*G
  /// tuples per partition); 0 = unknown, fall back to alpha.
  size_t expected_groups = 0;

  /// Rnf_Noise: fake tuples per true tuple.
  int nf = 2;
  /// Noise protocols: TDSs cooperating on one group in step 1 (n_NB);
  /// 0 = use the analytical optimum sqrt((nf+1)*N_t/G) from observed sizes.
  size_t noise_parallel = 0;

  /// ED_Hist: number of histogram buckets; 0 = #groups / 5 (h = 5, §6.3).
  size_t histogram_buckets = 0;
  /// ED_Hist: sub-partitions per bucket in step 1 (n_ED); 0 = auto.
  size_t ed_parallel = 0;

  /// Pad collection payloads to this plaintext size (0 = off).
  size_t pad_payload_to = 0;

  /// Collection connectivity model for DURATION-bounded queries: per tick,
  /// each TDS that has not yet contributed connects with this probability
  /// (seldom-connected tokens: low; always-on meters: 1.0). Queries without
  /// a DURATION bound do a single full pass.
  double connect_prob_per_tick = 0.2;

  /// Worker threads for the parallel fleet engine: the collection pass and
  /// every aggregation/filtering round fan their partitions out across this
  /// many threads (the calling thread included). 1 = fully serial; 0 = use
  /// std::thread::hardware_concurrency(). Results are bit-identical for any
  /// value: each TDS/partition draws from its own Rng stream forked serially
  /// from the run seed, so thread scheduling can never reach the bits.
  size_t num_threads = 0;

  /// Per-message wall-clock deadline (s) for every SSI transport exchange.
  double transport_deadline_seconds = 5.0;
  /// Initial wall-clock backoff between transport-level retries; doubles per
  /// retry up to the cap. The retry budget itself is unified with the
  /// dropout model: max_dropout_retries + 1 total attempts per message.
  /// (Injected dropouts cost dropout_timeout_seconds of *simulated* time;
  /// transport retries cost real wall clock.)
  double transport_backoff_seconds = 0.001;
  double transport_backoff_cap_seconds = 0.25;

  /// Clock the transport retry backoff sleeps go through (borrowed; must
  /// outlive every run using these options). Null = real wall clock. The
  /// fault-injection campaign installs a VirtualClock so injected delays and
  /// retry storms complete instantly and deterministically.
  Clock* clock = nullptr;

  /// Safety bound on collection connection ticks for DURATION-bounded
  /// queries (0 = unbounded). A byzantine SSI that under-reports
  /// NumAcknowledged forever would otherwise hang RunAll; adversarial
  /// campaigns set this so such scenarios abort with DeadlineExceeded
  /// instead.
  uint64_t max_collection_ticks = 0;

  uint64_t seed = 42;

  /// Dynamic key mode (borrowed; may be null = static keys, bit-identical to
  /// the pre-key-management behaviour). When set, every submitted query gets
  /// a per-query key posting minted by this authority, TDS contributions are
  /// admission-checked against it (epoch-stamped HMAC), and revoked TDSs are
  /// excluded from the compute pool.
  keys::KeyAuthority* key_authority = nullptr;

  /// Invoked at the start of every collection connection tick with the tick
  /// number (may be empty). The fault-injection campaign uses it to revoke
  /// TDSs / roll the key epoch at a deterministic point mid-query.
  std::function<void(uint64_t)> tick_hook;

  /// Cooperative cancellation flag (borrowed; may be null). Checked at the
  /// run's natural serial boundaries — each collection tick, each
  /// aggregation/filtering round, each per-query completion step — so a
  /// cancelled run stops promptly, returns Status::Cancelled, and never
  /// leaves a phase half-applied. Engine::QueryHandle::Cancel sets it.
  const std::atomic<bool>* cancel = nullptr;

  /// Sanity-checks the knob values (rates in range, alpha above the fixed
  /// point, retry budget consistent with the dropout rate). Invoked at query
  /// submit time — by QuerySession::Submit and Engine::Create — so malformed
  /// configurations fail fast instead of deep inside a round.
  Status Validate() const;
};

/// The SSI client retry schedule a RunOptions implies: the dropout retry
/// budget also bounds transport-level attempts (max_dropout_retries + 1),
/// and the transport_* knobs set the per-message deadline and backoff.
net::RetryPolicy TransportRetryPolicy(const RunOptions& options);

/// Simulated wall-clock per phase, computed on the critical path: each round
/// of partitions runs in parallel across the available TDSs; a round's time
/// is the slowest partition times the assignment waves needed.
struct PhaseTimes {
  double collection_seconds = 0;
  double aggregation_seconds = 0;
  double filtering_seconds = 0;
};

/// Everything measured during one protocol run.
struct RunMetrics {
  sim::CostAccountant accountant;
  PhaseTimes times;
  size_t aggregation_rounds = 0;
  size_t available_compute_tds = 0;
  /// Connection ticks the collection window stayed open (1 for a plain full
  /// pass; bounded by the SIZE ... DURATION clause otherwise).
  uint64_t collection_ticks = 0;
  /// TDSs that contributed to the collection phase before it closed.
  size_t collection_participants = 0;
  /// Dynamic key mode: collection uploads whose contribution tag failed the
  /// authority's admission check (stale epoch / revoked TDS / bad MAC). Each
  /// is acknowledged but discarded — the query completes without it, and the
  /// rejection is visible here instead of silently folding a revoked TDS's
  /// data into the result. Always 0 in static key mode.
  size_t contributions_rejected = 0;
  /// Partitions abandoned after the transport retry budget was exhausted;
  /// the round completed without their items (graceful degradation). Always
  /// 0 on a fault-free loopback transport. Tampered partitions (below) are
  /// also counted here — their items are discarded the same way.
  size_t partitions_lost = 0;
  /// Partitions whose round output came back from the SSI with bytes that do
  /// not match what the TDS uploaded (a byzantine SSI replaying or swapping
  /// outputs). Each is also counted once in partitions_lost.
  size_t partitions_tampered = 0;

  /// Real wall-clock spent executing each phase in this process (µs):
  /// collection covers the session's connection-tick work attributed to this
  /// query, aggregation/filtering cover the RunRound calls. Unlike
  /// PhaseTimes (simulated critical-path seconds) these measure the host's
  /// actual execution cost; they depend on machine load and thread count and
  /// are therefore never part of a differential comparison.
  double collection_wall_micros = 0;
  double aggregation_wall_micros = 0;
  double filtering_wall_micros = 0;

  /// Query-path wall (µs): the aggregation + filtering rounds only — the
  /// cost of executing the query over the already-collected covering result,
  /// excluding fleet setup and the collection/load pass. bench_e2e_protocols
  /// derives its ns_per_tuple from this, so the committed before/after
  /// numbers measure the per-tuple round path rather than folding collection
  /// (which for small runs dominates wall time) into the quotient.
  double QueryPathWallMicros() const {
    return aggregation_wall_micros + filtering_wall_micros;
  }
  /// Tuples processed on the query path (aggregation + filtering phases).
  uint64_t QueryPathTuples() const {
    return accountant.phase(sim::Phase::kAggregation).tuples_processed +
           accountant.phase(sim::Phase::kFiltering).tuples_processed;
  }

  /// P_TDS: distinct TDSs that took part in the computation.
  size_t Ptds() const { return accountant.DistinctTds(); }
  /// Load_Q in bytes: total data processed by TDSs and SSI.
  uint64_t LoadBytes() const { return accountant.TotalBytes(); }
  /// T_Q: the paper's responsiveness metric (aggregation phase only, §6.1).
  double Tq() const { return times.aggregation_seconds; }
  /// T_local: average busy time per participating TDS.
  double Tlocal(const sim::DeviceModel& model) const {
    return accountant.AverageTdsSeconds(model);
  }
};

/// Shared execution state handed to protocol implementations.
class RunContext {
 public:
  /// `metrics_registry` and `trace` are optional telemetry sinks (may be
  /// null). The trace is this query's span tree: RunRound appends one span
  /// per aggregation/filtering round, RecordCollection accumulates into the
  /// collection span, always from serial sections so the tree is
  /// bit-identical for any thread count. `client` is the SSI channel every
  /// partition travels through (borrowed, never null); `query_id` scopes
  /// this context's exchanges inside the shared SSI.
  RunContext(Fleet* fleet, net::SsiApi* client, uint64_t query_id,
             const sim::DeviceModel& device, RunOptions options,
             obs::MetricsRegistry* metrics_registry = nullptr,
             obs::Trace* trace = nullptr);

  Fleet& fleet() { return *fleet_; }
  net::SsiApi& client() { return *client_; }
  uint64_t query_id() const { return query_id_; }
  Rng& rng() { return rng_; }
  const RunOptions& options() const { return options_; }
  const sim::DeviceModel& device() const { return device_; }
  RunMetrics& metrics() { return metrics_; }

  /// This query's span tree (null when tracing is off).
  obs::Trace* trace() { return trace_; }
  /// The collection span of the trace, created on first use (null when
  /// tracing is off).
  obs::Span* EnsureCollectionSpan();
  /// Simulated clock: total critical-path seconds accumulated so far.
  double sim_now_seconds() const { return sim_now_seconds_; }

  /// The fan-out engine shared by every phase of this run.
  ParallelExecutor& executor() { return executor_; }

  /// The compute-phase TDS pool, sampled once per run.
  const std::vector<tds::TrustedDataServer*>& compute_pool();

  /// Processor invoked per partition: returns the TDS's output items. The
  /// Rng is the partition's private stream — implementations must draw all
  /// their randomness from it, never from ctx.rng(), so that partitions can
  /// run concurrently without perturbing each other's bits.
  using PartitionFn = std::function<Result<std::vector<ssi::EncryptedItem>>(
      tds::TrustedDataServer*, const ssi::Partition&, Rng*)>;

  /// Runs one round: every partition is assigned to a TDS from the compute
  /// pool (with dropout/retry injection) and processed — across the worker
  /// threads when options.num_threads allows — then outputs are concatenated
  /// in partition order, and cost and critical-path time are recorded under
  /// `phase` in partition order. Deterministic for any thread count: each
  /// partition's TDS choice, dropout schedule and processing randomness come
  /// from a per-partition stream forked from the run Rng before the fan-out.
  Result<std::vector<ssi::EncryptedItem>> RunRound(
      sim::Phase phase, const std::vector<ssi::Partition>& partitions,
      const PartitionFn& process);

  /// Records collection-phase work of one TDS.
  void RecordCollection(uint64_t tds_id, uint64_t bytes_up, uint64_t tuples);

 private:
  Fleet* fleet_;
  net::SsiApi* client_;
  uint64_t query_id_;
  sim::DeviceModel device_;
  RunOptions options_;
  Rng rng_;
  ParallelExecutor executor_;
  RunMetrics metrics_;
  obs::MetricsRegistry* metrics_registry_;
  obs::Trace* trace_;
  obs::Span* collection_span_ = nullptr;
  double sim_now_seconds_ = 0;
  std::vector<tds::TrustedDataServer*> pool_;
  bool pool_sampled_ = false;
};

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_RUN_CONTEXT_H_
