#include "protocol/reference.h"

#include "sql/analyzer.h"

namespace tcells::protocol {

Result<sql::QueryResult> ExecuteReference(const Fleet& fleet,
                                          const std::string& sql) {
  if (fleet.size() == 0) {
    return Status::InvalidArgument("empty fleet");
  }
  // Clone the common catalog and concatenate every TDS's rows. Note: the
  // reference joins stay *internal* — each TDS's combined rows are computed
  // separately, matching the paper's "no external joins" model.
  //
  // Because WHERE + joins are evaluated per TDS and aggregation is a union
  // over collection tuples, running the analyzed query per TDS and merging
  // collection tuples is the faithful oracle.
  const storage::Catalog& catalog = fleet.at(0)->db().catalog();
  TCELLS_ASSIGN_OR_RETURN(sql::AnalyzedQuery query,
                          sql::AnalyzeSql(sql, catalog));

  sql::QueryResult result;
  if (!query.is_aggregation) {
    result.schema = query.result_schema;
    for (size_t i = 0; i < fleet.size(); ++i) {
      TCELLS_ASSIGN_OR_RETURN(
          std::vector<storage::Tuple> rows,
          sql::CollectionTuples(fleet.at(i)->db(), query));
      for (auto& row : rows) result.rows.push_back(std::move(row));
    }
  } else {
    sql::GroupedAggregation agg(query.agg_specs);
    for (size_t i = 0; i < fleet.size(); ++i) {
      TCELLS_ASSIGN_OR_RETURN(std::vector<storage::Tuple> rows,
                              sql::CollectionTuples(fleet.at(i)->db(), query));
      for (const auto& row : rows) {
        TCELLS_RETURN_IF_ERROR(agg.AccumulateTuple(row, query.key_arity));
      }
    }
    TCELLS_ASSIGN_OR_RETURN(result, sql::FinalizeAggregation(agg, query));
  }
  TCELLS_RETURN_IF_ERROR(sql::ApplyOrderAndLimit(query, &result));
  return result;
}

}  // namespace tcells::protocol
