#include "protocol/protocols.h"

#include <algorithm>
#include <cmath>

namespace tcells::protocol {

using ssi::EncryptedItem;
using ssi::Partition;
using tds::CollectionConfig;
using tds::CollectionMode;
using tds::OutputTagPolicy;

const char* ProtocolKindToString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kBasicSfw: return "Basic_SFW";
    case ProtocolKind::kSAgg: return "S_Agg";
    case ProtocolKind::kRnfNoise: return "Rnf_Noise";
    case ProtocolKind::kCNoise: return "C_Noise";
    case ProtocolKind::kEdHist: return "ED_Hist";
  }
  return "?";
}

namespace {

/// Partition processor running the aggregation step on a TDS. Draws from the
/// partition's private Rng stream so partitions can run concurrently.
RunContext::PartitionFn AggregateFn(const sql::AnalyzedQuery& query,
                                    OutputTagPolicy policy,
                                    const CollectionConfig& config) {
  return [&query, policy, &config](tds::TrustedDataServer* server,
                                   const Partition& partition, Rng* rng) {
    return server->ProcessAggregationPartition(query, partition, policy,
                                               config, rng);
  };
}

/// Splits each tag-partition `ways` ways (ways<=1 keeps them whole).
std::vector<Partition> SplitEach(std::vector<Partition> partitions,
                                 size_t ways) {
  if (ways <= 1) return partitions;
  std::vector<Partition> out;
  for (auto& p : partitions) {
    for (auto& sub : ssi::Ssi::SplitPartition(std::move(p), ways)) {
      out.push_back(std::move(sub));
    }
  }
  return out;
}

Status RequireAggregation(const sql::AnalyzedQuery& query, const char* name) {
  if (!query.is_aggregation) {
    return Status::InvalidArgument(
        std::string(name) +
        " handles GROUP BY/aggregate queries; use Basic_SFW otherwise");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// BasicSfw

Result<CollectionConfig> BasicSfwProtocol::MakeCollectionConfig(
    RunContext& ctx, const sql::AnalyzedQuery& query) {
  if (query.is_aggregation) {
    return Status::InvalidArgument(
        "Basic_SFW cannot evaluate aggregation queries");
  }
  CollectionConfig config;
  config.mode = CollectionMode::kNDet;
  config.pad_payload_to = ctx.options().pad_payload_to;
  return config;
}

Result<std::vector<EncryptedItem>> BasicSfwProtocol::RunAggregation(
    RunContext& ctx, const sql::AnalyzedQuery& query,
    const CollectionConfig& config, std::vector<EncryptedItem> items) {
  (void)ctx;
  (void)query;
  (void)config;
  // No aggregation phase: the covering result goes straight to filtering.
  return items;
}

// ---------------------------------------------------------------------------
// S_Agg

Result<CollectionConfig> SAggProtocol::MakeCollectionConfig(
    RunContext& ctx, const sql::AnalyzedQuery& query) {
  TCELLS_RETURN_IF_ERROR(RequireAggregation(query, "S_Agg"));
  CollectionConfig config;
  config.mode = CollectionMode::kNDet;
  config.pad_payload_to = ctx.options().pad_payload_to;
  return config;
}

Result<std::vector<EncryptedItem>> SAggProtocol::RunAggregation(
    RunContext& ctx, const sql::AnalyzedQuery& query,
    const CollectionConfig& config, std::vector<EncryptedItem> items) {
  const RunOptions& opts = ctx.options();
  size_t alpha = std::max<size_t>(
      2, static_cast<size_t>(std::llround(std::ceil(opts.alpha))));
  // First round: each TDS ingests ~alpha*G raw tuples so its partial
  // aggregate covers most groups (§6.1.1); later rounds merge alpha partials.
  size_t first_chunk =
      std::max<size_t>(alpha, alpha * std::max<size_t>(1, opts.expected_groups));

  bool first = true;
  while (items.size() > 1 || first) {
    size_t chunk = first ? first_chunk : alpha;
    first = false;
    std::vector<Partition> partitions =
        ssi::Ssi::PartitionRandomly(std::move(items), chunk, &ctx.rng());
    TCELLS_ASSIGN_OR_RETURN(
        items, ctx.RunRound(sim::Phase::kAggregation, partitions,
                            AggregateFn(query, OutputTagPolicy::kNone,
                                        config)));
    if (items.empty()) break;  // nothing but dummies collected
  }
  return items;
}

// ---------------------------------------------------------------------------
// Noise protocols

Result<CollectionConfig> NoiseProtocol::MakeCollectionConfig(
    RunContext& ctx, const sql::AnalyzedQuery& query) {
  TCELLS_RETURN_IF_ERROR(RequireAggregation(query, name()));
  if (!group_domain_ || group_domain_->empty()) {
    return Status::FailedPrecondition(
        std::string(name()) + " needs the A_G domain (see discovery.h)");
  }
  CollectionConfig config;
  config.mode = CollectionMode::kDetTag;
  config.noise.complementary = complementary_;
  config.noise.nf = complementary_ ? 0 : ctx.options().nf;
  config.noise.group_domain = group_domain_;
  config.pad_payload_to = ctx.options().pad_payload_to;
  return config;
}

Result<std::vector<EncryptedItem>> NoiseProtocol::RunAggregation(
    RunContext& ctx, const sql::AnalyzedQuery& query,
    const CollectionConfig& config, std::vector<EncryptedItem> items) {
  TCELLS_ASSIGN_OR_RETURN(std::vector<Partition> by_group,
                          ssi::Ssi::PartitionByTag(std::move(items)));

  // n_NB: TDSs cooperating on one group in step 1. The analytical optimum is
  // sqrt((nf+1)*N_t/G) (§6.1.2) — estimated here from the observed sizes.
  size_t n_nb = ctx.options().noise_parallel;
  if (n_nb == 0) {
    size_t total = 0;
    for (const auto& p : by_group) total += p.items.size();
    double avg = static_cast<double>(total) /
                 static_cast<double>(std::max<size_t>(1, by_group.size()));
    n_nb = std::max<size_t>(1, static_cast<size_t>(std::llround(std::sqrt(avg))));
  }

  std::vector<Partition> step1 = SplitEach(std::move(by_group), n_nb);
  TCELLS_ASSIGN_OR_RETURN(
      std::vector<EncryptedItem> partials,
      ctx.RunRound(sim::Phase::kAggregation, step1,
                   AggregateFn(query, OutputTagPolicy::kPreserve,
                               config)));
  if (n_nb <= 1) return partials;

  // Step 2: merge the n_NB partials of each group on a single TDS.
  TCELLS_ASSIGN_OR_RETURN(std::vector<Partition> step2,
                          ssi::Ssi::PartitionByTag(std::move(partials)));
  return ctx.RunRound(sim::Phase::kAggregation, step2,
                      AggregateFn(query, OutputTagPolicy::kPreserve, config));
}

// ---------------------------------------------------------------------------
// ED_Hist

std::unique_ptr<EdHistProtocol> EdHistProtocol::FromDistribution(
    const std::map<storage::Tuple, uint64_t>& freq, size_t num_buckets) {
  auto histogram = std::make_shared<tds::EquiDepthHistogram>(
      tds::EquiDepthHistogram::Build(freq, num_buckets));
  return std::make_unique<EdHistProtocol>(std::move(histogram));
}

Result<CollectionConfig> EdHistProtocol::MakeCollectionConfig(
    RunContext& ctx, const sql::AnalyzedQuery& query) {
  TCELLS_RETURN_IF_ERROR(RequireAggregation(query, "ED_Hist"));
  if (!histogram_ || histogram_->num_buckets() == 0) {
    return Status::FailedPrecondition(
        "ED_Hist needs a histogram built from the A_G distribution");
  }
  CollectionConfig config;
  config.mode = CollectionMode::kHistTag;
  config.histogram = histogram_;
  config.pad_payload_to = ctx.options().pad_payload_to;
  return config;
}

Result<std::vector<EncryptedItem>> EdHistProtocol::RunAggregation(
    RunContext& ctx, const sql::AnalyzedQuery& query,
    const CollectionConfig& config, std::vector<EncryptedItem> items) {
  // Step 1: per-bucket partitions; TDSs emit one Det-tagged partial per
  // group found in the bucket.
  TCELLS_ASSIGN_OR_RETURN(std::vector<Partition> by_bucket,
                          ssi::Ssi::PartitionByTag(std::move(items)));
  size_t n_ed = ctx.options().ed_parallel;
  if (n_ed == 0) {
    size_t total = 0;
    for (const auto& p : by_bucket) total += p.items.size();
    double avg = static_cast<double>(total) /
                 static_cast<double>(std::max<size_t>(1, by_bucket.size()));
    // Analytical optimum (h*N_t/G)^(2/3) ~ cuberoot-squared of bucket size.
    n_ed = std::max<size_t>(
        1, static_cast<size_t>(std::llround(std::pow(avg, 2.0 / 3.0))));
  }
  std::vector<Partition> step1 = SplitEach(std::move(by_bucket), n_ed);
  TCELLS_ASSIGN_OR_RETURN(
      std::vector<EncryptedItem> partials,
      ctx.RunRound(sim::Phase::kAggregation, step1,
                   AggregateFn(query, OutputTagPolicy::kPerGroupDet,
                               config)));

  // Step 2: per-group partitions (Det_Enc(group) tags) -> final aggregates.
  TCELLS_ASSIGN_OR_RETURN(std::vector<Partition> step2,
                          ssi::Ssi::PartitionByTag(std::move(partials)));
  return ctx.RunRound(sim::Phase::kAggregation, step2,
                      AggregateFn(query, OutputTagPolicy::kPreserve, config));
}

// ---------------------------------------------------------------------------
// End-to-end driver

Result<std::vector<EncryptedItem>> RunFilteringPhase(
    RunContext& ctx, const sql::AnalyzedQuery& query,
    const CollectionConfig& config, std::vector<EncryptedItem> covering) {
  if (covering.empty()) return std::vector<EncryptedItem>{};
  size_t pool_size = std::max<size_t>(1, ctx.compute_pool().size());
  size_t chunk = (covering.size() + pool_size - 1) / pool_size;
  std::vector<Partition> partitions =
      ssi::Ssi::PartitionRandomly(std::move(covering), chunk, &ctx.rng());
  return ctx.RunRound(sim::Phase::kFiltering, partitions,
                      [&query, &config](tds::TrustedDataServer* server,
                                        const Partition& partition, Rng* rng) {
                        return server->ProcessFiltering(query, partition, rng,
                                                        config);
                      });
}

// RunQuery — the single-query entry point — is defined in session.cc as a
// wrapper over QuerySession, so both operating modes share one engine.

}  // namespace tcells::protocol
