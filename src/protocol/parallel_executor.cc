#include "protocol/parallel_executor.h"

namespace tcells::protocol {

Status ParallelExecutor::ForEachIndex(size_t n,
                                      const std::function<Status(size_t)>& job) {
  if (n == 0) return Status::OK();
  std::vector<Status> statuses(n);
  pool_.ParallelFor(n, [&](size_t i) { statuses[i] = job(i); });
  for (auto& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

}  // namespace tcells::protocol
