// Protocol factory: builds any of the querying protocols from a uniform
// input bundle, and fills that bundle via the discovery protocol when the
// protocol needs prior knowledge (the A_G domain for the Noise protocols,
// the distribution/histogram for ED_Hist).
#ifndef TCELLS_PROTOCOL_FACTORY_H_
#define TCELLS_PROTOCOL_FACTORY_H_

#include <map>
#include <memory>
#include <string>

#include "protocol/protocols.h"

namespace tcells::protocol {

/// Prior knowledge some protocols require. Fill it by hand (when the domain
/// is public, e.g. district lists) or with DiscoverInputs below.
struct ProtocolInputs {
  /// The A_G domain (Noise protocols; also derivable from `distribution`).
  std::shared_ptr<const std::vector<storage::Tuple>> group_domain;
  /// The A_G distribution (ED_Hist). Key -> occurrence count.
  std::map<storage::Tuple, uint64_t> distribution;
  /// ED_Hist bucket count; 0 = |distribution| / 5 (h = 5, §6.3).
  size_t histogram_buckets = 0;
};

/// Builds a protocol instance. FailedPrecondition when `kind` needs inputs
/// the bundle does not carry.
Result<std::unique_ptr<Protocol>> MakeProtocol(ProtocolKind kind,
                                               const ProtocolInputs& inputs);

/// Overload for input-free protocols (BasicSfw, SAgg).
Result<std::unique_ptr<Protocol>> MakeProtocol(ProtocolKind kind);

/// Runs the discovery protocol (§4.4) for `target_sql`'s grouping attributes
/// and returns a bundle sufficient for every protocol kind.
Result<ProtocolInputs> DiscoverInputs(Fleet* fleet, const Querier& querier,
                                      uint64_t query_id,
                                      const std::string& target_sql,
                                      const sim::DeviceModel& device,
                                      const RunOptions& options);

/// Parses a protocol name as used by the benches/CLI: "basic"/"Basic_SFW",
/// "s_agg"/"S_Agg", "r_noise"/"Rnf_Noise", "c_noise"/"C_Noise",
/// "ed_hist"/"ED_Hist" (case-insensitive).
Result<ProtocolKind> ProtocolKindFromName(const std::string& name);

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_FACTORY_H_
