// Distribution discovery (§4.4): before ED_Hist (or C_Noise, which needs the
// domain cardinality) can run, the distribution of the grouping attributes
// must be discovered and distributed to all TDSs. "The discovery process is
// similar to computing a Count function Group By A_G and can therefore be
// performed using one of the protocols introduced above" — here it runs as a
// real S_Agg round over the fleet. It is done once and refreshed from time to
// time, not per query.
#ifndef TCELLS_PROTOCOL_DISCOVERY_H_
#define TCELLS_PROTOCOL_DISCOVERY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "protocol/protocols.h"

namespace tcells::protocol {

/// Result of a discovery run: occurrence count per group key, plus the cost
/// of obtaining it (so benches can charge discovery where relevant).
struct DiscoveredDistribution {
  std::map<storage::Tuple, uint64_t> frequency;
  RunMetrics metrics;

  /// The distinct key domain (for the Noise protocols). FailedPrecondition
  /// when the discovery run surfaced no groups at all — an empty domain would
  /// make the Noise protocols silently drop every tuple.
  Result<std::shared_ptr<const std::vector<storage::Tuple>>> Domain() const;
};

/// Runs "SELECT A_G..., COUNT(*) FROM <same tables> GROUP BY A_G..." with
/// S_Agg over the fleet. `target_sql` is the query whose grouping attributes
/// we want the distribution of; its WHERE clause is intentionally not applied
/// (the histogram reflects the domain, not one query's selection).
Result<DiscoveredDistribution> DiscoverDistribution(
    Fleet* fleet, const Querier& querier, uint64_t query_id,
    const std::string& target_sql, const sim::DeviceModel& device,
    const RunOptions& options);

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_DISCOVERY_H_
