// ParallelExecutor: the protocol layer's fan-out primitive, wrapping a
// ThreadPool with Status-based (instead of exception-based) error handling.
// One executor lives in each RunContext and is shared by every phase of the
// run: the collection pass over the fleet, the aggregation merge rounds
// (S_Agg levels, Noise per-group partitions, ED_Hist bucket steps) and the
// filtering pass.
//
// Determinism contract: jobs must be independent (disjoint output slots,
// per-index Rng streams forked serially before the fan-out) so that every
// thread count — including 1 — produces bit-identical results. All jobs run
// even when one fails; the lowest-index failure is reported, matching what a
// serial sweep that never short-circuits would report.
#ifndef TCELLS_PROTOCOL_PARALLEL_EXECUTOR_H_
#define TCELLS_PROTOCOL_PARALLEL_EXECUTOR_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"

namespace tcells::protocol {

class ParallelExecutor {
 public:
  /// `num_threads`: 1 = serial (no threads spawned), 0 = hardware
  /// concurrency, N = exactly N including the calling thread.
  explicit ParallelExecutor(size_t num_threads)
      : pool_(ThreadPool::ResolveThreads(num_threads)) {}

  size_t num_threads() const { return pool_.size(); }
  bool parallel() const { return pool_.size() > 1; }

  /// Runs job(0..n-1) to completion (serially in index order when the pool
  /// has size 1, concurrently otherwise) and returns the non-OK status of the
  /// lowest index, or OK. Never short-circuits: side effects are identical
  /// across thread counts even on error paths.
  Status ForEachIndex(size_t n, const std::function<Status(size_t)>& job);

 private:
  ThreadPool pool_;
};

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_PARALLEL_EXECUTOR_H_
