#include "protocol/querier.h"

#include "sql/parser.h"

namespace tcells::protocol {

Result<ssi::QueryPost> Querier::MakePost(uint64_t query_id,
                                         const std::string& sql,
                                         Rng* rng) const {
  TCELLS_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(sql));
  ssi::QueryPost post;
  post.query_id = query_id;
  Bytes sql_bytes(sql.begin(), sql.end());
  post.encrypted_query = keys_->k1_ndet().Encrypt(sql_bytes, rng);
  post.querier_id = id_;
  post.credential_mac = credential_;
  if (stmt.size) {
    post.size_max_tuples = stmt.size->max_tuples;
    post.size_max_duration_ticks = stmt.size->max_duration_ticks;
  }
  return post;
}

Result<sql::AnalyzedQuery> Querier::AnalyzeAgainst(
    const std::string& sql, const storage::Catalog& catalog) const {
  return sql::AnalyzeSql(sql, catalog);
}

Result<sql::QueryResult> Querier::DecryptResult(
    const sql::AnalyzedQuery& query,
    const std::vector<ssi::EncryptedItem>& items) const {
  sql::QueryResult result;
  result.schema = query.result_schema;
  for (const auto& item : items) {
    TCELLS_ASSIGN_OR_RETURN(Bytes plain, keys_->k1_ndet().Decrypt(item.blob));
    TCELLS_ASSIGN_OR_RETURN(ssi::DecodedPayload payload,
                            ssi::DecodePayload(plain));
    if (payload.kind != ssi::PayloadKind::kResultRow) {
      return Status::Corruption("expected a result row");
    }
    TCELLS_ASSIGN_OR_RETURN(storage::Tuple row,
                            storage::Tuple::Decode(payload.body));
    result.rows.push_back(std::move(row));
  }
  // ORDER BY / LIMIT are querier-side: result order must not transit the SSI.
  TCELLS_RETURN_IF_ERROR(sql::ApplyOrderAndLimit(query, &result));
  return result;
}

}  // namespace tcells::protocol
