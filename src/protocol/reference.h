// Plaintext reference oracle: evaluates a query over the union of all local
// databases with everything in the clear. Used by tests, examples and benches
// to check that a distributed protocol run returns exactly the rows a trusted
// centralized evaluator would.
#ifndef TCELLS_PROTOCOL_REFERENCE_H_
#define TCELLS_PROTOCOL_REFERENCE_H_

#include <string>

#include "common/result.h"
#include "protocol/fleet.h"
#include "sql/executor.h"

namespace tcells::protocol {

/// Builds the union database of the whole fleet (same catalog, concatenated
/// rows) and runs the query locally.
Result<sql::QueryResult> ExecuteReference(const Fleet& fleet,
                                          const std::string& sql);

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_REFERENCE_H_
