#include "protocol/discovery.h"

#include "sql/parser.h"

namespace tcells::protocol {

Result<std::shared_ptr<const std::vector<storage::Tuple>>>
DiscoveredDistribution::Domain() const {
  if (frequency.empty()) {
    return Status::FailedPrecondition(
        "discovered distribution is empty; cannot derive the A_G domain");
  }
  auto domain = std::make_shared<std::vector<storage::Tuple>>();
  domain->reserve(frequency.size());
  for (const auto& [key, count] : frequency) domain->push_back(key);
  return std::shared_ptr<const std::vector<storage::Tuple>>(std::move(domain));
}

Result<DiscoveredDistribution> DiscoverDistribution(
    Fleet* fleet, const Querier& querier, uint64_t query_id,
    const std::string& target_sql, const sim::DeviceModel& device,
    const RunOptions& options) {
  TCELLS_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(target_sql));
  if (stmt.group_by.empty()) {
    return Status::InvalidArgument(
        "distribution discovery needs a GROUP BY in the target query");
  }

  // Build: SELECT <A_G...>, COUNT(*) FROM <same tables> GROUP BY <A_G...>.
  std::string sql = "SELECT ";
  for (const auto& g : stmt.group_by) {
    sql += g->ToString() + ", ";
  }
  sql += "COUNT(*) FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i) sql += ", ";
    sql += stmt.from[i].table;
    if (!stmt.from[i].alias.empty()) sql += " " + stmt.from[i].alias;
  }
  sql += " GROUP BY ";
  for (size_t i = 0; i < stmt.group_by.size(); ++i) {
    if (i) sql += ", ";
    sql += stmt.group_by[i]->ToString();
  }

  SAggProtocol s_agg;
  TCELLS_ASSIGN_OR_RETURN(
      RunOutcome outcome,
      RunQuery(s_agg, fleet, querier, query_id, sql, device, options));

  DiscoveredDistribution out;
  out.metrics = std::move(outcome.metrics);
  const size_t arity = stmt.group_by.size();
  for (const auto& row : outcome.result.rows) {
    if (row.size() != arity + 1) {
      return Status::Internal("unexpected discovery row arity");
    }
    storage::Tuple key(std::vector<storage::Value>(
        row.values().begin(), row.values().begin() + arity));
    const storage::Value& count = row.at(arity);
    if (count.type() != storage::ValueType::kInt64) {
      return Status::Internal("discovery count is not an integer");
    }
    out.frequency[std::move(key)] =
        static_cast<uint64_t>(count.AsInt64());
  }
  return out;
}

}  // namespace tcells::protocol
