// Querier: the party posting queries and receiving final results. It shares
// k1 with the TDSs but never sees k2 or any intermediate data — even if it
// colludes with the SSI it learns nothing beyond the final result (§3.2).
#ifndef TCELLS_PROTOCOL_QUERIER_H_
#define TCELLS_PROTOCOL_QUERIER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/keystore.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "ssi/messages.h"
#include "storage/schema.h"

namespace tcells::protocol {

class Querier {
 public:
  /// `credential` is issued by the Authority the TDSs trust.
  Querier(std::string querier_id, Bytes credential,
          std::shared_ptr<const crypto::KeyStore> keys)
      : id_(std::move(querier_id)),
        credential_(std::move(credential)),
        keys_(std::move(keys)) {}

  const std::string& id() const { return id_; }

  /// A copy of this querier operating under different keys — dynamic key
  /// mode builds one per query, holding the derived session KeyStore, so the
  /// post/decrypt paths stay identical between key modes.
  Querier WithKeys(std::shared_ptr<const crypto::KeyStore> keys) const {
    return Querier(id_, credential_, std::move(keys));
  }

  /// Builds the query post: SQL encrypted under k1, the credential, and the
  /// SIZE clause in cleartext for the SSI (§3.2 step 1). The SQL must parse
  /// (the SIZE bounds are extracted from it).
  Result<ssi::QueryPost> MakePost(uint64_t query_id, const std::string& sql,
                                  Rng* rng) const;

  /// Analyzes the query against the publicly-known common catalog (for the
  /// result schema the querier expects).
  Result<sql::AnalyzedQuery> AnalyzeAgainst(
      const std::string& sql, const storage::Catalog& catalog) const;

  /// Decrypts and decodes the final result items (step 13).
  Result<sql::QueryResult> DecryptResult(
      const sql::AnalyzedQuery& query,
      const std::vector<ssi::EncryptedItem>& items) const;

 private:
  std::string id_;
  Bytes credential_;
  std::shared_ptr<const crypto::KeyStore> keys_;
};

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_QUERIER_H_
