#include "protocol/run_context.h"

#include <algorithm>
#include <cmath>

namespace tcells::protocol {

RunContext::RunContext(Fleet* fleet, ssi::Ssi* ssi,
                       const sim::DeviceModel& device, RunOptions options)
    : fleet_(fleet),
      ssi_(ssi),
      device_(device),
      options_(options),
      rng_(options.seed) {}

const std::vector<tds::TrustedDataServer*>& RunContext::compute_pool() {
  if (!pool_sampled_) {
    pool_ = fleet_->SampleAvailable(options_.compute_availability, &rng_);
    pool_sampled_ = true;
    metrics_.available_compute_tds = pool_.size();
  }
  return pool_;
}

Result<std::vector<ssi::EncryptedItem>> RunContext::RunRound(
    sim::Phase phase, const std::vector<ssi::Partition>& partitions,
    const PartitionFn& process) {
  const auto& pool = compute_pool();
  std::vector<ssi::EncryptedItem> outputs;
  double slowest_partition_seconds = 0;

  for (const auto& partition : partitions) {
    uint64_t bytes_in = partition.WireSize();
    uint64_t tuples = partition.items.size();

    // Fault injection: a TDS may drop mid-partition; the SSI re-dispatches
    // after a timeout until a TDS completes it (§3.2 Correctness).
    double partition_seconds = 0;
    std::vector<ssi::EncryptedItem> result_items;
    bool done = false;
    for (size_t attempt = 0; attempt <= options_.max_dropout_retries;
         ++attempt) {
      tds::TrustedDataServer* server =
          pool[rng_.NextBelow(pool.size())];
      bool drops = rng_.NextBool(options_.dropout_rate) &&
                   attempt < options_.max_dropout_retries;
      if (drops) {
        metrics_.accountant.RecordDropout(phase);
        partition_seconds += options_.dropout_timeout_seconds;
        continue;
      }
      TCELLS_ASSIGN_OR_RETURN(result_items, process(server, partition));
      uint64_t bytes_out = 0;
      for (const auto& item : result_items) bytes_out += item.WireSize();
      metrics_.accountant.RecordPartition(phase, server->id(), bytes_in,
                                          bytes_out, tuples);
      partition_seconds += device_.TransferSeconds(bytes_in + bytes_out) +
                           device_.CryptoSeconds(bytes_in + bytes_out) +
                           device_.CpuSeconds(tuples);
      done = true;
      break;
    }
    if (!done) {
      return Status::ResourceExhausted(
          "partition could not be placed after max dropout retries");
    }
    slowest_partition_seconds =
        std::max(slowest_partition_seconds, partition_seconds);
    for (auto& item : result_items) outputs.push_back(std::move(item));
  }

  // Critical path: partitions run in parallel across the pool; more
  // partitions than TDSs serialize into waves.
  double waves = std::ceil(static_cast<double>(partitions.size()) /
                           static_cast<double>(std::max<size_t>(1, pool.size())));
  double round_seconds = slowest_partition_seconds * waves;
  metrics_.accountant.RecordIteration(phase);
  switch (phase) {
    case sim::Phase::kCollection:
      metrics_.times.collection_seconds += round_seconds;
      break;
    case sim::Phase::kAggregation:
      metrics_.times.aggregation_seconds += round_seconds;
      metrics_.aggregation_rounds += 1;
      break;
    case sim::Phase::kFiltering:
      metrics_.times.filtering_seconds += round_seconds;
      break;
  }
  return outputs;
}

void RunContext::RecordCollection(uint64_t tds_id, uint64_t bytes_up,
                                  uint64_t tuples) {
  metrics_.accountant.RecordPartition(sim::Phase::kCollection, tds_id,
                                      /*bytes_in=*/0, bytes_up, tuples);
}

}  // namespace tcells::protocol
