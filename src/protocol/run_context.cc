#include "protocol/run_context.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace tcells::protocol {

namespace {

Status BadOption(const char* what) {
  return Status::InvalidArgument(std::string("RunOptions: ") + what);
}

double WallMicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Transport-level failures degrade the round (the partition is lost);
/// anything else is a protocol error and aborts the run.
bool IsTransportError(const Status& s) {
  return s.IsUnavailable() || s.IsDeadlineExceeded();
}

}  // namespace

net::RetryPolicy TransportRetryPolicy(const RunOptions& options) {
  net::RetryPolicy policy;
  policy.max_attempts = options.max_dropout_retries + 1;
  policy.deadline_seconds = options.transport_deadline_seconds;
  policy.backoff_seconds = options.transport_backoff_seconds;
  policy.backoff_cap_seconds = options.transport_backoff_cap_seconds;
  policy.clock = options.clock;
  return policy;
}

Status RunOptions::Validate() const {
  if (!(compute_availability > 0.0) || compute_availability > 1.0) {
    return BadOption("compute_availability must be in (0, 1]");
  }
  if (dropout_rate < 0.0 || dropout_rate > 1.0) {
    return BadOption("dropout_rate must be in [0, 1]");
  }
  if (dropout_rate > 0.0 && max_dropout_retries == 0) {
    return BadOption(
        "max_dropout_retries must be positive when dropout_rate > 0");
  }
  if (dropout_timeout_seconds < 0.0) {
    return BadOption("dropout_timeout_seconds must be >= 0");
  }
  if (!(alpha > 1.0)) {
    return BadOption("alpha must be > 1 (merge rounds must shrink the set)");
  }
  if (nf < 0) {
    return BadOption("nf must be >= 0");
  }
  if (!(connect_prob_per_tick > 0.0) || connect_prob_per_tick > 1.0) {
    return BadOption("connect_prob_per_tick must be in (0, 1]");
  }
  if (!(transport_deadline_seconds > 0.0)) {
    return BadOption("transport_deadline_seconds must be > 0");
  }
  if (transport_backoff_seconds < 0.0) {
    return BadOption("transport_backoff_seconds must be >= 0");
  }
  if (transport_backoff_cap_seconds < transport_backoff_seconds) {
    return BadOption(
        "transport_backoff_cap_seconds must be >= transport_backoff_seconds");
  }
  return Status::OK();
}

RunContext::RunContext(Fleet* fleet, net::SsiApi* client, uint64_t query_id,
                       const sim::DeviceModel& device, RunOptions options,
                       obs::MetricsRegistry* metrics_registry,
                       obs::Trace* trace)
    : fleet_(fleet),
      client_(client),
      query_id_(query_id),
      device_(device),
      options_(options),
      rng_(options.seed),
      executor_(options.num_threads),
      metrics_registry_(metrics_registry),
      trace_(trace) {}

const std::vector<tds::TrustedDataServer*>& RunContext::compute_pool() {
  if (!pool_sampled_) {
    pool_ = fleet_->SampleAvailable(options_.compute_availability, &rng_);
    // Dynamic key mode: revoked TDSs are dropped AFTER sampling, so the rng
    // draw sequence (and hence every non-revoked TDS's partition stream) is
    // unchanged by who happens to be revoked.
    if (options_.key_authority != nullptr) {
      pool_.erase(std::remove_if(pool_.begin(), pool_.end(),
                                 [&](tds::TrustedDataServer* server) {
                                   return options_.key_authority->IsRevoked(
                                       server->id());
                                 }),
                  pool_.end());
    }
    pool_sampled_ = true;
    metrics_.available_compute_tds = pool_.size();
  }
  return pool_;
}

obs::Span* RunContext::EnsureCollectionSpan() {
  if (trace_ == nullptr) return nullptr;
  if (collection_span_ == nullptr) {
    collection_span_ = trace_->StartSpan(nullptr, obs::kSpanCollection);
    collection_span_->labels["phase"] =
        sim::PhaseToString(sim::Phase::kCollection);
  }
  return collection_span_;
}

Result<std::vector<ssi::EncryptedItem>> RunContext::RunRound(
    sim::Phase phase, const std::vector<ssi::Partition>& partitions,
    const PartitionFn& process) {
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled before round");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto& pool = compute_pool();
  if (pool.empty() && !partitions.empty()) {
    // Only reachable when revocation emptied the sampled pool.
    return Status::FailedPrecondition(
        "no non-revoked compute TDS available for the round");
  }
  const size_t n = partitions.size();

  // Serial prelude: fork one private Rng stream per partition. This is the
  // only master-Rng consumption of the round, so it is independent of the
  // thread count — and everything a task draws comes from its own stream.
  std::vector<Rng> streams;
  streams.reserve(n);
  for (size_t i = 0; i < n; ++i) streams.push_back(rng_.Fork());

  // Per-partition results, filled by the fan-out into disjoint slots.
  struct PartitionRun {
    std::vector<ssi::EncryptedItem> items;
    uint64_t server_id = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t tuples = 0;
    uint64_t dropouts = 0;
    double seconds = 0;
    /// Transport retry budget exhausted: the round degrades without this
    /// partition instead of failing the query.
    bool lost = false;
    /// The partition fetched back from the SSI was not the one staged (a
    /// stale or swapped input), or the round output taken back did not match
    /// the bytes the TDS uploaded — detected inside the task.
    bool tampered = false;
  };
  std::vector<PartitionRun> runs(n);

  TCELLS_RETURN_IF_ERROR(executor_.ForEachIndex(n, [&](size_t i) -> Status {
    const ssi::Partition& partition = partitions[i];
    Rng& prng = streams[i];
    PartitionRun& run = runs[i];
    run.bytes_in = partition.WireSize();
    run.tuples = partition.items.size();

    // Stage the partition with the SSI so the assigned TDS can download it
    // (and re-download it after an injected dropout).
    Status staged = client_->StagePartition(query_id_, i, partition);
    if (IsTransportError(staged)) {
      run.lost = true;
      return Status::OK();
    }
    TCELLS_RETURN_IF_ERROR(staged);

    // Fault injection: a TDS may drop mid-partition; the SSI re-dispatches
    // after a timeout until a TDS completes it (§3.2 Correctness). The Rng
    // consumption here is exactly one NextBelow + NextBool per attempt —
    // transport calls draw nothing — so the dropout schedule is identical
    // on every backend.
    for (size_t attempt = 0; attempt <= options_.max_dropout_retries;
         ++attempt) {
      tds::TrustedDataServer* server = pool[prng.NextBelow(pool.size())];
      bool drops = prng.NextBool(options_.dropout_rate) &&
                   attempt < options_.max_dropout_retries;
      if (drops) {
        run.dropouts += 1;
        run.seconds += options_.dropout_timeout_seconds;
        continue;
      }
      // The TDS downloads its partition from the SSI, processes it locally,
      // and uploads the round output.
      Result<ssi::Partition> fetched =
          client_->FetchPartition(query_id_, i);
      if (IsTransportError(fetched.status())) {
        run.lost = true;
        return Status::OK();
      }
      TCELLS_RETURN_IF_ERROR(fetched.status());
      // Input integrity: this round staged the partition itself, so the
      // bytes fetched back must match exactly. A mismatch means the SSI
      // served a stale or swapped partition (e.g. a replayed stage-ack hid
      // that the fresh partition never arrived); processing it would fold
      // wrong inputs into the result with nothing visibly lost. The staged
      // copy is still in hand, so a direct item comparison gives the same
      // detection power as the digest comparison it replaces, without
      // re-encoding and hashing both sides.
      if (fetched->items != partition.items) {
        run.lost = true;
        run.tampered = true;
        return Status::OK();
      }
      TCELLS_ASSIGN_OR_RETURN(run.items, process(server, *fetched, &prng));
      run.server_id = server->id();
      for (const auto& item : run.items) run.bytes_out += item.WireSize();
      run.seconds += device_.TransferSeconds(run.bytes_in + run.bytes_out) +
                     device_.CryptoSeconds(run.bytes_in + run.bytes_out) +
                     device_.CpuSeconds(run.tuples);
      Status uploaded = client_->UploadRoundOutput(query_id_, i, run.items);
      if (IsTransportError(uploaded)) {
        run.lost = true;
        return Status::OK();
      }
      TCELLS_RETURN_IF_ERROR(uploaded);
      // Download the round output back inside the task — per-partition SSI
      // state is keyed by (query_id, token), so takes from concurrent tasks
      // never interleave on shared state, and the transport draws no rng.
      // The codec round trip is lossless; the bytes served must be exactly
      // the bytes this TDS uploaded. A mismatch means a byzantine SSI
      // replayed a stale output or swapped partitions — the partition is
      // dropped (counted as both tampered and lost) rather than folded into
      // the result.
      Result<std::vector<ssi::EncryptedItem>> downloaded =
          client_->TakeRoundOutput(query_id_, i);
      if (IsTransportError(downloaded.status())) {
        run.lost = true;
        return Status::OK();
      }
      TCELLS_RETURN_IF_ERROR(downloaded.status());
      if (*downloaded != run.items) {
        run.lost = true;
        run.tampered = true;
        return Status::OK();
      }
      run.items = *std::move(downloaded);
      return Status::OK();
    }
    return Status::ResourceExhausted(
        "partition could not be placed after max dropout retries");
  }));

  // Serial epilogue: fold outputs, accounting and telemetry in partition
  // order, so the accountant's tallies, the span tree and the item
  // concatenation are identical whatever the completion order of the tasks
  // above was.
  std::vector<ssi::EncryptedItem> outputs;
  size_t total_items = 0;
  for (const PartitionRun& run : runs) total_items += run.items.size();
  outputs.reserve(total_items);
  uint64_t round_bytes_in = 0, round_bytes_out = 0;
  uint64_t round_tuples = 0, round_dropouts = 0;
  size_t round_lost = 0, round_tampered = 0;
  double slowest_partition_seconds = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    PartitionRun& run = runs[i];
    for (uint64_t d = 0; d < run.dropouts; ++d) {
      metrics_.accountant.RecordDropout(phase);
    }
    metrics_.accountant.RecordPartition(phase, run.server_id, run.bytes_in,
                                        run.bytes_out, run.tuples);
    round_bytes_in += run.bytes_in;
    round_bytes_out += run.bytes_out;
    round_tuples += run.tuples;
    round_dropouts += run.dropouts;
    slowest_partition_seconds =
        std::max(slowest_partition_seconds, run.seconds);
    if (metrics_registry_ != nullptr) {
      metrics_registry_->histogram("engine.partition_bytes_out",
                                   obs::Histogram::DefaultSizeBounds())
          .Record(static_cast<double>(run.bytes_out));
    }
    if (run.lost) {
      round_lost += 1;
      if (run.tampered) round_tampered += 1;
      continue;
    }
    // The items were taken back and integrity-checked inside the task;
    // folding them here in partition order keeps the concatenation
    // byte-identical for any thread count or completion order.
    for (auto& item : run.items) outputs.push_back(std::move(item));
  }
  metrics_.partitions_lost += round_lost;
  metrics_.partitions_tampered += round_tampered;

  // Critical path: partitions run in parallel across the pool; more
  // partitions than TDSs serialize into waves.
  double waves = std::ceil(static_cast<double>(n) /
                           static_cast<double>(std::max<size_t>(1, pool.size())));
  double round_seconds = slowest_partition_seconds * waves;
  const double round_wall_micros = WallMicrosSince(t0);
  metrics_.accountant.RecordIteration(phase);
  switch (phase) {
    case sim::Phase::kCollection:
      metrics_.times.collection_seconds += round_seconds;
      metrics_.collection_wall_micros += round_wall_micros;
      break;
    case sim::Phase::kAggregation:
      metrics_.times.aggregation_seconds += round_seconds;
      metrics_.aggregation_wall_micros += round_wall_micros;
      metrics_.aggregation_rounds += 1;
      break;
    case sim::Phase::kFiltering:
      metrics_.times.filtering_seconds += round_seconds;
      metrics_.filtering_wall_micros += round_wall_micros;
      break;
  }

  if (trace_ != nullptr) {
    const char* span_name = obs::kSpanCollection;
    if (phase == sim::Phase::kAggregation) {
      span_name = obs::kSpanAggregationRound;
    } else if (phase == sim::Phase::kFiltering) {
      span_name = obs::kSpanFilteringRound;
    }
    obs::Span* span = trace_->StartSpan(nullptr, span_name);
    span->labels["phase"] = sim::PhaseToString(phase);
    span->sim_begin_seconds = sim_now_seconds_;
    span->sim_end_seconds = sim_now_seconds_ + round_seconds;
    span->wall_micros = WallMicrosSince(t0);
    span->counts["partitions"] = n;
    span->counts["bytes_in"] = round_bytes_in;
    span->counts["bytes_out"] = round_bytes_out;
    span->counts["tuples"] = round_tuples;
    span->counts["dropouts"] = round_dropouts;
    span->counts["partitions_lost"] = round_lost;
    span->counts["partitions_tampered"] = round_tampered;
    span->counts["compute_pool"] = pool.size();
    span->values["sim_seconds"] = round_seconds;
    span->values["waves"] = waves;
  }
  sim_now_seconds_ += round_seconds;

  if (metrics_registry_ != nullptr) {
    metrics_registry_->counter("engine.rounds").Increment();
    metrics_registry_->counter("engine.partitions").Add(n);
    metrics_registry_->counter("engine.bytes_downloaded").Add(round_bytes_in);
    metrics_registry_->counter("engine.bytes_uploaded").Add(round_bytes_out);
    metrics_registry_->counter("engine.tuples_processed").Add(round_tuples);
    metrics_registry_->counter("engine.dropout_redispatches")
        .Add(round_dropouts);
    metrics_registry_->counter("engine.partitions_lost").Add(round_lost);
    metrics_registry_->counter("engine.partitions_tampered")
        .Add(round_tampered);
    metrics_registry_
        ->histogram("engine.round_sim_seconds",
                    obs::Histogram::DefaultLatencyBounds())
        .Record(round_seconds);
    metrics_registry_
        ->histogram("engine.round_wall_micros",
                    obs::Histogram::ExponentialBounds(1.0, 8, 10))
        .Record(WallMicrosSince(t0));
  }
  return outputs;
}

void RunContext::RecordCollection(uint64_t tds_id, uint64_t bytes_up,
                                  uint64_t tuples) {
  metrics_.accountant.RecordPartition(sim::Phase::kCollection, tds_id,
                                      /*bytes_in=*/0, bytes_up, tuples);
  if (obs::Span* span = EnsureCollectionSpan()) {
    span->AddCount("partitions", 1);
    span->AddCount("bytes_out", bytes_up);
    span->AddCount("tuples", tuples);
  }
  if (metrics_registry_ != nullptr) {
    metrics_registry_->counter("engine.collection_contributions").Increment();
    metrics_registry_->counter("engine.bytes_uploaded").Add(bytes_up);
    metrics_registry_->counter("engine.tuples_processed").Add(tuples);
  }
}

}  // namespace tcells::protocol
