#include "protocol/run_context.h"

#include <algorithm>
#include <cmath>

namespace tcells::protocol {

RunContext::RunContext(Fleet* fleet, ssi::Ssi* ssi,
                       const sim::DeviceModel& device, RunOptions options)
    : fleet_(fleet),
      ssi_(ssi),
      device_(device),
      options_(options),
      rng_(options.seed),
      executor_(options.num_threads) {}

const std::vector<tds::TrustedDataServer*>& RunContext::compute_pool() {
  if (!pool_sampled_) {
    pool_ = fleet_->SampleAvailable(options_.compute_availability, &rng_);
    pool_sampled_ = true;
    metrics_.available_compute_tds = pool_.size();
  }
  return pool_;
}

Result<std::vector<ssi::EncryptedItem>> RunContext::RunRound(
    sim::Phase phase, const std::vector<ssi::Partition>& partitions,
    const PartitionFn& process) {
  const auto& pool = compute_pool();
  const size_t n = partitions.size();

  // Serial prelude: fork one private Rng stream per partition. This is the
  // only master-Rng consumption of the round, so it is independent of the
  // thread count — and everything a task draws comes from its own stream.
  std::vector<Rng> streams;
  streams.reserve(n);
  for (size_t i = 0; i < n; ++i) streams.push_back(rng_.Fork());

  // Per-partition results, filled by the fan-out into disjoint slots.
  struct PartitionRun {
    std::vector<ssi::EncryptedItem> items;
    uint64_t server_id = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t tuples = 0;
    uint64_t dropouts = 0;
    double seconds = 0;
  };
  std::vector<PartitionRun> runs(n);

  TCELLS_RETURN_IF_ERROR(executor_.ForEachIndex(n, [&](size_t i) -> Status {
    const ssi::Partition& partition = partitions[i];
    Rng& prng = streams[i];
    PartitionRun& run = runs[i];
    run.bytes_in = partition.WireSize();
    run.tuples = partition.items.size();

    // Fault injection: a TDS may drop mid-partition; the SSI re-dispatches
    // after a timeout until a TDS completes it (§3.2 Correctness).
    for (size_t attempt = 0; attempt <= options_.max_dropout_retries;
         ++attempt) {
      tds::TrustedDataServer* server = pool[prng.NextBelow(pool.size())];
      bool drops = prng.NextBool(options_.dropout_rate) &&
                   attempt < options_.max_dropout_retries;
      if (drops) {
        run.dropouts += 1;
        run.seconds += options_.dropout_timeout_seconds;
        continue;
      }
      TCELLS_ASSIGN_OR_RETURN(run.items, process(server, partition, &prng));
      run.server_id = server->id();
      for (const auto& item : run.items) run.bytes_out += item.WireSize();
      run.seconds += device_.TransferSeconds(run.bytes_in + run.bytes_out) +
                     device_.CryptoSeconds(run.bytes_in + run.bytes_out) +
                     device_.CpuSeconds(run.tuples);
      return Status::OK();
    }
    return Status::ResourceExhausted(
        "partition could not be placed after max dropout retries");
  }));

  // Serial epilogue: fold outputs and accounting in partition order, so the
  // accountant's tallies and the item concatenation are identical whatever
  // the completion order of the tasks above was.
  std::vector<ssi::EncryptedItem> outputs;
  double slowest_partition_seconds = 0;
  for (PartitionRun& run : runs) {
    for (uint64_t d = 0; d < run.dropouts; ++d) {
      metrics_.accountant.RecordDropout(phase);
    }
    metrics_.accountant.RecordPartition(phase, run.server_id, run.bytes_in,
                                        run.bytes_out, run.tuples);
    slowest_partition_seconds =
        std::max(slowest_partition_seconds, run.seconds);
    for (auto& item : run.items) outputs.push_back(std::move(item));
  }

  // Critical path: partitions run in parallel across the pool; more
  // partitions than TDSs serialize into waves.
  double waves = std::ceil(static_cast<double>(n) /
                           static_cast<double>(std::max<size_t>(1, pool.size())));
  double round_seconds = slowest_partition_seconds * waves;
  metrics_.accountant.RecordIteration(phase);
  switch (phase) {
    case sim::Phase::kCollection:
      metrics_.times.collection_seconds += round_seconds;
      break;
    case sim::Phase::kAggregation:
      metrics_.times.aggregation_seconds += round_seconds;
      metrics_.aggregation_rounds += 1;
      break;
    case sim::Phase::kFiltering:
      metrics_.times.filtering_seconds += round_seconds;
      break;
  }
  return outputs;
}

void RunContext::RecordCollection(uint64_t tds_id, uint64_t bytes_up,
                                  uint64_t tuples) {
  metrics_.accountant.RecordPartition(sim::Phase::kCollection, tds_id,
                                      /*bytes_in=*/0, bytes_up, tuples);
}

}  // namespace tcells::protocol
