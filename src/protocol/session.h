// QuerySession: several concurrent queries over one fleet, routed through
// the SSI's querybox hub (§3.1). Each connecting TDS downloads all active
// queries addressed to it (global + personal), serves each exactly once, and
// the per-query protocol phases then complete independently.
//
// This is the "many queries in flight" operating mode the paper's Load_Q
// metric is about. The single-query RunQuery (protocols.h) is a thin wrapper
// over this path, so there is exactly one execution engine; the tcells::Engine
// facade (tcells/engine.h) adds telemetry plumbing on top.
#ifndef TCELLS_PROTOCOL_SESSION_H_
#define TCELLS_PROTOCOL_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "net/loopback.h"
#include "net/ssi_client.h"
#include "net/ssi_node.h"
#include "obs/trace.h"
#include "protocol/protocols.h"

namespace tcells::protocol {

class QuerySession {
 public:
  /// `telemetry` carries optional sinks: when a Tracer is present every
  /// submitted query records a span tree (returned in its RunOutcome), and a
  /// MetricsRegistry accumulates engine counters/histograms across queries.
  ///
  /// `client` is the channel to the SSI all queries of this session go
  /// through (borrowed; e.g. an Engine's shared — possibly sharded — client).
  /// When null, the session owns a private SSI behind the in-process loopback
  /// transport — the default and bit-identical to the TCP path.
  QuerySession(Fleet* fleet, const sim::DeviceModel& device,
               RunOptions options, obs::Telemetry telemetry = {},
               net::SsiApi* client = nullptr);

  /// Registers a query addressed to the whole crowd. `querier` and
  /// `protocol` must outlive the session. Fails on duplicate id, invalid
  /// RunOptions (RunOptions::Validate), or when the protocol rejects the
  /// query shape.
  Status Submit(uint64_t query_id, const Querier* querier, Protocol* protocol,
                const std::string& sql);

  /// Registers a query addressed to one TDS only (personal querybox).
  Status SubmitPersonal(uint64_t query_id, uint64_t tds_id,
                        const Querier* querier, Protocol* protocol,
                        const std::string& sql);

  size_t num_pending() const { return queries_.size(); }

  /// Runs interleaved collection over the querybox hub, then completes
  /// aggregation + filtering + decryption per query. Returns one outcome per
  /// submitted query id.
  ///
  /// `max_ticks == 0` (the default) derives each query's collection window
  /// from its own SIZE ... DURATION clause: a query with `DURATION d` stays
  /// open for d connection ticks, a query without one does a single full
  /// pass (everyone connects once) — unless some other query in the batch is
  /// DURATION-bounded, in which case the batch runs in ticked mode and the
  /// unbounded query stays open until every TDS has served it. An explicit
  /// `max_ticks > 0` forces one shared window of that many ticks for all
  /// queries (ticked connectivity when max_ticks > 1). A query also closes
  /// early when its SIZE bound is reached or all eligible TDSs have served
  /// it.
  Result<std::map<uint64_t, RunOutcome>> RunAll(uint64_t max_ticks = 0);

 private:
  struct PendingQuery {
    const Querier* querier = nullptr;
    Protocol* protocol = nullptr;
    std::string sql;
    sql::AnalyzedQuery analyzed;
    tds::CollectionConfig config;
    std::unique_ptr<RunContext> ctx;
    std::optional<uint64_t> personal_tds;
    /// Dynamic key mode: this query's public key posting and the querier
    /// clone holding the derived per-query session keys. The clone posts and
    /// decrypts; the borrowed `querier` stays untouched.
    std::optional<ssi::QueryKeyPosting> key_posting;
    std::optional<Querier> session_querier;
    /// The querier instance that posted and therefore decrypts the result.
    const Querier& reader() const {
      return session_querier ? *session_querier : *querier;
    }
    /// The post's SIZE ... DURATION bound, captured at submit time.
    std::optional<uint64_t> duration_ticks;
    /// This query's span tree (null when the session has no Tracer).
    std::shared_ptr<obs::Trace> trace;
  };

  Status SubmitInternal(uint64_t query_id, std::optional<uint64_t> tds_id,
                        const Querier* querier, Protocol* protocol,
                        const std::string& sql);

  /// TDSs that can possibly serve the query (fleet for global, 1 personal).
  size_t EligibleServers(const PendingQuery& query) const;

  Fleet* fleet_;
  sim::DeviceModel device_;
  RunOptions options_;
  obs::Telemetry telemetry_;
  /// The session-owned loopback stack, used when no external client was
  /// given. unique_ptr keeps the addresses stable across session moves.
  std::unique_ptr<net::SsiNode> owned_node_;
  std::unique_ptr<net::LoopbackTransport> owned_transport_;
  std::unique_ptr<net::SsiClient> owned_client_;
  net::SsiApi* client_;
  std::map<uint64_t, PendingQuery> queries_;
};

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_SESSION_H_
