// QuerySession: several concurrent queries over one fleet, routed through
// the SSI's querybox hub (§3.1). Each connecting TDS downloads all active
// queries addressed to it (global + personal), serves each exactly once, and
// the per-query protocol phases then complete independently.
//
// This is the "many queries in flight" operating mode the paper's Load_Q
// metric is about; RunQuery (protocols.h) is the single-query special case.
#ifndef TCELLS_PROTOCOL_SESSION_H_
#define TCELLS_PROTOCOL_SESSION_H_

#include <map>
#include <memory>
#include <string>

#include "protocol/protocols.h"
#include "ssi/querybox.h"

namespace tcells::protocol {

class QuerySession {
 public:
  QuerySession(Fleet* fleet, const sim::DeviceModel& device,
               RunOptions options)
      : fleet_(fleet), device_(device), options_(options) {}

  /// Registers a query addressed to the whole crowd. `querier` and
  /// `protocol` must outlive the session. Fails on duplicate id or when the
  /// protocol rejects the query shape.
  Status Submit(uint64_t query_id, const Querier* querier, Protocol* protocol,
                const std::string& sql);

  /// Registers a query addressed to one TDS only (personal querybox).
  Status SubmitPersonal(uint64_t query_id, uint64_t tds_id,
                        const Querier* querier, Protocol* protocol,
                        const std::string& sql);

  size_t num_pending() const { return queries_.size(); }

  /// Runs interleaved collection (TDSs connect per tick with
  /// options.connect_prob_per_tick and serve every fetched query), bounded
  /// by `max_ticks`, then completes aggregation + filtering per query.
  /// Returns one outcome per submitted query id.
  Result<std::map<uint64_t, RunOutcome>> RunAll(uint64_t max_ticks = 1);

 private:
  struct PendingQuery {
    const Querier* querier = nullptr;
    Protocol* protocol = nullptr;
    std::string sql;
    sql::AnalyzedQuery analyzed;
    tds::CollectionConfig config;
    std::unique_ptr<RunContext> ctx;
    std::optional<uint64_t> personal_tds;
  };

  Status SubmitInternal(uint64_t query_id, std::optional<uint64_t> tds_id,
                        const Querier* querier, Protocol* protocol,
                        const std::string& sql);

  Fleet* fleet_;
  sim::DeviceModel device_;
  RunOptions options_;
  ssi::QueryboxHub hub_;
  std::map<uint64_t, PendingQuery> queries_;
};

}  // namespace tcells::protocol

#endif  // TCELLS_PROTOCOL_SESSION_H_
