#include "protocol/fleet.h"

#include <algorithm>

namespace tcells::protocol {

std::vector<tds::TrustedDataServer*> Fleet::SampleAvailable(double fraction,
                                                            Rng* rng) {
  size_t want = static_cast<size_t>(fraction * static_cast<double>(size()));
  want = std::max<size_t>(1, std::min(want, size()));
  std::vector<size_t> indices(size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  std::vector<tds::TrustedDataServer*> out;
  out.reserve(want);
  for (size_t i = 0; i < want; ++i) out.push_back(servers_[indices[i]].get());
  return out;
}

}  // namespace tcells::protocol
