#include "protocol/fleet.h"

#include <algorithm>

namespace tcells::protocol {

std::vector<tds::TrustedDataServer*> Fleet::SampleAvailable(double fraction,
                                                            Rng* rng) {
  // An empty fleet has nobody to sample; the clamp below must not round
  // `want` up to 1 in that case — indexing the shuffled list would read past
  // the end of an empty vector.
  if (servers_.empty()) return {};
  // Guard the cast: a negative fraction would be UB to convert to size_t.
  size_t want =
      fraction > 0.0
          ? static_cast<size_t>(fraction * static_cast<double>(size()))
          : 0;
  want = std::max<size_t>(1, std::min(want, size()));
  std::vector<size_t> indices(size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng->Shuffle(&indices);
  std::vector<tds::TrustedDataServer*> out;
  out.reserve(want);
  for (size_t i = 0; i < want; ++i) out.push_back(servers_[indices[i]].get());
  return out;
}

}  // namespace tcells::protocol
