// Byte-buffer type and little-endian (de)serialization helpers used for
// tuple wire encoding and ciphertext payloads.
#ifndef TCELLS_COMMON_BYTES_H_
#define TCELLS_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tcells {

using Bytes = std::vector<uint8_t>;

/// Appends fixed-width little-endian integers and length-prefixed blobs to a
/// growing byte vector. All protocol payloads in the library are encoded
/// through this writer so the format is uniform.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes* out) : out_(out) {}

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  /// Length-prefixed (u32) byte string.
  void PutBytes(const Bytes& b);
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix.
  void PutRaw(const uint8_t* data, size_t n);

 private:
  Bytes* out_;
};

/// Reads values written by ByteWriter; every getter returns Corruption on
/// underflow rather than reading past the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<Bytes> GetBytes();
  Result<std::string> GetString();
  /// `n` raw bytes with no length prefix (the caller validated `n`);
  /// Corruption on underflow, checked before the copy allocates.
  Result<Bytes> GetRaw(size_t n);

  /// Reads a u32 element count and rejects it (Corruption) unless at least
  /// `count * min_bytes_per_element` bytes remain. Every decoder that loops
  /// over a declared count reads it through this, so hostile length fields
  /// fail fast instead of driving huge reservations or long error-path
  /// loops. `min_bytes_per_element` must be > 0.
  Result<uint32_t> GetCountU32(size_t min_bytes_per_element);
  /// Same for a u16 count (tuple arities).
  Result<uint16_t> GetCountU16(size_t min_bytes_per_element);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace tcells

#endif  // TCELLS_COMMON_BYTES_H_
