// Injectable clock seam: everything in the transport stack that sleeps or
// reads wall time goes through a Clock*, so tests and the fault-injection
// campaign can substitute a VirtualClock where sleeps complete instantly and
// time advances deterministically. Production code passes nullptr and gets
// the real wall clock.
#ifndef TCELLS_COMMON_CLOCK_H_
#define TCELLS_COMMON_CLOCK_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace tcells {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic seconds since an arbitrary epoch.
  virtual double NowSeconds() = 0;
  /// Blocks the calling thread for `seconds` (no-op when <= 0).
  virtual void SleepFor(double seconds) = 0;

  /// The process-wide real wall clock (steady, monotonic). Never null.
  static Clock* Real();
};

/// A clock where SleepFor advances virtual time instantly instead of
/// blocking. Thread-safe; the total slept and the per-call sleep history are
/// recorded so tests can assert exact backoff schedules without margins.
///
/// Note on determinism: NowSeconds() observed by concurrent threads depends
/// on their interleaving, but the *sum* of sleeps is schedule-independent —
/// deterministic code must only rely on total_slept_seconds() / sleeps().
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(double start_seconds = 0.0)
      : now_seconds_(start_seconds) {}

  double NowSeconds() override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_seconds_;
  }

  void SleepFor(double seconds) override {
    if (seconds <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    now_seconds_ += seconds;
    total_slept_seconds_ += seconds;
    sleeps_.push_back(seconds);
  }

  /// Manually advances virtual time (e.g. to model elapsed idle time).
  void Advance(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    now_seconds_ += seconds;
  }

  double total_slept_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_slept_seconds_;
  }

  /// Every SleepFor duration in call order.
  std::vector<double> sleeps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sleeps_;
  }

 private:
  mutable std::mutex mu_;
  double now_seconds_;
  double total_slept_seconds_ = 0;
  std::vector<double> sleeps_;
};

}  // namespace tcells

#endif  // TCELLS_COMMON_CLOCK_H_
