// Small string helpers shared by the SQL front-end and debug printers.
#ifndef TCELLS_COMMON_STRINGS_H_
#define TCELLS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tcells {

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

}  // namespace tcells

#endif  // TCELLS_COMMON_STRINGS_H_
