#include "common/clock.h"

#include <chrono>
#include <thread>

namespace tcells {

namespace {

class RealClock : public Clock {
 public:
  double NowSeconds() override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepFor(double seconds) override {
    if (seconds <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* real = new RealClock();
  return real;
}

}  // namespace tcells
