// Result<T>: a Status or a value of type T, in the style of arrow::Result.
#ifndef TCELLS_COMMON_RESULT_H_
#define TCELLS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tcells {

/// Holds either an error Status or a value of type T. A Result constructed
/// from Status must carry a non-OK status (an OK status with no value is a
/// programming error and is converted to kInternal).
template <typename T>
class Result {
 public:
  /// Implicit conversion from an error Status so that
  /// `return Status::InvalidArgument(...)` works in Result-returning code.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Implicit conversion from a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or `alternative` when in error state.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tcells

#endif  // TCELLS_COMMON_RESULT_H_
