// Chunked bump allocator for the per-partition hot path.
//
// The steady-state query path (open partition -> decode tuples -> accumulate)
// used to hit operator new for every decrypted plaintext. An Arena owns those
// short-lived buffers instead: allocations are pointer bumps into large
// chunks, and Reset() recycles everything at once when the partition is done.
// After the first partition warms the chunk list, the path allocates nothing.
#ifndef TCELLS_COMMON_ARENA_H_
#define TCELLS_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tcells {

/// Bump allocator backed by a list of geometrically growing chunks.
///
/// Lifetime rules (see docs/PERFORMANCE.md "hot path"):
///  - Pointers returned by Allocate() are valid until the next Reset().
///  - Reset() keeps the largest chunk, so a warmed arena serves a
///    steady-state partition without touching the system allocator.
///  - Not thread-safe; intended for one thread's scratch (thread_local).
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t min_chunk_bytes = kDefaultChunkBytes)
      : min_chunk_bytes_(min_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `n` bytes aligned to `align` (a power of two). Never fails:
  /// oversized requests get their own dedicated chunk.
  uint8_t* Allocate(size_t n, size_t align = alignof(std::max_align_t));

  /// Copies `[data, data+n)` into the arena and returns the copy.
  uint8_t* Copy(const uint8_t* data, size_t n);

  /// Recycles all allocations. Keeps only the largest chunk so the warmed
  /// capacity survives but fragmentation from growth does not.
  void Reset();

  /// Bytes handed out since the last Reset().
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total capacity currently held across all chunks.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  /// Makes `head_` a chunk with at least `n` free bytes.
  void AddChunk(size_t n);

  std::vector<Chunk> chunks_;
  uint8_t* head_ = nullptr;   // next free byte in the active chunk
  uint8_t* limit_ = nullptr;  // one past the active chunk's end
  size_t min_chunk_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace tcells

#endif  // TCELLS_COMMON_ARENA_H_
