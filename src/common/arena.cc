#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace tcells {

uint8_t* Arena::Allocate(size_t n, size_t align) {
  uintptr_t p = reinterpret_cast<uintptr_t>(head_);
  uintptr_t aligned = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
  if (head_ == nullptr || aligned + n > reinterpret_cast<uintptr_t>(limit_)) {
    AddChunk(n + align);
    p = reinterpret_cast<uintptr_t>(head_);
    aligned = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
  }
  head_ = reinterpret_cast<uint8_t*>(aligned + n);
  bytes_allocated_ += n;
  return reinterpret_cast<uint8_t*>(aligned);
}

uint8_t* Arena::Copy(const uint8_t* data, size_t n) {
  uint8_t* out = Allocate(n, 1);
  if (n > 0) std::memcpy(out, data, n);
  return out;
}

void Arena::Reset() {
  bytes_allocated_ = 0;
  if (chunks_.empty()) return;
  // Keep only the largest chunk: it is big enough for everything the last
  // partition needed in one piece, so steady state stays allocation-free.
  auto largest = std::max_element(
      chunks_.begin(), chunks_.end(),
      [](const Chunk& a, const Chunk& b) { return a.size < b.size; });
  std::swap(*largest, chunks_.front());
  chunks_.resize(1);
  bytes_reserved_ = chunks_.front().size;
  head_ = chunks_.front().data.get();
  limit_ = head_ + chunks_.front().size;
}

void Arena::AddChunk(size_t n) {
  // Double the footprint each growth so a partition of any size settles into
  // O(log size) chunks before Reset() collapses them to one.
  size_t size = std::max(min_chunk_bytes_, bytes_reserved_);
  size = std::max(size, n);
  Chunk chunk;
  chunk.data = std::make_unique<uint8_t[]>(size);
  chunk.size = size;
  head_ = chunk.data.get();
  limit_ = head_ + size;
  bytes_reserved_ += size;
  chunks_.push_back(std::move(chunk));
}

}  // namespace tcells
