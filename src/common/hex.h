// Hex encoding/decoding, mainly for test fixtures (crypto test vectors) and
// debug output of ciphertexts.
#ifndef TCELLS_COMMON_HEX_H_
#define TCELLS_COMMON_HEX_H_

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace tcells {

/// Lower-case hex string of `data`.
std::string ToHex(const Bytes& data);
std::string ToHex(const uint8_t* data, size_t n);

/// Parses a hex string (case-insensitive, even length, no separators).
Result<Bytes> FromHex(std::string_view hex);

}  // namespace tcells

#endif  // TCELLS_COMMON_HEX_H_
