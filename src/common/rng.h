// Deterministic pseudo-random generation for simulations and workload
// generators. Not used for cryptographic nonces in a real deployment; in this
// simulated environment the CTR nonces also come from here so that whole
// protocol runs are reproducible from a seed.
#ifndef TCELLS_COMMON_RNG_H_
#define TCELLS_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace tcells {

/// xoshiro256** with splitmix64 seeding. Fast, decent quality, reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound), bound > 0 (unbiased via rejection).
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial.
  bool NextBool(double p_true = 0.5);

  /// `n` random bytes.
  Bytes NextBytes(size_t n);

  /// Writes `n` random bytes to `out` — the identical byte stream NextBytes
  /// would return, without the allocation (hot seal paths draw one IV per
  /// tuple).
  void FillBytes(uint8_t* out, size_t n);

  /// Derives an independent child generator by drawing one value from this
  /// stream (the child re-expands it through splitmix64 seeding, so parent
  /// and child sequences are well separated). Forking serially and handing
  /// each partition/TDS its own child stream makes parallel fan-out
  /// bit-identical to serial execution: the bits any task draws depend only
  /// on the fork order, never on thread scheduling.
  Rng Fork() { return Rng(Next()); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1} via inverse-CDF on a
/// precomputed table. Rank 0 is the most frequent value. Used to build the
/// skewed A_G distributions of Section 5's exposure experiments.
class ZipfSampler {
 public:
  /// `n` distinct values, exponent `s` (s=0 is uniform; s≈1 is classic Zipf).
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng* rng) const;
  size_t n() const { return cdf_.size(); }
  /// Probability of rank `i`.
  double Pmf(size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace tcells

#endif  // TCELLS_COMMON_RNG_H_
