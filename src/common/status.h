// Status: lightweight error propagation without exceptions, in the style of
// RocksDB/Arrow. Library code returns Status (or Result<T>, see result.h)
// instead of throwing; callers are expected to check.
#ifndef TCELLS_COMMON_STATUS_H_
#define TCELLS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace tcells {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kNotFound,          ///< Named entity (table, column, query) does not exist.
  kPermissionDenied,  ///< Access-control check failed.
  kCorruption,        ///< Ciphertext/serialized bytes failed to decode.
  kResourceExhausted, ///< RAM budget or fleet capacity exceeded.
  kFailedPrecondition,///< API called in the wrong state.
  kUnimplemented,     ///< Feature not (yet) supported.
  kInternal,          ///< Invariant violation inside the library.
  kUnavailable,       ///< Transport/peer failure; safe to retry.
  kDeadlineExceeded,  ///< Per-message deadline expired; safe to retry.
  kCancelled,         ///< Caller asked for the operation to stop.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// An (code, message) pair. The common success value carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsPermissionDenied() const { return code_ == StatusCode::kPermissionDenied; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsFailedPrecondition() const { return code_ == StatusCode::kFailedPrecondition; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const { return code_ == StatusCode::kDeadlineExceeded; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace tcells

/// Propagates a non-OK Status to the caller. Usable only in functions
/// returning Status (or Result<T>, which converts from Status).
#define TCELLS_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::tcells::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs`. `lhs` must be a declaration or assignable.
#define TCELLS_ASSIGN_OR_RETURN(lhs, rexpr)       \
  TCELLS_ASSIGN_OR_RETURN_IMPL(                   \
      TCELLS_CONCAT_(_res, __LINE__), lhs, rexpr)

#define TCELLS_CONCAT_INNER_(a, b) a##b
#define TCELLS_CONCAT_(a, b) TCELLS_CONCAT_INNER_(a, b)

#define TCELLS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie();

#endif  // TCELLS_COMMON_STATUS_H_
