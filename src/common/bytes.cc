#include "common/bytes.h"

#include <cstring>

namespace tcells {

void ByteWriter::PutU8(uint8_t v) { out_->push_back(v); }

void ByteWriter::PutU16(uint16_t v) {
  out_->push_back(static_cast<uint8_t>(v));
  out_->push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutBytes(const Bytes& b) {
  PutU32(static_cast<uint32_t>(b.size()));
  out_->insert(out_->end(), b.begin(), b.end());
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_->insert(out_->end(), s.begin(), s.end());
}

void ByteWriter::PutRaw(const uint8_t* data, size_t n) {
  out_->insert(out_->end(), data, data + n);
}

Status ByteReader::Need(size_t n) const {
  if (pos_ + n > size_) {
    return Status::Corruption("byte reader underflow");
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::GetU8() {
  TCELLS_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> ByteReader::GetU16() {
  TCELLS_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::GetU32() {
  TCELLS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  TCELLS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  TCELLS_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::GetDouble() {
  TCELLS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<Bytes> ByteReader::GetBytes() {
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  TCELLS_RETURN_IF_ERROR(Need(n));
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Result<Bytes> ByteReader::GetRaw(size_t n) {
  TCELLS_RETURN_IF_ERROR(Need(n));
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Result<uint32_t> ByteReader::GetCountU32(size_t min_bytes_per_element) {
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  if (n > remaining() / min_bytes_per_element) {
    return Status::Corruption("declared element count exceeds buffer size");
  }
  return n;
}

Result<uint16_t> ByteReader::GetCountU16(size_t min_bytes_per_element) {
  TCELLS_ASSIGN_OR_RETURN(uint16_t n, GetU16());
  if (n > remaining() / min_bytes_per_element) {
    return Status::Corruption("declared element count exceeds buffer size");
  }
  return n;
}

Result<std::string> ByteReader::GetString() {
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  TCELLS_RETURN_IF_ERROR(Need(n));
  std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace tcells
