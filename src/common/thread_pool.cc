#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace tcells {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;

  // Shared fan-out state. Runner closures may outlive this call on the queue
  // (they become no-ops once every index is claimed), hence the shared_ptr;
  // `fn` itself is only entered for claimed indices, all of which complete
  // before ParallelFor returns, so the reference stays valid.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> remaining;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::exception_ptr error;
    size_t error_index = 0;
  };
  auto state = std::make_shared<State>();
  state->remaining.store(n, std::memory_order_relaxed);

  const std::function<void(size_t)>* fn_ptr = &fn;
  auto drain = [state, fn_ptr, n] {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn_ptr)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->done_mu);
        if (!state->error || i < state->error_index) {
          state->error = std::current_exception();
          state->error_index = i;
        }
      }
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->done_mu);
        state->done_cv.notify_all();
      }
    }
  };

  if (!workers_.empty() && n > 1) {
    size_t helpers = std::min(workers_.size(), n - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < helpers; ++i) tasks_.push_back(drain);
    }
    work_cv_.notify_all();
  }

  // The caller always participates: progress never depends on a free worker.
  drain();
  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace tcells
