// Fixed-size worker pool for deterministic fleet fan-out. Deliberately
// work-stealing-free: ParallelFor hands out indices from a single atomic
// counter and the *caller participates* in draining it, so a pool that is
// busy (or has size 1) degenerates to an inline loop instead of deadlocking.
// Determinism is the callers' job — tasks write to disjoint per-index slots
// and draw randomness from per-index Rng streams forked before the fan-out —
// the pool only guarantees that every index runs exactly once and that the
// lowest-index exception is rethrown after all tasks finished.
#ifndef TCELLS_COMMON_THREAD_POOL_H_
#define TCELLS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcells {

class ThreadPool {
 public:
  /// `num_threads` is clamped to >= 1. A pool of size 1 spawns no worker
  /// threads at all: every ParallelFor runs inline on the calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count the pool was built with (callers included, so a size-N
  /// pool runs a ParallelFor on up to N threads: N-1 workers + the caller).
  size_t size() const { return num_threads_; }

  /// Maps the conventional "0 = auto" knob to a concrete thread count:
  /// 0 -> std::thread::hardware_concurrency() (at least 1), else `requested`.
  static size_t ResolveThreads(size_t requested);

  /// Runs fn(0), ..., fn(n-1), blocking until every invocation finished.
  /// Invocations may run concurrently and in any order; callers must make
  /// tasks independent (disjoint output slots, pre-forked RNG streams).
  /// Every index runs even if an earlier one threw; after all finished, the
  /// exception thrown by the lowest index (if any) is rethrown. This matches
  /// the serial inline path exactly, keeping side effects (e.g. leak-log
  /// contents) identical between serial and parallel execution.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace tcells

#endif  // TCELLS_COMMON_THREAD_POOL_H_
