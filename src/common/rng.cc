#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace tcells {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  FillBytes(out.data(), n);
  return out;
}

void Rng::FillBytes(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t r = Next();
    for (int k = 0; k < 8; ++k) out[i++] = static_cast<uint8_t>(r >> (8 * k));
  }
  if (i < n) {
    uint64_t r = Next();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(r);
      r >>= 8;
    }
  }
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  if (i >= cdf_.size()) return 0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace tcells
