#include "storage/table.h"

#include <cmath>

#include "common/strings.h"

namespace tcells::storage {

Status Table::Insert(Tuple row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("arity mismatch inserting into " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row.at(i);
    if (v.is_null()) continue;
    // NaN is rejected at the storage boundary: it has no total order, which
    // would break grouping maps and MIN/MAX/MEDIAN invariants downstream.
    if (v.type() == ValueType::kDouble && std::isnan(v.AsDouble())) {
      return Status::InvalidArgument("NaN is not storable in column " +
                                     schema_.column(i).name);
    }
    if (v.type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column " + schema_.column(i).name + ": expected " +
          ValueTypeToString(schema_.column(i).type) + ", got " +
          ValueTypeToString(v.type()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::InsertAll(std::vector<Tuple> rows) {
  for (auto& r : rows) {
    TCELLS_RETURN_IF_ERROR(Insert(std::move(r)));
  }
  return Status::OK();
}

Status Database::CreateTable(const std::string& name, Schema schema) {
  TCELLS_RETURN_IF_ERROR(catalog_.AddTable(name, schema));
  tables_.push_back(std::make_unique<Table>(name, std::move(schema)));
  return Status::OK();
}

Result<Table*> Database::GetTable(std::string_view name) {
  for (auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return Status::NotFound("no such table: " + std::string(name));
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return Status::NotFound("no such table: " + std::string(name));
}

}  // namespace tcells::storage
