// Cryptographically protected mass storage (Fig 1): a secure device is a
// Trusted Execution Environment plus a *potentially untrusted* flash area.
// Everything the TDS persists is sealed into fixed-capacity pages encrypted
// and authenticated with a per-device storage key; the flash (or anyone who
// dumps it) sees only ciphertext, and any tampering — including swapping or
// replaying whole pages — is detected on load.
#ifndef TCELLS_STORAGE_SECURE_STORE_H_
#define TCELLS_STORAGE_SECURE_STORE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/encryption.h"
#include "storage/table.h"

namespace tcells::storage {

/// The untrusted flash: an append-only container of opaque sealed pages.
/// It exposes its contents freely — confidentiality and integrity come from
/// the sealing, not from this class.
class FlashArea {
 public:
  uint32_t AppendPage(Bytes sealed) {
    pages_.push_back(std::move(sealed));
    return static_cast<uint32_t>(pages_.size() - 1);
  }

  Result<const Bytes*> ReadPage(uint32_t id) const {
    if (id >= pages_.size()) {
      return Status::NotFound("no such page: " + std::to_string(id));
    }
    return &pages_[id];
  }

  size_t num_pages() const { return pages_.size(); }
  uint64_t TotalBytes() const {
    uint64_t n = 0;
    for (const auto& p : pages_) n += p.size();
    return n;
  }

  /// Mutable access — an attacker's handle (tests use this to tamper).
  Bytes* mutable_page(uint32_t id) { return &pages_[id]; }
  void SwapPages(uint32_t a, uint32_t b) { std::swap(pages_[a], pages_[b]); }

 private:
  std::vector<Bytes> pages_;
};

/// Seals tuples of one table into pages. Page plaintext layout:
///   u32 page_index | string table_name | u32 tuple_count | tuples...
/// The page index and table name inside the authenticated plaintext prevent
/// cross-table and reordering splices.
class SecureTableWriter {
 public:
  /// `page_payload_bytes` bounds the plaintext bytes per page (a NAND page
  /// is a few KB on the paper's device).
  SecureTableWriter(const crypto::NDetEnc* sealer, std::string table_name,
                    FlashArea* flash, size_t page_payload_bytes = 2048);

  Status Append(const Tuple& tuple, Rng* rng);
  /// Seals any buffered tuples; must be called before the writer is dropped.
  Status Flush(Rng* rng);

  uint32_t pages_written() const { return pages_written_; }

 private:
  Status SealBuffer(Rng* rng);

  const crypto::NDetEnc* sealer_;
  std::string table_name_;
  FlashArea* flash_;
  size_t page_payload_bytes_;
  std::vector<Tuple> buffer_;
  size_t buffered_bytes_ = 0;
  uint32_t next_page_index_ = 0;
  uint32_t pages_written_ = 0;
};

/// A whole local database sealed into one flash image plus an authenticated
/// manifest page (table names, schemas, page counts). Opening verifies every
/// page and rejects any modification, truncation or reordering.
class SecureDatabase {
 public:
  struct Image {
    FlashArea flash;
  };

  /// Seals `db` under the 16-byte device storage key.
  static Result<Image> Seal(const Database& db, const Bytes& storage_key,
                            Rng* rng, size_t page_payload_bytes = 2048);

  /// Decrypts, verifies and rebuilds the database.
  static Result<Database> Open(const Image& image, const Bytes& storage_key);
};

}  // namespace tcells::storage

#endif  // TCELLS_STORAGE_SECURE_STORE_H_
