#include "storage/tuple.h"

namespace tcells::storage {

Tuple Tuple::Concat(const Tuple& a, const Tuple& b) {
  std::vector<Value> values = a.values_;
  values.insert(values.end(), b.values_.begin(), b.values_.end());
  return Tuple(std::move(values));
}

void Tuple::EncodeTo(Bytes* out) const {
  ByteWriter w(out);
  w.PutU16(static_cast<uint16_t>(values_.size()));
  for (const auto& v : values_) v.EncodeTo(out);
}

Bytes Tuple::Encode() const {
  Bytes out;
  EncodeTo(&out);
  return out;
}

Result<Tuple> Tuple::DecodeFrom(ByteReader* reader) {
  // Every encoded Value is at least 1 byte (its type tag), so an arity larger
  // than the bytes left is rejected before the reserve below can amplify a
  // 2-byte input into a multi-megabyte allocation.
  TCELLS_ASSIGN_OR_RETURN(uint16_t n, reader->GetCountU16(1));
  std::vector<Value> values;
  values.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    TCELLS_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(reader));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

Result<Tuple> Tuple::Decode(const Bytes& data) {
  return Decode(data.data(), data.size());
}

Result<Tuple> Tuple::Decode(const uint8_t* data, size_t n) {
  ByteReader reader(data, n);
  TCELLS_ASSIGN_OR_RETURN(Tuple t, DecodeFrom(&reader));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after tuple");
  }
  return t;
}

Status Tuple::DecodeInto(const uint8_t* data, size_t n, Tuple* out) {
  ByteReader reader(data, n);
  TCELLS_ASSIGN_OR_RETURN(uint16_t arity, reader.GetCountU16(1));
  out->values_.clear();
  out->values_.reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    TCELLS_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(&reader));
    out->values_.push_back(std::move(v));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after tuple");
  }
  return Status::OK();
}

bool Tuple::IsSameGroup(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!values_[i].IsSameGroup(other.values_[i])) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace tcells::storage
