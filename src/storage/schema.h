// Schema and Catalog: the common relational schema all TDSs conform to
// (§2.1: "local databases conform to a common schema which can be queried in
// SQL", e.g. the national distribution company defines the Power schema).
#ifndef TCELLS_STORAGE_SCHEMA_H_
#define TCELLS_STORAGE_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace tcells::storage {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered column list of one table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Case-insensitive lookup; nullopt if absent.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Concatenation (used for local internal joins).
  static Schema Concat(const Schema& a, const Schema& b);

  bool Equals(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

/// Named tables -> schemas. Every TDS holds a catalog instance (same shape
/// across the fleet); the analyzer binds queries against it.
class Catalog {
 public:
  /// Fails if the name is already taken (case-insensitive).
  Status AddTable(const std::string& name, Schema schema);

  Result<const Schema*> GetSchema(std::string_view name) const;
  bool HasTable(std::string_view name) const;
  std::vector<std::string> TableNames() const;

  /// Deterministic description of every table and column: two catalogs with
  /// equal fingerprints bind queries identically. The fleet-wide analysis
  /// memo (sql::AnalyzeSqlShared) keys on this, so TDSs sharing the common
  /// schema share one analysis per distinct query text.
  std::string Fingerprint() const;

 private:
  // Keyed by lower-cased name.
  std::map<std::string, std::pair<std::string, Schema>> tables_;
};

}  // namespace tcells::storage

#endif  // TCELLS_STORAGE_SCHEMA_H_
