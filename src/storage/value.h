// Value: the dynamically-typed scalar cell of the relational layer.
#ifndef TCELLS_STORAGE_VALUE_H_
#define TCELLS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"

namespace tcells::storage {

/// Column/scalar types supported by the local databases.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeToString(ValueType t);

/// A nullable scalar. Comparisons across numeric types (int64/double) follow
/// SQL semantics; NULL compares equal to NULL only for grouping purposes
/// (this engine uses IsSameGroup, not three-valued logic, for GROUP BY keys).
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int64(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Typed accessors; calling the wrong one is a programming error (asserts).
  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric value as double (int64 is widened); error if not numeric.
  Result<double> ToDouble() const;

  /// SQL equality (numeric cross-type allowed). NULL == anything -> false.
  bool Equals(const Value& other) const;

  /// Grouping equality: like Equals but NULL matches NULL.
  bool IsSameGroup(const Value& other) const;

  /// Three-way compare for ORDER/min/max; error on incomparable types.
  /// NULL sorts before everything.
  Result<int> Compare(const Value& other) const;

  /// Canonical byte encoding (type tag + payload); equal values always encode
  /// to equal bytes, which is what Det_Enc / bucket hashing require.
  void EncodeTo(Bytes* out) const;
  static Result<Value> DecodeFrom(class ::tcells::ByteReader* reader);

  /// Debug / CSV rendering.
  std::string ToString() const;

  /// Total order usable as std::map key (type tag, then value).
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const { return IsSameGroup(other); }

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr v) : v_(std::move(v)) {}

  Repr v_;
};

}  // namespace tcells::storage

#endif  // TCELLS_STORAGE_VALUE_H_
