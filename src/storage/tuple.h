// Tuple: a row of Values plus its flat binary encoding. The encoding is the
// plaintext that the encryption schemes operate on (s_t in the cost model is
// the size of one encrypted tuple).
#ifndef TCELLS_STORAGE_TUPLE_H_
#define TCELLS_STORAGE_TUPLE_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/value.h"

namespace tcells::storage {

/// A row. Positional; names/types live in the Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& mutable_values() { return values_; }
  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation (local internal joins).
  static Tuple Concat(const Tuple& a, const Tuple& b);

  /// Canonical byte encoding: u16 arity then each value.
  void EncodeTo(Bytes* out) const;
  Bytes Encode() const;
  static Result<Tuple> Decode(const Bytes& data);
  /// Span form for decoding straight out of a decryption scratch buffer.
  static Result<Tuple> Decode(const uint8_t* data, size_t n);
  static Result<Tuple> DecodeFrom(::tcells::ByteReader* reader);
  /// Scratch form: decodes into `out`, reusing its value vector's capacity.
  /// The TDS open paths decode every partition tuple into one thread-local
  /// scratch, so steady state never reallocates. `out` is unspecified (but
  /// valid) on error.
  static Status DecodeInto(const uint8_t* data, size_t n, Tuple* out);

  /// Grouping equality across all positions.
  bool IsSameGroup(const Tuple& other) const;

  std::string ToString() const;

  /// Total order usable as std::map key.
  bool operator<(const Tuple& other) const { return values_ < other.values_; }
  bool operator==(const Tuple& other) const { return IsSameGroup(other); }

 private:
  std::vector<Value> values_;
};

}  // namespace tcells::storage

#endif  // TCELLS_STORAGE_TUPLE_H_
