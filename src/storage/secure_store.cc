#include "storage/secure_store.h"

#include "crypto/hmac.h"

namespace tcells::storage {

namespace {
constexpr char kManifestMarker[] = "tcells-manifest-v1";
constexpr char kPageMarker[] = "tcells-page-v1";
}  // namespace

SecureTableWriter::SecureTableWriter(const crypto::NDetEnc* sealer,
                                     std::string table_name, FlashArea* flash,
                                     size_t page_payload_bytes)
    : sealer_(sealer),
      table_name_(std::move(table_name)),
      flash_(flash),
      page_payload_bytes_(std::max<size_t>(64, page_payload_bytes)) {}

Status SecureTableWriter::Append(const Tuple& tuple, Rng* rng) {
  size_t encoded = tuple.Encode().size();
  if (!buffer_.empty() && buffered_bytes_ + encoded > page_payload_bytes_) {
    TCELLS_RETURN_IF_ERROR(SealBuffer(rng));
  }
  buffer_.push_back(tuple);
  buffered_bytes_ += encoded;
  return Status::OK();
}

Status SecureTableWriter::Flush(Rng* rng) {
  if (buffer_.empty()) return Status::OK();
  return SealBuffer(rng);
}

Status SecureTableWriter::SealBuffer(Rng* rng) {
  Bytes plain;
  ByteWriter w(&plain);
  w.PutString(kPageMarker);
  w.PutU32(static_cast<uint32_t>(flash_->num_pages()));  // global page id
  w.PutString(table_name_);
  w.PutU32(static_cast<uint32_t>(buffer_.size()));
  for (const auto& t : buffer_) t.EncodeTo(&plain);
  flash_->AppendPage(sealer_->Encrypt(plain, rng));
  buffer_.clear();
  buffered_bytes_ = 0;
  ++next_page_index_;
  ++pages_written_;
  return Status::OK();
}

Result<SecureDatabase::Image> SecureDatabase::Seal(const Database& db,
                                                   const Bytes& storage_key,
                                                   Rng* rng,
                                                   size_t page_payload_bytes) {
  Bytes key = crypto::DeriveKey(storage_key, "secure-store");
  TCELLS_ASSIGN_OR_RETURN(crypto::NDetEnc sealer, crypto::NDetEnc::Create(key));

  Image image;
  struct TableMeta {
    std::string name;
    const Schema* schema;
    uint32_t pages;
    uint64_t rows;
  };
  std::vector<TableMeta> metas;

  for (const std::string& name : db.catalog().TableNames()) {
    TCELLS_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    SecureTableWriter writer(&sealer, name, &image.flash, page_payload_bytes);
    for (const auto& row : table->rows()) {
      TCELLS_RETURN_IF_ERROR(writer.Append(row, rng));
    }
    TCELLS_RETURN_IF_ERROR(writer.Flush(rng));
    metas.push_back({name, &table->schema(), writer.pages_written(),
                     table->num_rows()});
  }

  // Authenticated manifest, appended last.
  Bytes manifest;
  ByteWriter w(&manifest);
  w.PutString(kManifestMarker);
  w.PutU32(static_cast<uint32_t>(image.flash.num_pages()));  // its page id
  w.PutU32(static_cast<uint32_t>(metas.size()));
  for (const auto& m : metas) {
    w.PutString(m.name);
    w.PutU16(static_cast<uint16_t>(m.schema->num_columns()));
    for (const auto& col : m.schema->columns()) {
      w.PutString(col.name);
      w.PutU8(static_cast<uint8_t>(col.type));
    }
    w.PutU32(m.pages);
    w.PutU64(m.rows);
  }
  image.flash.AppendPage(sealer.Encrypt(manifest, rng));
  return image;
}

Result<Database> SecureDatabase::Open(const Image& image,
                                      const Bytes& storage_key) {
  Bytes key = crypto::DeriveKey(storage_key, "secure-store");
  TCELLS_ASSIGN_OR_RETURN(crypto::NDetEnc sealer, crypto::NDetEnc::Create(key));
  if (image.flash.num_pages() == 0) {
    return Status::Corruption("empty flash image");
  }

  // Manifest is the last page and must self-identify with its position.
  uint32_t manifest_id = static_cast<uint32_t>(image.flash.num_pages() - 1);
  TCELLS_ASSIGN_OR_RETURN(const Bytes* manifest_page,
                          image.flash.ReadPage(manifest_id));
  TCELLS_ASSIGN_OR_RETURN(Bytes manifest, sealer.Decrypt(*manifest_page));
  ByteReader mr(manifest);
  TCELLS_ASSIGN_OR_RETURN(std::string marker, mr.GetString());
  if (marker != kManifestMarker) {
    return Status::Corruption("manifest marker mismatch");
  }
  TCELLS_ASSIGN_OR_RETURN(uint32_t stored_id, mr.GetU32());
  if (stored_id != manifest_id) {
    return Status::Corruption("manifest position mismatch (truncated image?)");
  }
  TCELLS_ASSIGN_OR_RETURN(uint32_t table_count, mr.GetU32());

  Database db;
  uint32_t cursor = 0;
  for (uint32_t t = 0; t < table_count; ++t) {
    TCELLS_ASSIGN_OR_RETURN(std::string name, mr.GetString());
    TCELLS_ASSIGN_OR_RETURN(uint16_t num_cols, mr.GetU16());
    std::vector<Column> cols;
    for (uint16_t c = 0; c < num_cols; ++c) {
      Column col;
      TCELLS_ASSIGN_OR_RETURN(col.name, mr.GetString());
      TCELLS_ASSIGN_OR_RETURN(uint8_t type, mr.GetU8());
      col.type = static_cast<ValueType>(type);
      cols.push_back(std::move(col));
    }
    TCELLS_ASSIGN_OR_RETURN(uint32_t pages, mr.GetU32());
    TCELLS_ASSIGN_OR_RETURN(uint64_t rows, mr.GetU64());

    TCELLS_RETURN_IF_ERROR(db.CreateTable(name, Schema(std::move(cols))));
    TCELLS_ASSIGN_OR_RETURN(Table * table, db.GetTable(name));

    uint64_t loaded = 0;
    for (uint32_t p = 0; p < pages; ++p, ++cursor) {
      TCELLS_ASSIGN_OR_RETURN(const Bytes* sealed,
                              image.flash.ReadPage(cursor));
      TCELLS_ASSIGN_OR_RETURN(Bytes plain, sealer.Decrypt(*sealed));
      ByteReader pr(plain);
      TCELLS_ASSIGN_OR_RETURN(std::string page_marker, pr.GetString());
      if (page_marker != kPageMarker) {
        return Status::Corruption("data page marker mismatch");
      }
      TCELLS_ASSIGN_OR_RETURN(uint32_t page_id, pr.GetU32());
      if (page_id != cursor) {
        return Status::Corruption("page reordering detected");
      }
      TCELLS_ASSIGN_OR_RETURN(std::string page_table, pr.GetString());
      if (page_table != name) {
        return Status::Corruption("page belongs to a different table");
      }
      TCELLS_ASSIGN_OR_RETURN(uint32_t count, pr.GetU32());
      for (uint32_t i = 0; i < count; ++i) {
        TCELLS_ASSIGN_OR_RETURN(Tuple tuple, Tuple::DecodeFrom(&pr));
        TCELLS_RETURN_IF_ERROR(table->Insert(std::move(tuple)));
        ++loaded;
      }
      if (!pr.AtEnd()) {
        return Status::Corruption("trailing bytes in data page");
      }
    }
    if (loaded != rows) {
      return Status::Corruption("row count mismatch for table " + name);
    }
  }
  if (cursor != manifest_id) {
    return Status::Corruption("unexpected extra pages in image");
  }
  return db;
}

}  // namespace tcells::storage
