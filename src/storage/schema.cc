#include "storage/schema.h"

#include "common/strings.h"

namespace tcells::storage {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

Status Catalog::AddTable(const std::string& name, Schema schema) {
  std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  tables_.emplace(key, std::make_pair(name, std::move(schema)));
  return Status::OK();
}

Result<const Schema*> Catalog::GetSchema(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return &it->second.second;
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, value] : tables_) names.push_back(value.first);
  return names;
}

std::string Catalog::Fingerprint() const {
  // tables_ is an ordered map keyed by lower-cased name, so iteration order
  // (and therefore the fingerprint) is deterministic. The separators cannot
  // appear in identifiers, so distinct catalogs cannot collide.
  std::string out;
  for (const auto& [key, value] : tables_) {
    out += key;
    out += '(';
    for (const auto& col : value.second.columns()) {
      out += ToLower(col.name);
      out += ':';
      out += static_cast<char>('0' + static_cast<int>(col.type));
      out += ',';
    }
    out += ");";
  }
  return out;
}

}  // namespace tcells::storage
