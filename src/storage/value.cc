#include "storage/value.h"

#include <cmath>
#include <sstream>

#include "common/bytes.h"

namespace tcells::storage {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return "BOOL";
    case ValueType::kInt64: return "INT64";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index());
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64: return static_cast<double>(AsInt64());
    case ValueType::kDouble: return AsDouble();
    default:
      return Status::InvalidArgument(std::string("not numeric: ") +
                                     ValueTypeToString(type()));
  }
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) {
    return ToDouble().ValueOrDie() == other.ToDouble().ValueOrDie();
  }
  return v_ == other.v_;
}

bool Value::IsSameGroup(const Value& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() || other.is_null()) return false;
  return Equals(other);
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (is_numeric() && other.is_numeric()) {
    double a = ToDouble().ValueOrDie();
    double b = other.ToDouble().ValueOrDie();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return Status::InvalidArgument(
        std::string("incomparable types: ") + ValueTypeToString(type()) +
        " vs " + ValueTypeToString(other.type()));
  }
  switch (type()) {
    case ValueType::kBool: {
      int a = AsBool(), b = other.AsBool();
      return a - b;
    }
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return Status::Internal("unreachable compare");
  }
}

void Value::EncodeTo(Bytes* out) const {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w.PutU8(AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      w.PutI64(AsInt64());
      break;
    case ValueType::kDouble:
      w.PutDouble(AsDouble());
      break;
    case ValueType::kString:
      w.PutString(AsString());
      break;
  }
}

Result<Value> Value::DecodeFrom(ByteReader* reader) {
  TCELLS_ASSIGN_OR_RETURN(uint8_t tag, reader->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      TCELLS_ASSIGN_OR_RETURN(uint8_t b, reader->GetU8());
      if (b > 1) {
        // EncodeTo only ever emits 0 or 1; accepting other bytes would make
        // the codec non-canonical (decode/re-encode changes the bytes).
        return Status::Corruption("non-canonical bool encoding");
      }
      return Value::Bool(b != 0);
    }
    case ValueType::kInt64: {
      TCELLS_ASSIGN_OR_RETURN(int64_t i, reader->GetI64());
      return Value::Int64(i);
    }
    case ValueType::kDouble: {
      TCELLS_ASSIGN_OR_RETURN(double d, reader->GetDouble());
      return Value::Double(d);
    }
    case ValueType::kString: {
      TCELLS_ASSIGN_OR_RETURN(std::string s, reader->GetString());
      return Value::String(std::move(s));
    }
  }
  return Status::Corruption("unknown value type tag");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kInt64: return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString: return AsString();
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (v_.index() != other.v_.index()) return v_.index() < other.v_.index();
  return v_ < other.v_;
}

}  // namespace tcells::storage
