// Table: the in-memory row store of a personal database. The local datasets
// in the paper fit in the token's Flash; a vector of rows models that here.
#ifndef TCELLS_STORAGE_TABLE_H_
#define TCELLS_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace tcells::storage {

/// A schema-checked bag of tuples.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Checks arity and per-column type (NULL fits any column).
  Status Insert(Tuple row);
  Status InsertAll(std::vector<Tuple> rows);

  void Clear() { rows_.clear(); }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
};

/// A set of named tables with a shared catalog — one TDS's local database, or
/// the plaintext union database used as the test oracle.
class Database {
 public:
  /// Registers the table in the catalog and creates empty storage.
  Status CreateTable(const std::string& name, Schema schema);

  Result<Table*> GetTable(std::string_view name);
  Result<const Table*> GetTable(std::string_view name) const;
  const Catalog& catalog() const { return catalog_; }

 private:
  Catalog catalog_;
  // Parallel to catalog registration order; keyed by lower-case name.
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace tcells::storage

#endif  // TCELLS_STORAGE_TABLE_H_
