// CostAccountant: tallies what a protocol run actually moved and computed,
// per phase and per TDS, while the run executes functionally. The figures of
// §6.3 are then derived by combining these tallies with a DeviceModel.
#ifndef TCELLS_SIM_COST_ACCOUNTANT_H_
#define TCELLS_SIM_COST_ACCOUNTANT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/device_model.h"

namespace tcells::sim {

/// The three phases of the generic protocol (§4.1).
enum class Phase { kCollection = 0, kAggregation = 1, kFiltering = 2 };

const char* PhaseToString(Phase phase);

/// Totals for one phase.
struct PhaseTally {
  uint64_t bytes_uploaded = 0;     ///< TDS -> SSI
  uint64_t bytes_downloaded = 0;   ///< SSI -> TDS
  uint64_t tuples_processed = 0;   ///< tuples deserialized/aggregated on TDSs
  uint64_t tds_participations = 0; ///< partition assignments to a TDS
  uint64_t partitions = 0;
  uint64_t iterations = 0;         ///< aggregation rounds (S_Agg)
  uint64_t dropouts = 0;           ///< partitions re-dispatched after a loss
};

/// Per-TDS work (to derive T_local and the parallelism profile).
struct TdsTally {
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t tuples = 0;
  uint64_t participations = 0;
};

/// Accumulates tallies during a protocol run.
class CostAccountant {
 public:
  /// Records one TDS handling one partition.
  void RecordPartition(Phase phase, uint64_t tds_id, uint64_t bytes_in,
                       uint64_t bytes_out, uint64_t tuples);
  void RecordIteration(Phase phase);
  void RecordDropout(Phase phase);

  const PhaseTally& phase(Phase p) const {
    return phases_[static_cast<int>(p)];
  }
  const std::map<uint64_t, TdsTally>& per_tds() const { return per_tds_; }

  /// Number of distinct TDSs that participated anywhere — P_TDS.
  size_t DistinctTds() const { return per_tds_.size(); }

  /// Total bytes through the system — Load_Q.
  uint64_t TotalBytes() const;

  /// Average per-TDS busy time under `model` — T_local.
  double AverageTdsSeconds(const DeviceModel& model) const;

  /// Simulated wall-clock of the aggregation phase assuming each iteration's
  /// partitions run fully in parallel (critical path = max partition cost per
  /// iteration, summed over iterations). Callers that know the real
  /// round structure should prefer their own critical-path tracking; this is
  /// the coarse fallback.
  double MaxTdsSeconds(const DeviceModel& model) const;

  std::string ToString() const;

 private:
  PhaseTally phases_[3];
  std::map<uint64_t, TdsTally> per_tds_;
};

}  // namespace tcells::sim

#endif  // TCELLS_SIM_COST_ACCOUNTANT_H_
