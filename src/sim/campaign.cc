#include "sim/campaign.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/clock.h"
#include "protocol/factory.h"
#include "protocol/reference.h"
#include "sql/executor.h"
#include "tds/access_control.h"
#include "tcells/engine.h"
#include "workload/generic.h"

namespace tcells::sim {

namespace {

using storage::Tuple;
using storage::Value;

std::string QueryFor(const ScenarioSpec& spec) {
  std::string sql =
      spec.protocol == protocol::ProtocolKind::kBasicSfw
          ? "SELECT grp, val, cat FROM T WHERE cat < 6"
          : "SELECT grp, COUNT(*), SUM(cat), AVG(val), MIN(val), "
            "MAX(val) FROM T GROUP BY grp";
  if (spec.duration_ticks > 0) {
    // Ticked connectivity: the collection window stays open for the given
    // number of ticks, so mid-collection key events have ticks to land on.
    sql += " SIZE DURATION " + std::to_string(spec.duration_ticks);
  }
  return sql;
}

}  // namespace

std::string ScenarioOutcome::Canonical() const {
  std::ostringstream out;
  out << "scenario " << name << "\n"
      << "completed " << (completed ? 1 : 0);
  if (!completed) out << " status " << abort_status;
  out << "\n"
      << "oracle_match " << (oracle_match ? 1 : 0) << " clean "
      << (clean ? 1 : 0) << "\n"
      << "lost " << partitions_lost << " tampered " << partitions_tampered
      << " rejected " << contributions_rejected << " participants "
      << collection_participants << "/" << eligible_tds << "\n"
      << "retries " << retries << " deadline_hits " << deadline_hits
      << " faults " << faults_injected << " tampers " << tampers << "\n";
  if (!result_table.empty()) out << "result\n" << result_table;
  if (!fault_log.empty()) out << "fault_log\n" << fault_log;
  for (const std::string& v : violations) out << "VIOLATION " << v << "\n";
  out << "\n";
  return out.str();
}

std::string CampaignResult::Canonical() const {
  std::string all;
  for (const ScenarioOutcome& o : outcomes) all += o.Canonical();
  return all;
}

Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec,
                                    net::TransportKind backend) {
  // ---- World construction (identical for oracle and adversarial run) ----
  workload::GenericOptions gopts;
  gopts.num_tds = spec.num_tds;
  gopts.num_groups = spec.num_groups;
  gopts.group_skew = spec.group_skew;
  gopts.rows_per_tds = spec.rows_per_tds;
  gopts.seed = 1000 + spec.seed;

  auto keys = crypto::KeyStore::CreateForTest(2026);
  auto authority = std::make_shared<tds::Authority>(Bytes(16, 0x33));
  TCELLS_ASSIGN_OR_RETURN(
      std::unique_ptr<protocol::Fleet> fleet,
      workload::BuildGenericFleet(gopts, keys, authority,
                                  tds::AccessPolicy::AllowAll()));
  protocol::Querier querier("campaign", authority->Issue("campaign"), keys);
  const std::string sql = QueryFor(spec);

  // The plaintext oracle over the same fleet data.
  TCELLS_ASSIGN_OR_RETURN(sql::QueryResult expected,
                          protocol::ExecuteReference(*fleet, sql));

  // Prior knowledge for the Noise / ED_Hist protocols, derived exactly like
  // the differential tests derive it.
  protocol::ProtocolInputs inputs;
  auto domain = std::make_shared<std::vector<Tuple>>();
  for (size_t g = 0; g < spec.num_groups; ++g) {
    domain->push_back(Tuple({Value::String(workload::GroupName(g))}));
  }
  inputs.group_domain = domain;
  {
    const auto& catalog = fleet->at(0)->db().catalog();
    TCELLS_ASSIGN_OR_RETURN(
        sql::AnalyzedQuery count_q,
        sql::AnalyzeSql("SELECT grp, COUNT(*) FROM T GROUP BY grp", catalog));
    for (size_t i = 0; i < fleet->size(); ++i) {
      TCELLS_ASSIGN_OR_RETURN(auto rows,
                              sql::CollectionTuples(fleet->at(i)->db(),
                                                    count_q));
      for (const auto& r : rows) inputs.distribution[Tuple({r.at(0)})] += 1;
    }
  }
  inputs.histogram_buckets = 2;
  TCELLS_ASSIGN_OR_RETURN(std::unique_ptr<protocol::Protocol> proto,
                          protocol::MakeProtocol(spec.protocol, inputs));

  // ---- The adversarial engine run ----
  // A virtual clock makes injected delays and retry backoff cost no real
  // time, and keeps the fault schedule independent of machine speed.
  VirtualClock vclock;
  Engine::Config config;
  config.tracing = false;
  config.transport = backend;
  // Campaign fault/tamper schedules are call-granular (nth call of a kind,
  // specific token's upload, ...), so the wire must stay one call per frame
  // — under the auto batching default a faulted frame would take unrelated
  // coalesced calls down with it and the pinned outcomes would shift.
  config.transport_batch_max_calls = 1;
  config.fault_plan = spec.faults;
  config.tamper_plan = spec.tampering;
  config.options.seed = spec.seed;
  config.options.num_threads = spec.num_threads;
  config.options.dropout_rate = spec.dropout_rate;
  config.options.max_dropout_retries = spec.max_dropout_retries;
  config.options.compute_availability = 0.25;
  config.options.expected_groups = spec.num_groups;
  config.options.clock = &vclock;
  // A lying SSI must not be able to hang the collection loop.
  config.options.max_collection_ticks = 512;
  config.key_mode = spec.dynamic_keys ? KeyMode::kDynamic : KeyMode::kStatic;

  // Mid-run key events fire from the collection tick hook. The engine does
  // not exist until Create returns, so the hook reads it through a cell
  // filled in below; `stale_block` is the pre-revocation epoch-0 block the
  // byzantine key server replays.
  auto engine_cell = std::make_shared<Engine*>(nullptr);
  auto stale_block = std::make_shared<Bytes>();
  if (spec.dynamic_keys) {
    config.options.tick_hook = [&spec, engine_cell,
                                stale_block](uint64_t tick) {
      Engine* engine = *engine_cell;
      if (engine == nullptr) return;
      if (spec.revoke_at_tick && tick == *spec.revoke_at_tick) {
        (void)engine->RevokeTds(spec.revoke_at);
      }
      if (spec.rollover_at_tick && tick == *spec.rollover_at_tick) {
        (void)engine->RolloverEpoch();
      }
      if (spec.stale_block_at_tick && tick == *spec.stale_block_at_tick) {
        (void)engine->PostRawEpochBlock(*stale_block);
      }
      if (spec.forged_block_at_tick && tick == *spec.forged_block_at_tick) {
        (void)engine->PostRawEpochBlock(Bytes(64, 0x5a));
      }
    };
  }

  const uint64_t eligible = fleet->size();
  TCELLS_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                          Engine::Create(std::move(fleet), std::move(config)));
  *engine_cell = engine.get();
  if (spec.dynamic_keys) {
    *stale_block = engine->key_authority()->CurrentBlock();
    if (!spec.revoke_before.empty()) {
      TCELLS_RETURN_IF_ERROR(engine->RevokeTds(spec.revoke_before));
    }
  }
  Result<protocol::RunOutcome> run = engine->Run(*proto, querier, 1, sql);

  ScenarioOutcome out;
  out.name = spec.name;
  out.eligible_tds = eligible;
  const auto counters = engine->metrics().snapshot().counters;
  auto counter = [&](const char* name) -> uint64_t {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  out.retries = counter("net.retries");
  out.deadline_hits = counter("net.deadline_hits");
  if (net::FaultyTransport* injector = engine->fault_injector()) {
    out.faults_injected = injector->injected_count();
    out.fault_log = injector->CanonicalLog();
  }
  if (net::ByzantineProxy* proxy = engine->byzantine_proxy()) {
    out.tampers = proxy->stats().total();
  }

  if (run.ok()) {
    out.completed = true;
    out.result_table = run->result.ToString();
    out.oracle_match = run->result.SameRows(expected);
    out.partitions_lost = run->metrics.partitions_lost;
    out.partitions_tampered = run->metrics.partitions_tampered;
    out.collection_participants = run->metrics.collection_participants;
    out.contributions_rejected = run->metrics.contributions_rejected;
  } else {
    out.abort_status = run.status().ToString();
  }

  // ---- Invariants ----
  auto violate = [&](const std::string& msg) {
    out.violations.push_back(msg);
  };
  if (spec.expect_complete && *spec.expect_complete != out.completed) {
    violate(out.completed ? "expected the query to abort, it completed"
                          : "expected completion, got: " + out.abort_status);
  }
  if (out.completed) {
    out.clean = out.partitions_lost == 0 && out.partitions_tampered == 0 &&
                out.contributions_rejected == 0 &&
                out.collection_participants == out.eligible_tds;
    // The core soundness property: a run with nothing visibly wrong must
    // equal the oracle; equivalently, every divergence must be visible in
    // the loss/tamper/participation accounting.
    if (out.clean && !out.oracle_match) {
      violate("silent wrong answer: clean run diverges from the oracle");
    }
    // The per-query metrics and the engine-wide counters must agree (one
    // query per engine here).
    if (counter("engine.partitions_lost") != out.partitions_lost) {
      violate("metrics mismatch: engine.partitions_lost counter says " +
              std::to_string(counter("engine.partitions_lost")) +
              ", RunMetrics says " + std::to_string(out.partitions_lost));
    }
    if (counter("engine.partitions_tampered") != out.partitions_tampered) {
      violate("metrics mismatch: engine.partitions_tampered counter says " +
              std::to_string(counter("engine.partitions_tampered")) +
              ", RunMetrics says " + std::to_string(out.partitions_tampered));
    }
    if (spec.expect_partitions_lost &&
        *spec.expect_partitions_lost != out.partitions_lost) {
      violate("expected partitions_lost=" +
              std::to_string(*spec.expect_partitions_lost) + ", got " +
              std::to_string(out.partitions_lost));
    }
    if (spec.expect_partitions_tampered &&
        *spec.expect_partitions_tampered != out.partitions_tampered) {
      violate("expected partitions_tampered=" +
              std::to_string(*spec.expect_partitions_tampered) + ", got " +
              std::to_string(out.partitions_tampered));
    }
    if (spec.expect_contributions_rejected &&
        *spec.expect_contributions_rejected != out.contributions_rejected) {
      violate("expected contributions_rejected=" +
              std::to_string(*spec.expect_contributions_rejected) + ", got " +
              std::to_string(out.contributions_rejected));
    }
  }
  return out;
}

Result<CampaignResult> RunCampaign(const std::vector<ScenarioSpec>& manifest,
                                   net::TransportKind backend) {
  CampaignResult result;
  result.outcomes.reserve(manifest.size());
  for (const ScenarioSpec& spec : manifest) {
    TCELLS_ASSIGN_OR_RETURN(ScenarioOutcome outcome,
                            RunScenario(spec, backend));
    result.total_violations += outcome.violations.size();
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Manifests

namespace {

using protocol::ProtocolKind;

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kBasicSfw, ProtocolKind::kSAgg, ProtocolKind::kRnfNoise,
    ProtocolKind::kCNoise, ProtocolKind::kEdHist};

/// Probabilistic transport chaos a retrying client must absorb: requests and
/// replies drop now and then on every message type.
std::shared_ptr<const net::FaultPlan> ChaosPlan(uint64_t seed) {
  auto plan = std::make_shared<net::FaultPlan>();
  plan->seed = seed;
  plan->probs.drop_request = 0.05;
  plan->probs.drop_reply = 0.03;
  plan->probs.duplicate = 0.05;
  plan->probs.reorder = 0.03;
  plan->probs.stale_replay = 0.02;
  return plan;
}

/// Kills every transport attempt of round-1 token `token`'s fetch: with a
/// retry budget of `attempts`, exactly that one partition is lost.
std::shared_ptr<const net::FaultPlan> TokenKillPlan(uint64_t token,
                                                    uint64_t attempts) {
  auto plan = std::make_shared<net::FaultPlan>();
  net::ScriptedFault f;
  f.type = net::MsgType::kFetchPartition;
  f.kind = net::FaultKind::kDropRequest;
  f.scope = net::ScriptedFault::Scope::kPerKey;
  f.nth = 1;
  f.repeat = attempts;
  f.key_b = token;
  plan->script.push_back(f);
  return plan;
}

std::shared_ptr<const net::FaultPlan> ScriptPlan(net::ScriptedFault f) {
  auto plan = std::make_shared<net::FaultPlan>();
  plan->script.push_back(std::move(f));
  return plan;
}

std::shared_ptr<const net::TamperPlan> Tamper(
    void (*set)(net::TamperPlan*)) {
  auto plan = std::make_shared<net::TamperPlan>();
  set(plan.get());
  return plan;
}

ScenarioSpec Base(std::string name, ProtocolKind kind) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.protocol = kind;
  return spec;
}

}  // namespace

std::vector<ScenarioSpec> DefaultManifest() {
  std::vector<ScenarioSpec> manifest;

  // Fault-free baselines, uniform and Zipf-skewed: must match the oracle
  // with zero loss.
  for (ProtocolKind kind : kAllProtocols) {
    for (double skew : {0.0, 1.2}) {
      ScenarioSpec spec = Base(std::string("clean-") +
                                   protocol::ProtocolKindToString(kind) +
                                   (skew > 0 ? "-zipf" : "-uniform"),
                               kind);
      spec.group_skew = skew;
      spec.num_threads = 2;
      spec.expect_complete = true;
      spec.expect_partitions_lost = 0;
      spec.expect_partitions_tampered = 0;
      manifest.push_back(std::move(spec));
    }
  }

  // Probabilistic transport chaos on a skewed workload, every protocol: the
  // retry layer and server-side idempotency must absorb it (whatever
  // happens, the invariants hold and the outcome is deterministic).
  for (ProtocolKind kind : kAllProtocols) {
    ScenarioSpec spec = Base(
        std::string("chaos-") + protocol::ProtocolKindToString(kind), kind);
    spec.group_skew = 1.2;
    spec.num_threads = 2;
    spec.faults = ChaosPlan(7);
    manifest.push_back(std::move(spec));
  }

  // Scripted mid-query churn, every protocol: round-1 token 0 becomes
  // unreachable for the whole retry budget — exactly one partition lost,
  // counted exactly once.
  for (ProtocolKind kind : kAllProtocols) {
    ScenarioSpec spec = Base(
        std::string("token-kill-") + protocol::ProtocolKindToString(kind),
        kind);
    spec.num_threads = 2;
    spec.faults = TokenKillPlan(0, spec.max_dropout_retries + 1);
    spec.expect_complete = true;
    spec.expect_partitions_lost = 1;
    spec.expect_partitions_tampered = 0;
    manifest.push_back(std::move(spec));
  }

  // "Drop a TakeRoundOutput reply": the take is re-readable, so the retry
  // must re-download the same bytes and nothing is lost. Keyed per-(query,
  // token) — round-output takes run inside the parallel round tasks, so
  // per-type call counting would depend on thread scheduling (see the
  // ScriptedFault::Scope contract in net/faulty.h).
  {
    ScenarioSpec spec = Base("take-reply-dropped", ProtocolKind::kSAgg);
    net::ScriptedFault f;
    f.type = net::MsgType::kTakeRoundOutput;
    f.kind = net::FaultKind::kDropReply;
    f.scope = net::ScriptedFault::Scope::kPerKey;
    f.key_b = 0;
    f.nth = 1;
    spec.faults = ScriptPlan(f);
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    manifest.push_back(std::move(spec));
  }

  // Duplicate delivery of collection uploads: server-side dedup must keep
  // contributions and acknowledgements single-counted.
  {
    ScenarioSpec spec = Base("upload-duplicated", ProtocolKind::kSAgg);
    spec.group_skew = 1.2;
    spec.num_threads = 2;
    auto plan = std::make_shared<net::FaultPlan>();
    plan->seed = 5;
    plan->per_type[net::MsgType::kUploadCollection].duplicate = 0.5;
    spec.faults = plan;
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    manifest.push_back(std::move(spec));
  }

  // Dropped collection-upload replies force retries of a non-idempotent-
  // looking exchange; the accept-bit replay keeps participation correct.
  {
    ScenarioSpec spec = Base("upload-reply-dropped", ProtocolKind::kEdHist);
    spec.num_threads = 2;
    auto plan = std::make_shared<net::FaultPlan>();
    plan->seed = 9;
    plan->per_type[net::MsgType::kUploadCollection].drop_reply = 0.3;
    spec.faults = plan;
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    manifest.push_back(std::move(spec));
  }

  // A truncated result download is unframeable garbage: the client must
  // abort cleanly (Corruption), never serve a partial result.
  {
    ScenarioSpec spec = Base("result-truncated", ProtocolKind::kBasicSfw);
    net::ScriptedFault f;
    f.type = net::MsgType::kFetchResult;
    f.kind = net::FaultKind::kTruncate;
    spec.faults = ScriptPlan(f);
    spec.expect_complete = false;
    manifest.push_back(std::move(spec));
  }

  // One bit of a round-output reply flipped: either the envelope no longer
  // decodes (clean abort) or the digest check flags the partition — the
  // invariants accept both, silence neither.
  {
    ScenarioSpec spec = Base("take-bit-flipped", ProtocolKind::kSAgg);
    net::ScriptedFault f;
    f.type = net::MsgType::kTakeRoundOutput;
    f.kind = net::FaultKind::kBitFlip;
    f.scope = net::ScriptedFault::Scope::kPerKey;
    f.key_b = 0;
    f.nth = 1;
    spec.faults = ScriptPlan(f);
    manifest.push_back(std::move(spec));
  }

  // A stale round-output reply replayed from the network's memory: the
  // digest check must flag exactly that partition.
  {
    ScenarioSpec spec = Base("take-stale-replay", ProtocolKind::kSAgg);
    net::ScriptedFault f;
    f.type = net::MsgType::kTakeRoundOutput;
    f.kind = net::FaultKind::kStaleReplay;
    f.scope = net::ScriptedFault::Scope::kPerKey;
    f.key_b = 0;
    f.nth = 2;
    spec.faults = ScriptPlan(f);
    spec.expect_complete = true;
    manifest.push_back(std::move(spec));
  }

  // Mid-query disconnect with recovery: the channel dies once, the client
  // re-dials, nothing is lost.
  {
    ScenarioSpec spec = Base("disconnect-recover", ProtocolKind::kCNoise);
    net::ScriptedFault f;
    f.type = net::MsgType::kFetchPartition;
    f.kind = net::FaultKind::kDisconnect;
    f.scope = net::ScriptedFault::Scope::kPerKey;
    f.key_b = 1;
    f.nth = 1;
    spec.faults = ScriptPlan(f);
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    manifest.push_back(std::move(spec));
  }

  // TDS churn after upload: the round output exists server-side but its
  // take keeps disconnecting past the budget — one loss, counted once.
  {
    ScenarioSpec spec = Base("churn-after-upload", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    net::ScriptedFault f;
    f.type = net::MsgType::kTakeRoundOutput;
    f.kind = net::FaultKind::kDisconnect;
    f.scope = net::ScriptedFault::Scope::kPerKey;
    f.key_b = 0;
    f.nth = 1;
    f.repeat = spec.max_dropout_retries + 1;
    spec.faults = ScriptPlan(f);
    spec.expect_complete = true;
    spec.expect_partitions_lost = 1;
    spec.expect_partitions_tampered = 0;
    manifest.push_back(std::move(spec));
  }

  // ---- Byzantine SSI tampering classes ----

  // Reordered collected items: the engine treats the collected set as
  // unordered, so this must be tolerated with a clean oracle match.
  {
    ScenarioSpec spec = Base("byz-reverse-collected", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.tampering =
        Tamper([](net::TamperPlan* p) { p->reverse_collected = true; });
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    spec.expect_partitions_tampered = 0;
    manifest.push_back(std::move(spec));
  }

  // Stale round outputs replayed by the SSI itself (not the network): the
  // digest check must flag every replayed partition.
  {
    ScenarioSpec spec = Base("byz-replay-output", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.tampering =
        Tamper([](net::TamperPlan* p) { p->replay_round_output = true; });
    manifest.push_back(std::move(spec));
  }

  // The SSI echoes each partition's input back as its "output".
  {
    ScenarioSpec spec = Base("byz-echo-input", ProtocolKind::kEdHist);
    spec.num_threads = 2;
    spec.tampering =
        Tamper([](net::TamperPlan* p) { p->echo_input_as_output = true; });
    manifest.push_back(std::move(spec));
  }

  // Round outputs swapped pairwise between tokens.
  {
    ScenarioSpec spec = Base("byz-swap-outputs", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.tampering =
        Tamper([](net::TamperPlan* p) { p->swap_round_outputs = true; });
    manifest.push_back(std::move(spec));
  }

  // Every contribution is told "rejected" while the SSI keeps the data: the
  // result can still be right, but participation accounting must expose the
  // lie (0 acknowledged participants).
  {
    ScenarioSpec spec = Base("byz-forge-accept", ProtocolKind::kBasicSfw);
    spec.tampering =
        Tamper([](net::TamperPlan* p) { p->forge_accept_byte = true; });
    spec.expect_complete = true;
    manifest.push_back(std::move(spec));
  }

  // The SIZE bound is forged as already met: collection closes empty. The
  // divergence must be visible as zero participants, never silent.
  {
    ScenarioSpec spec = Base("byz-forge-size", ProtocolKind::kBasicSfw);
    spec.tampering =
        Tamper([](net::TamperPlan* p) { p->forge_size_reached = true; });
    manifest.push_back(std::move(spec));
  }

  // Forged NotFound on the collected-data take: a clean abort, not a wrong
  // answer.
  {
    ScenarioSpec spec = Base("byz-forge-error", ProtocolKind::kSAgg);
    spec.tampering = Tamper([](net::TamperPlan* p) {
      p->forge_error_on = net::MsgType::kTakeCollected;
    });
    spec.expect_complete = false;
    manifest.push_back(std::move(spec));
  }

  // Transport faults and a byzantine SSI at once: replayed outputs under
  // chaotic delivery still end up flagged or absorbed, deterministically.
  {
    ScenarioSpec spec = Base("byz-replay-under-chaos", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.group_skew = 1.2;
    spec.faults = ChaosPlan(13);
    spec.tampering =
        Tamper([](net::TamperPlan* p) { p->replay_round_output = true; });
    manifest.push_back(std::move(spec));
  }

  // ---- Dynamic key management (docs/KEYS.md) ----

  // Dynamic-mode baseline: per-query keys + admission checks on an honest
  // world must stay clean and oracle-matching.
  {
    ScenarioSpec spec = Base("keys-clean-dynamic", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.dynamic_keys = true;
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    spec.expect_partitions_tampered = 0;
    spec.expect_contributions_rejected = 0;
    manifest.push_back(std::move(spec));
  }

  // Pre-revoked TDSs: revoked before the query is posted, they cannot even
  // derive the posting's session keys (it is minted under the post-
  // revocation epoch). They are acknowledged without contributing — zero
  // rejections, reduced participation, no wrong answer.
  {
    ScenarioSpec spec = Base("keys-pre-revoked", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.dynamic_keys = true;
    spec.revoke_before = {1, 2, 3};
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    spec.expect_partitions_tampered = 0;
    spec.expect_contributions_rejected = 0;
    manifest.push_back(std::move(spec));
  }

  // Revoked-TDS contribution injection: three TDSs are revoked right after
  // the query is posted (tick 0), so they still derive the posting's keys
  // from their primed pre-revocation windows and answer. Every one of their
  // uploads must be rejected by the admission check — exactly 3 rejections,
  // never folded into the result.
  {
    ScenarioSpec spec =
        Base("keys-revoked-injection", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.dynamic_keys = true;
    spec.revoke_at = {1, 2, 3};
    spec.revoke_at_tick = 0;
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    spec.expect_partitions_tampered = 0;
    spec.expect_contributions_rejected = 3;
    manifest.push_back(std::move(spec));
  }

  // Mid-query mass revocation under churn: two TDSs are revoked at tick 1
  // of a DURATION-bounded collection. Whether each of them connected before
  // or after the broadcast decides accepted vs rejected — deterministically
  // per seed, and never silently.
  {
    ScenarioSpec spec = Base("keys-revoke-mid-query", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.dynamic_keys = true;
    spec.duration_ticks = 6;
    spec.revoke_at = {2, 5};
    spec.revoke_at_tick = 1;
    spec.expect_complete = true;
    manifest.push_back(std::move(spec));
  }

  // Epoch rollover while the query is in flight: the posting's epoch stays
  // inside the retained window, every honest TDS re-authenticates under the
  // new epoch, and the multi-round S_Agg completes oracle-matching.
  {
    ScenarioSpec spec = Base("keys-rollover-in-flight", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.dynamic_keys = true;
    spec.rollover_at_tick = 0;
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    spec.expect_partitions_tampered = 0;
    spec.expect_contributions_rejected = 0;
    manifest.push_back(std::move(spec));
  }

  // Byzantine key server, stale-epoch replay: after a mid-query revocation
  // the SSI republishes the pre-revocation epoch-0 block. TDSs refuse the
  // downgrade; anyone pinned to the stale epoch surfaces as a rejected
  // contribution, never as a wrong answer.
  {
    ScenarioSpec spec = Base("keys-stale-replay", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.dynamic_keys = true;
    spec.duration_ticks = 6;
    spec.revoke_at = {3};
    spec.revoke_at_tick = 1;
    spec.stale_block_at_tick = 2;
    spec.expect_complete = true;
    manifest.push_back(std::move(spec));
  }

  // Byzantine key server, forged rollover broadcast: garbage bytes replace
  // the epoch block. Every TDS rejects the forgery, keeps its last good
  // window, and the run stays clean and oracle-matching.
  {
    ScenarioSpec spec = Base("keys-forged-rollover", ProtocolKind::kSAgg);
    spec.num_threads = 2;
    spec.dynamic_keys = true;
    spec.forged_block_at_tick = 0;
    spec.expect_complete = true;
    spec.expect_partitions_lost = 0;
    spec.expect_partitions_tampered = 0;
    spec.expect_contributions_rejected = 0;
    manifest.push_back(std::move(spec));
  }

  return manifest;
}

std::vector<ScenarioSpec> SmokeManifest() {
  const char* picks[] = {"clean-S_Agg-zipf",     "chaos-ED_Hist",
                         "token-kill-S_Agg",     "take-reply-dropped",
                         "churn-after-upload",   "byz-replay-output",
                         "byz-forge-error",      "byz-reverse-collected",
                         "keys-revoked-injection", "keys-forged-rollover"};
  std::vector<ScenarioSpec> smoke;
  for (ScenarioSpec& spec : DefaultManifest()) {
    for (const char* name : picks) {
      if (spec.name == name) smoke.push_back(std::move(spec));
    }
  }
  return smoke;
}

}  // namespace tcells::sim
