#include "sim/cost_accountant.h"

#include <algorithm>
#include <sstream>

namespace tcells::sim {

const char* PhaseToString(Phase phase) {
  switch (phase) {
    case Phase::kCollection: return "collection";
    case Phase::kAggregation: return "aggregation";
    case Phase::kFiltering: return "filtering";
  }
  return "?";
}

void CostAccountant::RecordPartition(Phase phase, uint64_t tds_id,
                                     uint64_t bytes_in, uint64_t bytes_out,
                                     uint64_t tuples) {
  PhaseTally& t = phases_[static_cast<int>(phase)];
  t.bytes_downloaded += bytes_in;
  t.bytes_uploaded += bytes_out;
  t.tuples_processed += tuples;
  t.tds_participations += 1;
  t.partitions += 1;
  TdsTally& d = per_tds_[tds_id];
  d.bytes_in += bytes_in;
  d.bytes_out += bytes_out;
  d.tuples += tuples;
  d.participations += 1;
}

void CostAccountant::RecordIteration(Phase phase) {
  phases_[static_cast<int>(phase)].iterations += 1;
}

void CostAccountant::RecordDropout(Phase phase) {
  phases_[static_cast<int>(phase)].dropouts += 1;
}

uint64_t CostAccountant::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& t : phases_) {
    total += t.bytes_uploaded + t.bytes_downloaded;
  }
  return total;
}

double CostAccountant::AverageTdsSeconds(const DeviceModel& model) const {
  if (per_tds_.empty()) return 0;
  double total = 0;
  for (const auto& [id, t] : per_tds_) {
    total += model.TransferSeconds(t.bytes_in + t.bytes_out) +
             model.CryptoSeconds(t.bytes_in + t.bytes_out) +
             model.CpuSeconds(t.tuples);
  }
  return total / static_cast<double>(per_tds_.size());
}

double CostAccountant::MaxTdsSeconds(const DeviceModel& model) const {
  double worst = 0;
  for (const auto& [id, t] : per_tds_) {
    worst = std::max(worst,
                     model.TransferSeconds(t.bytes_in + t.bytes_out) +
                         model.CryptoSeconds(t.bytes_in + t.bytes_out) +
                         model.CpuSeconds(t.tuples));
  }
  return worst;
}

std::string CostAccountant::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < 3; ++i) {
    const PhaseTally& t = phases_[i];
    os << PhaseToString(static_cast<Phase>(i)) << ": up=" << t.bytes_uploaded
       << "B down=" << t.bytes_downloaded << "B tuples=" << t.tuples_processed
       << " partitions=" << t.partitions << " iterations=" << t.iterations
       << " dropouts=" << t.dropouts << "\n";
  }
  os << "distinct TDSs: " << DistinctTds() << "\n";
  return os.str();
}

}  // namespace tcells::sim
