// DeviceModel: the calibrated cost model of one Trusted Data Server device.
//
// The paper's experimental methodology (§6.2) measures unit costs on a
// tamper-resistant development board and feeds them into an analytical model.
// The board: 32-bit RISC MCU @ 120 MHz, AES/SHA crypto-coprocessor
// (167 cycles per 128-bit block), 64 KB static RAM, USB full speed measured
// at ~7.9 Mbps. We reproduce that board as a set of constants and per-
// operation timing functions; protocol runs tally bytes/tuples through a
// CostAccountant and this model converts the tallies into simulated time.
#ifndef TCELLS_SIM_DEVICE_MODEL_H_
#define TCELLS_SIM_DEVICE_MODEL_H_

#include <cstdint>
#include <string>

namespace tcells::sim {

/// Hardware/firmware parameters of a TDS-class secure device.
struct DeviceParams {
  double cpu_hz = 120e6;              ///< MCU clock.
  double crypto_cycles_per_block = 167;  ///< AES/SHA coprocessor, 16-B block.
  double transfer_bps = 7.9e6;        ///< Measured USB full-speed throughput.
  double cpu_cycles_per_tuple = 240;  ///< Byte->value conversion + aggregation
                                      ///< arithmetic per tuple; larger than
                                      ///< the coprocessor's crypto cost but
                                      ///< well under transfer (Fig 9b).
  uint64_t ram_bytes = 64 * 1024;     ///< Static RAM for the partial
                                      ///< aggregate structure (§4.2).

  /// The paper's reference board (defaults above).
  static DeviceParams PaperBoard() { return DeviceParams(); }

  /// A smart-meter-class TDS: "other TDSs (e.g., smart meters) may be more
  /// powerful than smart tokens" (§6.2) — faster MCU and an Ethernet-class
  /// uplink, same crypto coprocessor generation.
  static DeviceParams SmartMeter() {
    DeviceParams p;
    p.cpu_hz = 400e6;
    p.transfer_bps = 40e6;
    p.ram_bytes = 512 * 1024;
    return p;
  }
};

/// Converts operation counts into seconds on one device.
class DeviceModel {
 public:
  explicit DeviceModel(DeviceParams params = DeviceParams::PaperBoard())
      : params_(params) {}

  const DeviceParams& params() const { return params_; }

  /// Time to move `bytes` over the device link (either direction).
  double TransferSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / params_.transfer_bps;
  }

  /// Time to encrypt or decrypt `bytes` on the crypto-coprocessor.
  double CryptoSeconds(uint64_t bytes) const {
    double blocks = static_cast<double>((bytes + 15) / 16);
    return blocks * params_.crypto_cycles_per_block / params_.cpu_hz;
  }

  /// CPU time to deserialize + aggregate `tuples` tuples.
  double CpuSeconds(uint64_t tuples) const {
    return static_cast<double>(tuples) * params_.cpu_cycles_per_tuple /
           params_.cpu_hz;
  }

  /// Full cost of handling one incoming tuple of `tuple_bytes` (download +
  /// decrypt + process). This is the T_t of the cost model: with the paper's
  /// 16-byte tuples it comes out at ~16 µs, dominated by transfer.
  double PerTupleSeconds(uint64_t tuple_bytes) const {
    return TransferSeconds(tuple_bytes) + CryptoSeconds(tuple_bytes) +
           CpuSeconds(1);
  }

 private:
  DeviceParams params_;
};

}  // namespace tcells::sim

#endif  // TCELLS_SIM_DEVICE_MODEL_H_
