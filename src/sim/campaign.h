// Adversarial scenario campaign: a manifest of (protocol, workload, fault
// plan, tamper plan) scenarios executed against the real engine, each
// checked against a plaintext oracle and a set of robustness invariants:
//
//   * whenever a scenario completes with no loss, no tampering and full
//     collection participation, its result must equal the oracle's;
//   * whenever the result diverges from the oracle, the divergence must be
//     visible in metrics (partitions_lost / partitions_tampered /
//     collection_participants / contributions_rejected) — no silent wrong
//     answers;
//   * scenarios with pinned expectations (exact partitions_lost /
//     partitions_tampered, completion vs abort) must match them exactly.
//
// Every scenario is deterministic: the same spec produces a byte-identical
// ScenarioOutcome::Canonical() dump for any worker-thread count and on
// either transport backend (loopback or TCP). See docs/TESTING.md "Tier 5".
#ifndef TCELLS_SIM_CAMPAIGN_H_
#define TCELLS_SIM_CAMPAIGN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/byzantine.h"
#include "net/channel.h"
#include "net/faulty.h"
#include "protocol/protocols.h"

namespace tcells::sim {

/// One campaign scenario: a self-contained world plus an adversary.
struct ScenarioSpec {
  std::string name;
  protocol::ProtocolKind protocol = protocol::ProtocolKind::kSAgg;

  // Workload shape (workload::BuildGenericFleet).
  size_t num_tds = 32;
  size_t num_groups = 4;
  /// Zipf exponent of the group popularity (0 = uniform).
  double group_skew = 0.0;
  size_t rows_per_tds = 2;

  uint64_t seed = 11;
  size_t num_threads = 1;
  double dropout_rate = 0.0;
  /// Transport retry budget: max_dropout_retries + 1 attempts per message.
  size_t max_dropout_retries = 4;

  /// The adversary. Null members = honest transport / honest SSI.
  std::shared_ptr<const net::FaultPlan> faults;
  std::shared_ptr<const net::TamperPlan> tampering;

  // ---- Dynamic key management (docs/KEYS.md) ----

  /// Run under Engine KeyMode::kDynamic: per-query session keys, epoch
  /// blocks on the SSI, contribution admission checks.
  bool dynamic_keys = false;
  /// Override the scenario query with a DURATION-bounded one (ticked
  /// connectivity), so mid-collection key events have ticks to land on.
  /// 0 = the protocol's default single-pass query.
  uint64_t duration_ticks = 0;
  /// TDS ids revoked right after engine bring-up, before the query is
  /// posted. Primed with the epoch-0 window, they still answer — and every
  /// answer is rejected by the admission check.
  std::vector<uint64_t> revoke_before;
  /// TDS ids revoked at the start of collection tick `revoke_at_tick`
  /// (mid-query churn).
  std::vector<uint64_t> revoke_at;
  std::optional<uint64_t> revoke_at_tick;
  /// Roll the key epoch (no revocation change) at the start of this tick:
  /// in-flight queries must keep completing, oracle-matching.
  std::optional<uint64_t> rollover_at_tick;
  /// Byzantine key server: at the start of this tick, republish the stale
  /// epoch-0 block over the current one. TDSs must refuse the downgrade.
  std::optional<uint64_t> stale_block_at_tick;
  /// Byzantine key server: at the start of this tick, publish forged bytes
  /// as the epoch block. TDSs must reject it and keep their last good
  /// window.
  std::optional<uint64_t> forged_block_at_tick;

  // Pinned expectations; unset = any value is acceptable (the general
  // invariants above still apply).
  std::optional<bool> expect_complete;
  std::optional<uint64_t> expect_partitions_lost;
  std::optional<uint64_t> expect_partitions_tampered;
  std::optional<uint64_t> expect_contributions_rejected;
};

/// Everything one scenario execution produced, reduced to deterministic
/// values (no wall-clock, no allocation addresses).
struct ScenarioOutcome {
  std::string name;
  bool completed = false;
  /// Status of the aborted run ("" when completed).
  std::string abort_status;

  std::string result_table;  ///< QueryResult::ToString() ("" when aborted)
  bool oracle_match = false; ///< result SameRows the plaintext reference
  /// No loss, no tampering, full collection participation: the scenario has
  /// no excuse for diverging from the oracle.
  bool clean = false;

  uint64_t partitions_lost = 0;
  uint64_t partitions_tampered = 0;
  uint64_t collection_participants = 0;
  /// Dynamic key mode: uploads discarded by the contribution admission
  /// check (RunMetrics::contributions_rejected).
  uint64_t contributions_rejected = 0;
  uint64_t eligible_tds = 0;
  uint64_t retries = 0;
  uint64_t deadline_hits = 0;

  uint64_t faults_injected = 0;
  std::string fault_log;  ///< FaultyTransport::CanonicalLog()
  uint64_t tampers = 0;   ///< ByzantineProxy stats total

  /// Invariant violations detected for this scenario (empty = pass).
  std::vector<std::string> violations;

  /// Deterministic byte dump: identical across thread counts and backends
  /// for the same spec. The campaign determinism tests compare these.
  std::string Canonical() const;
};

/// Executes one scenario end to end: builds the world, runs the plaintext
/// oracle, runs the engine under the scenario's adversary on `backend`, and
/// evaluates the invariants. Errors are only returned for harness failures
/// (bad spec, world construction); a query abort is a normal outcome.
Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec,
                                    net::TransportKind backend);

struct CampaignResult {
  std::vector<ScenarioOutcome> outcomes;
  size_t total_violations = 0;

  /// Concatenated per-scenario canonical dumps.
  std::string Canonical() const;
};

/// Runs every scenario in order (any scenario's harness failure aborts the
/// campaign). Violations do not abort — they are collected for the caller.
Result<CampaignResult> RunCampaign(const std::vector<ScenarioSpec>& manifest,
                                   net::TransportKind backend);

/// The full manifest: all 5 protocols under probabilistic and scripted
/// transport faults, Zipf-skewed workloads, and every byzantine tampering
/// class.
std::vector<ScenarioSpec> DefaultManifest();

/// A small deterministic subset for the default build's `ctest -L sim`.
std::vector<ScenarioSpec> SmokeManifest();

}  // namespace tcells::sim

#endif  // TCELLS_SIM_CAMPAIGN_H_
