#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace tcells::obs {

std::string FormatDouble(double value) {
  char buf[64];
  // Shortest precision that round-trips: equal doubles always produce equal
  // strings, and simple values print simply ("0.1", not "0.100000...001").
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  counts_[bucket] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = start;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::DefaultSizeBounds() {
  return ExponentialBounds(64, 4, 11);  // 64 B .. 64 MiB
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return ExponentialBounds(1e-3, 4, 12);  // 1 ms .. ~4200 s
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  Snapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatDouble(h.sum);
    if (h.count > 0) {
      out += ", \"min\": " + FormatDouble(h.min);
      out += ", \"max\": " + FormatDouble(h.max);
    }
    out += ", \"buckets\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ", ";
      out += "[";
      out += i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "null";
      out += ", " + std::to_string(h.counts[i]) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToCsv() const {
  Snapshot snap = snapshot();
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, value] : snap.counters) {
    out += "counter," + name + ",value," + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "histogram," + name + ",count," + std::to_string(h.count) + "\n";
    out += "histogram," + name + ",sum," + FormatDouble(h.sum) + "\n";
    if (h.count > 0) {
      out += "histogram," + name + ",min," + FormatDouble(h.min) + "\n";
      out += "histogram," + name + ",max," + FormatDouble(h.max) + "\n";
    }
    for (size_t i = 0; i < h.counts.size(); ++i) {
      out += "histogram," + name + ",le_";
      out += i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "inf";
      out += "," + std::to_string(h.counts[i]) + "\n";
    }
  }
  return out;
}

}  // namespace tcells::obs
