#include "obs/trace.h"

namespace tcells::obs {

Trace::Trace(uint64_t query_id) : query_id_(query_id) {
  root_ = std::make_unique<Span>();
  root_->id = next_id_++;
  root_->name = kSpanQuery;
}

Span* Trace::StartSpan(Span* parent, std::string name) {
  if (parent == nullptr) parent = root_.get();
  auto span = std::make_unique<Span>();
  span->id = next_id_++;
  span->parent_id = parent->id;
  span->name = std::move(name);
  parent->children.push_back(std::move(span));
  return parent->children.back().get();
}

namespace {

void Visit(const Span& span, int depth,
           const std::function<void(const Span&, int)>& fn) {
  fn(span, depth);
  for (const auto& child : span.children) Visit(*child, depth + 1, fn);
}

void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

void SpanToJson(const Span& span, const TraceExportOptions& options,
                const std::string& indent, std::string* out) {
  const std::string in2 = indent + "  ";
  *out += "{\n" + in2 + "\"name\": ";
  AppendQuoted(span.name, out);
  *out += ",\n" + in2 + "\"id\": " + std::to_string(span.id);
  *out += ",\n" + in2 + "\"sim_begin_seconds\": " +
          FormatDouble(span.sim_begin_seconds);
  *out += ",\n" + in2 + "\"sim_end_seconds\": " +
          FormatDouble(span.sim_end_seconds);
  if (options.include_wall_time) {
    *out += ",\n" + in2 + "\"wall_micros\": " + FormatDouble(span.wall_micros);
  }
  if (!span.counts.empty()) {
    *out += ",\n" + in2 + "\"counts\": {";
    bool first = true;
    for (const auto& [key, value] : span.counts) {
      if (!first) *out += ", ";
      first = false;
      AppendQuoted(key, out);
      *out += ": " + std::to_string(value);
    }
    *out += "}";
  }
  if (!span.values.empty()) {
    *out += ",\n" + in2 + "\"values\": {";
    bool first = true;
    for (const auto& [key, value] : span.values) {
      if (!first) *out += ", ";
      first = false;
      AppendQuoted(key, out);
      *out += ": " + FormatDouble(value);
    }
    *out += "}";
  }
  if (!span.labels.empty()) {
    *out += ",\n" + in2 + "\"labels\": {";
    bool first = true;
    for (const auto& [key, value] : span.labels) {
      if (!first) *out += ", ";
      first = false;
      AppendQuoted(key, out);
      *out += ": ";
      AppendQuoted(value, out);
    }
    *out += "}";
  }
  if (!span.children.empty()) {
    *out += ",\n" + in2 + "\"children\": [";
    for (size_t i = 0; i < span.children.size(); ++i) {
      *out += i ? ", " : "";
      SpanToJson(*span.children[i], options, in2, out);
    }
    *out += "]";
  }
  *out += "\n" + indent + "}";
}

}  // namespace

void Trace::ForEach(
    const std::function<void(const Span&, int depth)>& fn) const {
  Visit(*root_, 0, fn);
}

uint64_t Trace::SumCount(const std::string& span_name,
                         const std::string& key) const {
  uint64_t total = 0;
  ForEach([&](const Span& span, int) {
    if (span.name != span_name) return;
    auto it = span.counts.find(key);
    if (it != span.counts.end()) total += it->second;
  });
  return total;
}

size_t Trace::CountSpans(const std::string& span_name) const {
  size_t n = 0;
  ForEach([&](const Span& span, int) {
    if (span.name == span_name) ++n;
  });
  return n;
}

std::string Trace::ToJson(const TraceExportOptions& options) const {
  std::string out = "{\n  \"query_id\": " + std::to_string(query_id_);
  out += ",\n  \"span\": ";
  SpanToJson(*root_, options, "  ", &out);
  out += "\n}\n";
  return out;
}

std::string Trace::ToCsv(const TraceExportOptions& options) const {
  std::string out = "span_id,parent_id,name,attr,value\n";
  ForEach([&](const Span& span, int) {
    std::string prefix = std::to_string(span.id) + "," +
                         std::to_string(span.parent_id) + "," + span.name +
                         ",";
    out += prefix + "sim_begin_seconds," +
           FormatDouble(span.sim_begin_seconds) + "\n";
    out += prefix + "sim_end_seconds," + FormatDouble(span.sim_end_seconds) +
           "\n";
    if (options.include_wall_time) {
      out += prefix + "wall_micros," + FormatDouble(span.wall_micros) + "\n";
    }
    for (const auto& [key, value] : span.counts) {
      out += prefix + "count:" + key + "," + std::to_string(value) + "\n";
    }
    for (const auto& [key, value] : span.values) {
      out += prefix + "value:" + key + "," + FormatDouble(value) + "\n";
    }
    for (const auto& [key, value] : span.labels) {
      out += prefix + "label:" + key + "," + value + "\n";
    }
  });
  return out;
}

std::shared_ptr<Trace> Tracer::StartTrace(uint64_t query_id) {
  auto trace = std::make_shared<Trace>(query_id);
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(trace);
  return trace;
}

std::vector<std::shared_ptr<const Trace>> Tracer::traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {traces_.begin(), traces_.end()};
}

std::shared_ptr<const Trace> Tracer::TraceFor(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if ((*it)->query_id() == query_id) return *it;
  }
  return nullptr;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::string Tracer::ToJson(const TraceExportOptions& options) const {
  auto snapshot = traces();
  std::string out = "[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += snapshot[i]->ToJson(options);
  }
  out += "]\n";
  return out;
}

}  // namespace tcells::obs
