// Query tracing: a per-query span tree recording what every protocol phase
// actually did — the collection window, each aggregation/filtering round,
// dropout re-dispatches, result decryption — tagged with partition counts,
// ciphertext bytes in/out and noise ratios, on both the simulated clock and
// wall time.
//
// Determinism contract: spans are created and mutated only from serial
// sections of the engine (the fold steps that already make the accountant
// deterministic), so a trace is bit-identical for any --threads value. Wall
// times are the one measured (nondeterministic) field; exporters therefore
// omit them unless TraceExportOptions.include_wall_time is set, keeping the
// default export byte-identical across thread counts and machines.
#ifndef TCELLS_OBS_TRACE_H_
#define TCELLS_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tcells::obs {

/// Canonical span names used by the engine (see docs/OBSERVABILITY.md).
inline constexpr char kSpanQuery[] = "query";
inline constexpr char kSpanCollection[] = "collection";
inline constexpr char kSpanAggregationRound[] = "aggregation_round";
inline constexpr char kSpanFilteringRound[] = "filtering_round";
inline constexpr char kSpanDecrypt[] = "decrypt";

/// One node of a query's span tree. Attributes live in three ordered maps so
/// exports are deterministic: integer tallies (`counts`), real-valued
/// measurements (`values`), and string tags (`labels`).
struct Span {
  uint64_t id = 0;         ///< 1-based, in creation (= serial fold) order
  uint64_t parent_id = 0;  ///< 0 for the root
  std::string name;

  /// Simulated clock (seconds since the query started), from the same
  /// critical-path model the RunMetrics times come from.
  double sim_begin_seconds = 0;
  double sim_end_seconds = 0;
  /// Measured wall time of the span (microseconds). Excluded from exports
  /// unless explicitly requested — see the determinism contract above.
  double wall_micros = 0;

  std::map<std::string, uint64_t> counts;
  std::map<std::string, double> values;
  std::map<std::string, std::string> labels;

  std::vector<std::unique_ptr<Span>> children;

  void AddCount(const std::string& key, uint64_t delta) {
    counts[key] += delta;
  }
};

struct TraceExportOptions {
  /// Include measured wall times. Off by default so that exports are
  /// byte-identical across thread counts and hosts.
  bool include_wall_time = false;
};

/// The span tree of one query execution. Not thread-safe by design: all
/// mutation happens in the engine's serial sections.
class Trace {
 public:
  explicit Trace(uint64_t query_id);

  uint64_t query_id() const { return query_id_; }
  Span* root() { return root_.get(); }
  const Span* root() const { return root_.get(); }

  /// Appends a child span under `parent` (nullptr = root).
  Span* StartSpan(Span* parent, std::string name);

  /// Pre-order traversal.
  void ForEach(const std::function<void(const Span&, int depth)>& fn) const;

  /// Sum of `counts[key]` over all spans named `span_name`. The obs tests
  /// cross-check these sums against the CostAccountant tallies.
  uint64_t SumCount(const std::string& span_name,
                    const std::string& key) const;
  /// Number of spans named `span_name`.
  size_t CountSpans(const std::string& span_name) const;

  std::string ToJson(const TraceExportOptions& options = {}) const;
  /// Flat rows: span_id,parent_id,name,attr,value (one row per attribute).
  std::string ToCsv(const TraceExportOptions& options = {}) const;

 private:
  uint64_t query_id_;
  uint64_t next_id_ = 1;
  std::unique_ptr<Span> root_;
};

/// Collects the traces of many queries (e.g. one QuerySession batch or a
/// whole Engine lifetime). Starting a trace is thread-safe; mutating the
/// returned Trace follows the Trace rules.
class Tracer {
 public:
  std::shared_ptr<Trace> StartTrace(uint64_t query_id);

  std::vector<std::shared_ptr<const Trace>> traces() const;
  /// Latest trace recorded for `query_id`, or nullptr.
  std::shared_ptr<const Trace> TraceFor(uint64_t query_id) const;
  size_t size() const;

  /// JSON array of all traces, in start order.
  std::string ToJson(const TraceExportOptions& options = {}) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Trace>> traces_;
};

/// Non-owning bundle of telemetry sinks handed down the execution stack.
/// Either pointer may be null (that instrument is simply off); the default
/// bundle disables telemetry entirely.
struct Telemetry {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

}  // namespace tcells::obs

#endif  // TCELLS_OBS_TRACE_H_
