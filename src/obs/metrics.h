// MetricsRegistry: process-wide counters and bucketed histograms for the
// query engine. The paper's evaluation (§6, Figs 9-11) is entirely about
// where time and bytes go — per-phase TDS load, SSI traffic, per-round
// latency — so every execution path records into this registry and benches
// export it machine-readably (JSON/CSV) instead of re-deriving tallies by
// hand.
//
// Thread-safety: counters are lock-free atomics; histograms take a small
// mutex per Record. Creation of a metric (first use of a name) takes the
// registry mutex. Instruments are created once and never removed, so the
// references handed out stay valid for the registry's lifetime.
#ifndef TCELLS_OBS_METRICS_H_
#define TCELLS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tcells::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Bucketed distribution of a real-valued measurement (latency in seconds,
/// payload sizes in bytes). Buckets are defined by their inclusive upper
/// bounds; an implicit +inf bucket catches the rest.
class Histogram {
 public:
  /// `bounds` must be strictly increasing. Records <= bounds[i] land in
  /// bucket i; larger ones in the overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  struct Snapshot {
    std::vector<double> bounds;    ///< upper bounds, one per finite bucket
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries (last = +inf)
    uint64_t count = 0;
    double sum = 0;
    double min = 0;  ///< meaningful only when count > 0
    double max = 0;
  };
  Snapshot snapshot() const;

  /// `n` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t n);
  /// Default size buckets (bytes): 64 B .. 64 MB, x4 steps.
  static std::vector<double> DefaultSizeBounds();
  /// Default latency buckets (seconds): 1 ms .. ~4000 s, x4 steps.
  static std::vector<double> DefaultLatencyBounds();

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named instrument registry. Lookup creates on first use; the returned
/// references stay valid forever (instruments are never destroyed while the
/// registry lives).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  /// `bounds` is consulted only on first creation of `name`; empty = default
  /// latency bounds.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, Histogram::Snapshot> histograms;
  };
  Snapshot snapshot() const;

  /// {"counters": {name: value, ...}, "histograms": {name: {...}, ...}}.
  /// Deterministic: map order, fixed float formatting.
  std::string ToJson() const;

  /// One row per scalar: `kind,name,field,value`. Counters contribute one
  /// row; histograms contribute count/sum/min/max plus one row per bucket.
  std::string ToCsv() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Deterministic float formatting shared by the obs exporters: shortest
/// round-trip form ("%.17g" trimmed) so equal doubles always serialize to
/// equal strings.
std::string FormatDouble(double value);

}  // namespace tcells::obs

#endif  // TCELLS_OBS_METRICS_H_
