// Per-protocol configuration a TDS receives alongside a query (in a real
// deployment this rides inside the encrypted query post; the simulation
// passes it as a struct). It tells the TDS how to encode its collection-phase
// output and how to tag aggregation-phase output.
#ifndef TCELLS_TDS_CONFIG_H_
#define TCELLS_TDS_CONFIG_H_

#include <memory>
#include <optional>
#include <vector>

#include "ssi/messages.h"
#include "storage/tuple.h"
#include "tds/histogram.h"

namespace tcells::tds {

/// How collection-phase items are encoded / tagged (§4.2-4.4).
enum class CollectionMode {
  kNDet,     ///< nDet_Enc, no routing tag (basic protocol, S_Agg)
  kDetTag,   ///< routing tag = Det_Enc(A_G); noise tuples added (Noise)
  kHistTag,  ///< routing tag = h(bucketId) of an equi-depth histogram (ED_Hist)
};

/// Noise generation parameters (kDetTag).
struct NoiseConfig {
  /// Rnf_Noise: fake tuples added per true tuple (white noise). Ignored when
  /// `complementary` is set.
  int nf = 0;
  /// C_Noise: one fake per domain value different from the true one.
  bool complementary = false;
  /// The known A_G domain (group-key tuples). Required: random noise draws
  /// from it, complementary noise enumerates it.
  std::shared_ptr<const std::vector<storage::Tuple>> group_domain;
};

/// Everything the collection phase needs.
struct CollectionConfig {
  CollectionMode mode = CollectionMode::kNDet;
  NoiseConfig noise;  // kDetTag only
  std::shared_ptr<const EquiDepthHistogram> histogram;  // kHistTag only
  /// Pad every plaintext payload to this many bytes (0 = no padding) so that
  /// dummy/fake items are indistinguishable from true ones by length.
  size_t pad_payload_to = 0;
  /// Dynamic key mode: the public key posting of this query. A TDS given a
  /// posting derives the per-query session keys (k1q/k2q) through its
  /// installed key state instead of using the static provisioned KeyStore;
  /// absent = static keys, bit-identical to the pre-key-management behaviour.
  std::optional<ssi::QueryKeyPosting> key_posting;
};

/// How aggregation-phase output items are tagged.
enum class OutputTagPolicy {
  kNone,         ///< no tag (S_Agg: output shuffles back into random partitions)
  kPreserve,     ///< keep the partition's input tag (Noise step 1 -> step 2)
  kPerGroupDet,  ///< one output item per group, tag = Det_Enc(group key)
                 ///< (ED_Hist step 1 -> step 2)
};

}  // namespace tcells::tds

#endif  // TCELLS_TDS_CONFIG_H_
