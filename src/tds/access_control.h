// Access control inside a TDS (§3.1): a TDS answers only authorized queries.
// It knows the access-control policy (installed by the application provider,
// the legislator or a consumer association) and checks the querier's
// credential, which is signed by an authority.
//
// The credential is modeled as an HMAC by the authority over the querier id;
// every TDS holds the authority's verification key (symmetric, standing in
// for a certificate chain).
#ifndef TCELLS_TDS_ACCESS_CONTROL_H_
#define TCELLS_TDS_ACCESS_CONTROL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "sql/analyzer.h"

namespace tcells::tds {

/// Issues and verifies querier credentials.
class Authority {
 public:
  explicit Authority(Bytes key) : key_(std::move(key)) {}

  /// Credential MAC for a querier identity.
  Bytes Issue(const std::string& querier_id) const;

  /// Constant-content check (timing side channels are out of scope here).
  bool Verify(const std::string& querier_id, const Bytes& credential) const;

 private:
  Bytes key_;
};

/// One grant: querier (or "*" for everyone) may read `table`; if `columns`
/// is non-empty, only those columns.
struct AccessRule {
  std::string querier_id;             // "*" matches any authenticated querier
  std::string table;
  std::vector<std::string> columns;   // empty = all columns
};

/// The policy a TDS enforces. Deny-by-default: a query is authorized only if
/// every (table, column) it touches is covered by some rule for the querier.
class AccessPolicy {
 public:
  AccessPolicy() = default;
  explicit AccessPolicy(std::vector<AccessRule> rules)
      : rules_(std::move(rules)) {}

  void AddRule(AccessRule rule) { rules_.push_back(std::move(rule)); }

  /// Grants everything to everyone (opt-in deployments where participation
  /// itself is the consent, e.g. the smart-meter scenario).
  static AccessPolicy AllowAll();

  /// PermissionDenied if any referenced column is not covered.
  Status CheckQuery(const sql::AnalyzedQuery& query,
                    const std::string& querier_id) const;

 private:
  bool Covers(const std::string& querier_id, const std::string& table,
              const std::string& column) const;

  std::vector<AccessRule> rules_;
  bool allow_all_ = false;
};

/// Collects the combined-row indices a query actually reads (WHERE, grouping
/// attributes, aggregate inputs, projections).
std::vector<int> ReferencedColumns(const sql::AnalyzedQuery& query);

}  // namespace tcells::tds

#endif  // TCELLS_TDS_ACCESS_CONTROL_H_
