// LeakLog: instrumentation for the paper's future-work threat extension —
// "(2) extend the threat model to (a small number of) compromised TDSs".
//
// A compromised TDS still runs the protocol (its code is tamper-resistant in
// the paper's model; here we deliberately break that assumption) but leaks
// everything it decrypts. Marking some TDSs compromised and inspecting the
// log after a run measures how much raw data an attacker who extracted k2
// from a few devices would see under each protocol.
#ifndef TCELLS_TDS_LEAK_LOG_H_
#define TCELLS_TDS_LEAK_LOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>

#include "storage/tuple.h"

namespace tcells::tds {

/// Shared by all compromised TDSs of one experiment. Thread-safe: several
/// compromised TDSs may process partitions concurrently under the parallel
/// fleet engine, and their appends must not be lost. The leaked sets are
/// order-insensitive by construction, so concurrent runs record exactly what
/// a serial run records.
class LeakLog {
 public:
  void RecordRawTuple(uint64_t tds_id, const storage::Tuple& tuple) {
    std::lock_guard<std::mutex> lock(mu_);
    raw_tuples_.insert(tuple);
    per_tds_raw_[tds_id] += 1;
  }
  void RecordGroupAggregate(uint64_t tds_id, const storage::Tuple& key) {
    std::lock_guard<std::mutex> lock(mu_);
    group_keys_.insert(key);
    per_tds_groups_[tds_id] += 1;
  }
  void RecordResultRow(uint64_t tds_id, const storage::Tuple& row) {
    std::lock_guard<std::mutex> lock(mu_);
    result_rows_.insert(row);
    (void)tds_id;
  }

  /// Distinct raw collection tuples an attacker learned in plaintext.
  size_t NumLeakedRawTuples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return raw_tuples_.size();
  }
  /// Distinct groups whose (partial or final) aggregate the attacker saw.
  size_t NumLeakedGroups() const {
    std::lock_guard<std::mutex> lock(mu_);
    return group_keys_.size();
  }
  size_t NumLeakedResultRows() const {
    std::lock_guard<std::mutex> lock(mu_);
    return result_rows_.size();
  }

  /// Total appends seen per kind (counts duplicates the sets deduplicate);
  /// the concurrency regression test asserts no append is ever lost.
  uint64_t NumRawAppends() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& [id, n] : per_tds_raw_) total += n;
    return total;
  }

  /// Snapshot of the leaked raw tuples. Returns a copy: the log may still be
  /// appended to from other threads while the caller inspects the result.
  std::set<storage::Tuple> raw_tuples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return raw_tuples_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    raw_tuples_.clear();
    group_keys_.clear();
    result_rows_.clear();
    per_tds_raw_.clear();
    per_tds_groups_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::set<storage::Tuple> raw_tuples_;
  std::set<storage::Tuple> group_keys_;
  std::set<storage::Tuple> result_rows_;
  std::map<uint64_t, uint64_t> per_tds_raw_;
  std::map<uint64_t, uint64_t> per_tds_groups_;
};

}  // namespace tcells::tds

#endif  // TCELLS_TDS_LEAK_LOG_H_
