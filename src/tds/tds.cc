#include "tds/tds.h"

#include <string>

#include "crypto/hmac.h"

namespace tcells::tds {

using ssi::EncryptedItem;
using ssi::Partition;
using ssi::PayloadKind;
using storage::Tuple;
using storage::Value;

namespace {

Bytes HashTagBytes(uint64_t h) {
  Bytes out;
  ByteWriter w(&out);
  w.PutU64(h);
  return out;
}

/// Per-thread scratch for the partition hot paths. Everything here is
/// transient within one Process* call: the arena holds decrypted plaintexts
/// (reset at the start of each partition), the Bytes buffers hold encodings
/// in flight, and the tuple is the per-item decode target. Thread-local so
/// the engine's pool threads each warm their own and never contend.
struct Workspace {
  Arena arena;
  std::vector<std::span<const uint8_t>> plains;
  Bytes payload;         // EncodePayloadTo target
  Bytes body;            // tuple/aggregation encoding in flight
  storage::Tuple tuple;  // per-item decode target
};

Workspace& ThreadWorkspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace

TrustedDataServer::TrustedDataServer(
    uint64_t id, std::shared_ptr<const crypto::KeyStore> keys,
    std::shared_ptr<const Authority> authority, AccessPolicy policy,
    TdsOptions options)
    : id_(id),
      keys_(std::move(keys)),
      authority_(std::move(authority)),
      policy_(std::move(policy)),
      options_(options) {}

Result<std::shared_ptr<const TrustedDataServer::CachedQuery>>
TrustedDataServer::OpenQueryEntry(const ssi::QueryPost& post) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = query_cache_.find(post.query_id);
    if (it != query_cache_.end()) {
      lru_order_.splice(lru_order_.begin(), lru_order_, it->second->lru_pos);
      return std::shared_ptr<const CachedQuery>(it->second);
    }
  }
  // Miss: decrypt + analyze outside the lock (reads only immutable state),
  // so a slow parse of one query never stalls another query's cache hit.
  // Decrypt the query text with k1 (step 3) — the per-query session k1q when
  // the post carries a key posting.
  TCELLS_ASSIGN_OR_RETURN(std::shared_ptr<const crypto::KeyStore> open_keys,
                          KeysForQuery(post.key_posting));
  TCELLS_ASSIGN_OR_RETURN(Bytes sql_bytes,
                          open_keys->k1_ndet().Decrypt(post.encrypted_query));
  std::string sql(sql_bytes.begin(), sql_bytes.end());
  TCELLS_ASSIGN_OR_RETURN(std::shared_ptr<const sql::AnalyzedQuery> query,
                          sql::AnalyzeSqlShared(sql, db_.catalog()));
  auto cached = std::make_shared<CachedQuery>();
  cached->query = std::move(query);
  // Credential + policy checks. Failures become PermissionDenied, which
  // the collection phase answers with a dummy rather than an error.
  if (!authority_->Verify(post.querier_id, post.credential_mac)) {
    cached->access = Status::PermissionDenied("bad credential");
  } else {
    cached->access = policy_.CheckQuery(*cached->query, post.querier_id);
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = query_cache_.find(post.query_id);
  if (it != query_cache_.end()) {
    // Lost a fill race with a concurrent open of the same query_id; the
    // analysis is deterministic, so either copy is equivalent — keep the
    // first so cached pointers stay stable.
    lru_order_.splice(lru_order_.begin(), lru_order_, it->second->lru_pos);
    return std::shared_ptr<const CachedQuery>(it->second);
  }
  // Insert as most-recently-used, evicting the coldest entry beyond the
  // capacity — a TDS in a long-lived fleet must not grow per distinct
  // query_id forever.
  if (options_.query_cache_capacity > 0 &&
      query_cache_.size() >= options_.query_cache_capacity) {
    query_cache_.erase(lru_order_.back());
    lru_order_.pop_back();
  }
  lru_order_.push_front(post.query_id);
  cached->lru_pos = lru_order_.begin();
  query_cache_.emplace(post.query_id, cached);
  return std::shared_ptr<const CachedQuery>(std::move(cached));
}

Result<const sql::AnalyzedQuery*> TrustedDataServer::OpenQuery(
    const ssi::QueryPost& post) {
  TCELLS_ASSIGN_OR_RETURN(std::shared_ptr<const CachedQuery> entry,
                          OpenQueryEntry(post));
  if (!entry->access.ok()) return entry->access;
  // The map keeps the entry alive until eviction, the documented lifetime of
  // this pointer for single-query callers.
  return entry->query.get();
}

Result<std::shared_ptr<const crypto::KeyStore>>
TrustedDataServer::KeysForQuery(
    const std::optional<ssi::QueryKeyPosting>& posting) const {
  if (!posting) return keys_;
  if (key_state_ == nullptr) {
    return Status::FailedPrecondition(
        "dynamically-keyed query on a TDS without key state");
  }
  return key_state_->KeysFor(*posting);
}

Result<keys::ContributionTag> TrustedDataServer::TagContribution(
    uint64_t query_id, const std::vector<ssi::EncryptedItem>& items) {
  if (key_state_ == nullptr) {
    return Status::FailedPrecondition(
        "contribution tagging needs an installed key state");
  }
  return key_state_->Tag(query_id, keys::ContributionDigest(items));
}

ssi::EncryptedItem TrustedDataServer::SealK2(const crypto::KeyStore& keys,
                                             const Bytes& payload,
                                             std::optional<Bytes> tag,
                                             Rng* rng) const {
  return SealK2(keys, payload.data(), payload.size(), std::move(tag), rng);
}

ssi::EncryptedItem TrustedDataServer::SealK2(const crypto::KeyStore& keys,
                                             const uint8_t* payload,
                                             size_t payload_size,
                                             std::optional<Bytes> tag,
                                             Rng* rng) const {
  EncryptedItem item;
  keys.k2_ndet().Encrypt(payload, payload_size, rng, &item.blob);
  item.routing_tag = std::move(tag);
  return item;
}

Bytes TrustedDataServer::GroupKeyTagBytes(const crypto::KeyStore& keys,
                                          const Tuple& collection_tuple,
                                          size_t key_arity) const {
  Tuple key(std::vector<Value>(collection_tuple.values().begin(),
                               collection_tuple.values().begin() +
                                   std::min(key_arity,
                                            collection_tuple.size())));
  return keys.k2_det().Encrypt(key.Encode());
}

Result<ssi::EncryptedItem> TrustedDataServer::MakeDummy(
    const crypto::KeyStore& keys, const sql::AnalyzedQuery& query,
    const CollectionConfig& config, Rng* rng) const {
  // Dummy body: an all-NULL tuple of the collection arity, so its size is in
  // family with true tuples even without padding.
  Tuple dummy_tuple(std::vector<Value>(
      query.collection_schema.num_columns(), Value::Null()));
  Bytes payload = ssi::EncodePayload(PayloadKind::kDummyTuple,
                                     dummy_tuple.Encode(),
                                     config.pad_payload_to);
  std::optional<Bytes> tag;
  switch (config.mode) {
    case CollectionMode::kNDet:
      break;
    case CollectionMode::kDetTag: {
      // Tag with a random domain key so the dummy blends into a real group.
      if (!config.noise.group_domain || config.noise.group_domain->empty()) {
        return Status::FailedPrecondition(
            "Det-tag collection requires a group domain");
      }
      const auto& domain = *config.noise.group_domain;
      const Tuple& key = domain[rng->NextBelow(domain.size())];
      tag = keys.k2_det().Encrypt(key.Encode());
      break;
    }
    case CollectionMode::kHistTag: {
      if (!config.histogram || config.histogram->num_buckets() == 0) {
        return Status::FailedPrecondition(
            "histogram collection requires a histogram");
      }
      uint32_t bucket = static_cast<uint32_t>(
          rng->NextBelow(config.histogram->num_buckets()));
      tag = HashTagBytes(crypto::KeyedHash64(
          keys.k2_hash(), EquiDepthHistogram::BucketIdBytes(bucket)));
      break;
    }
  }
  return SealK2(keys, payload, std::move(tag), rng);
}

Result<std::vector<ssi::EncryptedItem>> TrustedDataServer::ProcessCollection(
    const ssi::QueryPost& post, const CollectionConfig& config, Rng* rng) {
  // Resolve the query's KeyStore first: a TDS that cannot reach the
  // posting's epoch (revoked, or its window rolled past it) cannot serve at
  // all, which the session surfaces as a non-participant.
  TCELLS_ASSIGN_OR_RETURN(std::shared_ptr<const crypto::KeyStore> keys_sp,
                          KeysForQuery(post.key_posting));
  const crypto::KeyStore& keys = *keys_sp;
  TCELLS_ASSIGN_OR_RETURN(std::shared_ptr<const CachedQuery> entry,
                          OpenQueryEntry(post));
  // The pinned entry carries the analyzed shape even when access was denied
  // — we still need it to emit a well-formed dummy.
  const sql::AnalyzedQuery* query = entry->query.get();
  bool denied = false;
  if (!entry->access.ok()) {
    if (!entry->access.IsPermissionDenied()) return entry->access;
    denied = true;
  }

  std::vector<Tuple> tuples;
  if (!denied) {
    TCELLS_ASSIGN_OR_RETURN(tuples, sql::CollectionTuples(db_, *query));
  }
  if (tuples.empty()) {
    // Empty result or denied: a single dummy (§3.2 step 4'), so the SSI
    // cannot learn the query's selectivity or the policy outcome.
    TCELLS_ASSIGN_OR_RETURN(EncryptedItem dummy,
                            MakeDummy(keys, *query, config, rng));
    return std::vector<EncryptedItem>{std::move(dummy)};
  }

  // Everything about a fake tuple except its IV is a pure function of the
  // domain value, so the fake payloads and Det tags are computed once per
  // call instead of once per (true tuple, fake) pair — under C_Noise that is
  // the difference between O(n) and O(n * |domain|) encode/Det-encrypt work.
  std::vector<Bytes> fake_payloads;
  std::vector<Bytes> fake_tags;
  if (config.mode == CollectionMode::kDetTag) {
    if (!config.noise.group_domain || config.noise.group_domain->empty()) {
      return Status::FailedPrecondition(
          "Det-tag collection requires a group domain");
    }
    const auto& domain = *config.noise.group_domain;
    fake_payloads.reserve(domain.size());
    fake_tags.reserve(domain.size());
    for (const Tuple& fake_key : domain) {
      Tuple fake = fake_key;
      for (size_t i = query->key_arity;
           i < query->collection_schema.num_columns(); ++i) {
        fake.Append(Value::Null());
      }
      fake_payloads.push_back(ssi::EncodePayload(
          PayloadKind::kFakeTuple, fake.Encode(), config.pad_payload_to));
      fake_tags.push_back(keys.k2_det().Encrypt(fake_key.Encode()));
    }
  }

  auto& ws = ThreadWorkspace();
  std::vector<EncryptedItem> items;
  for (const Tuple& tuple : tuples) {
    ws.body.clear();
    tuple.EncodeTo(&ws.body);
    ssi::EncodePayloadTo(PayloadKind::kTrueTuple, ws.body.data(),
                         ws.body.size(), config.pad_payload_to, &ws.payload);
    switch (config.mode) {
      case CollectionMode::kNDet:
        items.push_back(SealK2(keys, ws.payload.data(), ws.payload.size(),
                               std::nullopt, rng));
        break;
      case CollectionMode::kDetTag: {
        items.push_back(SealK2(
            keys, ws.payload.data(), ws.payload.size(),
            GroupKeyTagBytes(keys, tuple, query->key_arity), rng));
        const auto& domain = *config.noise.group_domain;
        Tuple true_key(std::vector<Value>(
            tuple.values().begin(),
            tuple.values().begin() + query->key_arity));
        // Noise tuples: identified by their payload kind, invisible to SSI.
        auto emit_fake = [&](size_t domain_index) {
          items.push_back(SealK2(keys, fake_payloads[domain_index].data(),
                                 fake_payloads[domain_index].size(),
                                 fake_tags[domain_index], rng));
        };
        if (config.noise.complementary) {
          // C_Noise: one fake per domain value different from the true one —
          // the mixed distribution is flat by construction (§4.3).
          for (size_t d = 0; d < domain.size(); ++d) {
            if (!domain[d].IsSameGroup(true_key)) emit_fake(d);
          }
        } else {
          // Rnf_Noise: nf random fakes per true tuple.
          for (int k = 0; k < config.noise.nf; ++k) {
            emit_fake(rng->NextBelow(domain.size()));
          }
        }
        break;
      }
      case CollectionMode::kHistTag: {
        if (!config.histogram || config.histogram->num_buckets() == 0) {
          return Status::FailedPrecondition(
              "histogram collection requires a histogram");
        }
        Tuple key(std::vector<Value>(
            tuple.values().begin(),
            tuple.values().begin() + query->key_arity));
        uint32_t bucket = config.histogram->BucketOf(key);
        Bytes tag = HashTagBytes(crypto::KeyedHash64(
            keys.k2_hash(), EquiDepthHistogram::BucketIdBytes(bucket)));
        items.push_back(SealK2(keys, ws.payload.data(), ws.payload.size(),
                               std::move(tag), rng));
        break;
      }
    }
  }
  return items;
}

Result<std::vector<ssi::EncryptedItem>>
TrustedDataServer::ProcessAggregationPartition(
    const sql::AnalyzedQuery& query, const ssi::Partition& partition,
    OutputTagPolicy tag_policy, const CollectionConfig& config, Rng* rng) {
  if (!query.is_aggregation) {
    return Status::FailedPrecondition(
        "aggregation partition on a non-aggregation query");
  }
  TCELLS_ASSIGN_OR_RETURN(std::shared_ptr<const crypto::KeyStore> keys_sp,
                          KeysForQuery(config.key_posting));
  const crypto::KeyStore& keys = *keys_sp;
  sql::GroupedAggregation agg(query.agg_specs);
  size_t since_check = 0;
  // Batch-open the whole partition into the thread's arena (zero-copy:
  // plaintexts are arena-backed spans and payload bodies are views into
  // them, never copied out). The arena is reset here, so a warmed thread
  // opens a steady-state partition without allocating.
  auto& ws = ThreadWorkspace();
  ws.arena.Reset();
  TCELLS_RETURN_IF_ERROR(
      ssi::OpenAllInto(keys.k2_ndet(), partition.items, &ws.arena,
                       &ws.plains));
  for (const auto plain : ws.plains) {
    TCELLS_ASSIGN_OR_RETURN(
        ssi::PayloadView payload,
        ssi::DecodePayloadView(plain.data(), plain.size()));
    switch (payload.kind) {
      case PayloadKind::kTrueTuple: {
        TCELLS_RETURN_IF_ERROR(
            Tuple::DecodeInto(payload.body, payload.body_size, &ws.tuple));
        if (options_.leak_log) options_.leak_log->RecordRawTuple(id_, ws.tuple);
        TCELLS_RETURN_IF_ERROR(agg.AccumulateTuple(ws.tuple, query.key_arity));
        break;
      }
      case PayloadKind::kDummyTuple:
      case PayloadKind::kFakeTuple:
        break;  // identified characteristics: filtered inside the enclave
      case PayloadKind::kPartialAgg: {
        if (options_.leak_log) {
          // Compromised-TDS modeling needs the partial's own groups, so pay
          // for the materialized decode on this cold path only.
          TCELLS_ASSIGN_OR_RETURN(
              sql::GroupedAggregation partial,
              sql::GroupedAggregation::Decode(query.agg_specs, payload.body,
                                              payload.body_size));
          for (const auto& [key, states] : partial.groups()) {
            options_.leak_log->RecordGroupAggregate(id_, key);
          }
          TCELLS_RETURN_IF_ERROR(agg.MergeAll(partial));
        } else {
          TCELLS_RETURN_IF_ERROR(
              agg.MergeEncoded(payload.body, payload.body_size));
        }
        break;
      }
      case PayloadKind::kResultRow:
        return Status::Corruption("result row in aggregation partition");
    }
    if (options_.ram_budget_bytes > 0 && ++since_check >= 64) {
      since_check = 0;
      if (agg.MemoryFootprint() > options_.ram_budget_bytes) {
        return Status::ResourceExhausted(
            "partial aggregate exceeds TDS RAM budget");
      }
    }
  }
  if (options_.ram_budget_bytes > 0 &&
      agg.MemoryFootprint() > options_.ram_budget_bytes) {
    return Status::ResourceExhausted(
        "partial aggregate exceeds TDS RAM budget");
  }

  std::vector<EncryptedItem> out;
  switch (tag_policy) {
    case OutputTagPolicy::kNone: {
      ws.body.clear();
      agg.EncodeTo(&ws.body);
      ssi::EncodePayloadTo(PayloadKind::kPartialAgg, ws.body.data(),
                           ws.body.size(), 0, &ws.payload);
      out.push_back(SealK2(keys, ws.payload.data(), ws.payload.size(),
                           std::nullopt, rng));
      break;
    }
    case OutputTagPolicy::kPreserve: {
      if (partition.items.empty() || !partition.items[0].routing_tag) {
        return Status::FailedPrecondition(
            "preserve-tag output needs a tagged input partition");
      }
      ws.body.clear();
      agg.EncodeTo(&ws.body);
      ssi::EncodePayloadTo(PayloadKind::kPartialAgg, ws.body.data(),
                           ws.body.size(), 0, &ws.payload);
      out.push_back(SealK2(keys, ws.payload.data(), ws.payload.size(),
                           partition.items[0].routing_tag, rng));
      break;
    }
    case OutputTagPolicy::kPerGroupDet: {
      // One sealed single-row aggregation per group, encoded directly —
      // building a throwaway GroupedAggregation per group made this path
      // quadratic-ish in the group count (the ED_Hist groups=32 outlier).
      for (const auto& [key, states] : agg.groups()) {
        ws.body.clear();
        sql::GroupedAggregation::EncodeSingleRowTo(key, states, &ws.body);
        ssi::EncodePayloadTo(PayloadKind::kPartialAgg, ws.body.data(),
                             ws.body.size(), 0, &ws.payload);
        out.push_back(SealK2(keys, ws.payload.data(), ws.payload.size(),
                             keys.k2_det().Encrypt(key.Encode()), rng));
      }
      break;
    }
  }
  return out;
}

Result<std::vector<ssi::EncryptedItem>> TrustedDataServer::ProcessFiltering(
    const sql::AnalyzedQuery& query, const ssi::Partition& partition,
    Rng* rng, const CollectionConfig& config) {
  TCELLS_ASSIGN_OR_RETURN(std::shared_ptr<const crypto::KeyStore> keys_sp,
                          KeysForQuery(config.key_posting));
  const crypto::KeyStore& keys = *keys_sp;
  std::vector<EncryptedItem> out;
  auto& ws = ThreadWorkspace();
  ws.arena.Reset();
  TCELLS_RETURN_IF_ERROR(
      ssi::OpenAllInto(keys.k2_ndet(), partition.items, &ws.arena,
                       &ws.plains));
  if (query.is_aggregation) {
    sql::GroupedAggregation agg(query.agg_specs);
    for (const auto plain : ws.plains) {
      TCELLS_ASSIGN_OR_RETURN(
          ssi::PayloadView payload,
          ssi::DecodePayloadView(plain.data(), plain.size()));
      if (payload.kind == PayloadKind::kDummyTuple ||
          payload.kind == PayloadKind::kFakeTuple) {
        continue;
      }
      if (payload.kind != PayloadKind::kPartialAgg) {
        return Status::Corruption("filtering expected partial aggregations");
      }
      TCELLS_RETURN_IF_ERROR(
          agg.MergeEncoded(payload.body, payload.body_size));
    }
    // Finalize + HAVING + projection happen inside the enclave (step 11).
    if (options_.leak_log) {
      for (const auto& [key, states] : agg.groups()) {
        options_.leak_log->RecordGroupAggregate(id_, key);
      }
    }
    TCELLS_ASSIGN_OR_RETURN(sql::QueryResult result,
                            sql::FinalizeAggregation(agg, query));
    for (const Tuple& row : result.rows) {
      ws.body.clear();
      row.EncodeTo(&ws.body);
      ssi::EncodePayloadTo(PayloadKind::kResultRow, ws.body.data(),
                           ws.body.size(), 0, &ws.payload);
      EncryptedItem item;
      keys.k1_ndet().Encrypt(ws.payload.data(), ws.payload.size(), rng,
                             &item.blob);
      out.push_back(std::move(item));
    }
    return out;
  }

  // Plain SFW: drop dummies, re-encrypt true tuples under k1 (step 11-12).
  for (const auto plain : ws.plains) {
    TCELLS_ASSIGN_OR_RETURN(
        ssi::PayloadView payload,
        ssi::DecodePayloadView(plain.data(), plain.size()));
    if (payload.kind == PayloadKind::kDummyTuple ||
        payload.kind == PayloadKind::kFakeTuple) {
      continue;
    }
    if (payload.kind != PayloadKind::kTrueTuple) {
      return Status::Corruption("filtering expected collection tuples");
    }
    if (options_.leak_log) {
      TCELLS_RETURN_IF_ERROR(
          Tuple::DecodeInto(payload.body, payload.body_size, &ws.tuple));
      options_.leak_log->RecordRawTuple(id_, ws.tuple);
    }
    ssi::EncodePayloadTo(PayloadKind::kResultRow, payload.body,
                         payload.body_size, 0, &ws.payload);
    EncryptedItem out_item;
    keys.k1_ndet().Encrypt(ws.payload.data(), ws.payload.size(), rng,
                           &out_item.blob);
    out.push_back(std::move(out_item));
  }
  return out;
}

}  // namespace tcells::tds
