#include "tds/access_control.h"

#include <set>

#include "common/strings.h"
#include "crypto/hmac.h"

namespace tcells::tds {

Bytes Authority::Issue(const std::string& querier_id) const {
  Bytes id_bytes(querier_id.begin(), querier_id.end());
  auto mac = crypto::HmacSha256(key_, id_bytes);
  return Bytes(mac.begin(), mac.end());
}

bool Authority::Verify(const std::string& querier_id,
                       const Bytes& credential) const {
  return Issue(querier_id) == credential;
}

AccessPolicy AccessPolicy::AllowAll() {
  AccessPolicy policy;
  policy.allow_all_ = true;
  return policy;
}

namespace {

void CollectColumnRefs(const sql::ExprPtr& e, std::set<int>* out) {
  if (!e) return;
  if (e->kind == sql::Expr::Kind::kColumnRef && e->bound_index >= 0) {
    out->insert(e->bound_index);
  }
  for (const auto& child : e->children) CollectColumnRefs(child, out);
}

}  // namespace

std::vector<int> ReferencedColumns(const sql::AnalyzedQuery& query) {
  std::set<int> refs;
  CollectColumnRefs(query.where, &refs);
  // collection_exprs / select_row_exprs are bound against the combined row;
  // output-row expressions (SELECT/HAVING rewrites) only reference what the
  // collection layout already provides.
  for (const auto& e : query.collection_exprs) CollectColumnRefs(e, &refs);
  for (const auto& e : query.select_row_exprs) CollectColumnRefs(e, &refs);
  return std::vector<int>(refs.begin(), refs.end());
}

bool AccessPolicy::Covers(const std::string& querier_id,
                          const std::string& table,
                          const std::string& column) const {
  for (const auto& rule : rules_) {
    if (rule.querier_id != "*" &&
        !EqualsIgnoreCase(rule.querier_id, querier_id)) {
      continue;
    }
    if (!EqualsIgnoreCase(rule.table, table)) continue;
    if (rule.columns.empty()) return true;
    for (const auto& c : rule.columns) {
      if (EqualsIgnoreCase(c, column)) return true;
    }
  }
  return false;
}

Status AccessPolicy::CheckQuery(const sql::AnalyzedQuery& query,
                                const std::string& querier_id) const {
  if (allow_all_) return Status::OK();
  for (int idx : ReferencedColumns(query)) {
    const auto& [table, column] =
        query.combined_origin[static_cast<size_t>(idx)];
    if (!Covers(querier_id, table, column)) {
      return Status::PermissionDenied("querier " + querier_id +
                                      " may not read " + table + "." + column);
    }
  }
  return Status::OK();
}

}  // namespace tcells::tds
