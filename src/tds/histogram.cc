#include "tds/histogram.h"

#include <algorithm>

namespace tcells::tds {

EquiDepthHistogram EquiDepthHistogram::Build(
    const std::map<storage::Tuple, uint64_t>& freq, size_t num_buckets) {
  EquiDepthHistogram hist;
  hist.num_keys_ = freq.size();
  if (freq.empty()) return hist;
  num_buckets = std::max<size_t>(1, std::min(num_buckets, freq.size()));

  uint64_t total = 0;
  for (const auto& [key, count] : freq) total += count;

  // Greedy sweep in key order with an adaptive target: each new bucket aims
  // for (remaining mass) / (remaining buckets), so one heavy value early on
  // does not starve the later buckets.
  uint64_t remaining = total;
  uint64_t in_bucket = 0;
  size_t keys_done = 0;
  size_t buckets_made = 0;
  const storage::Tuple* last_key = nullptr;
  for (const auto& [key, count] : freq) {
    in_bucket += count;
    ++keys_done;
    last_key = &key;
    size_t keys_left = freq.size() - keys_done;
    size_t buckets_left = num_buckets - buckets_made - 1;
    bool must_close = keys_left == buckets_left && buckets_left > 0;
    double target = static_cast<double>(remaining) /
                    static_cast<double>(num_buckets - buckets_made);
    bool full = static_cast<double>(in_bucket) >= target;
    if ((full || must_close) && buckets_made + 1 < num_buckets) {
      hist.upper_bounds_.push_back(key);
      ++buckets_made;
      remaining -= in_bucket;
      in_bucket = 0;
    }
  }
  // Final bucket takes the rest.
  hist.upper_bounds_.push_back(*last_key);
  return hist;
}

uint32_t EquiDepthHistogram::BucketOf(const storage::Tuple& key) const {
  if (upper_bounds_.empty()) return 0;
  auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), key);
  if (it == upper_bounds_.end()) return static_cast<uint32_t>(upper_bounds_.size() - 1);
  return static_cast<uint32_t>(it - upper_bounds_.begin());
}

double EquiDepthHistogram::CollisionFactor() const {
  if (upper_bounds_.empty()) return 0;
  return static_cast<double>(num_keys_) /
         static_cast<double>(upper_bounds_.size());
}

Bytes EquiDepthHistogram::BucketIdBytes(uint32_t bucket) {
  Bytes out;
  ByteWriter w(&out);
  w.PutU32(bucket);
  return out;
}

void EquiDepthHistogram::EncodeTo(Bytes* out) const {
  ByteWriter w(out);
  w.PutU64(num_keys_);
  w.PutU32(static_cast<uint32_t>(upper_bounds_.size()));
  for (const auto& bound : upper_bounds_) bound.EncodeTo(out);
}

Result<EquiDepthHistogram> EquiDepthHistogram::Decode(const Bytes& data) {
  EquiDepthHistogram hist;
  ByteReader reader(data);
  TCELLS_ASSIGN_OR_RETURN(hist.num_keys_, reader.GetU64());
  // Smallest encoded Tuple is its u16 arity alone, so a bucket count larger
  // than remaining/2 cannot be satisfied — reject it before reserving.
  TCELLS_ASSIGN_OR_RETURN(uint32_t n, reader.GetCountU32(2));
  hist.upper_bounds_.reserve(n);
  storage::Tuple prev;
  for (uint32_t i = 0; i < n; ++i) {
    TCELLS_ASSIGN_OR_RETURN(storage::Tuple bound,
                            storage::Tuple::DecodeFrom(&reader));
    if (i > 0 && !(prev < bound)) {
      return Status::Corruption("histogram bounds not strictly increasing");
    }
    prev = bound;
    hist.upper_bounds_.push_back(std::move(bound));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after histogram");
  }
  // Build() emits one upper bound per non-empty bucket, so a well-formed
  // encoding never claims fewer distinct keys than buckets. A forged frame
  // violating this breaks CollisionFactor() and the equi-depth invariant
  // downstream consumers assume.
  if (hist.num_keys_ < hist.upper_bounds_.size()) {
    return Status::Corruption("histogram claims fewer keys than buckets");
  }
  return hist;
}

}  // namespace tcells::tds
